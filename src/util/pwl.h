// Piecewise-linear curves: the representation used for all daily profiles
// (load shape, traffic counts, price stacks).
#pragma once

#include <initializer_list>
#include <utility>
#include <vector>

namespace olev::util {

/// A piecewise-linear function defined by sorted (x, y) knots.  Evaluation
/// outside the knot range clamps to the end values.  With `periodic(span)`
/// enabled, x wraps modulo the span (used for 24 h daily profiles).
class PiecewiseLinear {
 public:
  PiecewiseLinear() = default;
  /// Knots must be strictly increasing in x; throws std::invalid_argument
  /// otherwise.
  explicit PiecewiseLinear(std::vector<std::pair<double, double>> knots);
  PiecewiseLinear(std::initializer_list<std::pair<double, double>> knots)
      : PiecewiseLinear(std::vector<std::pair<double, double>>(knots)) {}

  /// Declares the function periodic with the given span (> 0).
  PiecewiseLinear& periodic(double span);

  double operator()(double x) const;

  /// Definite integral over [a, b] (a <= b), honoring clamping/periodicity.
  double integral(double a, double b) const;

  double min_value() const;
  double max_value() const;

  bool empty() const { return knots_.empty(); }
  const std::vector<std::pair<double, double>>& knots() const { return knots_; }

  /// Returns a copy with every y scaled so that the value range maps
  /// affinely onto [new_min, new_max].  No-op on constant curves.
  PiecewiseLinear rescaled(double new_min, double new_max) const;

 private:
  double wrap(double x) const;

  std::vector<std::pair<double, double>> knots_;
  double period_ = 0.0;  // 0 = not periodic
};

}  // namespace olev::util
