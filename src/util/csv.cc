#include "util/csv.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace olev::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

Table& Table::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

Table& Table::add_row_numeric(const std::vector<double>& cells, int precision) {
  std::vector<std::string> row;
  row.reserve(cells.size());
  for (double value : cells) row.push_back(fmt(value, precision));
  return add_row(std::move(row));
}

void Table::write_csv(std::ostream& os) const {
  auto write_line = [&os](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i > 0) os << ',';
      os << csv_escape(cells[i]);
    }
    os << '\n';
  };
  write_line(header_);
  for (const auto& row : rows_) write_line(row);
}

void Table::write_pretty(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto write_line = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      os << (i == 0 ? "| " : " | ");
      os << cells[i] << std::string(widths[i] - cells[i].size(), ' ');
    }
    os << " |\n";
  };
  write_line(header_);
  os << '|';
  for (std::size_t w : widths) os << std::string(w + 2, '-') << '|';
  os << '\n';
  for (const auto& row : rows_) write_line(row);
}

void Table::save_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("Table::save_csv: cannot open " + path);
  write_csv(out);
  if (!out) throw std::runtime_error("Table::save_csv: write failed for " + path);
}

std::string fmt(double value, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << value;
  return os.str();
}

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace olev::util
