// Lock-order auditor behind olev::Mutex (util/sync.h): a lockdep-style
// global order graph over mutex *classes* (grouped by constructor name).
//
// Every acquisition walks the calling thread's held chain and inserts
// "held -> acquiring" edges; an edge whose reverse direction is already
// reachable closes a cycle, which is a latent deadlock even if this
// particular interleaving completes -- so the auditor fires immediately,
// before the acquisition blocks, naming both acquisition chains.  Each
// unordered class pair is reported at most once per process: a wall of
// identical reports from a hot path would bury the first (and only
// interesting) one.
//
// The graph's own lock is a raw std::mutex on purpose: it must never be
// tracked by the auditor it implements (this file is the one R6 lint
// exemption besides the header).  All functions here are always compiled --
// the support-code-links-everywhere contract of util/audit.h -- but only
// called from OLEV_AUDIT builds, where Mutex carries its order class.

#include "util/sync.h"

#include <algorithm>
#include <map>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace olev::sync_internal {

namespace {

struct Graph {
  std::mutex mu;
  std::vector<std::string> names;          // class id -> diagnostic name
  std::map<std::string, int> ids;          // diagnostic name -> class id
  // edges[from][to] = the acquisition chain that established the edge.
  std::map<int, std::map<int, std::string>> edges;
  std::set<std::pair<int, int>> reported;  // normalized (min,max) pairs
};

// Leaked on purpose: worker threads and process-lifetime singletons (the
// metrics registry, the tracer) release mutexes during static destruction,
// after a function-local static would already be gone.
Graph& graph() {
  static Graph* g = new Graph;
  return *g;
}

// The calling thread's acquisition chain, innermost last.  Class ids, not
// instances: two locks of one class nest legally (e.g. a fresh
// parallel_for control block inside a sweep), so self-edges are skipped.
thread_local std::vector<int> t_held;

std::string chain_names(const Graph& g, const std::vector<int>& chain) {
  std::string out = "[";
  for (std::size_t i = 0; i < chain.size(); ++i) {
    if (i > 0) out += " -> ";
    out += '"';
    out += g.names[static_cast<std::size_t>(chain[i])];
    out += '"';
  }
  out += ']';
  return out;
}

// Depth-first reachability over the order graph.  The graph is kept acyclic
// (a cycle-closing edge is reported, not inserted), but the visited set
// makes the walk robust regardless.
bool reachable(const Graph& g, int from, int to) {
  std::vector<int> stack{from};
  std::set<int> visited;
  while (!stack.empty()) {
    const int node = stack.back();
    stack.pop_back();
    if (node == to) return true;
    if (!visited.insert(node).second) continue;
    const auto out = g.edges.find(node);
    if (out == g.edges.end()) continue;
    for (const auto& [next, provenance] : out->second) stack.push_back(next);
  }
  return false;
}

}  // namespace

int register_class(const char* name) {
  Graph& g = graph();
  std::lock_guard<std::mutex> lock(g.mu);
  const auto [it, inserted] =
      g.ids.emplace(name, static_cast<int>(g.names.size()));
  if (inserted) g.names.emplace_back(name);
  return it->second;
}

void note_acquire(int order_class, const char* name) {
  std::string message;
  {
    Graph& g = graph();
    std::lock_guard<std::mutex> lock(g.mu);
    for (const int held : t_held) {
      if (held == order_class) continue;  // same-class nesting: no ordering
      auto& out = g.edges[held];
      if (out.find(order_class) != out.end()) continue;  // edge known
      if (reachable(g, order_class, held)) {
        // held -> order_class would close a cycle: the opposite order is
        // already established.  Report once per unordered pair, and keep
        // the graph acyclic by not inserting the inverting edge.
        const auto pair = std::minmax(held, order_class);
        if (!g.reported.insert({pair.first, pair.second}).second) continue;
        std::ostringstream out_msg;
        out_msg << "lock-order inversion: thread " << std::this_thread::get_id()
                << " holds " << chain_names(g, t_held) << " while acquiring \""
                << name << "\", but the opposite order \""
                << g.names[static_cast<std::size_t>(order_class)] << "\" -> \""
                << g.names[static_cast<std::size_t>(held)]
                << "\" was established earlier by "
                << g.edges[order_class][held]
                << "; the two orders deadlock if interleaved";
        message = out_msg.str();
        break;
      }
      std::ostringstream provenance;
      provenance << "thread " << std::this_thread::get_id() << " holding "
                 << chain_names(g, t_held) << " acquiring \"" << name << '"';
      out.emplace(order_class, provenance.str());
    }
  }
  if (!message.empty()) {
    // The graph lock is released and the acquiring mutex was NOT taken:
    // fail() throws (or calls the installed handler) with the thread in a
    // consistent state.
    util::audit::fail("lock_order_acyclic", __FILE__, __LINE__, message);
  }
  t_held.push_back(order_class);
}

void note_try_acquire(int order_class) { t_held.push_back(order_class); }

void note_release(int order_class) {
  // Innermost-first search: scoped locks release LIFO, but manual
  // lock/unlock may not, so erase the last matching entry.
  for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
    if (*it == order_class) {
      t_held.erase(std::next(it).base());
      return;
    }
  }
}

void assert_held(int order_class, const char* name) {
  if (std::find(t_held.begin(), t_held.end(), order_class) == t_held.end()) {
    util::audit::fail("mutex_held", __FILE__, __LINE__,
                      std::string("AssertHeld: mutex \"") + name +
                          "\" is not held by this thread");
  }
}

}  // namespace olev::sync_internal
