#include "util/json.h"

#include <cmath>
#include <cstdio>

namespace olev::util {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::separator() {
  if (stack_.empty()) return;
  if (stack_.back() == 'v') {
    // Key already written; value follows immediately.
    stack_.back() = 'o';
    return;
  }
  if (!first_.back()) out_ += ',';
  first_.back() = false;
}

JsonWriter& JsonWriter::begin_object() {
  separator();
  out_ += '{';
  stack_.push_back('o');
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += '}';
  stack_.pop_back();
  first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  separator();
  out_ += '[';
  stack_.push_back('a');
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_ += ']';
  stack_.pop_back();
  first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  if (!first_.back()) out_ += ',';
  first_.back() = false;
  out_ += '"';
  out_ += json_escape(name);
  out_ += "\":";
  stack_.back() = 'v';  // next value call skips the comma
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  separator();
  if (!std::isfinite(v)) {
    out_ += "null";
    return *this;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.12g", v);
  out_ += buffer;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  separator();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::size_t v) {
  separator();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  separator();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  separator();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string(v)); }

JsonWriter& JsonWriter::null() {
  separator();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::value(const std::vector<double>& values) {
  begin_array();
  for (double v : values) value(v);
  return end_array();
}

}  // namespace olev::util
