#include "util/json.h"

#include <cmath>
#include <cstdio>

#include "obs/strings.h"

namespace olev::util {

std::string json_escape(const std::string& text) {
  // One escaper for the whole repo: obs owns it (that layer cannot depend
  // on util) and handles control characters, DEL, and non-ASCII -- labels
  // with UTF-8 or stray bytes escape identically in experiment traces and
  // Perfetto traces.
  return obs::json_escape(text);
}

void JsonWriter::separator() {
  if (stack_.empty()) return;
  if (stack_.back() == 'v') {
    // Key already written; value follows immediately.
    stack_.back() = 'o';
    return;
  }
  if (!first_.back()) out_ += ',';
  first_.back() = false;
}

JsonWriter& JsonWriter::begin_object() {
  separator();
  out_ += '{';
  stack_.push_back('o');
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += '}';
  stack_.pop_back();
  first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  separator();
  out_ += '[';
  stack_.push_back('a');
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_ += ']';
  stack_.pop_back();
  first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  if (!first_.back()) out_ += ',';
  first_.back() = false;
  out_ += '"';
  out_ += json_escape(name);
  out_ += "\":";
  stack_.back() = 'v';  // next value call skips the comma
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  separator();
  if (!std::isfinite(v)) {
    out_ += "null";
    return *this;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.12g", v);
  out_ += buffer;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  separator();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::size_t v) {
  separator();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  separator();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  separator();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string(v)); }

JsonWriter& JsonWriter::null() {
  separator();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::value(const std::vector<double>& values) {
  begin_array();
  for (double v : values) value(v);
  return end_array();
}

}  // namespace olev::util
