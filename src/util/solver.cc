#include "util/solver.h"

#include <cmath>

namespace olev::util {

SolverResult bisect_root(const std::function<double(double)>& f, double lo,
                         double hi, const SolverOptions& opts) {
  SolverResult result;
  double flo = f(lo);
  double fhi = f(hi);
  if (std::abs(flo) <= opts.f_tolerance) {
    return {lo, flo, 0, true};
  }
  if (std::abs(fhi) <= opts.f_tolerance) {
    return {hi, fhi, 0, true};
  }
  if (flo * fhi > 0.0) {
    // No sign change: report the better endpoint, not converged.
    return std::abs(flo) < std::abs(fhi) ? SolverResult{lo, flo, 0, false}
                                         : SolverResult{hi, fhi, 0, false};
  }
  double mid = lo;
  double fmid = flo;
  for (int it = 0; it < opts.max_iterations; ++it) {
    mid = 0.5 * (lo + hi);
    fmid = f(mid);
    result.iterations = it + 1;
    if (std::abs(fmid) <= opts.f_tolerance || (hi - lo) <= opts.x_tolerance) {
      return {mid, fmid, result.iterations, true};
    }
    if (flo * fmid <= 0.0) {
      hi = mid;
    } else {
      lo = mid;
      flo = fmid;
    }
  }
  return {mid, fmid, result.iterations, false};
}

SolverResult decreasing_root_clamped(const std::function<double(double)>& f,
                                     double lo, double hi,
                                     const SolverOptions& opts) {
  const double flo = f(lo);
  if (flo < 0.0) return {lo, flo, 0, true};   // derivative negative at 0 -> corner
  const double fhi = f(hi);
  if (fhi > 0.0) return {hi, fhi, 0, true};   // derivative positive at cap -> corner
  return bisect_root(f, lo, hi, opts);
}

SolverResult golden_section_max(const std::function<double(double)>& f,
                                double lo, double hi,
                                const SolverOptions& opts) {
  constexpr double kInvPhi = 0.6180339887498949;
  double a = lo;
  double b = hi;
  double x1 = b - kInvPhi * (b - a);
  double x2 = a + kInvPhi * (b - a);
  double f1 = f(x1);
  double f2 = f(x2);
  int it = 0;
  while (it < opts.max_iterations && (b - a) > opts.x_tolerance) {
    if (f1 < f2) {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + kInvPhi * (b - a);
      f2 = f(x2);
    } else {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - kInvPhi * (b - a);
      f1 = f(x1);
    }
    ++it;
  }
  const double x = 0.5 * (a + b);
  return {x, f(x), it, (b - a) <= opts.x_tolerance};
}

}  // namespace olev::util
