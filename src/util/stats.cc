#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace olev::util {

void Accumulator::add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void Accumulator::merge(const Accumulator& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * n2 / (n1 + n2);
  m2_ += other.m2_ + delta * delta * n1 * n2 / (n1 + n2);
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Accumulator::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double percentile(std::span<const double> samples, double q) {
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = std::clamp(q, 0.0, 100.0) / 100.0 *
                      static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

Summary summarize(std::span<const double> samples) {
  Summary s;
  if (samples.empty()) return s;
  Accumulator acc;
  for (double x : samples) acc.add(x);
  s.count = acc.count();
  s.mean = acc.mean();
  s.stddev = acc.stddev();
  s.min = acc.min();
  s.max = acc.max();
  s.p50 = percentile(samples, 50.0);
  s.p95 = percentile(samples, 95.0);
  return s;
}

double mean_of(std::span<const double> samples) {
  if (samples.empty()) return 0.0;
  double sum = 0.0;
  for (double x : samples) sum += x;
  return sum / static_cast<double>(samples.size());
}

double max_abs_diff(std::span<const double> a, std::span<const double> b) {
  double worst = 0.0;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

double jain_fairness(std::span<const double> xs) {
  if (xs.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double x : xs) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 1.0;
  return sum * sum / (static_cast<double>(xs.size()) * sum_sq);
}

double coefficient_of_variation(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  Accumulator acc;
  for (double x : xs) acc.add(x);
  const double mu = acc.mean();
  if (mu == 0.0) return 0.0;
  // Population stddev for a descriptive ratio.
  const auto n = static_cast<double>(acc.count());
  const double pop_var = acc.variance() * (n - 1.0) / n;
  return std::sqrt(pop_var) / mu;
}

std::vector<std::size_t> histogram(std::span<const double> samples, double lo,
                                   double hi, std::size_t bins) {
  std::vector<std::size_t> counts(bins, 0);
  if (bins == 0 || hi <= lo) return counts;
  const double width = (hi - lo) / static_cast<double>(bins);
  for (double x : samples) {
    auto idx = static_cast<std::ptrdiff_t>((x - lo) / width);
    idx = std::clamp<std::ptrdiff_t>(idx, 0, static_cast<std::ptrdiff_t>(bins) - 1);
    ++counts[static_cast<std::size_t>(idx)];
  }
  return counts;
}

}  // namespace olev::util
