// Capability-annotated synchronization layer: the ONLY approved mutex and
// condition-variable surface outside this file (lint rule R6 rejects raw
// std::mutex / std::condition_variable / std::lock_guard / std::unique_lock
// everywhere else under src/ and tools/).
//
// Two independent walls ride on the wrappers:
//
//   Static (clang builds): every type carries the Clang Thread Safety
//   Analysis capability attributes, and the top-level CMakeLists promotes
//   -Wthread-safety -Wthread-safety-beta to errors whenever the compiler is
//   clang.  Annotate shared state with OLEV_GUARDED_BY(mutex) and internal
//   helpers with OLEV_REQUIRES(mutex) / OLEV_EXCLUDES(mutex) and the
//   compiler proves, per translation unit, that no annotated field is
//   touched without its capability.  On non-clang toolchains every macro
//   expands to nothing and the wrappers compile to plain std::mutex
//   semantics -- zero overhead, identical codegen.
//
//   Dynamic (-DOLEV_AUDIT=ON builds): a lockdep-style lock-order auditor.
//   Mutexes are grouped into order classes by their constructor name; every
//   acquisition records "held H while acquiring A" edges into a global
//   order graph, and an edge that closes a cycle fires the runtime auditor
//   (util/audit.h) with both offending acquisition chains' lock names --
//   BEFORE the acquisition blocks, so a potential deadlock is reported even
//   on interleavings that never actually deadlock.  Each inverted pair is
//   reported at most once per process.  Non-audit builds compile the hooks
//   out entirely (same contract as OLEV_AUDIT_CHECK).
//
// The negative-compilation suite (tests/compile_fail/cf_tsa_*.cc) pins that
// the static analysis genuinely rejects unguarded access, missing REQUIRES,
// double-acquire and release-without-acquire; tests/test_audit.cc pins the
// lock-order auditor.  docs/ANALYSIS.md documents the capability table.
#pragma once

#include <condition_variable>
#include <mutex>

#include "util/audit.h"  // OLEV_AUDIT_ENABLED

// ---- Clang Thread Safety Analysis attribute set ---------------------------
// Spelled exactly as in the Clang docs (capability, guarded_by, ...) behind
// an OLEV_ prefix; empty on every other compiler.
#if defined(__clang__)
#define OLEV_TSA_ATTR(x) __attribute__((x))
#else
#define OLEV_TSA_ATTR(x)  // no-op: gcc et al. see plain classes
#endif

#define OLEV_CAPABILITY(x) OLEV_TSA_ATTR(capability(x))
#define OLEV_SCOPED_CAPABILITY OLEV_TSA_ATTR(scoped_lockable)
#define OLEV_GUARDED_BY(x) OLEV_TSA_ATTR(guarded_by(x))
#define OLEV_PT_GUARDED_BY(x) OLEV_TSA_ATTR(pt_guarded_by(x))
#define OLEV_ACQUIRED_BEFORE(...) OLEV_TSA_ATTR(acquired_before(__VA_ARGS__))
#define OLEV_ACQUIRED_AFTER(...) OLEV_TSA_ATTR(acquired_after(__VA_ARGS__))
#define OLEV_REQUIRES(...) OLEV_TSA_ATTR(requires_capability(__VA_ARGS__))
#define OLEV_ACQUIRE(...) OLEV_TSA_ATTR(acquire_capability(__VA_ARGS__))
#define OLEV_RELEASE(...) OLEV_TSA_ATTR(release_capability(__VA_ARGS__))
#define OLEV_TRY_ACQUIRE(...) OLEV_TSA_ATTR(try_acquire_capability(__VA_ARGS__))
#define OLEV_EXCLUDES(...) OLEV_TSA_ATTR(locks_excluded(__VA_ARGS__))
#define OLEV_ASSERT_CAPABILITY(...) OLEV_TSA_ATTR(assert_capability(__VA_ARGS__))
#define OLEV_RETURN_CAPABILITY(x) OLEV_TSA_ATTR(lock_returned(x))
#define OLEV_NO_THREAD_SAFETY_ANALYSIS OLEV_TSA_ATTR(no_thread_safety_analysis)

namespace olev {

namespace sync_internal {
// Lock-order auditor hooks (util/sync.cc).  Always compiled -- the support
// code links in every build flavor -- but only *called* from audit builds.
// `register_class` dedupes by name: mutexes constructed with the same name
// form one order class (lockdep semantics: ordering is a property of the
// lock's role, not the instance, so a fresh per-request mutex still inherits
// its class's history).
int register_class(const char* name);
/// Records held-while-acquiring edges and fires audit::fail on a cycle,
/// before the caller blocks on the underlying mutex.
void note_acquire(int order_class, const char* name);
/// Pushes without recording edges: a try-lock never blocks, so it cannot
/// deadlock on the way in, but everything acquired while it is held can.
void note_try_acquire(int order_class);
void note_release(int order_class);
/// audit::fail unless the calling thread holds a mutex of this class.
void assert_held(int order_class, const char* name);
}  // namespace sync_internal

/// Annotated std::mutex.  The `name` groups instances into a lock-order
/// class for the runtime auditor and labels its diagnostics; pass a stable
/// literal describing the role ("obs.tracer.lane"), not the instance.
class OLEV_CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(const char* name = "olev.mutex")
      : name_(name)
#if OLEV_AUDIT_ENABLED
        ,
        order_class_(sync_internal::register_class(name))
#endif
  {
  }

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() OLEV_ACQUIRE() {
#if OLEV_AUDIT_ENABLED
    sync_internal::note_acquire(order_class_, name_);
    try {
      native_.lock();
    } catch (...) {
      sync_internal::note_release(order_class_);
      throw;
    }
#else
    native_.lock();
#endif
  }

  void unlock() OLEV_RELEASE() {
    native_.unlock();
#if OLEV_AUDIT_ENABLED
    sync_internal::note_release(order_class_);
#endif
  }

  bool try_lock() OLEV_TRY_ACQUIRE(true) {
    const bool acquired = native_.try_lock();
#if OLEV_AUDIT_ENABLED
    if (acquired) sync_internal::note_try_acquire(order_class_);
#endif
    return acquired;
  }

  /// Tells the static analysis the capability is held (for code paths it
  /// cannot follow, e.g. condition-variable wait predicates); in audit
  /// builds additionally verifies it dynamically.
  void AssertHeld() const OLEV_ASSERT_CAPABILITY() {
#if OLEV_AUDIT_ENABLED
    sync_internal::assert_held(order_class_, name_);
#endif
  }

  const char* name() const { return name_; }

  /// Underlying handle for CondVar; everything else goes through the
  /// annotated surface.
  std::mutex& native() { return native_; }

 private:
  std::mutex native_;
  const char* name_;
#if OLEV_AUDIT_ENABLED
  int order_class_;
#endif
};

/// RAII scoped acquisition (std::lock_guard semantics).  The scoped
/// capability tells the analysis the mutex is held for the lexical scope.
class OLEV_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) OLEV_ACQUIRE(mu) : mu_(mu) { mu.lock(); }
  ~MutexLock() OLEV_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Annotated std::condition_variable.  wait() takes the Mutex itself (the
/// caller keeps its MutexLock alive across the call): the wrapper adopts
/// the already-held native handle, waits, and hands ownership back, so the
/// caller's scoped lock and the analysis both stay consistent.  The
/// lock-order auditor deliberately keeps the mutex on the held chain during
/// the wait: the wait re-acquires the same mutex it released, which cannot
/// introduce a new ordering edge.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu) OLEV_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.native(), std::adopt_lock);
    cv_.wait(native);
    native.release();  // ownership stays with the caller's MutexLock
  }

  /// Waits until `pred()` holds.  The predicate runs with `mu` held but is
  /// analyzed as a separate function: start it with `mu.AssertHeld()` when
  /// it reads OLEV_GUARDED_BY state.
  template <typename Pred>
  void wait(Mutex& mu, Pred pred) OLEV_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.native(), std::adopt_lock);
    try {
      cv_.wait(native, std::move(pred));
    } catch (...) {
      native.release();  // a throwing predicate exits with the lock held
      throw;
    }
    native.release();
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace olev
