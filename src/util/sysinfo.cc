#include "util/sysinfo.h"

#include <thread>

#if defined(__linux__)
#include <sched.h>
#endif

namespace olev::util {

std::size_t available_concurrency() {
#if defined(__linux__)
  cpu_set_t mask;
  CPU_ZERO(&mask);
  if (sched_getaffinity(0, sizeof(mask), &mask) == 0) {
    const int count = CPU_COUNT(&mask);
    if (count > 0) return static_cast<std::size_t>(count);
  }
#endif
  const unsigned reported = std::thread::hardware_concurrency();
  return reported == 0 ? 1 : static_cast<std::size_t>(reported);
}

}  // namespace olev::util
