#include "util/audit.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <sstream>

namespace olev::util::audit {

namespace {

std::atomic<std::size_t> g_firings{0};
std::atomic<Handler> g_handler{nullptr};

}  // namespace

bool is_finite(double x) { return std::isfinite(x); }

bool close(double a, double b, double tol) {
  const double scale = std::max({1.0, std::abs(a), std::abs(b)});
  return std::abs(a - b) <= tol * scale;
}

Handler set_handler(Handler handler) {
  return g_handler.exchange(handler);
}

std::size_t firings() { return g_firings.load(std::memory_order_relaxed); }

void reset_firings() { g_firings.store(0, std::memory_order_relaxed); }

void fail(const char* invariant, const char* file, int line,
          const std::string& detail) {
  g_firings.fetch_add(1, std::memory_order_relaxed);
  std::ostringstream message;
  message << "audit: " << invariant << " violated at " << file << ":" << line;
  if (!detail.empty()) message << ": " << detail;
  if (Handler handler = g_handler.load()) handler(message.str());
  // Reached when no handler is installed *and* when an installed handler
  // returns: a violated invariant never resumes the offending code path.
  throw AuditFailure(message.str());
}

}  // namespace olev::util::audit
