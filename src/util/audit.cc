#include "util/audit.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <exception>
#include <new>
#include <sstream>
#include <string>

namespace olev::util::audit {

namespace {

std::atomic<std::size_t> g_firings{0};
std::atomic<Handler> g_handler{nullptr};

// --- hot-region state (see HotRegion in audit.h / OLEV_HOT_REGION) ---------
//
// Depth and the violation latch are thread-local: a hot region only
// constrains its own thread, and a worker allocating in cold code must not
// trip a region on another thread.  The violation total is global so tests
// and reports can scrape one number.
thread_local std::size_t t_hot_depth = 0;
thread_local const char* t_hot_name = nullptr;
// Latched on the first violation in a region: reporting allocates (fail()
// formats a message, the in-flight AuditFailure unwinds through frames that
// free their locals), and those secondary events must not re-fire.  Cleared
// when the outermost region exits.
thread_local bool t_hot_suppress = false;
// The noexcept allocator entry points (operator delete, nothrow operator
// new) cannot throw at the violation site; events are counted here and
// reported by the outermost HotRegion destructor instead.
thread_local std::size_t t_hot_deferred_events = 0;
// HotBypass nesting depth: > 0 means the interposer ignores this thread.
thread_local std::size_t t_hot_bypass = 0;
std::atomic<std::size_t> g_hot_violations{0};

}  // namespace

HotRegion::HotRegion(const char* name) noexcept
    : name_(name), uncaught_at_entry_(std::uncaught_exceptions()) {
  if (t_hot_depth++ == 0) t_hot_name = name;
}

HotRegion::~HotRegion() noexcept(false) {
  if (--t_hot_depth != 0) return;
  const bool poisoned = t_hot_suppress;
  const std::size_t deferred = t_hot_deferred_events;
  t_hot_name = nullptr;
  t_hot_suppress = false;
  t_hot_deferred_events = 0;
  // Report deferred events only when this is the first violation of the
  // region (an allocation already threw otherwise) and no other exception
  // is unwinding through us.
  if (deferred > 0 && !poisoned &&
      std::uncaught_exceptions() <= uncaught_at_entry_) {
    t_hot_suppress = true;  // fail() itself allocates; restored below
    struct Restore {
      ~Restore() { t_hot_suppress = false; }
    } restore;
    fail("hot_region_free", __FILE__, __LINE__,
         "noexcept allocator entry points (operator delete / nothrow "
         "operator new) ran " +
             std::to_string(deferred) + " time(s) inside hot region '" +
             (name_ != nullptr ? name_ : "?") + "'");
  }
}

HotBypass::HotBypass() noexcept { ++t_hot_bypass; }

HotBypass::~HotBypass() { --t_hot_bypass; }

std::size_t hot_region_depth() { return t_hot_depth; }

const char* hot_region_name() { return t_hot_name; }

std::size_t hot_alloc_violations() {
  return g_hot_violations.load(std::memory_order_relaxed);
}

void reset_hot_alloc_violations() {
  g_hot_violations.store(0, std::memory_order_relaxed);
}

namespace {

// Called from every replaced operator new.  Outside a region (or while a
// violation is already being reported) it is a single thread-local check.
[[maybe_unused]] void check_hot_alloc(std::size_t size) {
  if (t_hot_depth == 0 || t_hot_suppress || t_hot_bypass != 0) return;
  g_hot_violations.fetch_add(1, std::memory_order_relaxed);
  t_hot_suppress = true;
  fail("hot_region_alloc", __FILE__, __LINE__,
       "operator new(" + std::to_string(size) + ") inside hot region '" +
           (t_hot_name != nullptr ? t_hot_name : "?") + "'");
}

// Noexcept entry points (delete, nothrow new): count and defer to the
// region destructor.
[[maybe_unused]] void note_hot_noexcept_event() {
  if (t_hot_depth == 0 || t_hot_suppress || t_hot_bypass != 0) return;
  g_hot_violations.fetch_add(1, std::memory_order_relaxed);
  ++t_hot_deferred_events;
}

[[maybe_unused]] void* interposed_alloc(std::size_t size,
                                        std::size_t align) noexcept {
  return align <= alignof(std::max_align_t)
             ? std::malloc(size != 0 ? size : 1)
             : std::aligned_alloc(align, (size + align - 1) / align * align);
}

}  // namespace

bool is_finite(double x) { return std::isfinite(x); }

bool close(double a, double b, double tol) {
  const double scale = std::max({1.0, std::abs(a), std::abs(b)});
  return std::abs(a - b) <= tol * scale;
}

Handler set_handler(Handler handler) {
  return g_handler.exchange(handler);
}

std::size_t firings() { return g_firings.load(std::memory_order_relaxed); }

void reset_firings() { g_firings.store(0, std::memory_order_relaxed); }

void fail(const char* invariant, const char* file, int line,
          const std::string& detail) {
  g_firings.fetch_add(1, std::memory_order_relaxed);
  std::ostringstream message;
  message << "audit: " << invariant << " violated at " << file << ":" << line;
  if (!detail.empty()) message << ": " << detail;
  if (Handler handler = g_handler.load()) handler(message.str());
  // Reached when no handler is installed *and* when an installed handler
  // returns: a violated invariant never resumes the offending code path.
  throw AuditFailure(message.str());
}

}  // namespace olev::util::audit

#if OLEV_RT_INTERPOSER_ENABLED

// Global new/delete interposition: the dynamic leg of the real-time wall
// (docs/ANALYSIS.md).  Every allocation in an audit build funnels through
// these; the hot-region check is one thread-local load when no region is
// active.  operator delete and the nothrow news are noexcept, so their
// violations are deferred to the HotRegion destructor (see audit.h).

namespace audit_detail = olev::util::audit;

void* operator new(std::size_t size) {
  audit_detail::check_hot_alloc(size);
  void* p = audit_detail::interposed_alloc(size, 0);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, std::align_val_t align) {
  audit_detail::check_hot_alloc(size);
  void* p =
      audit_detail::interposed_alloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  audit_detail::note_hot_noexcept_event();
  return audit_detail::interposed_alloc(size, 0);
}

void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  audit_detail::note_hot_noexcept_event();
  return audit_detail::interposed_alloc(size,
                                        static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t& tag) noexcept {
  return ::operator new(size, align, tag);
}

void operator delete(void* p) noexcept {
  audit_detail::note_hot_noexcept_event();
  std::free(p);
}

void operator delete[](void* p) noexcept { ::operator delete(p); }

void operator delete(void* p, std::size_t) noexcept { ::operator delete(p); }

void operator delete[](void* p, std::size_t) noexcept { ::operator delete(p); }

void operator delete(void* p, std::align_val_t) noexcept {
  ::operator delete(p);
}

void operator delete[](void* p, std::align_val_t) noexcept {
  ::operator delete(p);
}

void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  ::operator delete(p);
}

void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  ::operator delete(p);
}

void operator delete(void* p, const std::nothrow_t&) noexcept {
  ::operator delete(p);
}

void operator delete[](void* p, const std::nothrow_t&) noexcept {
  ::operator delete(p);
}

#endif  // OLEV_RT_INTERPOSER_ENABLED
