#include "util/pwl.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace olev::util {

PiecewiseLinear::PiecewiseLinear(std::vector<std::pair<double, double>> knots)
    : knots_(std::move(knots)) {
  for (std::size_t i = 1; i < knots_.size(); ++i) {
    if (knots_[i].first <= knots_[i - 1].first) {
      throw std::invalid_argument("PiecewiseLinear: knots must be strictly increasing in x");
    }
  }
}

PiecewiseLinear& PiecewiseLinear::periodic(double span) {
  if (span <= 0.0) throw std::invalid_argument("PiecewiseLinear: period must be positive");
  period_ = span;
  return *this;
}

double PiecewiseLinear::wrap(double x) const {
  if (period_ <= 0.0) return x;
  const double base = knots_.empty() ? 0.0 : knots_.front().first;
  double rel = std::fmod(x - base, period_);
  if (rel < 0.0) rel += period_;
  return base + rel;
}

double PiecewiseLinear::operator()(double x) const {
  if (knots_.empty()) return 0.0;
  x = wrap(x);
  if (x <= knots_.front().first) return knots_.front().second;
  if (x >= knots_.back().first) {
    if (period_ > 0.0) {
      // Interpolate across the wrap seam back to the first knot.
      const auto& [x0, y0] = knots_.back();
      const double x1 = knots_.front().first + period_;
      const double y1 = knots_.front().second;
      if (x1 <= x0) return y0;
      const double t = (x - x0) / (x1 - x0);
      return y0 + t * (y1 - y0);
    }
    return knots_.back().second;
  }
  const auto it = std::upper_bound(
      knots_.begin(), knots_.end(), x,
      [](double value, const auto& knot) { return value < knot.first; });
  const auto& [x1, y1] = *it;
  const auto& [x0, y0] = *(it - 1);
  const double t = (x - x0) / (x1 - x0);
  return y0 + t * (y1 - y0);
}

double PiecewiseLinear::integral(double a, double b) const {
  if (knots_.empty() || b <= a) return 0.0;
  // Simple adaptive trapezoid over knot-aligned subintervals would be exact,
  // but periodic wrap + clamping make composite trapezoid with fine steps
  // simpler and accurate enough for profile energy sums (< 1e-9 relative for
  // the curves in this codebase).
  const int steps = std::max(64, static_cast<int>((b - a) * 16.0));
  const double h = (b - a) / steps;
  double sum = 0.5 * ((*this)(a) + (*this)(b));
  for (int i = 1; i < steps; ++i) sum += (*this)(a + h * i);
  return sum * h;
}

double PiecewiseLinear::min_value() const {
  double m = knots_.empty() ? 0.0 : knots_.front().second;
  for (const auto& [x, y] : knots_) m = std::min(m, y);
  return m;
}

double PiecewiseLinear::max_value() const {
  double m = knots_.empty() ? 0.0 : knots_.front().second;
  for (const auto& [x, y] : knots_) m = std::max(m, y);
  return m;
}

PiecewiseLinear PiecewiseLinear::rescaled(double new_min, double new_max) const {
  const double lo = min_value();
  const double hi = max_value();
  PiecewiseLinear out = *this;
  if (hi <= lo) return out;
  const double scale = (new_max - new_min) / (hi - lo);
  for (auto& [x, y] : out.knots_) y = new_min + (y - lo) * scale;
  return out;
}

}  // namespace olev::util
