// Minimal streaming JSON writer (no DOM, no dependencies): enough to dump
// experiment results for post-hoc analysis in any plotting environment.
// Handles escaping and the non-finite-double pitfall (JSON has no NaN/Inf;
// they are emitted as null).
#pragma once

#include <string>
#include <vector>

namespace olev::util {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  /// Starts a key inside an object; follow with a value call.
  JsonWriter& key(const std::string& name);
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::size_t v);
  JsonWriter& value(bool v);
  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& null();
  /// Convenience: numeric array in one call.
  JsonWriter& value(const std::vector<double>& values);

  const std::string& str() const { return out_; }

 private:
  void separator();

  std::string out_;
  // Context stack: 'o' = object awaiting key, 'v' = object awaiting value,
  // 'a' = array.  first_ tracks whether a comma is needed.
  std::vector<char> stack_;
  std::vector<bool> first_;
};

/// Escapes a string for embedding in JSON (quotes not included).  Control
/// characters, DEL, and non-ASCII input all become \uXXXX escapes (malformed
/// UTF-8 is replaced with U+FFFD); delegates to obs::json_escape so every
/// exporter in the repo emits ASCII-only, parseable strings.
std::string json_escape(const std::string& text);

}  // namespace olev::util
