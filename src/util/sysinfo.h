// Process-level hardware discovery.
//
// std::thread::hardware_concurrency() reports the machine's logical CPU
// count, which overstates what a container or taskset-restricted CI runner
// may actually use -- and some sandboxes make it return 0 or 1 on multi-core
// hosts.  available_concurrency() consults the scheduler affinity mask
// first, so benches report the parallelism the process can really get.
#pragma once

#include <cstddef>

namespace olev::util {

/// CPUs available to *this process*: the CPU-affinity mask cardinality when
/// the platform exposes one (cgroup/taskset aware), otherwise
/// std::thread::hardware_concurrency().  Never returns 0.
[[nodiscard]] std::size_t available_concurrency();

}  // namespace olev::util
