// Real-time hot-path discipline markers (docs/ANALYSIS.md, "Real-time wall").
//
// The serving hot path -- water-filling, best response, the incremental Game
// update, the mean-field iteration, the svc batch engine -- must never hide
// an allocation, a lock, a throw, or a syscall: the grid prices a moving
// OLEV while it is still on the powered section, so a 3us update that takes
// a malloc-induced millisecond stall misses the vehicle entirely.  This
// header provides the annotations that make that discipline machine-checked
// at TWO layers:
//
//   1. Statically, by tools/olev_rtcheck.py: the tree is compiled with
//      -ffunction-sections and the checker walks the objdump -dr relocation
//      call graph from every OLEV_HOT_ROOT, rejecting any path that reaches
//      operator new / malloc / pthread_mutex_* / __cxa_throw / I/O wrappers.
//      The roots, traversal stops and indirect-call allowances below are
//      registered as strings in dedicated ELF sections of the object files
//      (olev_hot_roots / olev_hot_stops / olev_hot_vcalls), so the manifest
//      the checker consumes is emitted by the annotations themselves and can
//      never drift from the code.
//   2. Dynamically, by the OLEV_AUDIT interposer (util/audit.h): inside an
//      OLEV_HOT_REGION scope, any operator new fires audit::fail in audit
//      builds.  The static wall proves the absence of allocation call paths;
//      the region guard catches whatever a checker bug or an unanalyzed
//      build flag would let through.
//
// Annotation vocabulary:
//   OLEV_HOT                 -- [[gnu::hot]] placement attribute for hot
//                               functions (optimizer hint; checker-neutral).
//   OLEV_HOT_ROOT("name")    -- registers a demangled function name as a
//                               traversal root.  Matches the exact name, any
//                               overload ("name(...)"), any template
//                               instantiation ("name<...>"), and compiler
//                               clones ("name(...) [clone .constprop.0]").
//   OLEV_RT_STOP("prefix")   -- registers a demangled-name PREFIX at which
//                               traversal stops: [[noreturn]] cold failure
//                               helpers whose throw/format/alloc machinery
//                               only runs once the RT contract is already
//                               broken.  The success path never enters them.
//   OLEV_RT_VCALL_OK("name", "why")
//                            -- allows indirect calls (virtual dispatch)
//                               inside the named function.  The rationale is
//                               carried next to the name in the manifest;
//                               every override reachable from an allowed
//                               site must itself be a registered hot root.
//   OLEV_HOT_REGION("name")  -- RAII dynamic hot-region marker; expands to
//                               nothing outside -DOLEV_AUDIT=ON builds.
//
// Cold-stop policy: hot functions funnel every precondition failure through
// the out-of-line [[noreturn]] helpers below instead of inline `throw`
// statements.  Callers still observe the same exception types (tests pin
// them); the static wall treats the helpers as leaves, mirroring how RTSan
// scopes out sanctioned escape hatches.
#pragma once

#include "util/audit.h"

#if defined(__GNUC__) && defined(__ELF__)

#define OLEV_HOT [[gnu::hot]]
#define OLEV_RT_COLD [[gnu::cold]]

#define OLEV_RT_DETAIL_CAT2(a, b) a##b
#define OLEV_RT_DETAIL_CAT(a, b) OLEV_RT_DETAIL_CAT2(a, b)
// `used` keeps the string alive without references; `aligned(1)` packs the
// section into plain NUL-terminated strings that readelf -p lists verbatim.
#define OLEV_RT_DETAIL_REGISTER(section_name, payload)              \
  static const char OLEV_RT_DETAIL_CAT(olev_rt_reg_, __COUNTER__)[] \
      __attribute__((used, section(section_name), aligned(1))) = payload

#define OLEV_HOT_ROOT(name) OLEV_RT_DETAIL_REGISTER("olev_hot_roots", name)
#define OLEV_RT_STOP(name) OLEV_RT_DETAIL_REGISTER("olev_hot_stops", name)
#define OLEV_RT_VCALL_OK(name, rationale) \
  OLEV_RT_DETAIL_REGISTER("olev_hot_vcalls", name "|" rationale)

#else  // non-ELF / non-GNU: annotations degrade to nothing.

#define OLEV_HOT
#define OLEV_RT_COLD
#define OLEV_HOT_ROOT(name) static_assert(true)
#define OLEV_RT_STOP(name) static_assert(true)
#define OLEV_RT_VCALL_OK(name, rationale) static_assert(true)

#endif

// Dynamic backstop: marks the enclosing scope as a hot region for the
// OLEV_AUDIT new/delete interposer (util/audit.h).  Compiles out entirely in
// non-audit builds, so the production hot path carries zero overhead.
#if OLEV_AUDIT_ENABLED
#define OLEV_HOT_REGION(region_name)                       \
  ::olev::util::audit::HotRegion OLEV_RT_DETAIL_CAT(       \
      olev_hot_region_, __LINE__) {                        \
    region_name                                            \
  }
#else
#define OLEV_HOT_REGION(region_name) static_cast<void>(0)
#endif

namespace olev::util {

// Cold [[noreturn]] failure funnels for hot code.  Each throws the standard
// exception its name says; the bodies live in hot.cc, which registers the
// shared "olev::util::hot_fail" prefix as a traversal stop.
[[noreturn]] OLEV_RT_COLD void hot_fail_invalid_argument(const char* what);
[[noreturn]] OLEV_RT_COLD void hot_fail_out_of_range(const char* what);
[[noreturn]] OLEV_RT_COLD void hot_fail_logic_error(const char* what);

}  // namespace olev::util
