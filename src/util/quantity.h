// Zero-overhead compile-time dimensional analysis for the pricing core.
//
// The pricing policy moves quantities with incompatible units through what
// used to be a single `double` type: energy requests p_n (kWh), section
// capacities P_c (kW), payments Psi_n ($/h), LBMP ($/MWh), velocities (mph
// vs m/s) and intersection times (s).  units.h converts between them, but
// nothing stopped a caller from passing kW where kWh was expected.  This
// header is the compile-time half of that contract (the runtime half is
// audit.h): a Quantity type whose dimension -- integer exponents over the
// base dimensions energy, money, time and length -- is part of the type, so
// cross-dimension arithmetic fails to compile.
//
//   Dimension algebra (power and price are derived, not base, dimensions):
//     power    = energy * time^-1          kW  = kWh / h
//     velocity = length * time^-1          m/s, mph
//     price    = money  * energy^-1        $/kWh, $/MWh
//     pay rate = money  * time^-1          $/h  (the unit of Psi_n, Eq. 8-9)
//
// Each unit of a dimension is a distinct type carrying a constexpr scale to
// the dimension's coherent basis (kWh, $, h, m).  Multiplication multiplies
// scales, so `kw(3) * hours(2)` *is* a KilowattHours with raw value 6.0 --
// no runtime conversion ever happens inside arithmetic, which keeps results
// bit-identical to the raw-double code this replaces (the zero-overhead
// claim BENCH_micro_hotpath pins).  Mixing units of the same dimension
// (Seconds + Hours, mph where m/s is expected) is also a compile error;
// conversions are explicit through the to_*() helpers below, which reuse
// the exact units.h formulas.
//
// Solver inner loops intentionally stay on the raw representation: spans of
// `double` (e.g. the other-load vector b, in kW) are the documented inner
// Rep of the solvers, unwrapped at the public API boundary via .value().
#pragma once

#include <concepts>

#include "util/units.h"

namespace olev::util {

/// Integer exponents over the base dimensions.  A structural type so a
/// value of it can be a template parameter.
struct Dim {
  int energy = 0;
  int money = 0;
  int time = 0;
  int length = 0;

  friend constexpr bool operator==(Dim, Dim) = default;
};

constexpr Dim dim_add(Dim a, Dim b) {
  return {a.energy + b.energy, a.money + b.money, a.time + b.time,
          a.length + b.length};
}
constexpr Dim dim_sub(Dim a, Dim b) {
  return {a.energy - b.energy, a.money - b.money, a.time - b.time,
          a.length - b.length};
}
constexpr bool dimensionless(Dim d) { return d == Dim{}; }

inline constexpr Dim kEnergyDim{1, 0, 0, 0};
inline constexpr Dim kMoneyDim{0, 1, 0, 0};
inline constexpr Dim kTimeDim{0, 0, 1, 0};
inline constexpr Dim kLengthDim{0, 0, 0, 1};
inline constexpr Dim kPowerDim{1, 0, -1, 0};
inline constexpr Dim kVelocityDim{0, 0, -1, 1};
inline constexpr Dim kPriceDim{-1, 1, 0, 0};
inline constexpr Dim kPayRateDim{0, 1, -1, 0};
inline constexpr Dim kTimePerLengthDim{0, 0, 1, -1};

/// A value of dimension D in a unit whose scale to the coherent basis
/// (kWh, $, h, m) is S.  Layout- and ABI-compatible with Rep: one member,
/// trivially copyable, every operation constexpr -- zero overhead.
template <Dim D, double S, class Rep = double>
class [[nodiscard]] Quantity {
  static_assert(S > 0.0, "unit scale must be positive");

 public:
  using rep = Rep;
  static constexpr Dim dim = D;
  static constexpr double scale = S;

  constexpr Quantity() = default;
  constexpr explicit Quantity(Rep value) : value_(value) {}

  /// The raw magnitude in *this unit* (not the coherent basis).
  constexpr Rep value() const { return value_; }

  constexpr Quantity operator+() const { return *this; }
  constexpr Quantity operator-() const { return Quantity{-value_}; }

  constexpr Quantity& operator+=(Quantity other) {
    value_ += other.value_;
    return *this;
  }
  constexpr Quantity& operator-=(Quantity other) {
    value_ -= other.value_;
    return *this;
  }
  constexpr Quantity& operator*=(Rep s) {
    value_ *= s;
    return *this;
  }
  constexpr Quantity& operator/=(Rep s) {
    value_ /= s;
    return *this;
  }

  // Same-unit-only comparison and additive arithmetic: comparing or adding
  // across dimensions (kW vs kWh) or across units of one dimension (s vs h)
  // does not compile.
  friend constexpr bool operator==(Quantity a, Quantity b) = default;
  friend constexpr auto operator<=>(Quantity a, Quantity b) = default;

  friend constexpr Quantity operator+(Quantity a, Quantity b) {
    return Quantity{a.value_ + b.value_};
  }
  friend constexpr Quantity operator-(Quantity a, Quantity b) {
    return Quantity{a.value_ - b.value_};
  }
  friend constexpr Quantity operator*(Quantity a, Rep s) {
    return Quantity{a.value_ * s};
  }
  friend constexpr Quantity operator*(Rep s, Quantity a) {
    return Quantity{s * a.value_};
  }
  friend constexpr Quantity operator/(Quantity a, Rep s) {
    return Quantity{a.value_ / s};
  }

 private:
  Rep value_{};
};

/// Dimension algebra: the product's dimension is the sum of exponents and
/// its scale the product of scales, so kW * h is exactly KilowattHours and
/// m/s * s is exactly Meters.  A product whose dimensions cancel at scale 1
/// collapses back to the representation type.
template <Dim D1, double S1, Dim D2, double S2, class Rep>
constexpr auto operator*(Quantity<D1, S1, Rep> a, Quantity<D2, S2, Rep> b) {
  constexpr Dim d = dim_add(D1, D2);
  if constexpr (dimensionless(d) && S1 * S2 == 1.0) {
    return a.value() * b.value();
  } else {
    return Quantity<d, S1 * S2, Rep>{a.value() * b.value()};
  }
}

template <Dim D1, double S1, Dim D2, double S2, class Rep>
constexpr auto operator/(Quantity<D1, S1, Rep> a, Quantity<D2, S2, Rep> b) {
  constexpr Dim d = dim_sub(D1, D2);
  if constexpr (dimensionless(d) && S1 / S2 == 1.0) {
    return a.value() / b.value();
  } else {
    return Quantity<d, S1 / S2, Rep>{a.value() / b.value()};
  }
}

template <Dim D, double S, class Rep>
constexpr auto operator/(Rep s, Quantity<D, S, Rep> q) {
  return Quantity<dim_sub(Dim{}, D), 1.0 / S, Rep>{s / q.value()};
}

// ---- the units the paper's quantities actually use ----
using KilowattHours = Quantity<kEnergyDim, 1.0>;
using MegawattHours = Quantity<kEnergyDim, 1000.0>;
using Joules = Quantity<kEnergyDim, 1.0 / 3.6e6>;

using Kilowatts = Quantity<kPowerDim, 1.0>;
using Megawatts = Quantity<kPowerDim, 1000.0>;
using Watts = Quantity<kPowerDim, 1e-3>;

using Hours = Quantity<kTimeDim, 1.0>;
using Minutes = Quantity<kTimeDim, 1.0 / 60.0>;
using Seconds = Quantity<kTimeDim, 1.0 / 3600.0>;

using Meters = Quantity<kLengthDim, 1.0>;
using Kilometers = Quantity<kLengthDim, 1000.0>;
using Miles = Quantity<kLengthDim, 1609.344>;

using MetersPerSecond = Quantity<kVelocityDim, 3600.0>;
using KilometersPerHour = Quantity<kVelocityDim, 1000.0>;
using MilesPerHour = Quantity<kVelocityDim, 1609.344>;

using Dollars = Quantity<kMoneyDim, 1.0>;
using DollarsPerKwh = Quantity<kPriceDim, 1.0>;
using DollarsPerMwh = Quantity<kPriceDim, 1.0 / 1000.0>;
using DollarsPerHour = Quantity<kPayRateDim, 1.0>;
using SecondsPerMeter = Quantity<kTimePerLengthDim, 1.0 / 3600.0>;

// ---- factories (work on runtime values; literals below need constants) ----
constexpr KilowattHours kwh(double v) { return KilowattHours{v}; }
constexpr MegawattHours mwh(double v) { return MegawattHours{v}; }
constexpr Joules joules(double v) { return Joules{v}; }
constexpr Kilowatts kw(double v) { return Kilowatts{v}; }
constexpr Megawatts megawatts(double v) { return Megawatts{v}; }
constexpr Megawatts mw(double v) { return Megawatts{v}; }  ///< repo `_mw` idiom
constexpr Hours hours(double v) { return Hours{v}; }
constexpr Minutes minutes(double v) { return Minutes{v}; }
constexpr Seconds seconds(double v) { return Seconds{v}; }
constexpr Meters meters(double v) { return Meters{v}; }
constexpr Kilometers kilometers(double v) { return Kilometers{v}; }
constexpr Miles miles(double v) { return Miles{v}; }
constexpr MetersPerSecond mps(double v) { return MetersPerSecond{v}; }
constexpr KilometersPerHour kmh(double v) { return KilometersPerHour{v}; }
constexpr MilesPerHour mph(double v) { return MilesPerHour{v}; }
constexpr Dollars dollars(double v) { return Dollars{v}; }
constexpr DollarsPerHour dollars_per_hour(double v) { return DollarsPerHour{v}; }
constexpr SecondsPerMeter seconds_per_meter(double v) {
  return SecondsPerMeter{v};
}

/// Price factories (the LBMP and the pricing policies quote in $/MWh; the
/// marginal payment Z' works in $/kWh).
struct Price {
  static constexpr DollarsPerKwh per_kwh(double v) { return DollarsPerKwh{v}; }
  static constexpr DollarsPerMwh per_mwh(double v) { return DollarsPerMwh{v}; }
};

// ---- explicit unit conversions ----
// Same formulas as units.h (bit-identical to the raw-double call sites this
// layer replaced).  Cross-unit arithmetic without one of these is a compile
// error by design.
constexpr MetersPerSecond to_mps(MilesPerHour v) {
  return MetersPerSecond{mph_to_mps(v.value())};
}
constexpr MetersPerSecond to_mps(KilometersPerHour v) {
  return MetersPerSecond{kmh_to_mps(v.value())};
}
constexpr MilesPerHour to_mph(MetersPerSecond v) {
  return MilesPerHour{mps_to_mph(v.value())};
}
constexpr KilometersPerHour to_kmh(MetersPerSecond v) {
  return KilometersPerHour{mps_to_kmh(v.value())};
}
constexpr Seconds to_seconds(Hours h) { return Seconds{hours_to_seconds(h.value())}; }
constexpr Seconds to_seconds(Minutes m) {
  return Seconds{minutes_to_seconds(m.value())};
}
constexpr Hours to_hours(Seconds s) { return Hours{seconds_to_hours(s.value())}; }
constexpr Minutes to_minutes(Seconds s) {
  return Minutes{seconds_to_minutes(s.value())};
}
constexpr KilowattHours to_kwh(Joules j) {
  return KilowattHours{joule_to_kwh(j.value())};
}
constexpr KilowattHours to_kwh(MegawattHours m) {
  return KilowattHours{m.value() * 1000.0};
}
constexpr Joules to_joules(KilowattHours e) {
  return Joules{kwh_to_joule(e.value())};
}
constexpr Kilowatts to_kw(Megawatts m) { return Kilowatts{mw_to_kw(m.value())}; }
constexpr Kilowatts to_kw(Watts w) { return Kilowatts{w_to_kw(w.value())}; }
constexpr Megawatts to_mw(Kilowatts k) { return Megawatts{kw_to_mw(k.value())}; }
constexpr Kilometers to_kilometers(Meters m) { return Kilometers{m.value() / 1e3}; }
constexpr Meters to_meters(Kilometers k) { return Meters{k.value() * 1e3}; }
constexpr DollarsPerKwh to_per_kwh(DollarsPerMwh p) {
  return DollarsPerKwh{p.value() / 1000.0};
}
constexpr DollarsPerMwh to_per_mwh(DollarsPerKwh p) {
  return DollarsPerMwh{p.value() * 1000.0};
}

/// Generic rescale within one dimension, for unit pairs without a named
/// converter.  Multiplies by the compile-time scale ratio, which may differ
/// from the hand-written units.h formulas by 1 ulp -- prefer the named
/// to_*() helpers on golden-sensitive paths.
template <class To, Dim D, double S, class Rep>
  requires(To::dim == D) && std::same_as<typename To::rep, Rep>
constexpr To quantity_cast(Quantity<D, S, Rep> q) {
  return To{q.value() * (S / To::scale)};
}

/// Eq. (1)-style energy bookkeeping: power sustained over a duration.
constexpr KilowattHours energy_from(Kilowatts p, Seconds dt) {
  return KilowattHours{kwh_from_kw(p.value(), dt.value())};
}

/// Ah * V -> kWh pack energy (Chevy Spark constants in Section V).
constexpr KilowattHours pack_energy(double ah, double volts) {
  return KilowattHours{ah_volts_to_kwh(ah, volts)};
}

inline namespace unit_literals {
constexpr KilowattHours operator""_kWh(long double v) {
  return KilowattHours{static_cast<double>(v)};
}
constexpr KilowattHours operator""_kWh(unsigned long long v) {
  return KilowattHours{static_cast<double>(v)};
}
constexpr MegawattHours operator""_MWh(long double v) {
  return MegawattHours{static_cast<double>(v)};
}
constexpr Kilowatts operator""_kW(long double v) {
  return Kilowatts{static_cast<double>(v)};
}
constexpr Kilowatts operator""_kW(unsigned long long v) {
  return Kilowatts{static_cast<double>(v)};
}
constexpr Megawatts operator""_MW(long double v) {
  return Megawatts{static_cast<double>(v)};
}
constexpr Megawatts operator""_MW(unsigned long long v) {
  return Megawatts{static_cast<double>(v)};
}
constexpr Hours operator""_h(long double v) { return Hours{static_cast<double>(v)}; }
constexpr Hours operator""_h(unsigned long long v) {
  return Hours{static_cast<double>(v)};
}
constexpr Seconds operator""_s(long double v) {
  return Seconds{static_cast<double>(v)};
}
constexpr Seconds operator""_s(unsigned long long v) {
  return Seconds{static_cast<double>(v)};
}
constexpr Meters operator""_m(long double v) { return Meters{static_cast<double>(v)}; }
constexpr Meters operator""_m(unsigned long long v) {
  return Meters{static_cast<double>(v)};
}
constexpr Kilometers operator""_km(long double v) {
  return Kilometers{static_cast<double>(v)};
}
constexpr Kilometers operator""_km(unsigned long long v) {
  return Kilometers{static_cast<double>(v)};
}
constexpr MetersPerSecond operator""_mps(long double v) {
  return MetersPerSecond{static_cast<double>(v)};
}
constexpr MilesPerHour operator""_mph(long double v) {
  return MilesPerHour{static_cast<double>(v)};
}
constexpr MilesPerHour operator""_mph(unsigned long long v) {
  return MilesPerHour{static_cast<double>(v)};
}
constexpr Dollars operator""_usd(long double v) {
  return Dollars{static_cast<double>(v)};
}
}  // namespace unit_literals

}  // namespace olev::util
