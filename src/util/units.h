// Unit conversions and physical constants.  Internally the library works in
// SI (meters, seconds, watts, joules); user-facing APIs and the benchmark
// harnesses convert to the paper's units (mph, kW, kWh, $) at the edges.
#pragma once

namespace olev::util {

inline constexpr double kMilesPerKm = 0.621371;
inline constexpr double kSecondsPerHour = 3600.0;

constexpr double mph_to_mps(double mph) { return mph * 0.44704; }
constexpr double mps_to_mph(double mps) { return mps / 0.44704; }
constexpr double kmh_to_mps(double kmh) { return kmh / 3.6; }
constexpr double mps_to_kmh(double mps) { return mps * 3.6; }

constexpr double kw_to_w(double kw) { return kw * 1e3; }
constexpr double w_to_kw(double w) { return w * 1e-3; }
constexpr double mw_to_kw(double mw) { return mw * 1e3; }
constexpr double kw_to_mw(double kw) { return kw * 1e-3; }

constexpr double kwh_to_joule(double kwh) { return kwh * 3.6e6; }
constexpr double joule_to_kwh(double j) { return j / 3.6e6; }

/// Energy (kWh) delivered by power p_kw applied for dt seconds.
constexpr double kwh_from_kw(double p_kw, double dt_s) {
  return p_kw * dt_s / kSecondsPerHour;
}

constexpr double hours_to_seconds(double h) { return h * kSecondsPerHour; }
constexpr double seconds_to_hours(double s) { return s / kSecondsPerHour; }
constexpr double minutes_to_seconds(double m) { return m * 60.0; }
constexpr double seconds_to_minutes(double s) { return s / 60.0; }

/// Ah * V -> kWh (battery pack energy from charge capacity and voltage).
constexpr double ah_volts_to_kwh(double ah, double volts) {
  return ah * volts / 1000.0;
}

}  // namespace olev::util
