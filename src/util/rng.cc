#include "util/rng.h"

#include <cmath>
#include <numbers>

namespace olev::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
  // All-zero state is the one forbidden state for xoshiro; splitmix64 cannot
  // produce four zero outputs in a row, but guard anyway.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 1;
  }
  has_cached_normal_ = false;
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 top bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>((*this)());  // full range
  // Lemire-style rejection to remove modulo bias.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * range;
  auto low = static_cast<std::uint64_t>(m);
  if (low < range) {
    const std::uint64_t threshold = -range % range;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * range;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return lo + static_cast<std::int64_t>(m >> 64);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

double Rng::exponential(double rate) {
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -std::log(u) / rate;
}

std::uint64_t Rng::poisson(double mean) {
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    // Knuth's product-of-uniforms method.
    const double threshold = std::exp(-mean);
    std::uint64_t k = 0;
    double product = uniform();
    while (product > threshold) {
      ++k;
      product *= uniform();
    }
    return k;
  }
  // Normal approximation with continuity correction; adequate for the
  // traffic-arrival means (< a few hundred) used in this project.
  const double sample = normal(mean, std::sqrt(mean));
  return sample <= 0.0 ? 0 : static_cast<std::uint64_t>(sample + 0.5);
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

Rng Rng::split() { return Rng((*this)() ^ 0xd1b54a32d192ed03ULL); }

std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream) {
  std::uint64_t x = base ^ (0x9e3779b97f4a7c15ULL * (stream + 1));
  return splitmix64(x);
}

}  // namespace olev::util
