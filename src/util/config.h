// Minimal INI-style configuration files for examples and experiment
// harnesses:
//
//   # comment
//   [scenario]
//   num_olevs = 50
//   velocity_mph = 60
//   pricing = nonlinear
//
// Sections are optional; keys before any section header live in the ""
// section.  Values are strings with typed accessors; unknown keys are
// enumerable so harnesses can reject typos.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace olev::util {

class Config {
 public:
  Config() = default;

  /// Parses INI text; throws std::runtime_error with a line number on
  /// malformed input (unterminated section header, missing '=').
  static Config parse(const std::string& text);
  /// Loads and parses a file; throws std::runtime_error if unreadable.
  static Config load(const std::string& path);

  bool has(const std::string& section, const std::string& key) const;

  /// Raw string lookup.
  std::optional<std::string> get(const std::string& section,
                                 const std::string& key) const;

  // Typed accessors with defaults; throw std::runtime_error when the value
  // exists but does not parse as the requested type.
  std::string get_string(const std::string& section, const std::string& key,
                         const std::string& fallback) const;
  double get_double(const std::string& section, const std::string& key,
                    double fallback) const;
  std::int64_t get_int(const std::string& section, const std::string& key,
                       std::int64_t fallback) const;
  bool get_bool(const std::string& section, const std::string& key,
                bool fallback) const;

  void set(const std::string& section, const std::string& key,
           const std::string& value);

  /// All keys of a section, in insertion order.
  std::vector<std::string> keys(const std::string& section) const;
  /// All section names that hold at least one key.
  std::vector<std::string> sections() const;

 private:
  // section -> ordered (key, value) pairs.
  std::map<std::string, std::vector<std::pair<std::string, std::string>>> data_;
};

/// Trims ASCII whitespace from both ends.
std::string trim(const std::string& text);

}  // namespace olev::util
