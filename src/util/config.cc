#include "util/config.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace olev::util {

std::string trim(const std::string& text) {
  auto begin = text.begin();
  auto end = text.end();
  while (begin != end && std::isspace(static_cast<unsigned char>(*begin))) ++begin;
  while (end != begin && std::isspace(static_cast<unsigned char>(*(end - 1)))) --end;
  return std::string(begin, end);
}

Config Config::parse(const std::string& text) {
  Config config;
  std::istringstream in(text);
  std::string line;
  std::string section;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::string stripped = trim(line);
    if (stripped.empty() || stripped[0] == '#' || stripped[0] == ';') continue;
    if (stripped.front() == '[') {
      if (stripped.back() != ']' || stripped.size() < 3) {
        throw std::runtime_error("Config: malformed section header at line " +
                                 std::to_string(line_number));
      }
      section = trim(stripped.substr(1, stripped.size() - 2));
      continue;
    }
    const auto eq = stripped.find('=');
    if (eq == std::string::npos) {
      throw std::runtime_error("Config: missing '=' at line " +
                               std::to_string(line_number));
    }
    const std::string key = trim(stripped.substr(0, eq));
    if (key.empty()) {
      throw std::runtime_error("Config: empty key at line " +
                               std::to_string(line_number));
    }
    config.set(section, key, trim(stripped.substr(eq + 1)));
  }
  return config;
}

Config Config::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("Config: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

void Config::set(const std::string& section, const std::string& key,
                 const std::string& value) {
  auto& entries = data_[section];
  for (auto& [existing_key, existing_value] : entries) {
    if (existing_key == key) {
      existing_value = value;  // last assignment wins
      return;
    }
  }
  entries.emplace_back(key, value);
}

bool Config::has(const std::string& section, const std::string& key) const {
  return get(section, key).has_value();
}

std::optional<std::string> Config::get(const std::string& section,
                                       const std::string& key) const {
  const auto it = data_.find(section);
  if (it == data_.end()) return std::nullopt;
  for (const auto& [existing_key, value] : it->second) {
    if (existing_key == key) return value;
  }
  return std::nullopt;
}

std::string Config::get_string(const std::string& section, const std::string& key,
                               const std::string& fallback) const {
  return get(section, key).value_or(fallback);
}

double Config::get_double(const std::string& section, const std::string& key,
                          double fallback) const {
  const auto value = get(section, key);
  if (!value) return fallback;
  try {
    std::size_t consumed = 0;
    const double parsed = std::stod(*value, &consumed);
    if (consumed != value->size()) throw std::invalid_argument("trailing");
    return parsed;
  } catch (const std::exception&) {
    throw std::runtime_error("Config: [" + section + "] " + key +
                             " is not a number: '" + *value + "'");
  }
}

std::int64_t Config::get_int(const std::string& section, const std::string& key,
                             std::int64_t fallback) const {
  const auto value = get(section, key);
  if (!value) return fallback;
  try {
    std::size_t consumed = 0;
    const std::int64_t parsed = std::stoll(*value, &consumed);
    if (consumed != value->size()) throw std::invalid_argument("trailing");
    return parsed;
  } catch (const std::exception&) {
    throw std::runtime_error("Config: [" + section + "] " + key +
                             " is not an integer: '" + *value + "'");
  }
}

bool Config::get_bool(const std::string& section, const std::string& key,
                      bool fallback) const {
  const auto value = get(section, key);
  if (!value) return fallback;
  std::string lowered = *value;
  std::transform(lowered.begin(), lowered.end(), lowered.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lowered == "true" || lowered == "1" || lowered == "yes" || lowered == "on") {
    return true;
  }
  if (lowered == "false" || lowered == "0" || lowered == "no" || lowered == "off") {
    return false;
  }
  throw std::runtime_error("Config: [" + section + "] " + key +
                           " is not a boolean: '" + *value + "'");
}

std::vector<std::string> Config::keys(const std::string& section) const {
  std::vector<std::string> out;
  const auto it = data_.find(section);
  if (it == data_.end()) return out;
  out.reserve(it->second.size());
  for (const auto& [key, value] : it->second) out.push_back(key);
  return out;
}

std::vector<std::string> Config::sections() const {
  std::vector<std::string> out;
  out.reserve(data_.size());
  for (const auto& [section, entries] : data_) {
    if (!entries.empty()) out.push_back(section);
  }
  return out;
}

}  // namespace olev::util
