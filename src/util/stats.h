// Online and batch descriptive statistics used by the experiment harnesses.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace olev::util {

/// Welford's online mean/variance accumulator.  Numerically stable; merging
/// two accumulators is supported so per-shard statistics can be combined.
class Accumulator {
 public:
  void add(double x);
  void merge(const Accumulator& other);

  std::size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Five-number-style summary of a batch of samples.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double max = 0.0;
};

/// Computes a Summary over `samples` (copies; does not reorder the input).
Summary summarize(std::span<const double> samples);

/// Linear-interpolated percentile, q in [0, 100].  Requires non-empty input.
double percentile(std::span<const double> samples, double q);

/// Mean of a span; 0 for empty input.
double mean_of(std::span<const double> samples);

/// Maximum absolute difference between two equal-length spans.
double max_abs_diff(std::span<const double> a, std::span<const double> b);

/// Jain's fairness index: (sum x)^2 / (n * sum x^2).  1.0 means perfectly
/// balanced; 1/n means all mass on one element.  Returns 1.0 for empty or
/// all-zero input (vacuously balanced).
double jain_fairness(std::span<const double> xs);

/// Population coefficient of variation (stddev/mean); 0 if mean is 0.
double coefficient_of_variation(std::span<const double> xs);

/// Fixed-width histogram over [lo, hi) with `bins` buckets; out-of-range
/// samples are clamped into the first/last bucket.
std::vector<std::size_t> histogram(std::span<const double> samples, double lo,
                                   double hi, std::size_t bins);

}  // namespace olev::util
