// Tabular output: CSV files for post-processing and aligned text tables for
// the benchmark harnesses (which print the series the paper plots).
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace olev::util {

/// Accumulates rows of string/number cells and renders them either as CSV or
/// as an aligned console table.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  Table& add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  Table& add_row_numeric(const std::vector<double>& cells, int precision = 3);

  std::size_t rows() const { return rows_.size(); }
  const std::vector<std::string>& header() const { return header_; }

  void write_csv(std::ostream& os) const;
  /// Writes an aligned, pipe-separated table suitable for terminal output.
  void write_pretty(std::ostream& os) const;

  /// Writes CSV to `path`; throws std::runtime_error on I/O failure.
  void save_csv(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper for Table cells).
std::string fmt(double value, int precision = 3);

/// Escapes a CSV cell (quotes fields containing comma/quote/newline).
std::string csv_escape(const std::string& cell);

}  // namespace olev::util
