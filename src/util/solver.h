// Scalar root finding and 1-D optimization primitives.
//
// The pricing game reduces every per-player update to monotone scalar
// problems (Lemma IV.1's water level, Lemma IV.3's first-order condition),
// so robust bracketing solvers are the numerical backbone of the library.
#pragma once

#include <functional>

namespace olev::util {

struct SolverResult {
  double x = 0.0;        ///< located root / maximizer
  double fx = 0.0;       ///< function value at x
  int iterations = 0;    ///< iterations consumed
  bool converged = false;
};

struct SolverOptions {
  double x_tolerance = 1e-10;   ///< stop when bracket width falls below this
  double f_tolerance = 1e-12;   ///< stop when |f(x)| falls below this (roots)
  int max_iterations = 200;
};

/// Bisection root find for a continuous function with f(lo) and f(hi) of
/// opposite (or zero) sign.  If the signs agree, returns the endpoint with
/// the smaller |f| and converged=false.
SolverResult bisect_root(const std::function<double(double)>& f, double lo,
                         double hi, const SolverOptions& opts = {});

/// Root find for a *nonincreasing* function (f(lo) >= 0 >= f(hi) expected).
/// Clamps to the endpoints when f does not change sign: returns lo when
/// f(lo) < 0 and hi when f(hi) > 0, with converged=true -- matching the
/// endpoint cases of Lemma IV.3's best-response characterization.
SolverResult decreasing_root_clamped(const std::function<double(double)>& f,
                                     double lo, double hi,
                                     const SolverOptions& opts = {});

/// Golden-section search for the maximizer of a unimodal (e.g. strictly
/// concave) function on [lo, hi].
SolverResult golden_section_max(const std::function<double(double)>& f,
                                double lo, double hi,
                                const SolverOptions& opts = {});

}  // namespace olev::util
