#include "util/hot.h"

#include <stdexcept>

// The helpers are the sanctioned exit from a hot function whose precondition
// was violated: the RT discipline guarantees the *success* path, and a
// broken contract may spend whatever it needs on a good diagnostic.  The
// prefix registration below stops olev_rtcheck.py's traversal at all three.
OLEV_RT_STOP("olev::util::hot_fail");

namespace olev::util {

void hot_fail_invalid_argument(const char* what) {
  throw std::invalid_argument(what);
}

void hot_fail_out_of_range(const char* what) { throw std::out_of_range(what); }

void hot_fail_logic_error(const char* what) { throw std::logic_error(what); }

}  // namespace olev::util
