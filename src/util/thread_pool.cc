#include "util/thread_pool.h"

#include <algorithm>
#include <exception>
#include <limits>

namespace olev::util {

std::size_t resolve_threads(std::size_t requested) {
  if (requested > 0) return requested;
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t count = resolve_threads(threads);
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::enqueue(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(job));
  }
  wake_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();  // packaged_task captures exceptions in the future
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;

  // Every queued task owns shared copies of its state: if enqueueing fails
  // halfway (e.g. bad_alloc) or a body throws while later tasks are still
  // queued, the already-queued tasks stay self-contained -- nothing
  // references this stack frame -- and the completion wait below cannot
  // deadlock the workers' join.  (The previous future-per-index scheme left
  // queued tasks holding a reference to `body` after an enqueue failure
  // unwound the caller.)
  struct Control {
    std::mutex mutex;
    std::condition_variable done;
    std::size_t remaining;
    std::exception_ptr first_error;
    std::size_t first_error_index;
    explicit Control(std::size_t n)
        : remaining(n), first_error_index(std::numeric_limits<std::size_t>::max()) {}
  };
  auto control = std::make_shared<Control>(n);
  auto shared_body = std::make_shared<std::function<void(std::size_t)>>(body);

  for (std::size_t i = 0; i < n; ++i) {
    try {
      enqueue([control, shared_body, i] {
        std::exception_ptr error;
        try {
          (*shared_body)(i);
        } catch (...) {
          error = std::current_exception();
        }
        std::lock_guard<std::mutex> lock(control->mutex);
        if (error && i < control->first_error_index) {
          control->first_error = error;
          control->first_error_index = i;
        }
        if (--control->remaining == 0) control->done.notify_all();
      });
    } catch (...) {
      // Tasks i..n-1 never reached the queue; account for them so the wait
      // below terminates once the queued prefix drains.
      std::lock_guard<std::mutex> lock(control->mutex);
      control->remaining -= n - i;
      if (control->first_error_index > i) {
        control->first_error = std::current_exception();
        control->first_error_index = i;
      }
      if (control->remaining == 0) control->done.notify_all();
      break;
    }
  }

  // Drain before rethrowing so no task outlives the call; the first error
  // *by index* wins, matching serial execution order.
  std::unique_lock<std::mutex> lock(control->mutex);
  control->done.wait(lock, [&] { return control->remaining == 0; });
  if (control->first_error) std::rethrow_exception(control->first_error);
}

}  // namespace olev::util
