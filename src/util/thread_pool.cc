#include "util/thread_pool.h"

#include <algorithm>
#include <exception>

namespace olev::util {

std::size_t resolve_threads(std::size_t requested) {
  if (requested > 0) return requested;
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t count = resolve_threads(threads);
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::enqueue(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(job));
  }
  wake_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();  // packaged_task captures exceptions in the future
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  std::vector<std::future<void>> pending;
  pending.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pending.push_back(submit([&body, i] { body(i); }));
  }
  // Collect everything before rethrowing so no task outlives the call.
  std::exception_ptr first_error;
  for (auto& future : pending) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace olev::util
