#include "util/thread_pool.h"

#include <algorithm>
#include <exception>
#include <limits>
#include <string>

#include "obs/obs.h"

namespace olev::util {

namespace {
// Set once per worker thread at loop entry; npos everywhere else.
thread_local std::size_t tls_worker_index = ThreadPool::npos;
}  // namespace

std::size_t ThreadPool::worker_index() { return tls_worker_index; }

std::size_t resolve_threads(std::size_t requested) {
  if (requested > 0) return requested;
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t count = resolve_threads(threads);
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::enqueue(std::function<void()> job) {
  OLEV_OBS_GAUGE(queue_depth, "util.thread_pool.queue_depth");
  Job entry{std::move(job), 0};
#if OLEV_OBS_ENABLED
  entry.enqueued_us = obs::now_micros();
#endif
  {
    MutexLock lock(mutex_);
    queue_.push_back(std::move(entry));
    OLEV_OBS_SET(queue_depth, static_cast<double>(queue_.size()));
  }
  wake_.notify_one();
}

void ThreadPool::worker_loop(std::size_t index) {
  tls_worker_index = index;
#if OLEV_OBS_ENABLED
  obs::set_thread_name("worker " + std::to_string(index));
  OLEV_OBS_COUNTER(tasks, "util.thread_pool.tasks");
  OLEV_OBS_COUNTER(idle_micros, "util.thread_pool.idle_micros");
  OLEV_OBS_COUNTER(busy_micros, "util.thread_pool.busy_micros");
  OLEV_OBS_GAUGE(queue_depth, "util.thread_pool.queue_depth");
  // Time from enqueue to dequeue: the backlog a task sees, distinct from
  // its own runtime.  Bounds in microseconds.
  OLEV_OBS_HISTOGRAM(queue_latency, "util.thread_pool.queue_latency_micros",
                     {10, 100, 1000, 10000, 100000, 1000000});
#endif
  for (;;) {
    Job job;
    OLEV_OBS_ONLY(const std::int64_t wait_start = obs::now_micros();)
    {
      MutexLock lock(mutex_);
      wake_.wait(mutex_, [this] {
        mutex_.AssertHeld();  // predicates run with the mutex re-acquired
        return stop_ || !queue_.empty();
      });
      if (queue_.empty()) return;  // stop_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
      OLEV_OBS_SET(queue_depth, static_cast<double>(queue_.size()));
    }
#if OLEV_OBS_ENABLED
    const std::int64_t run_start = obs::now_micros();
    idle_micros.add(static_cast<std::uint64_t>(run_start - wait_start));
    if (job.enqueued_us > 0) {
      queue_latency.observe(static_cast<double>(run_start - job.enqueued_us));
    }
    tasks.add(1);
    {
      OLEV_OBS_SPAN(task_span, "pool.task", "pool");
      job.fn();  // packaged_task captures exceptions in the future
    }
    busy_micros.add(static_cast<std::uint64_t>(obs::now_micros() - run_start));
#else
    job.fn();  // packaged_task captures exceptions in the future
#endif
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;

  // Every queued task owns shared copies of its state: if enqueueing fails
  // halfway (e.g. bad_alloc) or a body throws while later tasks are still
  // queued, the already-queued tasks stay self-contained -- nothing
  // references this stack frame -- and the completion wait below cannot
  // deadlock the workers' join.  (The previous future-per-index scheme left
  // queued tasks holding a reference to `body` after an enqueue failure
  // unwound the caller.)
  struct Control {
    Mutex mutex{"util.parallel_for.control"};
    CondVar done;
    std::size_t remaining OLEV_GUARDED_BY(mutex);
    std::exception_ptr first_error OLEV_GUARDED_BY(mutex);
    std::size_t first_error_index OLEV_GUARDED_BY(mutex);
    explicit Control(std::size_t n)
        : remaining(n), first_error_index(std::numeric_limits<std::size_t>::max()) {}
  };
  auto control = std::make_shared<Control>(n);
  auto shared_body = std::make_shared<std::function<void(std::size_t)>>(body);

  for (std::size_t i = 0; i < n; ++i) {
    try {
      enqueue([control, shared_body, i] {
        std::exception_ptr error;
        try {
          (*shared_body)(i);
        } catch (...) {
          error = std::current_exception();
        }
        MutexLock lock(control->mutex);
        if (error && i < control->first_error_index) {
          control->first_error = error;
          control->first_error_index = i;
        }
        if (--control->remaining == 0) control->done.notify_all();
      });
    } catch (...) {
      // Tasks i..n-1 never reached the queue; account for them so the wait
      // below terminates once the queued prefix drains.
      MutexLock lock(control->mutex);
      control->remaining -= n - i;
      if (control->first_error_index > i) {
        control->first_error = std::current_exception();
        control->first_error_index = i;
      }
      if (control->remaining == 0) control->done.notify_all();
      break;
    }
  }

  // Drain before rethrowing so no task outlives the call; the first error
  // *by index* wins, matching serial execution order.
  MutexLock lock(control->mutex);
  control->done.wait(control->mutex, [&control] {
    control->mutex.AssertHeld();
    return control->remaining == 0;
  });
  if (control->first_error) std::rethrow_exception(control->first_error);
}

}  // namespace olev::util
