// Runtime invariant auditor: checked asserts for the paper's machine-checkable
// guarantees (water-filling conservation of Eq. 12, non-negative externality
// payments of Eq. 8-9, monotone convergence of Theorem IV.1) plus cache
// coherence of the incremental Game hot path.  The lock-order auditor of
// util/sync.h reports through the same fail()/handler/firings funnel, so
// "zero firings across tier-1" covers lock-ordering too in audit builds.
//
// The checks compile to nothing unless the build defines OLEV_AUDIT (CMake
// option -DOLEV_AUDIT=ON); Release builds carry zero overhead.  In an audit
// build a failed check calls audit::fail(), which by default throws
// AuditFailure -- tests install a counting handler instead when they want to
// assert that an auditor does (or does not) fire.
//
// The support code below the macros (fail/handler/firing counter) is always
// compiled so test binaries can reference it from either build flavor; only
// the check sites vanish.  docs/ANALYSIS.md lists every audited invariant.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

namespace olev::util::audit {

/// Thrown by the default failure handler.  Derives from logic_error: a fired
/// auditor means the code violated a proven property, not a bad input.
class AuditFailure : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Called by every failed check.  Formats "<invariant> at <file>:<line>:
/// <detail>", bumps the firing counter, then invokes the installed handler
/// (default: throw AuditFailure).
[[noreturn]] void fail(const char* invariant, const char* file, int line,
                       const std::string& detail);

/// Replacement failure handler.  A handler that returns is an error; fail()
/// throws AuditFailure afterwards regardless, so control never falls back
/// into the violated code path.
using Handler = void (*)(const std::string& message);

/// Installs `handler` (nullptr restores the default) and returns the
/// previous one.  Not thread-safe against concurrent fail(); intended for
/// single-threaded test setup.
Handler set_handler(Handler handler);

/// Number of auditor firings since process start (or the last reset).
std::size_t firings();
void reset_firings();

/// RAII marker for a real-time hot region (entered via OLEV_HOT_REGION in
/// util/hot.h).  The support type is always compiled, like the rest of this
/// header's funnel; the global new/delete interposer that makes it bite only
/// exists in audit builds (see OLEV_RT_INTERPOSER_ENABLED below).  Inside a
/// region the interposer fires audit::fail on any operator new, and any
/// operator delete is recorded and reported when the outermost region exits
/// (operator delete is noexcept, so the violation cannot throw at the free
/// site itself) -- hence the noexcept(false) destructor.
class HotRegion {
 public:
  explicit HotRegion(const char* name) noexcept;
  ~HotRegion() noexcept(false);
  HotRegion(const HotRegion&) = delete;
  HotRegion& operator=(const HotRegion&) = delete;

 private:
  const char* name_;
  int uncaught_at_entry_;
};

/// RAII interposer bypass for the calling thread.  The auditors' own
/// machinery allocates (message formatting, from-scratch recomputations),
/// and in audit builds those checks legitimately run inside hot regions;
/// a bypass scope makes the interposer ignore the thread until it closes.
/// Only audit-internal code and the OLEV_AUDIT_ONLY blocks of hot functions
/// should open one -- production hot-path code never allocates at all.
class HotBypass {
 public:
  HotBypass() noexcept;
  ~HotBypass();
  HotBypass(const HotBypass&) = delete;
  HotBypass& operator=(const HotBypass&) = delete;
};

/// Nesting depth of hot regions on the calling thread (0 = not in one).
std::size_t hot_region_depth();
/// Name of the calling thread's outermost active hot region, or nullptr.
const char* hot_region_name();
/// Process-wide count of allocation/deallocation events observed inside hot
/// regions since start (or the last reset).  Only the interposer bumps it,
/// so it stays 0 in non-audit builds.
std::size_t hot_alloc_violations();
void reset_hot_alloc_violations();

/// True iff x is neither NaN nor +-Inf.  Always available (used by check
/// sites and by tests).
bool is_finite(double x);

/// Absolute-plus-relative tolerance band: |a - b| <= tol * max(1, |a|, |b|).
bool close(double a, double b, double tol);

}  // namespace olev::util::audit

// OLEV_AUDIT_CHECK(cond, detail): verify a domain invariant.  `detail` is a
// std::string expression evaluated only on failure (the ternary keeps the
// happy path free of formatting work).
// OLEV_AUDIT_FINITE(x, what): NaN/Inf guard for one scalar.
// OLEV_AUDIT_ONLY(...): statement(s) compiled only in audit builds -- used
// for from-scratch recomputations whose only purpose is to be compared.
#if defined(OLEV_AUDIT)
#define OLEV_AUDIT_ENABLED 1
#define OLEV_AUDIT_CHECK(cond, detail)                                     \
  ((cond) ? static_cast<void>(0)                                           \
          : ::olev::util::audit::fail(#cond, __FILE__, __LINE__, (detail)))
#define OLEV_AUDIT_FINITE(x, what)                                         \
  (::olev::util::audit::is_finite(x)                                       \
       ? static_cast<void>(0)                                              \
       : ::olev::util::audit::fail("is_finite(" #x ")", __FILE__, __LINE__, \
                                   (what)))
#define OLEV_AUDIT_ONLY(...) __VA_ARGS__
#else
#define OLEV_AUDIT_ENABLED 0
#define OLEV_AUDIT_CHECK(cond, detail) static_cast<void>(0)
#define OLEV_AUDIT_FINITE(x, what) static_cast<void>(0)
#define OLEV_AUDIT_ONLY(...)
#endif

// The hot-region new/delete interposer replaces the global operators, which
// would shadow AddressSanitizer's own interception -- under ASan the runtime
// backstop stands down and the static wall (tools/olev_rtcheck.py) plus the
// ASan allocator carry the leg.
#if defined(__SANITIZE_ADDRESS__)
#define OLEV_RT_UNDER_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define OLEV_RT_UNDER_ASAN 1
#endif
#endif
#if !defined(OLEV_RT_UNDER_ASAN)
#define OLEV_RT_UNDER_ASAN 0
#endif

#if OLEV_AUDIT_ENABLED && !OLEV_RT_UNDER_ASAN
#define OLEV_RT_INTERPOSER_ENABLED 1
#else
#define OLEV_RT_INTERPOSER_ENABLED 0
#endif
