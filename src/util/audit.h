// Runtime invariant auditor: checked asserts for the paper's machine-checkable
// guarantees (water-filling conservation of Eq. 12, non-negative externality
// payments of Eq. 8-9, monotone convergence of Theorem IV.1) plus cache
// coherence of the incremental Game hot path.  The lock-order auditor of
// util/sync.h reports through the same fail()/handler/firings funnel, so
// "zero firings across tier-1" covers lock-ordering too in audit builds.
//
// The checks compile to nothing unless the build defines OLEV_AUDIT (CMake
// option -DOLEV_AUDIT=ON); Release builds carry zero overhead.  In an audit
// build a failed check calls audit::fail(), which by default throws
// AuditFailure -- tests install a counting handler instead when they want to
// assert that an auditor does (or does not) fire.
//
// The support code below the macros (fail/handler/firing counter) is always
// compiled so test binaries can reference it from either build flavor; only
// the check sites vanish.  docs/ANALYSIS.md lists every audited invariant.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

namespace olev::util::audit {

/// Thrown by the default failure handler.  Derives from logic_error: a fired
/// auditor means the code violated a proven property, not a bad input.
class AuditFailure : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Called by every failed check.  Formats "<invariant> at <file>:<line>:
/// <detail>", bumps the firing counter, then invokes the installed handler
/// (default: throw AuditFailure).
[[noreturn]] void fail(const char* invariant, const char* file, int line,
                       const std::string& detail);

/// Replacement failure handler.  A handler that returns is an error; fail()
/// throws AuditFailure afterwards regardless, so control never falls back
/// into the violated code path.
using Handler = void (*)(const std::string& message);

/// Installs `handler` (nullptr restores the default) and returns the
/// previous one.  Not thread-safe against concurrent fail(); intended for
/// single-threaded test setup.
Handler set_handler(Handler handler);

/// Number of auditor firings since process start (or the last reset).
std::size_t firings();
void reset_firings();

/// True iff x is neither NaN nor +-Inf.  Always available (used by check
/// sites and by tests).
bool is_finite(double x);

/// Absolute-plus-relative tolerance band: |a - b| <= tol * max(1, |a|, |b|).
bool close(double a, double b, double tol);

}  // namespace olev::util::audit

// OLEV_AUDIT_CHECK(cond, detail): verify a domain invariant.  `detail` is a
// std::string expression evaluated only on failure (the ternary keeps the
// happy path free of formatting work).
// OLEV_AUDIT_FINITE(x, what): NaN/Inf guard for one scalar.
// OLEV_AUDIT_ONLY(...): statement(s) compiled only in audit builds -- used
// for from-scratch recomputations whose only purpose is to be compared.
#if defined(OLEV_AUDIT)
#define OLEV_AUDIT_ENABLED 1
#define OLEV_AUDIT_CHECK(cond, detail)                                     \
  ((cond) ? static_cast<void>(0)                                           \
          : ::olev::util::audit::fail(#cond, __FILE__, __LINE__, (detail)))
#define OLEV_AUDIT_FINITE(x, what)                                         \
  (::olev::util::audit::is_finite(x)                                       \
       ? static_cast<void>(0)                                              \
       : ::olev::util::audit::fail("is_finite(" #x ")", __FILE__, __LINE__, \
                                   (what)))
#define OLEV_AUDIT_ONLY(...) __VA_ARGS__
#else
#define OLEV_AUDIT_ENABLED 0
#define OLEV_AUDIT_CHECK(cond, detail) static_cast<void>(0)
#define OLEV_AUDIT_FINITE(x, what) static_cast<void>(0)
#define OLEV_AUDIT_ONLY(...)
#endif
