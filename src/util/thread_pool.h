// Fixed-size worker pool with a FIFO work queue and std::future results.
//
// The pool exists for embarrassingly parallel sweeps (many independent game
// instances); it deliberately has no work stealing, priorities, or dynamic
// sizing.  Tasks must not block on other tasks submitted to the same pool.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/sync.h"

namespace olev::util {

class ThreadPool {
 public:
  /// `threads == 0` means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Index of the calling pool worker within its pool (0..size-1), or
  /// `npos` on a thread that is not a pool worker.  Lets task bodies keep
  /// per-worker accounting (the sweep report's utilization breakdown)
  /// without a map lookup.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  static std::size_t worker_index();

  /// Enqueues `task` and returns a future for its result.  Exceptions thrown
  /// by the task are captured in the future.
  template <typename F>
  auto submit(F&& task) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto packaged =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(task));
    std::future<R> result = packaged->get_future();
    enqueue([packaged]() { (*packaged)(); });
    return result;
  }

  /// Runs body(0..n-1) across the pool and waits for all of them.  The
  /// assignment of indices to threads is unspecified; bodies must be
  /// independent.  All queued bodies run to completion even when some
  /// throw; afterwards the lowest-index exception is rethrown.  Queued
  /// tasks are self-contained (shared ownership of the body), so a throw --
  /// from a body or from enqueueing itself -- can never leave a worker
  /// holding a dangling reference or deadlock the destructor's join.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

 private:
  /// A queued task plus its enqueue timestamp (observability: the queue
  /// latency histogram; 0 when the obs layer is compiled out).
  struct Job {
    std::function<void()> fn;
    std::int64_t enqueued_us = 0;
  };

  void enqueue(std::function<void()> job) OLEV_EXCLUDES(mutex_);
  void worker_loop(std::size_t index) OLEV_EXCLUDES(mutex_);

  // Written only by the constructor and joined by the destructor; never
  // touched from worker threads, so unguarded by design.
  std::vector<std::thread> workers_;
  Mutex mutex_{"util.thread_pool.queue"};
  CondVar wake_;
  std::deque<Job> queue_ OLEV_GUARDED_BY(mutex_);
  bool stop_ OLEV_GUARDED_BY(mutex_) = false;
};

/// Resolved thread count for a user-facing "0 = auto" knob.
std::size_t resolve_threads(std::size_t requested);

}  // namespace olev::util
