// Fixed-size worker pool with a FIFO work queue and std::future results.
//
// The pool exists for embarrassingly parallel sweeps (many independent game
// instances); it deliberately has no work stealing, priorities, or dynamic
// sizing.  Tasks must not block on other tasks submitted to the same pool.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace olev::util {

class ThreadPool {
 public:
  /// `threads == 0` means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues `task` and returns a future for its result.  Exceptions thrown
  /// by the task are captured in the future.
  template <typename F>
  auto submit(F&& task) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto packaged =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(task));
    std::future<R> result = packaged->get_future();
    enqueue([packaged]() { (*packaged)(); });
    return result;
  }

  /// Runs body(0..n-1) across the pool and waits for all of them.  The
  /// assignment of indices to threads is unspecified; bodies must be
  /// independent.  All queued bodies run to completion even when some
  /// throw; afterwards the lowest-index exception is rethrown.  Queued
  /// tasks are self-contained (shared ownership of the body), so a throw --
  /// from a body or from enqueueing itself -- can never leave a worker
  /// holding a dangling reference or deadlock the destructor's join.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

 private:
  void enqueue(std::function<void()> job);
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable wake_;
  bool stop_ = false;
};

/// Resolved thread count for a user-facing "0 = auto" knob.
std::size_t resolve_threads(std::size_t requested);

}  // namespace olev::util
