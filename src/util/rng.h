// Deterministic, seedable pseudo-random number generation for simulations.
//
// We deliberately avoid std::mt19937 + std::*_distribution because their
// output is implementation-defined across standard libraries; reproducible
// experiments need bit-identical streams everywhere.  The generator is
// xoshiro256++ (Blackman & Vigna, 2019), seeded through SplitMix64.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace olev::util {

/// xoshiro256++ generator.  Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Next raw 64-bit output.
  result_type operator()();

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] (inclusive); requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Standard normal via Box-Muller (cached second variate).
  double normal();
  /// Normal with the given mean / standard deviation.
  double normal(double mean, double stddev);
  /// Exponential with the given rate (mean 1/rate); requires rate > 0.
  double exponential(double rate);
  /// Poisson with the given mean >= 0.  Knuth for small means, PTRS-style
  /// normal approximation with rounding correction for large ones.
  std::uint64_t poisson(double mean);
  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::span<T> items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const auto j =
          static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// A distinct child generator; streams of parent and child do not overlap
  /// in practice (independent SplitMix64 seeding).
  Rng split();

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// Deterministically derives a 64-bit seed from a base seed and a stream
/// index, e.g. to give every simulation repetition its own stream.
std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream);

}  // namespace olev::util
