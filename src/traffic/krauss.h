// Krauss (1998) stochastic car-following model -- the default model in SUMO,
// which the paper uses for its Section III traffic study.  Each step:
//
//   v_safe = -b*tau + sqrt(b^2 tau^2 + v_leader^2 + 2 b g)
//   v_des  = min(v + a*dt, v_safe, v_max)
//   v'     = max(0, v_des - sigma * a * dt * xi),  xi ~ U[0,1)
//
// where g is the net gap to the leader (bumper to bumper minus min-gap).
// The v_safe form is the exact stopping-distance condition: the follower can
// always come to a halt behind the leader assuming both brake at rate b.
#pragma once

#include "util/rng.h"

namespace olev::traffic {

struct KraussParams {
  double accel_mps2 = 2.6;
  double decel_mps2 = 4.5;
  double sigma = 0.5;
  double tau_s = 1.0;
};

/// Maximum speed that guarantees the follower can stop behind a leader that
/// is `gap_m` ahead (net gap) moving at `leader_speed`.  Non-negative.
double safe_speed(double leader_speed_mps, double gap_m, const KraussParams& params);

/// One Krauss update for a follower at `speed` with speed limit `v_max`.
/// `gap_m` < 0 is treated as 0 (emergency).  `rng` supplies the dawdling
/// noise; pass nullptr for the deterministic (sigma = 0) variant.
double krauss_step(double speed_mps, double leader_speed_mps, double gap_m,
                   double v_max_mps, double dt_s, const KraussParams& params,
                   util::Rng* rng);

/// Free-flow update (no leader): accelerate toward v_max with dawdling.
double krauss_free_step(double speed_mps, double v_max_mps, double dt_s,
                        const KraussParams& params, util::Rng* rng);

}  // namespace olev::traffic
