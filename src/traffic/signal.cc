#include "traffic/signal.h"

#include <cmath>
#include <stdexcept>

namespace olev::traffic {

SignalProgram::SignalProgram(std::vector<SignalPhase> phases, double offset_s)
    : phases_(std::move(phases)), offset_s_(offset_s) {
  for (const auto& phase : phases_) {
    if (phase.duration_s <= 0.0) {
      throw std::invalid_argument("SignalProgram: phase durations must be positive");
    }
    cycle_s_ += phase.duration_s;
  }
}

SignalProgram SignalProgram::fixed_cycle(double green_s, double yellow_s,
                                         double red_s, double offset_s) {
  return SignalProgram({{LightState::kGreen, green_s},
                        {LightState::kYellow, yellow_s},
                        {LightState::kRed, red_s}},
                       offset_s);
}

double SignalProgram::cycle_pos(double time_s) const {
  double pos = std::fmod(time_s + offset_s_, cycle_s_);
  if (pos < 0.0) pos += cycle_s_;
  return pos;
}

LightState SignalProgram::state_at(double time_s) const {
  if (phases_.empty()) return LightState::kGreen;
  double pos = cycle_pos(time_s);
  for (const auto& phase : phases_) {
    if (pos < phase.duration_s) return phase.state;
    pos -= phase.duration_s;
  }
  return phases_.back().state;
}

double SignalProgram::time_to_green(double time_s) const {
  if (phases_.empty() || cycle_s_ <= 0.0) return 0.0;
  if (state_at(time_s) == LightState::kGreen) return 0.0;
  // Scan forward phase by phase from the current cycle position.
  double pos = cycle_pos(time_s);
  double waited = 0.0;
  // At most two passes over the cycle are needed to hit a green phase.
  for (int pass = 0; pass < 2; ++pass) {
    double cursor = 0.0;
    for (const auto& phase : phases_) {
      const double phase_end = cursor + phase.duration_s;
      if (pos < phase_end) {
        if (phase.state == LightState::kGreen) return waited;
        waited += phase_end - pos;
        pos = phase_end;
      }
      cursor = phase_end;
    }
    pos = 0.0;  // wrap to the next cycle
  }
  return waited;
}

double SignalProgram::green_ratio() const {
  if (cycle_s_ <= 0.0) return 1.0;
  double green = 0.0;
  for (const auto& phase : phases_) {
    if (phase.state == LightState::kGreen) green += phase.duration_s;
  }
  return green / cycle_s_;
}

}  // namespace olev::traffic
