#include "traffic/demand.h"

#include <cmath>
#include <stdexcept>

namespace olev::traffic {

HourlyCounts nyc_arterial_hourly_counts() {
  // Vehicles per hour entering the corridor; weekday arterial shape.
  return HourlyCounts{
      180,  120,  90,   80,   100,  220,   // 00..05
      560,  1020, 1340, 1180, 1050, 1080,  // 06..11
      1120, 1150, 1250, 1420, 1580, 1650,  // 12..17
      1450, 1180, 900,  680,  460,  280,   // 18..23
  };
}

HourlyCounts scale_to_daily_total(const HourlyCounts& counts, double daily_total) {
  double sum = 0.0;
  for (double c : counts) sum += c;
  if (sum <= 0.0) throw std::invalid_argument("scale_to_daily_total: empty profile");
  HourlyCounts scaled = counts;
  const double k = daily_total / sum;
  for (double& c : scaled) c *= k;
  return scaled;
}

FlowSource::FlowSource(Route route, DemandConfig config, VehicleType type)
    : route_(std::move(route)), config_(std::move(config)), type_(std::move(type)) {
  if (route_.empty()) throw std::invalid_argument("FlowSource: route must be non-empty");
}

double FlowSource::rate_at(double time_s) const {
  double hour = std::fmod(time_s / 3600.0, 24.0);
  if (hour < 0.0) hour += 24.0;
  const auto h = static_cast<std::size_t>(hour);
  return config_.counts[h] / 3600.0;
}

std::size_t FlowSource::sample_arrivals(double time_s, double dt_s,
                                        util::Rng& rng) const {
  return static_cast<std::size_t>(rng.poisson(rate_at(time_s) * dt_s));
}

Vehicle FlowSource::make_vehicle(double time_s, util::Rng& rng) const {
  Vehicle vehicle;
  vehicle.type = type_;
  vehicle.route = route_;
  vehicle.depart_time_s = time_s;
  vehicle.is_olev =
      rng.bernoulli(config_.olev_participation * config_.olev_willingness);
  return vehicle;
}

}  // namespace olev::traffic
