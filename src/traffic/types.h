// Shared identifier types for the traffic microsimulation.
#pragma once

#include <cstdint>
#include <limits>

#include "util/quantity.h"

namespace olev::traffic {

// Dimensioned scalars shared by the microsimulation's public surfaces.
// The traffic layer works natively in SI (m, s, m/s); these aliases make
// that explicit at API boundaries without repeating the util:: spelling.
using Seconds = util::Seconds;
using Meters = util::Meters;
using MetersPerSecond = util::MetersPerSecond;

using EdgeId = std::uint32_t;
using JunctionId = std::uint32_t;
using VehicleId = std::uint64_t;
using SignalId = std::uint32_t;

inline constexpr EdgeId kInvalidEdge = std::numeric_limits<EdgeId>::max();
inline constexpr JunctionId kInvalidJunction = std::numeric_limits<JunctionId>::max();
inline constexpr SignalId kInvalidSignal = std::numeric_limits<SignalId>::max();

}  // namespace olev::traffic
