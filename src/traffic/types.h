// Shared identifier types for the traffic microsimulation.
#pragma once

#include <cstdint>
#include <limits>

namespace olev::traffic {

using EdgeId = std::uint32_t;
using JunctionId = std::uint32_t;
using VehicleId = std::uint64_t;
using SignalId = std::uint32_t;

inline constexpr EdgeId kInvalidEdge = std::numeric_limits<EdgeId>::max();
inline constexpr JunctionId kInvalidJunction = std::numeric_limits<JunctionId>::max();
inline constexpr SignalId kInvalidSignal = std::numeric_limits<SignalId>::max();

}  // namespace olev::traffic
