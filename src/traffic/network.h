// Road network: edges (directed road segments with one or more lanes),
// junctions (priority or signalized), and routes.  The scale target is an
// arterial corridor (the paper's Flatlands Avenue study), not a city-wide
// graph, but the representation is general.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "traffic/signal.h"
#include "traffic/types.h"

namespace olev::traffic {

enum class JunctionKind { kPriority, kTrafficLight, kDeadEnd };

struct Junction {
  JunctionId id = kInvalidJunction;
  std::string name;
  JunctionKind kind = JunctionKind::kPriority;
  SignalId signal = kInvalidSignal;  ///< valid iff kind == kTrafficLight
};

struct Edge {
  EdgeId id = kInvalidEdge;
  std::string name;
  double length_m = 0.0;
  double speed_limit_mps = 13.89;  ///< 50 km/h default
  int lane_count = 1;
  JunctionId to_junction = kInvalidJunction;  ///< junction at the downstream end
};

/// A route is an ordered edge sequence; consecutive edges must be connected.
using Route = std::vector<EdgeId>;

class Network {
 public:
  // ---- construction ----
  EdgeId add_edge(std::string name, double length_m, double speed_limit_mps,
                  int lane_count = 1);
  JunctionId add_junction(std::string name, JunctionKind kind);
  SignalId add_signal(SignalProgram program);

  /// Attaches the downstream end of `edge` to `junction`.
  void set_edge_end(EdgeId edge, JunctionId junction);
  /// Assigns a signal program to a traffic-light junction.
  void set_junction_signal(JunctionId junction, SignalId signal);
  /// Declares that `to` is reachable from `from` through from's end junction.
  void connect(EdgeId from, EdgeId to);

  // ---- queries ----
  const Edge& edge(EdgeId id) const;
  const Junction& junction(JunctionId id) const;
  const SignalProgram& signal(SignalId id) const;
  std::size_t edge_count() const { return edges_.size(); }
  std::size_t junction_count() const { return junctions_.size(); }
  const std::vector<EdgeId>& successors(EdgeId id) const;

  /// Signal controlling the downstream end of `edge`, if any.
  const SignalProgram* signal_for_edge(EdgeId id) const;

  /// True if consecutive route edges are all connected.
  bool validate_route(const Route& route) const;

  /// Total length of a route in meters.
  double route_length_m(const Route& route) const;

  /// Finds an edge by name (first match).
  std::optional<EdgeId> find_edge(const std::string& name) const;

  // ---- factory ----
  /// Builds a straight arterial: `segments` edges of `segment_length_m` each,
  /// with a signalized junction after every edge except the last.  Mirrors
  /// the Flatlands Avenue corridor used in the paper's Section III study.
  static Network arterial(int segments, double segment_length_m,
                          double speed_limit_mps, const SignalProgram& program,
                          int lane_count = 2);

 private:
  std::vector<Edge> edges_;
  std::vector<Junction> junctions_;
  std::vector<SignalProgram> signals_;
  std::vector<std::vector<EdgeId>> successors_;
};

}  // namespace olev::traffic
