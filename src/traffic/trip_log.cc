#include "traffic/trip_log.h"

namespace olev::traffic {

void TripLog::on_vehicle_arrived(const Vehicle& vehicle, double time_s) {
  TripRecord record;
  record.vehicle = vehicle.id;
  record.is_olev = vehicle.is_olev;
  record.depart_time_s = vehicle.depart_time_s;
  record.arrive_time_s = time_s;
  record.travel_time_s = time_s - vehicle.depart_time_s;
  record.waiting_time_s = vehicle.waiting_time_s;
  record.distance_m = vehicle.odometer_m;

  ++completed_;
  if (vehicle.is_olev) ++olev_trips_;
  travel_time_.add(record.travel_time_s);
  waiting_time_.add(record.waiting_time_s);
  mean_speed_.add(record.mean_speed_mps());
  if (keep_records_) records_.push_back(record);
}

double TripLog::waiting_fraction() const {
  const double travel = travel_time_.sum();
  return travel > 0.0 ? waiting_time_.sum() / travel : 0.0;
}

void TripLog::reset() {
  records_.clear();
  completed_ = 0;
  olev_trips_ = 0;
  travel_time_ = util::Accumulator();
  waiting_time_ = util::Accumulator();
  mean_speed_ = util::Accumulator();
}

}  // namespace olev::traffic
