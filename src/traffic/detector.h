// Road-side detectors.
//
// SegmentDetector measures per-hour *intersection time* -- the total time
// vehicles spend with their body overlapping a road segment -- which is the
// quantity Fig. 3(b) of the paper plots for a charging section.  An
// InductionLoop counts vehicle crossings at a point (SUMO's E1 detector).
#pragma once

#include <array>
#include <cstddef>
#include <span>

#include "traffic/vehicle.h"

namespace olev::traffic {

/// Snapshot handed to observers after every simulation step.
struct StepView {
  double time_s = 0.0;
  double dt_s = 0.0;
  std::span<const Vehicle> vehicles;
};

/// Interface for anything that watches the simulation step-by-step.
class StepObserver {
 public:
  virtual ~StepObserver() = default;
  virtual void on_step(const StepView& view) = 0;
  /// Called once when a vehicle completes its route (just before removal);
  /// `time_s` is the arrival time.  Default: ignore.
  virtual void on_vehicle_arrived(const Vehicle& vehicle, double time_s) {
    (void)vehicle;
    (void)time_s;
  }
};

class SegmentDetector : public StepObserver {
 public:
  /// Watches [start_m, end_m) on `edge`.  When `olev_only` is set, only
  /// vehicles tagged as OLEVs are counted.
  SegmentDetector(EdgeId edge, double start_m, double end_m, bool olev_only = false);

  void on_step(const StepView& view) override;

  /// Occupancy seconds accumulated in each hour-of-day bucket.
  const std::array<double, 24>& hourly_occupancy_s() const { return occupancy_s_; }
  /// Sum of all buckets.
  double total_occupancy_s() const;
  /// Mean speed (m/s) of occupying vehicles, weighted by occupancy time.
  double mean_occupant_speed_mps() const;
  /// Number of step-samples with at least one occupant.
  std::size_t occupied_steps() const { return occupied_steps_; }

  EdgeId edge() const { return edge_; }
  double start_m() const { return start_m_; }
  double end_m() const { return end_m_; }

  void reset();

 private:
  EdgeId edge_;
  double start_m_;
  double end_m_;
  bool olev_only_;
  std::array<double, 24> occupancy_s_{};
  double speed_time_integral_ = 0.0;  ///< sum of speed * occupancy_dt
  double occupancy_total_s_ = 0.0;
  std::size_t occupied_steps_ = 0;
};

class InductionLoop : public StepObserver {
 public:
  InductionLoop(EdgeId edge, double pos_m);

  void on_step(const StepView& view) override;

  std::size_t total_count() const { return total_count_; }
  const std::array<std::size_t, 24>& hourly_counts() const { return counts_; }
  /// Vehicles that crossed during the most recent step.
  std::size_t last_step_count() const { return last_step_count_; }

  void reset();

 private:
  EdgeId edge_;
  double pos_m_;
  std::array<std::size_t, 24> counts_{};
  std::size_t total_count_ = 0;
  std::size_t last_step_count_ = 0;
};

/// Hour-of-day bucket for an absolute simulation time.
std::size_t hour_bucket(double time_s);

}  // namespace olev::traffic
