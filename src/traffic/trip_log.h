// Per-trip outcome logging: travel time, waiting time, distance, and mean
// speed for every completed trip, with OLEV/non-OLEV breakdown -- the
// observability layer behind corridor-level service-quality claims
// ("placement at traffic lights increases intersection time" has a travel
// -time cost this log quantifies).
#pragma once

#include <vector>

#include "traffic/detector.h"
#include "util/stats.h"

namespace olev::traffic {

struct TripRecord {
  VehicleId vehicle = 0;
  bool is_olev = false;
  double depart_time_s = 0.0;
  double arrive_time_s = 0.0;
  double travel_time_s = 0.0;
  double waiting_time_s = 0.0;
  double distance_m = 0.0;

  double mean_speed_mps() const {
    return travel_time_s > 0.0 ? distance_m / travel_time_s : 0.0;
  }
};

class TripLog : public StepObserver {
 public:
  /// When `keep_records` is false only the aggregate accumulators are kept
  /// (day-long runs with tens of thousands of trips).
  explicit TripLog(bool keep_records = true) : keep_records_(keep_records) {}

  void on_step(const StepView& view) override { (void)view; }
  void on_vehicle_arrived(const Vehicle& vehicle, double time_s) override;

  std::size_t completed_trips() const { return completed_; }
  const std::vector<TripRecord>& records() const { return records_; }

  const util::Accumulator& travel_time() const { return travel_time_; }
  const util::Accumulator& waiting_time() const { return waiting_time_; }
  const util::Accumulator& mean_speed() const { return mean_speed_; }
  /// Waiting share of travel time, aggregated.
  double waiting_fraction() const;
  std::size_t olev_trips() const { return olev_trips_; }

  void reset();

 private:
  bool keep_records_;
  std::vector<TripRecord> records_;
  std::size_t completed_ = 0;
  std::size_t olev_trips_ = 0;
  util::Accumulator travel_time_;
  util::Accumulator waiting_time_;
  util::Accumulator mean_speed_;
};

}  // namespace olev::traffic
