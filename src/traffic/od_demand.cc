#include "traffic/od_demand.h"

#include <cmath>
#include <stdexcept>

namespace olev::traffic {

OdTripSource::OdTripSource(const Network& network, std::vector<EdgeId> entries,
                           std::vector<EdgeId> exits, DemandConfig config,
                           VehicleType type)
    : config_(std::move(config)), type_(std::move(type)) {
  for (EdgeId from : entries) {
    for (EdgeId to : exits) {
      if (from == to) continue;
      RouteResult route = shortest_route(network, from, to);
      if (route.found) routes_.push_back(std::move(route.route));
    }
  }
  if (routes_.empty()) {
    throw std::invalid_argument("OdTripSource: no routable OD pair");
  }
}

std::size_t OdTripSource::sample_arrivals(double time_s, double dt_s,
                                          util::Rng& rng) const {
  double hour = std::fmod(time_s / 3600.0, 24.0);
  if (hour < 0.0) hour += 24.0;
  const double rate =
      config_.counts[static_cast<std::size_t>(hour)] / 3600.0;
  return static_cast<std::size_t>(rng.poisson(rate * dt_s));
}

Vehicle OdTripSource::make_vehicle(double time_s, util::Rng& rng) const {
  Vehicle vehicle;
  vehicle.type = type_;
  vehicle.route = routes_[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(routes_.size()) - 1))];
  vehicle.depart_time_s = time_s;
  vehicle.is_olev =
      rng.bernoulli(config_.olev_participation * config_.olev_willingness);
  return vehicle;
}

std::vector<EdgeId> entry_edges(const Network& network) {
  // Entries: edges no other edge connects into.
  std::vector<bool> has_predecessor(network.edge_count(), false);
  for (EdgeId edge = 0; edge < network.edge_count(); ++edge) {
    for (EdgeId successor : network.successors(edge)) {
      has_predecessor[successor] = true;
    }
  }
  std::vector<EdgeId> entries;
  for (EdgeId edge = 0; edge < network.edge_count(); ++edge) {
    if (!has_predecessor[edge]) entries.push_back(edge);
  }
  return entries;
}

std::vector<EdgeId> exit_edges(const Network& network) {
  std::vector<EdgeId> exits;
  for (EdgeId edge = 0; edge < network.edge_count(); ++edge) {
    if (network.successors(edge).empty()) exits.push_back(edge);
  }
  return exits;
}

}  // namespace olev::traffic
