#include "traffic/routing.h"

#include <algorithm>
#include <limits>
#include <map>
#include <queue>
#include <stdexcept>

namespace olev::traffic {
namespace {
// Floor on the adjusted edge cost: keeps Dijkstra valid under arbitrarily
// large charging bonuses.
constexpr double kMinEdgeCost = 1e-3;
}  // namespace

double expected_edge_time_s(const Network& network, EdgeId edge_id) {
  const Edge& edge = network.edge(edge_id);
  double time = edge.length_m / edge.speed_limit_mps;
  if (const SignalProgram* signal = network.signal_for_edge(edge_id)) {
    const double cycle = signal->cycle_length_s();
    if (cycle > 0.0) {
      const double red = (1.0 - signal->green_ratio()) * cycle;
      time += red * red / (2.0 * cycle);
    }
  }
  return time;
}

double route_expected_time_s(const Network& network, const Route& route) {
  double total = 0.0;
  for (EdgeId edge : route) total += expected_edge_time_s(network, edge);
  return total;
}

RouteResult shortest_route(const Network& network, EdgeId from, EdgeId to,
                           std::span<const double> edge_cost_adjust) {
  const std::size_t edge_count = network.edge_count();
  if (from >= edge_count || to >= edge_count) {
    throw std::out_of_range("shortest_route: unknown edge");
  }
  if (!edge_cost_adjust.empty() && edge_cost_adjust.size() != edge_count) {
    throw std::invalid_argument(
        "shortest_route: edge_cost_adjust must have one entry per edge");
  }

  auto edge_cost = [&](EdgeId edge) {
    double cost = expected_edge_time_s(network, edge);
    if (!edge_cost_adjust.empty()) cost += edge_cost_adjust[edge];
    return std::max(kMinEdgeCost, cost);
  };

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(edge_count, kInf);
  std::vector<EdgeId> prev(edge_count, kInvalidEdge);
  using Item = std::pair<double, EdgeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> frontier;

  dist[from] = edge_cost(from);
  frontier.emplace(dist[from], from);
  while (!frontier.empty()) {
    const auto [d, edge] = frontier.top();
    frontier.pop();
    if (d > dist[edge]) continue;  // stale entry
    if (edge == to) break;
    for (EdgeId next : network.successors(edge)) {
      const double candidate = d + edge_cost(next);
      if (candidate < dist[next]) {
        dist[next] = candidate;
        prev[next] = edge;
        frontier.emplace(candidate, next);
      }
    }
  }

  RouteResult result;
  if (dist[to] == kInf) return result;
  result.found = true;
  result.cost = dist[to];
  for (EdgeId edge = to; edge != kInvalidEdge; edge = prev[edge]) {
    result.route.push_back(edge);
    if (edge == from) break;
  }
  std::reverse(result.route.begin(), result.route.end());
  result.travel_time_s = route_expected_time_s(network, result.route);
  return result;
}

Network grid_city(int rows, int cols, double block_m, double speed_limit_mps,
                  const SignalProgram& program) {
  if (rows < 2 || cols < 2) {
    throw std::invalid_argument("grid_city: need at least a 2x2 grid");
  }
  Network net;

  // One signalized junction per node; adjacent nodes' signals are staggered
  // by half a cycle (checkerboard green wave).
  std::vector<JunctionId> junctions;
  junctions.reserve(static_cast<std::size_t>(rows) * cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const JunctionId j = net.add_junction(
          "n" + std::to_string(r) + "_" + std::to_string(c),
          JunctionKind::kTrafficLight);
      SignalProgram staggered(program.phases(),
                              ((r + c) % 2) * 0.5 * program.cycle_length_s());
      net.set_junction_signal(j, net.add_signal(std::move(staggered)));
      junctions.push_back(j);
    }
  }
  auto node = [cols](int r, int c) { return static_cast<std::size_t>(r) * cols + c; };

  // Directed edge per ordered adjacent node pair.
  std::map<std::pair<std::size_t, std::size_t>, EdgeId> by_endpoints;
  auto add_directed = [&](int r1, int c1, int r2, int c2) {
    const EdgeId edge = net.add_edge(
        "e" + std::to_string(r1) + "_" + std::to_string(c1) + "_" +
            std::to_string(r2) + "_" + std::to_string(c2),
        block_m, speed_limit_mps, 1);
    net.set_edge_end(edge, junctions[node(r2, c2)]);
    by_endpoints[{node(r1, c1), node(r2, c2)}] = edge;
  };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        add_directed(r, c, r, c + 1);
        add_directed(r, c + 1, r, c);
      }
      if (r + 1 < rows) {
        add_directed(r, c, r + 1, c);
        add_directed(r + 1, c, r, c);
      }
    }
  }

  // Connectivity: an edge into node v continues on every edge out of v
  // except the immediate U-turn.
  for (const auto& [uv, edge] : by_endpoints) {
    const auto [u, v] = uv;
    for (const auto& [vw, next] : by_endpoints) {
      if (vw.first != v) continue;
      if (vw.second == u) continue;  // no U-turn
      net.connect(edge, next);
    }
  }
  return net;
}

}  // namespace olev::traffic
