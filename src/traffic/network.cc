#include "traffic/network.h"

#include <stdexcept>

namespace olev::traffic {

EdgeId Network::add_edge(std::string name, double length_m,
                         double speed_limit_mps, int lane_count) {
  if (length_m <= 0.0) throw std::invalid_argument("Network: edge length must be positive");
  if (speed_limit_mps <= 0.0) throw std::invalid_argument("Network: speed limit must be positive");
  if (lane_count < 1) throw std::invalid_argument("Network: lane count must be >= 1");
  Edge edge;
  edge.id = static_cast<EdgeId>(edges_.size());
  edge.name = std::move(name);
  edge.length_m = length_m;
  edge.speed_limit_mps = speed_limit_mps;
  edge.lane_count = lane_count;
  edges_.push_back(std::move(edge));
  successors_.emplace_back();
  return edges_.back().id;
}

JunctionId Network::add_junction(std::string name, JunctionKind kind) {
  Junction junction;
  junction.id = static_cast<JunctionId>(junctions_.size());
  junction.name = std::move(name);
  junction.kind = kind;
  junctions_.push_back(std::move(junction));
  return junctions_.back().id;
}

SignalId Network::add_signal(SignalProgram program) {
  signals_.push_back(std::move(program));
  return static_cast<SignalId>(signals_.size() - 1);
}

void Network::set_edge_end(EdgeId edge_id, JunctionId junction_id) {
  edges_.at(edge_id).to_junction = junction_id;
}

void Network::set_junction_signal(JunctionId junction_id, SignalId signal_id) {
  signals_.at(signal_id);  // bounds check
  Junction& junction = junctions_.at(junction_id);
  if (junction.kind != JunctionKind::kTrafficLight) {
    throw std::invalid_argument(
        "Network: only traffic-light junctions take a signal");
  }
  junction.signal = signal_id;
}

void Network::connect(EdgeId from, EdgeId to) {
  edge(to);  // bounds check
  successors_.at(from).push_back(to);
}

const Edge& Network::edge(EdgeId id) const { return edges_.at(id); }

const Junction& Network::junction(JunctionId id) const { return junctions_.at(id); }

const SignalProgram& Network::signal(SignalId id) const { return signals_.at(id); }

const std::vector<EdgeId>& Network::successors(EdgeId id) const {
  return successors_.at(id);
}

const SignalProgram* Network::signal_for_edge(EdgeId id) const {
  const Edge& e = edge(id);
  if (e.to_junction == kInvalidJunction) return nullptr;
  const Junction& j = junction(e.to_junction);
  if (j.kind != JunctionKind::kTrafficLight || j.signal == kInvalidSignal) {
    return nullptr;
  }
  return &signals_.at(j.signal);
}

bool Network::validate_route(const Route& route) const {
  if (route.empty()) return false;
  for (EdgeId id : route) {
    if (id >= edges_.size()) return false;
  }
  for (std::size_t i = 1; i < route.size(); ++i) {
    const auto& next = successors_[route[i - 1]];
    bool found = false;
    for (EdgeId succ : next) {
      if (succ == route[i]) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

double Network::route_length_m(const Route& route) const {
  double total = 0.0;
  for (EdgeId id : route) total += edge(id).length_m;
  return total;
}

std::optional<EdgeId> Network::find_edge(const std::string& name) const {
  for (const Edge& e : edges_) {
    if (e.name == name) return e.id;
  }
  return std::nullopt;
}

Network Network::arterial(int segments, double segment_length_m,
                          double speed_limit_mps, const SignalProgram& program,
                          int lane_count) {
  if (segments < 1) throw std::invalid_argument("Network::arterial: need >= 1 segment");
  Network net;
  EdgeId prev = kInvalidEdge;
  for (int i = 0; i < segments; ++i) {
    const EdgeId e = net.add_edge("seg" + std::to_string(i), segment_length_m,
                                  speed_limit_mps, lane_count);
    if (i + 1 < segments) {
      // Signalized junction at the downstream end of every interior segment.
      // Offset staggers adjacent lights by half a cycle.
      SignalProgram staggered(program.phases(),
                              (i % 2) * 0.5 * program.cycle_length_s());
      const SignalId sid = net.add_signal(std::move(staggered));
      const JunctionId j =
          net.add_junction("tl" + std::to_string(i), JunctionKind::kTrafficLight);
      net.set_junction_signal(j, sid);
      net.set_edge_end(e, j);
    } else {
      const JunctionId j =
          net.add_junction("sink", JunctionKind::kDeadEnd);
      net.set_edge_end(e, j);
    }
    if (prev != kInvalidEdge) net.connect(prev, e);
    prev = e;
  }
  return net;
}

}  // namespace olev::traffic
