// Vehicle state and type parameters.  Parameter defaults follow SUMO's
// default passenger-car Krauss parameterization.
#pragma once

#include <string>

#include "traffic/network.h"
#include "traffic/types.h"

namespace olev::traffic {

struct VehicleType {
  std::string name = "passenger";
  double length_m = 5.0;
  double accel_mps2 = 2.6;      ///< maximum acceleration (a)
  double decel_mps2 = 4.5;      ///< comfortable deceleration (b)
  double sigma = 0.5;           ///< Krauss dawdling factor in [0, 1]
  double min_gap_m = 2.5;       ///< standstill gap to the leader
  double max_speed_mps = 55.0;  ///< vehicle capability cap
  double tau_s = 1.0;           ///< driver reaction time

  /// SUMO's default passenger car.
  static VehicleType passenger();
  /// An OLEV-capable passenger car (same dynamics; tagged for WPT studies).
  static VehicleType olev();
};

struct Vehicle {
  VehicleId id = 0;
  VehicleType type;
  Route route;
  std::size_t route_index = 0;  ///< index into route of the current edge
  int lane = 0;
  double pos_m = 0.0;           ///< distance from the upstream end of the edge
  double speed_mps = 0.0;
  double depart_time_s = 0.0;
  double odometer_m = 0.0;
  double waiting_time_s = 0.0;  ///< accumulated time at speed < 0.1 m/s
  bool arrived = false;
  bool is_olev = false;

  EdgeId current_edge() const { return route[route_index]; }
  bool on_last_edge() const { return route_index + 1 >= route.size(); }

  /// Remaining distance to the end of the current edge.
  double distance_to_edge_end(const Network& net) const {
    return net.edge(current_edge()).length_m - pos_m;
  }
};

}  // namespace olev::traffic
