#include "traffic/simulation.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <stdexcept>

#include "obs/obs.h"

namespace olev::traffic {
namespace {
// Distance short of the stop line at which a red-light leader "stands".
constexpr double kStopLineMargin = 1.0;
}  // namespace

Simulation::Simulation(Network network, SimulationConfig config)
    : network_(std::move(network)), config_(config), rng_(config.seed) {}

void Simulation::add_source(FlowSource source) {
  add_source(std::make_unique<FlowSource>(std::move(source)));
}

void Simulation::add_source(std::unique_ptr<DemandSource> source) {
  if (source == nullptr) {
    throw std::invalid_argument("Simulation: null demand source");
  }
  sources_.push_back(std::move(source));
  backlog_.emplace_back();
}

void Simulation::add_observer(StepObserver* observer) {
  observers_.push_back(observer);
}

void Simulation::remove_observer(StepObserver* observer) {
  std::erase(observers_, observer);
}

double Simulation::rearmost_front_pos(EdgeId edge, int lane) const {
  double rear = std::numeric_limits<double>::infinity();
  for (const Vehicle& vehicle : active_) {
    if (vehicle.current_edge() == edge && vehicle.lane == lane) {
      rear = std::min(rear, vehicle.pos_m);
    }
  }
  return rear;
}

bool Simulation::try_insert(Vehicle vehicle) {
  const EdgeId entry = vehicle.route.front();
  const Edge& edge = network_.edge(entry);
  // Pick the lane with the largest headroom.
  int best_lane = -1;
  double best_room = -1.0;
  for (int lane = 0; lane < edge.lane_count; ++lane) {
    const double room = rearmost_front_pos(entry, lane);
    if (room > best_room) {
      best_room = room;
      best_lane = lane;
    }
  }
  const double need =
      vehicle.type.length_m + vehicle.type.min_gap_m + kStopLineMargin;
  if (best_lane < 0 || best_room < need) return false;

  vehicle.id = next_id_++;
  vehicle.lane = best_lane;
  vehicle.route_index = 0;
  vehicle.pos_m = 0.0;
  const double entry_speed = config_.insertion_speed_factor * edge.speed_limit_mps;
  // Never enter faster than is safe w.r.t. the rearmost vehicle ahead.
  KraussParams params{vehicle.type.accel_mps2, vehicle.type.decel_mps2,
                      vehicle.type.sigma, vehicle.type.tau_s};
  const double gap = best_room - vehicle.type.length_m - vehicle.type.min_gap_m;
  vehicle.speed_mps = std::min(entry_speed, safe_speed(0.0, gap, params));
  active_.push_back(std::move(vehicle));
  ++stats_.departed;
  return true;
}

void Simulation::insert_arrivals() {
  for (std::size_t s = 0; s < sources_.size(); ++s) {
    const std::size_t arrivals =
        sources_[s]->sample_arrivals(time_s_, config_.step_s, rng_);
    for (std::size_t i = 0; i < arrivals; ++i) {
      backlog_[s].push_back(sources_[s]->make_vehicle(time_s_, rng_));
    }
    // Drain the backlog while insertions succeed.
    while (!backlog_[s].empty()) {
      Vehicle vehicle = backlog_[s].front();
      vehicle.depart_time_s = time_s_;  // departure = actual insertion time
      if (!try_insert(std::move(vehicle))) break;
      backlog_[s].pop_front();
    }
  }
  stats_.backlog = 0;
  for (const auto& queue : backlog_) stats_.backlog += queue.size();
}

bool Simulation::leader_constraint(const Vehicle& vehicle,
                                   std::size_t index_in_lane,
                                   const std::vector<const Vehicle*>& lane_order,
                                   double& gap_m, double& leader_speed) const {
  // Direct leader on the same (edge, lane)?
  if (index_in_lane > 0) {
    const Vehicle& leader = *lane_order[index_in_lane - 1];
    gap_m = leader.pos_m - leader.type.length_m - vehicle.pos_m -
            vehicle.type.min_gap_m;
    leader_speed = leader.speed_mps;
    return true;
  }

  const Edge& edge = network_.edge(vehicle.current_edge());
  const double to_end = edge.length_m - vehicle.pos_m;

  // Red or yellow signal at the edge end acts as a standing obstacle.
  if (const SignalProgram* signal = network_.signal_for_edge(vehicle.current_edge())) {
    if (signal->state_at(time_s_) != LightState::kGreen) {
      gap_m = to_end - kStopLineMargin;
      leader_speed = 0.0;
      return true;
    }
  }

  // Look across the boundary at the rear vehicle on the next edge.
  if (!vehicle.on_last_edge()) {
    const EdgeId next = vehicle.route[vehicle.route_index + 1];
    const int next_lane =
        std::min(vehicle.lane, network_.edge(next).lane_count - 1);
    double best_front = std::numeric_limits<double>::infinity();
    const Vehicle* rear_most = nullptr;
    for (const Vehicle& other : active_) {
      if (other.current_edge() == next && other.lane == next_lane &&
          other.pos_m < best_front) {
        best_front = other.pos_m;
        rear_most = &other;
      }
    }
    if (rear_most != nullptr) {
      gap_m = to_end + rear_most->pos_m - rear_most->type.length_m -
              vehicle.type.min_gap_m;
      leader_speed = rear_most->speed_mps;
      return true;
    }
  }
  return false;  // free flow
}

void Simulation::change_lanes() {
  if (!config_.enable_lane_changing) return;

  // Group vehicle indices per (edge, lane), front-to-back; updated in place
  // as changes commit so later deciders see earlier maneuvers.
  std::map<std::pair<EdgeId, int>, std::vector<std::size_t>> lanes;
  for (std::size_t i = 0; i < active_.size(); ++i) {
    lanes[{active_[i].current_edge(), active_[i].lane}].push_back(i);
  }
  auto by_pos_desc = [this](std::size_t a, std::size_t b) {
    return active_[a].pos_m > active_[b].pos_m;
  };
  for (auto& [key, indices] : lanes) {
    std::sort(indices.begin(), indices.end(), by_pos_desc);
  }

  // Nearest leader (front) and follower (rear) of a hypothetical vehicle at
  // `pos` in (edge, lane).
  auto neighbors = [&](EdgeId edge, int lane, double pos, std::size_t self)
      -> std::pair<const Vehicle*, const Vehicle*> {
    const Vehicle* leader = nullptr;
    const Vehicle* follower = nullptr;
    const auto it = lanes.find({edge, lane});
    if (it == lanes.end()) return {nullptr, nullptr};
    for (std::size_t idx : it->second) {  // sorted front to back
      if (idx == self) continue;
      if (active_[idx].pos_m >= pos) {
        leader = &active_[idx];  // keep overwriting: last one >= pos is nearest
      } else {
        follower = &active_[idx];
        break;
      }
    }
    return {leader, follower};
  };

  // Deterministic order: snapshot of groups, front vehicles decide first.
  std::vector<std::size_t> order;
  order.reserve(active_.size());
  for (const auto& [key, indices] : lanes) {
    order.insert(order.end(), indices.begin(), indices.end());
  }

  for (std::size_t idx : order) {
    Vehicle& vehicle = active_[idx];
    const Edge& edge = network_.edge(vehicle.current_edge());
    if (edge.lane_count < 2) continue;
    const double v_max = std::min(edge.speed_limit_mps, vehicle.type.max_speed_mps);
    KraussParams params{vehicle.type.accel_mps2, vehicle.type.decel_mps2, 0.0,
                        vehicle.type.tau_s};

    auto achievable = [&](const Vehicle* leader) {
      if (leader == nullptr) return v_max;
      const double gap = leader->pos_m - leader->type.length_m - vehicle.pos_m -
                         vehicle.type.min_gap_m;
      return std::min(v_max, safe_speed(leader->speed_mps, gap, params));
    };

    const auto [cur_leader, cur_follower] =
        neighbors(vehicle.current_edge(), vehicle.lane, vehicle.pos_m, idx);
    (void)cur_follower;
    const double current = achievable(cur_leader);
    if (current >= v_max - 1e-9) continue;  // unconstrained: stay

    int best_lane = -1;
    double best_speed = current + config_.lane_change_advantage_mps;
    for (int target : {vehicle.lane - 1, vehicle.lane + 1}) {
      if (target < 0 || target >= edge.lane_count) continue;
      const auto [leader, follower] =
          neighbors(vehicle.current_edge(), target, vehicle.pos_m, idx);
      // Safety for the new follower: it must still be able to follow us
      // without exceeding its own safe speed.
      if (follower != nullptr) {
        const double follower_gap = vehicle.pos_m - vehicle.type.length_m -
                                    follower->pos_m - follower->type.min_gap_m;
        if (follower_gap < 0.0) continue;
        KraussParams follower_params{follower->type.accel_mps2,
                                     follower->type.decel_mps2, 0.0,
                                     follower->type.tau_s};
        if (safe_speed(vehicle.speed_mps, follower_gap, follower_params) <
            follower->speed_mps - follower->type.decel_mps2 * config_.step_s) {
          continue;  // would force the follower into emergency braking
        }
      }
      // Safety and incentive for us.
      const double gained = achievable(leader);
      if (gained > best_speed) {
        best_speed = gained;
        best_lane = target;
      }
    }

    if (best_lane >= 0) {
      auto& from = lanes[{vehicle.current_edge(), vehicle.lane}];
      std::erase(from, idx);
      vehicle.lane = best_lane;
      auto& to = lanes[{vehicle.current_edge(), best_lane}];
      to.insert(std::upper_bound(to.begin(), to.end(), idx, by_pos_desc), idx);
      ++stats_.lane_changes;
    }
  }
}

void Simulation::update_speeds() {
  next_speed_.assign(active_.size(), 0.0);

  // Group active vehicles by (edge, lane), front-to-back.
  std::map<std::pair<EdgeId, int>, std::vector<std::size_t>> lanes;
  for (std::size_t i = 0; i < active_.size(); ++i) {
    lanes[{active_[i].current_edge(), active_[i].lane}].push_back(i);
  }
  for (auto& [key, indices] : lanes) {
    std::sort(indices.begin(), indices.end(), [this](std::size_t a, std::size_t b) {
      return active_[a].pos_m > active_[b].pos_m;
    });
    std::vector<const Vehicle*> order;
    order.reserve(indices.size());
    for (std::size_t idx : indices) order.push_back(&active_[idx]);

    for (std::size_t k = 0; k < indices.size(); ++k) {
      const Vehicle& vehicle = active_[indices[k]];
      const Edge& edge = network_.edge(vehicle.current_edge());
      const double v_max =
          std::min(edge.speed_limit_mps, vehicle.type.max_speed_mps);
      KraussParams params{vehicle.type.accel_mps2, vehicle.type.decel_mps2,
                          config_.deterministic ? 0.0 : vehicle.type.sigma,
                          vehicle.type.tau_s};
      double gap = 0.0;
      double leader_speed = 0.0;
      double v_next;
      if (leader_constraint(vehicle, k, order, gap, leader_speed)) {
        v_next = krauss_step(vehicle.speed_mps, leader_speed, gap, v_max,
                             config_.step_s, params,
                             config_.deterministic ? nullptr : &rng_);
      } else {
        v_next = krauss_free_step(vehicle.speed_mps, v_max, config_.step_s,
                                  params, config_.deterministic ? nullptr : &rng_);
      }
      next_speed_[indices[k]] = v_next;
    }
  }
}

void Simulation::move_vehicles() {
  for (std::size_t i = 0; i < active_.size(); ++i) {
    Vehicle& vehicle = active_[i];
    vehicle.speed_mps = next_speed_[i];
    if (vehicle.speed_mps < 0.1) {
      vehicle.waiting_time_s += config_.step_s;
      stats_.total_waiting_time_s += config_.step_s;
    }
    double advance = vehicle.speed_mps * config_.step_s;
    vehicle.odometer_m += advance;
    stats_.total_distance_m += advance;
    vehicle.pos_m += advance;

    // Cross edge boundaries (possibly several short edges in one step).
    while (!vehicle.arrived) {
      const Edge& edge = network_.edge(vehicle.current_edge());
      if (vehicle.pos_m < edge.length_m) break;
      if (vehicle.on_last_edge()) {
        vehicle.arrived = true;
        break;
      }
      // A red light must not be crossed: clamp at the stop line.
      if (const SignalProgram* signal =
              network_.signal_for_edge(vehicle.current_edge())) {
        if (signal->state_at(time_s_) != LightState::kGreen) {
          const double overshoot = vehicle.pos_m - (edge.length_m - 0.01);
          vehicle.pos_m = edge.length_m - 0.01;
          vehicle.odometer_m -= overshoot;
          stats_.total_distance_m -= overshoot;
          vehicle.speed_mps = 0.0;
          break;
        }
      }
      vehicle.pos_m -= edge.length_m;
      ++vehicle.route_index;
      vehicle.lane = std::min(
          vehicle.lane, network_.edge(vehicle.current_edge()).lane_count - 1);
    }
  }

  // Retire arrived vehicles (observers see each one before removal).
  std::erase_if(active_, [this](const Vehicle& vehicle) {
    if (!vehicle.arrived) return false;
    ++stats_.arrived;
    stats_.total_travel_time_s += time_s_ - vehicle.depart_time_s;
    for (StepObserver* observer : observers_) {
      observer->on_vehicle_arrived(vehicle, time_s_);
    }
    return true;
  });
}

void Simulation::notify_observers() {
  StepView view{time_s_, config_.step_s, std::span<const Vehicle>(active_)};
  for (StepObserver* observer : observers_) observer->on_step(view);
}

void Simulation::step() {
  OLEV_OBS_COUNTER(obs_steps, "traffic.simulation.steps");
  OLEV_OBS_ADD(obs_steps, 1);
  insert_arrivals();
  change_lanes();
  update_speeds();
  move_vehicles();
  time_s_ += config_.step_s;
  notify_observers();
}

void Simulation::run_until(double until_time_s) {
  while (time_s_ < until_time_s) step();
}

const Vehicle* Simulation::find_vehicle(VehicleId id) const {
  for (const Vehicle& vehicle : active_) {
    if (vehicle.id == id) return &vehicle;
  }
  return nullptr;
}

bool Simulation::set_vehicle_lane(VehicleId id, int lane) {
  for (Vehicle& vehicle : active_) {
    if (vehicle.id != id) continue;
    if (lane < 0 || lane >= network_.edge(vehicle.current_edge()).lane_count) {
      return false;
    }
    vehicle.lane = lane;
    return true;
  }
  return false;
}

}  // namespace olev::traffic
