// Fixed-cycle traffic-signal programs (SUMO-style static phases).
#pragma once

#include <cstddef>
#include <vector>

#include "traffic/types.h"

namespace olev::traffic {

enum class LightState { kGreen, kYellow, kRed };

struct SignalPhase {
  LightState state = LightState::kGreen;
  double duration_s = 30.0;
};

/// A repeating signal program.  `offset_s` shifts the cycle start so
/// adjacent intersections can be coordinated ("green wave").
class SignalProgram {
 public:
  SignalProgram() = default;
  SignalProgram(std::vector<SignalPhase> phases, double offset_s = 0.0);

  /// Standard program: green -> yellow -> red, repeating.
  static SignalProgram fixed_cycle(double green_s, double yellow_s, double red_s,
                                   double offset_s = 0.0);

  LightState state_at(double time_s) const;
  /// Seconds until the light is next green (0 when already green).
  double time_to_green(double time_s) const;
  double cycle_length_s() const { return cycle_s_; }
  const std::vector<SignalPhase>& phases() const { return phases_; }
  /// Fraction of the cycle spent green.
  double green_ratio() const;

 private:
  std::vector<SignalPhase> phases_;
  double offset_s_ = 0.0;
  double cycle_s_ = 0.0;

  /// Position within the cycle for absolute time t.
  double cycle_pos(double time_s) const;
};

}  // namespace olev::traffic
