// Origin-destination trip demand for network-scale (grid-city) studies.
//
// FlowSource replays one route; OdTripSource samples trips between entry
// and exit edges and routes each through shortest_route, so a city's demand
// can be described as "N trips per hour between these gateways" -- the way
// real counts (like the paper's NYCDOT data) are published.
#pragma once

#include <vector>

#include "traffic/demand.h"
#include "traffic/routing.h"

namespace olev::traffic {

class OdTripSource : public DemandSource {
 public:
  /// Precomputes the routes between every (entry, exit) pair with
  /// entry != exit; throws std::invalid_argument if none is routable.
  /// `counts` gives trips per hour across the whole OD matrix; pairs are
  /// drawn uniformly among the routable ones.
  OdTripSource(const Network& network, std::vector<EdgeId> entries,
               std::vector<EdgeId> exits, DemandConfig config, VehicleType type);

  std::size_t sample_arrivals(double time_s, double dt_s,
                              util::Rng& rng) const override;
  Vehicle make_vehicle(double time_s, util::Rng& rng) const override;

  std::size_t routable_pairs() const { return routes_.size(); }
  const std::vector<Route>& routes() const { return routes_; }

 private:
  DemandConfig config_;
  VehicleType type_;
  std::vector<Route> routes_;
};

/// Convenience: boundary in-edges (no predecessors) and out-edges (no
/// successors) of a network -- natural gateways of a grid city.
std::vector<EdgeId> entry_edges(const Network& network);
std::vector<EdgeId> exit_edges(const Network& network);

}  // namespace olev::traffic
