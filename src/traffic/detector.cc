#include "traffic/detector.h"

#include <algorithm>
#include <cmath>

namespace olev::traffic {

std::size_t hour_bucket(double time_s) {
  double hour = std::fmod(time_s / 3600.0, 24.0);
  if (hour < 0.0) hour += 24.0;
  return std::min<std::size_t>(23, static_cast<std::size_t>(hour));
}

SegmentDetector::SegmentDetector(EdgeId edge, double start_m, double end_m,
                                 bool olev_only)
    : edge_(edge), start_m_(start_m), end_m_(end_m), olev_only_(olev_only) {}

void SegmentDetector::on_step(const StepView& view) {
  const std::size_t bucket = hour_bucket(view.time_s);
  bool any = false;
  for (const Vehicle& vehicle : view.vehicles) {
    if (vehicle.arrived || vehicle.current_edge() != edge_) continue;
    if (olev_only_ && !vehicle.is_olev) continue;
    const double front = vehicle.pos_m;
    const double rear = vehicle.pos_m - vehicle.type.length_m;
    // Overlap of the vehicle body with [start, end): any contact counts for
    // the full step (matches the paper's "time on top of the section").
    if (front >= start_m_ && rear <= end_m_) {
      occupancy_s_[bucket] += view.dt_s;
      occupancy_total_s_ += view.dt_s;
      speed_time_integral_ += vehicle.speed_mps * view.dt_s;
      any = true;
    }
  }
  if (any) ++occupied_steps_;
}

double SegmentDetector::total_occupancy_s() const { return occupancy_total_s_; }

double SegmentDetector::mean_occupant_speed_mps() const {
  return occupancy_total_s_ <= 0.0 ? 0.0
                                   : speed_time_integral_ / occupancy_total_s_;
}

void SegmentDetector::reset() {
  occupancy_s_.fill(0.0);
  speed_time_integral_ = 0.0;
  occupancy_total_s_ = 0.0;
  occupied_steps_ = 0;
}

InductionLoop::InductionLoop(EdgeId edge, double pos_m)
    : edge_(edge), pos_m_(pos_m) {}

void InductionLoop::on_step(const StepView& view) {
  last_step_count_ = 0;
  const std::size_t bucket = hour_bucket(view.time_s);
  for (const Vehicle& vehicle : view.vehicles) {
    if (vehicle.arrived || vehicle.current_edge() != edge_) continue;
    // Crossing: front passed the loop during this step.
    const double prev_front = vehicle.pos_m - vehicle.speed_mps * view.dt_s;
    if (prev_front < pos_m_ && vehicle.pos_m >= pos_m_) {
      ++counts_[bucket];
      ++total_count_;
      ++last_step_count_;
    }
  }
}

void InductionLoop::reset() {
  counts_.fill(0);
  total_count_ = 0;
  last_step_count_ = 0;
}

}  // namespace olev::traffic
