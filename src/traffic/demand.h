// Traffic demand from hourly counts.
//
// The paper drives SUMO with NYCDOT hourly traffic counts for Flatlands
// Avenue, Brooklyn (Jan 31 2013).  The raw spreadsheet is not redistributed;
// `nyc_arterial_hourly_counts()` embeds a 24-value weekday profile with the
// same structure (overnight trough, AM peak ~08:00, PM peak ~17:00, ~20k
// vehicles/day for a two-direction arterial).  Arrivals are sampled as a
// time-inhomogeneous Poisson process.
#pragma once

#include <array>
#include <vector>

#include "traffic/network.h"
#include "traffic/vehicle.h"
#include "util/rng.h"

namespace olev::traffic {

/// Hourly vehicle counts (vehicles entering the corridor per hour).
using HourlyCounts = std::array<double, 24>;

/// Embedded NYC-arterial-shaped weekday profile (see file comment).
HourlyCounts nyc_arterial_hourly_counts();

/// Scales a profile so that the daily total equals `daily_total`.
HourlyCounts scale_to_daily_total(const HourlyCounts& counts, double daily_total);

struct DemandConfig {
  HourlyCounts counts = nyc_arterial_hourly_counts();
  double olev_participation = 1.0;  ///< fraction of vehicles that are OLEVs
  double olev_willingness = 1.0;    ///< fraction of OLEVs willing to charge
};

/// Interface for anything that injects vehicles into the simulation.
class DemandSource {
 public:
  virtual ~DemandSource() = default;
  /// Samples the number of arrivals in [time_s, time_s + dt).
  virtual std::size_t sample_arrivals(double time_s, double dt_s,
                                      util::Rng& rng) const = 0;
  /// Creates a newly arrived vehicle (id assigned by the simulation).
  virtual Vehicle make_vehicle(double time_s, util::Rng& rng) const = 0;
};

/// Poisson arrival generator over one fixed route.
class FlowSource : public DemandSource {
 public:
  FlowSource(Route route, DemandConfig config, VehicleType type);

  /// Expected arrivals per second at absolute time `time_s` (piecewise
  /// constant per hour, wrapping daily).
  double rate_at(double time_s) const;

  std::size_t sample_arrivals(double time_s, double dt_s,
                              util::Rng& rng) const override;

  /// OLEV tagging is sampled from participation * willingness.
  Vehicle make_vehicle(double time_s, util::Rng& rng) const override;

  const Route& route() const { return route_; }
  const DemandConfig& config() const { return config_; }

 private:
  Route route_;
  DemandConfig config_;
  VehicleType type_;
};

}  // namespace olev::traffic
