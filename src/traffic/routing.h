// Route planning over the road network.
//
// The paper's future work: "We also plan to consider the effect charging
// section placement will have on OLEV path planning."  This module provides
// the planning half: edge-based Dijkstra over expected travel time (free
// flow + expected signal delay), with an optional per-edge cost adjustment
// hook through which the WPT layer injects charging-opportunity bonuses
// (see wpt/deployment.h).
#pragma once

#include <span>
#include <vector>

#include "traffic/network.h"

namespace olev::traffic {

struct RouteResult {
  bool found = false;
  Route route;            ///< edge sequence from source to destination
  double cost = 0.0;      ///< total adjusted cost (seconds)
  double travel_time_s = 0.0;  ///< unadjusted expected travel time
};

/// Expected traversal time of one edge: free-flow time plus the expected
/// delay at its downstream signal (uniform arrivals over the cycle:
/// E[delay] = red^2 / (2 * cycle)).
double expected_edge_time_s(const Network& network, EdgeId edge);

/// Edge-based Dijkstra from `from` to `to` (both inclusive).
/// `edge_cost_adjust`, when non-empty, must have one entry per edge and is
/// added to each edge's expected time (negative values = bonuses; the
/// effective edge cost is floored at a small positive epsilon so the graph
/// stays Dijkstra-safe).
RouteResult shortest_route(const Network& network, EdgeId from, EdgeId to,
                           std::span<const double> edge_cost_adjust = {});

/// Sum of expected_edge_time_s over a route.
double route_expected_time_s(const Network& network, const Route& route);

/// Builds a rows x cols Manhattan grid of one-way edge pairs with
/// signalized interior junctions; edge "e<r>_<c>_<r'>_<c'>" runs from node
/// (r, c) to node (r', c').  U-turns (immediately re-traversing the reverse
/// edge) are not connected.
Network grid_city(int rows, int cols, double block_m, double speed_limit_mps,
                  const SignalProgram& program);

}  // namespace olev::traffic
