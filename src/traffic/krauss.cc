#include "traffic/krauss.h"

#include <algorithm>
#include <cmath>

namespace olev::traffic {

double safe_speed(double leader_speed_mps, double gap_m,
                  const KraussParams& params) {
  const double g = std::max(0.0, gap_m);
  const double b = params.decel_mps2;
  const double tau = params.tau_s;
  const double bt = b * tau;
  const double v_safe =
      -bt + std::sqrt(bt * bt + leader_speed_mps * leader_speed_mps + 2.0 * b * g);
  return std::max(0.0, v_safe);
}

double krauss_step(double speed_mps, double leader_speed_mps, double gap_m,
                   double v_max_mps, double dt_s, const KraussParams& params,
                   util::Rng* rng) {
  const double v_safe = safe_speed(leader_speed_mps, gap_m, params);
  const double v_des = std::min({speed_mps + params.accel_mps2 * dt_s, v_safe,
                                 v_max_mps});
  double v = v_des;
  if (rng != nullptr && params.sigma > 0.0) {
    v -= params.sigma * params.accel_mps2 * dt_s * rng->uniform();
  }
  return std::max(0.0, v);
}

double krauss_free_step(double speed_mps, double v_max_mps, double dt_s,
                        const KraussParams& params, util::Rng* rng) {
  double v = std::min(speed_mps + params.accel_mps2 * dt_s, v_max_mps);
  if (rng != nullptr && params.sigma > 0.0) {
    v -= params.sigma * params.accel_mps2 * dt_s * rng->uniform();
  }
  return std::max(0.0, v);
}

}  // namespace olev::traffic
