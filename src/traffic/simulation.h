// The microscopic traffic simulation engine.
//
// Discrete time steps (default 1 s, SUMO's default).  Per step:
//   1. sample Poisson arrivals from every FlowSource and insert where the
//      entry edge has room (otherwise the vehicle waits in a backlog queue);
//   2. update speeds front-to-back per (edge, lane) with the Krauss model,
//      treating red/yellow signals as a standing obstacle at the stop line
//      and looking across edge boundaries for leaders;
//   3. move vehicles, advancing them across edges and retiring arrivals;
//   4. notify registered StepObservers (detectors, charging lanes, TraCI).
//
// Single-threaded by design: runs a full 24 h corridor day in well under a
// second, and determinism under a fixed seed is worth more than parallelism
// here.
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "traffic/demand.h"
#include "traffic/detector.h"
#include "traffic/krauss.h"
#include "traffic/network.h"
#include "traffic/vehicle.h"
#include "util/rng.h"

namespace olev::traffic {

struct SimulationConfig {
  double step_s = 1.0;
  std::uint64_t seed = 0xf1a7;
  double insertion_speed_factor = 0.8;  ///< entry speed as fraction of limit
  bool deterministic = false;           ///< sigma=0 (no dawdling) when true
  bool enable_lane_changing = true;     ///< SUMO-like overtaking on multilane edges
  double lane_change_advantage_mps = 1.0;  ///< required safe-speed gain
};

struct SimulationStats {
  std::size_t departed = 0;       ///< vehicles inserted
  std::size_t arrived = 0;        ///< vehicles that finished their route
  std::size_t backlog = 0;        ///< vehicles waiting to be inserted
  std::size_t lane_changes = 0;   ///< successful lane-change maneuvers
  double total_travel_time_s = 0.0;
  double total_distance_m = 0.0;
  double total_waiting_time_s = 0.0;  ///< time spent at speed < 0.1 m/s

  double mean_travel_time_s() const {
    return arrived == 0 ? 0.0 : total_travel_time_s / static_cast<double>(arrived);
  }
  double mean_speed_mps() const {
    return total_travel_time_s <= 0.0 ? 0.0
                                      : total_distance_m / total_travel_time_s;
  }
};

class Simulation {
 public:
  Simulation(Network network, SimulationConfig config = {});

  /// Adds a demand source; vehicles enter at the first edge of their route.
  void add_source(FlowSource source);
  void add_source(std::unique_ptr<DemandSource> source);

  /// Registers an observer called after every step.  Not owned.
  void add_observer(StepObserver* observer);
  /// Unregisters an observer (no-op if not registered).
  void remove_observer(StepObserver* observer);

  /// Inserts one vehicle immediately if there is room; returns true on
  /// success.  Used by tests and by TraCI's vehicle.add.
  bool try_insert(Vehicle vehicle);

  /// Advances the simulation by one step.
  void step();
  /// Runs until `until_time_s`.
  void run_until(double until_time_s);

  double time_s() const { return time_s_; }
  const Network& network() const { return network_; }
  const SimulationConfig& config() const { return config_; }
  const SimulationStats& stats() const { return stats_; }
  std::span<const Vehicle> vehicles() const { return active_; }
  std::size_t active_count() const { return active_.size(); }

  /// Looks up an active vehicle by id; nullptr if not present.
  const Vehicle* find_vehicle(VehicleId id) const;

  /// Forces a vehicle into `lane` (TraCI's vehicle.changeLane).  Returns
  /// false for unknown vehicles or lanes outside the current edge.
  bool set_vehicle_lane(VehicleId id, int lane);

 private:
  void insert_arrivals();
  void change_lanes();
  void update_speeds();
  void move_vehicles();
  void notify_observers();

  /// Minimum front position among vehicles on (edge, lane); +inf if empty.
  double rearmost_front_pos(EdgeId edge, int lane) const;

  /// Net gap and speed of the relevant leader for `vehicle`, looking across
  /// the edge boundary and at the signal at the current edge's end.  Returns
  /// false when the vehicle is in free flow.
  bool leader_constraint(const Vehicle& vehicle, std::size_t index_in_lane,
                         const std::vector<const Vehicle*>& lane_order,
                         double& gap_m, double& leader_speed) const;

  Network network_;
  SimulationConfig config_;
  util::Rng rng_;
  double time_s_ = 0.0;
  std::vector<Vehicle> active_;
  std::vector<double> next_speed_;  // scratch, parallel to active_
  std::vector<std::unique_ptr<DemandSource>> sources_;
  std::vector<std::deque<Vehicle>> backlog_;  // parallel to sources_
  std::vector<StepObserver*> observers_;
  SimulationStats stats_;
  VehicleId next_id_ = 1;
};

}  // namespace olev::traffic
