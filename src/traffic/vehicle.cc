#include "traffic/vehicle.h"

namespace olev::traffic {

VehicleType VehicleType::passenger() { return VehicleType{}; }

VehicleType VehicleType::olev() {
  VehicleType type;
  type.name = "olev";
  return type;
}

}  // namespace olev::traffic
