#include "svc/frame.h"

namespace olev::svc {

std::vector<std::uint8_t> encode_frame(const net::Message& message) {
  const std::vector<std::uint8_t> payload = net::serialize(message);
  std::vector<std::uint8_t> frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  const auto length = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    frame.push_back(static_cast<std::uint8_t>(length >> (8 * i)));
  }
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

std::optional<std::size_t> FrameDecoder::pending_length() const {
  if (buffer_.size() < kFrameHeaderBytes) return std::nullopt;
  std::uint32_t length = 0;
  for (int i = 0; i < 4; ++i) {
    length |= static_cast<std::uint32_t>(buffer_[static_cast<std::size_t>(i)])
              << (8 * i);
  }
  return static_cast<std::size_t>(length);
}

bool FrameDecoder::feed(std::span<const std::uint8_t> bytes) {
  if (oversized_) return false;
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  // Check the bound eagerly: the header alone is enough to convict, no need
  // to buffer the body first.
  if (const auto length = pending_length();
      length.has_value() && *length > max_frame_bytes_) {
    oversized_ = true;
    buffer_.clear();
    buffer_.shrink_to_fit();
    return false;
  }
  return true;
}

std::optional<std::vector<std::uint8_t>> FrameDecoder::next() {
  if (oversized_) return std::nullopt;
  const auto length = pending_length();
  if (!length.has_value() || buffer_.size() < kFrameHeaderBytes + *length) {
    return std::nullopt;
  }
  std::vector<std::uint8_t> payload(
      buffer_.begin() + static_cast<std::ptrdiff_t>(kFrameHeaderBytes),
      buffer_.begin() +
          static_cast<std::ptrdiff_t>(kFrameHeaderBytes + *length));
  buffer_.erase(buffer_.begin(),
                buffer_.begin() +
                    static_cast<std::ptrdiff_t>(kFrameHeaderBytes + *length));
  ++frames_decoded_;
  // The next frame's header may already be buffered and oversized; latch now
  // so the caller notices before waiting for more bytes.
  if (const auto following = pending_length();
      following.has_value() && *following > max_frame_bytes_) {
    oversized_ = true;
    buffer_.clear();
  }
  return payload;
}

}  // namespace olev::svc
