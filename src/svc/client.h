// Blocking client for the PricingService protocol: one TCP connection, one
// net::Message per call.  Used by olev_loadgen, the service tests, and the
// examples; a real OLEV-side agent would wrap this with the best-response
// solver (examples/service_session.cpp shows the lockstep version).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "net/message.h"
#include "svc/frame.h"
#include "svc/socket.h"

namespace olev::svc {

class ServiceClient {
 public:
  /// Connects to host:port, retrying until `timeout_s` (the daemon may still
  /// be binding).  Throws std::runtime_error on timeout.
  static ServiceClient connect(const std::string& host, std::uint16_t port,
                               double timeout_s = 5.0);

  /// Frames and writes one message; throws if the peer closed.
  void send(const net::Message& message);

  /// Raw bytes on the wire, unframed -- for tests that need to speak
  /// malformed or truncated frames at the server.
  void send_raw(std::span<const std::uint8_t> bytes);

  /// Blocks up to `timeout_s` for the next complete frame.  Returns
  /// std::nullopt on timeout; throws on a malformed reply.  Peer close with
  /// no pending frame also returns std::nullopt (check peer_closed()).
  std::optional<net::Message> recv(double timeout_s = 5.0);

  bool peer_closed() const { return peer_closed_; }
  int fd() const { return socket_.fd(); }

  /// Half-close: no more writes from us, reads still drain.
  void shutdown_write();

 private:
  explicit ServiceClient(Socket socket);

  Socket socket_;
  FrameDecoder decoder_{kDefaultMaxFrameBytes};
  bool peer_closed_ = false;
};

}  // namespace olev::svc
