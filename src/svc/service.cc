#include "svc/service.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <utility>

#include "net/message.h"
#include "obs/flight.h"
#include "obs/obs.h"
#include "obs/report.h"
#include "obs/strings.h"
#include "persist/snapshot.h"

namespace olev::svc {
namespace {

constexpr std::size_t kReadChunkBytes = 16 * 1024;
/// Admin command lines are tiny ("snapshot\n"); anything longer is garbage.
constexpr std::size_t kMaxAdminLineBytes = 256;

std::int64_t micros(double seconds) {
  return static_cast<std::int64_t>(seconds * 1e6);
}

/// Phase durations ride the wire as u32 µs; clamp instead of wrapping (a
/// negative delta can only come from clock-source skew, a >71min phase from
/// a stalled clock -- both saturate rather than lie).
std::uint32_t phase_us(std::int64_t delta_us) {
  if (delta_us <= 0) return 0;
  if (delta_us >= std::numeric_limits<std::uint32_t>::max()) {
    return std::numeric_limits<std::uint32_t>::max();
  }
  return static_cast<std::uint32_t>(delta_us);
}

/// Bit-pattern equality for snapshot-vs-config validation: the resume
/// contract is bit-identity, so "same epsilon" means the same 8 bytes, not
/// a tolerance (and NaN-safe, unlike operator==).
bool same_bits(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

std::uint8_t mode_byte(EngineMode mode) {
  return mode == EngineMode::kMeanField ? 1 : 0;
}

}  // namespace

std::vector<double> default_latency_bucket_edges_us() {
  return {0,    10,    25,    50,    100,    250,    500,    1000,
          2500, 5000, 10000, 25000, 50000, 100000, 500000};
}

/// One connected client: its socket, the framing decoder for its byte
/// stream, a bounded outgoing buffer, and the player binding (if any).
struct PricingService::Session {
  Session(Socket sock, std::size_t max_frame)
      : socket(std::move(sock)), decoder(max_frame) {}

  Socket socket;
  FrameDecoder decoder;
  std::vector<std::uint8_t> outbuf;
  std::size_t outbuf_offset = 0;
  std::int64_t last_activity_us = 0;
  bool has_player = false;
  std::uint32_t player = 0;
  bool closing = false;  ///< stop reading; close once outbuf flushes
  bool dead = false;     ///< close now; queued entries must not respond

  std::size_t pending_out() const { return outbuf.size() - outbuf_offset; }
};

/// One admin-plane client: newline-delimited text commands in, one line of
/// JSON out per command.  Read-only and confined to the run() thread.
struct PricingService::AdminSession {
  explicit AdminSession(Socket sock) : socket(std::move(sock)) {}

  Socket socket;
  std::string inbuf;
  std::string outbuf;
  std::size_t outbuf_offset = 0;
  bool dead = false;

  std::size_t pending_out() const { return outbuf.size() - outbuf_offset; }
};

PricingService::PricingService(core::SectionCost cost, ServiceConfig config)
    : cost_(std::move(cost)),
      config_(std::move(config)),
      engine_(cost_,
              EngineConfig{config_.players, config_.sections, config_.epsilon,
                           config_.caps_kw, config_.engine_mode}),
      listener_(listen_on(config_.port)),
      port_(local_port(listener_)) {
  if (config_.max_batch == 0 || config_.max_queue == 0) {
    throw std::invalid_argument("PricingService: max_batch/max_queue must be > 0");
  }
  if (config_.announce_after_players == 0 ||
      config_.announce_after_players > config_.players) {
    config_.announce_after_players = config_.players;
  }
  if (config_.latency_bucket_edges_us.empty()) {
    config_.latency_bucket_edges_us = default_latency_bucket_edges_us();
  }
  if (config_.admin_enabled) {
    admin_listener_ = listen_on(config_.admin_port);
    admin_port_ = local_port(admin_listener_);
  }
  known_players_.assign(config_.players, false);
  if (config_.resume) {
    if (config_.snapshot_path.empty()) {
      throw std::invalid_argument(
          "PricingService: resume requires a snapshot_path");
    }
    load_snapshot();
  }
  if (!config_.journal_path.empty()) {
    persist::JournalHeader header;
    header.mode = mode_byte(config_.engine_mode);
    header.players = config_.players;
    header.sections = config_.sections;
    header.epsilon = config_.epsilon;
    header.caps_kw = engine_.caps_kw();
    journal_ = std::make_unique<persist::JournalWriter>(
        config_.journal_path, header, config_.journal_fsync);
  }
  started_us_ = obs::now_micros();
  OLEV_OBS_ONLY({
    obs::Registry& registry = obs::Registry::instance();
    const std::vector<double>& edges = config_.latency_bucket_edges_us;
    latency_hist_ = &registry.histogram("svc.request.latency_us", edges);
    phase_admit_hist_ = &registry.histogram("svc.phase.admit_us", edges);
    phase_queue_hist_ = &registry.histogram("svc.phase.queue_us", edges);
    phase_batch_hist_ = &registry.histogram("svc.phase.batch_us", edges);
    phase_solve_hist_ = &registry.histogram("svc.phase.solve_us", edges);
    phase_write_hist_ = &registry.histogram("svc.phase.write_us", edges);
  });
}

PricingService::~PricingService() = default;

void PricingService::load_snapshot() {
  const persist::ServiceSnapshot snapshot =
      persist::load(config_.snapshot_path);
  const persist::EngineSnapshot& engine = snapshot.engine;
  if (engine.mode != mode_byte(config_.engine_mode) ||
      engine.players != config_.players ||
      engine.sections != config_.sections) {
    throw std::runtime_error(
        "PricingService: snapshot engine shape does not match config");
  }
  if (!same_bits({engine.epsilon}, {config_.epsilon}) ||
      !same_bits(engine.caps_kw, engine_.caps_kw())) {
    // Bit-identity of the resumed round depends on epsilon and the caps as
    // much as on the schedule itself; a drifted config must fail loudly.
    throw std::runtime_error(
        "PricingService: snapshot epsilon/caps do not match config");
  }
  engine_.restore_state(engine.schedule_kw, engine.updates, engine.residual,
                        engine.converged != 0, engine.total_load_kw);
  announcing_started_ = snapshot.announcing_started != 0;
  converged_broadcast_ = snapshot.converged_broadcast != 0;
  for (const std::uint32_t player : snapshot.bound_players) {
    known_players_[player] = true;
  }
  resumed_ = true;
}

void PricingService::save_snapshot() {
  persist::ServiceSnapshot snapshot;
  persist::EngineSnapshot& engine = snapshot.engine;
  engine.mode = mode_byte(config_.engine_mode);
  engine.players = config_.players;
  engine.sections = config_.sections;
  engine.epsilon = config_.epsilon;
  engine.caps_kw = engine_.caps_kw();
  const std::span<const double> flat = engine_.schedule().flat();
  engine.schedule_kw.assign(flat.begin(), flat.end());
  engine.updates = engine_.updates();
  engine.residual = engine_.residual();
  engine.converged = engine_.converged() ? 1 : 0;
  engine.total_load_kw = engine_.total_load_kw();
  snapshot.announcing_started = announcing_started_ ? 1 : 0;
  snapshot.converged_broadcast = converged_broadcast_ ? 1 : 0;
  for (std::uint32_t player = 0; player < config_.players; ++player) {
    if (known_players_[player]) snapshot.bound_players.push_back(player);
  }
  persist::save(config_.snapshot_path, snapshot);
}

std::shared_ptr<PricingService::Session> PricingService::bound_session(
    std::size_t player) const {
  // Linear scan: session counts are poll(2)-scale, and the newest binding
  // wins (a reconnecting player displaces its stale session).
  std::shared_ptr<Session> found;
  for (const auto& session : sessions_) {
    if (!session->dead && session->has_player && session->player == player) {
      found = session;
    }
  }
  return found;
}

void PricingService::send_message(const std::shared_ptr<Session>& session,
                                  const net::Message& message) {
  if (session->dead) return;
  const std::vector<std::uint8_t> frame = encode_frame(message);
  if (session->pending_out() + frame.size() > config_.max_write_buffer_bytes) {
    // The peer is not draining its socket; buffering without bound would let
    // one slow client hold the schedule's memory hostage.
    ++stats_.write_overflows;
    session->dead = true;
    return;
  }
  session->outbuf.insert(session->outbuf.end(), frame.begin(), frame.end());
  ++stats_.frames_sent;
  flush_session(*session);
}

void PricingService::flush_session(Session& session) {
  while (session.pending_out() > 0) {
    const std::span<const std::uint8_t> chunk(
        session.outbuf.data() + session.outbuf_offset, session.pending_out());
    const IoResult io = write_some(session.socket.fd(), chunk);
    if (io.closed) {
      session.dead = true;
      return;
    }
    if (io.would_block || io.bytes == 0) return;
    session.outbuf_offset += io.bytes;
    stats_.bytes_sent += io.bytes;
  }
  session.outbuf.clear();
  session.outbuf_offset = 0;
  if (session.closing) session.dead = true;
}

void PricingService::fail_session(const std::shared_ptr<Session>& session,
                                  net::ControlCode code) {
  net::ControlMsg notice;
  notice.code = code;
  notice.player = session->has_player ? session->player : 0;
  send_message(session, notice);
  session->closing = true;
  if (session->pending_out() == 0) session->dead = true;
}

void PricingService::accept_new_connections() {
  for (;;) {
    Socket sock = accept_connection(listener_);
    if (!sock.valid()) return;
    auto session =
        std::make_shared<Session>(std::move(sock), config_.max_frame_bytes);
    session->last_activity_us = obs::now_micros();
    sessions_.push_back(std::move(session));
    ++stats_.connections_accepted;
    OLEV_OBS_COUNTER(accepted, "svc.connections.accepted");
    OLEV_OBS_ADD(accepted, 1);
  }
}

void PricingService::read_session(const std::shared_ptr<Session>& session,
                                  std::int64_t now_us) {
  std::uint8_t chunk[kReadChunkBytes];
  for (;;) {
    const IoResult io = read_some(session->socket.fd(), chunk);
    if (io.closed) {
      session->dead = true;
      return;
    }
    if (io.would_block || io.bytes == 0) break;
    session->last_activity_us = now_us;
    stats_.bytes_received += io.bytes;
    if (!session->decoder.feed({chunk, io.bytes})) {
      // Oversized frame: the length prefix alone condemns the stream.
      ++stats_.malformed_frames;
      OLEV_OBS_COUNTER(rejected, "svc.frames.rejected");
      OLEV_OBS_ADD(rejected, 1);
      fail_session(session, net::ControlCode::kMalformed);
      return;
    }
    while (auto payload = session->decoder.next()) {
      ++stats_.frames_received;
      net::Message message;
      try {
        message = net::deserialize(*payload);
      } catch (const std::exception&) {
        ++stats_.malformed_frames;
        OLEV_OBS_COUNTER(rejected, "svc.frames.rejected");
        OLEV_OBS_ADD(rejected, 1);
        fail_session(session, net::ControlCode::kMalformed);
        return;
      }
      dispatch(session, message, now_us);
      if (session->dead || session->closing) return;
    }
  }
}

void PricingService::dispatch(const std::shared_ptr<Session>& session,
                              const net::Message& message,
                              std::int64_t now_us) {
  if (const auto* beacon = std::get_if<net::BeaconMsg>(&message)) {
    if (beacon->player >= config_.players) {
      ++stats_.bad_requests;
      net::ControlMsg notice;
      notice.code = net::ControlCode::kBadRequest;
      notice.player = beacon->player;
      send_message(session, notice);
      return;
    }
    const bool was_bound = bound_session(beacon->player) != nullptr;
    const bool reattach = known_players_[beacon->player];
    session->has_player = true;
    session->player = beacon->player;
    known_players_[beacon->player] = true;
    if (!was_bound) ++bound_players_;
    if (config_.announce && !announcing_started_ &&
        bound_players_ >= config_.announce_after_players) {
      announcing_started_ = true;
    }
    if (reattach) {
      // A known player is re-presenting its id (reconnect, or first bind
      // after a snapshot resume): acknowledge the re-attach so the client
      // knows its binding carried over, and if the grid-paced announcement
      // was waiting on exactly this player, retransmit immediately instead
      // of stalling the round until the announce_retry_s timer.
      ++stats_.sessions_resumed;
      obs::flight::record(obs::flight::Event::kSessionResume, beacon->player,
                          static_cast<std::uint64_t>(engine_.updates()));
      net::ControlMsg notice;
      notice.code = net::ControlCode::kSessionResumed;
      notice.player = beacon->player;
      notice.round = static_cast<std::uint64_t>(engine_.updates());
      send_message(session, notice);
      if (announce_inflight_ && !announce_answered_ &&
          announced_player_ == beacon->player) {
        announced_at_us_ = 0;  // forces a retransmit on the next loop pass
      }
    }
    return;
  }

  if (const auto* request = std::get_if<net::PowerRequestMsg>(&message)) {
    ++stats_.requests_received;
    OLEV_OBS_COUNTER(received, "svc.requests.received");
    OLEV_OBS_ADD(received, 1);
    net::ControlMsg notice;
    notice.player = request->player;
    notice.round = request->round;
    if (request->player >= config_.players ||
        !std::isfinite(request->total_kw)) {
      ++stats_.bad_requests;
      notice.code = net::ControlCode::kBadRequest;
      send_message(session, notice);
      return;
    }
    if (draining_) {
      ++stats_.drain_rejected;
      notice.code = net::ControlCode::kDraining;
      send_message(session, notice);
      return;
    }
    if (queue_.size() >= config_.max_queue) {
      ++stats_.retry_later;
      OLEV_OBS_COUNTER(retries, "svc.requests.retry_later");
      OLEV_OBS_ADD(retries, 1);
      obs::flight::record(obs::flight::Event::kBackpressure, request->player,
                          queue_.size());
      notice.code = net::ControlCode::kRetryLater;
      send_message(session, notice);
      return;
    }
    PendingRequest pending;
    pending.session = session;
    pending.player = request->player;
    pending.round = request->round;
    pending.total_kw = request->total_kw;
    pending.arrival_us = now_us;
    pending.deadline_us = now_us + micros(config_.request_deadline_s);
    pending.admit_done_us = obs::now_micros();
    pending.trace = request->trace;
    queue_.push_back(std::move(pending));
    obs::flight::record(obs::flight::Event::kAdmit, request->player,
                        queue_.size());
    if (journal_ != nullptr) {
      // Write-ahead journal: the admitted request, in admission order, with
      // its trace context -- everything olev_replay needs to reproduce the
      // engine's update sequence bit-for-bit.  Buffered append on the same
      // poll loop; off every rtcheck-audited hot root.
      persist::JournalRecord record;
      record.ts_us = now_us;
      record.player = request->player;
      record.round = request->round;
      record.total_kw = request->total_kw;
      record.trace_id = request->trace.trace_id;
      record.client_send_us = request->trace.client_send_us;
      try {
        journal_->append(record);
        ++stats_.journal_records;
      } catch (const std::exception&) {
        // Disk trouble must not take the pricing round down with it: close
        // the journal, count the failure, keep serving.
        ++stats_.journal_failures;
        journal_.reset();
      }
    }
    return;
  }

  // Grid-to-client message types (or a control frame) arriving inbound is a
  // protocol violation; answer once and hang up.
  ++stats_.bad_requests;
  fail_session(session, net::ControlCode::kBadRequest);
}

void PricingService::expire_overdue(std::int64_t now_us) {
  // Deadline = arrival + constant, so FIFO order is deadline order and only
  // the front can be overdue.
  while (!queue_.empty() && queue_.front().deadline_us <= now_us) {
    PendingRequest expired = std::move(queue_.front());
    queue_.pop_front();
    ++stats_.deadline_expired;
    OLEV_OBS_COUNTER(expired_count, "svc.requests.expired");
    OLEV_OBS_ADD(expired_count, 1);
    obs::flight::record(obs::flight::Event::kExpire, expired.player,
                        expired.round);
    if (expired.session->dead) continue;
    net::ControlMsg notice;
    notice.code = net::ControlCode::kDeadlineExpired;
    notice.player = expired.player;
    notice.round = expired.round;
    send_message(expired.session, notice);
  }
}

void PricingService::run_batch(std::int64_t now_us) {
  const std::size_t batch_size = std::min(queue_.size(), config_.max_batch);
  if (batch_size == 0) return;
  ++stats_.batches;
  stats_.max_batch_size = std::max(stats_.max_batch_size, batch_size);
  last_batch_size_ = batch_size;
  obs::flight::record(obs::flight::Event::kBatchFire, batch_size,
                      queue_.size());
  OLEV_OBS_HISTOGRAM(batch_hist, "svc.batch.size",
                     {0, 1, 2, 4, 8, 16, 32, 64, 128, 256});
  OLEV_OBS_OBSERVE(batch_hist, static_cast<double>(batch_size));
  const obs::Stopwatch apply_time;
  for (std::size_t i = 0; i < batch_size; ++i) {
    PendingRequest entry = std::move(queue_.front());
    queue_.pop_front();
    if (entry.deadline_us <= now_us) {
      ++stats_.deadline_expired;
      OLEV_OBS_COUNTER(expired_count, "svc.requests.expired");
      OLEV_OBS_ADD(expired_count, 1);
      obs::flight::record(obs::flight::Event::kExpire, entry.player,
                          entry.round);
      if (!entry.session->dead) {
        net::ControlMsg notice;
        notice.code = net::ControlCode::kDeadlineExpired;
        notice.player = entry.player;
        notice.round = entry.round;
        send_message(entry.session, notice);
      }
      continue;
    }
    // Phase decomposition (docs/SERVING.md, "Phase timings"): the stamps are
    // part of the reply protocol, so they are taken in every build flavor;
    // only the histogram observations compile out with the obs layer.
    const std::int64_t solve_start_us = obs::now_micros();
    const PricingEngine::Applied& applied =
        engine_.apply(entry.player, entry.total_kw);
    const std::int64_t solve_done_us = obs::now_micros();
    net::PhaseTimings phases;
    phases.admit_us = phase_us(entry.admit_done_us - entry.arrival_us);
    phases.queue_us = phase_us(now_us - entry.admit_done_us);
    phases.batch_us = phase_us(solve_start_us - now_us);
    phases.solve_us = phase_us(solve_done_us - solve_start_us);
    ++stats_.requests_served;
    OLEV_OBS_COUNTER(served, "svc.requests.served");
    OLEV_OBS_ADD(served, 1);
    OLEV_OBS_ONLY({
      if (latency_hist_ != nullptr) {
        latency_hist_->observe(
            static_cast<double>(solve_done_us - entry.arrival_us));
        phase_admit_hist_->observe(static_cast<double>(phases.admit_us));
        phase_queue_hist_->observe(static_cast<double>(phases.queue_us));
        phase_batch_hist_->observe(static_cast<double>(phases.batch_us));
        phase_solve_hist_->observe(static_cast<double>(phases.solve_us));
      }
    });
    if (announce_inflight_ && entry.player == announced_player_ &&
        entry.round == announced_round_) {
      announce_answered_ = true;
    }
    if (entry.session->dead) continue;
    net::ScheduleMsg confirmation;
    confirmation.player = entry.player;
    confirmation.round = entry.round;
    confirmation.row_kw = applied.row;
    confirmation.payment = applied.payment;
    confirmation.trace_id = entry.trace.trace_id;
    confirmation.phases = phases;
    OLEV_OBS_ONLY(const std::int64_t write_start_us = obs::now_micros());
    send_message(entry.session, confirmation);
    OLEV_OBS_ONLY({
      if (phase_write_hist_ != nullptr) {
        phase_write_hist_->observe(
            static_cast<double>(obs::now_micros() - write_start_us));
      }
    });
  }
  OLEV_OBS_ONLY({
    OLEV_OBS_HISTOGRAM(apply_hist, "svc.batch.apply_us",
                       {0, 50, 100, 250, 500, 1000, 2500, 5000, 10000});
    OLEV_OBS_OBSERVE(apply_hist, apply_time.seconds() * 1e6);
  });
}

void PricingService::maybe_announce(std::int64_t now_us) {
  if (!config_.announce || !announcing_started_ || draining_) return;
  if (engine_.converged()) {
    if (!converged_broadcast_) {
      converged_broadcast_ = true;
      for (const auto& session : sessions_) {
        if (session->dead || !session->has_player) continue;
        net::ControlMsg notice;
        notice.code = net::ControlCode::kConverged;
        notice.player = session->player;
        notice.round = static_cast<std::uint64_t>(engine_.updates());
        send_message(session, notice);
      }
    }
    return;
  }
  const auto round = static_cast<std::uint64_t>(engine_.updates());
  const bool waiting =
      announce_inflight_ && !announce_answered_ && announced_round_ >= round;
  if (waiting && now_us - announced_at_us_ < micros(config_.announce_retry_s)) {
    return;
  }
  const std::size_t cursor = engine_.cursor();
  const std::shared_ptr<Session> target = bound_session(cursor);
  if (!target) return;  // stalls until the player (re)binds; retried each loop
  if (waiting) ++stats_.announce_retransmissions;
  net::PaymentFunctionMsg announcement;
  announcement.player = static_cast<std::uint32_t>(cursor);
  announcement.round = round;
  announcement.others_load_kw = engine_.others_load(cursor);
  send_message(target, announcement);
  announce_inflight_ = true;
  announce_answered_ = false;
  announced_player_ = static_cast<std::uint32_t>(cursor);
  announced_round_ = round;
  announced_at_us_ = now_us;
}

void PricingService::begin_drain(std::int64_t now_us) {
  draining_ = true;
  drain_deadline_us_ = now_us + micros(config_.drain_timeout_s);
  obs::flight::record(obs::flight::Event::kDrain, queue_.size(),
                      sessions_.size());
  listener_.close();
  // The admin plane drains with the service: answer nothing further, flush
  // what is already buffered once, and close.
  admin_listener_.close();
  for (const auto& admin : admin_sessions_) {
    if (!admin->dead) flush_admin(*admin);
    admin->dead = true;
  }
  // Answer everything already admitted (one final round per max_batch slice),
  // then tell every peer we are going away and close after the flush.
  expire_overdue(now_us);
  while (!queue_.empty()) run_batch(now_us);
  // Drain-then-persist: the engine state is final once the queue is empty,
  // so this is the exact cut the resumed process continues from.  Cold
  // path -- the atomic tmp+rename write never rides a hot root.
  if (journal_ != nullptr) {
    try {
      journal_->flush();
    } catch (const std::exception&) {
      ++stats_.journal_failures;
    }
    journal_.reset();
  }
  if (!config_.snapshot_path.empty()) {
    try {
      save_snapshot();
      ++stats_.snapshots_saved;
    } catch (const std::exception&) {
      // A failed snapshot must not wedge the drain; the daemon still owes
      // its peers DRAINING notices and a clean exit.
      ++stats_.snapshot_save_failures;
    }
  }
  for (const auto& session : sessions_) {
    if (session->dead) continue;
    net::ControlMsg notice;
    notice.code = net::ControlCode::kDraining;
    notice.player = session->has_player ? session->player : 0;
    send_message(session, notice);
    session->closing = true;
    if (session->pending_out() == 0) session->dead = true;
  }
}

void PricingService::reap_idle(std::int64_t now_us) {
  if (config_.idle_timeout_s <= 0.0) return;
  const std::int64_t horizon = micros(config_.idle_timeout_s);
  for (const auto& session : sessions_) {
    if (session->dead || session->closing) continue;
    if (now_us - session->last_activity_us >= horizon) {
      ++stats_.connections_reaped;
      OLEV_OBS_COUNTER(reaped, "svc.connections.reaped");
      OLEV_OBS_ADD(reaped, 1);
      session->dead = true;
    }
  }
}

void PricingService::remove_dead_sessions() {
  const auto alive_end = std::remove_if(
      sessions_.begin(), sessions_.end(),
      [](const std::shared_ptr<Session>& s) { return s->dead; });
  const auto removed =
      static_cast<std::size_t>(sessions_.end() - alive_end);
  if (removed == 0) return;
  stats_.connections_closed += removed;
  sessions_.erase(alive_end, sessions_.end());
  // Rebuild the bound-player count: bindings die with their sessions.
  std::vector<bool> bound(config_.players, false);
  for (const auto& session : sessions_) {
    if (session->has_player) bound[session->player] = true;
  }
  bound_players_ = static_cast<std::size_t>(
      std::count(bound.begin(), bound.end(), true));
}

void PricingService::accept_admin_connections() {
  for (;;) {
    Socket sock = accept_connection(admin_listener_);
    if (!sock.valid()) return;
    admin_sessions_.push_back(std::make_shared<AdminSession>(std::move(sock)));
    ++stats_.admin_connections;
  }
}

void PricingService::read_admin(AdminSession& session) {
  std::uint8_t chunk[1024];
  for (;;) {
    const IoResult io = read_some(session.socket.fd(), chunk);
    if (io.closed) {
      session.dead = true;
      return;
    }
    if (io.would_block || io.bytes == 0) break;
    session.inbuf.append(reinterpret_cast<const char*>(chunk), io.bytes);
    for (std::size_t newline = session.inbuf.find('\n');
         newline != std::string::npos;
         newline = session.inbuf.find('\n')) {
      std::string line = session.inbuf.substr(0, newline);
      session.inbuf.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      ++stats_.admin_requests;
      session.outbuf += admin_reply(line);
      session.outbuf += '\n';
    }
    if (session.inbuf.size() > kMaxAdminLineBytes) {
      // No command is this long; the peer is not speaking the protocol.
      session.dead = true;
      return;
    }
    flush_admin(session);
    if (session.dead) return;
  }
}

void PricingService::flush_admin(AdminSession& session) {
  while (session.pending_out() > 0) {
    const std::span<const std::uint8_t> pending(
        reinterpret_cast<const std::uint8_t*>(session.outbuf.data()) +
            session.outbuf_offset,
        session.pending_out());
    const IoResult io = write_some(session.socket.fd(), pending);
    if (io.closed) {
      session.dead = true;
      return;
    }
    if (io.would_block || io.bytes == 0) return;
    session.outbuf_offset += io.bytes;
  }
  session.outbuf.clear();
  session.outbuf_offset = 0;
}

void PricingService::remove_dead_admin_sessions() {
  admin_sessions_.erase(
      std::remove_if(
          admin_sessions_.begin(), admin_sessions_.end(),
          [](const std::shared_ptr<AdminSession>& s) { return s->dead; }),
      admin_sessions_.end());
}

std::string PricingService::health_json() const {
  std::string out = "{\"status\":\"";
  out += draining_ ? "draining" : "serving";
  out += "\",\"uptime_us\":";
  out += std::to_string(obs::now_micros() - started_us_);
  out += ",\"connections\":";
  out += std::to_string(sessions_.size());
  out += ",\"bound_players\":";
  out += std::to_string(bound_players_);
  out += ",\"queue_depth\":";
  out += std::to_string(queue_.size());
  out += ",\"requests_served\":";
  out += std::to_string(stats_.requests_served);
  out += '}';
  return out;
}

std::string PricingService::engine_json() const {
  std::string out = "{\"mode\":\"";
  out += engine_.mode() == EngineMode::kMeanField ? "meanfield" : "exact";
  out += "\",\"players\":";
  out += std::to_string(engine_.players());
  out += ",\"sections\":";
  out += std::to_string(engine_.sections());
  out += ",\"updates\":";
  out += std::to_string(engine_.updates());
  out += ",\"round\":";
  out += std::to_string(engine_.updates() / engine_.players());
  out += ",\"cursor\":";
  out += std::to_string(engine_.cursor());
  out += ",\"converged\":";
  out += engine_.converged() ? "true" : "false";
  out += ",\"residual\":";
  out += obs::format_double(engine_.residual());
  out += ",\"queue_depth\":";
  out += std::to_string(queue_.size());
  out += ",\"last_batch\":";
  out += std::to_string(last_batch_size_);
  out += ",\"max_batch\":";
  out += std::to_string(stats_.max_batch_size);
  out += ",\"batches\":";
  out += std::to_string(stats_.batches);
  out += ",\"resumed\":";
  out += resumed_ ? "true" : "false";
  out += ",\"sessions_resumed\":";
  out += std::to_string(stats_.sessions_resumed);
  out += ",\"journal_records\":";
  out += std::to_string(stats_.journal_records);
  out += '}';
  return out;
}

std::string PricingService::admin_reply(std::string_view command) const {
  // Read-only queries only; anything that mutates state stays off this
  // plane by construction (docs/SERVING.md, "Admin protocol").
  if (command == "health") return health_json();
  if (command == "engine") return engine_json();
  if (command == "metrics") {
    return obs::to_json(obs::Registry::instance().snapshot());
  }
  if (command == "flight") return obs::flight::to_json(obs::flight::snapshot());
  if (command == "snapshot") {
    std::string out = "{\"health\":";
    out += health_json();
    out += ",\"engine\":";
    out += engine_json();
    out += ",\"metrics\":";
    out += obs::to_json(obs::Registry::instance().snapshot());
    out += '}';
    return out;
  }
  std::string out = "{\"error\":\"unknown command '";
  out += obs::json_escape(command);
  out += "' (expected snapshot|health|engine|metrics|flight)\"}";
  return out;
}

int PricingService::next_timeout_ms(std::int64_t now_us) const {
  // Capped low so request_stop(), idle reaping, and announce retries are all
  // noticed promptly even on an otherwise silent socket set.
  std::int64_t next_us = 50'000;
  if (!queue_.empty()) {
    const std::int64_t fire_us =
        std::min(queue_.front().arrival_us + micros(config_.batch_window_s),
                 queue_.front().deadline_us);
    next_us = std::clamp<std::int64_t>(fire_us - now_us, 0, next_us);
  }
  return static_cast<int>(next_us / 1000);
}

void PricingService::run() {
  OLEV_OBS_SPAN(span, "svc.serve", "service");
  std::vector<PollItem> items;
  while (true) {
    const std::int64_t now_us = obs::now_micros();

    if (stop_requested_.load(std::memory_order_relaxed) && !draining_) {
      begin_drain(now_us);
    }
    if (draining_) {
      const bool flushed = std::all_of(
          sessions_.begin(), sessions_.end(),
          [](const std::shared_ptr<Session>& s) { return s->dead; });
      if (flushed || now_us >= drain_deadline_us_) break;
    }

    reap_idle(now_us);
    remove_dead_sessions();
    remove_dead_admin_sessions();

    if (!draining_) {
      expire_overdue(now_us);
      if (!queue_.empty() &&
          (queue_.size() >= config_.max_batch ||
           now_us - queue_.front().arrival_us >=
               micros(config_.batch_window_s))) {
        run_batch(now_us);
      }
      maybe_announce(now_us);
    }

    OLEV_OBS_ONLY({
      OLEV_OBS_GAUGE(active, "svc.connections.active");
      OLEV_OBS_SET(active, static_cast<double>(sessions_.size()));
      OLEV_OBS_GAUGE(depth, "svc.queue.depth");
      OLEV_OBS_SET(depth, static_cast<double>(queue_.size()));
    });

    items.clear();
    if (listener_.valid()) {
      PollItem item;
      item.fd = listener_.fd();
      item.want_read = true;
      items.push_back(item);
    }
    const bool poll_admin_listener = admin_listener_.valid();
    if (poll_admin_listener) {
      PollItem item;
      item.fd = admin_listener_.fd();
      item.want_read = true;
      items.push_back(item);
    }
    const std::size_t session_count = sessions_.size();
    for (const auto& session : sessions_) {
      PollItem item;
      item.fd = session->socket.fd();
      item.want_read = !session->closing;
      item.want_write = session->pending_out() > 0;
      items.push_back(item);
    }
    const std::size_t admin_count = admin_sessions_.size();
    for (const auto& admin : admin_sessions_) {
      PollItem item;
      item.fd = admin->socket.fd();
      item.want_read = true;
      item.want_write = admin->pending_out() > 0;
      items.push_back(item);
    }
    if (items.empty()) {
      if (draining_) break;
      continue;  // unreachable outside drain: the listener stays registered
    }

    const int ready = poll_fds(items, next_timeout_ms(now_us));
    if (ready == 0) continue;

    std::size_t index = 0;
    if (listener_.valid()) {
      if (items[index].readable) accept_new_connections();
      ++index;
    }
    if (poll_admin_listener) {
      if (items[index].readable) accept_admin_connections();
      ++index;
    }
    // Snapshot: the accept calls may have grown the session vectors, but the
    // poll results only cover the counts recorded before poll_fds.
    const std::int64_t io_now_us = obs::now_micros();
    for (std::size_t s = 0; s < session_count; ++index, ++s) {
      const std::shared_ptr<Session> session = sessions_[s];
      const PollItem& item = items[index];
      if (session->dead) continue;
      if (item.writable) flush_session(*session);
      if (session->dead) continue;
      if (item.readable) read_session(session, io_now_us);
      if (session->dead) continue;
      if (item.hangup && !item.readable) session->dead = true;
    }
    for (std::size_t a = 0; a < admin_count; ++index, ++a) {
      const std::shared_ptr<AdminSession> admin = admin_sessions_[a];
      const PollItem& item = items[index];
      if (admin->dead) continue;
      if (item.writable) flush_admin(*admin);
      if (admin->dead) continue;
      if (item.readable) read_admin(*admin);
      if (admin->dead) continue;
      if (item.hangup && !item.readable) admin->dead = true;
    }
  }
  remove_dead_sessions();
  remove_dead_admin_sessions();
}

}  // namespace olev::svc
