#include "svc/service.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "net/message.h"
#include "obs/obs.h"

namespace olev::svc {
namespace {

constexpr std::size_t kReadChunkBytes = 16 * 1024;

std::int64_t micros(double seconds) {
  return static_cast<std::int64_t>(seconds * 1e6);
}

}  // namespace

/// One connected client: its socket, the framing decoder for its byte
/// stream, a bounded outgoing buffer, and the player binding (if any).
struct PricingService::Session {
  Session(Socket sock, std::size_t max_frame)
      : socket(std::move(sock)), decoder(max_frame) {}

  Socket socket;
  FrameDecoder decoder;
  std::vector<std::uint8_t> outbuf;
  std::size_t outbuf_offset = 0;
  std::int64_t last_activity_us = 0;
  bool has_player = false;
  std::uint32_t player = 0;
  bool closing = false;  ///< stop reading; close once outbuf flushes
  bool dead = false;     ///< close now; queued entries must not respond

  std::size_t pending_out() const { return outbuf.size() - outbuf_offset; }
};

PricingService::PricingService(core::SectionCost cost, ServiceConfig config)
    : cost_(std::move(cost)),
      config_(std::move(config)),
      engine_(cost_,
              EngineConfig{config_.players, config_.sections, config_.epsilon,
                           config_.caps_kw, config_.engine_mode}),
      listener_(listen_on(config_.port)),
      port_(local_port(listener_)) {
  if (config_.max_batch == 0 || config_.max_queue == 0) {
    throw std::invalid_argument("PricingService: max_batch/max_queue must be > 0");
  }
  if (config_.announce_after_players == 0 ||
      config_.announce_after_players > config_.players) {
    config_.announce_after_players = config_.players;
  }
}

PricingService::~PricingService() = default;

std::shared_ptr<PricingService::Session> PricingService::bound_session(
    std::size_t player) const {
  // Linear scan: session counts are poll(2)-scale, and the newest binding
  // wins (a reconnecting player displaces its stale session).
  std::shared_ptr<Session> found;
  for (const auto& session : sessions_) {
    if (!session->dead && session->has_player && session->player == player) {
      found = session;
    }
  }
  return found;
}

void PricingService::send_message(const std::shared_ptr<Session>& session,
                                  const net::Message& message) {
  if (session->dead) return;
  const std::vector<std::uint8_t> frame = encode_frame(message);
  if (session->pending_out() + frame.size() > config_.max_write_buffer_bytes) {
    // The peer is not draining its socket; buffering without bound would let
    // one slow client hold the schedule's memory hostage.
    ++stats_.write_overflows;
    session->dead = true;
    return;
  }
  session->outbuf.insert(session->outbuf.end(), frame.begin(), frame.end());
  ++stats_.frames_sent;
  flush_session(*session);
}

void PricingService::flush_session(Session& session) {
  while (session.pending_out() > 0) {
    const std::span<const std::uint8_t> chunk(
        session.outbuf.data() + session.outbuf_offset, session.pending_out());
    const IoResult io = write_some(session.socket.fd(), chunk);
    if (io.closed) {
      session.dead = true;
      return;
    }
    if (io.would_block || io.bytes == 0) return;
    session.outbuf_offset += io.bytes;
    stats_.bytes_sent += io.bytes;
  }
  session.outbuf.clear();
  session.outbuf_offset = 0;
  if (session.closing) session.dead = true;
}

void PricingService::fail_session(const std::shared_ptr<Session>& session,
                                  net::ControlCode code) {
  net::ControlMsg notice;
  notice.code = code;
  notice.player = session->has_player ? session->player : 0;
  send_message(session, notice);
  session->closing = true;
  if (session->pending_out() == 0) session->dead = true;
}

void PricingService::accept_new_connections() {
  for (;;) {
    Socket sock = accept_connection(listener_);
    if (!sock.valid()) return;
    auto session =
        std::make_shared<Session>(std::move(sock), config_.max_frame_bytes);
    session->last_activity_us = obs::now_micros();
    sessions_.push_back(std::move(session));
    ++stats_.connections_accepted;
    OLEV_OBS_COUNTER(accepted, "svc.connections.accepted");
    OLEV_OBS_ADD(accepted, 1);
  }
}

void PricingService::read_session(const std::shared_ptr<Session>& session,
                                  std::int64_t now_us) {
  std::uint8_t chunk[kReadChunkBytes];
  for (;;) {
    const IoResult io = read_some(session->socket.fd(), chunk);
    if (io.closed) {
      session->dead = true;
      return;
    }
    if (io.would_block || io.bytes == 0) break;
    session->last_activity_us = now_us;
    stats_.bytes_received += io.bytes;
    if (!session->decoder.feed({chunk, io.bytes})) {
      // Oversized frame: the length prefix alone condemns the stream.
      ++stats_.malformed_frames;
      OLEV_OBS_COUNTER(rejected, "svc.frames.rejected");
      OLEV_OBS_ADD(rejected, 1);
      fail_session(session, net::ControlCode::kMalformed);
      return;
    }
    while (auto payload = session->decoder.next()) {
      ++stats_.frames_received;
      net::Message message;
      try {
        message = net::deserialize(*payload);
      } catch (const std::exception&) {
        ++stats_.malformed_frames;
        OLEV_OBS_COUNTER(rejected, "svc.frames.rejected");
        OLEV_OBS_ADD(rejected, 1);
        fail_session(session, net::ControlCode::kMalformed);
        return;
      }
      dispatch(session, message, now_us);
      if (session->dead || session->closing) return;
    }
  }
}

void PricingService::dispatch(const std::shared_ptr<Session>& session,
                              const net::Message& message,
                              std::int64_t now_us) {
  if (const auto* beacon = std::get_if<net::BeaconMsg>(&message)) {
    if (beacon->player >= config_.players) {
      ++stats_.bad_requests;
      net::ControlMsg notice;
      notice.code = net::ControlCode::kBadRequest;
      notice.player = beacon->player;
      send_message(session, notice);
      return;
    }
    const bool was_bound = bound_session(beacon->player) != nullptr;
    session->has_player = true;
    session->player = beacon->player;
    if (!was_bound) ++bound_players_;
    if (config_.announce && !announcing_started_ &&
        bound_players_ >= config_.announce_after_players) {
      announcing_started_ = true;
    }
    return;
  }

  if (const auto* request = std::get_if<net::PowerRequestMsg>(&message)) {
    ++stats_.requests_received;
    OLEV_OBS_COUNTER(received, "svc.requests.received");
    OLEV_OBS_ADD(received, 1);
    net::ControlMsg notice;
    notice.player = request->player;
    notice.round = request->round;
    if (request->player >= config_.players ||
        !std::isfinite(request->total_kw)) {
      ++stats_.bad_requests;
      notice.code = net::ControlCode::kBadRequest;
      send_message(session, notice);
      return;
    }
    if (draining_) {
      ++stats_.drain_rejected;
      notice.code = net::ControlCode::kDraining;
      send_message(session, notice);
      return;
    }
    if (queue_.size() >= config_.max_queue) {
      ++stats_.retry_later;
      OLEV_OBS_COUNTER(retries, "svc.requests.retry_later");
      OLEV_OBS_ADD(retries, 1);
      notice.code = net::ControlCode::kRetryLater;
      send_message(session, notice);
      return;
    }
    PendingRequest pending;
    pending.session = session;
    pending.player = request->player;
    pending.round = request->round;
    pending.total_kw = request->total_kw;
    pending.arrival_us = now_us;
    pending.deadline_us = now_us + micros(config_.request_deadline_s);
    queue_.push_back(std::move(pending));
    return;
  }

  // Grid-to-client message types (or a control frame) arriving inbound is a
  // protocol violation; answer once and hang up.
  ++stats_.bad_requests;
  fail_session(session, net::ControlCode::kBadRequest);
}

void PricingService::expire_overdue(std::int64_t now_us) {
  // Deadline = arrival + constant, so FIFO order is deadline order and only
  // the front can be overdue.
  while (!queue_.empty() && queue_.front().deadline_us <= now_us) {
    PendingRequest expired = std::move(queue_.front());
    queue_.pop_front();
    ++stats_.deadline_expired;
    OLEV_OBS_COUNTER(expired_count, "svc.requests.expired");
    OLEV_OBS_ADD(expired_count, 1);
    if (expired.session->dead) continue;
    net::ControlMsg notice;
    notice.code = net::ControlCode::kDeadlineExpired;
    notice.player = expired.player;
    notice.round = expired.round;
    send_message(expired.session, notice);
  }
}

void PricingService::run_batch(std::int64_t now_us) {
  const std::size_t batch_size = std::min(queue_.size(), config_.max_batch);
  if (batch_size == 0) return;
  ++stats_.batches;
  stats_.max_batch_size = std::max(stats_.max_batch_size, batch_size);
  OLEV_OBS_HISTOGRAM(batch_hist, "svc.batch.size",
                     {0, 1, 2, 4, 8, 16, 32, 64, 128, 256});
  OLEV_OBS_OBSERVE(batch_hist, static_cast<double>(batch_size));
  OLEV_OBS_HISTOGRAM(latency_hist, "svc.request.latency_us",
                     {0, 100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000,
                      100000, 500000});
  const obs::Stopwatch apply_time;
  for (std::size_t i = 0; i < batch_size; ++i) {
    PendingRequest entry = std::move(queue_.front());
    queue_.pop_front();
    if (entry.deadline_us <= now_us) {
      ++stats_.deadline_expired;
      OLEV_OBS_COUNTER(expired_count, "svc.requests.expired");
      OLEV_OBS_ADD(expired_count, 1);
      if (!entry.session->dead) {
        net::ControlMsg notice;
        notice.code = net::ControlCode::kDeadlineExpired;
        notice.player = entry.player;
        notice.round = entry.round;
        send_message(entry.session, notice);
      }
      continue;
    }
    const PricingEngine::Applied& applied =
        engine_.apply(entry.player, entry.total_kw);
    ++stats_.requests_served;
    OLEV_OBS_COUNTER(served, "svc.requests.served");
    OLEV_OBS_ADD(served, 1);
    OLEV_OBS_OBSERVE(latency_hist,
                     static_cast<double>(now_us - entry.arrival_us));
    if (announce_inflight_ && entry.player == announced_player_ &&
        entry.round == announced_round_) {
      announce_answered_ = true;
    }
    if (entry.session->dead) continue;
    net::ScheduleMsg confirmation;
    confirmation.player = entry.player;
    confirmation.round = entry.round;
    confirmation.row_kw = applied.row;
    confirmation.payment = applied.payment;
    send_message(entry.session, confirmation);
  }
  OLEV_OBS_ONLY({
    OLEV_OBS_HISTOGRAM(apply_hist, "svc.batch.apply_us",
                       {0, 50, 100, 250, 500, 1000, 2500, 5000, 10000});
    OLEV_OBS_OBSERVE(apply_hist, apply_time.seconds() * 1e6);
  });
}

void PricingService::maybe_announce(std::int64_t now_us) {
  if (!config_.announce || !announcing_started_ || draining_) return;
  if (engine_.converged()) {
    if (!converged_broadcast_) {
      converged_broadcast_ = true;
      for (const auto& session : sessions_) {
        if (session->dead || !session->has_player) continue;
        net::ControlMsg notice;
        notice.code = net::ControlCode::kConverged;
        notice.player = session->player;
        notice.round = static_cast<std::uint64_t>(engine_.updates());
        send_message(session, notice);
      }
    }
    return;
  }
  const auto round = static_cast<std::uint64_t>(engine_.updates());
  const bool waiting =
      announce_inflight_ && !announce_answered_ && announced_round_ >= round;
  if (waiting && now_us - announced_at_us_ < micros(config_.announce_retry_s)) {
    return;
  }
  const std::size_t cursor = engine_.cursor();
  const std::shared_ptr<Session> target = bound_session(cursor);
  if (!target) return;  // stalls until the player (re)binds; retried each loop
  if (waiting) ++stats_.announce_retransmissions;
  net::PaymentFunctionMsg announcement;
  announcement.player = static_cast<std::uint32_t>(cursor);
  announcement.round = round;
  announcement.others_load_kw = engine_.others_load(cursor);
  send_message(target, announcement);
  announce_inflight_ = true;
  announce_answered_ = false;
  announced_player_ = static_cast<std::uint32_t>(cursor);
  announced_round_ = round;
  announced_at_us_ = now_us;
}

void PricingService::begin_drain(std::int64_t now_us) {
  draining_ = true;
  drain_deadline_us_ = now_us + micros(config_.drain_timeout_s);
  listener_.close();
  // Answer everything already admitted (one final round per max_batch slice),
  // then tell every peer we are going away and close after the flush.
  expire_overdue(now_us);
  while (!queue_.empty()) run_batch(now_us);
  for (const auto& session : sessions_) {
    if (session->dead) continue;
    net::ControlMsg notice;
    notice.code = net::ControlCode::kDraining;
    notice.player = session->has_player ? session->player : 0;
    send_message(session, notice);
    session->closing = true;
    if (session->pending_out() == 0) session->dead = true;
  }
}

void PricingService::reap_idle(std::int64_t now_us) {
  if (config_.idle_timeout_s <= 0.0) return;
  const std::int64_t horizon = micros(config_.idle_timeout_s);
  for (const auto& session : sessions_) {
    if (session->dead || session->closing) continue;
    if (now_us - session->last_activity_us >= horizon) {
      ++stats_.connections_reaped;
      OLEV_OBS_COUNTER(reaped, "svc.connections.reaped");
      OLEV_OBS_ADD(reaped, 1);
      session->dead = true;
    }
  }
}

void PricingService::remove_dead_sessions() {
  const auto alive_end = std::remove_if(
      sessions_.begin(), sessions_.end(),
      [](const std::shared_ptr<Session>& s) { return s->dead; });
  const auto removed =
      static_cast<std::size_t>(sessions_.end() - alive_end);
  if (removed == 0) return;
  stats_.connections_closed += removed;
  sessions_.erase(alive_end, sessions_.end());
  // Rebuild the bound-player count: bindings die with their sessions.
  std::vector<bool> bound(config_.players, false);
  for (const auto& session : sessions_) {
    if (session->has_player) bound[session->player] = true;
  }
  bound_players_ = static_cast<std::size_t>(
      std::count(bound.begin(), bound.end(), true));
}

int PricingService::next_timeout_ms(std::int64_t now_us) const {
  // Capped low so request_stop(), idle reaping, and announce retries are all
  // noticed promptly even on an otherwise silent socket set.
  std::int64_t next_us = 50'000;
  if (!queue_.empty()) {
    const std::int64_t fire_us =
        std::min(queue_.front().arrival_us + micros(config_.batch_window_s),
                 queue_.front().deadline_us);
    next_us = std::clamp<std::int64_t>(fire_us - now_us, 0, next_us);
  }
  return static_cast<int>(next_us / 1000);
}

void PricingService::run() {
  OLEV_OBS_SPAN(span, "svc.serve", "service");
  std::vector<PollItem> items;
  while (true) {
    const std::int64_t now_us = obs::now_micros();

    if (stop_requested_.load(std::memory_order_relaxed) && !draining_) {
      begin_drain(now_us);
    }
    if (draining_) {
      const bool flushed = std::all_of(
          sessions_.begin(), sessions_.end(),
          [](const std::shared_ptr<Session>& s) { return s->dead; });
      if (flushed || now_us >= drain_deadline_us_) break;
    }

    reap_idle(now_us);
    remove_dead_sessions();

    if (!draining_) {
      expire_overdue(now_us);
      if (!queue_.empty() &&
          (queue_.size() >= config_.max_batch ||
           now_us - queue_.front().arrival_us >=
               micros(config_.batch_window_s))) {
        run_batch(now_us);
      }
      maybe_announce(now_us);
    }

    OLEV_OBS_ONLY({
      OLEV_OBS_GAUGE(active, "svc.connections.active");
      OLEV_OBS_SET(active, static_cast<double>(sessions_.size()));
      OLEV_OBS_GAUGE(depth, "svc.queue.depth");
      OLEV_OBS_SET(depth, static_cast<double>(queue_.size()));
    });

    items.clear();
    if (listener_.valid()) {
      PollItem item;
      item.fd = listener_.fd();
      item.want_read = true;
      items.push_back(item);
    }
    for (const auto& session : sessions_) {
      PollItem item;
      item.fd = session->socket.fd();
      item.want_read = !session->closing;
      item.want_write = session->pending_out() > 0;
      items.push_back(item);
    }
    if (items.empty()) {
      if (draining_) break;
      continue;  // unreachable outside drain: the listener stays registered
    }

    const int ready = poll_fds(items, next_timeout_ms(now_us));
    if (ready == 0) continue;

    std::size_t index = 0;
    if (listener_.valid()) {
      if (items[index].readable) accept_new_connections();
      ++index;
    }
    // Snapshot: accept_new_connections() may have grown sessions_, but the
    // poll results only cover the first `items.size() - offset` of them.
    const std::int64_t io_now_us = obs::now_micros();
    for (std::size_t s = 0; index < items.size(); ++index, ++s) {
      const std::shared_ptr<Session> session = sessions_[s];
      const PollItem& item = items[index];
      if (session->dead) continue;
      if (item.writable) flush_session(*session);
      if (session->dead) continue;
      if (item.readable) read_session(session, io_now_us);
      if (session->dead) continue;
      if (item.hangup && !item.readable) session->dead = true;
    }
  }
  remove_dead_sessions();
}

}  // namespace olev::svc
