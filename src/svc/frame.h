// Length-prefixed framing for net::Message over a byte stream.
//
// The in-process MessageBus delivers whole messages; a TCP socket delivers an
// arbitrary byte stream.  This layer bridges the two: every frame is a 4-byte
// little-endian payload length followed by the net::serialize() bytes of one
// message, so src/net stays the single wire format for both the simulated V2I
// link and the real service (src/svc).
//
// The decoder is explicitly bounded: a frame header declaring more than
// `max_frame_bytes` latches an error instead of allocating, and the internal
// buffer never grows past one maximal frame plus whatever the last feed()
// appended.  A malicious or broken peer can therefore cost at most a fixed
// amount of memory before the service drops the connection.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/message.h"

namespace olev::svc {

inline constexpr std::size_t kFrameHeaderBytes = 4;
/// Generous default: a ScheduleMsg over 100k sections is still < 1 MiB.
inline constexpr std::size_t kDefaultMaxFrameBytes = 1u << 20;

/// One message as a wire frame: header (little-endian u32 payload length)
/// followed by net::serialize(message).
std::vector<std::uint8_t> encode_frame(const net::Message& message);

/// Incremental decoder for a stream of frames.  feed() raw socket bytes,
/// then drain next() until it returns nullopt.  Once oversized() is set the
/// decoder is poisoned (the stream cannot be resynchronized) and the
/// connection should be closed.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  /// Appends stream bytes.  Returns false (and latches oversized()) when the
  /// frame under assembly declares a payload larger than the bound.
  bool feed(std::span<const std::uint8_t> bytes);

  /// Next complete frame payload (the serialized message, header stripped),
  /// or nullopt when more bytes are needed.
  std::optional<std::vector<std::uint8_t>> next();

  bool oversized() const { return oversized_; }
  std::size_t buffered_bytes() const { return buffer_.size(); }
  std::size_t frames_decoded() const { return frames_decoded_; }

 private:
  /// Declared payload length once >= kFrameHeaderBytes are buffered.
  std::optional<std::size_t> pending_length() const;

  std::size_t max_frame_bytes_;
  std::vector<std::uint8_t> buffer_;
  std::size_t frames_decoded_ = 0;
  bool oversized_ = false;
};

}  // namespace olev::svc
