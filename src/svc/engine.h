// The service's game state: an online, incrementally-updated instance of the
// paper's asynchronous best-response process (Section IV-D).
//
// Each applied request is one player update: the grid water-fills the
// admitted total against the other players' current load (Lemma IV.1) and
// charges the externality payment (Eq. 8-9).  Theorem IV.1 guarantees the
// sequence of such updates converges to the unique socially optimal schedule
// no matter how requests interleave, which is exactly what lets the service
// batch them: a batch is applied sequentially, each entry against the
// then-current state.
//
// The arithmetic here is line-for-line the SmartGrid update of
// src/core/distributed.cc -- same column_totals_excluding / water_fill /
// externality_payment calls, same cycle-based convergence bookkeeping -- so
// a grid-paced service session reproduces the in-process distributed driver
// bit-for-bit (pinned by tests/test_svc.cc).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/cost.h"
#include "core/schedule.h"
#include "core/water_filling.h"
#include "util/hot.h"

namespace olev::svc {

/// Which pricing arithmetic the engine runs per update.
///
/// kExact is the paper's N-player update (column_totals_excluding +
/// water_fill + externality payment, O(N * C) per update through the
/// exclusion scan).  kMeanField prices the update against the aggregate
/// field instead (core/mean_field.h): the row is the flat T-share spread
/// p / C and the payment is the flat-field externality
/// C * [Z(T/C) - Z((T - p)/C)], O(C) per update with no dependence on N --
/// the serving mode that scales olevd to millions of bound players.
enum class EngineMode { kExact, kMeanField };

struct EngineConfig {
  std::size_t players = 0;
  std::size_t sections = 0;
  /// Convergence threshold on the max row-total change over one N-update
  /// cycle (the DistributedConfig::epsilon contract).
  double epsilon = 1e-7;
  /// Per-player admission caps in kW; empty = unlimited (the trusted
  /// run_distributed_game mode).  Requests are clamped, never rejected.
  std::vector<double> caps_kw;
  EngineMode mode = EngineMode::kExact;
};

class PricingEngine {
 public:
  PricingEngine(core::SectionCost cost, EngineConfig config);

  struct Applied {
    std::vector<double> row;  ///< water-filled allocation p_{n,c}
    double payment = 0.0;     ///< externality payment at this update
  };

  /// One player update: clamp, water-fill, commit, charge.  `player` must be
  /// < players() and `total_kw` finite (the service validates before
  /// calling).  Real-time hot root (util/hot.h): the returned reference
  /// points at a pre-sized member arena, valid until the next apply() --
  /// after construction, updates never touch the allocator.
  OLEV_HOT const Applied& apply(std::size_t player, double total_kw);

  /// b for `player` under the current schedule -- the payment-function
  /// announcement of Section IV-D.  In mean-field mode this is the flat
  /// field excluding the player's own share, (T - p_n)/C on every section.
  std::vector<double> others_load(std::size_t player) const;

  EngineMode mode() const { return config_.mode; }

  std::size_t players() const { return schedule_.players(); }
  std::size_t sections() const { return schedule_.sections(); }
  const core::PowerSchedule& schedule() const { return schedule_; }
  const core::SectionCost& cost() const { return cost_; }

  /// True once a full player cycle moved every row total by < epsilon.
  bool converged() const { return converged_; }
  /// Convergence residual: the max row-total change seen so far in the
  /// current player cycle (compared against epsilon at each cycle boundary).
  /// Exposed for the admin plane's engine snapshot.
  double residual() const { return cycle_max_delta_; }
  std::size_t updates() const { return updates_; }
  /// Round-robin cursor for grid-paced announcements (updates mod players).
  std::size_t cursor() const { return updates_ % schedule_.players(); }
  /// Resolved per-player admission caps (empty config = +infinity entries);
  /// exported into snapshots so a resume can verify shape compatibility.
  const std::vector<double>& caps_kw() const { return caps_; }
  /// Mean-field running aggregate T (0 in exact mode).  Snapshot state: it
  /// must be restored bit-exact, not recomputed, to keep a resumed
  /// mean-field session's payments bit-identical (persist/snapshot.h).
  double total_load_kw() const { return total_load_kw_; }

  /// Restores mid-game state captured by a persist::EngineSnapshot: the
  /// full schedule matrix plus the convergence bookkeeping.  The engine
  /// must have been constructed with the same players/sections shape
  /// (schedule_flat is row-major N x C; anything else throws
  /// std::invalid_argument).  Cold path: runs once at boot, before any
  /// apply(), and may allocate freely.
  void restore_state(std::span<const double> schedule_flat,
                     std::uint64_t updates, double residual, bool converged,
                     double total_load_kw);

 private:
  /// Both fill scratch_applied_ in place; apply() hands out the reference.
  void apply_exact(std::size_t player, double admitted);
  void apply_mean_field(std::size_t player, double admitted);

  core::SectionCost cost_;
  EngineConfig config_;
  core::PowerSchedule schedule_;
  std::vector<double> caps_;
  // --- pre-sized hot-path arenas (sized once in the constructor) ---
  Applied scratch_applied_;          ///< row pre-sized to C
  std::vector<double> scratch_others_;  ///< b of the updating player
  core::SortedLoads scratch_sorted_;    ///< reserved to C sections
  std::size_t updates_ = 0;
  double cycle_max_delta_ = 0.0;
  bool converged_ = false;
  double total_load_kw_ = 0.0;  ///< mean-field mode: running aggregate T
};

}  // namespace olev::svc
