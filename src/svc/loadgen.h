// Concurrent load generator for the pricing service: N connections, each a
// thread-driven player issuing power requests and validating every reply.
// Used by the olev_loadgen CLI, the CI service job, bench_service, and the
// concurrency test -- the acceptance bar is `LoadgenReport::clean()` under
// >= 64 concurrent connections.
#pragma once

#include <cstdint>
#include <string>

namespace olev::svc {

struct LoadgenConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::size_t connections = 8;
  std::size_t requests_per_connection = 32;
  /// Player universe on the server; connection i binds player i % players.
  std::size_t players = 8;
  double min_request_kw = 1.0;
  double max_request_kw = 120.0;
  double recv_timeout_s = 10.0;
  double connect_timeout_s = 5.0;
  std::size_t max_retries_per_request = 1000;  ///< RETRY_LATER resend budget
  std::uint64_t seed = 42;
  /// Exercise the durable-session re-attach path: each worker drops its
  /// connection halfway through its request budget, reconnects, and
  /// re-presents its player id with a fresh beacon -- the server answers
  /// kSessionResumed and the worker keeps going on the same player binding.
  bool reconnect = false;
};

struct LoadgenReport {
  std::uint64_t requests_sent = 0;  ///< includes RETRY_LATER resends
  std::uint64_t ok = 0;             ///< validated ScheduleMsg replies
  std::uint64_t retry_later = 0;
  std::uint64_t deadline_expired = 0;
  std::uint64_t draining = 0;
  std::uint64_t garbled = 0;  ///< reply failed validation (wrong player/round,
                              ///< non-finite row, negative entries, ...)
  std::uint64_t errors = 0;   ///< connect/send/recv failures, retry exhaustion
  std::uint64_t reconnects = 0;       ///< mid-run reconnects (reconnect mode)
  std::uint64_t session_resumed = 0;  ///< kSessionResumed notices received
  double wall_s = 0.0;
  double requests_per_s = 0.0;
  double latency_p50_us = 0.0;
  double latency_p95_us = 0.0;
  double latency_p99_us = 0.0;
  double latency_max_us = 0.0;

  // Server-reported phase decomposition (net::PhaseTimings riding back on
  // each ScheduleMsg): where a request's time went inside olevd -- admission
  // parse, queue wait, batch coalescing wait, and the engine solve.
  // Percentiles cover validated replies only, same as the latency fields.
  double server_admit_p50_us = 0.0;
  double server_admit_p95_us = 0.0;
  double server_queue_p50_us = 0.0;
  double server_queue_p95_us = 0.0;
  double server_batch_p50_us = 0.0;
  double server_batch_p95_us = 0.0;
  double server_solve_p50_us = 0.0;
  double server_solve_p95_us = 0.0;

  /// Every request answered with a valid schedule, nothing dropped or
  /// garbled.  RETRY_LATER / DEADLINE_EXPIRED are explicit, well-formed
  /// outcomes but count against a "clean" run only when they starve a
  /// request entirely (errors > 0 covers that via retry exhaustion).
  bool clean() const { return garbled == 0 && errors == 0; }

  std::string to_json() const;
};

/// Runs the workload to completion (blocking) and aggregates per-thread
/// results.  Latency percentiles cover validated replies only.
LoadgenReport run_loadgen(const LoadgenConfig& config);

}  // namespace olev::svc
