#include "svc/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "obs/span.h"

namespace olev::svc {
namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("svc::socket: " + what + ": " +
                           std::strerror(errno));
}

sockaddr_in loopback_address(std::uint16_t port) {
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return address;
}

}  // namespace

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void set_nonblocking(int fd, bool on) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) fail("fcntl(F_GETFL)");
  const int next = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd, F_SETFL, next) < 0) fail("fcntl(F_SETFL)");
}

Socket listen_on(std::uint16_t port, int backlog) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) fail("socket");
  const int one = 1;
  if (::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) <
      0) {
    fail("setsockopt(SO_REUSEADDR)");
  }
  sockaddr_in address = loopback_address(port);
  if (::bind(sock.fd(), reinterpret_cast<const sockaddr*>(&address),
             sizeof(address)) < 0) {
    fail("bind");
  }
  if (::listen(sock.fd(), backlog) < 0) fail("listen");
  set_nonblocking(sock.fd(), true);
  return sock;
}

std::uint16_t local_port(const Socket& socket) {
  sockaddr_in address{};
  socklen_t length = sizeof(address);
  if (::getsockname(socket.fd(), reinterpret_cast<sockaddr*>(&address),
                    &length) < 0) {
    fail("getsockname");
  }
  return ntohs(address.sin_port);
}

Socket accept_connection(const Socket& listener) {
  const int fd = ::accept(listener.fd(), nullptr, nullptr);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
        errno == ECONNABORTED) {
      return Socket{};
    }
    fail("accept");
  }
  Socket sock(fd);
  set_nonblocking(fd, true);
  const int one = 1;
  // Best-effort latency knob; batching is the real pacing mechanism.
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

Socket connect_to(const std::string& host, std::uint16_t port,
                  double timeout_s) {
  sockaddr_in address = loopback_address(port);
  if (::inet_pton(AF_INET, host.c_str(), &address.sin_addr) != 1) {
    throw std::runtime_error("svc::socket: bad IPv4 address '" + host + "'");
  }
  const obs::Stopwatch elapsed;
  for (;;) {
    Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
    if (!sock.valid()) fail("socket");
    if (::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&address),
                  sizeof(address)) == 0) {
      const int one = 1;
      (void)::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one,
                         sizeof(one));
      return sock;
    }
    if (elapsed.seconds() >= timeout_s) fail("connect");
    // The daemon may still be binding (CI starts both at once); back off a
    // beat and retry on a fresh socket.
    pollfd none{};
    none.fd = -1;
    (void)::poll(&none, 1, 20);
  }
}

IoResult read_some(int fd, std::span<std::uint8_t> buffer) {
  IoResult result;
  const ssize_t n = ::recv(fd, buffer.data(), buffer.size(), 0);
  if (n > 0) {
    result.bytes = static_cast<std::size_t>(n);
  } else if (n == 0) {
    result.closed = true;
  } else if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
    result.would_block = true;
  } else {
    result.closed = true;  // hard error: treat as peer gone
  }
  return result;
}

IoResult write_some(int fd, std::span<const std::uint8_t> buffer) {
  IoResult result;
  const ssize_t n = ::send(fd, buffer.data(), buffer.size(), MSG_NOSIGNAL);
  if (n >= 0) {
    result.bytes = static_cast<std::size_t>(n);
  } else if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
    result.would_block = true;
  } else {
    result.closed = true;
  }
  return result;
}

int poll_fds(std::span<PollItem> items, int timeout_ms) {
  std::vector<pollfd> fds;
  fds.reserve(items.size());
  for (const PollItem& item : items) {
    pollfd fd{};
    fd.fd = item.fd;
    fd.events = static_cast<short>((item.want_read ? POLLIN : 0) |
                                   (item.want_write ? POLLOUT : 0));
    fds.push_back(fd);
  }
  const int ready =
      ::poll(fds.data(), static_cast<nfds_t>(fds.size()), timeout_ms);
  if (ready <= 0) return 0;  // timeout or EINTR; the loop re-evaluates timers
  for (std::size_t i = 0; i < items.size(); ++i) {
    items[i].readable = (fds[i].revents & POLLIN) != 0;
    items[i].writable = (fds[i].revents & POLLOUT) != 0;
    items[i].hangup = (fds[i].revents & (POLLHUP | POLLERR | POLLNVAL)) != 0;
  }
  return ready;
}

}  // namespace olev::svc
