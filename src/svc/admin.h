// Blocking client for olevd's read-only admin plane (docs/SERVING.md,
// "Admin protocol"): newline-delimited text commands in, one line of JSON
// out per command.  Used by olev_top, the admin tests, and CI's admin smoke
// job.  Lives in src/svc so the raw socket calls stay inside the one target
// lint rule R5 allows them in.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "svc/socket.h"

namespace olev::svc {

class AdminClient {
 public:
  /// Connects to host:port, retrying until `timeout_s` (the daemon may still
  /// be binding).  Throws std::runtime_error on timeout.
  static AdminClient connect(const std::string& host, std::uint16_t port,
                             double timeout_s = 5.0);

  /// Sends one command line and blocks up to `timeout_s` for the one-line
  /// JSON reply (without the trailing newline).  Throws std::runtime_error
  /// on timeout or peer close.  The connection stays open for the next
  /// request -- olev_top polls on a single connection.
  std::string request(std::string_view command, double timeout_s = 5.0);

 private:
  explicit AdminClient(Socket socket);

  Socket socket_;
  std::string inbuf_;  ///< bytes past the last returned line
};

}  // namespace olev::svc
