#include "svc/loadgen.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <optional>
#include <thread>
#include <vector>

#include "net/message.h"
#include "obs/span.h"
#include "obs/strings.h"
#include "svc/client.h"
#include "util/rng.h"
#include "util/stats.h"

namespace olev::svc {
namespace {

struct WorkerResult {
  std::uint64_t sent = 0;
  std::uint64_t ok = 0;
  std::uint64_t retry_later = 0;
  std::uint64_t deadline_expired = 0;
  std::uint64_t draining = 0;
  std::uint64_t garbled = 0;
  std::uint64_t errors = 0;
  std::uint64_t reconnects = 0;
  std::uint64_t session_resumed = 0;
  std::vector<double> latencies_us;
  // Server-reported phase timings, one entry per validated reply.
  std::vector<double> admit_us;
  std::vector<double> queue_us;
  std::vector<double> batch_us;
  std::vector<double> solve_us;
};

bool valid_schedule(const net::ScheduleMsg& schedule, std::uint32_t player,
                    std::uint64_t round, double requested_kw) {
  if (schedule.player != player || schedule.round != round) return false;
  if (schedule.row_kw.empty()) return false;
  double total = 0.0;
  for (const double entry : schedule.row_kw) {
    if (!std::isfinite(entry) || entry < 0.0) return false;
    total += entry;
  }
  // Water-filling never allocates more than the admitted request (Lemma
  // IV.1); a tiny epsilon absorbs the summation order.
  if (total > std::max(requested_kw, 0.0) + 1e-6) return false;
  return std::isfinite(schedule.payment) && schedule.payment >= -1e-9;
}

void run_worker(const LoadgenConfig& config, std::size_t index,
                WorkerResult& result) {
  const auto player = static_cast<std::uint32_t>(index % config.players);
  try {
    std::optional<ServiceClient> client = ServiceClient::connect(
        config.host, config.port, config.connect_timeout_s);
    net::BeaconMsg beacon;
    beacon.player = player;
    client->send(beacon);

    util::Rng rng(util::derive_seed(config.seed, index));
    for (std::size_t r = 0; r < config.requests_per_connection; ++r) {
      if (config.reconnect && r == config.requests_per_connection / 2 &&
          r > 0) {
        // Drop the transport, keep the player: the fresh beacon re-attaches
        // the binding and the server acknowledges with kSessionResumed.
        client.reset();
        client = ServiceClient::connect(config.host, config.port,
                                        config.connect_timeout_s);
        client->send(beacon);
        ++result.reconnects;
      }
      const double request_kw =
          rng.uniform(config.min_request_kw, config.max_request_kw);
      // Rounds are echo tokens; unique per request within this connection.
      const std::uint64_t round =
          static_cast<std::uint64_t>(index) * config.requests_per_connection +
          r;
      net::PowerRequestMsg request;
      request.player = player;
      request.round = round;
      request.total_kw = request_kw;
      // Trace context rides the wire and comes back on the ScheduleMsg with
      // the server's phase breakdown.  Nonzero so an un-echoed id is
      // distinguishable from a server that never saw the context.
      request.trace.trace_id = round + 1;

      std::size_t retries = 0;
      bool settled = false;
      while (!settled) {
        const std::int64_t sent_us = obs::now_micros();
        request.trace.client_send_us = sent_us;
        client->send(request);
        ++result.sent;
        bool answered = false;
        while (!answered) {
          const auto reply = client->recv(config.recv_timeout_s);
          if (!reply) {
            ++result.errors;  // timeout or peer gone mid-request
            return;
          }
          if (const auto* schedule = std::get_if<net::ScheduleMsg>(&*reply)) {
            if (schedule->round != round) continue;  // stale duplicate
            if (valid_schedule(*schedule, player, round, request_kw) &&
                schedule->trace_id == request.trace.trace_id) {
              ++result.ok;
              result.latencies_us.push_back(
                  static_cast<double>(obs::now_micros() - sent_us));
              result.admit_us.push_back(
                  static_cast<double>(schedule->phases.admit_us));
              result.queue_us.push_back(
                  static_cast<double>(schedule->phases.queue_us));
              result.batch_us.push_back(
                  static_cast<double>(schedule->phases.batch_us));
              result.solve_us.push_back(
                  static_cast<double>(schedule->phases.solve_us));
            } else {
              ++result.garbled;
            }
            answered = settled = true;
          } else if (const auto* control =
                         std::get_if<net::ControlMsg>(&*reply)) {
            switch (control->code) {
              case net::ControlCode::kRetryLater:
                if (control->round != round) continue;
                ++result.retry_later;
                if (++retries > config.max_retries_per_request) {
                  ++result.errors;
                  answered = settled = true;
                  break;
                }
                std::this_thread::sleep_for(std::chrono::microseconds(
                    static_cast<std::int64_t>(rng.uniform(200.0, 1000.0))));
                answered = true;  // resend from the outer loop
                break;
              case net::ControlCode::kDeadlineExpired:
                if (control->round != round) continue;
                ++result.deadline_expired;
                answered = settled = true;
                break;
              case net::ControlCode::kDraining:
                ++result.draining;
                return;  // server is going away; stop cleanly
              case net::ControlCode::kConverged:
                break;  // informational broadcast; keep waiting
              case net::ControlCode::kSessionResumed:
                // Re-attach acknowledgement (our own reconnect beacon, or a
                // second connection sharing this player id); informational.
                ++result.session_resumed;
                break;
              default:
                ++result.garbled;  // kMalformed/kBadRequest: we sent garbage?
                answered = settled = true;
                break;
            }
          }
          // PaymentFunctionMsg announcements are ignored: the loadgen plays
          // open-loop traffic, not best responses.
        }
      }
    }
  } catch (const std::exception&) {
    ++result.errors;
  }
}

}  // namespace

LoadgenReport run_loadgen(const LoadgenConfig& config) {
  std::vector<WorkerResult> results(config.connections);
  std::vector<std::thread> workers;
  workers.reserve(config.connections);
  const obs::Stopwatch wall;
  for (std::size_t i = 0; i < config.connections; ++i) {
    workers.emplace_back(run_worker, std::cref(config), i,
                         std::ref(results[i]));
  }
  for (std::thread& worker : workers) worker.join();

  LoadgenReport report;
  report.wall_s = wall.seconds();
  std::vector<double> latencies;
  std::vector<double> admit, queue, batch, solve;
  for (const WorkerResult& r : results) {
    report.requests_sent += r.sent;
    report.ok += r.ok;
    report.retry_later += r.retry_later;
    report.deadline_expired += r.deadline_expired;
    report.draining += r.draining;
    report.garbled += r.garbled;
    report.errors += r.errors;
    report.reconnects += r.reconnects;
    report.session_resumed += r.session_resumed;
    latencies.insert(latencies.end(), r.latencies_us.begin(),
                     r.latencies_us.end());
    admit.insert(admit.end(), r.admit_us.begin(), r.admit_us.end());
    queue.insert(queue.end(), r.queue_us.begin(), r.queue_us.end());
    batch.insert(batch.end(), r.batch_us.begin(), r.batch_us.end());
    solve.insert(solve.end(), r.solve_us.begin(), r.solve_us.end());
  }
  if (report.wall_s > 0.0) {
    report.requests_per_s =
        static_cast<double>(report.ok) / report.wall_s;
  }
  if (!latencies.empty()) {
    report.latency_p50_us = util::percentile(latencies, 50.0);
    report.latency_p95_us = util::percentile(latencies, 95.0);
    report.latency_p99_us = util::percentile(latencies, 99.0);
    report.latency_max_us = *std::max_element(latencies.begin(),
                                              latencies.end());
    report.server_admit_p50_us = util::percentile(admit, 50.0);
    report.server_admit_p95_us = util::percentile(admit, 95.0);
    report.server_queue_p50_us = util::percentile(queue, 50.0);
    report.server_queue_p95_us = util::percentile(queue, 95.0);
    report.server_batch_p50_us = util::percentile(batch, 50.0);
    report.server_batch_p95_us = util::percentile(batch, 95.0);
    report.server_solve_p50_us = util::percentile(solve, 50.0);
    report.server_solve_p95_us = util::percentile(solve, 95.0);
  }
  return report;
}

std::string LoadgenReport::to_json() const {
  // Built with += only (gcc-12 -Wrestrict, PR105651).  Doubles go through
  // obs::format_double: shortest round-trippable decimal, so whole-number
  // latencies print as integers instead of the 6-significant-digit
  // scientific notation std::ostream would lossily emit -- the same
  // convention the obs registry JSON and BENCH_*.json comparisons use.
  std::string out = "{\n";
  auto field_u64 = [&out](const char* name, std::uint64_t value) {
    out += "  \"";
    out += name;
    out += "\": ";
    out += std::to_string(value);
    out += ",\n";
  };
  auto field_f64 = [&out](const char* name, double value) {
    out += "  \"";
    out += name;
    out += "\": ";
    out += obs::format_double(value);
    out += ",\n";
  };
  field_u64("requests_sent", requests_sent);
  field_u64("ok", ok);
  field_u64("retry_later", retry_later);
  field_u64("deadline_expired", deadline_expired);
  field_u64("draining", draining);
  field_u64("garbled", garbled);
  field_u64("errors", errors);
  field_u64("reconnects", reconnects);
  field_u64("session_resumed", session_resumed);
  out += "  \"clean\": ";
  out += clean() ? "true" : "false";
  out += ",\n";
  field_f64("wall_s", wall_s);
  field_f64("requests_per_s", requests_per_s);
  field_f64("latency_p50_us", latency_p50_us);
  field_f64("latency_p95_us", latency_p95_us);
  field_f64("latency_p99_us", latency_p99_us);
  field_f64("latency_max_us", latency_max_us);
  field_f64("server_admit_p50_us", server_admit_p50_us);
  field_f64("server_admit_p95_us", server_admit_p95_us);
  field_f64("server_queue_p50_us", server_queue_p50_us);
  field_f64("server_queue_p95_us", server_queue_p95_us);
  field_f64("server_batch_p50_us", server_batch_p50_us);
  field_f64("server_batch_p95_us", server_batch_p95_us);
  field_f64("server_solve_p50_us", server_solve_p50_us);
  out += "  \"server_solve_p95_us\": ";
  out += obs::format_double(server_solve_p95_us);
  out += "\n}\n";
  return out;
}

}  // namespace olev::svc
