#include "svc/loadgen.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>
#include <thread>
#include <vector>

#include "net/message.h"
#include "obs/span.h"
#include "svc/client.h"
#include "util/rng.h"
#include "util/stats.h"

namespace olev::svc {
namespace {

struct WorkerResult {
  std::uint64_t sent = 0;
  std::uint64_t ok = 0;
  std::uint64_t retry_later = 0;
  std::uint64_t deadline_expired = 0;
  std::uint64_t draining = 0;
  std::uint64_t garbled = 0;
  std::uint64_t errors = 0;
  std::vector<double> latencies_us;
};

bool valid_schedule(const net::ScheduleMsg& schedule, std::uint32_t player,
                    std::uint64_t round, double requested_kw) {
  if (schedule.player != player || schedule.round != round) return false;
  if (schedule.row_kw.empty()) return false;
  double total = 0.0;
  for (const double entry : schedule.row_kw) {
    if (!std::isfinite(entry) || entry < 0.0) return false;
    total += entry;
  }
  // Water-filling never allocates more than the admitted request (Lemma
  // IV.1); a tiny epsilon absorbs the summation order.
  if (total > std::max(requested_kw, 0.0) + 1e-6) return false;
  return std::isfinite(schedule.payment) && schedule.payment >= -1e-9;
}

void run_worker(const LoadgenConfig& config, std::size_t index,
                WorkerResult& result) {
  const auto player = static_cast<std::uint32_t>(index % config.players);
  try {
    ServiceClient client = ServiceClient::connect(config.host, config.port,
                                                 config.connect_timeout_s);
    net::BeaconMsg beacon;
    beacon.player = player;
    client.send(beacon);

    util::Rng rng(util::derive_seed(config.seed, index));
    for (std::size_t r = 0; r < config.requests_per_connection; ++r) {
      const double request_kw =
          rng.uniform(config.min_request_kw, config.max_request_kw);
      // Rounds are echo tokens; unique per request within this connection.
      const std::uint64_t round =
          static_cast<std::uint64_t>(index) * config.requests_per_connection +
          r;
      net::PowerRequestMsg request;
      request.player = player;
      request.round = round;
      request.total_kw = request_kw;

      std::size_t retries = 0;
      bool settled = false;
      while (!settled) {
        const std::int64_t sent_us = obs::now_micros();
        client.send(request);
        ++result.sent;
        bool answered = false;
        while (!answered) {
          const auto reply = client.recv(config.recv_timeout_s);
          if (!reply) {
            ++result.errors;  // timeout or peer gone mid-request
            return;
          }
          if (const auto* schedule = std::get_if<net::ScheduleMsg>(&*reply)) {
            if (schedule->round != round) continue;  // stale duplicate
            if (valid_schedule(*schedule, player, round, request_kw)) {
              ++result.ok;
              result.latencies_us.push_back(
                  static_cast<double>(obs::now_micros() - sent_us));
            } else {
              ++result.garbled;
            }
            answered = settled = true;
          } else if (const auto* control =
                         std::get_if<net::ControlMsg>(&*reply)) {
            switch (control->code) {
              case net::ControlCode::kRetryLater:
                if (control->round != round) continue;
                ++result.retry_later;
                if (++retries > config.max_retries_per_request) {
                  ++result.errors;
                  answered = settled = true;
                  break;
                }
                std::this_thread::sleep_for(std::chrono::microseconds(
                    static_cast<std::int64_t>(rng.uniform(200.0, 1000.0))));
                answered = true;  // resend from the outer loop
                break;
              case net::ControlCode::kDeadlineExpired:
                if (control->round != round) continue;
                ++result.deadline_expired;
                answered = settled = true;
                break;
              case net::ControlCode::kDraining:
                ++result.draining;
                return;  // server is going away; stop cleanly
              case net::ControlCode::kConverged:
                break;  // informational broadcast; keep waiting
              default:
                ++result.garbled;  // kMalformed/kBadRequest: we sent garbage?
                answered = settled = true;
                break;
            }
          }
          // PaymentFunctionMsg announcements are ignored: the loadgen plays
          // open-loop traffic, not best responses.
        }
      }
    }
  } catch (const std::exception&) {
    ++result.errors;
  }
}

}  // namespace

LoadgenReport run_loadgen(const LoadgenConfig& config) {
  std::vector<WorkerResult> results(config.connections);
  std::vector<std::thread> workers;
  workers.reserve(config.connections);
  const obs::Stopwatch wall;
  for (std::size_t i = 0; i < config.connections; ++i) {
    workers.emplace_back(run_worker, std::cref(config), i,
                         std::ref(results[i]));
  }
  for (std::thread& worker : workers) worker.join();

  LoadgenReport report;
  report.wall_s = wall.seconds();
  std::vector<double> latencies;
  for (const WorkerResult& r : results) {
    report.requests_sent += r.sent;
    report.ok += r.ok;
    report.retry_later += r.retry_later;
    report.deadline_expired += r.deadline_expired;
    report.draining += r.draining;
    report.garbled += r.garbled;
    report.errors += r.errors;
    latencies.insert(latencies.end(), r.latencies_us.begin(),
                     r.latencies_us.end());
  }
  if (report.wall_s > 0.0) {
    report.requests_per_s =
        static_cast<double>(report.ok) / report.wall_s;
  }
  if (!latencies.empty()) {
    report.latency_p50_us = util::percentile(latencies, 50.0);
    report.latency_p95_us = util::percentile(latencies, 95.0);
    report.latency_p99_us = util::percentile(latencies, 99.0);
    report.latency_max_us = *std::max_element(latencies.begin(),
                                              latencies.end());
  }
  return report;
}

std::string LoadgenReport::to_json() const {
  std::ostringstream out;
  out << "{\n";
  out << "  \"requests_sent\": " << requests_sent << ",\n";
  out << "  \"ok\": " << ok << ",\n";
  out << "  \"retry_later\": " << retry_later << ",\n";
  out << "  \"deadline_expired\": " << deadline_expired << ",\n";
  out << "  \"draining\": " << draining << ",\n";
  out << "  \"garbled\": " << garbled << ",\n";
  out << "  \"errors\": " << errors << ",\n";
  out << "  \"clean\": " << (clean() ? "true" : "false") << ",\n";
  out << "  \"wall_s\": " << wall_s << ",\n";
  out << "  \"requests_per_s\": " << requests_per_s << ",\n";
  out << "  \"latency_p50_us\": " << latency_p50_us << ",\n";
  out << "  \"latency_p95_us\": " << latency_p95_us << ",\n";
  out << "  \"latency_p99_us\": " << latency_p99_us << ",\n";
  out << "  \"latency_max_us\": " << latency_max_us << "\n";
  out << "}\n";
  return out.str();
}

}  // namespace olev::svc
