#include "svc/client.h"

#include <sys/socket.h>

#include <stdexcept>

#include "obs/span.h"

namespace olev::svc {

ServiceClient::ServiceClient(Socket socket) : socket_(std::move(socket)) {}

ServiceClient ServiceClient::connect(const std::string& host,
                                     std::uint16_t port, double timeout_s) {
  return ServiceClient(connect_to(host, port, timeout_s));
}

void ServiceClient::send(const net::Message& message) {
  const std::vector<std::uint8_t> frame = encode_frame(message);
  send_raw(frame);
}

void ServiceClient::send_raw(std::span<const std::uint8_t> bytes) {
  std::size_t written = 0;
  while (written < bytes.size()) {
    const IoResult io = write_some(socket_.fd(), bytes.subspan(written));
    if (io.closed) {
      peer_closed_ = true;
      throw std::runtime_error("ServiceClient: peer closed during send");
    }
    if (io.would_block) {
      // Blocking socket: would_block only surfaces via EINTR; retry.
      continue;
    }
    written += io.bytes;
  }
}

std::optional<net::Message> ServiceClient::recv(double timeout_s) {
  const obs::Stopwatch elapsed;
  for (;;) {
    if (auto payload = decoder_.next()) {
      return net::deserialize(*payload);  // throws on malformed replies
    }
    if (peer_closed_) return std::nullopt;
    const double remaining_s = timeout_s - elapsed.seconds();
    if (remaining_s <= 0.0) return std::nullopt;
    PollItem item;
    item.fd = socket_.fd();
    item.want_read = true;
    const int wait_ms = static_cast<int>(remaining_s * 1e3) + 1;
    if (poll_fds({&item, 1}, wait_ms) == 0) continue;
    std::uint8_t chunk[4096];
    const IoResult io = read_some(socket_.fd(), chunk);
    if (io.closed) {
      peer_closed_ = true;
      continue;  // drain any frame already buffered before reporting nullopt
    }
    if (io.bytes == 0) continue;
    if (!decoder_.feed({chunk, io.bytes})) {
      throw std::runtime_error("ServiceClient: oversized frame from server");
    }
  }
}

void ServiceClient::shutdown_write() {
  (void)::shutdown(socket_.fd(), SHUT_WR);
}

}  // namespace olev::svc
