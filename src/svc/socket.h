// Thin RAII layer over POSIX TCP sockets.
//
// src/svc is the ONLY directory allowed to touch the socket API and the raw
// read/write/poll syscalls (tools/olev_lint.py rule R5): everything above --
// core solvers, util, the grid/traffic substrates -- stays free of blocking
// I/O by construction.  The wrappers here normalize the error surface into
// three outcomes (progress, would-block, closed) so the event loop never has
// to reason about errno.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace olev::svc {

/// Move-only owning file descriptor.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void close();

 private:
  int fd_ = -1;
};

/// Binds and listens on 127.0.0.1:`port` (0 = kernel-assigned ephemeral
/// port), non-blocking, SO_REUSEADDR.  Throws std::runtime_error on failure.
Socket listen_on(std::uint16_t port, int backlog = 128);

/// The locally bound port of a listening socket (resolves port 0).
std::uint16_t local_port(const Socket& socket);

/// Accepts one pending connection as a non-blocking socket; invalid Socket
/// when the queue is empty (EAGAIN).
Socket accept_connection(const Socket& listener);

/// Blocking TCP connect to host:port, retrying until `timeout_s` elapses so
/// clients can race a daemon that is still binding.  Throws on timeout.
Socket connect_to(const std::string& host, std::uint16_t port,
                  double timeout_s = 5.0);

void set_nonblocking(int fd, bool on);

struct IoResult {
  std::size_t bytes = 0;
  bool would_block = false;
  bool closed = false;  ///< orderly shutdown or hard error from the peer
};

/// One recv(); never raises SIGPIPE-adjacent errors, never blocks on a
/// non-blocking fd.
IoResult read_some(int fd, std::span<std::uint8_t> buffer);
/// One send() with MSG_NOSIGNAL; may write fewer bytes than offered.
IoResult write_some(int fd, std::span<const std::uint8_t> buffer);

/// One readiness query per registered fd.
struct PollItem {
  int fd = -1;
  bool want_read = false;
  bool want_write = false;
  // filled by poll_fds:
  bool readable = false;
  bool writable = false;
  bool hangup = false;
};

/// poll(2) wrapper; returns the number of ready items (0 on timeout or
/// EINTR).  `timeout_ms` < 0 blocks indefinitely.
int poll_fds(std::span<PollItem> items, int timeout_ms);

}  // namespace olev::svc
