#include "svc/admin.h"

#include <cstdint>
#include <stdexcept>

#include "obs/span.h"

namespace olev::svc {

AdminClient::AdminClient(Socket socket) : socket_(std::move(socket)) {}

AdminClient AdminClient::connect(const std::string& host, std::uint16_t port,
                                 double timeout_s) {
  return AdminClient(connect_to(host, port, timeout_s));
}

std::string AdminClient::request(std::string_view command, double timeout_s) {
  std::string line(command);
  line += '\n';
  std::size_t written = 0;
  while (written < line.size()) {
    const std::span<const std::uint8_t> pending(
        reinterpret_cast<const std::uint8_t*>(line.data()) + written,
        line.size() - written);
    const IoResult io = write_some(socket_.fd(), pending);
    if (io.closed) {
      throw std::runtime_error("AdminClient: peer closed during send");
    }
    if (io.would_block) {
      // Blocking socket: would_block only surfaces via EINTR; retry.
      continue;
    }
    written += io.bytes;
  }

  const obs::Stopwatch elapsed;
  for (;;) {
    const std::size_t newline = inbuf_.find('\n');
    if (newline != std::string::npos) {
      std::string reply = inbuf_.substr(0, newline);
      inbuf_.erase(0, newline + 1);
      return reply;
    }
    const double remaining_s = timeout_s - elapsed.seconds();
    if (remaining_s <= 0.0) {
      throw std::runtime_error("AdminClient: reply timeout");
    }
    PollItem item;
    item.fd = socket_.fd();
    item.want_read = true;
    const int wait_ms = static_cast<int>(remaining_s * 1e3) + 1;
    if (poll_fds({&item, 1}, wait_ms) == 0) continue;
    std::uint8_t chunk[4096];
    const IoResult io = read_some(socket_.fd(), chunk);
    if (io.closed) {
      throw std::runtime_error("AdminClient: peer closed before reply");
    }
    if (io.bytes == 0) continue;
    inbuf_.append(reinterpret_cast<const char*>(chunk), io.bytes);
  }
}

}  // namespace olev::svc
