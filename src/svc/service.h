// olevd's serving core: the pricing game as a long-lived TCP service.
//
// One PricingService = one listening socket + one PricingEngine (the online
// best-response state).  The event loop is single-threaded and non-blocking
// (poll(2) over the listener and every session), which keeps the game state
// lock-free and the request application order deterministic.
//
// Protocol (length-prefixed net::Message frames, svc/frame.h):
//   client -> grid : BeaconMsg        binds the connection to a player id
//   client -> grid : PowerRequestMsg  total power request p_n (round echoes)
//   grid -> client : ScheduleMsg      water-filled row + externality payment
//   grid -> client : PaymentFunctionMsg  grid-paced announcement (announce
//                    mode): the b vector the next best response is against
//   grid -> client : ControlMsg       backpressure / errors / lifecycle
//                    (RETRY_LATER, DEADLINE_EXPIRED, MALFORMED, BAD_REQUEST,
//                    DRAINING, CONVERGED)
//
// Batching: requests are admitted into a bounded queue and applied in one
// best-response round when the oldest request has waited batch_window_s or
// the queue reached max_batch -- each entry sequentially against the
// then-current schedule (Theorem IV.1's asynchronous update), responses fan
// back out afterwards.  A full queue answers RETRY_LATER immediately instead
// of blocking; a request older than its deadline is answered
// DEADLINE_EXPIRED instead of being applied.
//
// Robustness: bounded read buffers with oversized/malformed-frame rejection,
// bounded write buffers (a sink-slow client is dropped, not buffered
// forever), idle-connection reaping, and graceful drain on request_stop():
// the listener closes, queued requests are answered, every session gets a
// DRAINING notice, and run() returns once the flushes complete (or the drain
// deadline forces the issue).
//
// Telemetry: every request is decomposed into admit -> queue -> batch ->
// solve -> write phases; the first four ride back to the client on the
// ScheduleMsg (net::PhaseTimings) and all five feed `svc.phase.*_us`
// histograms.  An optional admin plane (ServiceConfig::admin_enabled) runs a
// second read-only loopback listener on the same poll loop answering line
// commands with one-line JSON snapshots -- metrics registry, engine/round
// state, health, flight-recorder dump (docs/SERVING.md, "Admin protocol").
// Request-lifecycle events (admit, batch fire, backpressure, expiry, drain)
// are recorded into the obs flight recorder as they happen.
//
// Thread-safety contract (docs/ANALYSIS.md "Thread-safety contract"): this
// layer holds NO mutex by design.  Every field below is confined to the
// run() thread; the only cross-thread entry points are request_stop() (one
// relaxed atomic store, signal-safe) and the post-run accessors, which are
// valid once run() has returned (the join is the synchronization point).
// The multi-threaded machinery underneath -- the sweep pool, the metrics
// registry, the tracer -- lives behind the capability-annotated wrappers of
// util/sync.h; when the planned sharded multi-engine daemon pulls
// PricingEngine out from behind this single admission queue, its shared
// state must go through olev::Mutex + OLEV_GUARDED_BY, not raw std::mutex
// (lint rule R6 enforces the latter mechanically).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/cost.h"
#include "net/message.h"
#include "obs/metrics.h"
#include "persist/journal.h"
#include "svc/engine.h"
#include "svc/frame.h"
#include "svc/socket.h"

namespace olev::svc {

/// Default upper bucket edges (µs) for `svc.request.latency_us` and the
/// per-phase `svc.phase.*_us` histograms.  The sub-100µs edges resolve the
/// regime a 0µs-window loopback service actually serves in (~100k rps lands
/// most requests below 100µs, where the old coarse layout lumped everything
/// into two buckets).  tests/test_admin.cc pins this layout.
std::vector<double> default_latency_bucket_edges_us();

struct ServiceConfig {
  std::uint16_t port = 0;  ///< 0 = kernel-assigned (read back via port())
  std::size_t players = 0;
  std::size_t sections = 0;
  double epsilon = 1e-7;
  std::vector<double> caps_kw;  ///< per-player admission caps; empty = none
  /// Pricing arithmetic: the exact N-player update or the O(C) mean-field
  /// update (olevd --engine=meanfield).  See EngineMode.
  EngineMode engine_mode = EngineMode::kExact;

  // Batching core.
  double batch_window_s = 0.002;  ///< coalescing window for one round
  std::size_t max_batch = 64;     ///< apply at most this many per round
  std::size_t max_queue = 1024;   ///< admission bound; beyond = RETRY_LATER
  double request_deadline_s = 1.0;

  // Robustness.
  double idle_timeout_s = 60.0;  ///< reap silent connections; <= 0 disables
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  std::size_t max_write_buffer_bytes = 4u << 20;
  double drain_timeout_s = 5.0;

  // Grid-paced mode: the service announces payment functions round-robin
  // (Section IV-D) once `announce_after_players` sessions have bound, and
  // broadcasts CONVERGED at the fixed point.  0 = wait for all players.
  bool announce = false;
  std::size_t announce_after_players = 0;
  double announce_retry_s = 1.0;  ///< re-announce into silence (lost client)

  // Observability.
  /// Bucket edges for the request-latency and phase histograms.  First
  /// registration fixes the layout process-wide (obs::Registry contract);
  /// an empty vector falls back to default_latency_bucket_edges_us().
  std::vector<double> latency_bucket_edges_us;
  /// Read-only admin/telemetry plane (docs/SERVING.md, "Admin protocol"):
  /// a second loopback listener answering line commands ("snapshot",
  /// "health", "engine", "metrics", "flight") with one-line JSON.  Off by
  /// default; olevd enables it with --admin-port.
  bool admin_enabled = false;
  std::uint16_t admin_port = 0;  ///< 0 = kernel-assigned (read admin_port())

  // Durable state plane (docs/PERSISTENCE.md).
  /// Non-empty arms drain-then-persist: begin_drain() writes a versioned
  /// snapshot here (atomic tmp+rename) after the last admitted request is
  /// answered.  olevd --snapshot-path.
  std::string snapshot_path;
  /// Load snapshot_path at construction and resume the grid-paced round at
  /// the exact announce cursor (olevd --resume).  The snapshot's engine
  /// shape (mode/players/sections/epsilon/caps) must match this config
  /// bit-for-bit or the constructor throws.
  bool resume = false;
  /// Non-empty opens a write-ahead request journal here: every admitted
  /// request is appended, in admission order, with its TraceContext
  /// (olevd --journal; tools/olev_replay feeds it back deterministically).
  std::string journal_path;
  persist::FsyncPolicy journal_fsync = persist::FsyncPolicy::kOnFlush;
};

/// Plain counters, readable after run() returns (the loop is single-
/// threaded; obs-registry mirrors of the interesting ones are exported live).
struct ServiceStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_closed = 0;
  std::uint64_t connections_reaped = 0;  ///< idle-timeout subset of closed
  std::uint64_t frames_received = 0;
  std::uint64_t frames_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t malformed_frames = 0;
  std::uint64_t bad_requests = 0;
  std::uint64_t requests_received = 0;
  std::uint64_t requests_served = 0;
  std::uint64_t retry_later = 0;
  std::uint64_t deadline_expired = 0;
  std::uint64_t drain_rejected = 0;
  std::uint64_t batches = 0;
  std::uint64_t max_batch_size = 0;
  std::uint64_t announce_retransmissions = 0;
  std::uint64_t write_overflows = 0;
  std::uint64_t admin_connections = 0;
  std::uint64_t admin_requests = 0;
  std::uint64_t sessions_resumed = 0;  ///< kSessionResumed notices sent
  std::uint64_t snapshots_saved = 0;
  std::uint64_t snapshot_save_failures = 0;
  std::uint64_t journal_records = 0;
  std::uint64_t journal_failures = 0;  ///< append/flush errors (journal closes)
};

class PricingService {
 public:
  /// Binds the listener immediately (so port() is valid before run()).
  PricingService(core::SectionCost cost, ServiceConfig config);
  ~PricingService();

  PricingService(const PricingService&) = delete;
  PricingService& operator=(const PricingService&) = delete;

  std::uint16_t port() const { return port_; }
  /// Resolved admin-plane port; 0 when the admin plane is disabled.
  std::uint16_t admin_port() const { return admin_port_; }

  /// Serves until request_stop() and the subsequent drain complete.
  void run();

  /// Thread-safe (and signal-safe: one relaxed atomic store); run() notices
  /// within one poll timeout.
  void request_stop() { stop_requested_.store(true, std::memory_order_relaxed); }

  // Post-run (or externally-synchronized) inspection.
  const ServiceStats& stats() const { return stats_; }
  const core::PowerSchedule& schedule() const { return engine_.schedule(); }
  bool game_converged() const { return engine_.converged(); }
  std::size_t game_updates() const { return engine_.updates(); }
  /// True when this instance restored its state from a snapshot.
  bool resumed() const { return resumed_; }

 private:
  struct Session;
  struct AdminSession;
  struct PendingRequest {
    std::shared_ptr<Session> session;
    std::uint32_t player = 0;
    std::uint64_t round = 0;
    double total_kw = 0.0;
    std::int64_t arrival_us = 0;
    std::int64_t deadline_us = 0;
    std::int64_t admit_done_us = 0;  ///< enqueue stamp (ends the admit phase)
    net::TraceContext trace;         ///< echoed on the ScheduleMsg reply
  };

  void accept_new_connections();
  void read_session(const std::shared_ptr<Session>& session,
                    std::int64_t now_us);
  void dispatch(const std::shared_ptr<Session>& session,
                const net::Message& message, std::int64_t now_us);
  void send_message(const std::shared_ptr<Session>& session,
                    const net::Message& message);
  void flush_session(Session& session);
  void fail_session(const std::shared_ptr<Session>& session,
                    net::ControlCode code);
  void expire_overdue(std::int64_t now_us);
  void run_batch(std::int64_t now_us);
  void maybe_announce(std::int64_t now_us);
  void begin_drain(std::int64_t now_us);
  void reap_idle(std::int64_t now_us);
  void remove_dead_sessions();
  int next_timeout_ms(std::int64_t now_us) const;
  std::shared_ptr<Session> bound_session(std::size_t player) const;

  // Durable state plane (docs/PERSISTENCE.md): snapshot restore at boot,
  // drain-then-persist at shutdown.  Both cold paths.
  void load_snapshot();
  void save_snapshot();

  // Admin plane (read-only; confined to the run() thread like everything
  // else, so snapshots need no synchronization with the engine).
  void accept_admin_connections();
  void read_admin(AdminSession& session);
  void flush_admin(AdminSession& session);
  void remove_dead_admin_sessions();
  std::string admin_reply(std::string_view command) const;
  std::string health_json() const;
  std::string engine_json() const;

  // All confined to the run() thread (see the thread-safety contract in the
  // header comment); stop_requested_ is the one cross-thread flag.
  core::SectionCost cost_;
  ServiceConfig config_;
  PricingEngine engine_;
  Socket listener_;
  std::uint16_t port_ = 0;
  Socket admin_listener_;
  std::uint16_t admin_port_ = 0;
  std::vector<std::shared_ptr<Session>> sessions_;
  std::vector<std::shared_ptr<AdminSession>> admin_sessions_;
  std::deque<PendingRequest> queue_;
  ServiceStats stats_;
  std::atomic<bool> stop_requested_{false};
  std::int64_t started_us_ = 0;
  std::size_t last_batch_size_ = 0;

  // Request-latency and phase histograms, registered once at construction
  // with the config's bucket edges.  Null only when OLEV_OBS is compiled
  // out (the pointers then stay unused).
  obs::Histogram* latency_hist_ = nullptr;
  obs::Histogram* phase_admit_hist_ = nullptr;
  obs::Histogram* phase_queue_hist_ = nullptr;
  obs::Histogram* phase_batch_hist_ = nullptr;
  obs::Histogram* phase_solve_hist_ = nullptr;
  obs::Histogram* phase_write_hist_ = nullptr;

  // Drain state.
  bool draining_ = false;
  std::int64_t drain_deadline_us_ = 0;

  // Grid-paced announcement state.
  std::size_t bound_players_ = 0;
  bool announcing_started_ = false;
  bool announce_inflight_ = false;
  bool announce_answered_ = false;
  std::uint32_t announced_player_ = 0;
  std::uint64_t announced_round_ = 0;
  std::int64_t announced_at_us_ = 0;
  bool converged_broadcast_ = false;

  // Durable state plane.  known_players_[p] is set once player p has ever
  // bound (this boot or, after --resume, any earlier one): a later beacon
  // for a known player is a re-attach and is greeted with kSessionResumed
  // instead of silence -- the round resumes without waiting for idle-reap.
  std::vector<bool> known_players_;
  std::unique_ptr<persist::JournalWriter> journal_;
  bool resumed_ = false;
};

}  // namespace olev::svc
