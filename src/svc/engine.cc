#include "svc/engine.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/payment.h"
#include "core/water_filling.h"
#include "obs/flight.h"
#include "util/hot.h"

namespace olev::svc {

OLEV_HOT_ROOT("olev::svc::PricingEngine::apply");

PricingEngine::PricingEngine(core::SectionCost cost, EngineConfig config)
    : cost_(std::move(cost)),
      config_(std::move(config)),
      schedule_(config_.players, config_.sections),
      caps_(config_.caps_kw) {
  if (config_.players == 0 || config_.sections == 0) {
    throw std::invalid_argument("PricingEngine: players/sections must be > 0");
  }
  if (caps_.empty()) {
    caps_.assign(config_.players, std::numeric_limits<double>::infinity());
  } else if (caps_.size() != config_.players) {
    throw std::invalid_argument("PricingEngine: caps_kw size != players");
  }
  // Size the apply() arenas once: after this constructor returns, the
  // serve path never touches the allocator (enforced by tools/olev_rtcheck.py
  // and, in audit builds, by the operator-new interposer).
  scratch_applied_.row.assign(config_.sections, 0.0);
  scratch_others_.assign(config_.sections, 0.0);
  scratch_sorted_.reserve(config_.sections);
}

void PricingEngine::restore_state(std::span<const double> schedule_flat,
                                  std::uint64_t updates, double residual,
                                  bool converged, double total_load_kw) {
  if (schedule_flat.size() != schedule_.players() * schedule_.sections()) {
    throw std::invalid_argument(
        "PricingEngine: restore schedule size != players * sections");
  }
  for (std::size_t n = 0; n < schedule_.players(); ++n) {
    schedule_.set_row(
        n, schedule_flat.subspan(n * schedule_.sections(),
                                 schedule_.sections()));
  }
  updates_ = static_cast<std::size_t>(updates);
  cycle_max_delta_ = residual;
  converged_ = converged;
  total_load_kw_ = total_load_kw;
}

std::vector<double> PricingEngine::others_load(std::size_t player) const {
  if (config_.mode == EngineMode::kMeanField) {
    const double sections = static_cast<double>(schedule_.sections());
    const double others = total_load_kw_ - schedule_.row_total(player);
    return std::vector<double>(schedule_.sections(), others / sections);
  }
  return schedule_.column_totals_excluding(player);
}

void PricingEngine::apply_exact(std::size_t player, double admitted) {
  // Mirror of SmartGrid::handle (src/core/distributed.cc): the service's
  // bit-identity contract with the in-process driver depends on this exact
  // arithmetic.  SortedLoads::fill_into is property-tested bit-identical to
  // water_fill's row (tests/test_water_filling.cc), so swapping the
  // allocating call for the arena fill preserves the contract pinned by
  // tests/test_svc.cc.
  schedule_.column_totals_excluding_into(player, scratch_others_);
  scratch_sorted_.reassign(scratch_others_);
  scratch_sorted_.fill_into(util::kw(admitted), scratch_applied_.row);
  schedule_.set_row(player, scratch_applied_.row);
  scratch_applied_.payment =
      core::externality_payment(cost_, scratch_others_, scratch_applied_.row);
}

void PricingEngine::apply_mean_field(std::size_t player, double admitted) {
  // The aggregate-field update (core/mean_field.h): the player's row is its
  // flat share of the field and the payment is the flat-field externality.
  // No per-player exclusion scan -- O(C) regardless of how many players the
  // schedule carries.
  total_load_kw_ += admitted - schedule_.row_total(player);
  const double sections = static_cast<double>(schedule_.sections());
  const double share = admitted / sections;
  for (double& cell : scratch_applied_.row) {
    cell = share;
  }
  schedule_.set_row(player, scratch_applied_.row);
  scratch_applied_.payment =
      sections * (cost_.value(total_load_kw_ / sections) -
                  cost_.value((total_load_kw_ - admitted) / sections));
}

const PricingEngine::Applied& PricingEngine::apply(std::size_t player,
                                                   double total_kw) {
  OLEV_HOT_REGION("svc.engine.apply");
  const double previous = schedule_.row_total(player);
  const double admitted = std::clamp(total_kw, 0.0, caps_[player]);
  if (config_.mode == EngineMode::kMeanField) {
    apply_mean_field(player, admitted);
  } else {
    apply_exact(player, admitted);
  }

  cycle_max_delta_ = std::max(cycle_max_delta_,
                              std::abs(schedule_.row_total(player) - previous));
  ++updates_;
  if (updates_ % schedule_.players() == 0 && !converged_) {
    if (cycle_max_delta_ < config_.epsilon) {
      converged_ = true;
      // The flight-recorder record path is allocation/lock-free (its own
      // hot root), so calling it from inside this one is wall-legal.
      obs::flight::record(obs::flight::Event::kRoundConverge,
                          static_cast<std::uint64_t>(updates_),
                          std::bit_cast<std::uint64_t>(cycle_max_delta_));
    } else {
      cycle_max_delta_ = 0.0;
    }
  }
  return scratch_applied_;
}

}  // namespace olev::svc
