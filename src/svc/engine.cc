#include "svc/engine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/payment.h"
#include "core/water_filling.h"

namespace olev::svc {

PricingEngine::PricingEngine(core::SectionCost cost, EngineConfig config)
    : cost_(std::move(cost)),
      config_(std::move(config)),
      schedule_(config_.players, config_.sections),
      caps_(config_.caps_kw) {
  if (config_.players == 0 || config_.sections == 0) {
    throw std::invalid_argument("PricingEngine: players/sections must be > 0");
  }
  if (caps_.empty()) {
    caps_.assign(config_.players, std::numeric_limits<double>::infinity());
  } else if (caps_.size() != config_.players) {
    throw std::invalid_argument("PricingEngine: caps_kw size != players");
  }
}

std::vector<double> PricingEngine::others_load(std::size_t player) const {
  if (config_.mode == EngineMode::kMeanField) {
    const double sections = static_cast<double>(schedule_.sections());
    const double others = total_load_kw_ - schedule_.row_total(player);
    return std::vector<double>(schedule_.sections(), others / sections);
  }
  return schedule_.column_totals_excluding(player);
}

PricingEngine::Applied PricingEngine::apply_exact(std::size_t player,
                                                  double admitted) {
  // Mirror of SmartGrid::handle (src/core/distributed.cc): the service's
  // bit-identity contract with the in-process driver depends on this exact
  // call sequence.
  const auto others = schedule_.column_totals_excluding(player);
  core::WaterFillResult allocation =
      core::water_fill(others, util::kw(admitted));
  schedule_.set_row(player, allocation.row);

  Applied applied;
  applied.payment = core::externality_payment(cost_, others, allocation.row);
  applied.row = std::move(allocation.row);
  return applied;
}

PricingEngine::Applied PricingEngine::apply_mean_field(std::size_t player,
                                                       double admitted) {
  // The aggregate-field update (core/mean_field.h): the player's row is its
  // flat share of the field and the payment is the flat-field externality.
  // No per-player exclusion scan -- O(C) regardless of how many players the
  // schedule carries.
  total_load_kw_ += admitted - schedule_.row_total(player);
  const double sections = static_cast<double>(schedule_.sections());
  Applied applied;
  applied.row.assign(schedule_.sections(), admitted / sections);
  schedule_.set_row(player, applied.row);
  applied.payment =
      sections * (cost_.value(total_load_kw_ / sections) -
                  cost_.value((total_load_kw_ - admitted) / sections));
  return applied;
}

PricingEngine::Applied PricingEngine::apply(std::size_t player,
                                            double total_kw) {
  const double previous = schedule_.row_total(player);
  const double admitted = std::clamp(total_kw, 0.0, caps_[player]);
  Applied applied = config_.mode == EngineMode::kMeanField
                        ? apply_mean_field(player, admitted)
                        : apply_exact(player, admitted);

  cycle_max_delta_ = std::max(cycle_max_delta_,
                              std::abs(schedule_.row_total(player) - previous));
  ++updates_;
  if (updates_ % schedule_.players() == 0 && !converged_) {
    if (cycle_max_delta_ < config_.epsilon) {
      converged_ = true;
    } else {
      cycle_max_delta_ = 0.0;
    }
  }
  return applied;
}

}  // namespace olev::svc
