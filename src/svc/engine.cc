#include "svc/engine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/payment.h"
#include "core/water_filling.h"

namespace olev::svc {

PricingEngine::PricingEngine(core::SectionCost cost, EngineConfig config)
    : cost_(std::move(cost)),
      config_(config),
      schedule_(config.players, config.sections),
      caps_(config.caps_kw) {
  if (config.players == 0 || config.sections == 0) {
    throw std::invalid_argument("PricingEngine: players/sections must be > 0");
  }
  if (caps_.empty()) {
    caps_.assign(config.players, std::numeric_limits<double>::infinity());
  } else if (caps_.size() != config.players) {
    throw std::invalid_argument("PricingEngine: caps_kw size != players");
  }
}

PricingEngine::Applied PricingEngine::apply(std::size_t player,
                                            double total_kw) {
  // Mirror of SmartGrid::handle (src/core/distributed.cc): the service's
  // bit-identity contract with the in-process driver depends on this exact
  // call sequence.
  const std::size_t n = player;
  const auto others = schedule_.column_totals_excluding(n);
  const double previous = schedule_.row_total(n);
  const double admitted = std::clamp(total_kw, 0.0, caps_[n]);
  core::WaterFillResult allocation = core::water_fill(others, util::kw(admitted));
  schedule_.set_row(n, allocation.row);

  Applied applied;
  applied.payment = core::externality_payment(cost_, others, allocation.row);
  applied.row = std::move(allocation.row);

  cycle_max_delta_ = std::max(cycle_max_delta_,
                              std::abs(schedule_.row_total(n) - previous));
  ++updates_;
  if (updates_ % schedule_.players() == 0 && !converged_) {
    if (cycle_max_delta_ < config_.epsilon) {
      converged_ = true;
    } else {
      cycle_max_delta_ = 0.0;
    }
  }
  return applied;
}

}  // namespace olev::svc
