#include "persist/codec.h"

#include <array>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include <unistd.h>  // fsync: durability half of the atomic tmp+rename write

namespace olev::persist {
namespace {

/// Table-driven CRC-32, generated once (reflected 0xEDB88320, the zlib
/// polynomial -- chosen so external tooling can verify snapshots).
std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t value = i;
    for (int bit = 0; bit < 8; ++bit) {
      value = (value >> 1) ^ ((value & 1u) ? 0xEDB88320u : 0u);
    }
    table[i] = value;
  }
  return table;
}

/// RAII stdio handle so every error path closes (and the writer can remove
/// its temp file without goto ladders).
struct File {
  explicit File(std::FILE* handle) : f(handle) {}
  ~File() {
    if (f != nullptr) std::fclose(f);
  }
  File(const File&) = delete;
  File& operator=(const File&) = delete;
  std::FILE* f = nullptr;
};

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error("persist: " + what + " '" + path + "'");
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> bytes, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t crc = ~seed;
  for (const std::uint8_t byte : bytes) {
    crc = (crc >> 8) ^ table[(crc ^ byte) & 0xFFu];
  }
  return ~crc;
}

void Writer::u16(std::uint16_t v) {
  for (int i = 0; i < 2; ++i) {
    bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void Writer::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void Writer::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void Writer::f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void Writer::f64_vector(const std::vector<double>& values) {
  u64(static_cast<std::uint64_t>(values.size()));
  for (const double v : values) f64(v);
}

void Writer::u32_vector(const std::vector<std::uint32_t>& values) {
  u64(static_cast<std::uint64_t>(values.size()));
  for (const std::uint32_t v : values) u32(v);
}

std::span<const std::uint8_t> Reader::take(std::size_t n) {
  if (bytes_.size() - offset_ < n) {
    throw std::runtime_error("persist: truncated payload");
  }
  const auto view = bytes_.subspan(offset_, n);
  offset_ += n;
  return view;
}

std::uint16_t Reader::u16() {
  const auto b = take(2);
  return static_cast<std::uint16_t>(b[0] | (static_cast<std::uint16_t>(b[1]) << 8));
}

std::uint32_t Reader::u32() {
  const auto b = take(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(b[i]) << (8 * i);
  return v;
}

std::uint64_t Reader::u64() {
  const auto b = take(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
  return v;
}

double Reader::f64() {
  const std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::vector<double> Reader::f64_vector(std::size_t max_count) {
  const std::uint64_t count = u64();
  // Length sanity before any allocation: a corrupt count must not size a
  // buffer (same discipline as net::Reader::f64_vector).
  if (count > max_count || remaining() < count * 8) {
    throw std::runtime_error("persist: vector length corrupt");
  }
  std::vector<double> values;
  values.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) values.push_back(f64());
  return values;
}

std::vector<std::uint32_t> Reader::u32_vector(std::size_t max_count) {
  const std::uint64_t count = u64();
  if (count > max_count || remaining() < count * 4) {
    throw std::runtime_error("persist: vector length corrupt");
  }
  std::vector<std::uint32_t> values;
  values.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) values.push_back(u32());
  return values;
}

std::vector<std::uint8_t> encode_blob(BlobKind kind,
                                      std::span<const std::uint8_t> payload) {
  Writer header;
  header.u16(kCodecVersion);
  header.u8(static_cast<std::uint8_t>(kind));
  header.u8(0);  // flags, reserved
  header.u64(static_cast<std::uint64_t>(payload.size()));
  std::vector<std::uint8_t> covered = header.take();  // bytes 8..19
  std::uint32_t crc = crc32(covered);
  crc = crc32(payload, crc);

  Writer out;
  out.u32(kMagic);
  out.u32(crc);
  std::vector<std::uint8_t> blob = out.take();
  blob.insert(blob.end(), covered.begin(), covered.end());
  blob.insert(blob.end(), payload.begin(), payload.end());
  return blob;
}

std::vector<std::uint8_t> decode_blob_prefix(
    BlobKind kind, std::span<const std::uint8_t> bytes, std::size_t& consumed,
    std::uint64_t max_payload_bytes) {
  if (bytes.size() < kBlobHeaderBytes) {
    throw std::runtime_error("persist: truncated header");
  }
  Reader header(bytes.first(kBlobHeaderBytes));
  if (header.u32() != kMagic) {
    throw std::runtime_error("persist: bad magic");
  }
  const std::uint32_t stored_crc = header.u32();
  const std::uint16_t version = header.u16();
  if (version != kCodecVersion) {
    throw std::runtime_error("persist: version skew (got " +
                             std::to_string(version) + ", expected " +
                             std::to_string(kCodecVersion) + ")");
  }
  const std::uint8_t stored_kind = header.u8();
  if (stored_kind != static_cast<std::uint8_t>(kind)) {
    throw std::runtime_error("persist: blob kind mismatch");
  }
  if (header.u8() != 0) {
    throw std::runtime_error("persist: reserved flags set");
  }
  const std::uint64_t payload_len = header.u64();
  // Header-alone rejection: the length decides before any payload read.
  if (payload_len > max_payload_bytes) {
    throw std::runtime_error("persist: payload oversized");
  }
  if (bytes.size() - kBlobHeaderBytes < payload_len) {
    throw std::runtime_error("persist: truncated payload");
  }
  const auto covered = bytes.subspan(8, 12);  // version..payload_len
  const auto payload =
      bytes.subspan(kBlobHeaderBytes, static_cast<std::size_t>(payload_len));
  std::uint32_t crc = crc32(covered);
  crc = crc32(payload, crc);
  if (crc != stored_crc) {
    throw std::runtime_error("persist: CRC mismatch");
  }
  consumed = kBlobHeaderBytes + static_cast<std::size_t>(payload_len);
  return std::vector<std::uint8_t>(payload.begin(), payload.end());
}

std::vector<std::uint8_t> decode_blob(BlobKind kind,
                                      std::span<const std::uint8_t> bytes,
                                      std::uint64_t max_payload_bytes) {
  std::size_t consumed = 0;
  std::vector<std::uint8_t> payload =
      decode_blob_prefix(kind, bytes, consumed, max_payload_bytes);
  if (consumed != bytes.size()) {
    throw std::runtime_error("persist: trailing bytes after blob");
  }
  return payload;
}

void write_file_atomic(const std::string& path,
                       std::span<const std::uint8_t> bytes) {
  const std::string tmp = path + ".tmp";
  {
    File out(std::fopen(tmp.c_str(), "wb"));
    if (out.f == nullptr) fail("cannot create", tmp);
    if (!bytes.empty() &&
        std::fwrite(bytes.data(), 1, bytes.size(), out.f) != bytes.size()) {
      std::remove(tmp.c_str());
      fail("short write to", tmp);
    }
    if (std::fflush(out.f) != 0 || fsync(fileno(out.f)) != 0) {
      std::remove(tmp.c_str());
      fail("cannot flush", tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    fail("cannot rename into", path);
  }
}

std::vector<std::uint8_t> read_file(const std::string& path,
                                    std::uint64_t max_bytes) {
  File in(std::fopen(path.c_str(), "rb"));
  if (in.f == nullptr) fail("cannot open", path);
  if (std::fseek(in.f, 0, SEEK_END) != 0) fail("cannot seek", path);
  const long end = std::ftell(in.f);
  if (end < 0) fail("cannot size", path);
  if (static_cast<std::uint64_t>(end) > max_bytes) {
    fail("file oversized", path);
  }
  if (std::fseek(in.f, 0, SEEK_SET) != 0) fail("cannot seek", path);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(end));
  if (!bytes.empty() &&
      std::fread(bytes.data(), 1, bytes.size(), in.f) != bytes.size()) {
    fail("short read from", path);
  }
  return bytes;
}

}  // namespace olev::persist
