// Write-ahead request journal + deterministic replay source
// (docs/PERSISTENCE.md, "Journal").
//
// olevd appends one fixed-size record per ADMITTED request -- exactly the
// inputs PricingEngine::apply consumes, in admission order, plus the
// request's TraceContext -- from the same poll(2) loop that admitted it.
// Because Theorem IV.1's update sequence is deterministic given the
// admission order, feeding a journal back through a fresh engine
// (tools/olev_replay) reproduces every ScheduleMsg bit-identically:
// any production incident becomes a local regression test.
//
// File layout: one persist::Codec frame (BlobKind::kJournalHeader) whose
// payload pins the engine shape, then raw 48-byte records:
//
//   offset  size  field           offset  size  field
//        0     4  crc32 of 4..47      16     8  round
//        4     8  ts_us               24     8  total_kw (f64 bits)
//       12     4  player              32     8  trace_id
//                                     40     8  client_send_us (i64)
//
// Each record carries its own CRC, so a torn tail (the crash case a
// write-ahead log exists for) is detected and tolerated: read_journal
// returns every intact record and flags the truncation instead of
// throwing.
//
// The writer is allocation-bounded: its buffer is reserved once in the
// constructor and append() never allocates (it flushes first when the
// buffer is full).  Appending is off every rtcheck-audited hot root --
// it runs in PricingService::dispatch, not under the engine's apply().
#pragma once

#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "persist/codec.h"

namespace olev::persist {

/// When journal bytes reach the disk (olevd --journal-fsync):
enum class FsyncPolicy : std::uint8_t {
  kNone = 0,     ///< buffered stdio only; fastest, loses tail on power cut
  kOnFlush = 1,  ///< fsync whenever the buffer flushes (default)
  kEveryRecord = 2,  ///< flush + fsync per record; true write-AHEAD durability
};

/// Engine shape pinned at the head of every journal; replay refuses a
/// journal whose shape it cannot reconstruct.
struct JournalHeader {
  std::uint8_t mode = 0;  ///< 0 = exact, 1 = mean-field
  std::uint64_t players = 0;
  std::uint64_t sections = 0;
  double epsilon = 0.0;
  std::vector<double> caps_kw;  ///< resolved per-player caps (size players)

  bool operator==(const JournalHeader&) const = default;
};

/// One admitted request, in admission order.
struct JournalRecord {
  std::int64_t ts_us = 0;  ///< service-loop admission stamp
  std::uint32_t player = 0;
  std::uint64_t round = 0;
  double total_kw = 0.0;
  std::uint64_t trace_id = 0;       ///< net::TraceContext echo
  std::int64_t client_send_us = 0;  ///< net::TraceContext echo

  bool operator==(const JournalRecord&) const = default;
};

inline constexpr std::size_t kJournalRecordBytes = 48;
/// Writer buffer: ~1365 records between flushes under FsyncPolicy::kNone.
inline constexpr std::size_t kJournalBufferBytes = 64 * 1024;

class JournalWriter {
 public:
  /// Creates/truncates `path`, writes the framed header, reserves the
  /// append buffer.  Throws std::runtime_error on I/O failure.
  JournalWriter(const std::string& path, const JournalHeader& header,
                FsyncPolicy policy = FsyncPolicy::kOnFlush);
  /// Flushes and closes; flush errors at this point are swallowed (the
  /// drain path calls flush() explicitly to observe them).
  ~JournalWriter();

  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Buffers one record (flushing first if the buffer is full).  Never
  /// allocates after construction.  Throws std::runtime_error only via
  /// that flush (disk full / closed file).
  void append(const JournalRecord& record);

  /// Drains the buffer to stdio, fflushes, and fsyncs under kOnFlush /
  /// kEveryRecord.  Idempotent.  Throws std::runtime_error on failure.
  void flush();

  std::uint64_t records() const { return records_; }

 private:
  std::FILE* file_ = nullptr;
  FsyncPolicy policy_;
  std::vector<std::uint8_t> buffer_;
  std::uint64_t records_ = 0;
};

/// A parsed journal.  `truncated` is set when the file ends mid-record or
/// the tail fails its CRC -- the records before the damage are returned.
struct JournalData {
  JournalHeader header;
  std::vector<JournalRecord> records;
  bool truncated = false;
};

/// Reads and validates a journal file.  Header damage throws (nothing can
/// be replayed without the engine shape); record-level damage truncates.
JournalData read_journal(const std::string& path,
                         std::uint64_t max_bytes = 1ull << 30);

}  // namespace olev::persist
