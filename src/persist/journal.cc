#include "persist/journal.h"

#include <cstdio>
#include <cstring>
#include <stdexcept>

#include <unistd.h>  // fsync: the durability half of FsyncPolicy

#include "obs/obs.h"

namespace olev::persist {
namespace {

std::vector<std::uint8_t> encode_header(const JournalHeader& header) {
  Writer w;
  w.u8(header.mode);
  w.u64(header.players);
  w.u64(header.sections);
  w.f64(header.epsilon);
  w.f64_vector(header.caps_kw);
  return w.take();
}

JournalHeader decode_header(std::span<const std::uint8_t> payload) {
  Reader r(payload);
  JournalHeader header;
  header.mode = r.u8();
  header.players = r.u64();
  header.sections = r.u64();
  header.epsilon = r.f64();
  header.caps_kw = r.f64_vector(8'000'000);
  if (!r.exhausted()) {
    throw std::runtime_error("persist: trailing bytes in journal header");
  }
  if (header.mode > 1 || header.players == 0 || header.sections == 0 ||
      header.caps_kw.size() != header.players) {
    throw std::runtime_error("persist: journal header inconsistent");
  }
  return header;
}

/// Serializes `record` into a caller-owned 48-byte slot (no allocation;
/// append() runs on the service loop with a pre-reserved buffer).
void encode_record(const JournalRecord& record,
                   std::uint8_t (&out)[kJournalRecordBytes]) {
  auto put_u32 = [&out](std::size_t at, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out[at + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(v >> (8 * i));
    }
  };
  auto put_u64 = [&out](std::size_t at, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out[at + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(v >> (8 * i));
    }
  };
  put_u64(4, static_cast<std::uint64_t>(record.ts_us));
  put_u32(12, record.player);
  put_u64(16, record.round);
  std::uint64_t kw_bits;
  std::memcpy(&kw_bits, &record.total_kw, sizeof(kw_bits));
  put_u64(24, kw_bits);
  put_u64(32, record.trace_id);
  put_u64(40, static_cast<std::uint64_t>(record.client_send_us));
  put_u32(0, crc32({out + 4, kJournalRecordBytes - 4}));
}

JournalRecord decode_record(std::span<const std::uint8_t> bytes) {
  Reader r(bytes.subspan(4));
  JournalRecord record;
  record.ts_us = r.i64();
  record.player = r.u32();
  record.round = r.u64();
  record.total_kw = r.f64();
  record.trace_id = r.u64();
  record.client_send_us = r.i64();
  return record;
}

}  // namespace

JournalWriter::JournalWriter(const std::string& path,
                             const JournalHeader& header, FsyncPolicy policy)
    : policy_(policy) {
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    throw std::runtime_error("persist: cannot create journal '" + path + "'");
  }
  buffer_.reserve(kJournalBufferBytes + kJournalRecordBytes);
  const std::vector<std::uint8_t> frame =
      encode_blob(BlobKind::kJournalHeader, encode_header(header));
  if (std::fwrite(frame.data(), 1, frame.size(), file_) != frame.size()) {
    std::fclose(file_);
    file_ = nullptr;
    throw std::runtime_error("persist: cannot write journal header '" + path +
                             "'");
  }
  // The header hits the disk before the first record under any policy: a
  // journal whose shape is unreadable cannot be replayed at all.
  if (std::fflush(file_) != 0 ||
      (policy_ != FsyncPolicy::kNone && fsync(fileno(file_)) != 0)) {
    std::fclose(file_);
    file_ = nullptr;
    throw std::runtime_error("persist: cannot flush journal header '" + path +
                             "'");
  }
}

JournalWriter::~JournalWriter() {
  if (file_ == nullptr) return;
  try {
    flush();
  } catch (const std::exception&) {
    // Destructor path: the drain calls flush() explicitly to observe
    // errors; here the close below is all that is left to do.
  }
  std::fclose(file_);
  file_ = nullptr;
}

void JournalWriter::append(const JournalRecord& record) {
  if (buffer_.size() + kJournalRecordBytes > kJournalBufferBytes) {
    flush();
  }
  std::uint8_t slot[kJournalRecordBytes];
  encode_record(record, slot);
  // Reserved in the constructor past the flush threshold, so this insert
  // never reallocates: append() is allocation-free on the service loop.
  buffer_.insert(buffer_.end(), slot, slot + kJournalRecordBytes);
  ++records_;
  OLEV_OBS_COUNTER(journal_records, "persist.journal.records");
  OLEV_OBS_ADD(journal_records, 1);
  if (policy_ == FsyncPolicy::kEveryRecord) flush();
}

void JournalWriter::flush() {
  if (file_ == nullptr) {
    throw std::runtime_error("persist: journal already closed");
  }
  if (!buffer_.empty()) {
    if (std::fwrite(buffer_.data(), 1, buffer_.size(), file_) !=
        buffer_.size()) {
      throw std::runtime_error("persist: short journal write");
    }
    buffer_.clear();
  }
  if (std::fflush(file_) != 0) {
    throw std::runtime_error("persist: journal flush failed");
  }
  if (policy_ != FsyncPolicy::kNone && fsync(fileno(file_)) != 0) {
    throw std::runtime_error("persist: journal fsync failed");
  }
}

JournalData read_journal(const std::string& path, std::uint64_t max_bytes) {
  const std::vector<std::uint8_t> bytes = read_file(path, max_bytes);
  std::size_t consumed = 0;
  const std::vector<std::uint8_t> header_payload = decode_blob_prefix(
      BlobKind::kJournalHeader, std::span<const std::uint8_t>(bytes), consumed);
  JournalData data;
  data.header = decode_header(header_payload);
  std::span<const std::uint8_t> tail(bytes.data() + consumed,
                                     bytes.size() - consumed);
  while (!tail.empty()) {
    if (tail.size() < kJournalRecordBytes) {
      data.truncated = true;  // torn tail: crash mid-record
      break;
    }
    const auto slot = tail.first(kJournalRecordBytes);
    Reader crc_reader(slot);
    const std::uint32_t stored_crc = crc_reader.u32();
    if (crc32(slot.subspan(4)) != stored_crc) {
      data.truncated = true;  // torn or corrupt record; stop, keep the rest
      break;
    }
    data.records.push_back(decode_record(slot));
    tail = tail.subspan(kJournalRecordBytes);
  }
  return data;
}

}  // namespace olev::persist
