#include "persist/snapshot.h"

#include <stdexcept>

#include "obs/flight.h"
#include "obs/obs.h"
#include "obs/span.h"
#include "persist/codec.h"

namespace olev::persist {
namespace {

/// Decode-side allocation bound for the double vectors (schedule, caps):
/// 8M entries is the 64 MiB payload ceiling expressed in doubles.
constexpr std::size_t kMaxDoubles = 8'000'000;

}  // namespace

std::vector<std::uint8_t> encode(const ServiceSnapshot& snapshot) {
  Writer w;
  const EngineSnapshot& engine = snapshot.engine;
  w.u8(engine.mode);
  w.u64(engine.players);
  w.u64(engine.sections);
  w.f64(engine.epsilon);
  w.f64_vector(engine.caps_kw);
  w.f64_vector(engine.schedule_kw);
  w.u64(engine.updates);
  w.f64(engine.residual);
  w.u8(engine.converged);
  w.f64(engine.total_load_kw);
  w.u8(snapshot.announcing_started);
  w.u8(snapshot.converged_broadcast);
  w.u32_vector(snapshot.bound_players);
  return w.take();
}

ServiceSnapshot decode(std::span<const std::uint8_t> payload) {
  Reader r(payload);
  ServiceSnapshot snapshot;
  EngineSnapshot& engine = snapshot.engine;
  engine.mode = r.u8();
  engine.players = r.u64();
  engine.sections = r.u64();
  engine.epsilon = r.f64();
  engine.caps_kw = r.f64_vector(kMaxDoubles);
  engine.schedule_kw = r.f64_vector(kMaxDoubles);
  engine.updates = r.u64();
  engine.residual = r.f64();
  engine.converged = r.u8();
  engine.total_load_kw = r.f64();
  snapshot.announcing_started = r.u8();
  snapshot.converged_broadcast = r.u8();
  snapshot.bound_players = r.u32_vector(kMaxDoubles);
  if (!r.exhausted()) {
    throw std::runtime_error("persist: trailing bytes in snapshot payload");
  }
  // Cross-field consistency: the CRC already vouches for transport
  // integrity, so these catch an encoder bug (or a hand-crafted blob), not
  // line noise.
  if (engine.mode > 1) {
    throw std::runtime_error("persist: snapshot engine mode out of range");
  }
  if (engine.players == 0 || engine.sections == 0) {
    throw std::runtime_error("persist: snapshot players/sections zero");
  }
  if (engine.caps_kw.size() != engine.players) {
    throw std::runtime_error("persist: snapshot caps size != players");
  }
  if (engine.schedule_kw.size() != engine.players * engine.sections) {
    throw std::runtime_error("persist: snapshot schedule size mismatch");
  }
  for (const std::uint32_t player : snapshot.bound_players) {
    if (player >= engine.players) {
      throw std::runtime_error("persist: snapshot bound player out of range");
    }
  }
  return snapshot;
}

void save(const std::string& path, const ServiceSnapshot& snapshot) {
  const obs::Stopwatch wall;
  const std::vector<std::uint8_t> payload = encode(snapshot);
  const std::vector<std::uint8_t> blob = encode_blob(BlobKind::kSnapshot, payload);
  write_file_atomic(path, blob);
  const auto elapsed_us = static_cast<std::uint64_t>(wall.seconds() * 1e6);
  obs::flight::record(obs::flight::Event::kSnapshotSave, payload.size(),
                      elapsed_us);
  OLEV_OBS_ONLY({
    OLEV_OBS_GAUGE(bytes, "persist.snapshot.bytes");
    OLEV_OBS_SET(bytes, static_cast<double>(blob.size()));
    OLEV_OBS_GAUGE(save_us, "persist.snapshot.save_us");
    OLEV_OBS_SET(save_us, static_cast<double>(elapsed_us));
  });
}

ServiceSnapshot load(const std::string& path) {
  const obs::Stopwatch wall;
  const std::vector<std::uint8_t> blob = read_file(path);
  const std::vector<std::uint8_t> payload =
      decode_blob(BlobKind::kSnapshot, blob);
  ServiceSnapshot snapshot = decode(payload);
  const auto elapsed_us = static_cast<std::uint64_t>(wall.seconds() * 1e6);
  obs::flight::record(obs::flight::Event::kSnapshotLoad, payload.size(),
                      elapsed_us);
  OLEV_OBS_ONLY({
    OLEV_OBS_GAUGE(bytes, "persist.snapshot.bytes");
    OLEV_OBS_SET(bytes, static_cast<double>(blob.size()));
    OLEV_OBS_GAUGE(load_us, "persist.snapshot.load_us");
    OLEV_OBS_SET(load_us, static_cast<double>(elapsed_us));
  });
  return snapshot;
}

}  // namespace olev::persist
