// Versioned engine/service snapshots: the durable half of olevd's
// zero-downtime restart (docs/PERSISTENCE.md).
//
// A ServiceSnapshot is everything the grid controller must remember to
// resume a half-converged pricing round exactly where SIGTERM interrupted
// it: the engine's schedule matrix and convergence bookkeeping (announce
// cursor = updates mod players, round, residual, converged flag, the
// mean-field aggregate), plus the protocol state of the grid-paced session
// (which players were bound, whether announcements had started, whether
// CONVERGED was already broadcast).
//
// Doubles are stored as raw IEEE-754 bit patterns (persist::Writer::f64),
// so save -> load -> save is bit-identical -- the property that lets
// tests/test_persist.cc pin a resumed session's ScheduleMsg stream equal
// to an uninterrupted run's, bit for bit.
//
// save() is called from PricingService::begin_drain() AFTER the last
// admitted request is answered -- a cold path, off every rtcheck-audited
// hot root -- and writes via write_file_atomic (tmp + fsync + rename), so
// a crash mid-save leaves the previous snapshot intact.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace olev::persist {

/// PricingEngine state (src/svc/engine.h), engine-layer fields only.
struct EngineSnapshot {
  std::uint8_t mode = 0;  ///< 0 = exact, 1 = mean-field (EngineMode order)
  std::uint64_t players = 0;
  std::uint64_t sections = 0;
  double epsilon = 0.0;
  std::vector<double> caps_kw;       ///< resolved per-player caps (size N)
  std::vector<double> schedule_kw;   ///< row-major N x C matrix
  std::uint64_t updates = 0;         ///< announce cursor = updates % players
  double residual = 0.0;             ///< cycle_max_delta_ at save time
  std::uint8_t converged = 0;
  double total_load_kw = 0.0;        ///< mean-field running aggregate T

  bool operator==(const EngineSnapshot&) const = default;
};

/// Engine state + the grid-paced protocol state olevd layers on top.
struct ServiceSnapshot {
  EngineSnapshot engine;
  std::uint8_t announcing_started = 0;
  std::uint8_t converged_broadcast = 0;
  /// Players bound at save time; a re-binding one of these after resume is
  /// greeted with ControlCode::kSessionResumed instead of silence.
  std::vector<std::uint32_t> bound_players;

  bool operator==(const ServiceSnapshot&) const = default;
};

/// Serializes to a BlobKind::kSnapshot payload (no frame).
std::vector<std::uint8_t> encode(const ServiceSnapshot& snapshot);

/// Parses an encode() payload; throws std::runtime_error on corruption
/// (bad lengths, schedule size disagreeing with players * sections, ...).
ServiceSnapshot decode(std::span<const std::uint8_t> payload);

/// Frames + atomically writes the snapshot; records the snapshot_save
/// flight event and the persist.snapshot.{bytes,save_us} metrics.
void save(const std::string& path, const ServiceSnapshot& snapshot);

/// Reads + validates + parses; records snapshot_load and
/// persist.snapshot.load_us.  Throws std::runtime_error on any failure.
ServiceSnapshot load(const std::string& path);

}  // namespace olev::persist
