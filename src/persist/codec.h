// persist::Codec -- the framing discipline every durable artifact in this
// repo shares (docs/PERSISTENCE.md).
//
// A blob on disk is a fixed 20-byte header followed by the payload:
//
//   offset  size  field        meaning
//        0     4  magic        0x4F4C4556 ("OLEV" when read LE)
//        4     4  crc32        CRC-32 (0xEDB88320) over bytes 8..end
//        8     2  version      kCodecVersion; any other value is rejected
//       10     1  kind         BlobKind (snapshot / journal header)
//       11     1  flags        reserved, must be 0 in version 1
//       12     8  payload_len  little-endian byte count of the payload
//
// The contract mirrors svc::FrameDecoder's poisoning (svc/frame.h): a
// truncated, oversized, or version-skewed blob is rejected from the header
// alone -- before any payload allocation -- and the CRC covers every byte
// after the checksum field, so a single flipped bit anywhere (version,
// kind, flags, length, payload) fails decode.  All decode failures throw
// std::runtime_error; nothing here ever crashes on hostile bytes (pinned
// under ASan by tests/test_persist_fuzz.cc).
//
// Like net/message.cc, multi-byte integers are little-endian and doubles
// travel as their raw IEEE-754 bit patterns, which is what makes
// snapshot round trips bit-identical rather than merely approximately
// equal.
//
// File I/O note: this layer (and the sinks built on it) uses C stdio only
// -- lint rule R5 reserves the raw read/write syscalls for src/svc, and
// rule R8 reserves data-path file I/O for src/persist and the obs sinks.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace olev::persist {

inline constexpr std::uint32_t kMagic = 0x4F4C4556;  // "OLEV" little-endian
inline constexpr std::uint16_t kCodecVersion = 1;
inline constexpr std::size_t kBlobHeaderBytes = 20;
/// Header-alone rejection bound: a payload_len past this is hostile or
/// corrupt no matter what follows (a city-scale snapshot is ~megabytes).
inline constexpr std::uint64_t kDefaultMaxPayloadBytes = 64ull << 20;

/// What a blob claims to contain; decode rejects a kind mismatch so a
/// journal file can never be fed to the snapshot loader (or vice versa).
enum class BlobKind : std::uint8_t {
  kSnapshot = 1,       ///< full ServiceSnapshot (persist/snapshot.h)
  kJournalHeader = 2,  ///< journal preamble; records follow the frame
};

/// CRC-32 (reflected polynomial 0xEDB88320, zlib-compatible).  `seed`
/// chains incremental updates: crc32(b, crc32(a)) == crc32(a+b).
std::uint32_t crc32(std::span<const std::uint8_t> bytes,
                    std::uint32_t seed = 0);

/// Little-endian byte-sink mirroring net/message.cc's Writer; doubles are
/// written as raw bit patterns (bit-identical round trip).
class Writer {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);
  void f64_vector(const std::vector<double>& values);
  void u32_vector(const std::vector<std::uint32_t>& values);
  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked little-endian reader; every underrun throws
/// std::runtime_error (never reads past the span).
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint8_t u8() { return take(1)[0]; }
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64();
  std::vector<double> f64_vector(std::size_t max_count);
  std::vector<std::uint32_t> u32_vector(std::size_t max_count);
  std::size_t remaining() const { return bytes_.size() - offset_; }
  bool exhausted() const { return offset_ == bytes_.size(); }

 private:
  std::span<const std::uint8_t> take(std::size_t n);

  std::span<const std::uint8_t> bytes_;
  std::size_t offset_ = 0;
};

/// Frames `payload` as a versioned blob (header above + payload).
std::vector<std::uint8_t> encode_blob(BlobKind kind,
                                      std::span<const std::uint8_t> payload);

/// Validates a blob that must span `bytes` exactly (snapshot files) and
/// returns the payload.  Throws std::runtime_error on any of: truncated
/// header, bad magic, version skew, unknown kind, kind mismatch, nonzero
/// flags, payload_len over `max_payload_bytes` or disagreeing with the
/// actual byte count, CRC mismatch.
std::vector<std::uint8_t> decode_blob(
    BlobKind kind, std::span<const std::uint8_t> bytes,
    std::uint64_t max_payload_bytes = kDefaultMaxPayloadBytes);

/// Same validation, but tolerates trailing data after the framed payload
/// (journal files append records behind the header frame).  On success
/// `consumed` is header + payload size.
std::vector<std::uint8_t> decode_blob_prefix(
    BlobKind kind, std::span<const std::uint8_t> bytes, std::size_t& consumed,
    std::uint64_t max_payload_bytes = kDefaultMaxPayloadBytes);

/// Atomic whole-file write: the bytes land in `path + ".tmp"`, are flushed
/// and fsync'd, then renamed over `path` -- a crash leaves either the old
/// file or the new one, never a torn mix.  Throws std::runtime_error on
/// any I/O failure (the temp file is removed on the error path).
void write_file_atomic(const std::string& path,
                       std::span<const std::uint8_t> bytes);

/// Reads a whole file.  The size is checked against `max_bytes` before any
/// buffer is sized (oversized files are rejected from the stat alone).
std::vector<std::uint8_t> read_file(
    const std::string& path,
    std::uint64_t max_bytes = kBlobHeaderBytes + kDefaultMaxPayloadBytes);

}  // namespace olev::persist
