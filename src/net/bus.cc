#include "net/bus.h"

#include <limits>

#include "obs/obs.h"

// gcc 12's -Wmaybe-uninitialized fires inside push_heap/pop_heap when the
// element type holds a std::variant of vector-bearing messages: the heap
// sift moves are flagged even though every InFlight is fully constructed
// before queue_.push.  Known gcc false-positive family (PR105562 et al.);
// suppressed for this translation unit only so -DOLEV_WERROR=ON stays
// usable.  clang and gcc>=13 compile this file clean without the pragma.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace olev::net {

MessageBus::MessageBus(LinkModel link) : link_(link), rng_(link.seed) {}

std::uint64_t MessageBus::send(NodeId from, NodeId to, double now_s,
                               Message payload) {
  const std::uint64_t seq = next_seq_++;
  ++stats_.sent;
  OLEV_OBS_COUNTER(obs_sent, "net.bus.messages_sent");
  OLEV_OBS_ADD(obs_sent, 1);

  std::vector<std::uint8_t> wire = serialize(payload);
  stats_.bytes_sent += wire.size();

  if (rng_.bernoulli(link_.drop_probability)) {
    ++stats_.dropped;
    return seq;
  }

  InFlight flight;
  flight.arrival_s = now_s + link_.base_latency_s +
                     (link_.jitter_s > 0.0 ? rng_.uniform(0.0, link_.jitter_s) : 0.0);
  flight.seq = seq;
  flight.envelope = Envelope{from, to, seq, now_s, std::move(payload)};
  flight.wire = std::move(wire);
  queue_.push(std::move(flight));
  return seq;
}

std::vector<Envelope> MessageBus::poll(NodeId node, double now_s) {
  std::vector<Envelope> delivered;
  // The queue is globally time-ordered; pull everything due, keep what is
  // not addressed to `node` in a side buffer and re-insert it.
  std::vector<InFlight> requeue;
  while (!queue_.empty() && queue_.top().arrival_s <= now_s) {
    InFlight flight = queue_.top();
    queue_.pop();
    if (flight.envelope.to == node) {
      // Round-trip through the wire bytes: delivery hands the receiver a
      // deserialized copy, as a socket transport would.
      flight.envelope.payload = deserialize(flight.wire);
      stats_.bytes_delivered += flight.wire.size();
      delivered.push_back(std::move(flight.envelope));
      ++stats_.delivered;
    } else {
      requeue.push_back(std::move(flight));
    }
  }
  for (auto& flight : requeue) queue_.push(std::move(flight));
  return delivered;
}

double MessageBus::next_arrival_s() const {
  return queue_.empty() ? std::numeric_limits<double>::infinity()
                        : queue_.top().arrival_s;
}

}  // namespace olev::net
