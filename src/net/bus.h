// An in-process V2I message bus with a configurable link model: fixed base
// latency plus uniform jitter, and i.i.d. message drops.  Every payload is
// serialized on send and deserialized on delivery, so the protocol layer is
// exercised exactly as it would be over a socket.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "net/message.h"
#include "util/rng.h"

namespace olev::net {

struct LinkModel {
  double base_latency_s = 0.02;   ///< DSRC/LTE one-way latency
  double jitter_s = 0.01;         ///< uniform extra delay in [0, jitter]
  double drop_probability = 0.0;  ///< i.i.d. loss rate
  std::uint64_t seed = 0xb05;
};

struct BusStats {
  std::size_t sent = 0;
  std::size_t dropped = 0;
  std::size_t delivered = 0;
  std::size_t bytes_sent = 0;
  /// Wire bytes of envelopes actually handed to a receiver by poll();
  /// bytes_sent minus dropped and still-in-flight payload bytes.
  std::size_t bytes_delivered = 0;
};

class MessageBus {
 public:
  explicit MessageBus(LinkModel link = {});

  /// Queues `payload` from -> to at `now`; may be dropped per the link
  /// model.  Returns the assigned sequence number.
  std::uint64_t send(NodeId from, NodeId to, double now_s, Message payload);

  /// Delivers every envelope addressed to `node` whose arrival time has
  /// passed, in arrival order.
  std::vector<Envelope> poll(NodeId node, double now_s);

  /// Earliest pending arrival time (to any node); +inf when idle.  Lets a
  /// driver advance a virtual clock without busy-waiting.
  double next_arrival_s() const;

  const BusStats& stats() const { return stats_; }
  std::size_t in_flight() const { return queue_.size(); }

 private:
  struct InFlight {
    double arrival_s;
    std::uint64_t seq;
    Envelope envelope;
    std::vector<std::uint8_t> wire;  ///< serialized payload

    bool operator>(const InFlight& other) const {
      return arrival_s != other.arrival_s ? arrival_s > other.arrival_s
                                          : seq > other.seq;
    }
  };

  LinkModel link_;
  util::Rng rng_;
  std::priority_queue<InFlight, std::vector<InFlight>, std::greater<>> queue_;
  BusStats stats_;
  std::uint64_t next_seq_ = 1;
};

}  // namespace olev::net
