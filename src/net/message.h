// V2I protocol messages between OLEVs and the smart grid.
//
// The paper's framework is distributed: "the OLEVs update their power
// request according to the updated power payment function that is
// calculated by the smart grid", over IEEE 802.11p / LTE V2I links.  These
// are the wire messages of that loop.  A compact binary serialization is
// provided (tag byte + little-endian payload) so the message layer behaves
// like a real protocol: everything that crosses the bus round-trips through
// bytes, and the tests fuzz that round trip.
#pragma once

#include <cstdint>
#include <span>
#include <variant>
#include <vector>

namespace olev::net {

using NodeId = std::uint32_t;
inline constexpr NodeId kGridNode = 0;  ///< the smart grid's well-known address

/// Periodic position/SOC report (Section IV-A: OLEVs "inform their current
/// positions and velocities").
struct BeaconMsg {
  std::uint32_t player = 0;
  double position_m = 0.0;
  double velocity_mps = 0.0;
  double soc = 0.0;

  bool operator==(const BeaconMsg&) const = default;
};

/// Grid -> OLEV n: the announced payment function Psi_n, represented by the
/// data needed to evaluate it locally -- the other players' per-section
/// aggregate load b (the cost parameters are public).
struct PaymentFunctionMsg {
  std::uint32_t player = 0;
  std::uint64_t round = 0;
  std::vector<double> others_load_kw;

  bool operator==(const PaymentFunctionMsg&) const = default;
};

/// Optional trace context carried on a request (docs/SERVING.md, "Trace
/// context").  `trace_id == 0` means untraced; the id is an opaque client
/// token echoed verbatim on the reply so a caller can correlate server-side
/// phase timings with its own wall-clock measurement.  `client_send_us` is
/// the client's monotonic send stamp (obs::now_micros() domain) -- opaque to
/// the server, echoed for the client's own one-way-delay bookkeeping.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::int64_t client_send_us = 0;

  bool operator==(const TraceContext&) const = default;
};

/// Server-side request decomposition returned on every ScheduleMsg
/// (docs/SERVING.md, "Phase timings"): admit (parse/validate/enqueue), queue
/// (enqueue -> batch fire), batch (batch fire -> this entry's solve), solve
/// (engine apply).  Microseconds; u32 saturates at ~71 minutes, far past any
/// request deadline.  Write-out time cannot ride in the reply it measures,
/// so it is exported only as the server's `svc.phase.write_us` histogram.
struct PhaseTimings {
  std::uint32_t admit_us = 0;
  std::uint32_t queue_us = 0;
  std::uint32_t batch_us = 0;
  std::uint32_t solve_us = 0;

  bool operator==(const PhaseTimings&) const = default;
};

/// OLEV n -> grid: the best-response total power request p_n*.
struct PowerRequestMsg {
  std::uint32_t player = 0;
  std::uint64_t round = 0;
  double total_kw = 0.0;
  TraceContext trace;

  bool operator==(const PowerRequestMsg&) const = default;
};

/// Grid -> OLEV n: the water-filled schedule row and the payment due.
/// `trace_id` echoes the request's TraceContext (0 when untraced); `phases`
/// carries the server-side decomposition of this request's lifetime.
struct ScheduleMsg {
  std::uint32_t player = 0;
  std::uint64_t round = 0;
  std::vector<double> row_kw;
  double payment = 0.0;
  std::uint64_t trace_id = 0;
  PhaseTimings phases;

  bool operator==(const ScheduleMsg&) const = default;
};

/// Service-layer control codes (src/svc): explicit backpressure and error
/// signalling so a client never hangs on a request the grid will not serve.
enum class ControlCode : std::uint8_t {
  kRetryLater = 1,       ///< admission queue full; back off and resend
  kDeadlineExpired = 2,  ///< request aged out before its batch was applied
  kMalformed = 3,        ///< unparseable/oversized frame; connection closes
  kBadRequest = 4,       ///< well-formed but invalid (unknown player, NaN)
  kDraining = 5,         ///< server is shutting down gracefully
  kConverged = 6,        ///< grid-paced session reached its fixed point
  kSessionResumed = 7,   ///< beacon re-attached a known player binding
                         ///< (reconnect, or first bind after a snapshot
                         ///< resume); `round` carries the engine's update
                         ///< count so the client can realign its cursor
};

/// Grid -> OLEV: an out-of-band control response.  `player`/`round` echo the
/// request being answered (0 when the control is connection-scoped).
struct ControlMsg {
  ControlCode code = ControlCode::kRetryLater;
  std::uint32_t player = 0;
  std::uint64_t round = 0;

  bool operator==(const ControlMsg&) const = default;
};

using Message = std::variant<BeaconMsg, PaymentFunctionMsg, PowerRequestMsg,
                             ScheduleMsg, ControlMsg>;

/// Serializes to the binary wire format.
std::vector<std::uint8_t> serialize(const Message& message);

/// Parses the wire format; throws std::runtime_error on malformed input.
Message deserialize(std::span<const std::uint8_t> bytes);

/// An addressed, timestamped message in flight.
struct Envelope {
  NodeId from = 0;
  NodeId to = 0;
  std::uint64_t seq = 0;      ///< sender-assigned sequence number
  double send_time_s = 0.0;
  Message payload;
};

}  // namespace olev::net
