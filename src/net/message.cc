#include "net/message.h"

#include <cstring>
#include <stdexcept>

namespace olev::net {
namespace {

enum class Tag : std::uint8_t {
  kBeacon = 1,
  kPaymentFunction = 2,
  kPowerRequest = 3,
  kSchedule = 4,
  kControl = 5,
};

class Writer {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  void f64_vector(const std::vector<double>& values) {
    u32(static_cast<std::uint32_t>(values.size()));
    for (double v : values) f64(v);
  }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint8_t u8() { return take(1)[0]; }
  std::uint32_t u32() {
    const auto b = take(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(b[i]) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    const auto b = take(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
    return v;
  }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::vector<double> f64_vector() {
    const std::uint32_t count = u32();
    // Sanity cap: one million sections is far past any realistic corridor;
    // reject rather than allocate unbounded memory from a corrupt length.
    if (count > 1'000'000) throw std::runtime_error("message: vector too long");
    if (bytes_.size() - offset_ < static_cast<std::size_t>(count) * 8) {
      throw std::runtime_error("message: truncated vector");
    }
    std::vector<double> values;
    values.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) values.push_back(f64());
    return values;
  }
  bool exhausted() const { return offset_ == bytes_.size(); }

 private:
  std::span<const std::uint8_t> take(std::size_t n) {
    if (bytes_.size() - offset_ < n) throw std::runtime_error("message: truncated");
    const auto view = bytes_.subspan(offset_, n);
    offset_ += n;
    return view;
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t offset_ = 0;
};

}  // namespace

std::vector<std::uint8_t> serialize(const Message& message) {
  Writer w;
  std::visit(
      [&w](const auto& msg) {
        using T = std::decay_t<decltype(msg)>;
        if constexpr (std::is_same_v<T, BeaconMsg>) {
          w.u8(static_cast<std::uint8_t>(Tag::kBeacon));
          w.u32(msg.player);
          w.f64(msg.position_m);
          w.f64(msg.velocity_mps);
          w.f64(msg.soc);
        } else if constexpr (std::is_same_v<T, PaymentFunctionMsg>) {
          w.u8(static_cast<std::uint8_t>(Tag::kPaymentFunction));
          w.u32(msg.player);
          w.u64(msg.round);
          w.f64_vector(msg.others_load_kw);
        } else if constexpr (std::is_same_v<T, PowerRequestMsg>) {
          w.u8(static_cast<std::uint8_t>(Tag::kPowerRequest));
          w.u32(msg.player);
          w.u64(msg.round);
          w.f64(msg.total_kw);
          w.u64(msg.trace.trace_id);
          w.u64(static_cast<std::uint64_t>(msg.trace.client_send_us));
        } else if constexpr (std::is_same_v<T, ScheduleMsg>) {
          w.u8(static_cast<std::uint8_t>(Tag::kSchedule));
          w.u32(msg.player);
          w.u64(msg.round);
          w.f64_vector(msg.row_kw);
          w.f64(msg.payment);
          w.u64(msg.trace_id);
          w.u32(msg.phases.admit_us);
          w.u32(msg.phases.queue_us);
          w.u32(msg.phases.batch_us);
          w.u32(msg.phases.solve_us);
        } else if constexpr (std::is_same_v<T, ControlMsg>) {
          w.u8(static_cast<std::uint8_t>(Tag::kControl));
          w.u8(static_cast<std::uint8_t>(msg.code));
          w.u32(msg.player);
          w.u64(msg.round);
        }
      },
      message);
  return w.take();
}

Message deserialize(std::span<const std::uint8_t> bytes) {
  Reader r(bytes);
  const auto tag = static_cast<Tag>(r.u8());
  Message message;
  switch (tag) {
    case Tag::kBeacon: {
      BeaconMsg msg;
      msg.player = r.u32();
      msg.position_m = r.f64();
      msg.velocity_mps = r.f64();
      msg.soc = r.f64();
      message = msg;
      break;
    }
    case Tag::kPaymentFunction: {
      PaymentFunctionMsg msg;
      msg.player = r.u32();
      msg.round = r.u64();
      msg.others_load_kw = r.f64_vector();
      message = msg;
      break;
    }
    case Tag::kPowerRequest: {
      PowerRequestMsg msg;
      msg.player = r.u32();
      msg.round = r.u64();
      msg.total_kw = r.f64();
      msg.trace.trace_id = r.u64();
      msg.trace.client_send_us = static_cast<std::int64_t>(r.u64());
      message = msg;
      break;
    }
    case Tag::kSchedule: {
      ScheduleMsg msg;
      msg.player = r.u32();
      msg.round = r.u64();
      msg.row_kw = r.f64_vector();
      msg.payment = r.f64();
      msg.trace_id = r.u64();
      msg.phases.admit_us = r.u32();
      msg.phases.queue_us = r.u32();
      msg.phases.batch_us = r.u32();
      msg.phases.solve_us = r.u32();
      message = msg;
      break;
    }
    case Tag::kControl: {
      ControlMsg msg;
      const std::uint8_t code = r.u8();
      if (code < static_cast<std::uint8_t>(ControlCode::kRetryLater) ||
          code > static_cast<std::uint8_t>(ControlCode::kSessionResumed)) {
        throw std::runtime_error("message: unknown control code");
      }
      msg.code = static_cast<ControlCode>(code);
      msg.player = r.u32();
      msg.round = r.u64();
      message = msg;
      break;
    }
    default:
      throw std::runtime_error("message: unknown tag");
  }
  if (!r.exhausted()) throw std::runtime_error("message: trailing bytes");
  return message;
}

}  // namespace olev::net
