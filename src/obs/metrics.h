// Metrics registry: named counters, gauges and fixed-bucket histograms with
// per-thread-striped storage, aggregated only at scrape time.
//
// Design constraints (docs/OBSERVABILITY.md):
//   - the write path is a single relaxed atomic RMW on a cache-line-padded
//     stripe picked by a thread-local id, so concurrent writers never
//     contend and the solver hot path stays at recorded bench parity;
//   - the registry hands out stable references (call sites cache them in
//     function-local statics via the OLEV_OBS_* macros in obs/obs.h), so
//     the name lookup happens once per process, not per increment;
//   - reads (snapshot) sum the stripes; they are racy-by-design against
//     in-flight writers but every access is atomic, so the result is a
//     consistent "at least everything that happened-before" view and the
//     layer is ThreadSanitizer-clean;
//   - reset() zeroes the stripes in place.  The registry is process-global
//     and cumulative: scoping a measurement means snapshot-before /
//     snapshot-after or an explicit reset at a quiescent point.
//
// This library sits BELOW src/util (the thread pool is itself instrumented),
// so it depends on nothing but the standard library.  The OLEV_OBS=OFF
// compile-out contract mirrors src/util/audit.h: this support code is always
// compiled so any build flavor can link and scrape, and only the
// instrumentation sites (the macros in obs/obs.h) vanish.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/sync.h"

namespace olev::obs {

/// Number of independent stripes per metric.  More stripes = less false
/// sharing under heavy concurrency, more memory per metric (one cache line
/// each) and more work per scrape.  16 covers the sweep pools we spawn.
inline constexpr std::size_t kStripes = 16;

/// Stable small id for the calling thread, used to pick a stripe.  Ids are
/// handed out in registration order and never reused.
std::size_t thread_stripe();

namespace detail {
struct alignas(64) U64Cell {
  std::atomic<std::uint64_t> value{0};
};
struct alignas(64) F64Cell {
  std::atomic<double> value{0.0};
};
/// Relaxed add for atomic<double> via compare-exchange (fetch_add on
/// floating atomics is C++20 but not universally lock-free; CAS always is
/// where the platform has 64-bit CAS).
void atomic_add(std::atomic<double>& cell, double delta);
}  // namespace detail

/// Monotone event count.  add() is wait-free modulo the stripe's RMW.
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  const std::string& name() const { return name_; }

  void add(std::uint64_t n = 1) {
    cells_[thread_stripe() % kStripes].value.fetch_add(
        n, std::memory_order_relaxed);
  }

  /// Sum over stripes (racy-but-atomic snapshot).
  std::uint64_t total() const;
  void reset();

 private:
  std::string name_;
  std::array<detail::U64Cell, kStripes> cells_;
};

/// Last-writer-wins instantaneous value (queue depths, utilization).
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  const std::string& name() const { return name_; }
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) { detail::atomic_add(value_, delta); }
  double get() const { return value_.load(std::memory_order_relaxed); }
  void reset() { set(0.0); }

 private:
  std::string name_;
  std::atomic<double> value_{0.0};
};

/// Scrape-time view of one histogram.  `bounds` are inclusive upper bucket
/// edges in ascending order; counts has bounds.size() + 1 entries, the last
/// being the overflow bucket (> bounds.back()).  A value v lands in the
/// first bucket with v <= bounds[i].
struct HistogramSnapshot {
  std::string name;
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;
  std::uint64_t count = 0;
  double sum = 0.0;

  double mean() const { return count == 0 ? 0.0 : sum / static_cast<double>(count); }
};

/// Fixed-bucket histogram.  observe() is two relaxed RMWs plus a binary
/// search over the (small, immutable) bound list.
class Histogram {
 public:
  Histogram(std::string name, std::vector<double> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  const std::string& name() const { return name_; }
  const std::vector<double>& bounds() const { return bounds_; }

  void observe(double v);
  HistogramSnapshot snapshot() const;
  void reset();

 private:
  struct Stripe {
    std::vector<detail::U64Cell> counts;  ///< bounds.size() + 1 entries
    detail::F64Cell sum;
  };

  std::string name_;
  std::vector<double> bounds_;
  std::array<Stripe, kStripes> stripes_;
};

struct CounterSnapshot {
  std::string name;
  std::uint64_t value = 0;
};
struct GaugeSnapshot {
  std::string name;
  double value = 0.0;
};

/// Full scrape, sorted by metric name within each kind.
struct MetricsSnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// Counter value by exact name; 0 when absent.
  std::uint64_t counter_value(std::string_view name) const;
  /// Histogram by exact name; nullptr when absent.
  const HistogramSnapshot* histogram(std::string_view name) const;
};

/// Process-global metric registry.  Metric objects live for the process
/// lifetime, so the references handed out stay valid forever.
class Registry {
 public:
  static Registry& instance();

  Counter& counter(std::string_view name) OLEV_EXCLUDES(mutex_);
  Gauge& gauge(std::string_view name) OLEV_EXCLUDES(mutex_);
  /// First registration fixes the bucket bounds; later calls with the same
  /// name return the existing histogram regardless of the bounds passed.
  Histogram& histogram(std::string_view name, std::initializer_list<double> bounds)
      OLEV_EXCLUDES(mutex_);
  Histogram& histogram(std::string_view name, std::vector<double> bounds)
      OLEV_EXCLUDES(mutex_);

  MetricsSnapshot snapshot() const OLEV_EXCLUDES(mutex_);
  /// Explicit reset semantics: zeroes every metric in place (names and
  /// bucket layouts survive).  Intended for scoping a measurement at a
  /// quiescent point; concurrent writers lose at most in-flight deltas.
  void reset() OLEV_EXCLUDES(mutex_);

 private:
  Registry() = default;

  // mutex_ guards only the name -> metric maps (registration and scrape);
  // the metric objects themselves are written lock-free through striped
  // relaxed atomics and handed out as stable references.
  mutable Mutex mutex_{"obs.registry"};
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      OLEV_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      OLEV_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      OLEV_GUARDED_BY(mutex_);
};

}  // namespace olev::obs
