#include "obs/span.h"

#include <chrono>

#include "obs/strings.h"

namespace olev::obs {

std::int64_t now_micros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

Tracer::Lane& Tracer::local_lane() {
  // The shared_ptr keeps the lane alive after its thread exits, so worker
  // lanes spawned inside a finished sweep still export.
  thread_local std::shared_ptr<Lane> lane = [this] {
    auto fresh = std::make_shared<Lane>();
    MutexLock lock(lanes_mutex_);
    fresh->tid = static_cast<int>(lanes_.size()) + 1;
    lanes_.push_back(fresh);
    return fresh;
  }();
  // A second Tracer never exists (singleton), so `this` always matches the
  // instance that registered the lane.
  return *lane;
}

void Tracer::start(TraceDetail detail) {
  MutexLock lock(lanes_mutex_);
  for (const std::shared_ptr<Lane>& lane : lanes_) {
    MutexLock lane_lock(lane->mutex);
    lane->events.clear();
  }
  dropped_.store(0, std::memory_order_relaxed);
  epoch_us_ = now_micros();
  fine_.store(detail == TraceDetail::kFine, std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_release);
}

void Tracer::stop() { enabled_.store(false, std::memory_order_release); }

void Tracer::set_thread_name(std::string name) {
  Lane& lane = local_lane();
  MutexLock lock(lane.mutex);
  lane.name = std::move(name);
}

bool Tracer::lane_has_room() {
  Lane& lane = local_lane();
  MutexLock lock(lane.mutex);
  // A begin/end pair needs two slots.
  return lane.events.size() + 2 <= max_events_per_lane_;
}

void Tracer::record(TraceEvent event) {
  if (!enabled()) return;
  record_always(std::move(event));
}

void Tracer::record_always(TraceEvent event) {
  Lane& lane = local_lane();
  MutexLock lock(lane.mutex);
  lane.events.push_back(std::move(event));
}

std::size_t Tracer::event_count() const {
  MutexLock lock(lanes_mutex_);
  std::size_t count = 0;
  for (const std::shared_ptr<Lane>& lane : lanes_) {
    MutexLock lane_lock(lane->mutex);
    count += lane->events.size();
  }
  return count;
}

std::string Tracer::to_json() const {
  std::vector<std::shared_ptr<Lane>> lanes;
  std::int64_t epoch;
  {
    MutexLock lock(lanes_mutex_);
    lanes = lanes_;
    epoch = epoch_us_;
  }

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const std::string& event_json) {
    if (!first) out += ',';
    first = false;
    out += event_json;
  };

  emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
       "\"args\":{\"name\":\"olev\"}}");
  for (const std::shared_ptr<Lane>& lane : lanes) {
    MutexLock lane_lock(lane->mutex);
    // Built with += throughout: chained operator+ on string temporaries
    // trips gcc-12's bogus -Wrestrict at -O3 (PR105651), and this is the
    // export hot loop anyway.
    const std::string tid = std::to_string(lane->tid);
    if (!lane->name.empty()) {
      std::string meta = "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":";
      meta += tid;
      meta += ",\"args\":{\"name\":\"";
      meta += json_escape(lane->name);
      meta += "\"}}";
      emit(meta);
    }
    for (const TraceEvent& event : lane->events) {
      std::string entry = "{\"name\":\"";
      entry += json_escape(event.name);
      entry += "\",\"cat\":\"";
      entry += json_escape(event.category);
      entry += "\",\"ph\":\"";
      entry += event.phase;
      entry += "\",\"ts\":";
      entry += std::to_string(event.ts_us - epoch);
      entry += ",\"pid\":1,\"tid\":";
      entry += tid;
      if (event.nargs > 0 || !event.detail.empty()) {
        entry += ",\"args\":{";
        bool first_arg = true;
        if (!event.detail.empty()) {
          entry += "\"label\":\"";
          entry += json_escape(event.detail);
          entry += '"';
          first_arg = false;
        }
        for (int i = 0; i < event.nargs; ++i) {
          if (!first_arg) entry += ',';
          first_arg = false;
          entry += '"';
          entry += json_escape(event.args[static_cast<std::size_t>(i)].first);
          entry += "\":";
          entry += format_double(event.args[static_cast<std::size_t>(i)].second);
        }
        entry += '}';
      }
      entry += '}';
      emit(entry);
    }
  }
  out += "]}";
  return out;
}

void Tracer::save(const std::string& path) const {
  write_file(path, to_json() + "\n");
}

ScopedSpan::ScopedSpan(const char* name, const char* category)
    : name_(name), category_(category) {
  if (!Tracer::instance().enabled()) return;
  begin({});
}

ScopedSpan::ScopedSpan(const char* name, const char* category,
                       std::string label)
    : name_(name), category_(category) {
  if (!Tracer::instance().enabled()) return;
  begin(std::move(label));
}

ScopedSpan::ScopedSpan(const char* name, const char* category,
                       TraceDetail level)
    : name_(name), category_(category) {
  Tracer& tracer = Tracer::instance();
  if (level == TraceDetail::kFine ? !tracer.fine_enabled() : !tracer.enabled())
    return;
  begin({});
}

void ScopedSpan::begin(std::string label) {
  Tracer& tracer = Tracer::instance();
  if (!tracer.lane_has_room()) {
    // Cap hit: drop the whole span (begin AND end) so the trace stays
    // balanced, and account for it.
    tracer.note_dropped_span();
    return;
  }
  active_ = true;
  TraceEvent event;
  event.name = name_;
  event.category = category_;
  event.phase = 'B';
  event.ts_us = now_micros();
  event.detail = std::move(label);
  tracer.record_always(event);
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  TraceEvent event;
  event.name = name_;
  event.category = category_;
  event.phase = 'E';
  event.ts_us = now_micros();
  event.args = args_;
  event.nargs = nargs_;
  // record_always: a begin was written, so the end must land even if the
  // tracer was stopped while this span was open.
  Tracer::instance().record_always(std::move(event));
}

void set_thread_name(std::string name) {
  Tracer::instance().set_thread_name(std::move(name));
}

}  // namespace olev::obs
