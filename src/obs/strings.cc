#include "obs/strings.h"

#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace olev::obs {

namespace {

void append_u16(std::string& out, std::uint32_t unit) {
  char buffer[8];
  std::snprintf(buffer, sizeof(buffer), "\\u%04x", unit & 0xffffu);
  out += buffer;
}

void append_code_point(std::string& out, std::uint32_t cp) {
  if (cp <= 0xffffu) {
    append_u16(out, cp);
  } else {
    // Astral plane: UTF-16 surrogate pair.
    cp -= 0x10000u;
    append_u16(out, 0xd800u + (cp >> 10));
    append_u16(out, 0xdc00u + (cp & 0x3ffu));
  }
}

constexpr std::uint32_t kReplacement = 0xfffdu;

/// Decodes one UTF-8 sequence starting at `i`; advances `i` past it.
/// Returns U+FFFD (consuming exactly one byte) on any malformation.
std::uint32_t decode_utf8(std::string_view text, std::size_t& i) {
  const auto byte = [&](std::size_t k) {
    return static_cast<std::uint32_t>(static_cast<unsigned char>(text[k]));
  };
  const std::uint32_t lead = byte(i);
  std::size_t length;
  std::uint32_t cp;
  if (lead < 0xc0u) {  // stray continuation byte (>= 0x80 guaranteed by caller)
    ++i;
    return kReplacement;
  } else if (lead < 0xe0u) {
    length = 2;
    cp = lead & 0x1fu;
  } else if (lead < 0xf0u) {
    length = 3;
    cp = lead & 0x0fu;
  } else if (lead < 0xf8u) {
    length = 4;
    cp = lead & 0x07u;
  } else {
    ++i;
    return kReplacement;
  }
  if (i + length > text.size()) {
    ++i;
    return kReplacement;
  }
  for (std::size_t k = 1; k < length; ++k) {
    const std::uint32_t continuation = byte(i + k);
    if ((continuation & 0xc0u) != 0x80u) {
      ++i;
      return kReplacement;
    }
    cp = (cp << 6) | (continuation & 0x3fu);
  }
  // Reject overlong encodings, UTF-16 surrogates and out-of-range values.
  constexpr std::uint32_t kMinByLength[5] = {0, 0, 0x80u, 0x800u, 0x10000u};
  if (cp < kMinByLength[length] || cp > 0x10ffffu ||
      (cp >= 0xd800u && cp <= 0xdfffu)) {
    ++i;
    return kReplacement;
  }
  i += length;
  return cp;
}

}  // namespace

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  std::size_t i = 0;
  while (i < text.size()) {
    const unsigned char c = static_cast<unsigned char>(text[i]);
    if (c < 0x80u) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        case '\b': out += "\\b"; break;
        case '\f': out += "\\f"; break;
        default:
          if (c < 0x20u || c == 0x7fu) {
            append_u16(out, c);
          } else {
            out += static_cast<char>(c);
          }
      }
      ++i;
    } else {
      append_code_point(out, decode_utf8(text, i));
    }
  }
  return out;
}

std::string format_double(double v) {
  if (!std::isfinite(v)) return "null";
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.12g", v);
  return buffer;
}

void write_file(const std::string& path, std::string_view content) {
  errno = 0;
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("write_file: cannot open '" + path +
                             "': " + std::strerror(errno == 0 ? EIO : errno));
  }
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  out.flush();
  if (!out) {
    throw std::runtime_error("write_file: write failed for '" + path +
                             "': " + std::strerror(errno == 0 ? EIO : errno));
  }
}

}  // namespace olev::obs
