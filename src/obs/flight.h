// Flight recorder: an always-on, fixed-capacity, lock-free ring of the last
// N request-lifecycle and engine events, for post-mortems and the olevd
// admin plane (docs/OBSERVABILITY.md, "Flight recorder").
//
// The record path is the whole point: one relaxed fetch_add to take a
// per-lane ticket, five relaxed/fenced atomic stores into a preallocated
// slot.  No allocation, no lock, no throw, no syscall beyond the approved
// obs clock -- it satisfies the real-time wall (tools/olev_rtcheck.py walks
// it from the registered hot root below) and the audit-build hot-allocation
// interposer, so the pricing engine can record from inside apply().
//
// Storage is per-thread striped: the first record() on a thread claims a
// lane (round-robin over kLanes), and every slot is a seqlock -- an odd
// sequence word means in-progress, an even word 2*ticket+2 means committed.
// snapshot() (cold path, allocates freely) walks every lane, re-checks each
// slot's sequence after reading the payload, and drops torn or overwritten
// slots instead of returning mixed records.  All payload fields are relaxed
// atomics, so concurrent record/snapshot is ThreadSanitizer-clean by
// construction.  With more than kLanes recording threads, lanes are shared;
// tickets still serialize the slot ring per lane, and the seqlock filter
// keeps dumped records well-formed (a collision can drop records, never
// invent them).
//
// Capacity is fixed at kLanes * kSlotsPerLane events; older events are
// overwritten in ring order per lane.  The dump is therefore "the last ~16k
// things the daemon did", which is exactly what a drain/crash post-mortem
// needs.  OLEV_FLIGHT=<path> (obs::EnvSession) writes the JSON dump at
// process exit -- including the SIGTERM drain path of olevd.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace olev::obs::flight {

/// Event vocabulary.  Payload words a/b are event-specific (documented in
/// docs/OBSERVABILITY.md); unused words are 0.
enum class Event : std::uint8_t {
  kAdmit = 1,         ///< request enqueued          a=player, b=queue depth
  kBatchFire = 2,     ///< batch round started       a=batch size, b=queue depth
  kRoundConverge = 3, ///< engine reached fixed point a=updates, b=residual bits
  kBackpressure = 4,  ///< RETRY_LATER sent          a=player, b=queue depth
  kExpire = 5,        ///< DEADLINE_EXPIRED sent     a=player, b=round
  kDrain = 6,         ///< graceful drain began      a=queued, b=sessions
  kSnapshotSave = 7,  ///< durable snapshot written  a=payload bytes, b=save µs
  kSnapshotLoad = 8,  ///< snapshot restored on boot a=payload bytes, b=load µs
  kSessionResume = 9, ///< player re-attached        a=player, b=engine updates
};

inline constexpr std::size_t kLanes = 16;
inline constexpr std::size_t kSlotsPerLane = 1024;  // power of two (ring mask)

/// Records one event on the calling thread's lane.  Allocation-free,
/// lock-free, wait-free per lane modulo the ticket RMW; safe from any
/// thread, including inside OLEV_HOT_REGIONs.
void record(Event event, std::uint64_t a, std::uint64_t b) noexcept;

/// One committed event as read back by snapshot().
struct Record {
  std::int64_t ts_us = 0;   ///< obs::now_micros() stamp
  std::uint64_t seq = 0;    ///< per-lane ticket (monotone within a lane)
  std::uint32_t lane = 0;
  Event event = Event::kAdmit;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

/// Cold read path: every committed, un-torn slot across all lanes, sorted by
/// timestamp (ties by lane then ticket).  Racy-by-design against writers --
/// a slot overwritten mid-read is dropped, never returned mixed.
std::vector<Record> snapshot();

/// Total events ever recorded (sum of lane tickets), including overwritten
/// ones.  total_recorded() - snapshot().size() is the overwrite/torn count.
std::uint64_t total_recorded();

/// Stable lower-case name for an event ("admit", "batch_fire", ...).
const char* event_name(Event event);

/// The dump format served by the admin plane and OLEV_FLIGHT:
///   {"recorded":N,"returned":M,"events":[
///     {"ts_us":...,"lane":L,"seq":S,"event":"admit","a":...,"b":...},...]}
std::string to_json(const std::vector<Record>& records);

/// Zeroes every lane (tickets and slots).  Test support; callers must be
/// quiesced -- concurrent writers may land records on either side.
void reset();

}  // namespace olev::obs::flight
