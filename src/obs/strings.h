// String helpers shared by the observability sinks, kept dependency-free so
// they can also back src/util's JSON writer (util sits ABOVE obs: the
// thread pool is instrumented, so obs may not link util).
#pragma once

#include <string>
#include <string_view>

namespace olev::obs {

/// Escapes `text` for embedding inside a JSON string literal (surrounding
/// quotes not included).  Guarantees pure-ASCII, always-valid JSON output
/// for ANY byte sequence:
///   - '"', '\\' and the C0 control characters are backslash-escaped
///     (\n, \r, \t, \b, \f get their short forms, the rest \u00XX);
///   - DEL (0x7f) and every non-ASCII code point are emitted as \uXXXX,
///     decoding well-formed UTF-8 first (astral code points become
///     surrogate pairs);
///   - malformed UTF-8 bytes (stray continuation bytes, overlong or
///     truncated sequences, surrogates) are replaced with U+FFFD instead of
///     leaking raw bytes into the output.
std::string json_escape(std::string_view text);

/// Shortest round-trippable decimal for a double, with NaN/Inf mapped to
/// null (JSON has no non-finite literals).
std::string format_double(double v);

/// Writes `content` to `path`, throwing std::runtime_error that names the
/// failing path and the errno message on open or write failure.
void write_file(const std::string& path, std::string_view content);

}  // namespace olev::obs
