// Span tracer: scoped RAII timers around solver phases, exported as Chrome
// trace-event JSON (the format ui.perfetto.dev and chrome://tracing load
// directly).  One lane per thread: the sweep's worker threads register
// themselves with stable small tids and human names ("worker 3"), so a whole
// run_sweep opens as a per-worker timeline.
//
// Overhead contract:
//   - tracing DISABLED (the default): constructing a span is one relaxed
//     atomic load and two pointer stores -- nanoseconds, safe to leave in
//     per-update solver code;
//   - tracing ENABLED: each span records two events (begin/end) into a
//     per-thread buffer guarded by that thread's own (uncontended) mutex;
//   - compiled OUT (OLEV_OBS=OFF): the OLEV_OBS_SPAN* macros in obs/obs.h
//     expand to a no-op object and the call sites vanish entirely.
//
// This header is also the repo's ONLY approved timing source for src/core
// and src/util: tools/olev_lint.py's raw-steady-clock rule rejects direct
// std::chrono::*_clock::now() calls there so every measurement flows
// through one clock (and can be compiled out or redirected centrally).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/sync.h"

namespace olev::obs {

/// Microseconds from a process-wide monotonic clock (steady_clock epoch).
std::int64_t now_micros();

/// Minimal monotonic timer for code that needs a duration, not a trace
/// event (e.g. the sweep report's wall/busy accounting).
class Stopwatch {
 public:
  Stopwatch() : start_us_(now_micros()) {}
  void restart() { start_us_ = now_micros(); }
  double seconds() const {
    return static_cast<double>(now_micros() - start_us_) * 1e-6;
  }

 private:
  std::int64_t start_us_;
};

/// Phase-level spans (scenario solve, game run) are always recorded while
/// tracing is on; fine spans (per player update, per bisection) only when
/// the trace was started at kFine detail -- they multiply event counts by
/// the update count.
enum class TraceDetail { kPhase, kFine };

/// One Chrome trace event.  `name`/`category`/arg keys must be string
/// literals (the tracer stores the pointers); dynamic text goes through
/// `detail`, which is escaped on export.
struct TraceEvent {
  const char* name = nullptr;
  const char* category = nullptr;
  char phase = 'B';  ///< 'B' begin, 'E' end, 'I' instant
  std::int64_t ts_us = 0;
  std::string detail;  ///< optional dynamic label, exported as args.label
  std::array<std::pair<const char*, double>, 4> args{};
  int nargs = 0;
};

class Tracer {
 public:
  static Tracer& instance();

  /// Clears previous events, stamps the time origin and enables recording.
  void start(TraceDetail detail = TraceDetail::kPhase);
  void stop();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  bool fine_enabled() const {
    return enabled() && fine_.load(std::memory_order_relaxed);
  }

  /// Names the calling thread's lane (emitted as thread_name metadata).
  /// Registers the thread even while tracing is disabled, so pool workers
  /// can name themselves at spawn.
  void set_thread_name(std::string name);

  /// Appends `event` to the calling thread's buffer when tracing is on.
  void record(TraceEvent event);
  /// Appends regardless of the enabled flag -- span destructors use this so
  /// a begin recorded before stop() still gets its matching end.
  void record_always(TraceEvent event);

  /// Chrome trace-event JSON ({"traceEvents": [...]}); safe to call while
  /// other threads trace (their lanes are copied under per-buffer locks).
  std::string to_json() const;
  /// Writes to_json() to `path`; throws std::runtime_error naming the path
  /// and errno on failure.
  void save(const std::string& path) const;

  std::size_t event_count() const;
  /// Spans skipped because a lane hit its event cap (begin AND end are
  /// dropped together, so exported traces stay balanced).
  std::uint64_t dropped_spans() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  void note_dropped_span() { dropped_.fetch_add(1, std::memory_order_relaxed); }
  /// True while the calling thread's lane has room for another span.
  bool lane_has_room();

 private:
  struct Lane {
    Mutex mutex{"obs.tracer.lane"};
    std::vector<TraceEvent> events OLEV_GUARDED_BY(mutex);
    // Assigned once under lanes_mutex_ before the lane is published and
    // immutable afterwards, so reads need no capability.
    int tid = 0;
    std::string name OLEV_GUARDED_BY(mutex);
  };

  Tracer() = default;
  Lane& local_lane() OLEV_EXCLUDES(lanes_mutex_);

  std::atomic<bool> enabled_{false};
  std::atomic<bool> fine_{false};
  std::atomic<std::uint64_t> dropped_{0};
  std::size_t max_events_per_lane_ = 1 << 20;
  // Lock order: lanes_mutex_ before any Lane::mutex (start(), event_count(),
  // to_json() hold the registry lock while draining individual lanes); the
  // lock-order auditor pins that order in audit builds.
  mutable Mutex lanes_mutex_{"obs.tracer.lanes"};
  std::int64_t epoch_us_ OLEV_GUARDED_BY(lanes_mutex_) = 0;
  std::vector<std::shared_ptr<Lane>> lanes_ OLEV_GUARDED_BY(lanes_mutex_);
};

/// RAII span: begin event at construction, end event (carrying the numeric
/// args) at destruction.  Construction decides once whether this span is
/// live; a tracer stopped mid-span still receives the end event.
class ScopedSpan {
 public:
  ScopedSpan(const char* name, const char* category);
  ScopedSpan(const char* name, const char* category, std::string label);
  ScopedSpan(const char* name, const char* category, TraceDetail level);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attaches a numeric argument to the end event (first 4 kept).
  void arg(const char* key, double value) {
    if (!active_ || nargs_ >= static_cast<int>(args_.size())) return;
    args_[static_cast<std::size_t>(nargs_++)] = {key, value};
  }
  bool active() const { return active_; }

 private:
  void begin(std::string label);

  const char* name_;
  const char* category_;
  std::array<std::pair<const char*, double>, 4> args_{};
  int nargs_ = 0;
  bool active_ = false;
};

/// Vanishing stand-in the OLEV_OBS_SPAN macros expand to when the layer is
/// compiled out.
struct NullSpan {
  void arg(const char*, double) {}
  bool active() const { return false; }
};

/// Convenience: Tracer::instance().set_thread_name(...).
void set_thread_name(std::string name);

}  // namespace olev::obs
