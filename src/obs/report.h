// Sinks for the metrics registry and the tracer: JSON and human-readable
// snapshot exporters, plus the environment-driven export session the
// examples and bench harnesses wire in with one line.
#pragma once

#include <span>
#include <string>

#include "obs/metrics.h"

namespace olev::obs {

/// MetricsSnapshot as a JSON object:
///   {"counters":{name:value,...},
///    "gauges":{name:value,...},
///    "histograms":{name:{"bounds":[...],"counts":[...],"count":n,
///                        "sum":s,"mean":m},...}}
std::string to_json(const MetricsSnapshot& snapshot);

/// Aligned plain-text rendering for terminals / run logs.
std::string to_text(const MetricsSnapshot& snapshot);

/// Buckets `values` into a HistogramSnapshot with the same edge semantics
/// as obs::Histogram (first bucket with v <= bounds[i]; overflow last) --
/// used by reports that histogram per-result data deterministically instead
/// of scraping the registry.
HistogramSnapshot bucketize(std::string name, std::vector<double> bounds,
                            std::span<const double> values);

/// Environment-driven export session.  Construct at the top of main():
///   - OLEV_TRACE=<path>: starts the tracer (detail kPhase, or kFine when
///     OLEV_TRACE_DETAIL=fine) and saves the Perfetto/Chrome trace JSON to
///     <path> on destruction;
///   - OLEV_METRICS=<path>: saves a metrics-registry JSON snapshot to
///     <path> on destruction;
///   - OLEV_FLIGHT=<path>: saves the flight-recorder dump
///     (obs/flight.h to_json) to <path> on destruction -- olevd's SIGTERM
///     drain exits through here, so a drained daemon always leaves a
///     post-mortem.
/// Also names the constructing thread's trace lane "main".  Prints one
/// [obs] line per activated export so runs are self-describing; stays
/// completely silent (and does nothing) when neither variable is set.
class EnvSession {
 public:
  EnvSession();
  ~EnvSession();

  EnvSession(const EnvSession&) = delete;
  EnvSession& operator=(const EnvSession&) = delete;

  bool tracing() const { return !trace_path_.empty(); }
  const std::string& trace_path() const { return trace_path_; }
  const std::string& metrics_path() const { return metrics_path_; }
  const std::string& flight_path() const { return flight_path_; }

 private:
  std::string trace_path_;
  std::string metrics_path_;
  std::string flight_path_;
};

}  // namespace olev::obs
