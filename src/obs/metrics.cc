#include "obs/metrics.h"

#include <algorithm>

namespace olev::obs {

std::size_t thread_stripe() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

namespace detail {

void atomic_add(std::atomic<double>& cell, double delta) {
  double expected = cell.load(std::memory_order_relaxed);
  while (!cell.compare_exchange_weak(expected, expected + delta,
                                     std::memory_order_relaxed,
                                     std::memory_order_relaxed)) {
  }
}

}  // namespace detail

std::uint64_t Counter::total() const {
  std::uint64_t sum = 0;
  for (const detail::U64Cell& cell : cells_) {
    sum += cell.value.load(std::memory_order_relaxed);
  }
  return sum;
}

void Counter::reset() {
  for (detail::U64Cell& cell : cells_) {
    cell.value.store(0, std::memory_order_relaxed);
  }
}

Histogram::Histogram(std::string name, std::vector<double> bounds)
    : name_(std::move(name)), bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  for (Stripe& stripe : stripes_) {
    stripe.counts = std::vector<detail::U64Cell>(bounds_.size() + 1);
  }
}

void Histogram::observe(double v) {
  // First bucket whose inclusive upper edge admits v; values beyond the
  // last edge land in the overflow bucket.
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  Stripe& stripe = stripes_[thread_stripe() % kStripes];
  stripe.counts[bucket].value.fetch_add(1, std::memory_order_relaxed);
  detail::atomic_add(stripe.sum.value, v);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.name = name_;
  snap.bounds = bounds_;
  snap.counts.assign(bounds_.size() + 1, 0);
  for (const Stripe& stripe : stripes_) {
    for (std::size_t i = 0; i < stripe.counts.size(); ++i) {
      snap.counts[i] += stripe.counts[i].value.load(std::memory_order_relaxed);
    }
    snap.sum += stripe.sum.value.load(std::memory_order_relaxed);
  }
  for (std::uint64_t c : snap.counts) snap.count += c;
  return snap;
}

void Histogram::reset() {
  for (Stripe& stripe : stripes_) {
    for (detail::U64Cell& cell : stripe.counts) {
      cell.value.store(0, std::memory_order_relaxed);
    }
    stripe.sum.value.store(0.0, std::memory_order_relaxed);
  }
}

std::uint64_t MetricsSnapshot::counter_value(std::string_view name) const {
  for (const CounterSnapshot& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

const HistogramSnapshot* MetricsSnapshot::histogram(
    std::string_view name) const {
  for (const HistogramSnapshot& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(std::string_view name) {
  MutexLock lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name),
                      std::make_unique<Counter>(std::string(name)))
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  MutexLock lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(std::string(name), std::make_unique<Gauge>(std::string(name)))
             .first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name,
                               std::initializer_list<double> bounds) {
  return histogram(name, std::vector<double>(bounds));
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<double> bounds) {
  MutexLock lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>(
                                             std::string(name), std::move(bounds)))
             .first;
  }
  return *it->second;
}

MetricsSnapshot Registry::snapshot() const {
  MutexLock lock(mutex_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.push_back({name, counter->total()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.push_back({name, gauge->get()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms.push_back(histogram->snapshot());
  }
  return snap;
}

void Registry::reset() {
  MutexLock lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
  for (auto& [name, histogram] : histograms_) histogram->reset();
}

}  // namespace olev::obs
