// Umbrella header for instrumentation sites: pulls in the metrics registry
// and the span tracer and defines the OLEV_OBS_* macros that make
// instrumentation vanish under -DOLEV_OBS=OFF.
//
// Contract (mirrors src/util/audit.h): the obs support code -- registry,
// tracer, sinks -- is ALWAYS compiled so every build flavor links and tests
// can scrape; only the call sites expand to nothing.  A disabled build has
// literally zero instrumentation instructions on the hot path.
//
// Usage:
//   OLEV_OBS_COUNTER(hits, "core.game.response_cache_hits");
//   OLEV_OBS_ADD(hits, 1);
//
//   OLEV_OBS_HISTOGRAM(iters, "core.best_response.iterations",
//                      {0, 8, 16, 24, 32, 48, 64, 96, 128});
//   OLEV_OBS_OBSERVE(iters, response.iterations);
//
//   OLEV_OBS_SPAN(span, "game.run", "solver");
//   OLEV_OBS_SPAN_ARG(span, "updates", updates);
//
// The metric/histogram handles are function-local static references: the
// registry lookup happens once per call site, the increment is a relaxed
// atomic on a per-thread stripe.  docs/OBSERVABILITY.md catalogs every
// metric and span name.
#pragma once

#include "obs/metrics.h"
#include "obs/span.h"

#if defined(OLEV_OBS_DISABLED)
#define OLEV_OBS_ENABLED 0
#else
#define OLEV_OBS_ENABLED 1
#endif

#if OLEV_OBS_ENABLED

#define OLEV_OBS_COUNTER(var, name)     \
  static ::olev::obs::Counter& var =    \
      ::olev::obs::Registry::instance().counter(name)
#define OLEV_OBS_GAUGE(var, name)       \
  static ::olev::obs::Gauge& var =      \
      ::olev::obs::Registry::instance().gauge(name)
// `...` is the brace-enclosed bucket-bound list (its commas split macro
// arguments, so it must ride in the variadic tail).
#define OLEV_OBS_HISTOGRAM(var, name, ...) \
  static ::olev::obs::Histogram& var =     \
      ::olev::obs::Registry::instance().histogram((name), __VA_ARGS__)
#define OLEV_OBS_ADD(var, n) (var).add(n)
#define OLEV_OBS_SET(var, v) (var).set(v)
#define OLEV_OBS_OBSERVE(var, v) (var).observe(v)

#define OLEV_OBS_SPAN(var, name, category) \
  ::olev::obs::ScopedSpan var { (name), (category) }
#define OLEV_OBS_SPAN_LABELED(var, name, category, label) \
  ::olev::obs::ScopedSpan var { (name), (category), (label) }
// Fine spans only record when the tracer was started at kFine detail --
// they sit in per-update code whose event volume would swamp a phase trace.
#define OLEV_OBS_FINE_SPAN(var, name, category) \
  ::olev::obs::ScopedSpan var {                 \
    (name), (category), ::olev::obs::TraceDetail::kFine \
  }
#define OLEV_OBS_SPAN_ARG(var, key, value) (var).arg((key), (value))

// Statement(s) compiled only when observability is on (timestamp capture,
// derived-value computation feeding OLEV_OBS_* calls).
#define OLEV_OBS_ONLY(...) __VA_ARGS__

#else  // OLEV_OBS_ENABLED

#define OLEV_OBS_COUNTER(var, name) static_cast<void>(0)
#define OLEV_OBS_GAUGE(var, name) static_cast<void>(0)
#define OLEV_OBS_HISTOGRAM(var, name, ...) static_cast<void>(0)
#define OLEV_OBS_ADD(var, n) static_cast<void>(0)
#define OLEV_OBS_SET(var, v) static_cast<void>(0)
#define OLEV_OBS_OBSERVE(var, v) static_cast<void>(0)

#define OLEV_OBS_SPAN(var, name, category) \
  [[maybe_unused]] ::olev::obs::NullSpan var {}
#define OLEV_OBS_SPAN_LABELED(var, name, category, label) \
  [[maybe_unused]] ::olev::obs::NullSpan var {}
#define OLEV_OBS_FINE_SPAN(var, name, category) \
  [[maybe_unused]] ::olev::obs::NullSpan var {}
#define OLEV_OBS_SPAN_ARG(var, key, value) static_cast<void>(0)

#define OLEV_OBS_ONLY(...)

#endif  // OLEV_OBS_ENABLED
