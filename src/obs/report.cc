#include "obs/report.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "obs/flight.h"
#include "obs/span.h"
#include "obs/strings.h"

namespace olev::obs {

// Serialization below appends with += only: chained operator+ on string
// temporaries trips gcc-12's bogus -Wrestrict at -O3 (PR105651).
std::string to_json(const MetricsSnapshot& snapshot) {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const CounterSnapshot& counter : snapshot.counters) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += json_escape(counter.name);
    out += "\":";
    out += std::to_string(counter.value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const GaugeSnapshot& gauge : snapshot.gauges) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += json_escape(gauge.name);
    out += "\":";
    out += format_double(gauge.value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const HistogramSnapshot& histogram : snapshot.histograms) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += json_escape(histogram.name);
    out += "\":{\"bounds\":[";
    for (std::size_t i = 0; i < histogram.bounds.size(); ++i) {
      if (i > 0) out += ',';
      out += format_double(histogram.bounds[i]);
    }
    out += "],\"counts\":[";
    for (std::size_t i = 0; i < histogram.counts.size(); ++i) {
      if (i > 0) out += ',';
      out += std::to_string(histogram.counts[i]);
    }
    out += "],\"count\":";
    out += std::to_string(histogram.count);
    out += ",\"sum\":";
    out += format_double(histogram.sum);
    out += ",\"mean\":";
    out += format_double(histogram.mean());
    out += '}';
  }
  out += "}}";
  return out;
}

std::string to_text(const MetricsSnapshot& snapshot) {
  std::string out;
  std::size_t width = 0;
  for (const CounterSnapshot& c : snapshot.counters)
    width = std::max(width, c.name.size());
  for (const GaugeSnapshot& g : snapshot.gauges)
    width = std::max(width, g.name.size());
  for (const HistogramSnapshot& h : snapshot.histograms)
    width = std::max(width, h.name.size());

  auto pad = [&](const std::string& name) {
    std::string padded = name;
    padded.append(width > name.size() ? width - name.size() : 0, ' ');
    return padded;
  };
  for (const CounterSnapshot& counter : snapshot.counters) {
    out += pad(counter.name);
    out += "  ";
    out += std::to_string(counter.value);
    out += '\n';
  }
  for (const GaugeSnapshot& gauge : snapshot.gauges) {
    out += pad(gauge.name);
    out += "  ";
    out += format_double(gauge.value);
    out += '\n';
  }
  for (const HistogramSnapshot& histogram : snapshot.histograms) {
    out += pad(histogram.name);
    out += "  count=";
    out += std::to_string(histogram.count);
    out += " mean=";
    out += format_double(histogram.mean());
    out += "  [";
    for (std::size_t i = 0; i < histogram.counts.size(); ++i) {
      if (i > 0) out += ' ';
      if (i < histogram.bounds.size()) {
        out += "<=";
        out += format_double(histogram.bounds[i]);
      } else {
        out += '>';
        out += format_double(histogram.bounds.empty() ? 0.0
                                                      : histogram.bounds.back());
      }
      out += ':';
      out += std::to_string(histogram.counts[i]);
    }
    out += "]\n";
  }
  return out;
}

HistogramSnapshot bucketize(std::string name, std::vector<double> bounds,
                            std::span<const double> values) {
  std::sort(bounds.begin(), bounds.end());
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());
  HistogramSnapshot snap;
  snap.name = std::move(name);
  snap.bounds = std::move(bounds);
  snap.counts.assign(snap.bounds.size() + 1, 0);
  for (double v : values) {
    const std::size_t bucket = static_cast<std::size_t>(
        std::lower_bound(snap.bounds.begin(), snap.bounds.end(), v) -
        snap.bounds.begin());
    ++snap.counts[bucket];
    snap.sum += v;
    ++snap.count;
  }
  return snap;
}

namespace {
std::string env_or_empty(const char* name) {
  const char* value = std::getenv(name);
  return value == nullptr ? std::string() : std::string(value);
}
}  // namespace

EnvSession::EnvSession()
    : trace_path_(env_or_empty("OLEV_TRACE")),
      metrics_path_(env_or_empty("OLEV_METRICS")),
      flight_path_(env_or_empty("OLEV_FLIGHT")) {
  if (trace_path_.empty() && metrics_path_.empty() && flight_path_.empty()) {
    return;
  }
  set_thread_name("main");
  if (!trace_path_.empty()) {
    const bool fine = env_or_empty("OLEV_TRACE_DETAIL") == "fine";
    Tracer::instance().start(fine ? TraceDetail::kFine : TraceDetail::kPhase);
    std::fprintf(stderr, "[obs] tracing enabled (%s detail) -> %s\n",
                 fine ? "fine" : "phase", trace_path_.c_str());
  }
  if (!metrics_path_.empty()) {
    std::fprintf(stderr, "[obs] metrics snapshot on exit -> %s\n",
                 metrics_path_.c_str());
  }
  if (!flight_path_.empty()) {
    std::fprintf(stderr, "[obs] flight-recorder dump on exit -> %s\n",
                 flight_path_.c_str());
  }
}

EnvSession::~EnvSession() {
  // Destructors must not throw; report sink failures and carry on.
  if (!trace_path_.empty()) {
    Tracer& tracer = Tracer::instance();
    tracer.stop();
    try {
      tracer.save(trace_path_);
      std::fprintf(stderr, "[obs] trace saved: %zu events -> %s\n",
                   tracer.event_count(), trace_path_.c_str());
    } catch (const std::exception& error) {
      std::fprintf(stderr, "[obs] trace save FAILED: %s\n", error.what());
    }
  }
  if (!metrics_path_.empty()) {
    try {
      write_file(metrics_path_,
                 to_json(Registry::instance().snapshot()) + "\n");
      std::fprintf(stderr, "[obs] metrics saved -> %s\n",
                   metrics_path_.c_str());
    } catch (const std::exception& error) {
      std::fprintf(stderr, "[obs] metrics save FAILED: %s\n", error.what());
    }
  }
  if (!flight_path_.empty()) {
    try {
      const std::vector<flight::Record> records = flight::snapshot();
      write_file(flight_path_, flight::to_json(records) + "\n");
      std::fprintf(stderr, "[obs] flight dump saved: %zu events -> %s\n",
                   records.size(), flight_path_.c_str());
    } catch (const std::exception& error) {
      std::fprintf(stderr, "[obs] flight dump FAILED: %s\n", error.what());
    }
  }
}

}  // namespace olev::obs
