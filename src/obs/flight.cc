#include "obs/flight.h"

#include <algorithm>
#include <atomic>

#include "obs/span.h"
#include "obs/strings.h"
#include "util/hot.h"

namespace olev::obs::flight {
namespace {

static_assert((kSlotsPerLane & (kSlotsPerLane - 1)) == 0,
              "kSlotsPerLane must be a power of two (ring mask)");

// One seqlock slot.  seq == 0: never written; odd: write in progress; even
// 2*ticket+2: the payload of `ticket` is committed.  Every field is an
// atomic written relaxed under the Boehm seqlock fence protocol, so the
// layer has no data races even when a reader overlaps a writer.
struct Slot {
  std::atomic<std::uint64_t> seq{0};
  std::atomic<std::uint64_t> ts_us{0};
  std::atomic<std::uint64_t> event{0};
  std::atomic<std::uint64_t> a{0};
  std::atomic<std::uint64_t> b{0};
};

struct alignas(64) Lane {
  std::atomic<std::uint64_t> head{0};  ///< next ticket (== events recorded)
  Slot slots[kSlotsPerLane];
};

// Constant-initialized globals: no __cxa_guard on first use, which keeps the
// record path inside the static real-time wall (no lock-classed symbols).
constinit Lane g_lanes[kLanes]{};
constinit std::atomic<std::uint64_t> g_next_lane{0};

// Trivially-initialized thread-local lane binding (-1 = unclaimed).  A plain
// int with a constant initializer needs no TLS guard either.
thread_local int t_lane = -1;

}  // namespace

// The record path is its own real-time root: tools/olev_rtcheck.py proves it
// allocation/lock/throw/IO-free both standalone and as reached from the
// engine's apply() root (which records round-convergence events inline).
OLEV_HOT_ROOT("olev::obs::flight::record");

void record(Event event, std::uint64_t a, std::uint64_t b) noexcept {
  if (t_lane < 0) {
    t_lane = static_cast<int>(
        g_next_lane.fetch_add(1, std::memory_order_relaxed) % kLanes);
  }
  Lane& lane = g_lanes[t_lane];
  const std::uint64_t ticket =
      lane.head.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = lane.slots[ticket & (kSlotsPerLane - 1)];
  // Seqlock writer (Boehm, "Can seqlocks get along with programming language
  // memory models?"): odd marks in-progress, the release fence orders the
  // mark before the payload, the final release store publishes.
  slot.seq.store(2 * ticket + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  slot.ts_us.store(static_cast<std::uint64_t>(now_micros()),
                   std::memory_order_relaxed);
  slot.event.store(static_cast<std::uint64_t>(event),
                   std::memory_order_relaxed);
  slot.a.store(a, std::memory_order_relaxed);
  slot.b.store(b, std::memory_order_relaxed);
  slot.seq.store(2 * ticket + 2, std::memory_order_release);
}

std::uint64_t total_recorded() {
  std::uint64_t total = 0;
  for (const Lane& lane : g_lanes) {
    total += lane.head.load(std::memory_order_acquire);
  }
  return total;
}

std::vector<Record> snapshot() {
  std::vector<Record> records;
  records.reserve(kLanes * kSlotsPerLane);
  for (std::uint32_t index = 0; index < kLanes; ++index) {
    const Lane& lane = g_lanes[index];
    const std::uint64_t head = lane.head.load(std::memory_order_acquire);
    const std::uint64_t first =
        head > kSlotsPerLane ? head - kSlotsPerLane : 0;
    for (std::uint64_t ticket = first; ticket < head; ++ticket) {
      const Slot& slot = lane.slots[ticket & (kSlotsPerLane - 1)];
      // Seqlock reader: accept only a stable, committed view of THIS ticket
      // (an overwrite by a newer ticket changes seq and is rejected too).
      const std::uint64_t s1 = slot.seq.load(std::memory_order_acquire);
      if (s1 != 2 * ticket + 2) continue;  // torn, overwritten, or stale
      Record rec;
      rec.ts_us = static_cast<std::int64_t>(
          slot.ts_us.load(std::memory_order_relaxed));
      rec.event =
          static_cast<Event>(slot.event.load(std::memory_order_relaxed));
      rec.a = slot.a.load(std::memory_order_relaxed);
      rec.b = slot.b.load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      const std::uint64_t s2 = slot.seq.load(std::memory_order_relaxed);
      if (s1 != s2) continue;  // writer landed mid-read; drop, don't mix
      rec.seq = ticket;
      rec.lane = index;
      records.push_back(rec);
    }
  }
  std::sort(records.begin(), records.end(),
            [](const Record& lhs, const Record& rhs) {
              if (lhs.ts_us != rhs.ts_us) return lhs.ts_us < rhs.ts_us;
              if (lhs.lane != rhs.lane) return lhs.lane < rhs.lane;
              return lhs.seq < rhs.seq;
            });
  return records;
}

const char* event_name(Event event) {
  switch (event) {
    case Event::kAdmit:
      return "admit";
    case Event::kBatchFire:
      return "batch_fire";
    case Event::kRoundConverge:
      return "round_converge";
    case Event::kBackpressure:
      return "backpressure";
    case Event::kExpire:
      return "expire";
    case Event::kDrain:
      return "drain";
    case Event::kSnapshotSave:
      return "snapshot_save";
    case Event::kSnapshotLoad:
      return "snapshot_load";
    case Event::kSessionResume:
      return "session_resume";
  }
  return "unknown";
}

// Built with += only: chained operator+ on string temporaries trips
// gcc-12's bogus -Wrestrict at -O3 (PR105651), same as obs/report.cc.
std::string to_json(const std::vector<Record>& records) {
  std::string out = "{\"recorded\":";
  out += std::to_string(total_recorded());
  out += ",\"returned\":";
  out += std::to_string(records.size());
  out += ",\"events\":[";
  bool first = true;
  for (const Record& rec : records) {
    if (!first) out += ',';
    first = false;
    out += "{\"ts_us\":";
    out += std::to_string(rec.ts_us);
    out += ",\"lane\":";
    out += std::to_string(rec.lane);
    out += ",\"seq\":";
    out += std::to_string(rec.seq);
    out += ",\"event\":\"";
    out += json_escape(event_name(rec.event));
    out += "\",\"a\":";
    out += std::to_string(rec.a);
    out += ",\"b\":";
    out += std::to_string(rec.b);
    out += '}';
  }
  out += "]}";
  return out;
}

void reset() {
  for (Lane& lane : g_lanes) {
    lane.head.store(0, std::memory_order_relaxed);
    for (Slot& slot : lane.slots) {
      slot.seq.store(0, std::memory_order_relaxed);
      slot.ts_us.store(0, std::memory_order_relaxed);
      slot.event.store(0, std::memory_order_relaxed);
      slot.a.store(0, std::memory_order_relaxed);
      slot.b.store(0, std::memory_order_relaxed);
    }
  }
}

}  // namespace olev::obs::flight
