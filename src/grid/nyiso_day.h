// NyisoDay: the aggregated synthetic grid day used throughout the library —
// load, forecast, deficiency, LBMP and ancillary prices on a common 5-minute
// tick grid.  This is the data source for the Fig. 2 reproduction and for
// the pricing policy's beta parameter (beta = LBMP at the game's hour).
#pragma once

#include <cstddef>
#include <vector>

#include "grid/ancillary.h"
#include "grid/control_period.h"
#include "grid/lbmp.h"
#include "grid/load_model.h"

namespace olev::grid {

struct NyisoDayConfig {
  LoadModelConfig load;
  LbmpConfig price;
  AncillaryConfig ancillary;
};

/// A full synthetic grid day.
class NyisoDay {
 public:
  /// Generates the day; deterministic for a fixed config/seed.
  static NyisoDay generate(const NyisoDayConfig& config = {});

  std::size_t tick_count() const { return ticks_.size(); }
  const std::vector<LoadTick>& ticks() const { return ticks_; }
  const std::vector<double>& lbmp_series() const { return lbmp_; }
  const std::vector<AncillaryPrices>& ancillary_series() const { return ancillary_; }

  /// Nearest-tick lookup by hour-of-day (wraps modulo 24).
  const LoadTick& tick_at(double hour) const;
  double lbmp_at(double hour) const;
  AncillaryPrices ancillary_at(double hour) const;
  ControlPeriod control_period_at(double hour) const;

  /// Largest |deficiency| over the day (paper: 167.8 MWh).
  double max_abs_deficiency() const;
  /// Mean of ancillary total price (paper: $13.41).
  double mean_ancillary_total() const;

  const NyisoDayConfig& config() const { return config_; }

 private:
  NyisoDayConfig config_;
  std::vector<LoadTick> ticks_;
  std::vector<double> lbmp_;
  std::vector<AncillaryPrices> ancillary_;

  std::size_t index_at(double hour) const;
};

}  // namespace olev::grid
