#include "grid/frequency.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace olev::grid {

FrequencySimulator::FrequencySimulator(FrequencyModelConfig config)
    : config_(config), frequency_hz_(config.nominal_hz) {
  if (config_.system_mva <= 0.0 || config_.inertia_h_s <= 0.0 ||
      config_.droop <= 0.0 || config_.dt_s <= 0.0) {
    throw std::invalid_argument("FrequencySimulator: non-positive parameter");
  }
}

FrequencyTick FrequencySimulator::step(util::Megawatts disturbance) {
  const double disturbance_mw = disturbance.value();
  const double f0 = config_.nominal_hz;

  // Primary (droop) response proportional to the frequency error.
  const double droop_mw =
      -(config_.system_mva / (config_.droop * f0)) * (frequency_hz_ - f0);

  // Secondary (AGC / regulation) response integrates the error, bounded by
  // the procured regulation reserve.
  agc_mw_ += config_.agc_gain * (f0 - frequency_hz_) * config_.dt_s;
  agc_mw_ = std::clamp(agc_mw_, -config_.regulation_reserve_mw,
                       config_.regulation_reserve_mw);

  // Swing equation: net power surplus accelerates the machine.
  const double net_mw = droop_mw + agc_mw_ - disturbance_mw;
  const double dfdt =
      f0 / (2.0 * config_.inertia_h_s * config_.system_mva) * net_mw;
  frequency_hz_ += dfdt * config_.dt_s;
  time_s_ += config_.dt_s;

  FrequencyTick tick;
  tick.time_s = time_s_;
  tick.frequency_hz = frequency_hz_;
  tick.imbalance_mw = disturbance_mw;
  tick.droop_mw = droop_mw;
  tick.agc_mw = agc_mw_;
  return tick;
}

std::vector<FrequencyTick> FrequencySimulator::run(
    const std::vector<double>& disturbance_mw) {
  std::vector<FrequencyTick> trace;
  trace.reserve(disturbance_mw.size());
  for (double d : disturbance_mw) trace.push_back(step(util::mw(d)));
  return trace;
}

void FrequencySimulator::reset() {
  frequency_hz_ = config_.nominal_hz;
  agc_mw_ = 0.0;
  time_s_ = 0.0;
}

FrequencyExcursion summarize_trace(const std::vector<FrequencyTick>& trace,
                                   double nominal_hz, double band_hz) {
  FrequencyExcursion summary;
  summary.nadir_hz = nominal_hz;
  summary.peak_hz = nominal_hz;
  if (trace.empty()) return summary;
  for (const FrequencyTick& tick : trace) {
    summary.nadir_hz = std::min(summary.nadir_hz, tick.frequency_hz);
    summary.peak_hz = std::max(summary.peak_hz, tick.frequency_hz);
    summary.max_abs_dev_hz = std::max(
        summary.max_abs_dev_hz, std::abs(tick.frequency_hz - nominal_hz));
  }
  // Settling time: last instant the trace was outside the band.
  summary.settling_time_s = 0.0;
  for (const FrequencyTick& tick : trace) {
    if (std::abs(tick.frequency_hz - nominal_hz) > band_hz) {
      summary.settling_time_s = tick.time_s;
    }
  }
  return summary;
}

}  // namespace olev::grid
