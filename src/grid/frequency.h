// Grid frequency-regulation simulation.
//
// Section III: "frequency control power is used to calibrate the frequency
// and voltage of the grid by matching generation to load demand" and
// ancillary services "require a quick response from the power resources".
// This module simulates that control loop: a power imbalance (load minus
// generation, e.g. an unanticipated OLEV fleet drawing from the grid) pulls
// the system frequency off nominal through the swing equation; droop
// control and a regulation reserve (optionally provided by the OLEV fleet
// itself -- V2G per White & Zhang [35]) pull it back.
//
//   df/dt = (f0 / (2 H S)) * (P_gen - P_load)        (swing, aggregated)
//   P_droop = -S/(droop * f0) * (f - f0)             (primary response)
//   P_agc  += Ki * (f0 - f) dt, |P_agc| <= reserve   (secondary / AGC)
#pragma once

#include <vector>

#include "util/quantity.h"

namespace olev::grid {

struct FrequencyModelConfig {
  double nominal_hz = 60.0;
  double system_mva = 7000.0;    ///< aggregated rating S
  double inertia_h_s = 5.0;      ///< inertia constant H (seconds)
  double droop = 0.05;           ///< 5% governor droop
  double agc_gain = 50.0;        ///< integral gain Ki (MW per Hz-second)
  double regulation_reserve_mw = 150.0;  ///< AGC saturation (+/-)
  double dt_s = 0.1;             ///< integration step
};

struct FrequencyTick {
  double time_s = 0.0;
  double frequency_hz = 0.0;
  double imbalance_mw = 0.0;   ///< raw disturbance at this time
  double droop_mw = 0.0;       ///< primary response output
  double agc_mw = 0.0;         ///< secondary (regulation) output
};

class FrequencySimulator {
 public:
  explicit FrequencySimulator(FrequencyModelConfig config = {});

  /// Advances one step with `disturbance_mw` = load minus scheduled
  /// generation (positive = shortage, pulls frequency down).
  FrequencyTick step(util::Megawatts disturbance);

  /// Runs a full trace for a disturbance series.
  std::vector<FrequencyTick> run(const std::vector<double>& disturbance_mw);

  double frequency_hz() const { return frequency_hz_; }
  double time_s() const { return time_s_; }
  const FrequencyModelConfig& config() const { return config_; }

  void reset();

 private:
  FrequencyModelConfig config_;
  double frequency_hz_;
  double agc_mw_ = 0.0;
  double time_s_ = 0.0;
};

/// Summary of a frequency trace.
struct FrequencyExcursion {
  double nadir_hz = 0.0;       ///< lowest frequency reached
  double peak_hz = 0.0;        ///< highest frequency reached
  double max_abs_dev_hz = 0.0;
  double settling_time_s = 0.0;  ///< first time |f - f0| stays < band
};

FrequencyExcursion summarize_trace(const std::vector<FrequencyTick>& trace,
                                   double nominal_hz, double band_hz = 0.02);

}  // namespace olev::grid
