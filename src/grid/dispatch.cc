#include "grid/dispatch.h"

#include <algorithm>
#include <stdexcept>

#include "obs/obs.h"

namespace olev::grid {

DispatchStack::DispatchStack(std::vector<Generator> generators)
    : generators_(std::move(generators)) {
  if (generators_.empty()) {
    throw std::invalid_argument("DispatchStack: need at least one generator");
  }
  for (const Generator& generator : generators_) {
    if (generator.capacity_mw <= 0.0) {
      throw std::invalid_argument("DispatchStack: capacities must be positive");
    }
    total_capacity_mw_ += generator.capacity_mw;
  }
  std::stable_sort(generators_.begin(), generators_.end(),
                   [](const Generator& a, const Generator& b) {
                     return a.marginal_cost < b.marginal_cost;
                   });
}

DispatchStack DispatchStack::nyiso_like() {
  return DispatchStack({
      {"nuclear", 2400.0, 12.52, ControlPeriod::kBaseload, 0.0},
      {"hydro", 900.0, 14.0, ControlPeriod::kBaseload, 0.0},
      {"wind", 400.0, 16.0, ControlPeriod::kBaseload, 0.0},
      {"ccgt-1", 1200.0, 28.0, ControlPeriod::kBaseload, 0.37},
      {"ccgt-2", 1000.0, 42.0, ControlPeriod::kPeak, 0.4},
      {"steam-oil", 600.0, 75.0, ControlPeriod::kPeak, 0.65},
      {"gas-peaker-1", 400.0, 120.0, ControlPeriod::kSpinningReserve, 0.55},
      {"gas-peaker-2", 300.0, 190.0, ControlPeriod::kSpinningReserve, 0.6},
      {"demand-response", 150.0, 244.04, ControlPeriod::kFrequencyControl, 0.0},
  });
}

DispatchResult DispatchStack::dispatch(util::Megawatts load) const {
  const double load_mw = load.value();
  if (load_mw < 0.0) throw std::invalid_argument("DispatchStack: negative load");
  OLEV_OBS_COUNTER(obs_dispatches, "grid.dispatch.calls");
  OLEV_OBS_ADD(obs_dispatches, 1);
  DispatchResult result;
  result.output_mw.assign(generators_.size(), 0.0);

  double remaining = load_mw;
  double price = generators_.front().marginal_cost;
  for (std::size_t i = 0; i < generators_.size() && remaining > 0.0; ++i) {
    const double take = std::min(remaining, generators_[i].capacity_mw);
    result.output_mw[i] = take;
    result.co2_t_per_h += take * generators_[i].co2_t_per_mwh;
    remaining -= take;
    price = generators_[i].marginal_cost;
  }

  if (remaining > 1e-9) {
    result.served = false;
    result.unserved_mw = remaining;
    result.price = voll_;
  } else {
    result.price = price;
  }
  result.reserve_margin_mw =
      total_capacity_mw_ - (load_mw - result.unserved_mw);
  return result;
}

}  // namespace olev::grid
