#include "grid/nyiso_day.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace olev::grid {

NyisoDay NyisoDay::generate(const NyisoDayConfig& config) {
  NyisoDay day;
  day.config_ = config;
  day.ticks_ = generate_load_day(config.load);
  if (day.ticks_.empty()) {
    throw std::runtime_error("NyisoDay: empty load day (bad tick_minutes?)");
  }
  day.lbmp_ = lbmp_day(config.price, config.load, day.ticks_);
  day.ancillary_ = ancillary_day(config.ancillary, config.load, day.ticks_);
  return day;
}

std::size_t NyisoDay::index_at(double hour) const {
  double h = std::fmod(hour, 24.0);
  if (h < 0.0) h += 24.0;
  const double dt_h = 24.0 / static_cast<double>(ticks_.size());
  auto idx = static_cast<std::size_t>(h / dt_h);
  return std::min(idx, ticks_.size() - 1);
}

const LoadTick& NyisoDay::tick_at(double hour) const {
  return ticks_[index_at(hour)];
}

double NyisoDay::lbmp_at(double hour) const { return lbmp_[index_at(hour)]; }

AncillaryPrices NyisoDay::ancillary_at(double hour) const {
  return ancillary_[index_at(hour)];
}

ControlPeriod NyisoDay::control_period_at(double hour) const {
  const LoadTick& tick = tick_at(hour);
  const double peak_threshold =
      config_.load.min_load_mw +
      0.75 * (config_.load.max_load_mw - config_.load.min_load_mw);
  const double reserve_threshold = 0.6 * config_.load.deficiency_cap_mw;
  return classify(util::mw(tick.actual_mw), util::mw(tick.deficiency_mw),
                  util::mw(peak_threshold), util::mw(reserve_threshold));
}

double NyisoDay::max_abs_deficiency() const {
  double worst = 0.0;
  for (const auto& tick : ticks_) {
    worst = std::max(worst, std::abs(tick.deficiency_mw));
  }
  return worst;
}

double NyisoDay::mean_ancillary_total() const { return mean_total(ancillary_); }

}  // namespace olev::grid
