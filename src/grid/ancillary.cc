#include "grid/ancillary.h"

#include <algorithm>
#include <cmath>

namespace olev::grid {

AncillaryPrices ancillary_prices(const AncillaryConfig& config,
                                 const LoadModelConfig& load_config,
                                 const LoadTick& tick) {
  const double span =
      std::max(1.0, load_config.max_load_mw - load_config.min_load_mw);
  const double level =
      std::clamp((tick.actual_mw - load_config.min_load_mw) / span, 0.0, 1.0);
  const double stress = config.deficiency_gain * std::abs(tick.deficiency_mw);

  AncillaryPrices prices;
  // Reserve prices scale superlinearly with system stress: reserves are
  // cheap off-peak and scarce exactly when load and deficiency are high.
  prices.sync10 = config.sync10_base * (1.0 + config.peak_gain * level * level) +
                  0.6 * stress;
  prices.regulation_capacity =
      config.regulation_base * (1.0 + 0.8 * config.peak_gain * level) + stress;
  prices.regulation_movement =
      config.movement_base * (1.0 + level) + 0.02 * stress;
  return prices;
}

std::vector<AncillaryPrices> ancillary_day(const AncillaryConfig& config,
                                           const LoadModelConfig& load_config,
                                           const std::vector<LoadTick>& ticks) {
  std::vector<AncillaryPrices> day;
  day.reserve(ticks.size());
  for (const auto& tick : ticks) {
    day.push_back(ancillary_prices(config, load_config, tick));
  }
  return day;
}

double mean_total(const std::vector<AncillaryPrices>& day) {
  if (day.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& prices : day) sum += prices.total();
  return sum / static_cast<double>(day.size());
}

}  // namespace olev::grid
