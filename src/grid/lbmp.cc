#include "grid/lbmp.h"

#include <algorithm>
#include <cmath>

namespace olev::grid {

double lbmp(const LbmpConfig& config, const LoadModelConfig& load_config,
            const LoadTick& tick) {
  const double span = load_config.max_load_mw - load_config.min_load_mw;
  const double level =
      span <= 0.0
          ? 0.0
          : std::clamp((tick.actual_mw - load_config.min_load_mw) / span, 0.0, 1.2);
  // Convex merit-order stack: cheap baseload first, expensive peakers last.
  double price = config.min_price +
                 (config.max_price - config.min_price) *
                     std::pow(std::min(level, 1.0), config.convexity);
  // Scarcity premium when actual load overshoots the forecast.
  if (tick.deficiency_mw > 0.0) {
    const double rel = tick.deficiency_mw / std::max(1.0, span);
    price *= 1.0 + config.scarcity_gain * rel * 10.0;
  }
  return std::clamp(price, config.min_price, config.max_price);
}

std::vector<double> lbmp_day(const LbmpConfig& config,
                             const LoadModelConfig& load_config,
                             const std::vector<LoadTick>& ticks) {
  std::vector<double> prices;
  prices.reserve(ticks.size());
  for (const auto& tick : ticks) prices.push_back(lbmp(config, load_config, tick));
  return prices;
}

}  // namespace olev::grid
