#include "grid/control_period.h"

#include <array>
#include <cstdlib>

namespace olev::grid {
namespace {
constexpr std::array<ControlPeriodTraits, 4> kTraits = {{
    {ControlPeriod::kBaseload, "baseload", 3600.0, 24.0 * 3600.0, 30.0, false},
    {ControlPeriod::kPeak, "peak", 600.0, 4.0 * 3600.0, 90.0, false},
    {ControlPeriod::kSpinningReserve, "spinning-reserve", 10.0, 600.0, 150.0, true},
    {ControlPeriod::kFrequencyControl, "frequency-control", 1.0, 60.0, 40.0, true},
}};
}  // namespace

const ControlPeriodTraits& traits(ControlPeriod period) {
  return kTraits[static_cast<std::size_t>(period)];
}

std::string_view name(ControlPeriod period) { return traits(period).name; }

ControlPeriod classify(util::Megawatts load, util::Megawatts deficiency,
                       util::Megawatts peak_threshold,
                       util::Megawatts reserve_threshold) {
  const double load_mw = load.value();
  const double deficiency_mw = deficiency.value();
  const double peak_threshold_mw = peak_threshold.value();
  const double reserve_threshold_mw = reserve_threshold.value();
  if (std::abs(deficiency_mw) >= reserve_threshold_mw) {
    return ControlPeriod::kSpinningReserve;
  }
  if (load_mw >= peak_threshold_mw) return ControlPeriod::kPeak;
  return ControlPeriod::kBaseload;
}

}  // namespace olev::grid
