#include "grid/load_model.h"

#include <algorithm>
#include <cmath>

namespace olev::grid {

util::PiecewiseLinear weekday_load_shape() {
  // Normalized NYISO-like weekday profile (hour, fraction of peak range).
  util::PiecewiseLinear shape({
      {0.0, 0.28},
      {2.0, 0.12},
      {4.0, 0.00},   // trough ~04:00
      {6.0, 0.18},
      {8.0, 0.52},   // morning ramp
      {10.0, 0.68},
      {12.0, 0.76},
      {14.0, 0.82},
      {16.0, 0.90},
      {18.0, 0.98},
      {19.0, 1.00},  // evening peak ~19:00
      {21.0, 0.80},
      {23.0, 0.45},
  });
  shape.periodic(24.0);
  return shape;
}

double forecast_load_mw(const LoadModelConfig& config, util::Hours hour) {
  static const util::PiecewiseLinear shape = weekday_load_shape();
  return config.min_load_mw +
         shape(hour.value()) * (config.max_load_mw - config.min_load_mw);
}

std::vector<LoadTick> generate_load_day(const LoadModelConfig& config) {
  util::Rng rng(config.seed);
  std::vector<LoadTick> ticks;
  const double dt_h = config.tick_minutes / 60.0;
  const auto count = static_cast<std::size_t>(std::lround(24.0 / dt_h));
  ticks.reserve(count);

  double error = 0.0;  // AR(1) forecast-error state
  for (std::size_t i = 0; i < count; ++i) {
    LoadTick tick;
    tick.hour = static_cast<double>(i) * dt_h;
    tick.forecast_mw = forecast_load_mw(config, util::hours(tick.hour));
    error = config.deficiency_rho * error +
            rng.normal(0.0, config.deficiency_sigma_mw);
    // Soft cap: tanh saturation keeps |deficiency| within the published max
    // while preserving the AR(1) small-signal behaviour.
    tick.deficiency_mw =
        config.deficiency_cap_mw * std::tanh(error / config.deficiency_cap_mw);
    tick.actual_mw = tick.forecast_mw + tick.deficiency_mw;
    ticks.push_back(tick);
  }
  return ticks;
}

}  // namespace olev::grid
