// Electricity market control periods (Section III of the paper): baseload,
// peak, spinning reserve, and frequency control, which "differ in control
// method, response time, duration of the power dispatch, contract terms, and
// price" [White & Zhang 2011].
#pragma once

#include <string_view>

#include "util/quantity.h"

namespace olev::grid {

enum class ControlPeriod {
  kBaseload,          ///< large plants, always-on
  kPeak,              ///< dispatched at high-demand hours
  kSpinningReserve,   ///< ancillary: power needed immediately
  kFrequencyControl,  ///< ancillary: generation/load frequency matching
};

/// Static market characteristics of a control period.
struct ControlPeriodTraits {
  ControlPeriod period;
  std::string_view name;
  double response_time_s;        ///< time to ramp in
  double typical_dispatch_s;     ///< typical duration of a dispatch
  double typical_price_per_mwh;  ///< order-of-magnitude contract price ($)
  bool ancillary;                ///< counted in ancillary-service cost
};

/// Lookup of the traits table (total 4 entries).
const ControlPeriodTraits& traits(ControlPeriod period);

std::string_view name(ControlPeriod period);

/// Classifies the grid state into the period that marginal demand is served
/// from: baseload at low load, peak at high load, spinning reserve when the
/// deficiency (actual - forecast) exceeds the reserve threshold.
[[nodiscard]] ControlPeriod classify(util::Megawatts load,
                                     util::Megawatts deficiency,
                                     util::Megawatts peak_threshold,
                                     util::Megawatts reserve_threshold);

}  // namespace olev::grid
