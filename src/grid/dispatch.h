// Merit-order generation dispatch.
//
// Section III describes how "baseload power is provided by large power
// plants [and] peak power is required at times of day when power
// requirements are high".  This module models that supply stack
// explicitly: generators sorted by marginal cost are dispatched until load
// is met; the marginal unit sets the clearing price (the mechanism behind
// the LBMP curve of Fig. 2(c)), and the undispatched remainder is the
// reserve margin ancillary services draw on.
#pragma once

#include <string>
#include <vector>

#include "grid/control_period.h"
#include "util/quantity.h"

namespace olev::grid {

struct Generator {
  std::string name;
  double capacity_mw = 0.0;
  double marginal_cost = 0.0;  ///< $/MWh
  ControlPeriod period = ControlPeriod::kBaseload;
  double co2_t_per_mwh = 0.0;  ///< emissions intensity
};

struct DispatchResult {
  double price = 0.0;          ///< clearing price ($/MWh)
  bool served = true;          ///< false when load exceeds total capacity
  double unserved_mw = 0.0;
  double reserve_margin_mw = 0.0;  ///< undispatched capacity
  double co2_t_per_h = 0.0;        ///< fleet emissions at this output
  std::vector<double> output_mw;   ///< per generator, stack order
};

class DispatchStack {
 public:
  /// Generators are re-sorted into merit order (ascending marginal cost).
  explicit DispatchStack(std::vector<Generator> generators);

  /// A NYISO-like fleet spanning the paper's load range (trough ~4017 MW,
  /// peak ~6658 MW) with prices inside the published [12.52, 244.04] band.
  static DispatchStack nyiso_like();

  /// Economic dispatch of `load` (>= 0).  When load exceeds capacity,
  /// price is the value-of-lost-load cap and `served` is false.
  [[nodiscard]] DispatchResult dispatch(util::Megawatts load) const;

  double total_capacity_mw() const { return total_capacity_mw_; }
  const std::vector<Generator>& generators() const { return generators_; }
  /// Price cap applied when demand cannot be served ($/MWh).
  double value_of_lost_load() const { return voll_; }

 private:
  std::vector<Generator> generators_;
  double total_capacity_mw_ = 0.0;
  double voll_ = 244.04;  // the paper's observed price cap
};

}  // namespace olev::grid
