// Location-based marginal price (LBMP) model.
//
// "LBMP is decided based on regional power demand and regional power supply"
// (Section III); on the paper's reference day it ranged from $12.52 to
// $244.04 per MWh.  We model the supply stack as a convex marginal-cost
// curve in the load level with a scarcity adder driven by the deficiency.
#pragma once

#include "grid/load_model.h"

namespace olev::grid {

struct LbmpConfig {
  double min_price = 12.52;    ///< $/MWh floor (paper's observed minimum)
  double max_price = 244.04;   ///< $/MWh cap (paper's observed maximum)
  double convexity = 3.0;      ///< supply-stack exponent (>1: convex)
  double scarcity_gain = 0.9;  ///< price sensitivity to positive deficiency
};

/// Marginal price for a given load tick.  Strictly increasing in actual
/// load; positive deficiency (under-forecast) adds a scarcity premium.
double lbmp(const LbmpConfig& config, const LoadModelConfig& load_config,
            const LoadTick& tick);

/// Full-day LBMP series aligned with `ticks`.
std::vector<double> lbmp_day(const LbmpConfig& config,
                             const LoadModelConfig& load_config,
                             const std::vector<LoadTick>& ticks);

}  // namespace olev::grid
