// Daily system-load model.
//
// The paper motivates the pricing policy with NYISO data for May 12 2016
// (Fig. 2): load between 4017.1 and 6657.8 MWh, deficiency (integrated minus
// forecast load) up to 167.8 MWh.  We do not have the proprietary CSVs, so
// this module generates a synthetic day with the published shape and ranges:
// a canonical weekday double-peak curve plus an AR(1) forecast-error process.
#pragma once

#include <vector>

#include "util/pwl.h"
#include "util/quantity.h"
#include "util/rng.h"

namespace olev::grid {

struct LoadModelConfig {
  double min_load_mw = 4017.1;   ///< overnight trough (paper's Fig. 2(a))
  double max_load_mw = 6657.8;   ///< evening peak (paper's Fig. 2(a))
  double deficiency_sigma_mw = 55.0;  ///< innovation scale of the AR(1) error
  double deficiency_rho = 0.85;       ///< AR(1) persistence (5-min steps)
  double deficiency_cap_mw = 167.8;   ///< |deficiency| soft cap (paper max)
  double tick_minutes = 5.0;          ///< sampling interval
  std::uint64_t seed = 0x51ab17;      ///< stream seed
};

/// One sampled grid tick.
struct LoadTick {
  double hour = 0.0;           ///< time of day in [0, 24)
  double forecast_mw = 0.0;    ///< day-ahead forecast load
  double actual_mw = 0.0;      ///< integrated (actual) load
  double deficiency_mw = 0.0;  ///< actual - forecast
};

/// The canonical normalized weekday load shape (NYC-like): overnight trough
/// around 04:00, morning ramp, afternoon plateau, evening peak around 19:00.
/// Range [0, 1]; periodic over 24 h.
util::PiecewiseLinear weekday_load_shape();

/// Generates a full day of load ticks under `config`.
std::vector<LoadTick> generate_load_day(const LoadModelConfig& config);

/// Forecast load (MW, raw Rep) at an arbitrary hour of day
/// (deterministic component only).
[[nodiscard]] double forecast_load_mw(const LoadModelConfig& config,
                                      util::Hours hour);

}  // namespace olev::grid
