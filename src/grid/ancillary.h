// Ancillary-service cost model (Fig. 2(d)): 10-minute synchronous reserve,
// regulation capacity, and regulation movement prices.  Ancillary services
// "cost about 5-10% of total electricity cost" and averaged $13.41/MW on the
// paper's reference day.
#pragma once

#include "grid/load_model.h"

namespace olev::grid {

struct AncillaryConfig {
  double sync10_base = 1.5;        ///< $/MW base for 10-min sync reserve
  double regulation_base = 2.5;    ///< $/MW base for regulation capacity
  double movement_base = 0.2;      ///< $/MW base for regulation movement
  double deficiency_gain = 0.05;   ///< price response per MW of |deficiency|
  double peak_gain = 2.2;          ///< multiplier growth toward the peak hours
};

/// Prices of the three ancillary products at one tick ($/MW).
struct AncillaryPrices {
  double sync10 = 0.0;
  double regulation_capacity = 0.0;
  double regulation_movement = 0.0;

  double total() const { return sync10 + regulation_capacity + regulation_movement; }
};

AncillaryPrices ancillary_prices(const AncillaryConfig& config,
                                 const LoadModelConfig& load_config,
                                 const LoadTick& tick);

/// Day series aligned with `ticks`.
std::vector<AncillaryPrices> ancillary_day(const AncillaryConfig& config,
                                           const LoadModelConfig& load_config,
                                           const std::vector<LoadTick>& ticks);

/// Mean of `total()` over the day (the paper reports $13.41).
double mean_total(const std::vector<AncillaryPrices>& day);

}  // namespace olev::grid
