// Mean-field approximation of the pricing game (docs/ALGORITHMS.md 5c).
//
// The exact asynchronous game (core/game.h) prices every OLEV against the
// other N-1 players' explicit load vector b, which makes a full round O(N)
// solves and caps the serving stack far below millions of players.  The
// congestion structure, however, only couples players through the
// *aggregate* per-section load -- the same observation the mean-field-game
// literature makes for EV charging (Couillet et al., "Electrical Vehicles in
// the Smart Grid: A Mean Field Game Analysis"; Beaude et al., "Charging
// Games in Networks of Electrical Vehicles" for the convergence conditions).
//
// MeanFieldGame therefore replaces the N-opponent view with the field
//
//   L_c  =  background_c + share of the aggregate OLEV demand T on section c,
//
// where the aggregate demand is split by the same water-filling rule the
// grid applies to individual requests (Lemma IV.1 in the continuum limit).
// One field iteration is:
//
//   1. lambda(T)  =  water level of T against the background loads (O(log C)
//                    against a pre-sorted background);
//   2. rho(T)     =  Z'(lambda(T)), the flat marginal price every
//                    representative player faces;
//   3. p_n        =  clamp((U_n')^{-1}(rho), 0, P_OLEV_n)   -- O(1)/player;
//   4. T'         =  sum_n p_n, with a welfare-backtracking damped step and
//                    a shrinking bracket around the unique fixed point.
//
// The aggregate response T -> sum_n p_n(rho(T)) is strictly decreasing while
// rho(T) is increasing, so the fixed point is unique; the welfare of the
// implied profile is unimodal in T with its maximum exactly at the fixed
// point, which is what lets the iteration enforce monotone welfare (the
// Theorem IV.1 analogue, audited under OLEV_AUDIT like the exact path).
//
// Exactness: with a homogeneous corridor (identical Z, no path
// restrictions, zero background) the mean-field fixed point satisfies the
// *same* stationarity conditions as the exact equilibrium -- U_n'(p_n) =
// Z'(T/C) -- so the approximation error is bounded by solver tolerances
// alone; the differential harness (tests/test_meanfield_vs_exact.cc) pins
// this against the exact Game for all N <= 50.  With a non-flat field the
// self-exclusion bias of pricing against the full aggregate is O(1/N),
// which is why the harness's tolerance bands tighten as N grows.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/game.h"
#include "core/schedule.h"
#include "core/welfare.h"
#include "util/quantity.h"

namespace olev::core {

struct MeanFieldConfig {
  /// Convergence: fixed-point residual |sum_n p_n(rho(T)) - T| relative to
  /// max(1, T).  Far below the exact game's epsilon so differential bands
  /// measure the approximation, not this solver.
  double epsilon = 1e-10;
  std::size_t max_iterations = 500;
  bool record_trajectory = false;
  /// Exogenous per-section load in kW (non-OLEV draw on the feeder); empty
  /// means zero everywhere.  A non-flat background is what makes the field
  /// a genuine distribution rather than a single level.
  std::vector<double> background_load_kw;
};

/// Compressed view of the per-section load distribution: count of sections
/// whose load falls in [lower_bounds[i], lower_bounds[i+1]).  The histogram
/// is the "mean field" the representative player prices against, exposed
/// for reporting and tests.
struct FieldHistogram {
  std::vector<double> lower_bounds;  ///< bucket lower edges, ascending (kW)
  std::vector<std::size_t> counts;   ///< same length as lower_bounds
  double min_load = 0.0;
  double max_load = 0.0;
};

/// Buckets `loads` into `buckets` equal-width bins over [min, max].
[[nodiscard]] FieldHistogram field_histogram(std::span<const double> loads,
                                             std::size_t buckets = 16);

struct MeanFieldResult {
  bool converged = false;
  std::size_t iterations = 0;      ///< accepted field iterations
  double total_load_kw = 0.0;      ///< T: aggregate OLEV demand at the fixed point
  double water_level_kw = 0.0;     ///< lambda(T)
  double marginal_price = 0.0;     ///< rho = Z'(lambda), $/h per kW
  std::vector<double> field;       ///< per-section load incl. background (kW)
  std::vector<double> requests;    ///< p_n per player (kW)
  std::vector<double> payments;    ///< Psi_n per player ($/h)
  std::vector<double> utilities;   ///< F_n = U_n - Psi_n per player
  double welfare = 0.0;
  CongestionReport congestion;
  /// One entry per accepted field iteration when recording: update = the
  /// iteration index, player = N (every player re-responded), request = T.
  std::vector<UpdateMetrics> trajectory;
};

/// The aggregate-distribution twin of core::Game.  Accepts the same
/// PlayerSpec list (so Scenario can mint either engine) but requires
/// unrestricted paths (empty allowed_sections) and a strictly convex
/// section cost -- path-restricted players and the linear baseline stay on
/// the exact game.
class MeanFieldGame {
 public:
  MeanFieldGame(std::vector<PlayerSpec> players, SectionCost cost,
                std::size_t sections, util::Kilowatts p_line,
                MeanFieldConfig config = {});

  std::size_t players() const { return players_.size(); }
  std::size_t sections() const { return sections_; }
  const SectionCost& cost() const { return cost_; }
  double p_line_kw() const { return p_line_kw_; }

  /// Iterates the field to its fixed point.  Deterministic: same inputs,
  /// same result, no RNG involved.
  [[nodiscard]] MeanFieldResult run();

  /// The per-player allocation rows implied by a result: each player holds
  /// the p_n / T share of the aggregate water-filled increment on every
  /// section (flat p_n / C rows over a flat field).  O(N * C) memory --
  /// intended for differential tests and sweep-scale N, not for millions of
  /// players.
  [[nodiscard]] PowerSchedule materialize_schedule(
      const MeanFieldResult& result) const;

  /// Adapter for call sites built around the exact engine (sweep results,
  /// trace export): materializes the schedule and copies the shared
  /// fields.  `updates` becomes iterations * N, the number of O(1)
  /// representative-player updates performed.
  [[nodiscard]] GameResult to_game_result(const MeanFieldResult& result) const;

 private:
  // The three helpers below are the per-iteration kernel and are hot roots
  // of the real-time wall (util/hot.h): one field iteration is a handful of
  // calls to them, and none may touch the allocator.
  /// sum_n clamp((U_n')^{-1}(marginal), 0, p_max_n).  Strictly decreasing
  /// in `marginal`; one O(1) solve per player.
  OLEV_HOT double aggregate_response(double marginal) const;
  /// Water level of aggregate demand `total` against the background.
  OLEV_HOT double level_for_total(double total) const;
  /// Welfare of the profile "every player best-responds to rho(total)":
  /// sum U_n(p_n) - sum_c [Z(L_c) - Z(background_c)] at the implied field.
  OLEV_HOT double welfare_at(double total,
                             double* responded_total = nullptr) const;
  /// Field (incl. background) implied by aggregate OLEV demand `total`.
  std::vector<double> field_at(double total) const;

  std::vector<PlayerSpec> players_;
  SectionCost cost_;
  std::size_t sections_;
  double p_line_kw_;
  MeanFieldConfig config_;
  std::vector<double> background_;   ///< per-section, zeros when not given
  SortedLoads sorted_background_;
  /// Pre-sized arena for welfare_at's non-flat water-fill (hot, mutable so
  /// the const kernel can reuse it; MeanFieldGame is not thread-safe).
  mutable std::vector<double> scratch_fill_row_;
  bool flat_background_ = true;      ///< all-zero background fast path
};

}  // namespace olev::core
