#include "core/distributed.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

#include "core/best_response.h"
#include "core/payment.h"
#include "core/water_filling.h"

namespace olev::core {

double AgentProfile::admission_cap_kw() const {
  // Eq. (3) from beacon-visible state: the line limit at the announced
  // velocity and an upper bound on Eq. (2) demand (requirement at most
  // soc_max -- the policy ceiling caps any legitimate trip requirement).
  const double line = wpt::p_line_kw(section, util::mps(velocity_mps));
  const double battery_bound =
      wpt::p_olev_kw(olev, soc, olev.battery.soc_max);
  return std::min(line, battery_bound);
}

namespace {

/// One OLEV endpoint: answers payment-function announcements with its best
/// response; optionally beacons physical state and overstates demand.
class OlevAgent {
 public:
  OlevAgent(std::uint32_t player, const Satisfaction& satisfaction,
            util::Kilowatts p_max,
            const SectionCost& cost, std::optional<AgentProfile> profile)
      : player_(player), satisfaction_(satisfaction.clone()), p_max_(p_max),
        cost_(cost), profile_(std::move(profile)) {}

  net::NodeId node() const { return player_ + 1; }  // grid owns node 0

  /// Announces physical state (run once at session start).
  void beacon(net::MessageBus& bus, double now) const {
    if (!profile_) return;
    net::BeaconMsg msg;
    msg.player = player_;
    msg.position_m = profile_->position_m;
    msg.velocity_mps = profile_->velocity_mps;
    msg.soc = profile_->soc;
    bus.send(node(), net::kGridNode, now, msg);
  }

  void handle(const net::Envelope& envelope, net::MessageBus& bus, double now) {
    const auto* announcement =
        std::get_if<net::PaymentFunctionMsg>(&envelope.payload);
    if (announcement == nullptr || announcement->player != player_) return;
    // Duplicate payment functions (retransmissions) are re-answered: the
    // response is deterministic, so this is idempotent at the grid.
    const util::Kilowatts claimed_cap =
        profile_ ? p_max_ * profile_->claim_factor : p_max_;
    const BestResponse response = best_response(
        *satisfaction_, cost_, announcement->others_load_kw, claimed_cap);
    net::PowerRequestMsg request;
    request.player = player_;
    request.round = announcement->round;
    request.total_kw = response.p_star;
    bus.send(node(), net::kGridNode, now, request);
  }

 private:
  std::uint32_t player_;
  std::unique_ptr<Satisfaction> satisfaction_;
  util::Kilowatts p_max_;
  SectionCost cost_;
  std::optional<AgentProfile> profile_;
};

/// The smart grid endpoint: coordinates rounds, water-fills requests,
/// announces updated payment functions, retransmits into loss, and (when
/// beacons are in use) clamps every request to the beacon-derived cap.
class SmartGrid {
 public:
  SmartGrid(std::size_t players, const SectionCost& cost, std::size_t sections,
            const DistributedConfig& config, bool admission_control)
      : cost_(cost), config_(config), schedule_(players, sections),
        admission_control_(admission_control),
        caps_(players, std::numeric_limits<double>::infinity()),
        payments_(players, 0.0) {}

  const PowerSchedule& schedule() const { return schedule_; }
  bool converged() const { return converged_; }
  std::size_t rounds() const { return round_; }
  std::size_t retransmissions() const { return retransmissions_; }
  const std::vector<double>& payments() const { return payments_; }

  void start(net::MessageBus& bus, double now) { announce(bus, now); }

  void handle(const net::Envelope& envelope, net::MessageBus& bus, double now) {
    if (const auto* beacon = std::get_if<net::BeaconMsg>(&envelope.payload)) {
      if (admission_control_ && beacon->player < caps_.size() &&
          pending_profiles_ != nullptr) {
        caps_[beacon->player] =
            (*pending_profiles_)[beacon->player].admission_cap_kw();
      }
      return;
    }
    const auto* request = std::get_if<net::PowerRequestMsg>(&envelope.payload);
    if (request == nullptr) return;
    // Only the outstanding round is actionable; stale or duplicate
    // responses (from retransmitted announcements) are ignored.
    if (request->round != round_ || request->player != cursor()) return;

    const std::size_t player = cursor();
    const auto others = schedule_.column_totals_excluding(player);
    const double previous = schedule_.row_total(player);
    const double admitted =
        std::clamp(request->total_kw, 0.0, caps_[player]);
    const WaterFillResult allocation = water_fill(others, util::kw(admitted));
    schedule_.set_row(player, allocation.row);

    net::ScheduleMsg confirmation;
    confirmation.player = request->player;
    confirmation.round = round_;
    confirmation.row_kw = allocation.row;
    confirmation.payment = externality_payment(cost_, others, allocation.row);
    payments_[player] = confirmation.payment;
    bus.send(net::kGridNode, envelope.from, now, confirmation);

    cycle_max_delta_ = std::max(
        cycle_max_delta_, std::abs(schedule_.row_total(player) - previous));
    ++round_;
    if (round_ % schedule_.players() == 0) {
      if (cycle_max_delta_ < config_.epsilon) {
        converged_ = true;
        return;
      }
      cycle_max_delta_ = 0.0;
    }
    announce(bus, now);
  }

  /// Retransmits the outstanding announcement when the response is overdue.
  void tick(net::MessageBus& bus, double now) {
    if (converged_) return;
    if (now - last_announce_s_ >= config_.retransmit_timeout_s) {
      ++retransmissions_;
      announce(bus, now);
    }
  }

  double last_announce_s() const { return last_announce_s_; }

  void bind_profiles(const std::vector<AgentProfile>* profiles) {
    pending_profiles_ = profiles;
  }

 private:
  std::size_t cursor() const { return round_ % schedule_.players(); }

  void announce(net::MessageBus& bus, double now) {
    const std::size_t player = cursor();
    net::PaymentFunctionMsg announcement;
    announcement.player = static_cast<std::uint32_t>(player);
    announcement.round = round_;
    announcement.others_load_kw = schedule_.column_totals_excluding(player);
    bus.send(net::kGridNode, static_cast<net::NodeId>(player + 1), now,
             std::move(announcement));
    last_announce_s_ = now;
  }

  SectionCost cost_;
  DistributedConfig config_;
  PowerSchedule schedule_;
  bool admission_control_;
  std::vector<double> caps_;
  std::vector<double> payments_;  ///< last confirmed payment per player
  const std::vector<AgentProfile>* pending_profiles_ = nullptr;
  std::uint64_t round_ = 0;
  double cycle_max_delta_ = 0.0;
  double last_announce_s_ = 0.0;
  bool converged_ = false;
  std::size_t retransmissions_ = 0;
};

DistributedResult run_session(std::vector<PlayerSpec> players,
                              const std::vector<AgentProfile>* profiles,
                              const SectionCost& cost, std::size_t sections,
                              const DistributedConfig& config) {
  net::MessageBus bus(config.link);
  SmartGrid grid(players.size(), cost, sections, config,
                 /*admission_control=*/profiles != nullptr);
  grid.bind_profiles(profiles);
  std::vector<OlevAgent> agents;
  agents.reserve(players.size());
  for (std::size_t n = 0; n < players.size(); ++n) {
    std::optional<AgentProfile> profile;
    if (profiles != nullptr) profile = (*profiles)[n];
    agents.emplace_back(static_cast<std::uint32_t>(n), *players[n].satisfaction,
                        players[n].p_max, cost, std::move(profile));
  }

  double now = 0.0;
  // Beacon phase: everyone announces physical state; deliver before the
  // first round so admission caps exist.  Beacons ride the same lossy bus;
  // a player whose beacon was dropped keeps an infinite cap until the next
  // session (conservative toward availability; noted in the header).
  for (const OlevAgent& agent : agents) agent.beacon(bus, now);
  now += config.link.base_latency_s + config.link.jitter_s + 1e-6;
  for (const net::Envelope& envelope : bus.poll(net::kGridNode, now)) {
    grid.handle(envelope, bus, now);
  }

  grid.start(bus, now);

  while (!grid.converged() && grid.rounds() < config.max_rounds &&
         now < config.max_sim_time_s) {
    // Event-driven clock: jump to the next arrival or the retransmission
    // deadline, whichever is sooner.
    const double deadline =
        grid.last_announce_s() + config.retransmit_timeout_s;
    double next = std::min(bus.next_arrival_s(), deadline);
    if (!std::isfinite(next)) next = deadline;
    now = std::max(now, next) + 1e-9;

    for (const net::Envelope& envelope : bus.poll(net::kGridNode, now)) {
      grid.handle(envelope, bus, now);
    }
    for (OlevAgent& agent : agents) {
      for (const net::Envelope& envelope : bus.poll(agent.node(), now)) {
        agent.handle(envelope, bus, now);
      }
    }
    grid.tick(bus, now);
  }

  DistributedResult result;
  result.schedule = grid.schedule();
  result.converged = grid.converged();
  result.rounds = grid.rounds();
  result.retransmissions = grid.retransmissions();
  result.sim_time_s = now;
  result.bus = bus.stats();
  result.payments = grid.payments();
  return result;
}

}  // namespace

DistributedResult run_distributed_game(std::vector<PlayerSpec> players,
                                       const SectionCost& cost,
                                       std::size_t sections,
                                       util::Kilowatts p_line,
                                       const DistributedConfig& config) {
  (void)p_line;  // kept in the signature for symmetry with Game
  return run_session(std::move(players), nullptr, cost, sections, config);
}

DistributedResult run_v2i_session(std::vector<PlayerSpec> players,
                                  const std::vector<AgentProfile>& profiles,
                                  const SectionCost& cost, std::size_t sections,
                                  const DistributedConfig& config) {
  if (profiles.size() != players.size()) {
    throw std::invalid_argument("run_v2i_session: players/profiles mismatch");
  }
  return run_session(std::move(players), &profiles, cost, sections, config);
}

}  // namespace olev::core
