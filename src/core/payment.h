// The nonlinear pricing policy's payment machinery (Section IV-C).
//
//   Y_{n,c}(p) = Z(b_c + p_{n,c})                       (Eq. 8)
//   xi_n(p_-n, p_n) = sum_c [Y_{n,c}(p) - Y_{n,c}(0)]   (Eq. 9, externality)
//   Psi_n(p_n) = xi_n(p_-n, p_hat_n(p_n))               (Eq. 16)
//
// where p_hat_n(p_n) is the cost-minimizing (water-filled) split of the
// scalar request p_n.  Psi_n is the *power payment function* the smart grid
// announces to OLEV n; it is unbiased (Psi_n(0) = 0), strictly convex and
// increasing, and its derivative has the closed form Psi_n'(p_n) =
// Z'(lambda*(p_n)) by the envelope theorem -- the identity the best-response
// solver exploits.
#pragma once

#include <span>

#include "core/cost.h"
#include "core/water_filling.h"

namespace olev::core {

/// xi_n for an explicit row allocation (Eq. 9).  Returns $/h in raw Rep
/// (Psi_n is a payment *rate*: the row is sustained power in kW).
[[nodiscard]] double externality_payment(const SectionCost& z,
                                         std::span<const double> others_load,
                                         std::span<const double> row);

/// The announced payment function Psi_n evaluated at a scalar request:
/// water-fills `total` against `others_load`, then charges the externality.
[[nodiscard]] double payment_of_total(const SectionCost& z,
                                      std::span<const double> others_load,
                                      Kilowatts total);

/// Psi_n'(total) = Z'(lambda*(total)) (envelope theorem).  For total = 0 the
/// right derivative Z'(min_c b_c) is returned.
[[nodiscard]] double payment_derivative(const SectionCost& z,
                                        std::span<const double> others_load,
                                        Kilowatts total);

/// Hot-path variants against a pre-sorted b: the water level costs O(log C)
/// instead of O(C log C) per evaluation.  Results are bit-identical to the
/// span overloads.
[[nodiscard]] double payment_of_total(const SectionCost& z,
                                      const SortedLoads& others_load,
                                      Kilowatts total);
[[nodiscard]] double payment_derivative(const SectionCost& z,
                                        const SortedLoads& others_load,
                                        Kilowatts total);

/// Convenience bundle when both the value and the allocation are needed.
struct PaymentQuote {
  double payment = 0.0;
  WaterFillResult allocation;
};
[[nodiscard]] PaymentQuote quote_payment(const SectionCost& z,
                                         std::span<const double> others_load,
                                         Kilowatts total);

}  // namespace olev::core
