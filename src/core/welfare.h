// Social welfare (Eq. 7) and congestion-degree metrics.
//
//   W(p) = sum_n U_n(p_n) - sum_c Z(P_c)
//
// Congestion degree of section c is P_c / P_line (Section IV-B); the
// evaluation tracks its mean across sections as the game iterates
// (Figs. 5(d)/6(d)) and sweeps a *desired* degree by scaling demand
// (Figs. 5(a)/6(a)).
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "core/cost.h"
#include "core/satisfaction.h"
#include "core/schedule.h"
#include "util/quantity.h"

namespace olev::core {

/// W(p) for a full schedule.  `players` must have schedule.players()
/// entries.  The cost term is the *incremental* cost Z(P_c) - Z(0): V may
/// carry a fixed standing charge (the paper's nonlinear V has V(0) =
/// beta alpha^2 > 0), and counting it per section would penalize idle
/// capacity; all optimizers are unaffected by the constant shift.
double social_welfare(std::span<const std::unique_ptr<Satisfaction>> players,
                      const SectionCost& z, const PowerSchedule& schedule);

/// Total payment collected from all players at the current schedule
/// (sum of externality payments; used for the Fig. 5(a) payment metric).
double total_payments(const SectionCost& z, const PowerSchedule& schedule);

struct CongestionReport {
  std::vector<double> per_section;  ///< P_c / P_line
  double mean = 0.0;
  double max = 0.0;
  double jain_fairness = 1.0;       ///< balance of the per-section loads
};

/// Congestion degrees for a schedule given the raw line capacity P_line
/// (NOT the eta-discounted cap; the paper normalizes by total capacity).
[[nodiscard]] CongestionReport congestion_report(const PowerSchedule& schedule,
                                                util::Kilowatts p_line);

/// Same report for a bare per-section load vector (kW) -- the mean-field
/// engine carries the aggregate field, not an N x C schedule.
[[nodiscard]] CongestionReport congestion_report(
    std::span<const double> section_loads, util::Kilowatts p_line);

}  // namespace olev::core
