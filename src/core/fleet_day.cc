#include "core/fleet_day.h"

#include <algorithm>
#include <cmath>

#include "core/scenario.h"
#include "traffic/demand.h"
#include "util/rng.h"
#include "util/units.h"

namespace olev::core {

FleetDayConfig::FleetDayConfig() {
  // Normalize the NYC hourly counts into per-hour road presence in
  // [0.05, 0.9].
  const auto counts = traffic::nyc_arterial_hourly_counts();
  double peak = 0.0;
  for (double c : counts) peak = std::max(peak, c);
  for (std::size_t h = 0; h < 24; ++h) {
    presence[h] = std::clamp(0.9 * counts[h] / peak, 0.05, 0.9);
  }
}

FleetDayResult run_fleet_day(const FleetDayConfig& config,
                             const grid::NyisoDay& day) {
  util::Rng rng(config.seed);
  const util::MetersPerSecond velocity = util::to_mps(config.velocity);
  const double p_line = wpt::p_line_kw(config.section, velocity);
  const double cap = config.eta * p_line;
  const double period_h = config.period_minutes / 60.0;

  FleetDayResult result;
  result.fleet.reserve(config.fleet_size);
  for (std::size_t n = 0; n < config.fleet_size; ++n) {
    FleetOlev olev;
    olev.battery = wpt::Battery(
        config.olev.battery,
        rng.uniform(config.initial_soc_low, config.initial_soc_high));
    olev.soc_required = rng.uniform(0.6, 0.9);
    olev.base_weight = rng.uniform(0.8, 1.2);
    result.fleet.push_back(std::move(olev));
  }

  // Per-OLEV driving drain for one active period.
  const double distance_km_per_period = util::mps_to_kmh(velocity.value()) *
                                        period_h * config.driving_duty;
  const double drain_kwh = distance_km_per_period *
                           config.olev.consumption_kwh_per_km /
                           config.olev.eta_olev;

  const auto period_count =
      static_cast<std::size_t>(std::lround(24.0 / period_h));
  for (std::size_t period = 0; period < period_count; ++period) {
    const double hour = static_cast<double>(period) * period_h;
    const double beta = day.lbmp_at(hour);
    const auto hour_bucket = static_cast<std::size_t>(hour) % 24;

    // Who is on the road this period?
    std::vector<std::size_t> active;
    for (std::size_t n = 0; n < config.fleet_size; ++n) {
      if (rng.bernoulli(config.presence[hour_bucket])) active.push_back(n);
    }

    PeriodRecord record;
    record.hour = hour;
    record.beta_lbmp = beta;
    record.active_olevs = active.size();

    if (!active.empty()) {
      // Build the period's cost and players from live battery state.
      SectionCost cost(
          paper_nonlinear_pricing(util::Price::per_mwh(beta), config.alpha,
                                  util::kw(cap)),
                       OverloadCost{config.overload_weight_scale * beta /
                                    1000.0 / p_line},
          util::kw(cap));
      const double base_marginal = cost.derivative(0.5 * cap);

      std::vector<PlayerSpec> players;
      players.reserve(active.size());
      for (std::size_t n : active) {
        FleetOlev& olev = result.fleet[n];
        const double p_olev = wpt::p_olev_kw(config.olev, olev.battery.soc(),
                                             olev.soc_required);
        PlayerSpec player;
        const double deficit =
            std::max(0.0, olev.soc_required - olev.battery.soc());
        // Depleted vehicles bid harder (SOC balancing).
        const double weight = olev.base_weight * base_marginal * p_line *
                              (1.0 + config.soc_weight_gain * deficit);
        player.satisfaction = std::make_unique<LogSatisfaction>(
            std::max(1e-9, weight));
        // Eq. (3) caps plus battery acceptance: no point scheduling (and
        // paying for) power the pack cannot absorb this period.
        const double p_accept =
            olev.battery.headroom_kwh() /
            std::max(1e-9, period_h * config.section.transfer_efficiency);
        player.p_max = util::kw(std::min({p_olev, p_line, p_accept}));
        players.push_back(std::move(player));
      }

      GameConfig game_config = config.game;
      game_config.seed = util::derive_seed(config.seed, period);
      Game game(std::move(players), cost, config.num_sections,
                util::kw(p_line), game_config);
      const GameResult outcome = game.run();

      record.converged = outcome.converged;
      record.welfare = outcome.welfare;
      record.mean_congestion = outcome.congestion.mean;
      for (std::size_t i = 0; i < active.size(); ++i) {
        FleetOlev& olev = result.fleet[active[i]];
        const double grid_kwh = outcome.requests[i] * period_h;
        const double accepted = olev.battery.charge_kwh(
            util::kwh(grid_kwh * config.section.transfer_efficiency));
        olev.energy_received_kwh += accepted;
        record.energy_kwh += accepted;
        const double paid = outcome.payments[i] * period_h;
        olev.total_paid += paid;
        record.payments += paid;
        ++olev.periods_active;
      }
    }

    // Driving drain for everyone who was on the road.
    for (std::size_t n : active) {
      FleetOlev& olev = result.fleet[n];
      olev.energy_driven_kwh += olev.battery.discharge_kwh(util::kwh(drain_kwh));
    }

    result.total_energy_kwh += record.energy_kwh;
    result.total_payments += record.payments;
    result.periods.push_back(std::move(record));
  }

  double soc_sum = 0.0;
  for (const FleetOlev& olev : result.fleet) soc_sum += olev.battery.soc();
  result.mean_final_soc = soc_sum / static_cast<double>(config.fleet_size);
  return result;
}

}  // namespace olev::core
