// The asynchronous best-response game (Section IV-D/E/F).
//
// The smart grid and the OLEVs iterate:
//   1. the grid announces OLEV n's payment function Psi_n (equivalently, the
//      aggregate other-load vector b and the section cost Z);
//   2. OLEV n plays its best response p_n* (Lemma IV.3);
//   3. the grid water-fills p_n* across sections (Lemma IV.1) and updates
//      the schedule.
// Players update one at a time -- round-robin or uniformly at random -- and
// by Theorem IV.1 the process converges to the unique socially optimal
// schedule.
//
// The *linear pricing baseline* evaluated in Section V runs through the same
// engine with SchedulerKind::kGreedy: under V(x) = beta * x the payment is
// allocation-independent, the water level is not identified, and the grid
// has no balancing incentive -- the baseline fills sections greedily in
// index order up to the safety cap, which reproduces the unbalanced loads of
// Figs. 5(c)/6(c).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/best_response.h"
#include "core/cost.h"
#include "core/satisfaction.h"
#include "core/schedule.h"
#include "core/welfare.h"
#include "util/quantity.h"
#include "util/rng.h"

namespace olev::core {

struct PlayerSpec {
  std::unique_ptr<Satisfaction> satisfaction;
  util::Kilowatts p_max{};  ///< P_OLEV_n of Eq. (2)-(3)
  /// Sections this OLEV can physically draw from (its planned path).
  /// Empty = all sections.  Must have `sections` entries otherwise.
  std::vector<bool> allowed_sections;
};

enum class UpdateOrder { kRoundRobin, kUniformRandom };
enum class SchedulerKind { kWaterFilling, kGreedy };

struct GameConfig {
  UpdateOrder order = UpdateOrder::kRoundRobin;
  SchedulerKind scheduler = SchedulerKind::kWaterFilling;
  double epsilon = 1e-5;          ///< convergence: max row change over a cycle
  std::size_t max_updates = 500000;
  std::uint64_t seed = 0x9a3e;
  bool record_trajectory = false;
};

/// Counters for the incremental-update caches (cumulative since the last
/// reset).  `response_*` counts whole player updates: a hit means the
/// player's b vector was unchanged since its last update, so the stored
/// best response was reused without solving anything.  `section_*` counts
/// per-section cost cells in commit_row: a reuse means the section's load
/// did not change, so Z(P_c) kept its cached value.
///
/// This struct is the per-Game view; every increment is mirrored into the
/// process-wide obs registry under `core.game.*` (docs/OBSERVABILITY.md),
/// which aggregates across all Game instances and threads.
struct CacheCounters {
  std::size_t response_cache_hits = 0;
  std::size_t response_recomputes = 0;
  std::size_t section_cost_reuses = 0;
  std::size_t section_cost_refreshes = 0;

  /// Fraction of player updates served from the response cache; 0 when no
  /// updates happened yet (so the ratio is always a valid probability).
  double response_hit_ratio() const {
    const std::size_t total = response_cache_hits + response_recomputes;
    return total == 0 ? 0.0
                      : static_cast<double>(response_cache_hits) /
                            static_cast<double>(total);
  }
  /// Fraction of per-section cost cells reused without re-evaluating Z.
  double section_reuse_ratio() const {
    const std::size_t total = section_cost_reuses + section_cost_refreshes;
    return total == 0 ? 0.0
                      : static_cast<double>(section_cost_reuses) /
                            static_cast<double>(total);
  }
  /// Zeroes every counter (the struct stays aggregate-initializable; this
  /// mirrors obs::Registry::reset() for the per-Game view).
  void reset() { *this = CacheCounters{}; }
};

/// Per-update metrics (one entry per player update when recording).
struct UpdateMetrics {
  std::size_t update = 0;
  std::size_t player = 0;
  double request = 0.0;          ///< p_n* chosen this update
  double request_delta = 0.0;    ///< |p_n* - previous p_n|
  double welfare = 0.0;
  double mean_congestion = 0.0;  ///< mean_c P_c / P_line
  CacheCounters caches;          ///< cumulative snapshot at this update
};

struct GameResult {
  PowerSchedule schedule;
  bool converged = false;
  std::size_t updates = 0;
  double welfare = 0.0;
  CongestionReport congestion;
  std::vector<double> requests;   ///< per-player totals p_n
  std::vector<double> payments;   ///< per-player Psi_n at the fixed point
  std::vector<double> utilities;  ///< per-player F_n at the fixed point
  std::vector<UpdateMetrics> trajectory;  ///< empty unless recording
  CacheCounters caches;           ///< totals for the whole run
};

class Game {
 public:
  /// `p_line` is the (uniform) raw line capacity used for congestion
  /// normalization; the safety cap eta*P_line lives inside `cost`.
  Game(std::vector<PlayerSpec> players, SectionCost cost, std::size_t sections,
       util::Kilowatts p_line, GameConfig config = {});

  std::size_t players() const { return players_.size(); }
  std::size_t sections() const { return sections_; }
  const PowerSchedule& schedule() const { return schedule_; }
  const SectionCost& cost() const { return cost_; }
  double p_line_kw() const { return p_line_kw_; }

  /// Performs one asynchronous update for `player`; returns |delta p_n|.
  /// Real-time hot root (util/hot.h): after construction, updates never
  /// touch the allocator -- all working storage lives in pre-sized arenas.
  OLEV_HOT double update_player(std::size_t player);

  /// Performs one update for the next player per the configured order.
  OLEV_HOT double step();

  /// Runs to convergence (or max_updates); resets the schedule first unless
  /// `warm_start`.
  [[nodiscard]] GameResult run(bool warm_start = false);

  /// Metrics snapshot of the current schedule.
  double current_welfare() const;
  CongestionReport current_congestion() const;

  /// Cache counters for the current run (see CacheCounters).
  const CacheCounters& cache_counters() const { return caches_; }

 private:
  /// b for `player`: cached column totals minus the player's own row,
  /// written into `out` (length C).  Never allocates.
  void others_load_into(std::size_t player, std::span<double> out) const;
  /// Writes the new row and refreshes the cached column totals, per-section
  /// cost values, row totals and satisfaction values -- all by delta, only
  /// for the sections whose load actually changed.
  void commit_row(std::size_t player, std::span<const double> others,
                  std::span<const double> row);
  double update_waterfill(std::size_t player, std::span<const double> others);
  double update_greedy(std::size_t player, std::span<const double> others);
  std::size_t pick_player();
  /// (Re)derives every cached aggregate from the current schedule.
  void rebuild_caches();
  GameResult finalize(bool converged, std::size_t updates,
                      std::vector<UpdateMetrics> trajectory) const;

  std::vector<PlayerSpec> players_;
  SectionCost cost_;
  std::size_t sections_;
  double p_line_kw_;
  GameConfig config_;
  PowerSchedule schedule_;
  std::vector<double> column_totals_;  ///< cached P_c, kept in sync with schedule_
  // --- incremental hot-path caches (invariants in docs/ALGORITHMS.md) ---
  std::vector<double> cost_values_;   ///< Z(P_c) per section
  std::vector<double> row_totals_;    ///< p_n per player
  std::vector<double> sat_values_;    ///< U_n(p_n) per player
  std::vector<std::vector<double>> last_b_;  ///< b at each player's last solve
  std::vector<bool> has_last_b_;
  std::vector<double> last_p_star_;   ///< p_n* from each player's last solve
  // --- pre-sized hot-path arenas (rebuild_caches sizes them; update_player
  // --- and everything below it never allocate) ---
  std::vector<double> scratch_others_;        ///< b of the updating player
  std::vector<double> scratch_row_;           ///< full-width row being built
  std::vector<double> scratch_subset_;        ///< masked b subvector
  std::vector<std::size_t> scratch_positions_;  ///< masked section indices
  std::vector<double> scratch_subrow_;        ///< masked row subvector
  SortedLoads scratch_sorted_;                ///< reserved to C sections
  CacheCounters caches_;
  util::Rng rng_;
  std::size_t cursor_ = 0;  // round-robin position
};

}  // namespace olev::core
