// Lemma IV.1: the smart grid splits OLEV n's total request p_n across
// charging sections so that the loaded sections share a common level,
//
//   p_{n,c} = [lambda* - b_c]^+ ,   sum_c p_{n,c} = p_n ,
//
// where b_c is the other OLEVs' load on section c.  Because Z is identical
// across sections and strictly convex, equalizing post-allocation loads
// (b_c + p_{n,c} = lambda* on active sections) is exactly the KKT condition
// Z'(b_c + p_{n,c}) = rho*, i.e. classic water-filling.
//
// Two solvers are provided: an exact O(C log C) sort-based algorithm and a
// bisection solver on Y(lambda) = sum_c [lambda - b_c]^+ (the form the paper
// describes in Section IV-F).  They agree to ~1e-12 and cross-check each
// other in the tests.
#pragma once

#include <span>
#include <vector>

#include "util/hot.h"
#include "util/quantity.h"

namespace olev::core {

/// Scalar power requests and water levels are strongly typed (kW).  The
/// other-load vectors b stay spans of raw `double` *in kW*: they are the
/// solvers' inner representation (see util/quantity.h's preamble), and the
/// per-section rows in the results likewise.
using util::Kilowatts;

struct WaterFillResult {
  double level = 0.0;           ///< lambda*
  std::vector<double> row;      ///< p_{n,c} allocation, same length as b
  int active_sections = 0;      ///< |{c : p_{n,c} > 0}|
  int iterations = 0;           ///< bisection iterations (0 for exact)
};

/// Exact sort-based water-filling.  `others_load` is b; `total` is p_n >= 0.
[[nodiscard]] WaterFillResult water_fill(std::span<const double> others_load,
                                         Kilowatts total);

/// Bisection on Y(lambda) - total = 0 (Section IV-F's method).
[[nodiscard]] WaterFillResult water_fill_bisect(std::span<const double> others_load,
                                                Kilowatts total,
                                                double tolerance = 1e-10);

/// Y(x) = sum_c [x - b_c]^+, the strictly increasing function of Eq. (24).
/// Hot (util/hot.h): pure fold over b, never allocates.
[[nodiscard]] OLEV_HOT double water_fill_volume(
    std::span<const double> others_load, Kilowatts level);

/// Masked variant: water-fills `total` over only the sections with
/// mask[c] == true (the sections on the OLEV's planned path -- Section
/// IV-A's ETA exchange tells the grid which sections a vehicle will
/// actually traverse).  Unmasked sections receive exactly 0.  Lemma IV.1
/// holds verbatim on the masked subset.  Requires at least one masked
/// section when total > 0.
[[nodiscard]] WaterFillResult water_fill_masked(std::span<const double> others_load,
                                                Kilowatts total,
                                                const std::vector<bool>& mask);

/// A pre-sorted view of an others-load vector b for repeated water-fill
/// queries against the same (or nearly the same) b.
///
/// The best-response bisection evaluates Psi_n'(p) = Z'(lambda*(p)) dozens
/// of times against one fixed b; re-sorting b on every evaluation made each
/// query O(C log C).  SortedLoads sorts once, keeps fold-left prefix sums of
/// the sorted loads, and answers
///   - level_for(total) in O(log C)  (binary search over the active count),
///   - fill_into(...)   in O(C)      (one pass into a caller buffer, no
///                                    allocation),
///   - update_one(...)  in O(C)      (in-place shift instead of a full
///                                    re-sort when a single entry of b moved).
/// All of them reproduce water_fill()'s arithmetic exactly -- same fold-left
/// summation order, same level formula -- so results are bit-identical to
/// the one-shot solver (property-tested).
///
/// Real-time discipline (util/hot.h): the query/update members are hot roots
/// of the static allocation wall.  Storage is sized by the cold members
/// (assign / reserve); reassign and update_one then run against the reserved
/// capacity without touching the allocator.
class SortedLoads {
 public:
  SortedLoads() = default;
  explicit SortedLoads(std::span<const double> others_load);

  /// Re-seeds from a fresh b, growing storage as needed.  Cold: may
  /// allocate.  O(C log C).
  void assign(std::span<const double> others_load);
  /// Pre-sizes storage for up to `cap` sections without changing the
  /// logical contents.  Cold: may allocate.
  void reserve(std::size_t cap);
  /// Re-seeds from a fresh b within previously reserved storage.  Hot: never
  /// allocates; fails (cold throw) if b exceeds the reserved capacity.
  void reassign(std::span<const double> others_load);
  /// Replaces b[index] with new_value, repositioning it in the sorted order
  /// with an in-place shift.  Hot: never allocates.  O(C) worst case.
  OLEV_HOT void update_one(std::size_t index, double new_value);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// b in its original section order.
  std::span<const double> values() const { return {values_.data(), size_}; }

  /// lambda* for the given total; bit-identical to water_fill().level.
  [[nodiscard]] OLEV_HOT double level_for(Kilowatts total) const;
  /// Full allocation at `total`; bit-identical to water_fill().  Cold
  /// convenience wrapper around fill_into (the result row allocates).
  [[nodiscard]] WaterFillResult fill(Kilowatts total) const;
  /// Writes the allocation at `total` into `row` (length must equal size())
  /// and returns lambda*.  Bit-identical to fill().  Hot: never allocates.
  OLEV_HOT double fill_into(Kilowatts total, std::span<double> row,
                            int* active_sections = nullptr) const;

 private:
  void rebuild_prefix(std::size_t from);

  // Physical capacity is values_.size() (== sorted_.size(), and
  // prefix_.size() == capacity + 1); the live prefix is [0, size_).
  std::vector<double> values_;  ///< original order
  std::vector<double> sorted_;  ///< ascending
  std::vector<double> prefix_;  ///< prefix_[k] = fold-left sum of sorted_[0..k)
  std::size_t size_ = 0;
};

/// Generalized water-filling for *heterogeneous* sections.
///
/// The paper assumes one Z for every section, which reduces the KKT
/// condition Z'(b_c + p_c) = rho to load equalization.  When sections have
/// different cost curves Z_c (e.g. different safety caps because they sit
/// on roads with different speed limits), the stationarity condition reads
///
///   Z_c'(b_c + p_{n,c}) = rho*   on sections with p_{n,c} > 0,
///   p_{n,c} = [ (Z_c')^{-1}(rho*) - b_c ]^+  otherwise,
///
/// and the unique rho* is found by bisection on the (strictly increasing)
/// total allocation.  With identical costs this reduces exactly to
/// water_fill (tested).
struct GeneralizedFillResult {
  double marginal = 0.0;        ///< rho*
  std::vector<double> row;
  int active_sections = 0;
  int iterations = 0;
};
class SectionCost;  // cost.h
[[nodiscard]] GeneralizedFillResult generalized_fill(
    std::span<const SectionCost* const> section_costs,
    std::span<const double> others_load, Kilowatts total,
    double tolerance = 1e-9);

}  // namespace olev::core
