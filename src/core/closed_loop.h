// Closed-loop coupling of the pricing game to the traffic simulation.
//
// Section III (traffic + WPT physics) and Section IV (the game) are
// evaluated separately in the paper.  This controller closes the loop: it
// rides the simulation as a StepObserver, and every replanning period it
//   1. takes a census of OLEVs the ChargingLane currently tracks (their
//      live SOC comes from the lane's batteries),
//   2. plays the pricing game for them -- beta from the grid model at the
//      current hour, P_OLEV from Eq. (2) at their live SOC,
//   3. imposes the resulting per-section column totals on the lane as
//      power budgets (ChargingLane::set_section_budgets_kw).
// Between replans the lane delivers opportunistically within those
// budgets, so the physical energy flow tracks the socially optimal
// schedule as the population churns.
#pragma once

#include <cstdint>
#include <vector>

#include "core/game.h"
#include "util/quantity.h"
#include "grid/nyiso_day.h"
#include "traffic/detector.h"
#include "wpt/charging_lane.h"

namespace olev::core {

struct ClosedLoopConfig {
  double replan_period_s = 300.0;
  double alpha = 0.875;
  double eta = 0.9;
  double overload_weight_scale = 25.0;
  double demand_weight = 1.2;  ///< bid intensity relative to Z'(eta P_line/2)
  double soc_required = 0.8;   ///< trip requirement used for Eq. (2)
  wpt::OlevParams olev;
  std::uint64_t seed = 0xc105ed;
  GameConfig game;
};

/// Per-replan record for inspection.
struct ReplanRecord {
  double time_s = 0.0;
  double beta_lbmp = 0.0;
  std::size_t players = 0;
  double scheduled_total_kw = 0.0;
  double welfare = 0.0;
  bool converged = true;  ///< vacuously true when no players
};

class ClosedLoopController : public traffic::StepObserver {
 public:
  /// `lane` must be registered on the same simulation *before* this
  /// controller so its battery census is fresh; both must outlive it.
  ClosedLoopController(wpt::ChargingLane& lane, const grid::NyisoDay& day,
                       ClosedLoopConfig config = {});

  void on_step(const traffic::StepView& view) override;

  const std::vector<ReplanRecord>& replans() const { return replans_; }
  std::size_t replan_count() const { return replans_.size(); }

 private:
  void replan(util::Seconds time, std::span<const traffic::Vehicle> vehicles);

  wpt::ChargingLane& lane_;
  const grid::NyisoDay& day_;
  ClosedLoopConfig config_;
  double next_replan_s_ = 0.0;
  std::vector<ReplanRecord> replans_;
};

}  // namespace olev::core
