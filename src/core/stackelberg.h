// Stackelberg pricing baseline (Tushar et al., "Economics of electric
// vehicle charging: a game theoretic approach", IEEE Trans. Smart Grid
// 2012 -- reference [17] the paper positions itself against).
//
// The grid is the *leader*: it posts a single uniform unit price to
// maximize its own revenue.  OLEVs are *followers*: each solves
// max_p U_n(p) - price * p on [0, P_OLEV_n].  Unlike the paper's
// externality pricing, the posted price carries no congestion signal, so
// the leader maximizes revenue, not social welfare -- the comparison the
// repository's baseline bench quantifies.
//
// Follower reaction: p_n(price) = clamp((U'_n)^{-1}(price), 0, p_max); for
// strictly concave U the reaction is unique and non-increasing in price,
// making leader revenue a well-behaved scalar maximization solved here by
// golden-section search.
#pragma once

#include <memory>
#include <vector>

#include "core/cost.h"
#include "core/satisfaction.h"
#include "core/schedule.h"
#include "util/quantity.h"

namespace olev::core {

struct StackelbergOptions {
  double price_floor = 0.0;     ///< leader's minimum feasible unit price
  double price_cap = 0.0;       ///< 0 = derive from max_n U'_n(0)
  double tolerance = 1e-9;
  int max_iterations = 300;
};

struct StackelbergResult {
  double price = 0.0;           ///< leader's optimal uniform unit price
  double revenue = 0.0;         ///< price * total demand at the optimum
  std::vector<double> requests; ///< follower reactions p_n(price)
  double total_power = 0.0;
  PowerSchedule schedule;       ///< demand spread evenly across sections
  double welfare = 0.0;         ///< social welfare of the outcome (Eq. 7)
};

/// Follower best response to a posted unit price ($/kWh against the
/// per-kWh satisfaction U_n).  Returns the reaction in kW (raw solver
/// Rep, like the request vectors).
[[nodiscard]] double follower_reaction(const Satisfaction& u,
                                       util::DollarsPerKwh price,
                                       util::Kilowatts p_max);

/// Solves the leader's revenue maximization and evaluates the outcome's
/// social welfare under section cost `z` with `sections` symmetric
/// sections (the leader splits demand evenly -- the most charitable
/// allocation for the baseline).
[[nodiscard]] StackelbergResult solve_stackelberg(
    std::span<const std::unique_ptr<Satisfaction>> players,
    std::span<const double> p_max, const SectionCost& z, std::size_t sections,
    const StackelbergOptions& options = {});

}  // namespace olev::core
