// Lemma IV.3: the optimal power request of OLEV n against the announced
// payment function is
//
//   p* = 0                        if F'(0) < 0
//   p* = P_OLEV_n                 if F'(P_OLEV_n) > 0
//   p* : F'(p*) = 0               otherwise,
//
// with F(p) = U_n(p) - Psi_n(p) strictly concave, so F'(p) = U'_n(p) -
// Z'(lambda*(p)) is strictly decreasing and the interior root is unique.
// The solver uses clamped bisection on F' and then re-derives the row
// allocation by water-filling at p*.
#pragma once

#include <span>

#include "core/cost.h"
#include "core/satisfaction.h"
#include "core/water_filling.h"

namespace olev::core {

struct BestResponse {
  double p_star = 0.0;          ///< optimal total request
  WaterFillResult allocation;   ///< water-filled row at p_star
  double payment = 0.0;         ///< Psi_n(p_star)
  double utility = 0.0;         ///< F_n(p_star) = U_n - Psi_n
  int iterations = 0;
  enum class Case { kCornerZero, kCornerCap, kInterior } kind = Case::kInterior;
};

struct BestResponseOptions {
  double tolerance = 1e-9;
  int max_iterations = 200;
};

/// Solves Lemma IV.3 for one player.  `p_max` is P_OLEV_n (Eq. 2-3);
/// `others_load` is b.  Requires a strictly convex section cost.
[[nodiscard]] BestResponse best_response(const Satisfaction& u, const SectionCost& z,
                                         std::span<const double> others_load,
                                         Kilowatts p_max,
                                         const BestResponseOptions& options = {});

/// Hot-path variant against a pre-sorted b.  b is sorted once by the caller;
/// every bisection step then finds the water level in O(log C) instead of
/// O(C log C).  Bit-identical to the span overload (which delegates here).
[[nodiscard]] BestResponse best_response(const Satisfaction& u, const SectionCost& z,
                                         const SortedLoads& others_load,
                                         Kilowatts p_max,
                                         const BestResponseOptions& options = {});

/// Allocation-free result of best_response_into: everything BestResponse
/// carries except the row, which the caller owns.
struct BestResponseScalars {
  double p_star = 0.0;
  double level = 0.0;           ///< lambda* at p_star
  double payment = 0.0;
  double utility = 0.0;
  int active_sections = 0;
  int iterations = 0;
  BestResponse::Case kind = BestResponse::Case::kInterior;
};

/// Real-time core of the solver (util/hot.h): writes the row allocation at
/// p* into `row` (length must equal others_load.size()) and never touches
/// the allocator.  The SortedLoads overload of best_response delegates here,
/// so results are bit-identical.
[[nodiscard]] OLEV_HOT BestResponseScalars best_response_into(
    const Satisfaction& u, const SectionCost& z,
    const SortedLoads& others_load, Kilowatts p_max, std::span<double> row,
    const BestResponseOptions& options = {});

/// F'_n(p): marginal utility of requesting one more unit of power.
[[nodiscard]] double utility_derivative(const Satisfaction& u, const SectionCost& z,
                                        std::span<const double> others_load,
                                        Kilowatts p);
[[nodiscard]] double utility_derivative(const Satisfaction& u, const SectionCost& z,
                                        const SortedLoads& others_load,
                                        Kilowatts p);

}  // namespace olev::core
