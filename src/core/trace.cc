#include "core/trace.h"

#include <fstream>
#include <stdexcept>

#include "util/json.h"

namespace olev::core {

std::string to_json(const GameResult& result) {
  util::JsonWriter json;
  json.begin_object();
  json.key("converged").value(result.converged);
  json.key("updates").value(result.updates);
  json.key("welfare").value(result.welfare);
  json.key("players").value(result.schedule.players());
  json.key("sections").value(result.schedule.sections());

  json.key("requests").value(result.requests);
  json.key("payments").value(result.payments);
  json.key("utilities").value(result.utilities);
  json.key("section_loads").value(result.schedule.column_totals());

  json.key("congestion").begin_object();
  json.key("mean").value(result.congestion.mean);
  json.key("max").value(result.congestion.max);
  json.key("jain_fairness").value(result.congestion.jain_fairness);
  json.key("per_section").value(result.congestion.per_section);
  json.end_object();

  json.key("schedule").begin_array();
  for (std::size_t n = 0; n < result.schedule.players(); ++n) {
    const auto row = result.schedule.row(n);
    json.value(std::vector<double>(row.begin(), row.end()));
  }
  json.end_array();

  json.key("trajectory").begin_array();
  for (const UpdateMetrics& metrics : result.trajectory) {
    json.begin_object();
    json.key("update").value(metrics.update);
    json.key("player").value(metrics.player);
    json.key("request").value(metrics.request);
    json.key("delta").value(metrics.request_delta);
    json.key("welfare").value(metrics.welfare);
    json.key("mean_congestion").value(metrics.mean_congestion);
    json.end_object();
  }
  json.end_array();

  json.end_object();
  return json.str();
}

void save_json(const GameResult& result, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_json: cannot open " + path);
  out << to_json(result) << '\n';
  if (!out) throw std::runtime_error("save_json: write failed for " + path);
}

}  // namespace olev::core
