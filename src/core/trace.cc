#include "core/trace.h"

#include "obs/strings.h"
#include "util/json.h"

namespace olev::core {

std::string to_json(const GameResult& result) {
  util::JsonWriter json;
  json.begin_object();
  json.key("converged").value(result.converged);
  json.key("updates").value(result.updates);
  json.key("welfare").value(result.welfare);
  json.key("players").value(result.schedule.players());
  json.key("sections").value(result.schedule.sections());

  json.key("requests").value(result.requests);
  json.key("payments").value(result.payments);
  json.key("utilities").value(result.utilities);
  json.key("section_loads").value(result.schedule.column_totals());

  json.key("congestion").begin_object();
  json.key("mean").value(result.congestion.mean);
  json.key("max").value(result.congestion.max);
  json.key("jain_fairness").value(result.congestion.jain_fairness);
  json.key("per_section").value(result.congestion.per_section);
  json.end_object();

  json.key("schedule").begin_array();
  for (std::size_t n = 0; n < result.schedule.players(); ++n) {
    const auto row = result.schedule.row(n);
    json.value(std::vector<double>(row.begin(), row.end()));
  }
  json.end_array();

  json.key("trajectory").begin_array();
  for (const UpdateMetrics& metrics : result.trajectory) {
    json.begin_object();
    json.key("update").value(metrics.update);
    json.key("player").value(metrics.player);
    json.key("request").value(metrics.request);
    json.key("delta").value(metrics.request_delta);
    json.key("welfare").value(metrics.welfare);
    json.key("mean_congestion").value(metrics.mean_congestion);
    json.end_object();
  }
  json.end_array();

  json.end_object();
  return json.str();
}

void save_json(const GameResult& result, const std::string& path) {
  // obs::write_file reports the failing path and errno in its exception.
  obs::write_file(path, to_json(result) + '\n');
}

std::string to_json(const SweepReport& report) {
  util::JsonWriter json;
  json.begin_object();
  json.key("scenarios").value(report.scenarios);
  json.key("threads").value(report.threads);
  json.key("converged").value(report.converged);
  json.key("total_updates").value(report.total_updates);
  json.key("wall_seconds").value(report.wall_seconds);
  json.key("scenarios_per_second").value(report.scenarios_per_second);
  json.key("response_hit_ratio").value(report.response_hit_ratio);
  json.key("section_reuse_ratio").value(report.section_reuse_ratio);
  json.key("worker_utilization").value(report.worker_utilization());

  json.key("workers").begin_array();
  for (const SweepWorkerStats& worker : report.workers) {
    json.begin_object();
    json.key("worker").value(worker.worker);
    json.key("scenarios").value(worker.scenarios);
    json.key("busy_seconds").value(worker.busy_seconds);
    json.key("utilization").value(worker.utilization);
    json.end_object();
  }
  json.end_array();

  const auto histogram = [&json](const obs::HistogramSnapshot& snapshot) {
    json.begin_object();
    json.key("name").value(snapshot.name);
    json.key("bounds").value(snapshot.bounds);
    json.key("counts").begin_array();
    for (std::uint64_t c : snapshot.counts) {
      json.value(static_cast<std::size_t>(c));
    }
    json.end_array();
    json.key("count").value(static_cast<std::size_t>(snapshot.count));
    json.key("sum").value(snapshot.sum);
    json.key("mean").value(snapshot.mean());
    json.end_object();
  };
  json.key("updates_per_scenario");
  histogram(report.updates_per_scenario);
  json.key("solve_millis");
  histogram(report.solve_millis);

  json.end_object();
  return json.str();
}

void save_json(const SweepReport& report, const std::string& path) {
  obs::write_file(path, to_json(report) + '\n');
}

std::string to_json(const SweepBenchReport& report) {
  util::JsonWriter json;
  json.begin_object();
  json.key("scenarios").value(report.scenarios);
  json.key("hardware_concurrency").value(report.hardware_concurrency);
  json.key("thread_counts").begin_array();
  for (std::size_t threads : report.thread_counts) json.value(threads);
  json.end_array();
  json.key("bit_identical_across_threads")
      .value(report.bit_identical_across_threads);

  json.key("sweep").begin_array();
  for (const SweepBenchTiming& timing : report.sweep) {
    json.begin_object();
    json.key("threads").value(timing.threads);
    json.key("seconds").value(timing.seconds);
    json.key("scenarios_per_sec").value(timing.scenarios_per_sec);
    json.key("speedup").value(timing.speedup);
    json.end_object();
  }
  json.end_array();

  json.key("hot_path").begin_object();
  json.key("players").value(report.hot_players);
  json.key("sections").value(report.hot_sections);
  json.key("updates").value(report.hot_updates);
  json.key("seconds").value(report.hot_seconds);
  json.key("updates_per_sec").value(report.hot_updates_per_sec);
  json.key("response_cache_hits").value(report.hot_caches.response_cache_hits);
  json.key("response_recomputes").value(report.hot_caches.response_recomputes);
  json.key("section_cost_reuses").value(report.hot_caches.section_cost_reuses);
  json.key("section_cost_refreshes")
      .value(report.hot_caches.section_cost_refreshes);
  json.end_object();

  json.end_object();
  return json.str();
}

void save_json(const SweepBenchReport& report, const std::string& path) {
  obs::write_file(path, to_json(report) + '\n');
}

}  // namespace olev::core
