#include "core/schedule.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace olev::core {

// Real-time wall manifest: the row accessors and the b-vector fold are on
// every hot Game / engine update.
OLEV_HOT_ROOT("olev::core::PowerSchedule::row");
OLEV_HOT_ROOT("olev::core::PowerSchedule::set_row");
OLEV_HOT_ROOT("olev::core::PowerSchedule::column_totals_excluding_into");

PowerSchedule::PowerSchedule(std::size_t players, std::size_t sections)
    : players_(players), sections_(sections), data_(players * sections, 0.0) {}

std::span<const double> PowerSchedule::row(std::size_t n) const {
  if (n >= players_) util::hot_fail_out_of_range("PowerSchedule::row");
  return {data_.data() + n * sections_, sections_};
}

void PowerSchedule::set_row(std::size_t n, std::span<const double> values) {
  if (n >= players_) util::hot_fail_out_of_range("PowerSchedule::set_row");
  if (values.size() != sections_) {
    util::hot_fail_invalid_argument("PowerSchedule::set_row: wrong row length");
  }
  std::copy(values.begin(), values.end(), data_.begin() + n * sections_);
}

void PowerSchedule::zero_row(std::size_t n) {
  if (n >= players_) throw std::out_of_range("PowerSchedule::zero_row");
  std::fill_n(data_.begin() + n * sections_, sections_, 0.0);
}

double PowerSchedule::row_total(std::size_t n) const {
  double sum = 0.0;
  for (double v : row(n)) sum += v;
  return sum;
}

double PowerSchedule::column_total(std::size_t c) const {
  if (c >= sections_) throw std::out_of_range("PowerSchedule::column_total");
  double sum = 0.0;
  for (std::size_t n = 0; n < players_; ++n) sum += at(n, c);
  return sum;
}

std::vector<double> PowerSchedule::column_totals() const {
  std::vector<double> totals(sections_, 0.0);
  for (std::size_t n = 0; n < players_; ++n) {
    const double* row_ptr = data_.data() + n * sections_;
    for (std::size_t c = 0; c < sections_; ++c) totals[c] += row_ptr[c];
  }
  return totals;
}

std::vector<double> PowerSchedule::column_totals_excluding(std::size_t n) const {
  std::vector<double> totals(sections_, 0.0);
  column_totals_excluding_into(n, totals);
  return totals;
}

void PowerSchedule::column_totals_excluding_into(std::size_t n,
                                                 std::span<double> out) const {
  if (out.size() != sections_) {
    util::hot_fail_invalid_argument(
        "PowerSchedule::column_totals_excluding_into: wrong length");
  }
  // Same fold as column_totals(): accumulate row-major so the summation
  // order (and hence the floating-point result) matches bit-for-bit.
  for (std::size_t c = 0; c < sections_; ++c) out[c] = 0.0;
  for (std::size_t m = 0; m < players_; ++m) {
    const double* row_ptr = data_.data() + m * sections_;
    for (std::size_t c = 0; c < sections_; ++c) out[c] += row_ptr[c];
  }
  const auto own = row(n);
  for (std::size_t c = 0; c < sections_; ++c) out[c] -= own[c];
  // Guard against negative dust from floating-point cancellation.
  for (std::size_t c = 0; c < sections_; ++c) out[c] = std::max(0.0, out[c]);
}

double PowerSchedule::max_abs_diff(const PowerSchedule& other) const {
  if (players_ != other.players_ || sections_ != other.sections_) {
    throw std::invalid_argument("PowerSchedule::max_abs_diff: shape mismatch");
  }
  double worst = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    worst = std::max(worst, std::abs(data_[i] - other.data_[i]));
  }
  return worst;
}

double PowerSchedule::total() const {
  double sum = 0.0;
  for (double v : data_) sum += v;
  return sum;
}

}  // namespace olev::core
