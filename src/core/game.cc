#include "core/game.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/payment.h"
#include "obs/obs.h"
#include "util/audit.h"
#include "util/hot.h"
#include "util/rng.h"

namespace olev::core {

// Real-time wall manifest (tools/olev_rtcheck.py).  update_player / step are
// the per-vehicle serving quantum: everything below them runs out of the
// pre-sized arenas.  The two vcall allowances cover satisfaction / pricing
// dispatch whose concrete overrides are themselves registered hot roots
// (core/satisfaction.cc, core/cost.cc).
OLEV_HOT_ROOT("olev::core::Game::update_player");
OLEV_HOT_ROOT("olev::core::Game::step");
OLEV_RT_VCALL_OK("olev::core::Game::commit_row",
                 "Satisfaction::value dispatch; every override is a "
                 "registered hot root");
OLEV_RT_VCALL_OK("olev::core::Game::update_greedy",
                 "Satisfaction/CostPolicy dispatch; every override is a "
                 "registered hot root");

#if OLEV_OBS_ENABLED
namespace {
// Eagerly-bound obs handles: a function-local static would put
// __cxa_guard_acquire and the registry lock on the hot path.
obs::Counter& g_obs_cache_hits =
    obs::Registry::instance().counter("core.game.response_cache_hits");
obs::Counter& g_obs_recomputes =
    obs::Registry::instance().counter("core.game.response_recomputes");
obs::Counter& g_obs_section_reuses =
    obs::Registry::instance().counter("core.game.section_cost_reuses");
obs::Counter& g_obs_section_refreshes =
    obs::Registry::instance().counter("core.game.section_cost_refreshes");
}  // namespace
#endif

Game::Game(std::vector<PlayerSpec> players, SectionCost cost,
           std::size_t sections, util::Kilowatts p_line, GameConfig config)
    : players_(std::move(players)),
      cost_(std::move(cost)),
      sections_(sections),
      p_line_kw_(p_line.value()),
      config_(config),
      schedule_(players_.size(), sections),
      column_totals_(sections, 0.0),
      rng_(config.seed) {
  if (players_.empty()) throw std::invalid_argument("Game: need at least one player");
  if (sections_ == 0) throw std::invalid_argument("Game: need at least one section");
  if (p_line_kw_ <= 0.0) throw std::invalid_argument("Game: p_line must be positive");
  for (const PlayerSpec& player : players_) {
    if (player.satisfaction == nullptr) {
      throw std::invalid_argument("Game: player without satisfaction function");
    }
    if (player.p_max.value() < 0.0)
      throw std::invalid_argument("Game: negative p_max");
    if (!player.allowed_sections.empty()) {
      if (player.allowed_sections.size() != sections_) {
        throw std::invalid_argument("Game: allowed_sections length mismatch");
      }
      if (std::none_of(player.allowed_sections.begin(),
                       player.allowed_sections.end(),
                       [](bool allowed) { return allowed; }) &&
          player.p_max.value() > 0.0) {
        throw std::invalid_argument(
            "Game: player with positive cap but no admissible section");
      }
    }
  }
  rebuild_caches();
}

void Game::rebuild_caches() {
  column_totals_ = schedule_.column_totals();
  cost_values_.resize(sections_);
  for (std::size_t c = 0; c < sections_; ++c) {
    cost_values_[c] = cost_.value(column_totals_[c]);
  }
  row_totals_.resize(players_.size());
  sat_values_.resize(players_.size());
  for (std::size_t n = 0; n < players_.size(); ++n) {
    row_totals_[n] = schedule_.row_total(n);
    sat_values_[n] = players_[n].satisfaction->value(row_totals_[n]);
  }
  last_b_.assign(players_.size(), std::vector<double>(sections_, 0.0));
  has_last_b_.assign(players_.size(), false);
  last_p_star_.assign(players_.size(), 0.0);
  // Hot-path arenas: sized once here so update_player never allocates.
  scratch_others_.assign(sections_, 0.0);
  scratch_row_.assign(sections_, 0.0);
  scratch_subset_.assign(sections_, 0.0);
  scratch_positions_.assign(sections_, 0);
  scratch_subrow_.assign(sections_, 0.0);
  scratch_sorted_.reserve(sections_);
  caches_ = CacheCounters{};
}

void Game::others_load_into(std::size_t player, std::span<double> out) const {
  const auto own = schedule_.row(player);
  for (std::size_t c = 0; c < sections_; ++c) {
    out[c] = std::max(0.0, column_totals_[c] - own[c]);
  }
}

void Game::commit_row(std::size_t player, std::span<const double> others,
                      std::span<const double> row) {
  schedule_.set_row(player, row);
  // Same summation order as PowerSchedule::row_total so the cached value is
  // bit-identical to a recomputation.
  double row_total = 0.0;
  for (double v : row) row_total += v;
  // Tally into locals and flush once below: one registry add per commit
  // instead of one per section keeps the hot loop free of atomics.
  std::size_t reuses = 0;
  std::size_t refreshes = 0;
  for (std::size_t c = 0; c < sections_; ++c) {
    const double updated = others[c] + row[c];
    if (updated == column_totals_[c]) {
      ++reuses;
      continue;
    }
    column_totals_[c] = updated;
    cost_values_[c] = cost_.value(updated);
    ++refreshes;
  }
  caches_.section_cost_reuses += reuses;
  caches_.section_cost_refreshes += refreshes;
  OLEV_OBS_ONLY(g_obs_section_reuses.add(reuses);
                g_obs_section_refreshes.add(refreshes);)
  if (row_total != row_totals_[player]) {
    row_totals_[player] = row_total;
    sat_values_[player] = players_[player].satisfaction->value(row_total);
  }

#if OLEV_AUDIT_ENABLED
  // Cache-coherence audit: every incrementally maintained aggregate must
  // match a from-scratch recompute.  Derived cells (cost of a cached total,
  // satisfaction of a cached row total) are pure functions of cached inputs
  // and must match to the bit; the column totals themselves are maintained
  // by +/- deltas, so they only agree with a fresh fold-left sum to
  // rounding (1e-9 relative catches any stale cell, which would be off by
  // a whole allocation, not an ulp).
  {
    namespace audit = util::audit;
    for (std::size_t c = 0; c < sections_; ++c) {
      OLEV_AUDIT_FINITE(column_totals_[c],
                        "commit_row: column total " + std::to_string(c));
      OLEV_AUDIT_CHECK(
          audit::close(column_totals_[c], schedule_.column_total(c), 1e-9),
          "commit_row: cached column total " + std::to_string(c) + " = " +
              std::to_string(column_totals_[c]) + " drifted from schedule " +
              std::to_string(schedule_.column_total(c)));
      OLEV_AUDIT_CHECK(
          cost_values_[c] == cost_.value(column_totals_[c]),
          "commit_row: stale cost cell " + std::to_string(c));
    }
    for (std::size_t n = 0; n < players_.size(); ++n) {
      OLEV_AUDIT_CHECK(row_totals_[n] == schedule_.row_total(n),
                       "commit_row: stale row total for player " +
                           std::to_string(n));
      OLEV_AUDIT_CHECK(
          sat_values_[n] == players_[n].satisfaction->value(row_totals_[n]),
          "commit_row: stale satisfaction cell for player " +
              std::to_string(n));
    }
  }
#endif
}

double Game::update_waterfill(std::size_t player,
                              std::span<const double> others) {
  const double previous = row_totals_[player];
  const auto& mask = players_[player].allowed_sections;

  if (mask.empty()) {
    scratch_sorted_.reassign(others);
    std::span<double> row{scratch_row_.data(), sections_};
    const BestResponseScalars response =
        best_response_into(*players_[player].satisfaction, cost_,
                           scratch_sorted_, players_[player].p_max, row);
    // Eq. 8-9: the externality payment of a non-negative allocation against
    // a nondecreasing Z is non-negative (VCG individual rationality).
    OLEV_AUDIT_FINITE(response.payment, "update_waterfill: payment");
    OLEV_AUDIT_CHECK(response.payment >= -1e-9,
                     "update_waterfill: negative externality payment " +
                         std::to_string(response.payment) + " for player " +
                         std::to_string(player));
    OLEV_AUDIT_CHECK(response.p_star >= 0.0 &&
                         response.p_star <= players_[player].p_max.value() + 1e-12,
                     "update_waterfill: best response " +
                         std::to_string(response.p_star) +
                         " outside [0, p_max]");
    commit_row(player, others, row);
    last_p_star_[player] = response.p_star;
    return std::abs(response.p_star - previous);
  }

  // Path-restricted player: the best response lives on the admissible
  // subset of sections (Lemma IV.1/IV.3 verbatim on the subvector of b).
  std::size_t admissible = 0;
  for (std::size_t c = 0; c < sections_; ++c) {
    if (mask[c]) {
      scratch_subset_[admissible] = others[c];
      scratch_positions_[admissible] = c;
      ++admissible;
    }
  }
  for (std::size_t c = 0; c < sections_; ++c) scratch_row_[c] = 0.0;
  double p_star = 0.0;
  if (admissible > 0) {
    scratch_sorted_.reassign({scratch_subset_.data(), admissible});
    std::span<double> subrow{scratch_subrow_.data(), admissible};
    const BestResponseScalars response =
        best_response_into(*players_[player].satisfaction, cost_,
                           scratch_sorted_, players_[player].p_max, subrow);
    p_star = response.p_star;
    for (std::size_t i = 0; i < admissible; ++i) {
      scratch_row_[scratch_positions_[i]] = subrow[i];
    }
  }
  commit_row(player, others, scratch_row_);
  last_p_star_[player] = p_star;
  return std::abs(p_star - previous);
}

double Game::update_greedy(std::size_t player,
                           std::span<const double> others) {
  // Linear-pricing baseline.  Psi_n(p) = beta * p regardless of the split,
  // so the scalar best response solves U'(p) = beta directly; the grid then
  // fills sections in index order up to the safety cap (no balancing
  // incentive exists under a flat unit price).
  const double beta = cost_.pricing().derivative(0.0);
  const Satisfaction& u = *players_[player].satisfaction;
  const double p_max = players_[player].p_max.value();
  double p_star;
  if (u.derivative(0.0) <= beta) {
    p_star = 0.0;
  } else if (u.derivative(p_max) >= beta) {
    p_star = p_max;
  } else {
    double lo = 0.0;
    double hi = p_max;
    for (int it = 0; it < 200 && hi - lo > 1e-9; ++it) {
      const double mid = 0.5 * (lo + hi);
      if (u.derivative(mid) > beta) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    p_star = 0.5 * (lo + hi);
  }

  // Each OLEV charges where it happens to be: fill sections starting at a
  // stable per-vehicle offset (its position along the lane), wrapping
  // forward, with no attempt to balance across sections.
  const std::size_t offset = static_cast<std::size_t>(
      util::derive_seed(config_.seed, player) % sections_);
  for (std::size_t c = 0; c < sections_; ++c) scratch_row_[c] = 0.0;
  double remaining = p_star;
  for (std::size_t k = 0; k < sections_ && remaining > 0.0; ++k) {
    const std::size_t c = (offset + k) % sections_;
    const double room = std::max(0.0, cost_.cap_kw() - others[c]);
    const double take = std::min(room, remaining);
    scratch_row_[c] = take;
    remaining -= take;
  }
  // Demand beyond all caps spills onto the entry section (the baseline has
  // no congestion disincentive; overload simply happens).
  if (remaining > 0.0) scratch_row_[offset] += remaining;

  const double previous = row_totals_[player];
  commit_row(player, others, scratch_row_);
  last_p_star_[player] = p_star;
  return std::abs(p_star - previous);
}

double Game::update_player(std::size_t player) {
  // Bounds check precedes the hot region: constructing the exception is
  // itself an allocation, sanctioned only through the cold-fail funnel.
  if (player >= players_.size()) {
    util::hot_fail_out_of_range("Game::update_player");
  }
  OLEV_HOT_REGION("core.game.update");
  std::span<double> others{scratch_others_.data(), sections_};
  others_load_into(player, others);
  // Both schedulers are deterministic functions of b (and fixed player
  // parameters): if b is unchanged since this player's last solve, its row
  // is already its best response -- skip the solve entirely.  last_b_ rows
  // are pre-sized to C, so the comparison and the refresh below never
  // allocate.
  std::vector<double>& last_b = last_b_[player];
  if (has_last_b_[player] &&
      std::equal(others.begin(), others.end(), last_b.begin())) {
    ++caches_.response_cache_hits;
    OLEV_OBS_ONLY(g_obs_cache_hits.add(1);)
    return std::abs(last_p_star_[player] - row_totals_[player]);
  }
  ++caches_.response_recomputes;
  OLEV_OBS_ONLY(g_obs_recomputes.add(1);)
  const double delta = config_.scheduler == SchedulerKind::kWaterFilling
                           ? update_waterfill(player, others)
                           : update_greedy(player, others);
  std::copy(others.begin(), others.end(), last_b.begin());
  has_last_b_[player] = true;
  return delta;
}

std::size_t Game::pick_player() {
  if (config_.order == UpdateOrder::kRoundRobin) {
    const std::size_t player = cursor_;
    cursor_ = (cursor_ + 1) % players_.size();
    return player;
  }
  return static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(players_.size()) - 1));
}

double Game::step() { return update_player(pick_player()); }

double Game::current_welfare() const {
  // O(N + C) over the cached values; no satisfaction or cost re-evaluation.
  double welfare = 0.0;
  for (double satisfaction : sat_values_) welfare += satisfaction;
  const double idle_cost = cost_.value(0.0);
  for (double section_cost : cost_values_) welfare -= section_cost - idle_cost;
  return welfare;
}

CongestionReport Game::current_congestion() const {
  return congestion_report(schedule_, util::Kilowatts{p_line_kw_});
}

GameResult Game::run(bool warm_start) {
  OLEV_OBS_SPAN(run_span, "game.run", "solver");
  if (!warm_start) {
    schedule_ = PowerSchedule(players_.size(), sections_);
    cursor_ = 0;
    rebuild_caches();
  }

  std::vector<UpdateMetrics> trajectory;
  double cycle_max_delta = 0.0;
  bool converged = false;
  std::size_t updates = 0;
  // A convergence window closes only once EVERY player has been updated in
  // it -- with uniform-random order a fixed-length window can miss players
  // and a small max-delta would be meaningless.
  std::vector<bool> touched(players_.size(), false);
  std::size_t touched_count = 0;
  // Theorem IV.1: under the nonlinear policy W is an exact potential for
  // the asynchronous game, so every best-response update is a weak ascent
  // step.  The greedy baseline has no such guarantee (linear pricing never
  // internalizes the overload cost), so the audit only arms for the
  // water-filling scheduler.
  OLEV_AUDIT_ONLY(double audit_welfare = current_welfare();)

  while (updates < config_.max_updates) {
    const std::size_t player = pick_player();
    const double previous = row_totals_[player];
    // Fine detail only: one span per player update swamps a phase trace.
    OLEV_OBS_FINE_SPAN(update_span, "game.update", "solver");
    const double delta = update_player(player);
    ++updates;

#if OLEV_AUDIT_ENABLED
    if (config_.scheduler == SchedulerKind::kWaterFilling) {
      const double welfare_now = current_welfare();
      OLEV_AUDIT_FINITE(welfare_now, "Game::run: welfare");
      OLEV_AUDIT_CHECK(
          welfare_now >=
              audit_welfare - 1e-6 * std::max(1.0, std::abs(audit_welfare)),
          "Game::run: welfare decreased on update " + std::to_string(updates) +
              " (player " + std::to_string(player) + "): " +
              std::to_string(audit_welfare) + " -> " +
              std::to_string(welfare_now));
      audit_welfare = welfare_now;
    }
#endif
    cycle_max_delta = std::max(cycle_max_delta, delta);
    if (!touched[player]) {
      touched[player] = true;
      ++touched_count;
    }

    if (config_.record_trajectory) {
      UpdateMetrics metrics;
      metrics.update = updates;
      metrics.player = player;
      metrics.request = row_totals_[player];
      metrics.request_delta = std::abs(metrics.request - previous);
      metrics.welfare = current_welfare();
      metrics.mean_congestion = current_congestion().mean;
      metrics.caches = caches_;
      trajectory.push_back(metrics);
    }

    if (touched_count == players_.size()) {
      if (cycle_max_delta < config_.epsilon) {
        converged = true;
        break;
      }
      cycle_max_delta = 0.0;
      std::fill(touched.begin(), touched.end(), false);
      touched_count = 0;
    }
  }

  OLEV_OBS_COUNTER(obs_runs, "core.game.runs");
  OLEV_OBS_ADD(obs_runs, 1);
  OLEV_OBS_HISTOGRAM(obs_updates, "core.game.updates_per_run",
                     {10, 30, 100, 300, 1000, 3000, 10000, 100000});
  OLEV_OBS_OBSERVE(obs_updates, static_cast<double>(updates));
  OLEV_OBS_SPAN_ARG(run_span, "updates", static_cast<double>(updates));
  OLEV_OBS_SPAN_ARG(run_span, "converged", converged ? 1.0 : 0.0);
  return finalize(converged, updates, std::move(trajectory));
}

GameResult Game::finalize(bool converged, std::size_t updates,
                          std::vector<UpdateMetrics> trajectory) const {
  OLEV_OBS_SPAN(finalize_span, "game.finalize", "solver");
  GameResult result;
  result.schedule = schedule_;
  result.converged = converged;
  result.updates = updates;
  result.trajectory = std::move(trajectory);
  result.caches = caches_;

  double welfare = 0.0;
  result.requests.reserve(players_.size());
  result.payments.reserve(players_.size());
  result.utilities.reserve(players_.size());
  for (std::size_t n = 0; n < players_.size(); ++n) {
    const double request = schedule_.row_total(n);
    result.requests.push_back(request);
    const auto others = schedule_.column_totals_excluding(n);
    const double payment =
        externality_payment(cost_, others, schedule_.row(n));
    // Eq. 8-9 at the fixed point: every externality payment is finite and
    // non-negative (each OLEV pays exactly the section cost its own load
    // adds; Z nondecreasing + p >= 0 makes that sum >= 0).
    OLEV_AUDIT_FINITE(payment, "finalize: payment of player " +
                                   std::to_string(n));
    OLEV_AUDIT_CHECK(payment >= -1e-9 * std::max(1.0, std::abs(payment)),
                     "finalize: negative externality payment " +
                         std::to_string(payment) + " for player " +
                         std::to_string(n));
    result.payments.push_back(payment);
    const double satisfaction = players_[n].satisfaction->value(request);
    OLEV_AUDIT_FINITE(satisfaction, "finalize: satisfaction of player " +
                                        std::to_string(n));
    result.utilities.push_back(satisfaction - payment);
    welfare += satisfaction;
  }
  const double idle_cost = cost_.value(0.0);
  for (double load : schedule_.column_totals()) {
    welfare -= cost_.value(load) - idle_cost;
  }
  result.welfare = welfare;
  result.congestion = congestion_report(schedule_, util::Kilowatts{p_line_kw_});
  return result;
}

}  // namespace olev::core
