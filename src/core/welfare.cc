#include "core/welfare.h"

#include <algorithm>
#include <stdexcept>

#include "util/stats.h"

namespace olev::core {

double social_welfare(std::span<const std::unique_ptr<Satisfaction>> players,
                      const SectionCost& z, const PowerSchedule& schedule) {
  if (players.size() != schedule.players()) {
    throw std::invalid_argument("social_welfare: player count mismatch");
  }
  double welfare = 0.0;
  for (std::size_t n = 0; n < players.size(); ++n) {
    welfare += players[n]->value(schedule.row_total(n));
  }
  const double idle_cost = z.value(0.0);
  for (double load : schedule.column_totals()) {
    welfare -= z.value(load) - idle_cost;
  }
  return welfare;
}

double total_payments(const SectionCost& z, const PowerSchedule& schedule) {
  double total = 0.0;
  for (std::size_t n = 0; n < schedule.players(); ++n) {
    const auto others = schedule.column_totals_excluding(n);
    const auto row = schedule.row(n);
    for (std::size_t c = 0; c < schedule.sections(); ++c) {
      total += z.value(others[c] + row[c]) - z.value(others[c]);
    }
  }
  return total;
}

CongestionReport congestion_report(const PowerSchedule& schedule,
                                   util::Kilowatts p_line) {
  const std::vector<double> loads = schedule.column_totals();
  return congestion_report(std::span<const double>(loads), p_line);
}

CongestionReport congestion_report(std::span<const double> section_loads,
                                   util::Kilowatts p_line) {
  const double p_line_kw = p_line.value();
  if (p_line_kw <= 0.0) {
    throw std::invalid_argument("congestion_report: p_line must be positive");
  }
  CongestionReport report;
  report.per_section.assign(section_loads.begin(), section_loads.end());
  for (double& load : report.per_section) load /= p_line_kw;
  if (!report.per_section.empty()) {
    report.mean = util::mean_of(report.per_section);
    report.max =
        *std::max_element(report.per_section.begin(), report.per_section.end());
  }
  report.jain_fairness = util::jain_fairness(report.per_section);
  return report;
}

}  // namespace olev::core
