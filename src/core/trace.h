// Experiment trace export: serializes game outcomes (including per-update
// trajectories) as JSON so results can be re-plotted or diffed without
// re-running the binaries.
#pragma once

#include <string>

#include "core/game.h"
#include "core/sweep.h"

namespace olev::core {

/// Full GameResult as a JSON object: config-independent outcome fields,
/// per-player vectors, per-section loads, and (when recorded) the
/// trajectory of (update, player, request, welfare, congestion).
std::string to_json(const GameResult& result);

/// Writes to_json(result) to `path`; throws std::runtime_error naming the
/// path and errno on failure.
void save_json(const GameResult& result, const std::string& path);

/// SweepReport as a JSON object: throughput and convergence scalars,
/// cache ratios, per-worker utilization, and the per-scenario
/// updates/solve-time histograms (bounds + counts, obs edge semantics).
std::string to_json(const SweepReport& report);

/// Writes to_json(report) to `path`; throws std::runtime_error naming the
/// path and errno on failure.
void save_json(const SweepReport& report, const std::string& path);

/// One thread-count measurement of bench_sweep's throughput scan.
struct SweepBenchTiming {
  std::size_t threads = 0;
  double seconds = 0.0;
  double scenarios_per_sec = 0.0;
  double speedup = 0.0;  ///< serial seconds / this seconds
};

/// The BENCH_sweep.json payload (bench/bench_sweep.cpp), factored out of
/// the binary so the report shape is testable.  `hardware_concurrency`
/// must be the affinity-aware util::available_concurrency() -- CI runners
/// pin benchmark processes, and std::thread::hardware_concurrency()
/// reporting the full socket (or, on some kernels, 1) made historical
/// reports incomparable.  `thread_counts` records the counts actually
/// swept so a report is interpretable without rerunning the binary.
struct SweepBenchReport {
  std::size_t scenarios = 0;
  std::size_t hardware_concurrency = 0;
  std::vector<std::size_t> thread_counts;
  bool bit_identical_across_threads = false;
  std::vector<SweepBenchTiming> sweep;
  // Incremental best-response hot path (N = 50, C = 100 game).
  std::size_t hot_players = 0;
  std::size_t hot_sections = 0;
  std::size_t hot_updates = 0;
  double hot_seconds = 0.0;
  double hot_updates_per_sec = 0.0;
  CacheCounters hot_caches;
};

std::string to_json(const SweepBenchReport& report);
void save_json(const SweepBenchReport& report, const std::string& path);

}  // namespace olev::core
