// Experiment trace export: serializes game outcomes (including per-update
// trajectories) as JSON so results can be re-plotted or diffed without
// re-running the binaries.
#pragma once

#include <string>

#include "core/game.h"
#include "core/sweep.h"

namespace olev::core {

/// Full GameResult as a JSON object: config-independent outcome fields,
/// per-player vectors, per-section loads, and (when recorded) the
/// trajectory of (update, player, request, welfare, congestion).
std::string to_json(const GameResult& result);

/// Writes to_json(result) to `path`; throws std::runtime_error naming the
/// path and errno on failure.
void save_json(const GameResult& result, const std::string& path);

/// SweepReport as a JSON object: throughput and convergence scalars,
/// cache ratios, per-worker utilization, and the per-scenario
/// updates/solve-time histograms (bounds + counts, obs edge semantics).
std::string to_json(const SweepReport& report);

/// Writes to_json(report) to `path`; throws std::runtime_error naming the
/// path and errno on failure.
void save_json(const SweepReport& report, const std::string& path);

}  // namespace olev::core
