// The decentralized update process of Section IV-D, run over the V2I
// message bus instead of in-process calls.
//
// Protocol per update round k (grid-coordinated, asynchronous across OLEVs):
//   grid -> OLEV n : PaymentFunctionMsg{n, k, b}     (announces Psi_n^k)
//   OLEV n -> grid : PowerRequestMsg{n, k, p_n*}     (best response, Eq. 21)
//   grid -> OLEV n : ScheduleMsg{n, k, row, payment} (Lemma IV.1 allocation)
//
// The link model can delay and drop messages; the grid retransmits the
// payment function if no request arrives within a timeout, and round ids
// make both directions idempotent, so the fixed point is unaffected by loss
// -- only time-to-converge grows.  The integration tests assert the
// schedule matches the in-process Game equilibrium even at 20% loss.
#pragma once

#include <memory>
#include <vector>

#include "core/cost.h"
#include "core/game.h"
#include "core/satisfaction.h"
#include "core/schedule.h"
#include "net/bus.h"
#include "wpt/olev.h"

namespace olev::core {

struct DistributedConfig {
  net::LinkModel link;
  double retransmit_timeout_s = 0.25;
  double epsilon = 1e-7;            ///< convergence on a full player cycle
  std::size_t max_rounds = 50000;   ///< total player updates before giving up
  double max_sim_time_s = 3600.0;   ///< wall-clock guard in simulated seconds
};

struct DistributedResult {
  PowerSchedule schedule;
  bool converged = false;
  std::size_t rounds = 0;           ///< completed player updates
  std::size_t retransmissions = 0;
  double sim_time_s = 0.0;          ///< simulated time to convergence
  net::BusStats bus;
  /// Per-player externality payment from each player's final ScheduleMsg
  /// (Eq. 8-9 evaluated at the player's last applied update).  The socket
  /// service (src/svc) serves the same protocol and must reproduce these
  /// bit-exactly on the same scenario.
  std::vector<double> payments;
};

/// Runs the full decentralized game: one grid node plus one agent node per
/// player, exchanging serialized messages over a lossy bus.
[[nodiscard]] DistributedResult run_distributed_game(
    std::vector<PlayerSpec> players, const SectionCost& cost,
    std::size_t sections, util::Kilowatts p_line,
    const DistributedConfig& config = {});

/// Physical profile an OLEV announces via V2I beacons (Section IV-A: OLEVs
/// "inform their current positions and velocities"; the grid derives the
/// admissible power from Eq. 1-3 itself rather than trusting the request).
struct AgentProfile {
  double position_m = 0.0;
  double velocity_mps = 26.8;
  double soc = 0.5;
  wpt::OlevParams olev;
  wpt::ChargingSectionSpec section;
  /// Demand overstatement factor: 1.0 = honest; > 1.0 models a greedy or
  /// buggy agent requesting more than its physical cap.
  double claim_factor = 1.0;

  /// The grid's admission cap from a beacon: min(P_line(velocity),
  /// P_OLEV upper bound at soc_max requirement) -- Eq. (3) evaluated with
  /// the information the beacon carries.
  double admission_cap_kw() const;
};

/// Beacon-admitted session: agents beacon their physical state first, the
/// grid derives per-player admission caps, and every subsequent power
/// request is clamped to its cap before scheduling.  Overstated demand
/// (claim_factor > 1) is therefore neutralized at the grid -- the fleet's
/// schedule stays physical no matter what an individual agent claims.
[[nodiscard]] DistributedResult run_v2i_session(
    std::vector<PlayerSpec> players, const std::vector<AgentProfile>& profiles,
    const SectionCost& cost, std::size_t sections,
    const DistributedConfig& config = {});

}  // namespace olev::core
