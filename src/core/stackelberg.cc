#include "core/stackelberg.h"

#include <algorithm>
#include <stdexcept>

#include "core/welfare.h"
#include "util/solver.h"

namespace olev::core {

double follower_reaction(const Satisfaction& u, util::DollarsPerKwh price_per_kwh,
                         util::Kilowatts p_max_kw) {
  const double price = price_per_kwh.value();
  const double p_max = p_max_kw.value();
  if (p_max <= 0.0) return 0.0;
  if (u.derivative(0.0) <= price) return 0.0;     // too expensive: opt out
  if (u.derivative(p_max) >= price) return p_max;  // cap binds
  // Interior: U'(p) = price, U' strictly decreasing.
  double lo = 0.0;
  double hi = p_max;
  for (int it = 0; it < 200 && hi - lo > 1e-10; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (u.derivative(mid) > price) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

StackelbergResult solve_stackelberg(
    std::span<const std::unique_ptr<Satisfaction>> players,
    std::span<const double> p_max, const SectionCost& z, std::size_t sections,
    const StackelbergOptions& options) {
  if (players.size() != p_max.size()) {
    throw std::invalid_argument("solve_stackelberg: players/p_max mismatch");
  }
  if (players.empty() || sections == 0) {
    throw std::invalid_argument("solve_stackelberg: need players and sections");
  }

  double price_cap = options.price_cap;
  if (price_cap <= 0.0) {
    for (const auto& player : players) {
      price_cap = std::max(price_cap, player->derivative(0.0));
    }
  }

  auto total_demand = [&](double price) {
    double demand = 0.0;
    for (std::size_t n = 0; n < players.size(); ++n) {
      demand += follower_reaction(*players[n], util::DollarsPerKwh{price},
                                  util::Kilowatts{p_max[n]});
    }
    return demand;
  };
  auto revenue = [&](double price) { return price * total_demand(price); };

  util::SolverOptions solver_options;
  solver_options.x_tolerance = options.tolerance;
  solver_options.max_iterations = options.max_iterations;
  const util::SolverResult best = util::golden_section_max(
      revenue, options.price_floor, price_cap, solver_options);

  StackelbergResult result;
  result.price = best.x;
  result.requests.reserve(players.size());
  for (std::size_t n = 0; n < players.size(); ++n) {
    result.requests.push_back(
        follower_reaction(*players[n], util::DollarsPerKwh{result.price},
                          util::Kilowatts{p_max[n]}));
    result.total_power += result.requests.back();
  }
  result.revenue = result.price * result.total_power;

  // Spread each follower's demand evenly over the sections (charitable to
  // the baseline: any other fixed split only worsens its welfare).
  result.schedule = PowerSchedule(players.size(), sections);
  for (std::size_t n = 0; n < players.size(); ++n) {
    const double share = result.requests[n] / static_cast<double>(sections);
    for (std::size_t c = 0; c < sections; ++c) result.schedule.set(n, c, share);
  }
  result.welfare = social_welfare(players, z, result.schedule);
  return result;
}

}  // namespace olev::core
