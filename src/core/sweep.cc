#include "core/sweep.h"

#include <algorithm>
#include <cstdio>

#include "obs/obs.h"
#include "obs/report.h"
#include "obs/span.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace olev::core {

SweepResult solve_scenario(const ScenarioSpec& spec, std::size_t index) {
  OLEV_OBS_SPAN_LABELED(scenario_span, "sweep.solve_scenario", "sweep",
                        spec.label);
  OLEV_OBS_COUNTER(obs_scenarios, "core.sweep.scenarios");
  OLEV_OBS_ADD(obs_scenarios, 1);

  const Scenario scenario = [&] {
    OLEV_OBS_SPAN(build_span, "scenario.build", "sweep");
    return Scenario::build(spec.config);
  }();

  SweepResult out;
  out.index = index;
  out.label = spec.label;
  if (spec.config.solver == SolverKind::kMeanField) {
    MeanFieldGame game = scenario.make_mean_field();
    out.result = game.to_game_result(game.run());
  } else {
    Game game = scenario.make_game();
    out.result = game.run();
  }
  out.p_line_kw = scenario.p_line_kw();
  out.cap_kw = scenario.cap_kw();
  out.beta_lbmp = scenario.beta_lbmp();
  out.unit_payment_per_mwh = Scenario::unit_payment_per_mwh(out.result);
  OLEV_OBS_SPAN_ARG(scenario_span, "updates",
                    static_cast<double>(out.result.updates));
  OLEV_OBS_SPAN_ARG(scenario_span, "converged",
                    out.result.converged ? 1.0 : 0.0);
  return out;
}

namespace {

// Applies SweepConfig::derive_seeds; returns the spec list to solve (either
// the caller's or the reseeded copy in `storage`).
const std::vector<ScenarioSpec>* effective_specs(
    const std::vector<ScenarioSpec>& specs, const SweepConfig& config,
    std::vector<ScenarioSpec>& storage) {
  if (!config.derive_seeds) return &specs;
  storage = specs;
  for (std::size_t i = 0; i < storage.size(); ++i) {
    storage[i].config.seed = util::derive_seed(config.seed_base, i);
    storage[i].config.game.seed =
        util::derive_seed(config.seed_base ^ 0x736565702d67616dULL, i);
  }
  return &storage;
}

struct ScenarioTiming {
  double seconds = 0.0;
  std::size_t worker = 0;
};

// The shared sweep core: solves every spec across the pool, optionally
// recording per-scenario timings (run_sweep passes nullptr and pays
// nothing; run_sweep_reported feeds its report from them).
std::vector<SweepResult> run_sweep_impl(const std::vector<ScenarioSpec>& specs,
                                        const SweepConfig& config,
                                        std::size_t& threads_out,
                                        std::vector<ScenarioTiming>* timings) {
  std::vector<ScenarioSpec> reseeded;
  const std::vector<ScenarioSpec>* work =
      effective_specs(specs, config, reseeded);

  std::vector<SweepResult> results(work->size());
  if (timings != nullptr) timings->assign(work->size(), {});
  const std::size_t threads = std::min(
      util::resolve_threads(config.threads),
      std::max<std::size_t>(1, work->size()));
  threads_out = threads;

  const auto solve_one = [&](std::size_t i) {
    if (timings == nullptr) {
      results[i] = solve_scenario((*work)[i], i);
      return;
    }
    const obs::Stopwatch watch;
    results[i] = solve_scenario((*work)[i], i);
    const std::size_t worker = util::ThreadPool::worker_index();
    (*timings)[i] = {watch.seconds(),
                     worker == util::ThreadPool::npos ? 0 : worker};
  };

  if (threads <= 1) {
    for (std::size_t i = 0; i < work->size(); ++i) solve_one(i);
    return results;
  }

  util::ThreadPool pool(threads);
  pool.parallel_for(work->size(), solve_one);
  return results;
}

}  // namespace

std::vector<SweepResult> run_sweep(const std::vector<ScenarioSpec>& specs,
                                   const SweepConfig& config) {
  std::size_t threads = 0;
  return run_sweep_impl(specs, config, threads, nullptr);
}

SweepRun run_sweep_reported(const std::vector<ScenarioSpec>& specs,
                            const SweepConfig& config) {
  SweepRun run;
  OLEV_OBS_SPAN(sweep_span, "sweep.run", "sweep");
  std::vector<ScenarioTiming> timings;
  const obs::Stopwatch wall;
  std::size_t threads = 0;
  run.results = run_sweep_impl(specs, config, threads, &timings);
  const double wall_seconds = wall.seconds();

  SweepReport& report = run.report;
  report.scenarios = run.results.size();
  report.threads = threads;
  report.wall_seconds = wall_seconds;
  report.scenarios_per_second =
      wall_seconds > 0.0
          ? static_cast<double>(run.results.size()) / wall_seconds
          : 0.0;

  CacheCounters caches;
  std::vector<double> updates;
  std::vector<double> solve_millis;
  updates.reserve(run.results.size());
  solve_millis.reserve(run.results.size());
  report.workers.assign(threads, {});
  for (std::size_t w = 0; w < threads; ++w) report.workers[w].worker = w;
  for (std::size_t i = 0; i < run.results.size(); ++i) {
    const SweepResult& result = run.results[i];
    if (result.result.converged) ++report.converged;
    report.total_updates += result.result.updates;
    caches.response_cache_hits += result.result.caches.response_cache_hits;
    caches.response_recomputes += result.result.caches.response_recomputes;
    caches.section_cost_reuses += result.result.caches.section_cost_reuses;
    caches.section_cost_refreshes += result.result.caches.section_cost_refreshes;
    updates.push_back(static_cast<double>(result.result.updates));
    solve_millis.push_back(timings[i].seconds * 1e3);
    SweepWorkerStats& worker = report.workers[
        std::min(timings[i].worker, threads - 1)];
    ++worker.scenarios;
    worker.busy_seconds += timings[i].seconds;
  }
  report.response_hit_ratio = caches.response_hit_ratio();
  report.section_reuse_ratio = caches.section_reuse_ratio();
  for (SweepWorkerStats& worker : report.workers) {
    worker.utilization =
        wall_seconds > 0.0 ? worker.busy_seconds / wall_seconds : 0.0;
  }
  report.updates_per_scenario =
      obs::bucketize("sweep.updates_per_scenario",
                     {10, 30, 100, 300, 1000, 3000, 10000, 100000}, updates);
  report.solve_millis = obs::bucketize(
      "sweep.solve_millis", {0.1, 0.3, 1, 3, 10, 30, 100, 300, 1000, 10000},
      solve_millis);

  OLEV_OBS_SPAN_ARG(sweep_span, "scenarios",
                    static_cast<double>(report.scenarios));
  OLEV_OBS_SPAN_ARG(sweep_span, "threads", static_cast<double>(threads));
  return run;
}

double SweepReport::worker_utilization() const {
  if (threads == 0 || wall_seconds <= 0.0) return 0.0;
  double busy = 0.0;
  for (const SweepWorkerStats& worker : workers) busy += worker.busy_seconds;
  return busy / (static_cast<double>(threads) * wall_seconds);
}

std::string SweepReport::to_text() const {
  char line[160];
  std::string text;
  std::snprintf(line, sizeof(line),
                "sweep: %zu scenarios on %zu threads in %.3f s (%.1f/s)\n",
                scenarios, threads, wall_seconds, scenarios_per_second);
  text += line;
  std::snprintf(line, sizeof(line),
                "  converged %zu/%zu, %zu total updates\n", converged,
                scenarios, total_updates);
  text += line;
  std::snprintf(line, sizeof(line),
                "  caches: response hit %.1f%%, section reuse %.1f%%\n",
                100.0 * response_hit_ratio, 100.0 * section_reuse_ratio);
  text += line;
  std::snprintf(line, sizeof(line), "  pool utilization %.1f%%\n",
                100.0 * worker_utilization());
  text += line;
  for (const SweepWorkerStats& worker : workers) {
    std::snprintf(line, sizeof(line),
                  "    worker %zu: %zu scenarios, busy %.3f s (%.1f%%)\n",
                  worker.worker, worker.scenarios, worker.busy_seconds,
                  100.0 * worker.utilization);
    text += line;
  }
  const auto histogram_line = [&](const obs::HistogramSnapshot& histogram) {
    std::snprintf(line, sizeof(line), "  %s: count %zu, mean %.2f\n",
                  histogram.name.c_str(),
                  static_cast<std::size_t>(histogram.count), histogram.mean());
    text += line;
  };
  histogram_line(updates_per_scenario);
  histogram_line(solve_millis);
  return text;
}

}  // namespace olev::core
