#include "core/sweep.h"

#include "util/rng.h"
#include "util/thread_pool.h"

namespace olev::core {

SweepResult solve_scenario(const ScenarioSpec& spec, std::size_t index) {
  const Scenario scenario = Scenario::build(spec.config);
  Game game = scenario.make_game();

  SweepResult out;
  out.index = index;
  out.label = spec.label;
  out.result = game.run();
  out.p_line_kw = scenario.p_line_kw();
  out.cap_kw = scenario.cap_kw();
  out.beta_lbmp = scenario.beta_lbmp();
  out.unit_payment_per_mwh = Scenario::unit_payment_per_mwh(out.result);
  return out;
}

std::vector<SweepResult> run_sweep(const std::vector<ScenarioSpec>& specs,
                                   const SweepConfig& config) {
  std::vector<ScenarioSpec> reseeded;
  const std::vector<ScenarioSpec>* work = &specs;
  if (config.derive_seeds) {
    reseeded = specs;
    for (std::size_t i = 0; i < reseeded.size(); ++i) {
      reseeded[i].config.seed = util::derive_seed(config.seed_base, i);
      reseeded[i].config.game.seed =
          util::derive_seed(config.seed_base ^ 0x736565702d67616dULL, i);
    }
    work = &reseeded;
  }

  std::vector<SweepResult> results(work->size());
  const std::size_t threads =
      std::min(util::resolve_threads(config.threads), std::max<std::size_t>(1, work->size()));
  if (threads <= 1) {
    for (std::size_t i = 0; i < work->size(); ++i) {
      results[i] = solve_scenario((*work)[i], i);
    }
    return results;
  }

  util::ThreadPool pool(threads);
  pool.parallel_for(work->size(), [&](std::size_t i) {
    results[i] = solve_scenario((*work)[i], i);
  });
  return results;
}

}  // namespace olev::core
