// Asynchronous best-response game over *heterogeneous* charging sections.
//
// The paper's corridor is homogeneous (one Z for all sections), which is
// what `Game` implements.  Real deployments mix section types -- different
// speed limits change P_line (Eq. 1) and hence the safety cap per section.
// This engine runs the same asynchronous update with per-section costs:
//
//   - the grid splits a request by generalized water-filling (the KKT form
//     of Lemma IV.1: equal *marginal prices*, not equal loads);
//   - each OLEV's best response solves U'(p) = rho*(p), where rho*(p) is
//     the common marginal price of the generalized fill at total p (the
//     envelope theorem gives Psi'(p) = rho*(p) exactly as in the uniform
//     case);
//   - convergence follows from the same strict concavity argument as
//     Theorem IV.1 (W remains strictly concave for strictly convex Z_c).
#pragma once

#include <memory>
#include <vector>

#include "core/cost.h"
#include "core/game.h"
#include "core/water_filling.h"

namespace olev::core {

struct HeteroGameResult {
  PowerSchedule schedule;
  bool converged = false;
  std::size_t updates = 0;
  double welfare = 0.0;
  std::vector<double> requests;
  std::vector<double> payments;
  /// Z_c'(P_c) per section at the fixed point -- equalized (up to corner
  /// sections) by the KKT condition.
  std::vector<double> marginal_prices;
};

class HeteroGame {
 public:
  /// One SectionCost per section.  `p_lines_kw` (same length) is used for
  /// congestion normalization only.
  HeteroGame(std::vector<PlayerSpec> players, std::vector<SectionCost> costs,
             std::vector<double> p_lines_kw, GameConfig config = {});

  std::size_t players() const { return players_.size(); }
  std::size_t sections() const { return costs_.size(); }

  /// One asynchronous update for `player`; returns |delta p_n|.
  double update_player(std::size_t player);

  [[nodiscard]] HeteroGameResult run();

 private:
  std::vector<double> others_load(std::size_t player) const;

  std::vector<PlayerSpec> players_;
  std::vector<SectionCost> costs_;
  std::vector<const SectionCost*> cost_pointers_;
  std::vector<double> p_lines_kw_;
  GameConfig config_;
  PowerSchedule schedule_;
  std::vector<double> column_totals_;
  util::Rng rng_;
  std::size_t cursor_ = 0;
};

}  // namespace olev::core
