// Power-charging cost V, overload cost A, and the combined section cost
// Z(x) = V(x) + A(x - eta * P_line)  (Section IV-B, Eq. 6-7).
//
// The paper's evaluation instantiates
//   nonlinear: V(x) = beta * (alpha + x / P_ref)^2   (strictly convex)
//   linear:    V(x) = beta * x                       (the comparison baseline)
// with beta = LBMP and alpha = 0.875.  A is a smooth hinge penalty that
// activates when section load exceeds the eta * P_line safety cap.
#pragma once

#include <memory>

#include "util/quantity.h"

namespace olev::core {

/// Power charging cost V(.): convex, nondecreasing, V(0) finite.
class CostPolicy {
 public:
  virtual ~CostPolicy() = default;
  virtual double value(double x) const = 0;
  virtual double derivative(double x) const = 0;
  /// True when value() is strictly convex (unique water-filling level
  /// exists).  The linear baseline returns false.
  virtual bool strictly_convex() const = 0;
  virtual std::unique_ptr<CostPolicy> clone() const = 0;
};

/// The paper's nonlinear pricing: V(x) = beta * (alpha + x / p_ref)^2.
class NonlinearPricing final : public CostPolicy {
 public:
  NonlinearPricing(double beta, double alpha, double p_ref);
  double value(double x) const override;
  double derivative(double x) const override;
  bool strictly_convex() const override { return true; }
  std::unique_ptr<CostPolicy> clone() const override;

  double beta() const { return beta_; }
  double alpha() const { return alpha_; }
  double p_ref() const { return p_ref_; }

 private:
  double beta_;
  double alpha_;
  double p_ref_;
};

/// Linear baseline: V(x) = beta * x.
class LinearPricing final : public CostPolicy {
 public:
  explicit LinearPricing(double beta);
  double value(double x) const override;
  double derivative(double x) const override;
  bool strictly_convex() const override { return false; }
  std::unique_ptr<CostPolicy> clone() const override;

  double beta() const { return beta_; }

 private:
  double beta_;
};

/// Overload cost A(y) = weight * max(0, y)^2: zero below the cap, smooth
/// (C^1) quadratic penalty above it.
struct OverloadCost {
  double weight = 1.0;

  double value(double y) const;
  double derivative(double y) const;
};

/// Z(x) = V(x) + A(x - cap): the per-section cost the payment rule charges
/// against.  Shared by all sections (the paper assumes a homogeneous
/// corridor: identical V, A and cap across sections).
class SectionCost {
 public:
  SectionCost(std::unique_ptr<CostPolicy> v, OverloadCost a, util::Kilowatts cap);
  SectionCost(const SectionCost& other);
  SectionCost& operator=(const SectionCost& other);
  SectionCost(SectionCost&&) noexcept = default;
  SectionCost& operator=(SectionCost&&) noexcept = default;

  double value(double x) const;
  double derivative(double x) const;
  /// Inverse of the derivative on [0, inf): the (Z')^{-1} of Lemma IV.1.
  /// Requires a strictly convex V; solved by bisection with automatic
  /// bracket growth.
  double derivative_inverse(double marginal) const;

  bool strictly_convex() const { return v_->strictly_convex() || a_.weight > 0.0; }
  double cap_kw() const { return cap_kw_; }
  const CostPolicy& pricing() const { return *v_; }

 private:
  std::unique_ptr<CostPolicy> v_;
  OverloadCost a_;
  double cap_kw_;
};

}  // namespace olev::core
