#include "core/water_filling.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/cost.h"
#include "obs/obs.h"
#include "util/audit.h"
#include "util/hot.h"

namespace olev::core {

// Real-time wall manifest (tools/olev_rtcheck.py): the repeated-query
// members of SortedLoads and the volume evaluator are the allocation-free
// water-filling kernel the serving path leans on.
OLEV_HOT_ROOT("olev::core::SortedLoads::reassign");
OLEV_HOT_ROOT("olev::core::SortedLoads::update_one");
OLEV_HOT_ROOT("olev::core::SortedLoads::level_for");
OLEV_HOT_ROOT("olev::core::SortedLoads::fill_into");
OLEV_HOT_ROOT("olev::core::water_fill_volume");

namespace {

#if OLEV_AUDIT_ENABLED
// Post-conditions shared by every water-filling solver (Lemma IV.1, the
// conservation constraint of Eq. 12): the row is non-negative and finite,
// sums back to the request, and satisfies water-level complementarity --
// loaded sections sit exactly at the level, untouched sections at or above
// it.  `tol` is relative (see audit::close); the exact solver passes 1e-9,
// the bisection solvers pass a band derived from their own tolerance.
// Opens a HotBypass: the checks below format strings, and fill_into runs
// them inside armed hot regions in audit builds.
void audit_fill(std::span<const double> others_load, double total,
                std::span<const double> row, double level, double tol,
                const char* who) {
  const util::audit::HotBypass hot_bypass;
  namespace audit = util::audit;
  OLEV_AUDIT_FINITE(total, who);
  OLEV_AUDIT_FINITE(level, who);
  OLEV_AUDIT_CHECK(row.size() == others_load.size(),
                   std::string(who) + ": row/b shape mismatch");
  double sum = 0.0;
  for (std::size_t c = 0; c < row.size(); ++c) {
    const double b = others_load[c];
    const double fill = row[c];
    OLEV_AUDIT_FINITE(b, std::string(who) + ": b[" + std::to_string(c) + "]");
    OLEV_AUDIT_FINITE(fill,
                      std::string(who) + ": row[" + std::to_string(c) + "]");
    OLEV_AUDIT_CHECK(fill >= 0.0, std::string(who) + ": negative allocation " +
                                      std::to_string(fill) + " on section " +
                                      std::to_string(c));
    if (fill > 0.0) {
      OLEV_AUDIT_CHECK(audit::close(b + fill, level, tol),
                       std::string(who) + ": loaded section " +
                           std::to_string(c) + " off the water level: b+p=" +
                           std::to_string(b + fill) + " level=" +
                           std::to_string(level));
    } else {
      OLEV_AUDIT_CHECK(b >= level - tol * std::max(1.0, std::abs(level)),
                       std::string(who) + ": idle section " +
                           std::to_string(c) + " below the water level: b=" +
                           std::to_string(b) + " level=" +
                           std::to_string(level));
    }
    sum += fill;
  }
  OLEV_AUDIT_CHECK(audit::close(sum, total, tol),
                   std::string(who) + ": allocation sums to " +
                       std::to_string(sum) + ", request was " +
                       std::to_string(total));
}
#endif

}  // namespace

double water_fill_volume(std::span<const double> others_load,
                         Kilowatts level_kw) {
  const double level = level_kw.value();
  double volume = 0.0;
  for (double b : others_load) volume += std::max(0.0, level - b);
  return volume;
}

namespace {

// The level that exhausts `total` against pre-sorted loads.  After filling
// the k lowest loads b_(0..k-1) the candidate level is
// (total + sum b_(0..k-1)) / k; it is valid once it does not exceed the next
// load b_(k).  Validity is monotone in k (if level_k <= b_(k) then level_{k+1}
// is a convex combination of level_k and b_(k), hence <= b_(k) <= b_(k+1)),
// so the smallest valid k is found by binary search.  `prefix[k]` must be the
// fold-left sum of sorted[0..k) so every caller computes the identical level.
// Pointer-based so SortedLoads can pass its reserved (over-sized) buffers.
double level_from_sorted(const double* sorted, const double* prefix,
                         std::size_t count, double total) {
  std::size_t lo = 1;
  std::size_t hi = count;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;  // mid < count
    const double level = (total + prefix[mid]) / static_cast<double>(mid);
    if (level <= sorted[mid]) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return (total + prefix[lo]) / static_cast<double>(lo);
}

WaterFillResult fill_at_level(std::span<const double> others_load,
                              double level) {
  WaterFillResult result;
  result.level = level;
  result.row.resize(others_load.size());
  for (std::size_t c = 0; c < others_load.size(); ++c) {
    const double fill = std::max(0.0, level - others_load[c]);
    result.row[c] = fill;
    if (fill > 0.0) ++result.active_sections;
  }
  return result;
}

}  // namespace

SortedLoads::SortedLoads(std::span<const double> others_load) {
  assign(others_load);
}

void SortedLoads::reserve(std::size_t cap) {
  if (cap > values_.size()) {
    values_.resize(cap);
    sorted_.resize(cap);
  }
  if (prefix_.size() < cap + 1) prefix_.resize(cap + 1);
}

void SortedLoads::assign(std::span<const double> others_load) {
  reserve(others_load.size());
  reassign(others_load);
}

void SortedLoads::reassign(std::span<const double> others_load) {
  if (others_load.size() > values_.size()) {
    util::hot_fail_invalid_argument(
        "SortedLoads::reassign: b exceeds the reserved capacity");
  }
  size_ = others_load.size();
  std::copy(others_load.begin(), others_load.end(), values_.begin());
  std::copy(others_load.begin(), others_load.end(), sorted_.begin());
  std::sort(sorted_.begin(), sorted_.begin() + static_cast<std::ptrdiff_t>(size_));
  rebuild_prefix(0);
}

void SortedLoads::rebuild_prefix(std::size_t from) {
  prefix_[0] = 0.0;
  for (std::size_t k = std::max<std::size_t>(from, 1); k <= size_; ++k) {
    prefix_[k] = prefix_[k - 1] + sorted_[k - 1];
  }
}

void SortedLoads::update_one(std::size_t index, double new_value) {
  if (index >= size_) {
    util::hot_fail_out_of_range("SortedLoads::update_one");
  }
  const double old_value = values_[index];
  if (old_value == new_value) return;
  values_[index] = new_value;
  // Remove one copy of the old value and re-insert the new one by shifting
  // the run between the two sorted positions -- the in-place equivalent of
  // vector erase + insert (equal doubles are interchangeable, so which
  // duplicate moves does not matter; the resulting array and prefix sums
  // are element-for-element identical).
  double* const first = sorted_.data();
  double* const last = first + size_;
  const std::size_t erased = static_cast<std::size_t>(
      std::lower_bound(first, last, old_value) - first);
  if (new_value > old_value) {
    std::size_t i = erased;
    while (i + 1 < size_ && first[i + 1] < new_value) {
      first[i] = first[i + 1];
      ++i;
    }
    first[i] = new_value;
    rebuild_prefix(erased);
  } else {
    std::size_t i = erased;
    while (i > 0 && first[i - 1] > new_value) {
      first[i] = first[i - 1];
      --i;
    }
    first[i] = new_value;
    rebuild_prefix(i);
  }
}

double SortedLoads::level_for(Kilowatts total_kw) const {
  const double total = total_kw.value();
  if (size_ == 0) {
    util::hot_fail_invalid_argument("SortedLoads: need at least one section");
  }
  if (total < 0.0) {
    util::hot_fail_invalid_argument("SortedLoads: negative total");
  }
  if (total == 0.0) return sorted_[0];
  return level_from_sorted(sorted_.data(), prefix_.data(), size_, total);
}

double SortedLoads::fill_into(Kilowatts total_kw, std::span<double> row,
                              int* active_sections) const {
  const double total = total_kw.value();
  if (row.size() != size_) {
    util::hot_fail_invalid_argument("SortedLoads::fill_into: row length mismatch");
  }
  const double level = level_for(total_kw);
  int active = 0;
  if (total == 0.0) {
    for (std::size_t c = 0; c < size_; ++c) row[c] = 0.0;
  } else {
    for (std::size_t c = 0; c < size_; ++c) {
      const double fill = std::max(0.0, level - values_[c]);
      row[c] = fill;
      if (fill > 0.0) ++active;
    }
    OLEV_AUDIT_ONLY(audit_fill(values(), total, row, level, 1e-9,
                               "SortedLoads::fill");)
  }
  if (active_sections != nullptr) *active_sections = active;
  return level;
}

WaterFillResult SortedLoads::fill(Kilowatts total_kw) const {
  WaterFillResult result;
  result.row.resize(size_);
  result.level = fill_into(total_kw, result.row, &result.active_sections);
  return result;
}

WaterFillResult water_fill(std::span<const double> others_load,
                           Kilowatts total_kw) {
  const double total = total_kw.value();
  if (others_load.empty()) {
    throw std::invalid_argument("water_fill: need at least one section");
  }
  if (total < 0.0) throw std::invalid_argument("water_fill: negative total");

  if (total == 0.0) {
    WaterFillResult result;
    result.row.assign(others_load.size(), 0.0);
    result.level = *std::min_element(others_load.begin(), others_load.end());
    return result;
  }

  std::vector<double> sorted(others_load.begin(), others_load.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> prefix(sorted.size() + 1, 0.0);
  for (std::size_t k = 1; k <= sorted.size(); ++k) {
    prefix[k] = prefix[k - 1] + sorted[k - 1];
  }
  WaterFillResult result = fill_at_level(
      others_load,
      level_from_sorted(sorted.data(), prefix.data(), sorted.size(), total));
  OLEV_AUDIT_ONLY(
      audit_fill(others_load, total, result.row, result.level, 1e-9,
                 "water_fill");)
  return result;
}

WaterFillResult water_fill_masked(std::span<const double> others_load,
                                  Kilowatts total_kw,
                                  const std::vector<bool>& mask) {
  const double total = total_kw.value();
  if (mask.size() != others_load.size()) {
    throw std::invalid_argument("water_fill_masked: mask length mismatch");
  }
  // Collect the admissible subset, solve on it, scatter back.
  std::vector<double> subset;
  std::vector<std::size_t> positions;
  for (std::size_t c = 0; c < mask.size(); ++c) {
    if (mask[c]) {
      subset.push_back(others_load[c]);
      positions.push_back(c);
    }
  }
  if (subset.empty()) {
    if (total > 0.0) {
      throw std::invalid_argument(
          "water_fill_masked: positive total with empty mask");
    }
    WaterFillResult empty;
    empty.row.assign(others_load.size(), 0.0);
    return empty;
  }
  WaterFillResult inner = water_fill(subset, total_kw);
  WaterFillResult result;
  result.level = inner.level;
  result.active_sections = inner.active_sections;
  result.iterations = inner.iterations;
  result.row.assign(others_load.size(), 0.0);
  for (std::size_t i = 0; i < positions.size(); ++i) {
    result.row[positions[i]] = inner.row[i];
  }
#if OLEV_AUDIT_ENABLED
  // Section IV-A mask contract: sections off the OLEV's path receive
  // *exactly* zero (the inner call already audited Lemma IV.1 on the
  // admissible subset).
  for (std::size_t c = 0; c < mask.size(); ++c) {
    OLEV_AUDIT_CHECK(mask[c] || result.row[c] == 0.0,
                     "water_fill_masked: allocation " +
                         std::to_string(result.row[c]) +
                         " on masked-out section " + std::to_string(c));
  }
#endif
  return result;
}

WaterFillResult water_fill_bisect(std::span<const double> others_load,
                                  Kilowatts total_kw, double tolerance) {
  const double total = total_kw.value();
  if (others_load.empty()) {
    throw std::invalid_argument("water_fill_bisect: need at least one section");
  }
  if (total < 0.0) throw std::invalid_argument("water_fill_bisect: negative total");

  WaterFillResult result;
  result.row.assign(others_load.size(), 0.0);
  const double b_min = *std::min_element(others_load.begin(), others_load.end());
  if (total == 0.0) {
    result.level = b_min;
    return result;
  }

  const double b_max = *std::max_element(others_load.begin(), others_load.end());
  double lo = b_min;
  double hi = b_max + total;  // Y(hi) >= total always
  int iterations = 0;
  while (hi - lo > tolerance && iterations < 200) {
    const double mid = 0.5 * (lo + hi);
    if (water_fill_volume(others_load, Kilowatts{mid}) < total) {
      lo = mid;
    } else {
      hi = mid;
    }
    ++iterations;
  }
  result.level = 0.5 * (lo + hi);
  result.iterations = iterations;
  OLEV_OBS_HISTOGRAM(obs_iterations, "core.water_fill.bisect_iterations",
                     {0, 10, 20, 30, 40, 50, 60, 80, 100, 200});
  OLEV_OBS_OBSERVE(obs_iterations, static_cast<double>(iterations));
  for (std::size_t c = 0; c < others_load.size(); ++c) {
    const double fill = std::max(0.0, result.level - others_load[c]);
    result.row[c] = fill;
    if (fill > 0.0) ++result.active_sections;
  }
  // Re-normalize bisection dust so the row sums exactly to `total`.
  double sum = 0.0;
  for (double v : result.row) sum += v;
  if (sum > 0.0) {
    const double scale = total / sum;
    for (double& v : result.row) v *= scale;
  }
  // The bisection bracket closed to `tolerance`, so the lambda* contract
  // only holds to a band of that width (the exact solver audits at 1e-9).
  OLEV_AUDIT_ONLY(audit_fill(others_load, total, result.row, result.level,
                             std::max(1e-9, 10.0 * tolerance),
                             "water_fill_bisect");)
  return result;
}

GeneralizedFillResult generalized_fill(
    std::span<const SectionCost* const> section_costs,
    std::span<const double> others_load, Kilowatts total_kw,
    double tolerance) {
  const double total = total_kw.value();
  if (section_costs.size() != others_load.size() || section_costs.empty()) {
    throw std::invalid_argument("generalized_fill: shape mismatch or empty");
  }
  for (const SectionCost* cost : section_costs) {
    if (cost == nullptr || !cost->strictly_convex()) {
      throw std::invalid_argument(
          "generalized_fill: every section needs a strictly convex cost");
    }
  }
  if (total < 0.0) throw std::invalid_argument("generalized_fill: negative total");

  GeneralizedFillResult result;
  result.row.assign(others_load.size(), 0.0);

  // Allocation at a trial marginal price rho.
  auto allocation_at = [&](double rho, std::vector<double>* row) {
    double sum = 0.0;
    for (std::size_t c = 0; c < section_costs.size(); ++c) {
      const double target = section_costs[c]->derivative_inverse(rho);
      const double fill = std::max(0.0, target - others_load[c]);
      if (row != nullptr) (*row)[c] = fill;
      sum += fill;
    }
    return sum;
  };

  // rho must exceed the smallest marginal price at the current loads for
  // any allocation to be positive.
  double lo = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < section_costs.size(); ++c) {
    lo = std::min(lo, section_costs[c]->derivative(others_load[c]));
  }
  if (total == 0.0) {
    result.marginal = lo;
    return result;
  }
  double hi = lo + 1.0;
  int guard = 0;
  while (allocation_at(hi, nullptr) < total && guard++ < 200) {
    hi = lo + (hi - lo) * 2.0;
  }
  int iterations = 0;
  while (hi - lo > tolerance * std::max(1.0, hi) && iterations < 200) {
    const double mid = 0.5 * (lo + hi);
    if (allocation_at(mid, nullptr) < total) {
      lo = mid;
    } else {
      hi = mid;
    }
    ++iterations;
  }
  result.marginal = 0.5 * (lo + hi);
  result.iterations = iterations;
  allocation_at(result.marginal, &result.row);
  // Scale out the bisection dust.
  double sum = 0.0;
  for (double v : result.row) sum += v;
  if (sum > 0.0) {
    const double scale = total / sum;
    for (double& v : result.row) v *= scale;
  }
  for (double v : result.row) {
    if (v > 0.0) ++result.active_sections;
  }
#if OLEV_AUDIT_ENABLED
  {
    // Heterogeneous KKT contract: loaded sections equalize marginal cost at
    // rho*, idle sections already price at or above it; the row conserves
    // the request.  The band is wider than the homogeneous case because the
    // allocation passes through derivative_inverse (its own bisection).
    namespace audit = util::audit;
    const double band = std::max(1e-6, 10.0 * tolerance);
    double audit_sum = 0.0;
    for (std::size_t c = 0; c < result.row.size(); ++c) {
      const double fill = result.row[c];
      OLEV_AUDIT_FINITE(fill, "generalized_fill: row[" + std::to_string(c) + "]");
      OLEV_AUDIT_CHECK(fill >= 0.0,
                       "generalized_fill: negative allocation on section " +
                           std::to_string(c));
      audit_sum += fill;
      const double marginal_here =
          section_costs[c]->derivative(others_load[c] + fill);
      if (fill > 0.0) {
        OLEV_AUDIT_CHECK(
            audit::close(marginal_here, result.marginal, band),
            "generalized_fill: loaded section " + std::to_string(c) +
                " off the marginal price: Z'=" + std::to_string(marginal_here) +
                " rho*=" + std::to_string(result.marginal));
      } else {
        OLEV_AUDIT_CHECK(
            marginal_here >=
                result.marginal -
                    band * std::max(1.0, std::abs(result.marginal)),
            "generalized_fill: idle section " + std::to_string(c) +
                " priced below rho*: Z'=" + std::to_string(marginal_here) +
                " rho*=" + std::to_string(result.marginal));
      }
    }
    OLEV_AUDIT_CHECK(audit::close(audit_sum, total, std::max(1e-9, tolerance)),
                     "generalized_fill: allocation sums to " +
                         std::to_string(audit_sum) + ", request was " +
                         std::to_string(total));
  }
#endif
  return result;
}

}  // namespace olev::core
