#include "core/satisfaction.h"

#include <cmath>
#include <stdexcept>

namespace olev::core {

LogSatisfaction::LogSatisfaction(double weight, double scale)
    : weight_(weight), scale_(scale) {
  if (weight <= 0.0 || scale <= 0.0) {
    throw std::invalid_argument("LogSatisfaction: weight and scale must be positive");
  }
}

double LogSatisfaction::value(double p) const {
  return weight_ * std::log1p(p / scale_);
}

double LogSatisfaction::derivative(double p) const {
  return weight_ / (scale_ + p);
}

std::unique_ptr<Satisfaction> LogSatisfaction::clone() const {
  return std::make_unique<LogSatisfaction>(*this);
}

SqrtSatisfaction::SqrtSatisfaction(double weight) : weight_(weight) {
  if (weight <= 0.0) throw std::invalid_argument("SqrtSatisfaction: weight must be positive");
}

double SqrtSatisfaction::value(double p) const {
  return weight_ * (std::sqrt(1.0 + p) - 1.0);
}

double SqrtSatisfaction::derivative(double p) const {
  return weight_ * 0.5 / std::sqrt(1.0 + p);
}

std::unique_ptr<Satisfaction> SqrtSatisfaction::clone() const {
  return std::make_unique<SqrtSatisfaction>(*this);
}

QuadraticSatisfaction::QuadraticSatisfaction(double weight, double cap)
    : weight_(weight), cap_(cap) {
  if (weight <= 0.0 || cap <= 0.0) {
    throw std::invalid_argument("QuadraticSatisfaction: weight and cap must be positive");
  }
}

double QuadraticSatisfaction::value(double p) const {
  return weight_ * (p - p * p / (2.0 * cap_));
}

double QuadraticSatisfaction::derivative(double p) const {
  return weight_ * (1.0 - p / cap_);
}

std::unique_ptr<Satisfaction> QuadraticSatisfaction::clone() const {
  return std::make_unique<QuadraticSatisfaction>(*this);
}

}  // namespace olev::core
