#include "core/satisfaction.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/hot.h"

namespace olev::core {

// Real-time wall manifest: every satisfaction evaluation dispatched from a
// hot best-response / mean-field aggregate is rooted.  The closed forms
// below only touch allowed libm leaves (log1p, sqrt); the base-class
// bisection fallback dispatches back through derivative(), hence the vcall
// allowance.
OLEV_HOT_ROOT("olev::core::Satisfaction::derivative_inverse");
OLEV_HOT_ROOT("olev::core::LogSatisfaction::value");
OLEV_HOT_ROOT("olev::core::LogSatisfaction::derivative");
OLEV_HOT_ROOT("olev::core::LogSatisfaction::derivative_inverse");
OLEV_HOT_ROOT("olev::core::SqrtSatisfaction::value");
OLEV_HOT_ROOT("olev::core::SqrtSatisfaction::derivative");
OLEV_HOT_ROOT("olev::core::SqrtSatisfaction::derivative_inverse");
OLEV_HOT_ROOT("olev::core::QuadraticSatisfaction::value");
OLEV_HOT_ROOT("olev::core::QuadraticSatisfaction::derivative");
OLEV_HOT_ROOT("olev::core::QuadraticSatisfaction::derivative_inverse");
OLEV_RT_VCALL_OK("olev::core::Satisfaction::derivative_inverse",
                 "bisection fallback dispatches derivative(); every override "
                 "is a registered hot root");

double Satisfaction::derivative_inverse(double marginal) const {
  if (!(marginal > 0.0)) {
    util::hot_fail_invalid_argument(
        "Satisfaction::derivative_inverse: marginal must be positive");
  }
  if (derivative(0.0) <= marginal) return 0.0;
  // Bracket growth: U' is strictly decreasing, so the root lies below the
  // first hi with U'(hi) <= marginal.  If no such hi exists within any
  // physically meaningful range, the demand is effectively unbounded.
  double hi = 1.0;
  while (derivative(hi) > marginal) {
    hi *= 2.0;
    if (hi > 1e18) return std::numeric_limits<double>::infinity();
  }
  double lo = hi * 0.5 > 1.0 ? hi * 0.5 : 0.0;
  for (int it = 0; it < 200 && hi - lo > 1e-12 * (1.0 + hi); ++it) {
    const double mid = 0.5 * (lo + hi);
    if (derivative(mid) > marginal) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

LogSatisfaction::LogSatisfaction(double weight, double scale)
    : weight_(weight), scale_(scale) {
  if (weight <= 0.0 || scale <= 0.0) {
    throw std::invalid_argument("LogSatisfaction: weight and scale must be positive");
  }
}

double LogSatisfaction::value(double p) const {
  return weight_ * std::log1p(p / scale_);
}

double LogSatisfaction::derivative(double p) const {
  return weight_ / (scale_ + p);
}

double LogSatisfaction::derivative_inverse(double marginal) const {
  if (!(marginal > 0.0)) {
    util::hot_fail_invalid_argument(
        "LogSatisfaction::derivative_inverse: marginal must be positive");
  }
  // w / (s + p) = m  =>  p = w/m - s, clamped at 0 when U'(0) <= m.
  const double p = weight_ / marginal - scale_;
  return p > 0.0 ? p : 0.0;
}

std::unique_ptr<Satisfaction> LogSatisfaction::clone() const {
  return std::make_unique<LogSatisfaction>(*this);
}

SqrtSatisfaction::SqrtSatisfaction(double weight) : weight_(weight) {
  if (weight <= 0.0) throw std::invalid_argument("SqrtSatisfaction: weight must be positive");
}

double SqrtSatisfaction::value(double p) const {
  return weight_ * (std::sqrt(1.0 + p) - 1.0);
}

double SqrtSatisfaction::derivative(double p) const {
  return weight_ * 0.5 / std::sqrt(1.0 + p);
}

double SqrtSatisfaction::derivative_inverse(double marginal) const {
  if (!(marginal > 0.0)) {
    util::hot_fail_invalid_argument(
        "SqrtSatisfaction::derivative_inverse: marginal must be positive");
  }
  // w / (2 sqrt(1 + p)) = m  =>  p = (w / (2m))^2 - 1.
  const double root = weight_ * 0.5 / marginal;
  const double p = root * root - 1.0;
  return p > 0.0 ? p : 0.0;
}

std::unique_ptr<Satisfaction> SqrtSatisfaction::clone() const {
  return std::make_unique<SqrtSatisfaction>(*this);
}

QuadraticSatisfaction::QuadraticSatisfaction(double weight, double cap)
    : weight_(weight), cap_(cap) {
  if (weight <= 0.0 || cap <= 0.0) {
    throw std::invalid_argument("QuadraticSatisfaction: weight and cap must be positive");
  }
}

double QuadraticSatisfaction::value(double p) const {
  return weight_ * (p - p * p / (2.0 * cap_));
}

double QuadraticSatisfaction::derivative(double p) const {
  return weight_ * (1.0 - p / cap_);
}

double QuadraticSatisfaction::derivative_inverse(double marginal) const {
  if (!(marginal > 0.0)) {
    util::hot_fail_invalid_argument(
        "QuadraticSatisfaction::derivative_inverse: marginal must be positive");
  }
  // w (1 - p/cap) = m  =>  p = cap (1 - m/w); satiation bounds it by cap.
  const double p = cap_ * (1.0 - marginal / weight_);
  return p > 0.0 ? p : 0.0;
}

std::unique_ptr<Satisfaction> QuadraticSatisfaction::clone() const {
  return std::make_unique<QuadraticSatisfaction>(*this);
}

}  // namespace olev::core
