// Centralized social-welfare maximizer: projected gradient ascent on W(p)
// over the product feasible set P = P_1 x ... x P_N with
// P_n = {p_n >= 0, sum_c p_{n,c} <= P_OLEV_n}.
//
// This is the *oracle* for Theorem IV.1: W is strictly concave in the row
// totals, so the maximizer's welfare is unique, and the test suite asserts
// the asynchronous game's fixed point attains it.  It is not part of the
// deployed mechanism (the grid does not know U_n); it exists to verify the
// decentralized machinery.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "core/cost.h"
#include "core/satisfaction.h"
#include "core/schedule.h"

namespace olev::core {

struct CentralOptions {
  double step_size = 1.0;       ///< initial step; backtracked on failure
  double tolerance = 1e-8;      ///< stop when max schedule change < tolerance
  std::size_t max_iterations = 50000;
};

struct CentralResult {
  PowerSchedule schedule;
  double welfare = 0.0;
  std::size_t iterations = 0;
  bool converged = false;
};

/// Maximizes W over the feasible set.  `p_max` has one cap per player.
[[nodiscard]] CentralResult maximize_welfare(
    std::span<const std::unique_ptr<Satisfaction>> players,
    std::span<const double> p_max, const SectionCost& z, std::size_t sections,
    const CentralOptions& options = {});

/// Euclidean projection of `row` onto {x >= 0, sum x <= cap} (in place).
void project_capped_simplex(std::span<double> row, double cap);

}  // namespace olev::core
