#include "core/mean_field.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/payment.h"
#include "obs/obs.h"
#include "util/audit.h"
#include "util/hot.h"

namespace olev::core {

// Real-time wall manifest: the per-iteration field kernel.  run() itself
// stays cold (it builds the result vectors); the loop body's work happens
// inside these three.
OLEV_HOT_ROOT("olev::core::MeanFieldGame::aggregate_response");
OLEV_HOT_ROOT("olev::core::MeanFieldGame::level_for_total");
OLEV_HOT_ROOT("olev::core::MeanFieldGame::welfare_at");
OLEV_RT_VCALL_OK("olev::core::MeanFieldGame::aggregate_response",
                 "Satisfaction::derivative_inverse dispatch; every override "
                 "is a registered hot root");
OLEV_RT_VCALL_OK("olev::core::MeanFieldGame::welfare_at",
                 "Satisfaction dispatch; every override is a registered hot "
                 "root");

FieldHistogram field_histogram(std::span<const double> loads,
                               std::size_t buckets) {
  if (buckets == 0) {
    throw std::invalid_argument("field_histogram: need at least one bucket");
  }
  FieldHistogram histogram;
  if (loads.empty()) return histogram;
  const auto [min_it, max_it] = std::minmax_element(loads.begin(), loads.end());
  histogram.min_load = *min_it;
  histogram.max_load = *max_it;
  const double width = (histogram.max_load - histogram.min_load) /
                       static_cast<double>(buckets);
  histogram.lower_bounds.resize(buckets);
  histogram.counts.assign(buckets, 0);
  for (std::size_t i = 0; i < buckets; ++i) {
    histogram.lower_bounds[i] =
        histogram.min_load + width * static_cast<double>(i);
  }
  for (double load : loads) {
    std::size_t bucket =
        width > 0.0
            ? static_cast<std::size_t>((load - histogram.min_load) / width)
            : 0;
    if (bucket >= buckets) bucket = buckets - 1;  // max load lands in the top bucket
    ++histogram.counts[bucket];
  }
  return histogram;
}

MeanFieldGame::MeanFieldGame(std::vector<PlayerSpec> players, SectionCost cost,
                             std::size_t sections, util::Kilowatts p_line,
                             MeanFieldConfig config)
    : players_(std::move(players)),
      cost_(std::move(cost)),
      sections_(sections),
      p_line_kw_(p_line.value()),
      config_(std::move(config)) {
  if (players_.empty()) {
    throw std::invalid_argument("MeanFieldGame: need at least one player");
  }
  if (sections_ == 0) {
    throw std::invalid_argument("MeanFieldGame: need at least one section");
  }
  if (p_line_kw_ <= 0.0) {
    throw std::invalid_argument("MeanFieldGame: p_line must be positive");
  }
  if (!cost_.strictly_convex()) {
    throw std::invalid_argument(
        "MeanFieldGame: the field level is identified through Z' -- the "
        "linear baseline stays on the exact Game");
  }
  for (const PlayerSpec& player : players_) {
    if (player.satisfaction == nullptr) {
      throw std::invalid_argument(
          "MeanFieldGame: player without satisfaction function");
    }
    if (player.p_max.value() < 0.0) {
      throw std::invalid_argument("MeanFieldGame: negative p_max");
    }
    if (!player.allowed_sections.empty()) {
      throw std::invalid_argument(
          "MeanFieldGame: path-restricted players need the exact Game (the "
          "field has no per-player section view)");
    }
  }
  if (config_.background_load_kw.empty()) {
    background_.assign(sections_, 0.0);
    flat_background_ = true;
  } else {
    if (config_.background_load_kw.size() != sections_) {
      throw std::invalid_argument(
          "MeanFieldGame: background_load_kw length mismatch");
    }
    background_ = config_.background_load_kw;
    flat_background_ = true;
    for (double load : background_) {
      if (!std::isfinite(load) || load < 0.0) {
        throw std::invalid_argument(
            "MeanFieldGame: background loads must be finite and >= 0");
      }
      if (load != 0.0) flat_background_ = false;
    }
  }
  sorted_background_ = SortedLoads(background_);
  scratch_fill_row_.assign(sections_, 0.0);
}

double MeanFieldGame::aggregate_response(double marginal) const {
  OLEV_HOT_REGION("core.meanfield.aggregate_response");
  double total = 0.0;
  if (marginal <= 0.0) {
    // A vanishing marginal price saturates every player at its cap.
    for (const PlayerSpec& player : players_) total += player.p_max.value();
    return total;
  }
  for (const PlayerSpec& player : players_) {
    const double unconstrained =
        player.satisfaction->derivative_inverse(marginal);
    const double cap = player.p_max.value();
    total += unconstrained < cap ? unconstrained : cap;
  }
  return total;
}

double MeanFieldGame::level_for_total(double total) const {
  if (flat_background_) {
    // Zero background: the water spreads over every section evenly.
    return total / static_cast<double>(sections_);
  }
  return sorted_background_.level_for(util::kw(total));
}

std::vector<double> MeanFieldGame::field_at(double total) const {
  if (flat_background_) {
    return std::vector<double>(sections_,
                               total / static_cast<double>(sections_));
  }
  const WaterFillResult fill = sorted_background_.fill(util::kw(total));
  std::vector<double> field = background_;
  for (std::size_t c = 0; c < sections_; ++c) field[c] += fill.row[c];
  return field;
}

double MeanFieldGame::welfare_at(double total, double* responded_total) const {
  OLEV_HOT_REGION("core.meanfield.welfare_at");
  const double rho = cost_.derivative(level_for_total(total));
  double responded = 0.0;
  double satisfaction = 0.0;
  for (const PlayerSpec& player : players_) {
    double p = rho > 0.0 ? player.satisfaction->derivative_inverse(rho)
                         : player.p_max.value();
    const double cap = player.p_max.value();
    if (p > cap) p = cap;
    responded += p;
    satisfaction += player.satisfaction->value(p);
  }
  if (responded_total != nullptr) *responded_total = responded;

  double grid_cost = 0.0;
  if (flat_background_) {
    const double level = responded / static_cast<double>(sections_);
    grid_cost = static_cast<double>(sections_) *
                (cost_.value(level) - cost_.value(0.0));
  } else {
    // fill_into reproduces fill()'s arithmetic bit-for-bit against the
    // pre-sized arena, keeping this kernel allocation-free.
    sorted_background_.fill_into(util::kw(responded),
                                 {scratch_fill_row_.data(), sections_});
    for (std::size_t c = 0; c < sections_; ++c) {
      grid_cost += cost_.value(background_[c] + scratch_fill_row_[c]) -
                   cost_.value(background_[c]);
    }
  }
  return satisfaction - grid_cost;
}

MeanFieldResult MeanFieldGame::run() {
  OLEV_OBS_SPAN(run_span, "meanfield.run", "solver");
  MeanFieldResult result;
  const double n_players = static_cast<double>(players_.size());

  // The fixed point T* of T -> sum_n p_n(Z'(lambda(T))) is unique: the
  // response sum is nonincreasing in T while the identity is increasing.
  // g(0) bounds every response from above, so [0, g(0)] brackets T*.
  double lo = 0.0;
  double hi = aggregate_response(cost_.derivative(level_for_total(0.0)));
  double total = 0.0;
  double welfare = welfare_at(total);
  bool converged = false;
  std::size_t iterations = 0;

  while (iterations < config_.max_iterations) {
    const double response = aggregate_response(
        cost_.derivative(level_for_total(total)));
    const double residual = response - total;
    if (std::abs(residual) <= config_.epsilon * std::max(1.0, total)) {
      converged = true;
      break;
    }
    // Both [lo, hi] and [total, response] bracket T* (g is decreasing and
    // crosses the identity once), so the bracket shrinks monotonically.
    if (residual > 0.0) {
      lo = std::max(lo, total);
      hi = std::min(hi, response);
    } else {
      hi = std::min(hi, total);
      lo = std::max(lo, response);
    }
    // A collapsed bracket pins T* positionally even when the response is
    // steep enough (g' < -1) that the residual itself stays large -- the
    // damped iterate then oscillates around T* inside an ever-shrinking
    // interval and the residual check above would never fire.
    if (hi - lo <= config_.epsilon * std::max(1.0, total)) {
      converged = true;
      break;
    }
    // Damped fixed-point step, clamped into the middle half of the bracket.
    // The clamp guarantees the next [total, response] intersection shrinks
    // the bracket by at least 25% per iteration (geometric convergence
    // regardless of the response slope), while leaving the damped step
    // untouched whenever it already lands well inside.
    const double width = hi - lo;
    double candidate = total + 0.5 * residual;
    candidate = std::clamp(candidate, lo + 0.25 * width, hi - 0.25 * width);

    // Welfare backtracking: the implied-profile welfare is unimodal in T
    // with its maximum at T*, so halving an overshoot back toward the
    // current iterate restores ascent.  This makes every *accepted*
    // iteration a weak welfare improvement (Theorem IV.1's analogue for
    // field iterations, audited below).
    double candidate_welfare = welfare_at(candidate);
    for (int backtrack = 0;
         backtrack < 48 &&
         candidate_welfare <
             welfare - 1e-12 * std::max(1.0, std::abs(welfare));
         ++backtrack) {
      candidate = 0.5 * (candidate + total);
      candidate_welfare = welfare_at(candidate);
    }

#if OLEV_AUDIT_ENABLED
    OLEV_AUDIT_FINITE(candidate, "MeanFieldGame::run: iterate");
    OLEV_AUDIT_FINITE(candidate_welfare, "MeanFieldGame::run: welfare");
    OLEV_AUDIT_CHECK(
        candidate_welfare >=
            welfare - 1e-9 * std::max(1.0, std::abs(welfare)),
        "MeanFieldGame::run: welfare decreased on field iteration " +
            std::to_string(iterations + 1) + ": " + std::to_string(welfare) +
            " -> " + std::to_string(candidate_welfare));
#endif

    const double previous = total;
    total = candidate;
    welfare = candidate_welfare;
    ++iterations;

    if (config_.record_trajectory) {
      UpdateMetrics metrics;
      metrics.update = iterations;
      metrics.player = players_.size();  // every player re-responded
      metrics.request = total;
      metrics.request_delta = std::abs(total - previous);
      metrics.welfare = welfare;
      double background_total = 0.0;
      for (double b : background_) background_total += b;
      metrics.mean_congestion = (total + background_total) /
                                (static_cast<double>(sections_) * p_line_kw_);
      result.trajectory.push_back(metrics);
    }
  }

  // Finalize on the responded profile so the published per-player requests
  // are exactly self-consistent with the published field.
  const double rho_at_total = cost_.derivative(level_for_total(total));
  result.requests.resize(players_.size());
  double responded = 0.0;
  double satisfaction_sum = 0.0;
  for (std::size_t n = 0; n < players_.size(); ++n) {
    const PlayerSpec& player = players_[n];
    double p = rho_at_total > 0.0
                   ? player.satisfaction->derivative_inverse(rho_at_total)
                   : player.p_max.value();
    const double cap = player.p_max.value();
    if (p > cap) p = cap;
    result.requests[n] = p;
    responded += p;
    satisfaction_sum += player.satisfaction->value(p);
  }

  result.converged = converged;
  result.iterations = iterations;
  result.total_load_kw = responded;
  result.water_level_kw = level_for_total(responded);
  result.marginal_price = cost_.derivative(result.water_level_kw);
  result.field = field_at(responded);

  // Payments: each player owns the p_n / T share of the aggregate
  // water-filled increment (its representative allocation), and pays the
  // externality of that row (Eq. 8-9 against the field).  Over a flat
  // field this collapses to the closed form C (Z(T/C) - Z((T - p_n)/C)).
  result.payments.assign(players_.size(), 0.0);
  result.utilities.resize(players_.size());
  double grid_cost = 0.0;
  if (responded > 0.0) {
    if (flat_background_) {
      const double level = result.water_level_kw;
      const double idle = cost_.value(0.0);
      const double sections = static_cast<double>(sections_);
      const double cost_at_level = cost_.value(level);
      for (std::size_t n = 0; n < players_.size(); ++n) {
        result.payments[n] =
            sections *
            (cost_at_level -
             cost_.value((responded - result.requests[n]) / sections));
      }
      grid_cost = sections * (cost_at_level - idle);
    } else {
      const WaterFillResult fill = sorted_background_.fill(util::kw(responded));
      std::vector<double> others(sections_);
      std::vector<double> row(sections_);
      for (std::size_t n = 0; n < players_.size(); ++n) {
        const double share = result.requests[n] / responded;
        for (std::size_t c = 0; c < sections_; ++c) {
          row[c] = share * fill.row[c];
          others[c] = result.field[c] - row[c];
        }
        result.payments[n] = externality_payment(cost_, others, row);
      }
      for (std::size_t c = 0; c < sections_; ++c) {
        grid_cost += cost_.value(result.field[c]) - cost_.value(background_[c]);
      }
    }
  }
  for (std::size_t n = 0; n < players_.size(); ++n) {
    result.utilities[n] =
        players_[n].satisfaction->value(result.requests[n]) -
        result.payments[n];
  }
  result.welfare = satisfaction_sum - grid_cost;
  result.congestion = congestion_report(
      std::span<const double>(result.field), util::Kilowatts{p_line_kw_});

#if OLEV_AUDIT_ENABLED
  {
    namespace audit = util::audit;
    // Field self-consistency: the published field carries exactly the
    // responded aggregate on top of the background.
    double field_total = 0.0;
    double background_total = 0.0;
    for (std::size_t c = 0; c < sections_; ++c) {
      OLEV_AUDIT_FINITE(result.field[c],
                        "MeanFieldGame: field[" + std::to_string(c) + "]");
      field_total += result.field[c];
      background_total += background_[c];
    }
    OLEV_AUDIT_CHECK(
        audit::close(field_total - background_total, responded,
                     1e-9 * std::max(1.0, responded)),
        "MeanFieldGame: field total " + std::to_string(field_total) +
            " inconsistent with aggregate demand " + std::to_string(responded));
    // Representative-player KKT at the fixed point (Lemma IV.1/IV.3 in the
    // mean-field limit): interior players equalize U' with the marginal
    // price, corner players satisfy the matching inequality.
    const double rho = result.marginal_price;
    const double tol = 1e-6 * std::max(1.0, rho);
    for (std::size_t n = 0; n < players_.size(); ++n) {
      const double p = result.requests[n];
      const double cap = players_[n].p_max.value();
      const double du = players_[n].satisfaction->derivative(p);
      if (p <= 0.0) {
        OLEV_AUDIT_CHECK(du <= rho + tol,
                         "MeanFieldGame: zero request but U'(0) > rho for "
                         "player " + std::to_string(n));
      } else if (p >= cap) {
        OLEV_AUDIT_CHECK(du >= rho - tol,
                         "MeanFieldGame: capped request but U'(cap) < rho "
                         "for player " + std::to_string(n));
      } else {
        OLEV_AUDIT_CHECK(audit::close(du, rho, tol),
                         "MeanFieldGame: interior KKT violated for player " +
                             std::to_string(n) + ": U' = " +
                             std::to_string(du) + ", rho = " +
                             std::to_string(rho));
      }
      // Eq. 8-9: externality payments against a nondecreasing Z are
      // non-negative.
      OLEV_AUDIT_FINITE(result.payments[n],
                        "MeanFieldGame: payment of player " +
                            std::to_string(n));
      OLEV_AUDIT_CHECK(result.payments[n] >=
                           -1e-9 * std::max(1.0, std::abs(result.payments[n])),
                       "MeanFieldGame: negative payment " +
                           std::to_string(result.payments[n]) + " for player " +
                           std::to_string(n));
    }
    OLEV_AUDIT_FINITE(result.welfare, "MeanFieldGame: welfare");
  }
#endif

  OLEV_OBS_COUNTER(obs_runs, "core.meanfield.runs");
  OLEV_OBS_ADD(obs_runs, 1);
  OLEV_OBS_COUNTER(obs_updates, "core.meanfield.player_updates");
  OLEV_OBS_ADD(obs_updates, iterations * players_.size());
  OLEV_OBS_HISTOGRAM(obs_iterations, "core.meanfield.iterations_per_run",
                     {5, 10, 20, 40, 80, 160, 320, 640});
  OLEV_OBS_OBSERVE(obs_iterations, static_cast<double>(iterations));
  OLEV_OBS_SPAN_ARG(run_span, "iterations", static_cast<double>(iterations));
  OLEV_OBS_SPAN_ARG(run_span, "players", n_players);
  OLEV_OBS_SPAN_ARG(run_span, "converged", converged ? 1.0 : 0.0);
  return result;
}

PowerSchedule MeanFieldGame::materialize_schedule(
    const MeanFieldResult& result) const {
  if (result.requests.size() != players_.size() ||
      result.field.size() != sections_) {
    throw std::invalid_argument(
        "MeanFieldGame::materialize_schedule: result shape mismatch");
  }
  PowerSchedule schedule(players_.size(), sections_);
  if (result.total_load_kw <= 0.0) return schedule;
  // Each player owns its p_n / T share of the aggregate increment over the
  // background (see the payment derivation in run()).
  std::vector<double> increment(sections_);
  for (std::size_t c = 0; c < sections_; ++c) {
    increment[c] = result.field[c] - background_[c];
  }
  std::vector<double> row(sections_);
  for (std::size_t n = 0; n < players_.size(); ++n) {
    const double share = result.requests[n] / result.total_load_kw;
    for (std::size_t c = 0; c < sections_; ++c) row[c] = share * increment[c];
    schedule.set_row(n, row);
  }
  return schedule;
}

GameResult MeanFieldGame::to_game_result(const MeanFieldResult& result) const {
  GameResult out;
  out.schedule = materialize_schedule(result);
  out.converged = result.converged;
  out.updates = result.iterations * players_.size();
  out.welfare = result.welfare;
  out.congestion = result.congestion;
  out.requests = result.requests;
  out.payments = result.payments;
  out.utilities = result.utilities;
  out.trajectory = result.trajectory;
  return out;
}

}  // namespace olev::core
