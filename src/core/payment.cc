#include "core/payment.h"

#include <stdexcept>
#include <string>

#include "obs/obs.h"
#include "util/audit.h"

namespace olev::core {

double externality_payment(const SectionCost& z,
                           std::span<const double> others_load,
                           std::span<const double> row) {
  if (others_load.size() != row.size()) {
    throw std::invalid_argument("externality_payment: length mismatch");
  }
  OLEV_OBS_COUNTER(obs_evaluations, "core.payment.evaluations");
  OLEV_OBS_ADD(obs_evaluations, 1);
  double payment = 0.0;
  for (std::size_t c = 0; c < row.size(); ++c) {
    OLEV_AUDIT_FINITE(others_load[c], "externality_payment: b[" +
                                         std::to_string(c) + "]");
    OLEV_AUDIT_FINITE(row[c],
                      "externality_payment: row[" + std::to_string(c) + "]");
    payment += z.value(others_load[c] + row[c]) - z.value(others_load[c]);
  }
  OLEV_AUDIT_FINITE(payment, "externality_payment: xi_n");
  return payment;
}

double payment_of_total(const SectionCost& z,
                        std::span<const double> others_load, Kilowatts total) {
  const WaterFillResult allocation = water_fill(others_load, total);
  return externality_payment(z, others_load, allocation.row);
}

double payment_derivative(const SectionCost& z,
                          std::span<const double> others_load, Kilowatts total) {
  const WaterFillResult allocation = water_fill(others_load, total);
  return z.derivative(allocation.level);
}

double payment_of_total(const SectionCost& z, const SortedLoads& others_load,
                        Kilowatts total) {
  const WaterFillResult allocation = others_load.fill(total);
  return externality_payment(z, others_load.values(), allocation.row);
}

double payment_derivative(const SectionCost& z, const SortedLoads& others_load,
                          Kilowatts total) {
  return z.derivative(others_load.level_for(total));
}

PaymentQuote quote_payment(const SectionCost& z,
                           std::span<const double> others_load, Kilowatts total) {
  PaymentQuote quote;
  quote.allocation = water_fill(others_load, total);
  quote.payment = externality_payment(z, others_load, quote.allocation.row);
  return quote;
}

}  // namespace olev::core
