#include "core/payment.h"

#include <string>

#include "obs/obs.h"
#include "util/audit.h"
#include "util/hot.h"

namespace olev::core {

// Real-time wall manifest: the externality charge of Eq. 9 runs on every
// hot best-response and engine quote.  The payment_* helpers are not rooted
// by name (the span overloads legitimately allocate); the SortedLoads
// overloads are covered through best_response_into's traversal instead.
OLEV_HOT_ROOT("olev::core::externality_payment");

#if OLEV_OBS_ENABLED
namespace {
// Eager handle: a function-local static would put __cxa_guard_acquire and
// the registry lock on the hot path.
obs::Counter& g_obs_evaluations =
    obs::Registry::instance().counter("core.payment.evaluations");
}  // namespace
#endif

double externality_payment(const SectionCost& z,
                           std::span<const double> others_load,
                           std::span<const double> row) {
  if (others_load.size() != row.size()) {
    util::hot_fail_invalid_argument("externality_payment: length mismatch");
  }
  OLEV_OBS_ONLY(g_obs_evaluations.add(1);)
  double payment = 0.0;
  for (std::size_t c = 0; c < row.size(); ++c) {
    OLEV_AUDIT_FINITE(others_load[c], "externality_payment: b[" +
                                         std::to_string(c) + "]");
    OLEV_AUDIT_FINITE(row[c],
                      "externality_payment: row[" + std::to_string(c) + "]");
    payment += z.value(others_load[c] + row[c]) - z.value(others_load[c]);
  }
  OLEV_AUDIT_FINITE(payment, "externality_payment: xi_n");
  return payment;
}

double payment_of_total(const SectionCost& z,
                        std::span<const double> others_load, Kilowatts total) {
  const WaterFillResult allocation = water_fill(others_load, total);
  return externality_payment(z, others_load, allocation.row);
}

double payment_derivative(const SectionCost& z,
                          std::span<const double> others_load, Kilowatts total) {
  const WaterFillResult allocation = water_fill(others_load, total);
  return z.derivative(allocation.level);
}

double payment_of_total(const SectionCost& z, const SortedLoads& others_load,
                        Kilowatts total) {
  const WaterFillResult allocation = others_load.fill(total);
  return externality_payment(z, others_load.values(), allocation.row);
}

double payment_derivative(const SectionCost& z, const SortedLoads& others_load,
                          Kilowatts total) {
  return z.derivative(others_load.level_for(total));
}

PaymentQuote quote_payment(const SectionCost& z,
                           std::span<const double> others_load, Kilowatts total) {
  PaymentQuote quote;
  quote.allocation = water_fill(others_load, total);
  quote.payment = externality_payment(z, others_load, quote.allocation.row);
  return quote;
}

}  // namespace olev::core
