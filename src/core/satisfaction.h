// OLEV satisfaction functions U_n (Section IV-B).
//
// The paper requires U_n to be strictly increasing, strictly concave, with
// continuous second derivative; its evaluation uses U_n(p) = log(1 + p).
// Everything downstream (best response, convergence proof, central oracle)
// only needs value() and derivative(), so satisfaction is a small interface
// with a few verified concrete families.
#pragma once

#include <memory>

namespace olev::core {

class Satisfaction {
 public:
  virtual ~Satisfaction() = default;
  /// U(p) for p >= 0; U(0) must be 0 (no power, no satisfaction).
  virtual double value(double p) const = 0;
  /// U'(p) > 0, strictly decreasing (strict concavity).
  virtual double derivative(double p) const = 0;
  /// (U')^{-1}: the p >= 0 with U'(p) == marginal, or 0 when U'(0) <=
  /// marginal already.  Because U' is strictly decreasing this is the
  /// one-shot best response to a flat marginal price -- the O(1)-per-player
  /// primitive of the mean-field engine (core/mean_field.h).  May return
  /// +infinity when U' stays above `marginal` forever (log/sqrt families as
  /// marginal -> 0); callers clamp to the physical cap.  The base
  /// implementation bisects on derivative(); concrete families override
  /// with closed forms.  Requires marginal > 0.
  virtual double derivative_inverse(double marginal) const;
  virtual std::unique_ptr<Satisfaction> clone() const = 0;
};

/// U(p) = w * log(1 + p / s).  The paper's choice with w = s = 1.
class LogSatisfaction final : public Satisfaction {
 public:
  explicit LogSatisfaction(double weight = 1.0, double scale = 1.0);
  double value(double p) const override;
  double derivative(double p) const override;
  double derivative_inverse(double marginal) const override;
  std::unique_ptr<Satisfaction> clone() const override;
  double weight() const { return weight_; }

 private:
  double weight_;
  double scale_;
};

/// U(p) = w * (sqrt(1 + p) - 1): heavier tail than log (slower saturation).
class SqrtSatisfaction final : public Satisfaction {
 public:
  explicit SqrtSatisfaction(double weight = 1.0);
  double value(double p) const override;
  double derivative(double p) const override;
  double derivative_inverse(double marginal) const override;
  std::unique_ptr<Satisfaction> clone() const override;

 private:
  double weight_;
};

/// U(p) = w * (p - p^2 / (2 * cap)), valid (strictly increasing) on
/// [0, cap); models a hard satiation level.  Requires the game to cap the
/// player's request below `cap`.
class QuadraticSatisfaction final : public Satisfaction {
 public:
  QuadraticSatisfaction(double weight, double cap);
  double value(double p) const override;
  double derivative(double p) const override;
  double derivative_inverse(double marginal) const override;
  std::unique_ptr<Satisfaction> clone() const override;

 private:
  double weight_;
  double cap_;
};

}  // namespace olev::core
