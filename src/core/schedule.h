// PowerSchedule: the N x C matrix p of Section IV-B -- p[n][c] is the power
// (kW) OLEV n draws from charging section c.  Row n is OLEV n's schedule
// p_n; column sum P_c is the total load on section c.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/hot.h"

namespace olev::core {

class PowerSchedule {
 public:
  PowerSchedule() = default;
  PowerSchedule(std::size_t players, std::size_t sections);

  std::size_t players() const { return players_; }
  std::size_t sections() const { return sections_; }

  double at(std::size_t n, std::size_t c) const { return data_[n * sections_ + c]; }
  void set(std::size_t n, std::size_t c, double v) { data_[n * sections_ + c] = v; }

  OLEV_HOT std::span<const double> row(std::size_t n) const;
  OLEV_HOT void set_row(std::size_t n, std::span<const double> values);
  void zero_row(std::size_t n);

  /// p_n = sum_c p[n][c].
  double row_total(std::size_t n) const;
  /// P_c = sum_n p[n][c].
  double column_total(std::size_t c) const;
  /// All column totals (length C).
  std::vector<double> column_totals() const;
  /// Column totals excluding row n -- the b_c = sum_{j != n} p[j][c] vector
  /// every best response is computed against.
  std::vector<double> column_totals_excluding(std::size_t n) const;
  /// Same, written into a caller buffer of length C (util/hot.h: hot, never
  /// allocates).  Bit-identical to the allocating variant: same per-column
  /// fold over rows, same subtraction, same non-negativity clamp.
  OLEV_HOT void column_totals_excluding_into(std::size_t n,
                                             std::span<double> out) const;

  /// max_{n,c} |a - b| between two equally-shaped schedules.
  double max_abs_diff(const PowerSchedule& other) const;

  /// Sum of all entries.
  double total() const;

  std::span<const double> flat() const { return data_; }

 private:
  std::size_t players_ = 0;
  std::size_t sections_ = 0;
  std::vector<double> data_;
};

}  // namespace olev::core
