#include "core/central.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/welfare.h"

namespace olev::core {

void project_capped_simplex(std::span<double> row, double cap) {
  // First try: clamp negatives.  If the positive part already fits the cap,
  // that is the projection onto the positive orthant intersected with the
  // half-space (the half-space constraint is inactive).
  double positive_sum = 0.0;
  for (double v : row) positive_sum += std::max(0.0, v);
  if (positive_sum <= cap) {
    for (double& v : row) v = std::max(0.0, v);
    return;
  }
  // Otherwise project onto the simplex {x >= 0, sum x = cap}: subtract the
  // unique threshold theta with sum_c max(0, x_c - theta) = cap (sort-based).
  std::vector<double> sorted(row.begin(), row.end());
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  double prefix = 0.0;
  double theta = 0.0;
  for (std::size_t k = 0; k < sorted.size(); ++k) {
    prefix += sorted[k];
    const double candidate = (prefix - cap) / static_cast<double>(k + 1);
    if (k + 1 == sorted.size() || candidate >= sorted[k + 1]) {
      theta = candidate;
      break;
    }
  }
  for (double& v : row) v = std::max(0.0, v - theta);
}

CentralResult maximize_welfare(
    std::span<const std::unique_ptr<Satisfaction>> players,
    std::span<const double> p_max, const SectionCost& z, std::size_t sections,
    const CentralOptions& options) {
  if (players.size() != p_max.size()) {
    throw std::invalid_argument("maximize_welfare: players/p_max mismatch");
  }
  const std::size_t n_players = players.size();
  PowerSchedule schedule(n_players, sections);

  auto welfare_of = [&](const PowerSchedule& s) {
    return social_welfare(players, z, s);
  };

  double step = options.step_size;
  double current = welfare_of(schedule);
  std::size_t it = 0;
  bool converged = false;
  std::vector<double> row(sections);

  for (; it < options.max_iterations; ++it) {
    PowerSchedule next = schedule;
    const auto column_totals = schedule.column_totals();
    for (std::size_t n = 0; n < n_players; ++n) {
      const double u_prime = players[n]->derivative(schedule.row_total(n));
      const auto old_row = schedule.row(n);
      for (std::size_t c = 0; c < sections; ++c) {
        row[c] = old_row[c] + step * (u_prime - z.derivative(column_totals[c]));
      }
      project_capped_simplex(row, p_max[n]);
      next.set_row(n, row);
    }

    const double next_welfare = welfare_of(next);
    if (next_welfare < current - 1e-14) {
      // Overshot the concave objective: halve the step and retry.
      step *= 0.5;
      if (step < 1e-12) break;
      continue;
    }
    const double delta = schedule.max_abs_diff(next);
    schedule = std::move(next);
    current = next_welfare;
    if (delta < options.tolerance) {
      converged = true;
      break;
    }
  }

  CentralResult result;
  result.schedule = std::move(schedule);
  result.welfare = current;
  result.iterations = it;
  result.converged = converged;
  return result;
}

}  // namespace olev::core
