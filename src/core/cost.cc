#include "core/cost.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/hot.h"

namespace olev::core {

// Real-time wall manifest: every concrete cost evaluation reachable from a
// hot best-response / engine quote is rooted, so the subtrees behind the
// sanctioned virtual dispatch sites below are checked independently.
OLEV_HOT_ROOT("olev::core::NonlinearPricing::value");
OLEV_HOT_ROOT("olev::core::NonlinearPricing::derivative");
OLEV_HOT_ROOT("olev::core::LinearPricing::value");
OLEV_HOT_ROOT("olev::core::LinearPricing::derivative");
OLEV_HOT_ROOT("olev::core::OverloadCost::value");
OLEV_HOT_ROOT("olev::core::OverloadCost::derivative");
OLEV_HOT_ROOT("olev::core::SectionCost::value");
OLEV_HOT_ROOT("olev::core::SectionCost::derivative");
OLEV_HOT_ROOT("olev::core::SectionCost::derivative_inverse");
OLEV_RT_VCALL_OK("olev::core::SectionCost::value",
                 "CostPolicy::value dispatch; every override is a registered "
                 "hot root");
OLEV_RT_VCALL_OK("olev::core::SectionCost::derivative",
                 "CostPolicy::derivative dispatch; every override is a "
                 "registered hot root");
OLEV_RT_VCALL_OK("olev::core::SectionCost::derivative_inverse",
                 "CostPolicy dispatch via strictly_convex()/derivative(); "
                 "every override is a registered hot root");

NonlinearPricing::NonlinearPricing(double beta, double alpha, double p_ref)
    : beta_(beta), alpha_(alpha), p_ref_(p_ref) {
  if (beta <= 0.0) throw std::invalid_argument("NonlinearPricing: beta must be positive");
  if (alpha < 0.0) throw std::invalid_argument("NonlinearPricing: alpha must be >= 0");
  if (p_ref <= 0.0) throw std::invalid_argument("NonlinearPricing: p_ref must be positive");
}

double NonlinearPricing::value(double x) const {
  const double t = alpha_ + x / p_ref_;
  return beta_ * t * t;
}

double NonlinearPricing::derivative(double x) const {
  return 2.0 * beta_ * (alpha_ + x / p_ref_) / p_ref_;
}

std::unique_ptr<CostPolicy> NonlinearPricing::clone() const {
  return std::make_unique<NonlinearPricing>(*this);
}

LinearPricing::LinearPricing(double beta) : beta_(beta) {
  if (beta <= 0.0) throw std::invalid_argument("LinearPricing: beta must be positive");
}

double LinearPricing::value(double x) const { return beta_ * x; }

double LinearPricing::derivative(double /*x*/) const { return beta_; }

std::unique_ptr<CostPolicy> LinearPricing::clone() const {
  return std::make_unique<LinearPricing>(*this);
}

double OverloadCost::value(double y) const {
  const double over = std::max(0.0, y);
  return weight * over * over;
}

double OverloadCost::derivative(double y) const {
  return y <= 0.0 ? 0.0 : 2.0 * weight * y;
}

SectionCost::SectionCost(std::unique_ptr<CostPolicy> v, OverloadCost a,
                         util::Kilowatts cap)
    : v_(std::move(v)), a_(a), cap_kw_(cap.value()) {
  if (v_ == nullptr) throw std::invalid_argument("SectionCost: null cost policy");
  if (cap_kw_ < 0.0) throw std::invalid_argument("SectionCost: negative capacity");
}

SectionCost::SectionCost(const SectionCost& other)
    : v_(other.v_->clone()), a_(other.a_), cap_kw_(other.cap_kw_) {}

SectionCost& SectionCost::operator=(const SectionCost& other) {
  if (this != &other) {
    v_ = other.v_->clone();
    a_ = other.a_;
    cap_kw_ = other.cap_kw_;
  }
  return *this;
}

double SectionCost::value(double x) const {
  return v_->value(x) + a_.value(x - cap_kw_);
}

double SectionCost::derivative(double x) const {
  return v_->derivative(x) + a_.derivative(x - cap_kw_);
}

double SectionCost::derivative_inverse(double marginal) const {
  if (!strictly_convex()) {
    util::hot_fail_logic_error(
        "SectionCost::derivative_inverse: Z' is constant under linear pricing "
        "with no overload cost; the water level is not identified");
  }
  if (marginal <= derivative(0.0)) return 0.0;
  // Grow the bracket until Z'(hi) >= marginal, then bisect.
  double lo = 0.0;
  double hi = std::max(1.0, cap_kw_);
  int guard = 0;
  while (derivative(hi) < marginal && guard++ < 200) hi *= 2.0;
  for (int it = 0; it < 200 && (hi - lo) > 1e-12 * std::max(1.0, hi); ++it) {
    const double mid = 0.5 * (lo + hi);
    if (derivative(mid) < marginal) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace olev::core
