#include "core/scenario.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.h"
#include "util/units.h"

namespace olev::core {

std::unique_ptr<CostPolicy> paper_nonlinear_pricing(util::DollarsPerMwh beta_lbmp,
                                                    double alpha,
                                                    util::Kilowatts cap) {
  // V(x) = beta_eff (alpha + x/cap)^2 with beta_eff chosen so that
  // V'(0.5 * cap) = beta_lbmp / 1000  [$ per kWh per hour == $/h per kW].
  const double cap_kw = cap.value();
  const double beta_eff =
      beta_lbmp.value() / 1000.0 * cap_kw / (2.0 * (alpha + 0.5));
  return std::make_unique<NonlinearPricing>(beta_eff, alpha, cap_kw);
}

std::unique_ptr<CostPolicy> paper_linear_pricing(util::DollarsPerMwh beta_lbmp) {
  return std::make_unique<LinearPricing>(beta_lbmp.value() / 1000.0);
}

Scenario Scenario::build(const ScenarioConfig& config) {
  if (config.num_olevs == 0 || config.num_sections == 0) {
    throw std::invalid_argument("Scenario: need OLEVs and sections");
  }
  Scenario scenario;
  scenario.config_ = config;

  const util::MetersPerSecond velocity = util::to_mps(config.velocity);
  scenario.p_line_kw_ = wpt::p_line_kw(config.section, velocity);
  scenario.cap_kw_ = config.eta * scenario.p_line_kw_;

  scenario.beta_lbmp_ = config.beta_lbmp.value();
  if (scenario.beta_lbmp_ <= 0.0) {
    const auto day = grid::NyisoDay::generate();
    scenario.beta_lbmp_ = day.lbmp_at(config.hour_of_day.value());
  }

  const auto beta = util::Price::per_mwh(scenario.beta_lbmp_);
  auto pricing = config.pricing == PricingKind::kNonlinear
                     ? paper_nonlinear_pricing(beta, config.alpha,
                                               util::kw(scenario.cap_kw_))
                     : paper_linear_pricing(beta);
  OverloadCost overload{config.overload_weight_scale * scenario.beta_lbmp_ /
                        1000.0 / scenario.p_line_kw_};
  scenario.cost_.emplace(std::move(pricing), overload,
                         util::kw(scenario.cap_kw_));

  // Per-player physical caps P_OLEV_n from Eq. (2): heterogeneous SOC and
  // trip requirements.
  util::Rng rng(config.seed);
  scenario.p_max_.reserve(config.num_olevs);
  scenario.weights_.reserve(config.num_olevs);

  // Demand calibration: at the symmetric interior equilibrium every player
  // requests p_t = target_degree * P_line * C / N, which loads each section
  // to the desired congestion degree (P_c / P_line = target, the paper's
  // normalization); choosing w_n = Z'(target * P_line) * (1 + p_t) makes
  // U'(p_t) = Z'(lambda) self-consistent (see header).
  const double calib_sections = static_cast<double>(
      config.calibration_sections ? config.calibration_sections
                                  : config.num_sections);
  const double calib_players = static_cast<double>(
      config.calibration_players ? config.calibration_players
                                 : config.num_olevs);
  const double p_target = config.target_degree * scenario.p_line_kw_ *
                          calib_sections / calib_players;
  const double marginal_at_target =
      scenario.cost_->derivative(config.target_degree * scenario.p_line_kw_);

  for (std::size_t n = 0; n < config.num_olevs; ++n) {
    const double soc = rng.uniform(0.35, 0.6);
    const double soc_required = rng.uniform(std::min(soc + 0.1, 0.9), 0.9);
    // Eq. (3): the feasible request is capped by BOTH the battery-side
    // limit (Eq. 2) and the velocity-dependent line limit (Eq. 1).
    const double p_olev = std::min(wpt::p_olev_kw(config.olev, soc, soc_required),
                                   scenario.p_line_kw_);
    scenario.p_max_.push_back(p_olev);
    const double diversity =
        rng.uniform(1.0 - config.demand_diversity, 1.0 + config.demand_diversity);
    scenario.weights_.push_back(marginal_at_target * (1.0 + p_target) * diversity);
  }
  return scenario;
}

Game Scenario::make_game() const {
  std::vector<PlayerSpec> players;
  players.reserve(p_max_.size());
  for (std::size_t n = 0; n < p_max_.size(); ++n) {
    PlayerSpec player;
    player.satisfaction = std::make_unique<LogSatisfaction>(weights_[n]);
    player.p_max = util::kw(p_max_[n]);
    players.push_back(std::move(player));
  }
  GameConfig game_config = config_.game;
  if (config_.pricing == PricingKind::kLinear) {
    game_config.scheduler = SchedulerKind::kGreedy;
  }
  return Game(std::move(players), *cost_, config_.num_sections,
              util::kw(p_line_kw_), game_config);
}

MeanFieldGame Scenario::make_mean_field() const {
  std::vector<PlayerSpec> players;
  players.reserve(p_max_.size());
  for (std::size_t n = 0; n < p_max_.size(); ++n) {
    PlayerSpec player;
    player.satisfaction = std::make_unique<LogSatisfaction>(weights_[n]);
    player.p_max = util::kw(p_max_[n]);
    players.push_back(std::move(player));
  }
  MeanFieldConfig mean_field = config_.mean_field;
  mean_field.record_trajectory =
      mean_field.record_trajectory || config_.game.record_trajectory;
  return MeanFieldGame(std::move(players), *cost_, config_.num_sections,
                       util::kw(p_line_kw_), std::move(mean_field));
}

std::vector<std::unique_ptr<Satisfaction>> Scenario::clone_satisfactions() const {
  std::vector<std::unique_ptr<Satisfaction>> out;
  out.reserve(weights_.size());
  for (double w : weights_) out.push_back(std::make_unique<LogSatisfaction>(w));
  return out;
}

double Scenario::unit_payment_per_mwh(const GameResult& result) {
  double payments = 0.0;
  double requests = 0.0;
  for (double p : result.payments) payments += p;
  for (double r : result.requests) requests += r;
  if (requests <= 0.0) return 0.0;
  return 1000.0 * payments / requests;
}

}  // namespace olev::core
