#include "core/closed_loop.h"

#include <algorithm>

#include "core/scenario.h"
#include "util/units.h"
#include "wpt/olev.h"

namespace olev::core {

ClosedLoopController::ClosedLoopController(wpt::ChargingLane& lane,
                                           const grid::NyisoDay& day,
                                           ClosedLoopConfig config)
    : lane_(lane), day_(day), config_(config) {}

void ClosedLoopController::on_step(const traffic::StepView& view) {
  if (view.time_s + 1e-9 < next_replan_s_) return;
  next_replan_s_ = view.time_s + config_.replan_period_s;
  replan(util::seconds(view.time_s), view.vehicles);
}

void ClosedLoopController::replan(util::Seconds time,
                                  std::span<const traffic::Vehicle> vehicles) {
  const double time_s = time.value();
  const double hour = time_s / 3600.0;
  const double beta = day_.lbmp_at(hour);

  // Census: OLEVs currently on the road whose batteries the lane tracks
  // (i.e. that have touched a section) -- the population the grid can
  // actually serve this period.
  struct Candidate {
    double soc;
    double velocity_mps;
  };
  std::vector<Candidate> candidates;
  for (const traffic::Vehicle& vehicle : vehicles) {
    if (!vehicle.is_olev) continue;
    const wpt::Battery* battery = lane_.battery_for(vehicle.id);
    if (battery == nullptr) continue;
    candidates.push_back({battery->soc(), std::max(1.0, vehicle.speed_mps)});
  }

  ReplanRecord record;
  record.time_s = time_s;
  record.beta_lbmp = beta;
  record.players = candidates.size();

  const std::size_t sections = lane_.sections().size();
  const wpt::ChargingSectionSpec& spec = lane_.sections().front().spec;
  // Occupants may be stopped in a queue, so the stationary (rated inverter)
  // limit is the relevant per-section ceiling here, not Eq. (1).
  const double p_line = spec.rated_power_kw;
  const double cap = config_.eta * p_line;

  if (candidates.empty()) {
    // Nobody to schedule: fall back to the hardware's own budgets.
    lane_.set_section_budgets_kw({});
    replans_.push_back(record);
    return;
  }

  SectionCost cost(
      paper_nonlinear_pricing(util::Price::per_mwh(beta), config_.alpha,
                              util::kw(cap)),
                   OverloadCost{config_.overload_weight_scale * beta / 1000.0 /
                                p_line},
      util::kw(cap));
  const double base_marginal = cost.derivative(0.5 * cap);

  std::vector<PlayerSpec> players;
  players.reserve(candidates.size());
  for (const Candidate& candidate : candidates) {
    PlayerSpec player;
    const double deficit =
        std::max(0.0, config_.soc_required - candidate.soc);
    player.satisfaction = std::make_unique<LogSatisfaction>(std::max(
        1e-9, config_.demand_weight * base_marginal * p_line * (1.0 + deficit)));
    const double p_olev =
        wpt::p_olev_kw(config_.olev, candidate.soc, config_.soc_required);
    player.p_max = util::kw(std::min(
        p_olev, wpt::p_line_kw(spec, util::mps(candidate.velocity_mps))));
    players.push_back(std::move(player));
  }

  GameConfig game_config = config_.game;
  game_config.seed =
      util::derive_seed(config_.seed, static_cast<std::uint64_t>(time_s));
  Game game(std::move(players), cost, sections, util::kw(p_line),
            game_config);
  const GameResult result = game.run();

  record.converged = result.converged;
  record.welfare = result.welfare;
  record.scheduled_total_kw = result.schedule.total();
  replans_.push_back(record);

  // Impose the schedule on the hardware: each section's budget is its
  // column total (never above the safety cap).
  std::vector<double> budgets = result.schedule.column_totals();
  for (double& budget : budgets) budget = std::min(budget, cap);
  lane_.set_section_budgets_kw(std::move(budgets));
}

}  // namespace olev::core
