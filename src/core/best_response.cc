#include "core/best_response.h"

#include <stdexcept>

#include "core/payment.h"
#include "obs/obs.h"
#include "util/audit.h"

namespace olev::core {

double utility_derivative(const Satisfaction& u, const SectionCost& z,
                          std::span<const double> others_load, Kilowatts p) {
  return u.derivative(p.value()) - payment_derivative(z, others_load, p);
}

double utility_derivative(const Satisfaction& u, const SectionCost& z,
                          const SortedLoads& others_load, Kilowatts p) {
  return u.derivative(p.value()) - payment_derivative(z, others_load, p);
}

BestResponse best_response(const Satisfaction& u, const SectionCost& z,
                           std::span<const double> others_load, Kilowatts p_max,
                           const BestResponseOptions& options) {
  return best_response(u, z, SortedLoads(others_load), p_max, options);
}

BestResponse best_response(const Satisfaction& u, const SectionCost& z,
                           const SortedLoads& others_load, Kilowatts p_max_kw,
                           const BestResponseOptions& options) {
  const double p_max = p_max_kw.value();
  if (p_max < 0.0) throw std::invalid_argument("best_response: negative p_max");
  OLEV_AUDIT_FINITE(p_max, "best_response: p_max");
  if (!z.strictly_convex()) {
    throw std::logic_error(
        "best_response: the best-response characterization requires a "
        "strictly convex section cost (Lemma IV.2)");
  }

  BestResponse response;

  const double f_at_zero = utility_derivative(u, z, others_load, Kilowatts{});
  if (f_at_zero <= 0.0 || p_max == 0.0) {
    // Marginal price at zero already exceeds marginal satisfaction.
    response.p_star = 0.0;
    response.kind = BestResponse::Case::kCornerZero;
  } else {
    const double f_at_cap = utility_derivative(u, z, others_load, p_max_kw);
    if (f_at_cap >= 0.0) {
      response.p_star = p_max;
      response.kind = BestResponse::Case::kCornerCap;
    } else {
      // Interior: bisect the strictly decreasing F' on [0, p_max].
      double lo = 0.0;
      double hi = p_max;
      int it = 0;
      while (hi - lo > options.tolerance && it < options.max_iterations) {
        const double mid = 0.5 * (lo + hi);
        if (utility_derivative(u, z, others_load, Kilowatts{mid}) > 0.0) {
          lo = mid;
        } else {
          hi = mid;
        }
        ++it;
      }
      response.p_star = 0.5 * (lo + hi);
      response.iterations = it;
      response.kind = BestResponse::Case::kInterior;
    }
  }

  response.allocation = others_load.fill(Kilowatts{response.p_star});
  response.payment =
      externality_payment(z, others_load.values(), response.allocation.row);
  response.utility = u.value(response.p_star) - response.payment;
  OLEV_OBS_COUNTER(obs_solves, "core.best_response.solves");
  OLEV_OBS_ADD(obs_solves, 1);
  // Corner solutions report 0 iterations; interior ones the bisection count.
  OLEV_OBS_HISTOGRAM(obs_iterations, "core.best_response.iterations",
                     {0, 8, 16, 24, 32, 40, 48, 64, 96});
  OLEV_OBS_OBSERVE(obs_iterations, static_cast<double>(response.iterations));
  OLEV_AUDIT_FINITE(response.p_star, "best_response: p_star");
  OLEV_AUDIT_FINITE(response.payment, "best_response: payment");
  OLEV_AUDIT_FINITE(response.utility, "best_response: utility");
  return response;
}

}  // namespace olev::core
