#include "core/best_response.h"

#include "core/payment.h"
#include "obs/obs.h"
#include "util/audit.h"
#include "util/hot.h"

namespace olev::core {

// Real-time wall manifest (tools/olev_rtcheck.py).  The virtual dispatch
// through Satisfaction / the pricing policy is sanctioned: every concrete
// override is itself a registered hot root, so the subtrees behind the
// indirect calls are checked too.
OLEV_HOT_ROOT("olev::core::best_response_into");
OLEV_RT_VCALL_OK("olev::core::best_response_into",
                 "Satisfaction/SectionCost dispatch; every override is a "
                 "registered hot root");
OLEV_RT_VCALL_OK("olev::core::utility_derivative",
                 "Satisfaction::derivative dispatch; every override is a "
                 "registered hot root");

#if OLEV_OBS_ENABLED
namespace {
// Eagerly-bound obs handles: namespace-scope dynamic initialization runs at
// load time, so the hot path carries no __cxa_guard_acquire or registry
// lock (a function-local static would put both on it).
obs::Counter& g_obs_solves =
    obs::Registry::instance().counter("core.best_response.solves");
// Corner solutions report 0 iterations; interior ones the bisection count.
obs::Histogram& g_obs_iterations = obs::Registry::instance().histogram(
    "core.best_response.iterations", {0, 8, 16, 24, 32, 40, 48, 64, 96});
}  // namespace
#endif

double utility_derivative(const Satisfaction& u, const SectionCost& z,
                          std::span<const double> others_load, Kilowatts p) {
  return u.derivative(p.value()) - payment_derivative(z, others_load, p);
}

double utility_derivative(const Satisfaction& u, const SectionCost& z,
                          const SortedLoads& others_load, Kilowatts p) {
  return u.derivative(p.value()) - payment_derivative(z, others_load, p);
}

BestResponse best_response(const Satisfaction& u, const SectionCost& z,
                           std::span<const double> others_load, Kilowatts p_max,
                           const BestResponseOptions& options) {
  return best_response(u, z, SortedLoads(others_load), p_max, options);
}

BestResponse best_response(const Satisfaction& u, const SectionCost& z,
                           const SortedLoads& others_load, Kilowatts p_max_kw,
                           const BestResponseOptions& options) {
  BestResponse response;
  response.allocation.row.resize(others_load.size());
  const BestResponseScalars scalars = best_response_into(
      u, z, others_load, p_max_kw, response.allocation.row, options);
  response.p_star = scalars.p_star;
  response.allocation.level = scalars.level;
  response.allocation.active_sections = scalars.active_sections;
  response.payment = scalars.payment;
  response.utility = scalars.utility;
  response.iterations = scalars.iterations;
  response.kind = scalars.kind;
  return response;
}

BestResponseScalars best_response_into(const Satisfaction& u,
                                       const SectionCost& z,
                                       const SortedLoads& others_load,
                                       Kilowatts p_max_kw, std::span<double> row,
                                       const BestResponseOptions& options) {
  const double p_max = p_max_kw.value();
  if (p_max < 0.0) {
    util::hot_fail_invalid_argument("best_response: negative p_max");
  }
  OLEV_AUDIT_FINITE(p_max, "best_response: p_max");
  if (!z.strictly_convex()) {
    util::hot_fail_logic_error(
        "best_response: the best-response characterization requires a "
        "strictly convex section cost (Lemma IV.2)");
  }

  BestResponseScalars result;

  const double f_at_zero = utility_derivative(u, z, others_load, Kilowatts{});
  if (f_at_zero <= 0.0 || p_max == 0.0) {
    // Marginal price at zero already exceeds marginal satisfaction.
    result.p_star = 0.0;
    result.kind = BestResponse::Case::kCornerZero;
  } else {
    const double f_at_cap = utility_derivative(u, z, others_load, p_max_kw);
    if (f_at_cap >= 0.0) {
      result.p_star = p_max;
      result.kind = BestResponse::Case::kCornerCap;
    } else {
      // Interior: bisect the strictly decreasing F' on [0, p_max].
      double lo = 0.0;
      double hi = p_max;
      int it = 0;
      while (hi - lo > options.tolerance && it < options.max_iterations) {
        const double mid = 0.5 * (lo + hi);
        if (utility_derivative(u, z, others_load, Kilowatts{mid}) > 0.0) {
          lo = mid;
        } else {
          hi = mid;
        }
        ++it;
      }
      result.p_star = 0.5 * (lo + hi);
      result.iterations = it;
      result.kind = BestResponse::Case::kInterior;
    }
  }

  result.level = others_load.fill_into(Kilowatts{result.p_star}, row,
                                       &result.active_sections);
  result.payment = externality_payment(z, others_load.values(), row);
  result.utility = u.value(result.p_star) - result.payment;
  OLEV_OBS_ONLY(g_obs_solves.add(1); g_obs_iterations.observe(
      static_cast<double>(result.iterations));)
  OLEV_AUDIT_FINITE(result.p_star, "best_response: p_star");
  OLEV_AUDIT_FINITE(result.payment, "best_response: payment");
  OLEV_AUDIT_FINITE(result.utility, "best_response: utility");
  return result;
}

}  // namespace olev::core
