// Scenario: the paper's Section V evaluation setup as a factory.
//
// Ties the substrates together: battery/WPT physics (Eq. 1-2) produce
// P_line and P_OLEV_n; the grid model supplies beta = LBMP at the game's
// hour; the pricing policy V(x) = beta (alpha + x/cap)^2 with alpha = 0.875
// is normalized so that the *marginal* price in $/MWh equals the LBMP at
// congestion degree 0.5 -- below that OLEVs pay under LBMP, above it they
// pay a growing premium.  Satisfaction weights are calibrated so that the
// symmetric interior equilibrium sits at the configured target congestion
// degree (the evaluation's "desired congestion degree"), up to the physical
// P_OLEV caps.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/game.h"
#include "core/mean_field.h"
#include "grid/nyiso_day.h"
#include "util/quantity.h"
#include "wpt/charging_section.h"
#include "wpt/olev.h"

namespace olev::core {

enum class PricingKind { kNonlinear, kLinear };

/// Which equilibrium solver a sweep point runs: the exact asynchronous
/// best-response Game or the O(N) mean-field fixed point (core/mean_field.h,
/// nonlinear pricing only).
enum class SolverKind { kExactGame, kMeanField };

struct ScenarioConfig {
  std::size_t num_olevs = 50;
  std::size_t num_sections = 100;
  util::MilesPerHour velocity{60.0};
  PricingKind pricing = PricingKind::kNonlinear;
  double alpha = 0.875;           ///< the paper's alpha
  /// <= 0 means "sample the grid model".
  util::DollarsPerMwh beta_lbmp{};
  util::Hours hour_of_day{17.0};  ///< hour whose LBMP supplies beta
  double eta = 0.9;               ///< safety factor (Eq. 4)
  double target_degree = 0.9;     ///< desired congestion degree (demand level)
  double demand_diversity = 0.2;  ///< +/- spread on satisfaction weights
  /// Demand calibration is anchored to a (players, sections) pair so that
  /// per-OLEV preferences can be held fixed while N or C is swept (the
  /// Fig. 5(b) protocol).  0 means "use num_olevs / num_sections".
  std::size_t calibration_players = 0;
  std::size_t calibration_sections = 0;
  double overload_weight_scale = 25.0;
  wpt::ChargingSectionSpec section;  ///< hardware of every section
  wpt::OlevParams olev;              ///< vehicle parameters
  std::uint64_t seed = 42;
  GameConfig game;
  SolverKind solver = SolverKind::kExactGame;
  /// Mean-field solver knobs; used only when solver == kMeanField
  /// (record_trajectory is inherited from `game` when unset there).
  MeanFieldConfig mean_field;
};

/// A fully instantiated evaluation scenario.
class Scenario {
 public:
  static Scenario build(const ScenarioConfig& config);

  /// A fresh Game over cloned players (Scenario can mint many games).
  Game make_game() const;

  /// The mean-field twin over the same cloned players (nonlinear pricing
  /// only: MeanFieldGame requires a strictly convex section cost).
  MeanFieldGame make_mean_field() const;

  double p_line_kw() const { return p_line_kw_; }
  double cap_kw() const { return cap_kw_; }
  double beta_lbmp() const { return beta_lbmp_; }
  const SectionCost& cost() const { return *cost_; }
  const std::vector<double>& p_max() const { return p_max_; }
  const std::vector<double>& weights() const { return weights_; }
  const ScenarioConfig& config() const { return config_; }

  /// Clones the player satisfaction functions (for the central oracle).
  std::vector<std::unique_ptr<Satisfaction>> clone_satisfactions() const;

  /// Mean unit payment in $/MWh implied by a game result:
  /// 1000 * sum(payments $/h) / sum(requests kW).
  static double unit_payment_per_mwh(const GameResult& result);

 private:
  ScenarioConfig config_;
  double p_line_kw_ = 0.0;
  double cap_kw_ = 0.0;
  double beta_lbmp_ = 0.0;
  std::optional<SectionCost> cost_;
  std::vector<double> p_max_;
  std::vector<double> weights_;
};

/// The normalized pricing policies used by Scenario (exposed for tests):
/// nonlinear Z'(x) = (beta/1000)(alpha + x/cap)/(alpha + 0.5), so the
/// marginal price crosses the LBMP exactly at congestion degree 0.5.
[[nodiscard]] std::unique_ptr<CostPolicy> paper_nonlinear_pricing(
    util::DollarsPerMwh beta_lbmp, double alpha, util::Kilowatts cap);
[[nodiscard]] std::unique_ptr<CostPolicy> paper_linear_pricing(
    util::DollarsPerMwh beta_lbmp);

}  // namespace olev::core
