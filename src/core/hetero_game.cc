#include "core/hetero_game.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace olev::core {

HeteroGame::HeteroGame(std::vector<PlayerSpec> players,
                       std::vector<SectionCost> costs,
                       std::vector<double> p_lines_kw, GameConfig config)
    : players_(std::move(players)),
      costs_(std::move(costs)),
      p_lines_kw_(std::move(p_lines_kw)),
      config_(config),
      schedule_(players_.size(), costs_.size()),
      column_totals_(costs_.size(), 0.0),
      rng_(config.seed) {
  if (players_.empty()) throw std::invalid_argument("HeteroGame: need players");
  if (costs_.empty() || costs_.size() != p_lines_kw_.size()) {
    throw std::invalid_argument("HeteroGame: costs/p_lines mismatch or empty");
  }
  for (const SectionCost& cost : costs_) {
    if (!cost.strictly_convex()) {
      throw std::invalid_argument("HeteroGame: sections must be strictly convex");
    }
  }
  for (const PlayerSpec& player : players_) {
    if (player.satisfaction == nullptr || player.p_max.value() < 0.0) {
      throw std::invalid_argument("HeteroGame: bad player spec");
    }
    if (!player.allowed_sections.empty()) {
      throw std::invalid_argument(
          "HeteroGame: path masks are not supported here (use Game)");
    }
  }
  cost_pointers_.reserve(costs_.size());
  for (const SectionCost& cost : costs_) cost_pointers_.push_back(&cost);
}

std::vector<double> HeteroGame::others_load(std::size_t player) const {
  std::vector<double> others = column_totals_;
  const auto own = schedule_.row(player);
  for (std::size_t c = 0; c < others.size(); ++c) {
    others[c] = std::max(0.0, others[c] - own[c]);
  }
  return others;
}

double HeteroGame::update_player(std::size_t player) {
  if (player >= players_.size()) throw std::out_of_range("HeteroGame");
  const auto others = others_load(player);
  const double previous = schedule_.row_total(player);
  const Satisfaction& u = *players_[player].satisfaction;
  const double p_max = players_[player].p_max.value();

  // Psi'(p) = rho*(p): marginal price of the generalized fill at total p.
  auto marginal_at = [&](double total) {
    return generalized_fill(cost_pointers_, others, util::kw(total)).marginal;
  };

  double p_star;
  if (p_max <= 0.0 || u.derivative(0.0) <= marginal_at(0.0)) {
    p_star = 0.0;
  } else if (u.derivative(p_max) >= marginal_at(p_max)) {
    p_star = p_max;
  } else {
    double lo = 0.0;
    double hi = p_max;
    for (int it = 0; it < 80 && hi - lo > 1e-7; ++it) {
      const double mid = 0.5 * (lo + hi);
      if (u.derivative(mid) > marginal_at(mid)) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    p_star = 0.5 * (lo + hi);
  }

  const GeneralizedFillResult fill =
      generalized_fill(cost_pointers_, others, util::kw(p_star));
  schedule_.set_row(player, fill.row);
  for (std::size_t c = 0; c < column_totals_.size(); ++c) {
    column_totals_[c] = others[c] + fill.row[c];
  }
  return std::abs(p_star - previous);
}

HeteroGameResult HeteroGame::run() {
  schedule_ = PowerSchedule(players_.size(), costs_.size());
  column_totals_.assign(costs_.size(), 0.0);
  cursor_ = 0;

  double cycle_max_delta = 0.0;
  bool converged = false;
  std::size_t updates = 0;
  // Same coverage-based convergence window as Game: close it only after
  // every player has been updated at least once.
  std::vector<bool> touched(players_.size(), false);
  std::size_t touched_count = 0;
  while (updates < config_.max_updates) {
    std::size_t player;
    if (config_.order == UpdateOrder::kRoundRobin) {
      player = cursor_;
      cursor_ = (cursor_ + 1) % players_.size();
    } else {
      player = static_cast<std::size_t>(
          rng_.uniform_int(0, static_cast<std::int64_t>(players_.size()) - 1));
    }
    cycle_max_delta = std::max(cycle_max_delta, update_player(player));
    ++updates;
    if (!touched[player]) {
      touched[player] = true;
      ++touched_count;
    }
    if (touched_count == players_.size()) {
      if (cycle_max_delta < config_.epsilon) {
        converged = true;
        break;
      }
      cycle_max_delta = 0.0;
      std::fill(touched.begin(), touched.end(), false);
      touched_count = 0;
    }
  }

  HeteroGameResult result;
  result.schedule = schedule_;
  result.converged = converged;
  result.updates = updates;
  for (std::size_t n = 0; n < players_.size(); ++n) {
    const double request = schedule_.row_total(n);
    result.requests.push_back(request);
    const auto others = schedule_.column_totals_excluding(n);
    double payment = 0.0;
    for (std::size_t c = 0; c < costs_.size(); ++c) {
      payment += costs_[c].value(others[c] + schedule_.at(n, c)) -
                 costs_[c].value(others[c]);
    }
    result.payments.push_back(payment);
    result.welfare += players_[n].satisfaction->value(request);
  }
  for (std::size_t c = 0; c < costs_.size(); ++c) {
    const double load = schedule_.column_total(c);
    result.welfare -= costs_[c].value(load) - costs_[c].value(0.0);
    result.marginal_prices.push_back(costs_[c].derivative(load));
  }
  return result;
}

}  // namespace olev::core
