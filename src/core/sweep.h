// Parallel scenario-sweep engine.
//
// The paper's evaluation (Section V, Figs. 5-6) is a grid of *independent*
// equilibrium computations: N x C x velocity x pricing-policy points, each
// one Scenario::build + Game::run.  run_sweep solves such a grid across a
// fixed-size thread pool.
//
// Determinism contract: every scenario is self-seeded (ScenarioConfig::seed
// and GameConfig::seed live inside the spec), each scenario is solved in
// isolation on whichever worker picks it up, and results land at the spec's
// index.  The output is therefore bit-identical to serial execution
// regardless of the thread count (covered by tests/test_sweep.cc).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/scenario.h"

namespace olev::core {

/// One point of a sweep: a label for reporting plus the full scenario
/// configuration (including both seeds).
struct ScenarioSpec {
  std::string label;
  ScenarioConfig config;
};

struct SweepConfig {
  /// Worker threads; 0 means hardware_concurrency.  `threads == 1` runs
  /// inline without spawning a pool.
  std::size_t threads = 0;
  /// When true, overwrites each spec's seeds with streams derived from
  /// `seed_base` and the spec index -- one knob re-seeds a whole grid.
  bool derive_seeds = false;
  std::uint64_t seed_base = 0;
};

struct SweepResult {
  std::size_t index = 0;    ///< position in the input spec list
  std::string label;
  GameResult result;
  double p_line_kw = 0.0;
  double cap_kw = 0.0;
  double beta_lbmp = 0.0;
  double unit_payment_per_mwh = 0.0;
};

/// Solves one spec serially (the unit of work run_sweep fans out).
[[nodiscard]] SweepResult solve_scenario(const ScenarioSpec& spec,
                                         std::size_t index = 0);

/// Solves every spec across the pool; results are ordered like `specs`.
/// The first exception thrown by any scenario is rethrown after all
/// scenarios finish.
[[nodiscard]] std::vector<SweepResult> run_sweep(
    const std::vector<ScenarioSpec>& specs, const SweepConfig& config = {});

}  // namespace olev::core
