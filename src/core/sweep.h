// Parallel scenario-sweep engine.
//
// The paper's evaluation (Section V, Figs. 5-6) is a grid of *independent*
// equilibrium computations: N x C x velocity x pricing-policy points, each
// one Scenario::build + Game::run.  run_sweep solves such a grid across a
// fixed-size thread pool.
//
// Determinism contract: every scenario is self-seeded (ScenarioConfig::seed
// and GameConfig::seed live inside the spec), each scenario is solved in
// isolation on whichever worker picks it up, and results land at the spec's
// index.  The output is therefore bit-identical to serial execution
// regardless of the thread count (covered by tests/test_sweep.cc).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/scenario.h"
#include "obs/metrics.h"

namespace olev::core {

/// One point of a sweep: a label for reporting plus the full scenario
/// configuration (including both seeds).
struct ScenarioSpec {
  std::string label;
  ScenarioConfig config;
};

struct SweepConfig {
  /// Worker threads; 0 means hardware_concurrency.  `threads == 1` runs
  /// inline without spawning a pool.
  std::size_t threads = 0;
  /// When true, overwrites each spec's seeds with streams derived from
  /// `seed_base` and the spec index -- one knob re-seeds a whole grid.
  bool derive_seeds = false;
  std::uint64_t seed_base = 0;
};

struct SweepResult {
  std::size_t index = 0;    ///< position in the input spec list
  std::string label;
  GameResult result;
  double p_line_kw = 0.0;
  double cap_kw = 0.0;
  double beta_lbmp = 0.0;
  double unit_payment_per_mwh = 0.0;
};

/// Solves one spec serially (the unit of work run_sweep fans out).
[[nodiscard]] SweepResult solve_scenario(const ScenarioSpec& spec,
                                         std::size_t index = 0);

/// Solves every spec across the pool; results are ordered like `specs`.
/// The first exception thrown by any scenario is rethrown after all
/// scenarios finish.
[[nodiscard]] std::vector<SweepResult> run_sweep(
    const std::vector<ScenarioSpec>& specs, const SweepConfig& config = {});

/// Per-worker accounting for one sweep run.  `busy_seconds` sums the solve
/// time of the scenarios this worker executed; `utilization` divides it by
/// the sweep's wall time (1.0 = the worker never idled).
struct SweepWorkerStats {
  std::size_t worker = 0;
  std::size_t scenarios = 0;
  double busy_seconds = 0.0;
  double utilization = 0.0;
};

/// Run report for a whole sweep: throughput, convergence, cache
/// effectiveness, per-phase distributions, and worker utilization.  Built
/// deterministically from the per-scenario results (NOT scraped from the
/// global obs registry), so two runs of the same grid produce identical
/// reports modulo timing fields.
struct SweepReport {
  std::size_t scenarios = 0;
  std::size_t threads = 0;
  std::size_t converged = 0;
  std::size_t total_updates = 0;
  double wall_seconds = 0.0;
  double scenarios_per_second = 0.0;
  double response_hit_ratio = 0.0;    ///< over all scenarios' CacheCounters
  double section_reuse_ratio = 0.0;
  obs::HistogramSnapshot updates_per_scenario;
  obs::HistogramSnapshot solve_millis;  ///< per-scenario solve wall time
  std::vector<SweepWorkerStats> workers;

  /// Wall-time fraction the pool spent solving: sum(busy) / (threads*wall).
  double worker_utilization() const;
  /// Human-readable multi-line rendering (run logs, stderr summaries).
  std::string to_text() const;
};

/// Results plus the run report.
struct SweepRun {
  std::vector<SweepResult> results;
  SweepReport report;
};

/// run_sweep plus per-scenario timing and per-worker accounting.  Results
/// are bit-identical to run_sweep on the same specs/config; only the
/// report's timing fields vary run to run.
[[nodiscard]] SweepRun run_sweep_reported(const std::vector<ScenarioSpec>& specs,
                                          const SweepConfig& config = {});

}  // namespace olev::core
