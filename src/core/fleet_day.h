// Time-coupled fleet simulation: one pricing game per period over a full
// grid day, with battery state carried between periods.
//
// The paper evaluates single-shot games; its Section III motivation,
// however, is inherently temporal (hourly traffic and LBMP both swing by
// 3-10x over a day).  This driver closes that loop: each period, the OLEVs
// currently on the road play the game with beta set to the period's LBMP
// and P_OLEV_n recomputed from their *current* SOC (Eq. 2); the scheduled
// energy charges their batteries (less transfer losses) while driving
// drains them.  Satisfaction weights scale with SOC deficit, so depleted
// vehicles bid harder -- the SOC-balancing behaviour of the authors' prior
// WPT work [ICPP'16].
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "core/game.h"
#include "util/quantity.h"
#include "grid/nyiso_day.h"
#include "wpt/battery.h"
#include "wpt/charging_section.h"
#include "wpt/olev.h"

namespace olev::core {

/// One member of the fleet with day-long accounting.
struct FleetOlev {
  wpt::Battery battery;
  double soc_required = 0.7;     ///< SOC needed to finish the daily trips
  double base_weight = 1.0;      ///< satisfaction weight at zero deficit
  double energy_received_kwh = 0.0;
  double energy_driven_kwh = 0.0;
  double total_paid = 0.0;       ///< sum of Psi_n over the day ($)
  std::size_t periods_active = 0;
};

struct FleetDayConfig {
  std::size_t fleet_size = 40;
  std::size_t num_sections = 15;
  util::MilesPerHour velocity{60.0};
  double alpha = 0.875;
  double eta = 0.9;
  double overload_weight_scale = 25.0;
  double period_minutes = 60.0;
  double initial_soc_low = 0.35;   ///< initial SOC sampled U[low, high]
  double initial_soc_high = 0.6;
  /// Probability that an OLEV is on the road in hour h; defaults to the
  /// normalized NYC traffic shape.
  std::array<double, 24> presence;
  /// Fraction of an active period actually spent driving (drains battery).
  double driving_duty = 0.4;
  double soc_weight_gain = 3.0;   ///< weight multiplier per unit SOC deficit
  wpt::OlevParams olev;
  wpt::ChargingSectionSpec section;
  std::uint64_t seed = 0xf1ee7;
  GameConfig game;

  FleetDayConfig();
};

struct PeriodRecord {
  double hour = 0.0;
  double beta_lbmp = 0.0;
  std::size_t active_olevs = 0;
  double energy_kwh = 0.0;      ///< battery-side energy delivered
  double payments = 0.0;        ///< $ collected this period
  double welfare = 0.0;
  double mean_congestion = 0.0;
  bool converged = false;
};

struct FleetDayResult {
  std::vector<PeriodRecord> periods;
  std::vector<FleetOlev> fleet;  ///< end-of-day state
  double total_energy_kwh = 0.0;
  double total_payments = 0.0;
  double mean_final_soc = 0.0;
};

/// Runs the full day.  Deterministic for a fixed config seed and grid day.
[[nodiscard]] FleetDayResult run_fleet_day(const FleetDayConfig& config,
                             const grid::NyisoDay& day);

}  // namespace olev::core
