#include "wpt/deployment.h"

#include <algorithm>
#include <memory>
#include <numeric>
#include <stdexcept>

#include "traffic/detector.h"

namespace olev::wpt {

std::vector<CandidateSlot> enumerate_slots(const traffic::Network& network,
                                           util::Meters slot_length) {
  const double slot_length_m = slot_length.value();
  if (slot_length_m <= 0.0) {
    throw std::invalid_argument("enumerate_slots: slot length must be positive");
  }
  std::vector<CandidateSlot> slots;
  for (traffic::EdgeId edge = 0; edge < network.edge_count(); ++edge) {
    const double length = network.edge(edge).length_m;
    for (double offset = 0.0; offset + slot_length_m <= length + 1e-9;
         offset += slot_length_m) {
      CandidateSlot slot;
      slot.edge = edge;
      slot.offset_m = offset;
      slot.length_m = slot_length_m;
      slots.push_back(slot);
    }
  }
  return slots;
}

void score_slots_by_occupancy(traffic::Simulation& sim,
                              std::vector<CandidateSlot>& slots,
                              util::Seconds until_time, bool olev_only) {
  std::vector<std::unique_ptr<traffic::SegmentDetector>> detectors;
  detectors.reserve(slots.size());
  for (const CandidateSlot& slot : slots) {
    detectors.push_back(std::make_unique<traffic::SegmentDetector>(
        slot.edge, slot.offset_m, slot.offset_m + slot.length_m, olev_only));
    sim.add_observer(detectors.back().get());
  }
  sim.run_until(until_time.value());
  for (std::size_t i = 0; i < slots.size(); ++i) {
    slots[i].score = detectors[i]->total_occupancy_s();
    // The detectors die with this scope: unhook them so the simulation can
    // keep running safely afterwards.
    sim.remove_observer(detectors[i].get());
  }
}

namespace {
ChargingSection equip(const CandidateSlot& slot, ChargingSectionSpec spec) {
  ChargingSection section;
  section.edge = slot.edge;
  section.offset_m = slot.offset_m;
  section.spec = spec;
  section.spec.length_m = slot.length_m;
  return section;
}
}  // namespace

std::vector<ChargingSection> plan_deployment(std::span<const CandidateSlot> slots,
                                             int budget,
                                             ChargingSectionSpec spec) {
  if (budget < 1) throw std::invalid_argument("plan_deployment: budget must be >= 1");
  std::vector<std::size_t> order(slots.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return slots[a].score > slots[b].score;
  });
  std::vector<ChargingSection> sections;
  const auto take = std::min<std::size_t>(static_cast<std::size_t>(budget),
                                          slots.size());
  sections.reserve(take);
  for (std::size_t i = 0; i < take; ++i) sections.push_back(equip(slots[order[i]], spec));
  return sections;
}

std::vector<ChargingSection> uniform_deployment(std::span<const CandidateSlot> slots,
                                                int budget,
                                                ChargingSectionSpec spec) {
  if (budget < 1) throw std::invalid_argument("uniform_deployment: budget must be >= 1");
  std::vector<ChargingSection> sections;
  const auto take = std::min<std::size_t>(static_cast<std::size_t>(budget),
                                          slots.size());
  sections.reserve(take);
  const double stride =
      static_cast<double>(slots.size()) / static_cast<double>(take);
  for (std::size_t i = 0; i < take; ++i) {
    const auto index =
        static_cast<std::size_t>(static_cast<double>(i) * stride);
    sections.push_back(equip(slots[std::min(index, slots.size() - 1)], spec));
  }
  return sections;
}

std::vector<double> edge_coverage_m(const traffic::Network& network,
                                    std::span<const ChargingSection> sections) {
  std::vector<double> coverage(network.edge_count(), 0.0);
  for (const ChargingSection& section : sections) {
    if (section.edge < coverage.size()) {
      coverage[section.edge] += section.spec.length_m;
    }
  }
  return coverage;
}

std::vector<double> charging_route_bonus(const traffic::Network& network,
                                         std::span<const ChargingSection> sections,
                                         util::SecondsPerMeter bonus_rate) {
  std::vector<double> bonus = edge_coverage_m(network, sections);
  for (double& value : bonus) value *= -bonus_rate.value();
  return bonus;
}

std::vector<bool> reachable_sections(const traffic::Network& network,
                                     std::span<const ChargingSection> sections,
                                     const traffic::Route& route,
                                     std::size_t route_index,
                                     util::Meters position,
                                     util::MetersPerSecond velocity,
                                     util::Seconds horizon) {
  const double position_m = position.value();
  const double velocity_mps = velocity.value();
  const double horizon_s = horizon.value();
  std::vector<bool> mask(sections.size(), false);
  if (route_index >= route.size() || velocity_mps <= 0.0 || horizon_s <= 0.0) {
    return mask;
  }
  // Distance reachable within the horizon at the current speed, measured
  // along the remaining route.
  double budget_m = velocity_mps * horizon_s;
  double cursor_m = position_m;  // position on the current route edge
  for (std::size_t i = route_index; i < route.size() && budget_m > 0.0; ++i) {
    const traffic::EdgeId edge = route[i];
    const double edge_length = network.edge(edge).length_m;
    const double reach_end = std::min(edge_length, cursor_m + budget_m);
    for (std::size_t s = 0; s < sections.size(); ++s) {
      // A section counts if any part of it lies ahead of the cursor and
      // within reach on this edge.
      if (sections[s].edge == edge && sections[s].end_m() > cursor_m &&
          sections[s].offset_m < reach_end) {
        mask[s] = true;
      }
    }
    budget_m -= reach_end - cursor_m;
    cursor_m = 0.0;
  }
  return mask;
}

}  // namespace olev::wpt
