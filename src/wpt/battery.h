// EV traction battery model with state-of-charge (SOC) bookkeeping.
//
// The paper's evaluation uses Chevrolet-Spark-like cells: 46.2 Ah capacity,
// 399 V nominal, 325 V cutoff, 240 A max current, with SOC constrained to
// [SOC_min, SOC_max] = [0.2, 0.9] "to ensure the safety and battery life".
#pragma once

#include "util/quantity.h"

namespace olev::wpt {

struct BatterySpec {
  double capacity_ah = 46.2;
  double nominal_voltage = 399.0;
  double cutoff_voltage = 325.0;
  double max_current_a = 240.0;
  double soc_min = 0.2;
  double soc_max = 0.9;

  /// Pack energy at full charge (kWh) = Ah * V / 1000.
  double capacity_kwh() const { return capacity_ah * nominal_voltage / 1000.0; }
  /// Maximum charge/discharge power (kW) = V * I / 1000 (paper's P_max).
  double max_power_kw() const { return nominal_voltage * max_current_a / 1000.0; }

  /// The paper's evaluation battery (Chevrolet Spark).
  static BatterySpec chevy_spark();
};

/// A battery instance: spec + current SOC.  All mutations clamp SOC into
/// [0, 1]; policy limits (soc_min/max) are reported, not silently enforced,
/// so callers can distinguish "full" from "at policy ceiling".
class Battery {
 public:
  Battery() : Battery(BatterySpec{}, 0.5) {}
  Battery(BatterySpec spec, double initial_soc);

  const BatterySpec& spec() const { return spec_; }
  double soc() const { return soc_; }
  /// Stored energy (kWh) at the current SOC.
  double energy_kwh() const { return soc_ * spec_.capacity_kwh(); }

  /// Energy (kWh) acceptable before hitting soc_max.
  double headroom_kwh() const;
  /// Energy (kWh) available above soc_min.
  double usable_kwh() const;
  bool at_policy_ceiling() const { return soc_ >= spec_.soc_max; }
  bool below_policy_floor() const { return soc_ < spec_.soc_min; }

  /// Charges by `energy` but never above soc_max; returns the energy
  /// actually accepted (kWh, raw Rep like the other accessors).
  double charge_kwh(util::KilowattHours energy);
  /// Discharges by `energy` but never below 0; returns energy delivered.
  double discharge_kwh(util::KilowattHours energy);

  void set_soc(double soc);

  // ---- wear accounting (related work [19]: SOC-of-health degradation) ----
  /// Total energy moved through the pack (charge + discharge, kWh).
  double throughput_kwh() const { return throughput_kwh_; }
  /// Throughput expressed in equivalent full cycles (throughput / 2E_max);
  /// the standard first-order proxy for cycle aging.
  double equivalent_full_cycles() const;

 private:
  BatterySpec spec_;
  double soc_;
  double throughput_kwh_ = 0.0;
};

}  // namespace olev::wpt
