#include "wpt/energy_ledger.h"

#include <cmath>
#include <stdexcept>

#include "obs/obs.h"

namespace olev::wpt {
namespace {
std::size_t hour_of(double time_s) {
  double hour = std::fmod(time_s / 3600.0, 24.0);
  if (hour < 0.0) hour += 24.0;
  return std::min<std::size_t>(23, static_cast<std::size_t>(hour));
}
}  // namespace

EnergyLedger::EnergyLedger(std::size_t section_count)
    : hourly_by_section_(section_count),
      last_vehicle_by_section_(section_count, 0) {}

void EnergyLedger::record(const TransferRecord& record) {
  if (record.section_index >= hourly_by_section_.size()) {
    throw std::out_of_range("EnergyLedger: bad section index");
  }
  OLEV_OBS_COUNTER(obs_transfers, "wpt.energy_ledger.transfers");
  OLEV_OBS_ADD(obs_transfers, 1);
  hourly_by_section_[record.section_index][hour_of(record.time_s)] +=
      record.energy_kwh;
  total_kwh_ += record.energy_kwh;
  ++records_;
  if (last_vehicle_by_section_[record.section_index] != record.vehicle) {
    last_vehicle_by_section_[record.section_index] = record.vehicle;
    ++passes_;
  }
  if (keep_records_) raw_.push_back(record);
}

double EnergyLedger::section_total_kwh(std::size_t section_index) const {
  double sum = 0.0;
  for (double e : hourly_by_section_.at(section_index)) sum += e;
  return sum;
}

std::array<double, 24> EnergyLedger::hourly_totals_kwh() const {
  std::array<double, 24> totals{};
  for (const auto& section : hourly_by_section_) {
    for (std::size_t h = 0; h < 24; ++h) totals[h] += section[h];
  }
  return totals;
}

const std::array<double, 24>& EnergyLedger::hourly_for_section(
    std::size_t section_index) const {
  return hourly_by_section_.at(section_index);
}

void EnergyLedger::reset() {
  for (auto& section : hourly_by_section_) section.fill(0.0);
  for (auto& vehicle : last_vehicle_by_section_) vehicle = 0;
  total_kwh_ = 0.0;
  records_ = 0;
  passes_ = 0;
  raw_.clear();
}

}  // namespace olev::wpt
