#include "wpt/charging_lane.h"

#include <algorithm>
#include <stdexcept>

namespace olev::wpt {

ChargingLane::ChargingLane(std::vector<ChargingSection> sections,
                           ChargingLaneConfig config)
    : sections_(std::move(sections)),
      config_(config),
      ledger_(sections_.size()) {
  if (sections_.empty()) {
    throw std::invalid_argument("ChargingLane: need at least one section");
  }
}

std::vector<ChargingSection> ChargingLane::evenly_spaced(traffic::EdgeId edge,
                                                         util::Meters from,
                                                         util::Meters to, int count,
                                                         ChargingSectionSpec spec) {
  const double from_m = from.value();
  const double to_m = to.value();
  if (count < 1) throw std::invalid_argument("ChargingLane: count must be >= 1");
  if (to_m <= from_m) throw std::invalid_argument("ChargingLane: empty span");
  std::vector<ChargingSection> sections;
  sections.reserve(static_cast<std::size_t>(count));
  const double stride = (to_m - from_m) / static_cast<double>(count);
  for (int i = 0; i < count; ++i) {
    ChargingSection section;
    section.edge = edge;
    section.offset_m = from_m + stride * i;
    section.spec = spec;
    section.spec.length_m = std::min(spec.length_m, stride);
    sections.push_back(section);
  }
  return sections;
}

int ChargingLane::section_at(traffic::EdgeId edge, util::Meters front,
                             util::Meters rear) const {
  for (std::size_t i = 0; i < sections_.size(); ++i) {
    if (sections_[i].edge == edge && sections_[i].covers(front, rear)) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

void ChargingLane::on_step(const traffic::StepView& view) {
  // Per-step per-section budget: eta * P_line is a power cap shared by all
  // simultaneous occupants of a section -- unless a scheduling controller
  // has imposed its own allocation.
  std::vector<double> budget_kw(sections_.size(), 0.0);
  for (std::size_t i = 0; i < sections_.size(); ++i) {
    if (!budget_override_kw_.empty()) {
      budget_kw[i] = budget_override_kw_[i];
    } else {
      budget_kw[i] = config_.enforce_section_cap
                         ? sections_[i].spec.safety_factor *
                               sections_[i].spec.rated_power_kw
                         : sections_[i].spec.rated_power_kw;
    }
  }

  for (const traffic::Vehicle& vehicle : view.vehicles) {
    if (!vehicle.is_olev || vehicle.arrived) continue;
    const double front = vehicle.pos_m;
    const double rear = vehicle.pos_m - vehicle.type.length_m;
    const int idx = section_at(vehicle.current_edge(), util::meters(front),
                               util::meters(rear));
    if (idx < 0) continue;
    const auto section_index = static_cast<std::size_t>(idx);
    const ChargingSection& section = sections_[section_index];

    auto [it, inserted] = batteries_.try_emplace(
        vehicle.id, config_.olev.battery, config_.initial_soc);
    Battery& battery = it->second;

    // Eq. (3) feasible power, further limited by the section's shared budget.
    double power_kw =
        feasible_power_kw(config_.olev, section.spec,
                          util::mps(vehicle.speed_mps),
                          battery.soc(), config_.soc_required);
    power_kw = std::min(power_kw, budget_kw[section_index]);
    if (power_kw <= 0.0) continue;

    const double offered_kwh = power_kw * view.dt_s / 3600.0;
    // Air-gap losses: only transfer_efficiency of grid-side energy lands in
    // the pack; the ledger books the grid-side draw.
    const double accepted_kwh =
        battery.charge_kwh(
            util::kwh(offered_kwh * section.spec.transfer_efficiency));
    if (accepted_kwh <= 0.0) continue;
    const double grid_kwh = accepted_kwh / section.spec.transfer_efficiency;
    budget_kw[section_index] -= grid_kwh * 3600.0 / view.dt_s;

    TransferRecord record;
    record.vehicle = vehicle.id;
    record.section_index = section_index;
    record.time_s = view.time_s;
    record.energy_kwh = grid_kwh;
    record.power_kw = grid_kwh * 3600.0 / view.dt_s;
    ledger_.record(record);
  }
}

const Battery* ChargingLane::battery_for(traffic::VehicleId id) const {
  const auto it = batteries_.find(id);
  return it == batteries_.end() ? nullptr : &it->second;
}

Battery* ChargingLane::mutable_battery_for(traffic::VehicleId id) {
  const auto it = batteries_.find(id);
  return it == batteries_.end() ? nullptr : &it->second;
}

void ChargingLane::set_section_budgets_kw(std::vector<double> budgets) {
  if (!budgets.empty() && budgets.size() != sections_.size()) {
    throw std::invalid_argument(
        "ChargingLane: budget vector must match section count");
  }
  budget_override_kw_ = std::move(budgets);
}

}  // namespace olev::wpt
