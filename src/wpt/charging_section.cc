#include "wpt/charging_section.h"

#include <algorithm>

namespace olev::wpt {

double p_line_kw(const ChargingSectionSpec& spec,
                 util::MetersPerSecond velocity) {
  const double velocity_mps = velocity.value();
  if (velocity_mps <= 0.0) return spec.rated_power_kw;
  const double line_kw =
      spec.line_voltage * spec.max_current_a * spec.length_m / velocity_mps /
      1000.0;
  return std::min(line_kw, spec.rated_power_kw);
}

double capacity_cap_kw(const ChargingSectionSpec& spec,
                       util::MetersPerSecond velocity) {
  return spec.safety_factor * p_line_kw(spec, velocity);
}

}  // namespace olev::wpt
