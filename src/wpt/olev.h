// Per-OLEV energy demand model: Eq. (2) and Eq. (3) of the paper.
//
// Eq. (2):  P_OLEV_n = (SOC_req_n - SOC_n + SOC_min) * P_max * eta_E / eta_OLEV
//   "the energy needed for planned travel minus the onboard energy storage
//   times the efficiency of converting stored energy to grid power, divided
//   by the duration of time the energy is dispatched."
#pragma once

#include "wpt/battery.h"
#include "wpt/charging_section.h"

namespace olev::wpt {

struct OlevParams {
  BatterySpec battery = BatterySpec::chevy_spark();
  double eta_e = 0.85;     ///< energy transfer efficiency (eta_E)
  double eta_olev = 0.9;   ///< vehicle driving efficiency (eta_OLEV)
  /// Consumption used to translate trip distance into required SOC.
  double consumption_kwh_per_km = 0.15;
};

/// Eq. (2): maximum power (kW) OLEV n can usefully receive, given its
/// current SOC and the SOC required to finish the trip.  Non-negative; zero
/// when the battery already holds enough energy.
[[nodiscard]] double p_olev_kw(const OlevParams& params, double soc,
                               double soc_required);

/// Eq. (3): feasible power from one section = min(P_line, P_OLEV), in kW.
[[nodiscard]] double feasible_power_kw(const OlevParams& params,
                                       const ChargingSectionSpec& section,
                                       util::MetersPerSecond velocity, double soc,
                                       double soc_required);

/// SOC needed to cover `trip_km` from the current point (before efficiency
/// losses), clamped to [0, 1].
[[nodiscard]] double soc_required_for_trip(const OlevParams& params,
                                           util::Kilometers trip);

/// The paper's evaluation cap: OLEVs "can receive up to 50% of their SOC
/// from the smart grid based on daily travel distance" (NHTS: ~70% of trips
/// are 10-30 miles).  Returns the per-day receivable energy in kWh.
[[nodiscard]] double daily_receivable_kwh(const OlevParams& params,
                                          double soc);

}  // namespace olev::wpt
