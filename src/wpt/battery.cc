#include "wpt/battery.h"

#include <algorithm>
#include <stdexcept>

namespace olev::wpt {

BatterySpec BatterySpec::chevy_spark() { return BatterySpec{}; }

Battery::Battery(BatterySpec spec, double initial_soc) : spec_(spec) {
  if (spec_.capacity_ah <= 0.0 || spec_.nominal_voltage <= 0.0) {
    throw std::invalid_argument("Battery: capacity and voltage must be positive");
  }
  if (spec_.soc_min < 0.0 || spec_.soc_max > 1.0 || spec_.soc_min >= spec_.soc_max) {
    throw std::invalid_argument("Battery: need 0 <= soc_min < soc_max <= 1");
  }
  set_soc(initial_soc);
}

double Battery::headroom_kwh() const {
  return std::max(0.0, (spec_.soc_max - soc_) * spec_.capacity_kwh());
}

double Battery::usable_kwh() const {
  return std::max(0.0, (soc_ - spec_.soc_min) * spec_.capacity_kwh());
}

double Battery::charge_kwh(util::KilowattHours energy) {
  const double energy_kwh = energy.value();
  if (energy_kwh < 0.0) throw std::invalid_argument("Battery::charge_kwh: negative energy");
  const double accepted = std::min(energy_kwh, headroom_kwh());
  soc_ += accepted / spec_.capacity_kwh();
  soc_ = std::min(soc_, 1.0);
  throughput_kwh_ += accepted;
  return accepted;
}

double Battery::discharge_kwh(util::KilowattHours energy) {
  const double energy_kwh = energy.value();
  if (energy_kwh < 0.0) throw std::invalid_argument("Battery::discharge_kwh: negative energy");
  const double available = soc_ * spec_.capacity_kwh();
  const double delivered = std::min(energy_kwh, available);
  soc_ -= delivered / spec_.capacity_kwh();
  soc_ = std::max(soc_, 0.0);
  throughput_kwh_ += delivered;
  return delivered;
}

void Battery::set_soc(double soc) { soc_ = std::clamp(soc, 0.0, 1.0); }

double Battery::equivalent_full_cycles() const {
  return throughput_kwh_ / (2.0 * spec_.capacity_kwh());
}

}  // namespace olev::wpt
