// Charging-section deployment planning.
//
// The paper's future work: "we plan to consider optimal deployment of
// charging sections ... Cities may consider dedicating lanes to OLEVs or
// placing charging sections at traffic lights or stop signals and
// well-traveled road sections."  Related work [Ko & Jang 2013] optimizes
// transmitter placement against infrastructure cost.
//
// This module plans a budget-constrained deployment: enumerate candidate
// slots along the network, score each by measured vehicle occupancy from a
// pilot simulation (queues at signals score highest, exactly the paper's
// intuition), then greedily take the best `budget` slots.  It also exports
// per-edge coverage as a routing cost adjustment so OLEV path planning can
// prefer charging-equipped streets (traffic::shortest_route).
#pragma once

#include <span>
#include <vector>

#include "traffic/network.h"
#include "traffic/simulation.h"
#include "util/quantity.h"
#include "wpt/charging_section.h"

namespace olev::wpt {

struct CandidateSlot {
  traffic::EdgeId edge = traffic::kInvalidEdge;
  double offset_m = 0.0;
  double length_m = 0.0;
  double score = 0.0;  ///< expected occupancy seconds from the pilot run
};

/// Tiles every edge with back-to-back slots of `slot_length_m` (the last
/// partial slot of an edge is dropped).
[[nodiscard]] std::vector<CandidateSlot> enumerate_slots(
    const traffic::Network& network, util::Meters slot_length);

/// Scores `slots` by running `sim` until `until_time_s` with one
/// SegmentDetector per slot; each slot's score becomes its accumulated
/// occupancy seconds.  The simulation is advanced in place (pass a fresh
/// one).  When `olev_only` is set, only OLEV-tagged vehicles count.
void score_slots_by_occupancy(traffic::Simulation& sim,
                              std::vector<CandidateSlot>& slots,
                              util::Seconds until_time, bool olev_only = false);

/// Picks the `budget` highest-scoring slots (stable on ties) and equips
/// them with `spec` (spec.length_m is overridden by each slot's length).
std::vector<ChargingSection> plan_deployment(std::span<const CandidateSlot> slots,
                                             int budget,
                                             ChargingSectionSpec spec);

/// Uniform baseline: every k-th slot regardless of score (k chosen to
/// spend exactly `budget` slots).
std::vector<ChargingSection> uniform_deployment(std::span<const CandidateSlot> slots,
                                                int budget,
                                                ChargingSectionSpec spec);

/// Meters of charging coverage per edge (length network.edge_count()).
std::vector<double> edge_coverage_m(const traffic::Network& network,
                                    std::span<const ChargingSection> sections);

/// Routing cost adjustment for charging-aware path planning: each edge gets
/// -bonus_s_per_m * coverage meters (pass to traffic::shortest_route).
std::vector<double> charging_route_bonus(const traffic::Network& network,
                                         std::span<const ChargingSection> sections,
                                         util::SecondsPerMeter bonus);

/// Sections an OLEV can reach within `horizon_s` while following `route`
/// from (current edge index, position) at `velocity_mps` -- the mask the
/// pricing game should restrict the vehicle's allocation to (Section
/// IV-A's ETA exchange; feeds PlayerSpec::allowed_sections).  One entry per
/// element of `sections`.
[[nodiscard]] std::vector<bool> reachable_sections(
    const traffic::Network& network, std::span<const ChargingSection> sections,
    const traffic::Route& route, std::size_t route_index, util::Meters position,
    util::MetersPerSecond velocity, util::Seconds horizon);

}  // namespace olev::wpt
