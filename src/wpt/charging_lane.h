// ChargingLane couples the traffic simulation to the WPT hardware model:
// on every simulation step it finds OLEVs overlapping a charging section,
// applies the Eq. (1)-(3) power limits, charges their batteries, and books
// the transfer in an EnergyLedger.  This is the machinery behind the paper's
// Section III study ("the amount of energy OLEVs can receive over the course
// of the day").
#pragma once

#include <unordered_map>
#include <vector>

#include "traffic/detector.h"
#include "util/quantity.h"
#include "wpt/battery.h"
#include "wpt/charging_section.h"
#include "wpt/energy_ledger.h"
#include "wpt/olev.h"

namespace olev::wpt {

struct ChargingLaneConfig {
  OlevParams olev;
  double initial_soc = 0.5;      ///< paper: "SOC of each vehicle ... 50%"
  double soc_required = 0.7;     ///< default trip requirement
  bool enforce_section_cap = true;  ///< respect eta * P_line per section
};

class ChargingLane : public traffic::StepObserver {
 public:
  ChargingLane(std::vector<ChargingSection> sections, ChargingLaneConfig config);

  /// Places `count` sections of `spec` evenly over [from, to) of `edge`.
  static std::vector<ChargingSection> evenly_spaced(traffic::EdgeId edge,
                                                    util::Meters from,
                                                    util::Meters to, int count,
                                                    ChargingSectionSpec spec);

  void on_step(const traffic::StepView& view) override;

  const EnergyLedger& ledger() const { return ledger_; }
  EnergyLedger& ledger() { return ledger_; }
  const std::vector<ChargingSection>& sections() const { return sections_; }

  /// Battery state for a vehicle seen by the lane; nullptr if never seen.
  const Battery* battery_for(traffic::VehicleId id) const;
  std::size_t tracked_vehicles() const { return batteries_.size(); }

  /// Index of the section covering (edge, front, rear); -1 if none.
  [[nodiscard]] int section_at(traffic::EdgeId edge, util::Meters front,
                               util::Meters rear) const;

  /// Overrides the per-section power budgets (kW) -- the hook a scheduling
  /// controller (e.g. the pricing game) uses to impose its allocation on
  /// the hardware.  Must have one entry per section; pass an empty vector
  /// to return to the default eta * rated budgets.
  void set_section_budgets_kw(std::vector<double> budgets);
  const std::vector<double>& section_budgets_kw() const {
    return budget_override_kw_;
  }

  /// Mutable battery access for co-simulation (driving drain etc.).
  Battery* mutable_battery_for(traffic::VehicleId id);

 private:
  std::vector<ChargingSection> sections_;
  ChargingLaneConfig config_;
  EnergyLedger ledger_;
  std::unordered_map<traffic::VehicleId, Battery> batteries_;
  std::vector<double> budget_override_kw_;  ///< empty = default budgets
};

}  // namespace olev::wpt
