// Transfer accounting: every (vehicle, section, step) energy delivery is
// recorded, then aggregated per hour and per section -- the quantities the
// Fig. 3(c) reproduction reports.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "traffic/types.h"

namespace olev::wpt {

struct TransferRecord {
  traffic::VehicleId vehicle = 0;
  std::size_t section_index = 0;
  double time_s = 0.0;
  double energy_kwh = 0.0;
  double power_kw = 0.0;
};

class EnergyLedger {
 public:
  explicit EnergyLedger(std::size_t section_count);

  void record(const TransferRecord& record);

  std::size_t section_count() const { return hourly_by_section_.size(); }
  double total_kwh() const { return total_kwh_; }
  double section_total_kwh(std::size_t section_index) const;
  /// Energy delivered during each hour of the day, summed over sections.
  std::array<double, 24> hourly_totals_kwh() const;
  /// Energy delivered per hour for one section.
  const std::array<double, 24>& hourly_for_section(std::size_t section_index) const;
  std::size_t record_count() const { return records_; }
  /// Distinct-vehicle transfer events (a vehicle crossing one section once).
  std::size_t unique_vehicle_passes() const { return passes_; }

  /// Raw record retention is optional (costly for day-long runs).
  void keep_records(bool keep) { keep_records_ = keep; }
  const std::vector<TransferRecord>& records() const { return raw_; }

  void reset();

 private:
  std::vector<std::array<double, 24>> hourly_by_section_;
  std::vector<traffic::VehicleId> last_vehicle_by_section_;
  double total_kwh_ = 0.0;
  std::size_t records_ = 0;
  std::size_t passes_ = 0;
  bool keep_records_ = false;
  std::vector<TransferRecord> raw_;
};

}  // namespace olev::wpt
