// Road-embedded charging sections and the paper's power-limit equations.
//
// Eq. (1):  P_line = V * Curr * l / vel
//   "the capacity of the power line of a charging section" [Kempton & Tomic
//   2005].  V * Curr is the electrical line limit (W); l / vel is the dwell
//   time of a vehicle crossing an l-meter section at vel m/s.  The product
//   is the energy deliverable per pass expressed in the paper's power units
//   (it treats a 1-second dispatch as the reference), so P_line *decreases*
//   with vehicle velocity -- the property all of the paper's velocity
//   sensitivity results (Figs. 5 vs. 6) rest on.
//
// Eq. (3):  p_{n,c} <= min(P_line, P_OLEV)   (P_OLEV from olev.h, Eq. 2).
#pragma once

#include "traffic/types.h"
#include "util/quantity.h"

namespace olev::wpt {

struct ChargingSectionSpec {
  double line_voltage = 480.0;    ///< V in Eq. (1)
  double max_current_a = 210.0;   ///< Curr in Eq. (1)
  double length_m = 20.0;         ///< l in Eq. (1)
  double rated_power_kw = 100.0;  ///< nameplate inverter limit
  double safety_factor = 0.9;     ///< eta in Eq. (4), in [0, 1]
  double transfer_efficiency = 0.85;  ///< air-gap coupling efficiency

  /// Electrical line limit V * Curr in kW.
  double electrical_limit_kw() const {
    return line_voltage * max_current_a / 1000.0;
  }
};

/// Eq. (1) for a vehicle crossing at `velocity`; capped by the section's
/// rated inverter power.  Returns the rated power in kW (raw solver Rep)
/// -- the rated power for velocity <= 0 (stationary vehicle parked on the
/// section).
[[nodiscard]] double p_line_kw(const ChargingSectionSpec& spec,
                               util::MetersPerSecond velocity);

/// Capacity bound of Eq. (4): eta * P_line.
[[nodiscard]] double capacity_cap_kw(const ChargingSectionSpec& spec,
                                     util::MetersPerSecond velocity);

/// A charging section placed on a road edge at [offset_m, offset_m+length).
struct ChargingSection {
  traffic::EdgeId edge = traffic::kInvalidEdge;
  double offset_m = 0.0;
  ChargingSectionSpec spec;

  double end_m() const { return offset_m + spec.length_m; }
  /// True if a vehicle body [rear, front] overlaps the section.
  bool covers(util::Meters front, util::Meters rear) const {
    return front.value() >= offset_m && rear.value() <= end_m();
  }
};

}  // namespace olev::wpt
