#include "wpt/olev.h"

#include <algorithm>

namespace olev::wpt {

double p_olev_kw(const OlevParams& params, double soc, double soc_required) {
  const double deficit = soc_required - soc + params.battery.soc_min;
  if (deficit <= 0.0) return 0.0;
  return deficit * params.battery.max_power_kw() * params.eta_e / params.eta_olev;
}

double feasible_power_kw(const OlevParams& params,
                         const ChargingSectionSpec& section,
                         util::MetersPerSecond velocity, double soc,
                         double soc_required) {
  return std::min(p_line_kw(section, velocity),
                  p_olev_kw(params, soc, soc_required));
}

double soc_required_for_trip(const OlevParams& params, util::Kilometers trip) {
  const double trip_km = trip.value();
  if (trip_km <= 0.0) return 0.0;
  const double energy_kwh =
      trip_km * params.consumption_kwh_per_km / params.eta_olev;
  return std::clamp(energy_kwh / params.battery.capacity_kwh(), 0.0, 1.0);
}

double daily_receivable_kwh(const OlevParams& params, double soc) {
  // Up to 50% of SOC, but never past the policy ceiling.
  const double half_soc = 0.5 * soc;
  const double to_ceiling = std::max(0.0, params.battery.soc_max - soc);
  return std::min(half_soc, to_ceiling) * params.battery.capacity_kwh();
}

}  // namespace olev::wpt
