// A TraCI-style control facade over the traffic simulation.
//
// The paper scripts SUMO through TraCI; downstream users of this library get
// the same ergonomics: a client with per-domain getters (vehicle, edge,
// traffic light, simulation) plus value subscriptions that are refreshed on
// every simulationStep().  Variable codes mirror the TraCI wire constants so
// code written against the real client ports over mechanically.  Transport
// is in-process (no socket): command dispatch goes through the same
// (domain, variable, object-id) triple a TCP client would send.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "traffic/simulation.h"

namespace olev::traci {

/// TraCI command domains (subset relevant to this library).
enum class Domain : std::uint8_t {
  kVehicle = 0xa4,        // CMD_GET_VEHICLE_VARIABLE
  kEdge = 0xaa,           // CMD_GET_EDGE_VARIABLE
  kTrafficLight = 0xa2,   // CMD_GET_TL_VARIABLE
  kSimulation = 0xab,     // CMD_GET_SIM_VARIABLE
  kInductionLoop = 0xa0,  // CMD_GET_INDUCTIONLOOP_VARIABLE
};

/// TraCI variable codes (subset; values match the TraCI spec).
enum class Var : std::uint8_t {
  kIdList = 0x00,                 // ID_LIST
  kSpeed = 0x40,                  // VAR_SPEED
  kRoadId = 0x50,                 // VAR_ROAD_ID
  kLanePosition = 0x56,           // VAR_LANEPOSITION
  kLaneIndex = 0x52,              // VAR_LANE_INDEX
  kDistance = 0x84,               // VAR_DISTANCE (odometer)
  kTime = 0x66,                   // VAR_TIME
  kLastStepVehicleNumber = 0x10,  // LAST_STEP_VEHICLE_NUMBER
  kLastStepMeanSpeed = 0x11,      // LAST_STEP_MEAN_SPEED
  kRedYellowGreenState = 0x20,    // TL_RED_YELLOW_GREEN_STATE
  kDepartedNumber = 0x74,         // VAR_DEPARTED_VEHICLES_NUMBER
  kArrivedNumber = 0x7a,          // VAR_ARRIVED_VEHICLES_NUMBER
};

/// Thrown for unknown object ids or unsupported (domain, variable) pairs --
/// the in-process analogue of a TraCI error response.
class TraciError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Scalar subscription results keyed by variable.
using VarValues = std::map<Var, double>;

class TraciClient {
 public:
  /// Binds to a simulation; the simulation must outlive the client.
  explicit TraciClient(traffic::Simulation& sim);

  // ---- simulation domain ----
  void simulationStep();
  void simulationStepUntil(double time_s);
  double getTime() const;
  std::size_t getActiveVehicleNumber() const;
  std::size_t getDepartedNumber() const;
  std::size_t getArrivedNumber() const;

  /// Vehicles expected to still be handled: active plus insertion backlog
  /// (TraCI's getMinExpectedNumber; the canonical run-to-completion guard).
  std::size_t getMinExpectedNumber() const;

  // ---- vehicle domain ----
  /// Inserts a vehicle on a route given by edge names.  Returns the new
  /// vehicle id, or 0 when the entry edge has no room (TraCI semantics:
  /// depart is delayed -- here the caller retries).
  traffic::VehicleId vehicle_add(const std::vector<std::string>& edge_names,
                                 bool is_olev = false);
  /// Moves the vehicle to `lane` on its current edge; throws TraciError for
  /// unknown vehicles or invalid lanes (TraCI's changeLane).
  void vehicle_changeLane(traffic::VehicleId id, int lane);
  std::vector<traffic::VehicleId> vehicle_getIDList() const;
  double vehicle_getSpeed(traffic::VehicleId id) const;
  std::string vehicle_getRoadID(traffic::VehicleId id) const;
  double vehicle_getLanePosition(traffic::VehicleId id) const;
  int vehicle_getLaneIndex(traffic::VehicleId id) const;
  double vehicle_getDistance(traffic::VehicleId id) const;
  bool vehicle_isOLEV(traffic::VehicleId id) const;

  // ---- edge domain ----
  std::size_t edge_getLastStepVehicleNumber(const std::string& edge_name) const;
  double edge_getLastStepMeanSpeed(const std::string& edge_name) const;
  /// Vehicles on the edge moving slower than 0.1 m/s (queue length proxy).
  std::size_t edge_getLastStepHaltingNumber(const std::string& edge_name) const;

  // ---- traffic light domain ----
  /// "G", "y" or "r" for the signal at the downstream end of `edge_name`.
  std::string trafficlight_getRedYellowGreenState(const std::string& edge_name) const;

  // ---- generic dispatch (the wire-protocol shape) ----
  /// Scalar get through the (domain, variable, object) triple.  Throws
  /// TraciError for unsupported combinations.
  double get_scalar(Domain domain, Var var, const std::string& object_id) const;

  // ---- subscriptions ----
  /// Subscribes `object_id` in `domain` to `vars`; results are refreshed on
  /// every simulationStep() and read with getSubscriptionResults.
  void subscribe(Domain domain, const std::string& object_id,
                 std::vector<Var> vars);
  void unsubscribe(Domain domain, const std::string& object_id);
  const VarValues& getSubscriptionResults(Domain domain,
                                          const std::string& object_id) const;
  /// All current results for a domain.
  std::map<std::string, VarValues> getAllSubscriptionResults(Domain domain) const;

 private:
  struct Subscription {
    Domain domain;
    std::string object_id;
    std::vector<Var> vars;
    VarValues values;
  };

  const traffic::Vehicle& require_vehicle(traffic::VehicleId id) const;
  traffic::EdgeId require_edge(const std::string& name) const;
  void refresh_subscriptions();

  traffic::Simulation& sim_;
  std::vector<Subscription> subscriptions_;
};

}  // namespace olev::traci
