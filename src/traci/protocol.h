// TraCI wire protocol: byte-level message framing compatible with the
// TraCI specification's container format.
//
//   message  := UINT32 total_length (incl. itself) , command*
//   command  := UBYTE length (0 => UINT32 ext_length follows) , UBYTE id ,
//               payload bytes
//   status   := command with payload UBYTE result , STRING description
//   values   := type-tagged: 0x09 INT32, 0x0B DOUBLE, 0x0C STRING
//
// All integers are big-endian (network order) per the spec.  On top of the
// framing, TraciServer executes GET commands against a Simulation through
// the in-process TraciClient, and TraciConnection is the client-side
// convenience that speaks bytes to it -- so user code can be written
// against the same byte stream a real SUMO instance would produce.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "traci/traci.h"

namespace olev::traci {

// Result codes (TraCI spec).
inline constexpr std::uint8_t kStatusOk = 0x00;
inline constexpr std::uint8_t kStatusErr = 0xFF;

// Value type tags (TraCI spec).
inline constexpr std::uint8_t kTypeInt32 = 0x09;
inline constexpr std::uint8_t kTypeDouble = 0x0B;
inline constexpr std::uint8_t kTypeString = 0x0C;

// Command ids used by this implementation.
inline constexpr std::uint8_t kCmdSimStep = 0x02;
inline constexpr std::uint8_t kCmdClose = 0x7F;

struct RawCommand {
  std::uint8_t id = 0;
  std::vector<std::uint8_t> payload;

  bool operator==(const RawCommand&) const = default;
};

/// Frames commands into one length-prefixed TraCI message.
std::vector<std::uint8_t> frame_message(std::span<const RawCommand> commands);

/// Parses a framed message; throws std::runtime_error on malformed input
/// (bad lengths, truncation, trailing bytes).
std::vector<RawCommand> parse_message(std::span<const std::uint8_t> bytes);

// ---- payload writers/readers (big-endian) ----
class PayloadWriter {
 public:
  void u8(std::uint8_t v);
  void i32(std::int32_t v);
  void f64(double v);
  void string(const std::string& s);  ///< UINT32 length + bytes
  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

class PayloadReader {
 public:
  explicit PayloadReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}
  std::uint8_t u8();
  std::int32_t i32();
  double f64();
  std::string string();
  bool exhausted() const { return offset_ == bytes_.size(); }

 private:
  std::span<const std::uint8_t> take(std::size_t n);
  std::span<const std::uint8_t> bytes_;
  std::size_t offset_ = 0;
};

/// A decoded status response.
struct Status {
  std::uint8_t command = 0;
  std::uint8_t result = kStatusOk;
  std::string description;
};

RawCommand encode_status(const Status& status);
Status decode_status(const RawCommand& command);

/// Executes framed request messages against a TraciClient.
///
/// Supported commands: kCmdSimStep (no payload), kCmdClose, and every GET
/// domain of the in-process client (command id == domain id, payload =
/// UBYTE variable + STRING object id; response command id = domain | 0x10
/// with payload UBYTE variable + STRING object id + typed value).
class TraciServer {
 public:
  explicit TraciServer(TraciClient& client) : client_(client) {}

  /// Full request/response cycle on byte buffers.
  std::vector<std::uint8_t> handle_message(std::span<const std::uint8_t> request);

  bool closed() const { return closed_; }

 private:
  TraciClient& client_;
  bool closed_ = false;
};

/// Client-side loopback connection: composes byte messages, sends them to a
/// TraciServer, decodes the typed results.
class TraciConnection {
 public:
  explicit TraciConnection(TraciServer& server) : server_(server) {}

  /// Advances the simulation one step; throws on error status.
  void simulationStep();
  /// Scalar get through the wire.  Throws std::runtime_error if the server
  /// reports an error status (e.g. unknown object).
  double get_double(Domain domain, Var var, const std::string& object_id);
  /// Closes the connection (server marks itself closed).
  void close();

  /// Bytes exchanged so far (both directions), for instrumentation.
  std::size_t bytes_sent() const { return bytes_sent_; }
  std::size_t bytes_received() const { return bytes_received_; }

 private:
  std::vector<std::uint8_t> roundtrip(const RawCommand& command);

  TraciServer& server_;
  std::size_t bytes_sent_ = 0;
  std::size_t bytes_received_ = 0;
};

}  // namespace olev::traci
