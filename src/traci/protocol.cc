#include "traci/protocol.h"

#include <cstring>
#include <stdexcept>

namespace olev::traci {
namespace {

void put_u32(std::vector<std::uint8_t>& bytes, std::uint32_t v) {
  bytes.push_back(static_cast<std::uint8_t>(v >> 24));
  bytes.push_back(static_cast<std::uint8_t>(v >> 16));
  bytes.push_back(static_cast<std::uint8_t>(v >> 8));
  bytes.push_back(static_cast<std::uint8_t>(v));
}

std::uint32_t get_u32(std::span<const std::uint8_t> bytes, std::size_t offset) {
  if (bytes.size() < offset + 4) throw std::runtime_error("traci: truncated u32");
  return (static_cast<std::uint32_t>(bytes[offset]) << 24) |
         (static_cast<std::uint32_t>(bytes[offset + 1]) << 16) |
         (static_cast<std::uint32_t>(bytes[offset + 2]) << 8) |
         static_cast<std::uint32_t>(bytes[offset + 3]);
}

}  // namespace

std::vector<std::uint8_t> frame_message(std::span<const RawCommand> commands) {
  std::vector<std::uint8_t> body;
  for (const RawCommand& command : commands) {
    // length byte counts: itself + id + payload; extended form when > 255.
    const std::size_t short_length = 2 + command.payload.size();
    if (short_length <= 0xFF) {
      body.push_back(static_cast<std::uint8_t>(short_length));
    } else {
      body.push_back(0);
      put_u32(body, static_cast<std::uint32_t>(6 + command.payload.size()));
    }
    body.push_back(command.id);
    body.insert(body.end(), command.payload.begin(), command.payload.end());
  }
  std::vector<std::uint8_t> message;
  put_u32(message, static_cast<std::uint32_t>(4 + body.size()));
  message.insert(message.end(), body.begin(), body.end());
  return message;
}

std::vector<RawCommand> parse_message(std::span<const std::uint8_t> bytes) {
  const std::uint32_t total = get_u32(bytes, 0);
  if (total != bytes.size()) {
    throw std::runtime_error("traci: message length mismatch");
  }
  std::vector<RawCommand> commands;
  std::size_t offset = 4;
  while (offset < bytes.size()) {
    std::size_t length = bytes[offset];
    std::size_t header = 1;
    if (length == 0) {
      length = get_u32(bytes, offset + 1);
      header = 5;
    }
    if (length < header + 1 || offset + length > bytes.size()) {
      throw std::runtime_error("traci: bad command length");
    }
    RawCommand command;
    command.id = bytes[offset + header];
    command.payload.assign(bytes.begin() + static_cast<std::ptrdiff_t>(offset + header + 1),
                           bytes.begin() + static_cast<std::ptrdiff_t>(offset + length));
    commands.push_back(std::move(command));
    offset += length;
  }
  return commands;
}

void PayloadWriter::u8(std::uint8_t v) { bytes_.push_back(v); }

void PayloadWriter::i32(std::int32_t v) {
  put_u32(bytes_, static_cast<std::uint32_t>(v));
}

void PayloadWriter::f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  for (int shift = 56; shift >= 0; shift -= 8) {
    bytes_.push_back(static_cast<std::uint8_t>(bits >> shift));
  }
}

void PayloadWriter::string(const std::string& s) {
  put_u32(bytes_, static_cast<std::uint32_t>(s.size()));
  bytes_.insert(bytes_.end(), s.begin(), s.end());
}

std::span<const std::uint8_t> PayloadReader::take(std::size_t n) {
  if (bytes_.size() - offset_ < n) throw std::runtime_error("traci: truncated payload");
  const auto view = bytes_.subspan(offset_, n);
  offset_ += n;
  return view;
}

std::uint8_t PayloadReader::u8() { return take(1)[0]; }

std::int32_t PayloadReader::i32() {
  const auto b = take(4);
  return static_cast<std::int32_t>((static_cast<std::uint32_t>(b[0]) << 24) |
                                   (static_cast<std::uint32_t>(b[1]) << 16) |
                                   (static_cast<std::uint32_t>(b[2]) << 8) |
                                   static_cast<std::uint32_t>(b[3]));
}

double PayloadReader::f64() {
  const auto b = take(8);
  std::uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) bits = (bits << 8) | b[static_cast<std::size_t>(i)];
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string PayloadReader::string() {
  const auto b4 = take(4);
  const std::uint32_t length = (static_cast<std::uint32_t>(b4[0]) << 24) |
                               (static_cast<std::uint32_t>(b4[1]) << 16) |
                               (static_cast<std::uint32_t>(b4[2]) << 8) |
                               static_cast<std::uint32_t>(b4[3]);
  if (length > 1'000'000) throw std::runtime_error("traci: string too long");
  const auto view = take(length);
  return std::string(view.begin(), view.end());
}

RawCommand encode_status(const Status& status) {
  PayloadWriter writer;
  writer.u8(status.result);
  writer.string(status.description);
  RawCommand command;
  command.id = status.command;
  command.payload = writer.take();
  return command;
}

Status decode_status(const RawCommand& command) {
  PayloadReader reader(command.payload);
  Status status;
  status.command = command.id;
  status.result = reader.u8();
  status.description = reader.string();
  return status;
}

std::vector<std::uint8_t> TraciServer::handle_message(
    std::span<const std::uint8_t> request) {
  std::vector<RawCommand> responses;
  for (const RawCommand& command : parse_message(request)) {
    try {
      if (command.id == kCmdSimStep) {
        client_.simulationStep();
        responses.push_back(encode_status({command.id, kStatusOk, ""}));
      } else if (command.id == kCmdClose) {
        closed_ = true;
        responses.push_back(encode_status({command.id, kStatusOk, ""}));
      } else {
        // GET command: domain = command id; payload = var + object id.
        PayloadReader reader(command.payload);
        const auto var = static_cast<Var>(reader.u8());
        const std::string object_id = reader.string();
        const double value =
            client_.get_scalar(static_cast<Domain>(command.id), var, object_id);
        responses.push_back(encode_status({command.id, kStatusOk, ""}));
        PayloadWriter writer;
        writer.u8(static_cast<std::uint8_t>(var));
        writer.string(object_id);
        writer.u8(kTypeDouble);
        writer.f64(value);
        RawCommand result;
        result.id = static_cast<std::uint8_t>(command.id | 0x10);
        result.payload = writer.take();
        responses.push_back(std::move(result));
      }
    } catch (const std::exception& error) {
      responses.push_back(encode_status({command.id, kStatusErr, error.what()}));
    }
  }
  return frame_message(responses);
}

std::vector<std::uint8_t> TraciConnection::roundtrip(const RawCommand& command) {
  const auto request = frame_message(std::span<const RawCommand>(&command, 1));
  bytes_sent_ += request.size();
  auto response = server_.handle_message(request);
  bytes_received_ += response.size();
  return response;
}

void TraciConnection::simulationStep() {
  const auto response = roundtrip({kCmdSimStep, {}});
  const auto commands = parse_message(response);
  const Status status = decode_status(commands.at(0));
  if (status.result != kStatusOk) {
    throw std::runtime_error("traci: simulationStep failed: " + status.description);
  }
}

double TraciConnection::get_double(Domain domain, Var var,
                                   const std::string& object_id) {
  PayloadWriter writer;
  writer.u8(static_cast<std::uint8_t>(var));
  writer.string(object_id);
  RawCommand command;
  command.id = static_cast<std::uint8_t>(domain);
  command.payload = writer.take();

  const auto response = roundtrip(command);
  const auto commands = parse_message(response);
  const Status status = decode_status(commands.at(0));
  if (status.result != kStatusOk) {
    throw std::runtime_error("traci: get failed: " + status.description);
  }
  if (commands.size() < 2) throw std::runtime_error("traci: missing result");
  PayloadReader reader(commands[1].payload);
  (void)reader.u8();      // variable echo
  (void)reader.string();  // object id echo
  const std::uint8_t type = reader.u8();
  if (type != kTypeDouble) throw std::runtime_error("traci: unexpected type");
  return reader.f64();
}

void TraciConnection::close() {
  const auto response = roundtrip({kCmdClose, {}});
  (void)parse_message(response);
}

}  // namespace olev::traci
