#include "traci/traci.h"

#include <algorithm>

#include "obs/obs.h"

namespace olev::traci {

TraciClient::TraciClient(traffic::Simulation& sim) : sim_(sim) {}

void TraciClient::simulationStep() {
  OLEV_OBS_COUNTER(obs_steps, "traci.client.simulation_steps");
  OLEV_OBS_ADD(obs_steps, 1);
  sim_.step();
  refresh_subscriptions();
}

void TraciClient::simulationStepUntil(double time_s) {
  while (sim_.time_s() < time_s) simulationStep();
}

double TraciClient::getTime() const { return sim_.time_s(); }

std::size_t TraciClient::getActiveVehicleNumber() const {
  return sim_.active_count();
}

std::size_t TraciClient::getDepartedNumber() const {
  return sim_.stats().departed;
}

std::size_t TraciClient::getArrivedNumber() const { return sim_.stats().arrived; }

std::size_t TraciClient::getMinExpectedNumber() const {
  return sim_.active_count() + sim_.stats().backlog;
}

traffic::VehicleId TraciClient::vehicle_add(
    const std::vector<std::string>& edge_names, bool is_olev) {
  traffic::Route route;
  route.reserve(edge_names.size());
  for (const std::string& name : edge_names) route.push_back(require_edge(name));
  if (!sim_.network().validate_route(route)) {
    throw TraciError("TraCI: vehicle.add route is not connected");
  }
  traffic::Vehicle vehicle;
  vehicle.type = is_olev ? traffic::VehicleType::olev()
                         : traffic::VehicleType::passenger();
  vehicle.route = std::move(route);
  vehicle.is_olev = is_olev;
  vehicle.depart_time_s = sim_.time_s();
  if (!sim_.try_insert(std::move(vehicle))) return 0;
  // The freshly inserted vehicle carries the highest id.
  traffic::VehicleId newest = 0;
  for (const auto& active : sim_.vehicles()) newest = std::max(newest, active.id);
  return newest;
}

const traffic::Vehicle& TraciClient::require_vehicle(traffic::VehicleId id) const {
  const traffic::Vehicle* vehicle = sim_.find_vehicle(id);
  if (vehicle == nullptr) {
    throw TraciError("TraCI: unknown vehicle id " + std::to_string(id));
  }
  return *vehicle;
}

traffic::EdgeId TraciClient::require_edge(const std::string& name) const {
  const auto id = sim_.network().find_edge(name);
  if (!id) throw TraciError("TraCI: unknown edge '" + name + "'");
  return *id;
}

void TraciClient::vehicle_changeLane(traffic::VehicleId id, int lane) {
  require_vehicle(id);  // distinguish unknown-vehicle from bad-lane errors
  if (!sim_.set_vehicle_lane(id, lane)) {
    throw TraciError("TraCI: changeLane to invalid lane " + std::to_string(lane));
  }
}

std::vector<traffic::VehicleId> TraciClient::vehicle_getIDList() const {
  std::vector<traffic::VehicleId> ids;
  ids.reserve(sim_.active_count());
  for (const auto& vehicle : sim_.vehicles()) ids.push_back(vehicle.id);
  return ids;
}

double TraciClient::vehicle_getSpeed(traffic::VehicleId id) const {
  return require_vehicle(id).speed_mps;
}

std::string TraciClient::vehicle_getRoadID(traffic::VehicleId id) const {
  return sim_.network().edge(require_vehicle(id).current_edge()).name;
}

double TraciClient::vehicle_getLanePosition(traffic::VehicleId id) const {
  return require_vehicle(id).pos_m;
}

int TraciClient::vehicle_getLaneIndex(traffic::VehicleId id) const {
  return require_vehicle(id).lane;
}

double TraciClient::vehicle_getDistance(traffic::VehicleId id) const {
  return require_vehicle(id).odometer_m;
}

bool TraciClient::vehicle_isOLEV(traffic::VehicleId id) const {
  return require_vehicle(id).is_olev;
}

std::size_t TraciClient::edge_getLastStepVehicleNumber(
    const std::string& edge_name) const {
  const traffic::EdgeId edge = require_edge(edge_name);
  std::size_t count = 0;
  for (const auto& vehicle : sim_.vehicles()) {
    if (vehicle.current_edge() == edge) ++count;
  }
  return count;
}

double TraciClient::edge_getLastStepMeanSpeed(const std::string& edge_name) const {
  const traffic::EdgeId edge = require_edge(edge_name);
  double sum = 0.0;
  std::size_t count = 0;
  for (const auto& vehicle : sim_.vehicles()) {
    if (vehicle.current_edge() == edge) {
      sum += vehicle.speed_mps;
      ++count;
    }
  }
  // TraCI convention: empty edge reports the speed limit.
  if (count == 0) return sim_.network().edge(edge).speed_limit_mps;
  return sum / static_cast<double>(count);
}

std::size_t TraciClient::edge_getLastStepHaltingNumber(
    const std::string& edge_name) const {
  const traffic::EdgeId edge = require_edge(edge_name);
  std::size_t halting = 0;
  for (const auto& vehicle : sim_.vehicles()) {
    if (vehicle.current_edge() == edge && vehicle.speed_mps < 0.1) ++halting;
  }
  return halting;
}

std::string TraciClient::trafficlight_getRedYellowGreenState(
    const std::string& edge_name) const {
  const traffic::EdgeId edge = require_edge(edge_name);
  const traffic::SignalProgram* signal = sim_.network().signal_for_edge(edge);
  if (signal == nullptr) {
    throw TraciError("TraCI: edge '" + edge_name + "' has no traffic light");
  }
  switch (signal->state_at(sim_.time_s())) {
    case traffic::LightState::kGreen: return "G";
    case traffic::LightState::kYellow: return "y";
    case traffic::LightState::kRed: return "r";
  }
  return "r";
}

double TraciClient::get_scalar(Domain domain, Var var,
                               const std::string& object_id) const {
  switch (domain) {
    case Domain::kSimulation:
      switch (var) {
        case Var::kTime: return getTime();
        case Var::kDepartedNumber: return static_cast<double>(getDepartedNumber());
        case Var::kArrivedNumber: return static_cast<double>(getArrivedNumber());
        default: break;
      }
      break;
    case Domain::kVehicle: {
      const auto id = static_cast<traffic::VehicleId>(std::stoull(object_id));
      switch (var) {
        case Var::kSpeed: return vehicle_getSpeed(id);
        case Var::kLanePosition: return vehicle_getLanePosition(id);
        case Var::kLaneIndex: return vehicle_getLaneIndex(id);
        case Var::kDistance: return vehicle_getDistance(id);
        default: break;
      }
      break;
    }
    case Domain::kEdge:
      switch (var) {
        case Var::kLastStepVehicleNumber:
          return static_cast<double>(edge_getLastStepVehicleNumber(object_id));
        case Var::kLastStepMeanSpeed:
          return edge_getLastStepMeanSpeed(object_id);
        default: break;
      }
      break;
    default:
      break;
  }
  throw TraciError("TraCI: unsupported (domain, variable) combination");
}

void TraciClient::subscribe(Domain domain, const std::string& object_id,
                            std::vector<Var> vars) {
  unsubscribe(domain, object_id);
  Subscription sub{domain, object_id, std::move(vars), {}};
  // Populate immediately so results are readable before the next step.
  for (Var var : sub.vars) {
    try {
      sub.values[var] = get_scalar(domain, var, object_id);
    } catch (const TraciError&) {
      // Object may not exist yet (e.g. vehicle not departed); retried on step.
    }
  }
  subscriptions_.push_back(std::move(sub));
}

void TraciClient::unsubscribe(Domain domain, const std::string& object_id) {
  std::erase_if(subscriptions_, [&](const Subscription& sub) {
    return sub.domain == domain && sub.object_id == object_id;
  });
}

void TraciClient::refresh_subscriptions() {
  for (Subscription& sub : subscriptions_) {
    for (Var var : sub.vars) {
      try {
        sub.values[var] = get_scalar(sub.domain, var, sub.object_id);
      } catch (const TraciError&) {
        sub.values.erase(var);  // object vanished (vehicle arrived)
      }
    }
  }
}

const VarValues& TraciClient::getSubscriptionResults(
    Domain domain, const std::string& object_id) const {
  for (const Subscription& sub : subscriptions_) {
    if (sub.domain == domain && sub.object_id == object_id) return sub.values;
  }
  throw TraciError("TraCI: no subscription for object '" + object_id + "'");
}

std::map<std::string, VarValues> TraciClient::getAllSubscriptionResults(
    Domain domain) const {
  std::map<std::string, VarValues> results;
  for (const Subscription& sub : subscriptions_) {
    if (sub.domain == domain) results[sub.object_id] = sub.values;
  }
  return results;
}

}  // namespace olev::traci
