// Flatlands-Avenue day study (the paper's Section III motivation).
//
// Builds an arterial corridor driven by NYC-shaped hourly traffic counts,
// installs 200 m of charging sections before a traffic light, and steps a
// full day through the TraCI-style client while a ChargingLane delivers
// energy and detectors measure intersection time.  Prints an hourly report
// plus a what-if for OLEV participation levels (the paper: "the power
// demand would not be fixed ... based on OLEV participation and OLEV
// willingness").
//
//   $ ./flatlands_day [participation]     # participation in [0,1], default 1

#include <cstdlib>
#include <iostream>

#include "traci/traci.h"
#include "traffic/simulation.h"
#include "util/csv.h"
#include "util/units.h"
#include "wpt/charging_lane.h"

namespace {

using namespace olev;

struct DayOutcome {
  std::array<double, 24> energy_kwh{};
  double total_energy_kwh = 0.0;
  double intersection_h = 0.0;
  std::size_t vehicles = 0;
  std::size_t charged_vehicles = 0;
};

DayOutcome run_day(double participation) {
  const auto program = traffic::SignalProgram::fixed_cycle(35.0, 4.0, 41.0);
  traffic::Network net =
      traffic::Network::arterial(3, 300.0, util::to_mps(util::mph(30.0)).value(), program, 2);
  traffic::SimulationConfig sim_config;
  sim_config.seed = 20130131;  // the paper's NYCDOT trace date
  traffic::Simulation sim(std::move(net), sim_config);

  traffic::DemandConfig demand;
  demand.counts = traffic::scale_to_daily_total(
      traffic::nyc_arterial_hourly_counts(), 16000.0);
  demand.olev_participation = participation;
  sim.add_source(
      traffic::FlowSource({0, 1, 2}, demand, traffic::VehicleType::olev()));

  wpt::ChargingSectionSpec spec;
  spec.length_m = 20.0;
  spec.rated_power_kw = 100.0;
  wpt::ChargingLaneConfig lane_config;
  lane_config.initial_soc = 0.5;
  wpt::ChargingLane lane(
      wpt::ChargingLane::evenly_spaced(0, olev::util::meters(100.0), olev::util::meters(300.0), 10, spec), lane_config);
  traffic::SegmentDetector detector(0, 100.0, 300.0, /*olev_only=*/true);
  sim.add_observer(&lane);
  sim.add_observer(&detector);

  // Drive the simulation through the TraCI facade, exactly how the paper
  // scripts SUMO.
  traci::TraciClient client(sim);
  client.simulationStepUntil(24.0 * 3600.0);

  DayOutcome outcome;
  outcome.energy_kwh = lane.ledger().hourly_totals_kwh();
  outcome.total_energy_kwh = lane.ledger().total_kwh();
  outcome.intersection_h = detector.total_occupancy_s() / 3600.0;
  outcome.vehicles = client.getDepartedNumber();
  outcome.charged_vehicles = lane.tracked_vehicles();
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  double participation = 1.0;
  if (argc > 1) participation = std::atof(argv[1]);
  if (participation < 0.0 || participation > 1.0) {
    std::cerr << "participation must be in [0, 1]\n";
    return 1;
  }

  std::cout << "Simulating a Flatlands-Avenue day at participation "
            << participation << "...\n\n";
  const DayOutcome day = run_day(participation);

  util::Table table({"hour", "energy_kWh"});
  for (int hour = 0; hour < 24; ++hour) {
    table.add_row_numeric({static_cast<double>(hour), day.energy_kwh[hour]}, 1);
  }
  table.write_pretty(std::cout);

  std::cout << "\nvehicles simulated    : " << day.vehicles << "\n";
  std::cout << "OLEVs that charged    : " << day.charged_vehicles << "\n";
  std::cout << "intersection time     : " << util::fmt(day.intersection_h, 1)
            << " vehicle-hours\n";
  std::cout << "energy delivered      : " << util::fmt(day.total_energy_kwh, 1)
            << " kWh over the day\n";

  if (participation >= 1.0) {
    std::cout << "\nWhat-if: participation sweep (energy drawn from one "
                 "intersection)\n";
    util::Table sweep({"participation", "energy_kWh"});
    for (double level : {0.25, 0.5, 0.75}) {
      sweep.add_row_numeric({level, run_day(level).total_energy_kwh}, 1);
    }
    sweep.add_row_numeric({1.0, day.total_energy_kwh}, 1);
    sweep.write_pretty(std::cout);
  }
  return 0;
}
