// Charging-section deployment planning (the paper's future work:
// "optimal deployment of charging sections ... placing charging sections at
// traffic lights ... and well-traveled road sections", plus the effect of
// placement on OLEV path planning).
//
// Pipeline:
//   1. pilot: simulate one rush hour on a corridor, score every candidate
//      20 m slot by measured vehicle occupancy;
//   2. plan: greedy top-K deployment vs. a uniform-spacing baseline;
//   3. evaluate: re-simulate the same demand with each deployment and
//      compare delivered energy;
//   4. route: show that charging coverage diverts an OLEV's planned route
//      in a 3x3 grid city;
//   5. size: sweep the pricing-game equilibrium over candidate section
//      budgets in parallel (run_sweep) to see where welfare saturates.
//
//   $ ./deployment_planning

#include <algorithm>
#include <iostream>

#include "core/sweep.h"
#include "traffic/routing.h"
#include "traffic/simulation.h"
#include "util/csv.h"
#include "util/units.h"
#include "wpt/charging_lane.h"
#include "wpt/deployment.h"

namespace {

using namespace olev;

traffic::Simulation make_corridor(std::uint64_t seed) {
  const auto program = traffic::SignalProgram::fixed_cycle(35.0, 4.0, 41.0);
  traffic::Network net =
      traffic::Network::arterial(3, 300.0, util::to_mps(util::mph(30.0)).value(), program, 2);
  traffic::SimulationConfig config;
  config.seed = seed;
  traffic::Simulation sim(std::move(net), config);
  traffic::DemandConfig demand;
  demand.counts.fill(1200.0);  // steady rush hour
  sim.add_source(
      traffic::FlowSource({0, 1, 2}, demand, traffic::VehicleType::olev()));
  return sim;
}

double evaluate_deployment(const std::vector<wpt::ChargingSection>& sections,
                           std::uint64_t seed) {
  traffic::Simulation sim = make_corridor(seed);
  wpt::ChargingLane lane(sections, wpt::ChargingLaneConfig{});
  sim.add_observer(&lane);
  sim.run_until(3600.0);
  return lane.ledger().total_kwh();
}

}  // namespace

int main() {
  // ---- 1. pilot scoring ----
  std::cout << "Pilot: scoring candidate slots over one rush hour...\n";
  traffic::Simulation pilot = make_corridor(101);
  auto slots = wpt::enumerate_slots(pilot.network(), olev::util::meters(20.0));
  wpt::score_slots_by_occupancy(pilot, slots, olev::util::seconds(3600.0), /*olev_only=*/true);

  std::vector<wpt::CandidateSlot> ranked(slots.begin(), slots.end());
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const auto& a, const auto& b) { return a.score > b.score; });
  std::cout << "top slots (edge, offset, occupancy-s): ";
  for (std::size_t i = 0; i < 5 && i < ranked.size(); ++i) {
    std::cout << "(" << ranked[i].edge << ", " << ranked[i].offset_m << ", "
              << util::fmt(ranked[i].score, 0) << ") ";
  }
  std::cout << "\n  -> queues before the staggered red lights, exactly the\n"
               "     paper's 'place sections at traffic lights' intuition.\n\n";

  // ---- 2 + 3. plan and evaluate ----
  wpt::ChargingSectionSpec spec;
  spec.length_m = 20.0;
  const int budget = 10;  // 200 m of sections, the paper's coverage
  const auto greedy = wpt::plan_deployment(slots, budget, spec);
  const auto uniform = wpt::uniform_deployment(slots, budget, spec);

  util::Table table({"deployment", "energy_kWh_per_rush_hour"});
  table.add_row({"greedy (occupancy-ranked)",
                 util::fmt(evaluate_deployment(greedy, 202), 1)});
  table.add_row({"uniform spacing",
                 util::fmt(evaluate_deployment(uniform, 202), 1)});
  table.write_pretty(std::cout);

  // ---- 4. charging-aware routing ----
  std::cout << "\nCharging-aware path planning in a 3x3 grid city:\n";
  const auto program = traffic::SignalProgram::fixed_cycle(30.0, 4.0, 26.0);
  traffic::Network city = traffic::grid_city(3, 3, 200.0, 12.0, program);
  // Equip the mid-grid street that the unadjusted fastest route skips.
  std::vector<wpt::ChargingSection> city_sections(1);
  city_sections[0].edge = *city.find_edge("e1_1_1_2");
  city_sections[0].spec = spec;
  city_sections[0].spec.length_m = 150.0;

  const auto start = *city.find_edge("e0_0_0_1");
  const auto goal = *city.find_edge("e1_2_2_2");
  const auto plain = traffic::shortest_route(city, start, goal);
  const auto bonus = wpt::charging_route_bonus(city, city_sections, olev::util::SecondsPerMeter(0.2));
  const auto lured = traffic::shortest_route(city, start, goal, bonus);

  auto print_route = [&city](const char* label, const traffic::RouteResult& r) {
    std::cout << "  " << label << " (" << util::fmt(r.travel_time_s, 1)
              << " s expected):";
    for (auto edge : r.route) std::cout << " " << city.edge(edge).name;
    std::cout << "\n";
  };
  print_route("fastest route       ", plain);
  print_route("charging-aware route", lured);
  const bool diverted =
      std::find(lured.route.begin(), lured.route.end(),
                city_sections[0].edge) != lured.route.end();
  std::cout << "  -> the charging-aware route "
            << (diverted ? "detours over" : "ignores")
            << " the equipped street e1_1_1_2.\n";

  // ---- 5. budget sizing via the pricing game ----
  // How many sections are worth deploying?  Each candidate budget is an
  // independent equilibrium computation (30 OLEVs sharing C sections);
  // run_sweep solves all of them in parallel.
  std::cout << "\nBudget sizing: welfare at the pricing-game equilibrium per\n"
               "candidate section count (30 OLEVs, demand held fixed):\n";
  constexpr std::size_t kBudgets[] = {5, 10, 15, 20, 30};
  std::vector<core::ScenarioSpec> specs;
  for (std::size_t sections : kBudgets) {
    core::ScenarioSpec spec;
    core::ScenarioConfig& config = spec.config;
    config.num_olevs = 30;
    config.num_sections = sections;
    config.beta_lbmp = olev::util::Price::per_mwh(16.0);
    config.target_degree = 0.9;
    // Fix per-OLEV preferences across budgets so only capacity varies.
    config.calibration_players = 30;
    config.calibration_sections = 10;
    config.seed = 0xd31;
    specs.push_back(std::move(spec));
  }
  const auto sweep = core::run_sweep(specs);

  util::Table budget_table({"sections", "welfare", "unit_payment_$per_MWh",
                            "mean_degree"});
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    budget_table.add_row_numeric(
        {static_cast<double>(kBudgets[i]), sweep[i].result.welfare,
         sweep[i].unit_payment_per_mwh, sweep[i].result.congestion.mean},
        2);
  }
  budget_table.write_pretty(std::cout);
  std::cout << "welfare climbs while capacity binds and flattens once it\n"
               "stops -- the knee is the budget worth deploying.\n";
  return 0;
}
