// A fleet's full day under the pricing policy: one game per hour with SOC
// carried between periods, beta following the grid's LBMP, and road
// presence following the NYC traffic shape.
//
//   $ ./fleet_day [config.ini]
//
// Optional INI config:
//   [fleet]
//   size = 40
//   sections = 15
//   velocity_mph = 60
//   period_minutes = 60
//   seed = 3495

#include <iostream>

#include "core/fleet_day.h"
#include "obs/report.h"
#include "util/config.h"
#include "util/csv.h"

int main(int argc, char** argv) {
  using namespace olev;

  // OLEV_TRACE / OLEV_METRICS env vars export a Perfetto trace / metrics
  // snapshot of the 24 hourly solves (docs/OBSERVABILITY.md).
  obs::EnvSession obs_session;

  core::FleetDayConfig config;
  config.fleet_size = 40;
  config.num_sections = 15;
  config.seed = 0xda7;
  if (argc > 1) {
    const util::Config file = util::Config::load(argv[1]);
    config.fleet_size =
        static_cast<std::size_t>(file.get_int("fleet", "size", 40));
    config.num_sections =
        static_cast<std::size_t>(file.get_int("fleet", "sections", 15));
    config.velocity = olev::util::mph(file.get_double("fleet", "velocity_mph", 60.0));
    config.period_minutes = file.get_double("fleet", "period_minutes", 60.0);
    config.seed =
        static_cast<std::uint64_t>(file.get_int("fleet", "seed", 0xda7));
  }

  const grid::NyisoDay day = grid::NyisoDay::generate();
  std::cout << "Running 24 hourly games for a fleet of " << config.fleet_size
            << " OLEVs over " << config.num_sections
            << " charging sections...\n\n";
  const core::FleetDayResult result = core::run_fleet_day(config, day);

  util::Table table({"hour", "LBMP", "active", "energy_kWh", "paid_$",
                     "mean_congestion"});
  for (const core::PeriodRecord& record : result.periods) {
    table.add_row_numeric(
        {record.hour, record.beta_lbmp,
         static_cast<double>(record.active_olevs), record.energy_kwh,
         record.payments, record.mean_congestion},
        2);
  }
  table.write_pretty(std::cout);

  std::cout << "\nday totals: " << util::fmt(result.total_energy_kwh, 1)
            << " kWh delivered, $" << util::fmt(result.total_payments, 2)
            << " collected, mean final SOC "
            << util::fmt(result.mean_final_soc, 3) << "\n";

  // Distribution of outcomes across the fleet.
  double min_soc = 1.0;
  double max_soc = 0.0;
  double max_cycles = 0.0;
  for (const core::FleetOlev& olev : result.fleet) {
    min_soc = std::min(min_soc, olev.battery.soc());
    max_soc = std::max(max_soc, olev.battery.soc());
    max_cycles = std::max(max_cycles, olev.battery.equivalent_full_cycles());
  }
  std::cout << "fleet SOC spread at midnight: [" << util::fmt(min_soc, 3)
            << ", " << util::fmt(max_soc, 3) << "]\n";
  std::cout << "worst battery wear: " << util::fmt(max_cycles, 2)
            << " equivalent full cycles\n";
  std::cout << "\nNote how evening games (high LBMP) collect more dollars per\n"
               "kWh while the SOC-aware weights keep depleted vehicles served.\n";
  return 0;
}
