// Closed-loop corridor: the pricing game driving the charging hardware in
// real time.
//
// Two identical rush hours on a signalized corridor:
//   A. opportunistic -- every section serves whoever sits on it, up to the
//      eta * rated hardware budget (Section III behaviour);
//   B. game-scheduled -- a ClosedLoopController replans the pricing game
//      every 5 minutes from the live OLEV census and imposes the socially
//      optimal per-section budgets on the lane (Section IV behaviour).
//
//   $ ./closed_loop_corridor

#include <iostream>

#include "core/closed_loop.h"
#include "traffic/simulation.h"
#include "util/csv.h"
#include "util/stats.h"
#include "util/units.h"
#include "wpt/charging_lane.h"

namespace {

using namespace olev;

struct Outcome {
  double energy_kwh = 0.0;
  double jain = 1.0;
  std::size_t replans = 0;
  double mean_welfare = 0.0;
};

Outcome run(bool scheduled) {
  const auto program = traffic::SignalProgram::fixed_cycle(35.0, 4.0, 31.0);
  traffic::Network net =
      traffic::Network::arterial(2, 300.0, util::to_mps(util::mph(30.0)).value(), program, 2);
  traffic::SimulationConfig sim_config;
  sim_config.seed = 17;
  traffic::Simulation sim(std::move(net), sim_config);
  traffic::DemandConfig demand;
  demand.counts.fill(1400.0);
  sim.add_source(
      traffic::FlowSource({0, 1}, demand, traffic::VehicleType::olev()));

  wpt::ChargingSectionSpec spec;
  spec.length_m = 20.0;
  wpt::ChargingLane lane(
      wpt::ChargingLane::evenly_spaced(0, olev::util::meters(100.0), olev::util::meters(300.0), 10, spec),
      wpt::ChargingLaneConfig{});
  sim.add_observer(&lane);

  const grid::NyisoDay day = grid::NyisoDay::generate();
  core::ClosedLoopController controller(lane, day);
  if (scheduled) sim.add_observer(&controller);

  sim.run_until(3600.0);

  Outcome outcome;
  outcome.energy_kwh = lane.ledger().total_kwh();
  std::vector<double> per_section(lane.sections().size());
  for (std::size_t c = 0; c < per_section.size(); ++c) {
    per_section[c] = lane.ledger().section_total_kwh(c);
  }
  outcome.jain = util::jain_fairness(per_section);
  outcome.replans = controller.replan_count();
  double welfare = 0.0;
  std::size_t populated = 0;
  for (const auto& record : controller.replans()) {
    if (record.players > 0) {
      welfare += record.welfare;
      ++populated;
    }
  }
  outcome.mean_welfare =
      populated > 0 ? welfare / static_cast<double>(populated) : 0.0;
  return outcome;
}

}  // namespace

int main() {
  std::cout << "Rush hour on a 600 m corridor, 200 m of charging sections.\n\n";
  const Outcome opportunistic = run(false);
  const Outcome scheduled = run(true);

  util::Table table({"mode", "energy_kWh", "section_Jain", "replans",
                     "mean_welfare"});
  table.add_row({"opportunistic (hardware caps)",
                 util::fmt(opportunistic.energy_kwh, 1),
                 util::fmt(opportunistic.jain, 4), "0", "-"});
  table.add_row({"game-scheduled (5 min replans)",
                 util::fmt(scheduled.energy_kwh, 1),
                 util::fmt(scheduled.jain, 4),
                 util::fmt(static_cast<double>(scheduled.replans), 0),
                 util::fmt(scheduled.mean_welfare, 2)});
  table.write_pretty(std::cout);

  std::cout << "\nThe game-scheduled lane prices congestion instead of just\n"
               "capping it: depleted vehicles bid harder, budgets follow the\n"
               "socially optimal allocation each period, and delivery stays\n"
               "inside the eta safety region by construction.\n";
  return 0;
}
