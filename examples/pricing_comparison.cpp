// Nonlinear vs. linear pricing across a full grid day.
//
// For every other hour of a synthetic NYISO day, beta is set to that hour's
// LBMP and the power-scheduling game is solved under both pricing policies.
// The report shows how the nonlinear policy adapts: cheaper-than-LBMP
// off-peak (encouraging charging), premium pricing at the evening peak
// (disincentivizing congestion), with balanced section loads throughout --
// while linear pricing tracks LBMP exactly and leaves sections unbalanced.
//
//   $ ./pricing_comparison

#include <iostream>

#include "core/scenario.h"
#include "grid/nyiso_day.h"
#include "obs/report.h"
#include "util/csv.h"

namespace {

using namespace olev;

core::GameResult solve_hour(double beta, core::PricingKind pricing) {
  core::ScenarioConfig config;
  config.num_olevs = 30;
  config.num_sections = 12;
  config.pricing = pricing;
  config.beta_lbmp = olev::util::Price::per_mwh(beta);
  config.target_degree = 0.7;
  config.seed = 0x70;
  const core::Scenario scenario = core::Scenario::build(config);
  core::Game game = scenario.make_game();
  return game.run();
}

}  // namespace

int main() {
  // OLEV_TRACE / OLEV_METRICS env vars export a Perfetto trace / metrics
  // snapshot of the per-hour solves (docs/OBSERVABILITY.md).
  olev::obs::EnvSession obs_session;

  const grid::NyisoDay day = grid::NyisoDay::generate();

  std::cout << "Solving the power-scheduling game for every other hour of a "
               "grid day...\n\n";
  util::Table table({"hour", "LBMP", "nl_$per_MWh", "lin_$per_MWh",
                     "nl_power_kW", "lin_power_kW", "nl_Jain", "lin_Jain"});
  double nl_welfare_day = 0.0;
  double lin_welfare_day = 0.0;
  for (int hour = 0; hour < 24; hour += 2) {
    const double beta = day.lbmp_at(hour + 0.5);
    const auto nl = solve_hour(beta, core::PricingKind::kNonlinear);
    const auto lin = solve_hour(beta, core::PricingKind::kLinear);
    nl_welfare_day += nl.welfare;
    lin_welfare_day += lin.welfare;
    table.add_row_numeric(
        {static_cast<double>(hour), beta,
         core::Scenario::unit_payment_per_mwh(nl),
         core::Scenario::unit_payment_per_mwh(lin), nl.schedule.total(),
         lin.schedule.total(), nl.congestion.jain_fairness,
         lin.congestion.jain_fairness},
        2);
  }
  table.write_pretty(std::cout);

  std::cout << "\nsummed welfare over sampled hours: nonlinear = "
            << util::fmt(nl_welfare_day, 1)
            << ", linear = " << util::fmt(lin_welfare_day, 1) << "\n";
  std::cout << "The nonlinear policy holds Jain fairness at 1.0 (balanced\n"
               "sections) at every hour; the linear baseline does not.\n";
  return 0;
}
