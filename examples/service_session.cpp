// Served pricing session end to end, in one process: a PricingService in
// grid-paced announce mode on an ephemeral loopback port, one socket client
// per OLEV answering announcements with best responses (Lemma IV.3), and a
// final cross-check against the in-process distributed driver -- the served
// equilibrium must match bit for bit (the src/svc contract, pinned harder in
// tests/test_svc.cc).
//
//   $ ./service_session

#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "core/best_response.h"
#include "core/distributed.h"
#include "core/satisfaction.h"
#include "obs/report.h"
#include "svc/client.h"
#include "svc/service.h"

namespace {

using namespace olev;

const std::vector<double> kWeights{10.0, 20.0, 15.0, 12.0};
constexpr std::size_t kSections = 4;

core::SectionCost make_cost() {
  return core::SectionCost(
      std::make_unique<core::NonlinearPricing>(5.0, 0.875, 40.0),
      core::OverloadCost{1.0}, util::kw(40.0));
}

/// One OLEV: binds its player id, best-responds to every announcement,
/// leaves on the CONVERGED broadcast.
void drive_player(std::uint16_t port, std::uint32_t player, double weight,
                  double* final_payment) {
  const core::LogSatisfaction satisfaction(weight);
  const core::SectionCost cost = make_cost();
  svc::ServiceClient client = svc::ServiceClient::connect("127.0.0.1", port);
  net::BeaconMsg beacon;
  beacon.player = player;
  client.send(beacon);
  for (;;) {
    const auto message = client.recv(10.0);
    if (!message) return;
    if (const auto* announcement =
            std::get_if<net::PaymentFunctionMsg>(&*message)) {
      const core::BestResponse response = core::best_response(
          satisfaction, cost, announcement->others_load_kw, util::kw(200.0));
      net::PowerRequestMsg request;
      request.player = player;
      request.round = announcement->round;
      request.total_kw = response.p_star;
      client.send(request);
    } else if (const auto* schedule =
                   std::get_if<net::ScheduleMsg>(&*message)) {
      *final_payment = schedule->payment;
    } else if (const auto* control = std::get_if<net::ControlMsg>(&*message)) {
      if (control->code == net::ControlCode::kConverged) return;
    }
  }
}

}  // namespace

int main() {
  obs::EnvSession obs_session;

  svc::ServiceConfig config;
  config.players = kWeights.size();
  config.sections = kSections;
  config.announce = true;
  config.batch_window_s = 0.0005;
  svc::PricingService service(make_cost(), config);
  std::printf("service: listening on 127.0.0.1:%u (%zu players, %zu sections)\n",
              static_cast<unsigned>(service.port()), kWeights.size(),
              kSections);
  std::thread server([&service] { service.run(); });

  std::vector<double> payments(kWeights.size(), 0.0);
  std::vector<std::thread> olevs;
  for (std::size_t n = 0; n < kWeights.size(); ++n) {
    olevs.emplace_back(drive_player, service.port(),
                       static_cast<std::uint32_t>(n), kWeights[n],
                       &payments[n]);
  }
  for (std::thread& olev : olevs) olev.join();
  service.request_stop();
  server.join();

  std::printf("service: converged=%s after %zu best-response updates\n",
              service.game_converged() ? "yes" : "no", service.game_updates());
  for (std::size_t n = 0; n < kWeights.size(); ++n) {
    std::printf("  OLEV %zu: weight %5.1f  row total %8.4f kW  payment %8.4f $/h\n",
                n, kWeights[n],
                service.schedule().row_total(n), payments[n]);
  }

  // Cross-check: the in-process bus-driven session must land on the exact
  // same fixed point -- the serving layer adds transport, not arithmetic.
  std::vector<core::PlayerSpec> players;
  for (const double w : kWeights) {
    core::PlayerSpec player;
    player.satisfaction = std::make_unique<core::LogSatisfaction>(w);
    player.p_max = util::kw(200.0);
    players.push_back(std::move(player));
  }
  const core::DistributedResult reference = core::run_distributed_game(
      std::move(players), make_cost(), kSections, util::kw(50.0));
  const double diff =
      service.schedule().max_abs_diff(reference.schedule);
  std::printf("service: max |served - distributed| = %.17g %s\n", diff,
              diff == 0.0 ? "(bit-identical)" : "(MISMATCH)");
  return diff == 0.0 && service.game_converged() ? 0 : 1;
}
