// City-scale study: a 4x4 Manhattan grid, origin-destination demand,
// occupancy-driven deployment planning, and a WPT energy harvest -- the
// paper's "If we consider some other intersections in NYC, then the
// aggregated power amount will be enough to increase the power demand of
// the grid operator" scaled out to a small city.
//
//   $ ./city_scale

#include <algorithm>
#include <iostream>
#include <memory>

#include "core/sweep.h"
#include "obs/report.h"
#include "traffic/od_demand.h"
#include "traffic/simulation.h"
#include "util/csv.h"
#include "util/units.h"
#include "wpt/charging_lane.h"
#include "wpt/deployment.h"

namespace {

using namespace olev;

constexpr int kRows = 4;
constexpr int kCols = 4;

traffic::Network make_city() {
  const auto program = traffic::SignalProgram::fixed_cycle(30.0, 4.0, 26.0);
  return traffic::grid_city(kRows, kCols, 250.0, util::to_mps(util::mph(30.0)).value(), program);
}

std::unique_ptr<traffic::OdTripSource> make_demand(const traffic::Network& city) {
  // Gateways: one outbound edge near each corner.
  std::vector<traffic::EdgeId> entries{
      *city.find_edge("e0_0_0_1"), *city.find_edge("e3_3_3_2"),
      *city.find_edge("e0_3_1_3"), *city.find_edge("e3_0_2_0")};
  std::vector<traffic::EdgeId> exits{
      *city.find_edge("e2_2_2_3"), *city.find_edge("e1_1_1_0"),
      *city.find_edge("e2_1_3_1"), *city.find_edge("e0_2_0_1")};
  traffic::DemandConfig demand;
  demand.counts = traffic::scale_to_daily_total(
      traffic::nyc_arterial_hourly_counts(), 24000.0);
  return std::make_unique<traffic::OdTripSource>(
      city, entries, exits, demand, traffic::VehicleType::olev());
}

}  // namespace

int main() {
  // OLEV_TRACE / OLEV_METRICS env vars export a Perfetto trace / metrics
  // snapshot of the whole study (docs/OBSERVABILITY.md).
  olev::obs::EnvSession obs_session;

  traffic::Network city = make_city();
  std::cout << "City: " << kRows << "x" << kCols << " grid, "
            << city.edge_count() << " directed streets, "
            << city.junction_count() << " signalized junctions\n";

  // ---- pilot: find the busy streets ----
  std::cout << "Pilot hour: measuring occupancy on every 25 m slot...\n";
  traffic::SimulationConfig sim_config;
  sim_config.seed = 404;
  traffic::Simulation pilot(city, sim_config);
  pilot.add_source(make_demand(city));
  auto slots = wpt::enumerate_slots(city, olev::util::meters(25.0));
  // Start at 07:00 so the pilot hour carries real demand.
  pilot.run_until(7.0 * 3600.0);
  wpt::score_slots_by_occupancy(pilot, slots, olev::util::seconds(8.0 * 3600.0), /*olev_only=*/true);

  // ---- plan: 30 sections city-wide ----
  wpt::ChargingSectionSpec spec;
  spec.length_m = 25.0;
  const auto sections = wpt::plan_deployment(slots, 30, spec);
  std::vector<double> coverage = wpt::edge_coverage_m(city, sections);
  util::Table streets({"street", "coverage_m", "slot_score_s"});
  // Top five streets by coverage.
  std::vector<std::size_t> order(coverage.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return coverage[a] > coverage[b];
  });
  for (std::size_t i = 0; i < 5 && i < order.size(); ++i) {
    if (coverage[order[i]] <= 0.0) break;
    double street_score = 0.0;
    for (const auto& slot : slots) {
      if (slot.edge == static_cast<traffic::EdgeId>(order[i])) {
        street_score += slot.score;
      }
    }
    streets.add_row({city.edge(static_cast<traffic::EdgeId>(order[i])).name,
                     util::fmt(coverage[order[i]], 0),
                     util::fmt(street_score, 0)});
  }
  std::cout << "\nTop equipped streets:\n";
  streets.write_pretty(std::cout);

  // ---- harvest: run the evening peak with the deployment in place ----
  std::cout << "\nEvening peak (16:00-20:00) with 30 sections:\n";
  traffic::SimulationConfig eval_config;
  eval_config.seed = 505;
  traffic::Simulation evening(city, eval_config);
  evening.add_source(make_demand(city));
  wpt::ChargingLane lane(sections, wpt::ChargingLaneConfig{});
  evening.run_until(16.0 * 3600.0);
  evening.add_observer(&lane);
  evening.run_until(20.0 * 3600.0);

  std::cout << "vehicles simulated : " << evening.stats().departed << "\n";
  std::cout << "OLEVs charged      : " << lane.tracked_vehicles() << "\n";
  std::cout << "energy delivered   : " << util::fmt(lane.ledger().total_kwh(), 1)
            << " kWh over 4 h from one small city\n";
  std::cout << "grid-side peak load: the paper's point -- aggregated over a\n"
               "real city's thousands of intersections this is MW-scale\n"
               "unanticipated demand, which is what the pricing game manages.\n";

  // ---- price: the equilibrium pricing game at every peak hour ----
  // One independent game per (hour, policy) over the 30 deployed sections,
  // with the hour's LBMP driving the price level -- all solved in one
  // parallel run_sweep.
  std::cout << "\nPricing game across the evening peak (50 OLEVs, 30 "
               "sections,\nLBMP sampled per hour):\n";
  std::vector<core::ScenarioSpec> specs;
  for (double hour : {16.0, 17.0, 18.0, 19.0}) {
    for (core::PricingKind pricing :
         {core::PricingKind::kNonlinear, core::PricingKind::kLinear}) {
      core::ScenarioSpec spec;
      core::ScenarioConfig& config = spec.config;
      config.num_olevs = 50;
      config.num_sections = 30;
      config.pricing = pricing;
      config.beta_lbmp = olev::util::Price::per_mwh(0.0);  // sample the grid model's LBMP at this hour
      config.hour_of_day = olev::util::hours(hour);
      config.target_degree = 0.85;
      config.seed = 0xc17;
      specs.push_back(std::move(spec));
    }
  }
  const core::SweepRun sweep_run = core::run_sweep_reported(specs);
  const auto& sweep = sweep_run.results;

  util::Table pricing_table({"hour", "LBMP_$per_MWh", "nonlinear_$per_MWh",
                             "linear_$per_MWh", "nl_mean_degree"});
  for (std::size_t i = 0; i < sweep.size(); i += 2) {
    const core::SweepResult& nonlinear = sweep[i];
    const core::SweepResult& linear = sweep[i + 1];
    pricing_table.add_row_numeric(
        {16.0 + static_cast<double>(i) / 2.0, nonlinear.beta_lbmp,
         nonlinear.unit_payment_per_mwh, linear.unit_payment_per_mwh,
         nonlinear.result.congestion.mean},
        2);
  }
  pricing_table.write_pretty(std::cout);
  std::cout << "the nonlinear policy prices each hour's congestion against\n"
               "that hour's LBMP; the flat linear price cannot react.\n";

  std::cout << "\n" << sweep_run.report.to_text();
  return 0;
}
