// Quickstart: set up a small OLEV/charging-section game with the paper's
// evaluation parameters, run the asynchronous best-response iteration to its
// fixed point, and inspect the socially optimal schedule.
//
//   $ ./quickstart
//
// Walks through the three core API layers:
//   1. Scenario -- builds physics (Eq. 1-2 limits) + pricing from config;
//   2. Game     -- the asynchronous best-response engine (Theorem IV.1);
//   3. results  -- schedule, payments, welfare, congestion.

#include <cstdio>
#include <iostream>

#include "core/scenario.h"
#include "obs/report.h"
#include "util/csv.h"

int main() {
  using namespace olev;

  // OLEV_TRACE=<path> saves a Perfetto trace of the solve; OLEV_METRICS=
  // <path> a metrics-registry snapshot (docs/OBSERVABILITY.md).
  obs::EnvSession obs_session;

  // 10 OLEVs sharing 8 charging sections at 60 mph, nonlinear pricing.
  core::ScenarioConfig config;
  config.num_olevs = 10;
  config.num_sections = 8;
  config.velocity = olev::util::mph(60.0);
  config.pricing = core::PricingKind::kNonlinear;
  config.beta_lbmp = olev::util::Price::per_mwh(20.0);  // $/MWh; pass <= 0 to sample the NYISO-style model
  config.target_degree = 0.6;
  config.seed = 7;

  const core::Scenario scenario = core::Scenario::build(config);
  std::printf("P_line = %.1f kW per section, safety cap = %.1f kW (eta=%.2f)\n",
              scenario.p_line_kw(), scenario.cap_kw(), config.eta);
  std::printf("beta (LBMP) = %.2f $/MWh\n\n", scenario.beta_lbmp());

  core::Game game = scenario.make_game();
  const core::GameResult result = game.run();

  std::printf("converged: %s after %zu player updates\n",
              result.converged ? "yes" : "no", result.updates);
  std::printf("social welfare W(p*) = %.4f\n", result.welfare);
  std::printf("mean congestion degree = %.3f (Jain fairness %.4f)\n\n",
              result.congestion.mean, result.congestion.jain_fairness);

  util::Table table({"olev", "p_max(kW)", "request(kW)", "payment($/h)",
                     "utility"});
  for (std::size_t n = 0; n < config.num_olevs; ++n) {
    table.add_row_numeric({static_cast<double>(n), scenario.p_max()[n],
                           result.requests[n], result.payments[n],
                           result.utilities[n]});
  }
  table.write_pretty(std::cout);
  return 0;
}
