// The decentralized game over a lossy V2I link (Section IV-D end to end).
//
// Spawns a smart-grid node plus one agent node per OLEV, exchanges the
// serialized PaymentFunction / PowerRequest / Schedule messages over a
// simulated DSRC-like bus, and shows that the fixed point is unaffected by
// packet loss -- only time-to-converge and retransmissions grow.
//
//   $ ./v2i_distributed [drop_probability]       # default 0.1

#include <cstdlib>
#include <iostream>
#include <memory>

#include "core/distributed.h"
#include "util/csv.h"

namespace {

using namespace olev;

std::vector<core::PlayerSpec> make_players() {
  std::vector<core::PlayerSpec> players;
  const double weights[] = {12.0, 25.0, 18.0, 9.0, 30.0, 14.0};
  for (double w : weights) {
    core::PlayerSpec player;
    player.satisfaction = std::make_unique<core::LogSatisfaction>(w);
    player.p_max = olev::util::kw(60.0);
    players.push_back(std::move(player));
  }
  return players;
}

core::SectionCost make_cost() {
  return core::SectionCost(
      std::make_unique<core::NonlinearPricing>(5.0, 0.875, 40.0),
      core::OverloadCost{1.0}, olev::util::kw(40.0));
}

}  // namespace

int main(int argc, char** argv) {
  double drop = 0.1;
  if (argc > 1) drop = std::atof(argv[1]);
  if (drop < 0.0 || drop >= 1.0) {
    std::cerr << "drop probability must be in [0, 1)\n";
    return 1;
  }

  // Reference: the in-process game (no network).
  core::Game reference(make_players(), make_cost(), 5, olev::util::kw(50.0));
  const core::GameResult expected = reference.run();

  std::cout << "Running the decentralized V2I game at three loss rates...\n\n";
  util::Table table({"drop_prob", "converged", "rounds", "retransmits",
                     "sim_time_s", "msgs_sent", "max_diff_vs_reference_kW"});
  for (double rate : {0.0, drop, 0.3}) {
    core::DistributedConfig config;
    config.link.base_latency_s = 0.02;  // DSRC-like
    config.link.jitter_s = 0.01;
    config.link.drop_probability = rate;
    config.retransmit_timeout_s = 0.15;
    const core::DistributedResult result = core::run_distributed_game(
        make_players(), make_cost(), 5, olev::util::kw(50.0), config);
    table.add_row({util::fmt(rate, 2), result.converged ? "yes" : "no",
                   util::fmt(static_cast<double>(result.rounds), 0),
                   util::fmt(static_cast<double>(result.retransmissions), 0),
                   util::fmt(result.sim_time_s, 2),
                   util::fmt(static_cast<double>(result.bus.sent), 0),
                   util::fmt(result.schedule.max_abs_diff(expected.schedule), 6)});
  }
  table.write_pretty(std::cout);

  std::cout << "\nPer-OLEV equilibrium (reference, in-process):\n";
  util::Table schedule_table({"olev", "request_kW", "payment_$per_h"});
  for (std::size_t n = 0; n < expected.requests.size(); ++n) {
    schedule_table.add_row_numeric({static_cast<double>(n),
                                    expected.requests[n], expected.payments[n]},
                                   3);
  }
  schedule_table.write_pretty(std::cout);
  std::cout << "\nLoss changes the path, not the destination: the schedule\n"
               "column `max_diff_vs_reference_kW` stays at numerical noise.\n";
  return 0;
}
