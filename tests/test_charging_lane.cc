#include "wpt/charging_lane.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "wpt/energy_ledger.h"

namespace olev::wpt {
namespace {

traffic::Vehicle olev_at(traffic::VehicleId id, traffic::EdgeId edge, double pos,
                         double speed) {
  traffic::Vehicle vehicle;
  vehicle.id = id;
  vehicle.type = traffic::VehicleType::olev();
  vehicle.route = {edge};
  vehicle.pos_m = pos;
  vehicle.speed_mps = speed;
  vehicle.is_olev = true;
  return vehicle;
}

traffic::StepView view_of(const std::vector<traffic::Vehicle>& vehicles,
                          double time_s, double dt_s = 1.0) {
  return traffic::StepView{time_s, dt_s,
                           std::span<const traffic::Vehicle>(vehicles)};
}

ChargingLane make_lane(int sections = 2) {
  ChargingSectionSpec spec;
  return ChargingLane(
      ChargingLane::evenly_spaced(0, olev::util::meters(0.0), olev::util::meters(200.0), sections, spec),
      ChargingLaneConfig{});
}

// ---------- EnergyLedger ----------

TEST(EnergyLedger, RecordsAndAggregates) {
  EnergyLedger ledger(2);
  ledger.record({1, 0, 100.0, 0.5, 50.0});
  ledger.record({2, 1, 3700.0, 0.25, 25.0});
  EXPECT_DOUBLE_EQ(ledger.total_kwh(), 0.75);
  EXPECT_DOUBLE_EQ(ledger.section_total_kwh(0), 0.5);
  EXPECT_DOUBLE_EQ(ledger.section_total_kwh(1), 0.25);
  EXPECT_DOUBLE_EQ(ledger.hourly_totals_kwh()[0], 0.5);
  EXPECT_DOUBLE_EQ(ledger.hourly_totals_kwh()[1], 0.25);
  EXPECT_EQ(ledger.record_count(), 2u);
}

TEST(EnergyLedger, RejectsBadSection) {
  EnergyLedger ledger(1);
  EXPECT_THROW(ledger.record({1, 5, 0.0, 1.0, 1.0}), std::out_of_range);
}

TEST(EnergyLedger, UniquePassesCountsVehicleChanges) {
  EnergyLedger ledger(1);
  ledger.record({1, 0, 0.0, 0.1, 1.0});
  ledger.record({1, 0, 1.0, 0.1, 1.0});  // same vehicle, same section
  ledger.record({2, 0, 2.0, 0.1, 1.0});  // new vehicle
  EXPECT_EQ(ledger.unique_vehicle_passes(), 2u);
}

TEST(EnergyLedger, OptionalRawRecords) {
  EnergyLedger ledger(1);
  ledger.record({1, 0, 0.0, 0.1, 1.0});
  EXPECT_TRUE(ledger.records().empty());
  ledger.keep_records(true);
  ledger.record({1, 0, 1.0, 0.1, 1.0});
  EXPECT_EQ(ledger.records().size(), 1u);
}

TEST(EnergyLedger, ResetClears) {
  EnergyLedger ledger(1);
  ledger.record({1, 0, 0.0, 0.1, 1.0});
  ledger.reset();
  EXPECT_DOUBLE_EQ(ledger.total_kwh(), 0.0);
  EXPECT_EQ(ledger.record_count(), 0u);
  EXPECT_EQ(ledger.unique_vehicle_passes(), 0u);
}

// ---------- ChargingLane ----------

TEST(ChargingLane, EvenlySpacedLayout) {
  ChargingSectionSpec spec;
  spec.length_m = 20.0;
  const auto sections = ChargingLane::evenly_spaced(0, olev::util::meters(0.0), olev::util::meters(200.0), 4, spec);
  ASSERT_EQ(sections.size(), 4u);
  EXPECT_DOUBLE_EQ(sections[0].offset_m, 0.0);
  EXPECT_DOUBLE_EQ(sections[1].offset_m, 50.0);
  EXPECT_DOUBLE_EQ(sections[3].offset_m, 150.0);
  for (const auto& section : sections) {
    EXPECT_DOUBLE_EQ(section.spec.length_m, 20.0);
  }
}

TEST(ChargingLane, EvenlySpacedValidation) {
  ChargingSectionSpec spec;
  EXPECT_THROW(ChargingLane::evenly_spaced(0, olev::util::meters(0.0), olev::util::meters(100.0), 0, spec),
               std::invalid_argument);
  EXPECT_THROW(ChargingLane::evenly_spaced(0, olev::util::meters(100.0), olev::util::meters(100.0), 1, spec),
               std::invalid_argument);
}

TEST(ChargingLane, RequiresSections) {
  EXPECT_THROW(ChargingLane({}, ChargingLaneConfig{}), std::invalid_argument);
}

TEST(ChargingLane, SectionLookup) {
  ChargingLane lane = make_lane(2);  // sections at [0,20) and [100,120)
  EXPECT_EQ(lane.section_at(0, olev::util::meters(10.0), olev::util::meters(5.0)), 0);
  EXPECT_EQ(lane.section_at(0, olev::util::meters(110.0), olev::util::meters(105.0)), 1);
  EXPECT_EQ(lane.section_at(0, olev::util::meters(60.0), olev::util::meters(55.0)), -1);
  EXPECT_EQ(lane.section_at(1, olev::util::meters(10.0), olev::util::meters(5.0)), -1);  // wrong edge
}

TEST(ChargingLane, ChargesOlevOnSection) {
  ChargingLane lane = make_lane(1);
  std::vector<traffic::Vehicle> vehicles{olev_at(1, 0, 10.0, 26.8)};
  lane.on_step(view_of(vehicles, 0.0));
  EXPECT_GT(lane.ledger().total_kwh(), 0.0);
  const Battery* battery = lane.battery_for(1);
  ASSERT_NE(battery, nullptr);
  EXPECT_GT(battery->soc(), 0.5);  // charged above the initial 50%
}

TEST(ChargingLane, IgnoresNonOlev) {
  ChargingLane lane = make_lane(1);
  auto vehicle = olev_at(1, 0, 10.0, 26.8);
  vehicle.is_olev = false;
  std::vector<traffic::Vehicle> vehicles{vehicle};
  lane.on_step(view_of(vehicles, 0.0));
  EXPECT_DOUBLE_EQ(lane.ledger().total_kwh(), 0.0);
  EXPECT_EQ(lane.battery_for(1), nullptr);
}

TEST(ChargingLane, IgnoresVehiclesOffSection) {
  ChargingLane lane = make_lane(2);
  std::vector<traffic::Vehicle> vehicles{olev_at(1, 0, 60.0, 26.8)};
  lane.on_step(view_of(vehicles, 0.0));
  EXPECT_DOUBLE_EQ(lane.ledger().total_kwh(), 0.0);
}

TEST(ChargingLane, SlowerVehicleReceivesMoreEnergyPerPass) {
  // Same section crossed at 60 vs 80 mph: the slow pass nets more energy
  // (longer dwell AND higher Eq. (1) limit).
  auto pass_energy = [](double speed_mps) {
    ChargingLane lane = make_lane(1);
    double pos = -5.0;
    double time = 0.0;
    while (pos < 40.0) {
      std::vector<traffic::Vehicle> vehicles{olev_at(1, 0, pos, speed_mps)};
      lane.on_step(view_of(vehicles, time, 0.1));
      pos += speed_mps * 0.1;
      time += 0.1;
    }
    return lane.ledger().total_kwh();
  };
  EXPECT_GT(pass_energy(26.82), pass_energy(35.76));
}

TEST(ChargingLane, FullBatteryStopsCharging) {
  ChargingLaneConfig config;
  config.initial_soc = 0.9;  // already at the policy ceiling
  ChargingSectionSpec spec;
  ChargingLane lane(ChargingLane::evenly_spaced(0, olev::util::meters(0.0), olev::util::meters(200.0), 1, spec), config);
  std::vector<traffic::Vehicle> vehicles{olev_at(1, 0, 10.0, 5.0)};
  lane.on_step(view_of(vehicles, 0.0));
  EXPECT_DOUBLE_EQ(lane.ledger().total_kwh(), 0.0);
}

TEST(ChargingLane, SectionBudgetSharedAcrossOccupants) {
  // Two OLEVs on the same long slow section: the combined grid draw in one
  // step cannot exceed the section cap.
  ChargingSectionSpec spec;
  spec.length_m = 100.0;
  spec.rated_power_kw = 50.0;
  ChargingLaneConfig config;
  ChargingLane lane(ChargingLane::evenly_spaced(0, olev::util::meters(0.0), olev::util::meters(100.0), 1, spec), config);
  std::vector<traffic::Vehicle> vehicles{olev_at(1, 0, 30.0, 2.0),
                                         olev_at(2, 0, 70.0, 2.0)};
  lane.on_step(view_of(vehicles, 0.0));
  const double cap_kwh =
      spec.safety_factor * spec.rated_power_kw * 1.0 / 3600.0;
  EXPECT_LE(lane.ledger().total_kwh(), cap_kwh + 1e-9);
  EXPECT_GT(lane.ledger().total_kwh(), 0.0);
}

TEST(ChargingLane, TracksDistinctVehicles) {
  ChargingLane lane = make_lane(1);
  std::vector<traffic::Vehicle> vehicles{olev_at(1, 0, 10.0, 10.0),
                                         olev_at(2, 0, 15.0, 10.0)};
  lane.on_step(view_of(vehicles, 0.0));
  EXPECT_EQ(lane.tracked_vehicles(), 2u);
}

}  // namespace
}  // namespace olev::wpt
