#include "core/fleet_day.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace olev::core {
namespace {

FleetDayConfig small_config() {
  FleetDayConfig config;
  config.fleet_size = 12;
  config.num_sections = 6;
  config.period_minutes = 120.0;  // 12 periods: fast tests
  config.seed = 99;
  return config;
}

const grid::NyisoDay& test_day() {
  static const grid::NyisoDay day = grid::NyisoDay::generate();
  return day;
}

TEST(FleetDay, DefaultPresenceFollowsTrafficShape) {
  FleetDayConfig config;
  // Trough at 03:00-04:00, peaks at 08:00 and 17:00.
  EXPECT_LT(config.presence[3], config.presence[8]);
  EXPECT_LT(config.presence[3], config.presence[17]);
  for (double p : config.presence) {
    EXPECT_GE(p, 0.05);
    EXPECT_LE(p, 0.9);
  }
}

TEST(FleetDay, RunsAllPeriods) {
  const FleetDayResult result = run_fleet_day(small_config(), test_day());
  EXPECT_EQ(result.periods.size(), 12u);
  EXPECT_EQ(result.fleet.size(), 12u);
}

TEST(FleetDay, EveryPeriodGameConverges) {
  const FleetDayResult result = run_fleet_day(small_config(), test_day());
  for (const PeriodRecord& record : result.periods) {
    if (record.active_olevs > 0) {
      EXPECT_TRUE(record.converged) << "hour " << record.hour;
    }
  }
}

TEST(FleetDay, SocStaysWithinBounds) {
  const FleetDayResult result = run_fleet_day(small_config(), test_day());
  for (const FleetOlev& olev : result.fleet) {
    EXPECT_GE(olev.battery.soc(), 0.0);
    EXPECT_LE(olev.battery.soc(), olev.battery.spec().soc_max + 1e-12);
  }
}

TEST(FleetDay, EnergyConservation) {
  FleetDayConfig config = small_config();
  const FleetDayResult result = run_fleet_day(config, test_day());
  // Sum over the fleet: final = initial + received - driven; verify via the
  // throughput ledger (received + driven both pass through the battery).
  for (const FleetOlev& olev : result.fleet) {
    EXPECT_NEAR(olev.battery.throughput_kwh(),
                olev.energy_received_kwh + olev.energy_driven_kwh, 1e-9);
  }
  double received = 0.0;
  for (const FleetOlev& olev : result.fleet) received += olev.energy_received_kwh;
  EXPECT_NEAR(received, result.total_energy_kwh, 1e-9);
}

TEST(FleetDay, PaymentsAreAccumulated) {
  const FleetDayResult result = run_fleet_day(small_config(), test_day());
  EXPECT_GT(result.total_payments, 0.0);
  double fleet_paid = 0.0;
  for (const FleetOlev& olev : result.fleet) fleet_paid += olev.total_paid;
  EXPECT_NEAR(fleet_paid, result.total_payments, 1e-9);
}

TEST(FleetDay, DeterministicForFixedSeed) {
  const FleetDayResult a = run_fleet_day(small_config(), test_day());
  const FleetDayResult b = run_fleet_day(small_config(), test_day());
  ASSERT_EQ(a.periods.size(), b.periods.size());
  for (std::size_t i = 0; i < a.periods.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.periods[i].energy_kwh, b.periods[i].energy_kwh);
  }
  EXPECT_DOUBLE_EQ(a.mean_final_soc, b.mean_final_soc);
}

TEST(FleetDay, DepletedVehiclesReceiveMoreOverTheDay) {
  // SOC-aware weights: start one cohort low, one high; per active period
  // the low cohort must harvest more energy.
  FleetDayConfig config = small_config();
  config.fleet_size = 20;
  config.initial_soc_low = 0.3;
  config.initial_soc_high = 0.31;
  const FleetDayResult low = run_fleet_day(config, test_day());
  config.initial_soc_low = 0.65;
  config.initial_soc_high = 0.66;
  const FleetDayResult high = run_fleet_day(config, test_day());
  auto per_active_period = [](const FleetDayResult& result) {
    double energy = 0.0;
    double periods = 0.0;
    for (const FleetOlev& olev : result.fleet) {
      energy += olev.energy_received_kwh;
      periods += static_cast<double>(olev.periods_active);
    }
    return periods > 0.0 ? energy / periods : 0.0;
  };
  EXPECT_GT(per_active_period(low), per_active_period(high));
}

TEST(FleetDay, ChargingRespectsPolicyCeiling) {
  FleetDayConfig config = small_config();
  config.initial_soc_low = 0.88;
  config.initial_soc_high = 0.89;
  config.driving_duty = 0.0;  // no drain: ceiling must bind
  const FleetDayResult result = run_fleet_day(config, test_day());
  for (const FleetOlev& olev : result.fleet) {
    EXPECT_LE(olev.battery.soc(), olev.battery.spec().soc_max + 1e-12);
  }
}

TEST(FleetDay, MoreSectionsCheaperCharging) {
  // Batteries bound the deliverable energy, so capacity shows up in price:
  // more sections -> lower congestion -> lower unit payments.
  FleetDayConfig narrow = small_config();
  narrow.num_sections = 3;
  FleetDayConfig wide = small_config();
  wide.num_sections = 12;
  const FleetDayResult scarce = run_fleet_day(narrow, test_day());
  const FleetDayResult ample = run_fleet_day(wide, test_day());
  const double scarce_unit =
      scarce.total_payments / std::max(1e-9, scarce.total_energy_kwh);
  const double ample_unit =
      ample.total_payments / std::max(1e-9, ample.total_energy_kwh);
  EXPECT_GT(scarce_unit, ample_unit);
  // And the congestion ceiling drops.
  auto max_congestion = [](const FleetDayResult& result) {
    double worst = 0.0;
    for (const auto& record : result.periods) {
      worst = std::max(worst, record.mean_congestion);
    }
    return worst;
  };
  EXPECT_GT(max_congestion(scarce), max_congestion(ample));
}

TEST(FleetDay, BatteryAcceptanceCapsScheduling) {
  // A fleet starting at the policy ceiling can accept nothing and must not
  // be charged for undeliverable power.
  FleetDayConfig config = small_config();
  config.initial_soc_low = 0.9;
  config.initial_soc_high = 0.9;
  config.driving_duty = 0.0;
  const FleetDayResult result = run_fleet_day(config, test_day());
  EXPECT_NEAR(result.total_energy_kwh, 0.0, 1e-9);
  EXPECT_NEAR(result.total_payments, 0.0, 1e-9);
}

TEST(FleetDay, PeakHoursCostMorePerKwh) {
  // Flat presence isolates the price effect: the $/kWh collected in the
  // most expensive LBMP period exceeds the cheapest populated period.
  FleetDayConfig config = small_config();
  config.presence.fill(0.6);
  const FleetDayResult result = run_fleet_day(config, test_day());
  double cheap_beta = 1e18;
  double cheap_unit = 0.0;
  double dear_beta = -1e18;
  double dear_unit = 0.0;
  for (const PeriodRecord& record : result.periods) {
    if (record.energy_kwh < 1.0) continue;
    const double unit = record.payments / record.energy_kwh;
    if (record.beta_lbmp < cheap_beta) {
      cheap_beta = record.beta_lbmp;
      cheap_unit = unit;
    }
    if (record.beta_lbmp > dear_beta) {
      dear_beta = record.beta_lbmp;
      dear_unit = unit;
    }
  }
  ASSERT_GT(dear_beta, cheap_beta);
  EXPECT_GT(dear_unit, cheap_unit);
}

TEST(FleetDay, CongestionBoundedBySafetyRegion) {
  const FleetDayResult result = run_fleet_day(small_config(), test_day());
  for (const PeriodRecord& record : result.periods) {
    EXPECT_LE(record.mean_congestion, 1.05) << "hour " << record.hour;
  }
}

}  // namespace
}  // namespace olev::core
