#include "traffic/detector.h"

#include <gtest/gtest.h>

#include <vector>

namespace olev::traffic {
namespace {

Vehicle make_vehicle(EdgeId edge, double pos, double speed, bool olev = true) {
  Vehicle vehicle;
  vehicle.id = 1;
  vehicle.type = VehicleType::passenger();
  vehicle.route = {edge};
  vehicle.pos_m = pos;
  vehicle.speed_mps = speed;
  vehicle.is_olev = olev;
  return vehicle;
}

StepView view_of(const std::vector<Vehicle>& vehicles, double time_s,
                 double dt_s = 1.0) {
  return StepView{time_s, dt_s, std::span<const Vehicle>(vehicles)};
}

TEST(HourBucket, MapsAndWraps) {
  EXPECT_EQ(hour_bucket(0.0), 0u);
  EXPECT_EQ(hour_bucket(3599.0), 0u);
  EXPECT_EQ(hour_bucket(3600.0), 1u);
  EXPECT_EQ(hour_bucket(23.5 * 3600.0), 23u);
  EXPECT_EQ(hour_bucket(24.0 * 3600.0), 0u);  // next day wraps
}

TEST(SegmentDetector, AccumulatesOccupancy) {
  SegmentDetector detector(0, 50.0, 70.0);
  std::vector<Vehicle> vehicles{make_vehicle(0, 60.0, 10.0)};
  detector.on_step(view_of(vehicles, 0.0));
  detector.on_step(view_of(vehicles, 1.0));
  EXPECT_DOUBLE_EQ(detector.total_occupancy_s(), 2.0);
  EXPECT_DOUBLE_EQ(detector.hourly_occupancy_s()[0], 2.0);
  EXPECT_EQ(detector.occupied_steps(), 2u);
}

TEST(SegmentDetector, IgnoresVehiclesOutsideSegment) {
  SegmentDetector detector(0, 50.0, 70.0);
  std::vector<Vehicle> vehicles{make_vehicle(0, 20.0, 10.0),
                                make_vehicle(0, 90.0, 10.0)};
  // Front at 90, rear at 85: beyond [50,70).  Front at 20: before.
  detector.on_step(view_of(vehicles, 0.0));
  EXPECT_DOUBLE_EQ(detector.total_occupancy_s(), 0.0);
}

TEST(SegmentDetector, BodyOverlapCounts) {
  SegmentDetector detector(0, 50.0, 70.0);
  // Front at 72, rear at 67: body still touches the segment.
  std::vector<Vehicle> vehicles{make_vehicle(0, 72.0, 10.0)};
  detector.on_step(view_of(vehicles, 0.0));
  EXPECT_DOUBLE_EQ(detector.total_occupancy_s(), 1.0);
}

TEST(SegmentDetector, IgnoresOtherEdges) {
  SegmentDetector detector(1, 0.0, 100.0);
  std::vector<Vehicle> vehicles{make_vehicle(0, 50.0, 10.0)};
  detector.on_step(view_of(vehicles, 0.0));
  EXPECT_DOUBLE_EQ(detector.total_occupancy_s(), 0.0);
}

TEST(SegmentDetector, OlevOnlyFilter) {
  SegmentDetector all(0, 0.0, 100.0, /*olev_only=*/false);
  SegmentDetector olev_only(0, 0.0, 100.0, /*olev_only=*/true);
  std::vector<Vehicle> vehicles{make_vehicle(0, 50.0, 10.0, /*olev=*/false)};
  all.on_step(view_of(vehicles, 0.0));
  olev_only.on_step(view_of(vehicles, 0.0));
  EXPECT_DOUBLE_EQ(all.total_occupancy_s(), 1.0);
  EXPECT_DOUBLE_EQ(olev_only.total_occupancy_s(), 0.0);
}

TEST(SegmentDetector, HourBucketsSplitOccupancy) {
  SegmentDetector detector(0, 0.0, 100.0);
  std::vector<Vehicle> vehicles{make_vehicle(0, 50.0, 10.0)};
  detector.on_step(view_of(vehicles, 10.0));           // hour 0
  detector.on_step(view_of(vehicles, 2.0 * 3600.0));   // hour 2
  detector.on_step(view_of(vehicles, 2.5 * 3600.0));   // hour 2
  EXPECT_DOUBLE_EQ(detector.hourly_occupancy_s()[0], 1.0);
  EXPECT_DOUBLE_EQ(detector.hourly_occupancy_s()[2], 2.0);
}

TEST(SegmentDetector, MeanOccupantSpeed) {
  SegmentDetector detector(0, 0.0, 100.0);
  std::vector<Vehicle> fast{make_vehicle(0, 50.0, 20.0)};
  std::vector<Vehicle> slow{make_vehicle(0, 50.0, 10.0)};
  detector.on_step(view_of(fast, 0.0));
  detector.on_step(view_of(slow, 1.0));
  EXPECT_DOUBLE_EQ(detector.mean_occupant_speed_mps(), 15.0);
}

TEST(SegmentDetector, ResetClearsState) {
  SegmentDetector detector(0, 0.0, 100.0);
  std::vector<Vehicle> vehicles{make_vehicle(0, 50.0, 10.0)};
  detector.on_step(view_of(vehicles, 0.0));
  detector.reset();
  EXPECT_DOUBLE_EQ(detector.total_occupancy_s(), 0.0);
  EXPECT_EQ(detector.occupied_steps(), 0u);
  EXPECT_DOUBLE_EQ(detector.mean_occupant_speed_mps(), 0.0);
}

TEST(InductionLoop, CountsCrossings) {
  InductionLoop loop(0, 50.0);
  // Vehicle moving 10 m/s: previous front at 45, current at 55 -> crossed.
  std::vector<Vehicle> vehicles{make_vehicle(0, 55.0, 10.0)};
  loop.on_step(view_of(vehicles, 0.0));
  EXPECT_EQ(loop.total_count(), 1u);
  EXPECT_EQ(loop.last_step_count(), 1u);
}

TEST(InductionLoop, NoDoubleCountAfterCrossing) {
  InductionLoop loop(0, 50.0);
  std::vector<Vehicle> vehicles{make_vehicle(0, 55.0, 10.0)};
  loop.on_step(view_of(vehicles, 0.0));
  vehicles[0].pos_m = 65.0;  // already past, prev front 55 >= 50
  loop.on_step(view_of(vehicles, 1.0));
  EXPECT_EQ(loop.total_count(), 1u);
  EXPECT_EQ(loop.last_step_count(), 0u);
}

TEST(InductionLoop, StationaryVehicleNotCounted) {
  InductionLoop loop(0, 50.0);
  std::vector<Vehicle> vehicles{make_vehicle(0, 50.0, 0.0)};
  // prev front == current front == 50: prev_front < 50 is false.
  loop.on_step(view_of(vehicles, 0.0));
  EXPECT_EQ(loop.total_count(), 0u);
}

TEST(InductionLoop, HourlyBuckets) {
  InductionLoop loop(0, 50.0);
  std::vector<Vehicle> vehicles{make_vehicle(0, 55.0, 10.0)};
  loop.on_step(view_of(vehicles, 5.0 * 3600.0));
  EXPECT_EQ(loop.hourly_counts()[5], 1u);
  EXPECT_EQ(loop.hourly_counts()[4], 0u);
}

TEST(InductionLoop, ResetClears) {
  InductionLoop loop(0, 50.0);
  std::vector<Vehicle> vehicles{make_vehicle(0, 55.0, 10.0)};
  loop.on_step(view_of(vehicles, 0.0));
  loop.reset();
  EXPECT_EQ(loop.total_count(), 0u);
}

}  // namespace
}  // namespace olev::traffic
