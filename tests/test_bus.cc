#include "net/bus.h"

#include <gtest/gtest.h>

#include <cmath>

namespace olev::net {
namespace {

LinkModel perfect_link() {
  LinkModel link;
  link.base_latency_s = 0.01;
  link.jitter_s = 0.0;
  link.drop_probability = 0.0;
  return link;
}

TEST(MessageBus, DeliversAfterLatency) {
  MessageBus bus(perfect_link());
  bus.send(1, 2, 0.0, BeaconMsg{1, 0.0, 0.0, 0.5});
  EXPECT_TRUE(bus.poll(2, 0.005).empty());  // too early
  const auto delivered = bus.poll(2, 0.02);
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].from, 1u);
  EXPECT_EQ(delivered[0].to, 2u);
  EXPECT_TRUE(std::holds_alternative<BeaconMsg>(delivered[0].payload));
}

TEST(MessageBus, PayloadSurvivesWireRoundTrip) {
  MessageBus bus(perfect_link());
  PowerRequestMsg msg{3, 9, 12.5, {}};
  bus.send(4, kGridNode, 0.0, msg);
  const auto delivered = bus.poll(kGridNode, 1.0);
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(std::get<PowerRequestMsg>(delivered[0].payload), msg);
}

TEST(MessageBus, OnlyAddresseeReceives) {
  MessageBus bus(perfect_link());
  bus.send(1, 2, 0.0, BeaconMsg{});
  EXPECT_TRUE(bus.poll(3, 1.0).empty());
  EXPECT_EQ(bus.poll(2, 1.0).size(), 1u);
}

TEST(MessageBus, UndeliveredMessagesStayQueued) {
  MessageBus bus(perfect_link());
  bus.send(1, 2, 0.0, BeaconMsg{});
  bus.send(1, 3, 0.0, BeaconMsg{});
  // Polling node 2 must not lose node 3's message.
  EXPECT_EQ(bus.poll(2, 1.0).size(), 1u);
  EXPECT_EQ(bus.poll(3, 1.0).size(), 1u);
}

TEST(MessageBus, ArrivalOrderPreserved) {
  MessageBus bus(perfect_link());
  bus.send(1, 2, 0.00, PowerRequestMsg{0, 1, 0.0, {}});
  bus.send(1, 2, 0.01, PowerRequestMsg{0, 2, 0.0, {}});
  bus.send(1, 2, 0.02, PowerRequestMsg{0, 3, 0.0, {}});
  const auto delivered = bus.poll(2, 1.0);
  ASSERT_EQ(delivered.size(), 3u);
  EXPECT_EQ(std::get<PowerRequestMsg>(delivered[0].payload).round, 1u);
  EXPECT_EQ(std::get<PowerRequestMsg>(delivered[1].payload).round, 2u);
  EXPECT_EQ(std::get<PowerRequestMsg>(delivered[2].payload).round, 3u);
}

TEST(MessageBus, NextArrivalTracksQueue) {
  MessageBus bus(perfect_link());
  EXPECT_TRUE(std::isinf(bus.next_arrival_s()));
  bus.send(1, 2, 0.0, BeaconMsg{});
  EXPECT_NEAR(bus.next_arrival_s(), 0.01, 1e-12);
  bus.poll(2, 1.0);
  EXPECT_TRUE(std::isinf(bus.next_arrival_s()));
}

TEST(MessageBus, DropsAtConfiguredRate) {
  LinkModel lossy = perfect_link();
  lossy.drop_probability = 0.3;
  MessageBus bus(lossy);
  constexpr int kMessages = 10000;
  for (int i = 0; i < kMessages; ++i) bus.send(1, 2, 0.0, BeaconMsg{});
  const auto delivered = bus.poll(2, 1.0);
  EXPECT_EQ(bus.stats().sent, static_cast<std::size_t>(kMessages));
  EXPECT_NEAR(static_cast<double>(bus.stats().dropped) / kMessages, 0.3, 0.02);
  EXPECT_EQ(delivered.size(), kMessages - bus.stats().dropped);
}

TEST(MessageBus, JitterStaysWithinBound) {
  LinkModel jittery = perfect_link();
  jittery.jitter_s = 0.05;
  MessageBus bus(jittery);
  for (int i = 0; i < 100; ++i) bus.send(1, 2, 0.0, BeaconMsg{});
  // All must arrive within base + jitter.
  EXPECT_EQ(bus.poll(2, 0.01 + 0.05 + 1e-9).size(), 100u);
}

TEST(MessageBus, StatsCountBytes) {
  MessageBus bus(perfect_link());
  bus.send(1, 2, 0.0, PowerRequestMsg{1, 2, 3.0, {}});
  EXPECT_EQ(bus.stats().bytes_sent, 37u);
}

TEST(MessageBus, StatsCountDeliveredBytes) {
  MessageBus bus(perfect_link());
  bus.send(1, 2, 0.0, PowerRequestMsg{1, 2, 3.0, {}});
  bus.send(1, 3, 0.0, PowerRequestMsg{1, 2, 3.0, {}});
  // Sent but not yet handed to a receiver: nothing delivered.
  EXPECT_EQ(bus.stats().bytes_sent, 74u);
  EXPECT_EQ(bus.stats().bytes_delivered, 0u);
  ASSERT_EQ(bus.poll(2, 1.0).size(), 1u);
  EXPECT_EQ(bus.stats().bytes_delivered, 37u);  // only node 2's envelope
  ASSERT_EQ(bus.poll(3, 1.0).size(), 1u);
  EXPECT_EQ(bus.stats().bytes_delivered, 74u);
}

TEST(MessageBus, DroppedBytesAreNeverDelivered) {
  LinkModel lossy = perfect_link();
  lossy.drop_probability = 1.0;
  MessageBus bus(lossy);
  bus.send(1, 2, 0.0, PowerRequestMsg{1, 2, 3.0, {}});
  EXPECT_TRUE(bus.poll(2, 1.0).empty());
  EXPECT_EQ(bus.stats().bytes_sent, 37u);
  EXPECT_EQ(bus.stats().bytes_delivered, 0u);
}

TEST(MessageBus, SequenceNumbersIncrease) {
  MessageBus bus(perfect_link());
  const auto s1 = bus.send(1, 2, 0.0, BeaconMsg{});
  const auto s2 = bus.send(1, 2, 0.0, BeaconMsg{});
  EXPECT_GT(s2, s1);
}

TEST(MessageBus, InFlightCount) {
  MessageBus bus(perfect_link());
  bus.send(1, 2, 0.0, BeaconMsg{});
  bus.send(1, 3, 0.0, BeaconMsg{});
  EXPECT_EQ(bus.in_flight(), 2u);
  bus.poll(2, 1.0);
  EXPECT_EQ(bus.in_flight(), 1u);
}

}  // namespace
}  // namespace olev::net
