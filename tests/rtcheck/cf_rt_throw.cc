// Real-time wall negative test: a hot root with an inline `throw` must be
// rejected with a [throw] violation (__cxa_throw / __cxa_allocate_exception
// in the .cold fragment).  Hot code must funnel failures through the
// registered olev::util::hot_fail_* stops instead -- cf_rt_control.cc is
// the positive control showing that pattern passing.
// Run via tools/olev_rtcheck.py --check-file --expect-violation throw.
#include <stdexcept>

#include "util/hot.h"

volatile double cf_sink;

OLEV_HOT_ROOT("cf_rt_throw_root");

OLEV_HOT __attribute__((noinline)) double cf_rt_throw_root(double x) {
  if (x < 0.0) throw std::invalid_argument("negative load");
  return x + 1.0;
}

void cf_rt_throw_driver() { cf_sink = cf_rt_throw_root(1.0); }
