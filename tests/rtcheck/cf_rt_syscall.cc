// Real-time wall negative test: a hot root calling an I/O syscall wrapper
// must be rejected with an [io] violation.
// Run via tools/olev_rtcheck.py --check-file --expect-violation io.
#include <unistd.h>

#include "util/hot.h"

volatile double cf_sink;

OLEV_HOT_ROOT("cf_rt_syscall_root");

OLEV_HOT __attribute__((noinline)) double cf_rt_syscall_root(double x) {
  const char byte = '!';
  (void)::write(STDOUT_FILENO, &byte, 1);
  return x;
}

void cf_rt_syscall_driver() { cf_sink = cf_rt_syscall_root(1.0); }
