// Real-time wall positive control: a hot root written to the house
// discipline -- arithmetic only, failures funneled through the registered
// olev::util::hot_fail_* cold stops -- must PASS the analyzer.  This guards
// against a broken include path or an over-eager policy list making every
// cf_rt_* negative test vacuously green.
// Run via tools/olev_rtcheck.py --check-file (no --expect-violation).
#include <cmath>
#include <span>

#include "util/hot.h"

volatile double cf_sink;

OLEV_HOT_ROOT("cf_rt_control_root");

OLEV_HOT __attribute__((noinline)) double cf_rt_control_root(
    std::span<const double> loads, double level) {
  if (!(level >= 0.0)) {
    olev::util::hot_fail_invalid_argument("cf_rt_control: negative level");
  }
  double filled = 0.0;
  for (const double load : loads) {
    filled += std::max(0.0, level - load) + std::sqrt(load + 1.0);
  }
  return filled;
}

void cf_rt_control_driver() {
  const double loads[] = {1.0, 2.0, 3.0};
  cf_sink = cf_rt_control_root(loads, 2.5);
}
