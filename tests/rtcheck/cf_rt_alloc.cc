// Real-time wall negative test: a hot root whose fully-inlined body still
// reaches operator new must be rejected with an [alloc] violation.  The
// ctest invokes tools/olev_rtcheck.py --check-file on this file with
// --expect-violation alloc, so the test PASSES exactly when the analyzer
// reports the allocation chain.
#include <vector>

#include "util/hot.h"

volatile double cf_sink;

OLEV_HOT_ROOT("cf_rt_alloc_root");

// Looks innocent after inlining -- push_back's growth path is the only
// remaining call -- which is exactly what a source-level checker misses and
// the relocation graph does not.
OLEV_HOT __attribute__((noinline)) double cf_rt_alloc_root(int n) {
  std::vector<double> samples;
  for (int i = 0; i < n; ++i) samples.push_back(static_cast<double>(i));
  return samples.back();
}

void cf_rt_alloc_driver() { cf_sink = cf_rt_alloc_root(8); }
