// Real-time wall negative test: virtual dispatch inside a hot root without
// an OLEV_RT_VCALL_OK allowance must be rejected with an [indirect]
// violation -- the call target cannot be proven allocation-free from
// relocations alone, so every dispatch site must be explicitly sanctioned
// (and its reachable overrides individually rooted, as core/satisfaction.cc
// and core/cost.cc do).
// Run via tools/olev_rtcheck.py --check-file --expect-violation indirect.
#include "util/hot.h"

volatile double cf_sink;

struct CfPolicy {
  virtual double price(double load) const = 0;
  virtual ~CfPolicy();
};

OLEV_HOT_ROOT("cf_rt_indirect_root");

OLEV_HOT __attribute__((noinline)) double cf_rt_indirect_root(
    const CfPolicy& policy, double load) {
  return policy.price(load) + policy.price(load * 0.5);
}

void cf_rt_indirect_driver(const CfPolicy& policy) {
  cf_sink = cf_rt_indirect_root(policy, 1.0);
}
