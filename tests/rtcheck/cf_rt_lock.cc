// Real-time wall negative test: a hot root that acquires a mutex must be
// rejected with a [lock] violation (the chain ends at pthread_mutex_lock).
// Run via tools/olev_rtcheck.py --check-file --expect-violation lock.
#include <mutex>

#include "util/hot.h"

volatile double cf_sink;
std::mutex cf_rt_mu;

OLEV_HOT_ROOT("cf_rt_lock_root");

OLEV_HOT __attribute__((noinline)) double cf_rt_lock_root(double x) {
  const std::lock_guard<std::mutex> hold(cf_rt_mu);
  return x * 2.0;
}

void cf_rt_lock_driver() { cf_sink = cf_rt_lock_root(1.0); }
