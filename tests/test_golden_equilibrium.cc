// Golden-fixture regression test: the N=10, C=10 equilibrium (nonlinear and
// linear pricing) must match the committed CSVs under tests/golden/ to 1e-6.
// This pins down the *numbers*, not just the invariants -- an accidental
// change to the solver arithmetic that still satisfies every property test
// trips here.  Regenerate intentionally with the generate_golden tool.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <tuple>

#include "core/scenario.h"
#include "golden_fixture.h"

#ifndef OLEV_GOLDEN_DIR
#error "OLEV_GOLDEN_DIR must point at tests/golden (set by tests/CMakeLists.txt)"
#endif

namespace olev::core {
namespace {

using GoldenMap =
    std::map<std::tuple<std::string, std::size_t, std::size_t>, double>;

GoldenMap load_golden(const std::string& file) {
  const std::string path = std::string(OLEV_GOLDEN_DIR) + "/" + file;
  std::ifstream is(path);
  EXPECT_TRUE(is.good()) << "missing fixture " << path;
  GoldenMap golden;
  std::string line;
  std::getline(is, line);  // header
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream cells(line);
    std::string quantity, i, j, value;
    std::getline(cells, quantity, ',');
    std::getline(cells, i, ',');
    std::getline(cells, j, ',');
    std::getline(cells, value, ',');
    golden[{quantity, std::stoul(i), std::stoul(j)}] = std::stod(value);
  }
  return golden;
}

void check_fixture(PricingKind pricing) {
  const GoldenMap golden = load_golden(testing::golden_file(pricing));
  ASSERT_FALSE(golden.empty());

  const Scenario scenario = Scenario::build(testing::golden_config(pricing));
  Game game = scenario.make_game();
  const GameResult result = game.run();
  ASSERT_TRUE(result.converged);

  constexpr double kTol = 1e-6;
  std::size_t checked = 0;
  for (std::size_t n = 0; n < result.schedule.players(); ++n) {
    for (std::size_t c = 0; c < result.schedule.sections(); ++c) {
      const auto it = golden.find({"schedule", n, c});
      ASSERT_NE(it, golden.end()) << "schedule(" << n << "," << c << ")";
      EXPECT_NEAR(result.schedule.at(n, c), it->second, kTol)
          << "schedule(" << n << "," << c << ")";
      ++checked;
    }
  }
  for (std::size_t n = 0; n < result.requests.size(); ++n) {
    EXPECT_NEAR(result.requests[n], golden.at({"request", n, 0}), kTol)
        << "request " << n;
    EXPECT_NEAR(result.payments[n], golden.at({"payment", n, 0}), kTol)
        << "payment " << n;
    EXPECT_NEAR(result.utilities[n], golden.at({"utility", n, 0}), kTol)
        << "utility " << n;
    checked += 3;
  }
  EXPECT_NEAR(result.welfare, golden.at({"welfare", 0, 0}), kTol);
  ++checked;
  // Every committed value was consumed (no stale rows hiding in the CSV).
  EXPECT_EQ(checked, golden.size());
}

TEST(GoldenEquilibrium, NonlinearPricingMatchesFixture) {
  check_fixture(PricingKind::kNonlinear);
}

TEST(GoldenEquilibrium, LinearPricingMatchesFixture) {
  check_fixture(PricingKind::kLinear);
}

}  // namespace
}  // namespace olev::core
