#include "core/game.h"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "core/best_response.h"
#include "core/central.h"
#include "core/payment.h"

namespace olev::core {
namespace {

SectionCost make_cost(double cap = 40.0) {
  return SectionCost(std::make_unique<NonlinearPricing>(5.0, 0.875, cap),
                     OverloadCost{1.0}, olev::util::kw(cap));
}

std::vector<PlayerSpec> make_players(const std::vector<double>& weights,
                                     double p_max = 200.0) {
  std::vector<PlayerSpec> players;
  for (double w : weights) {
    PlayerSpec player;
    player.satisfaction = std::make_unique<LogSatisfaction>(w);
    player.p_max = olev::util::kw(p_max);
    players.push_back(std::move(player));
  }
  return players;
}

TEST(Game, ConstructorValidation) {
  EXPECT_THROW(Game({}, make_cost(), 2, olev::util::kw(50.0)), std::invalid_argument);
  EXPECT_THROW(Game(make_players({1.0}), make_cost(), 0, olev::util::kw(50.0)),
               std::invalid_argument);
  EXPECT_THROW(Game(make_players({1.0}), make_cost(), 2, olev::util::kw(0.0)),
               std::invalid_argument);
  auto players = make_players({1.0});
  players[0].p_max = olev::util::kw(-1.0);
  EXPECT_THROW(Game(std::move(players), make_cost(), 2, olev::util::kw(50.0)),
               std::invalid_argument);
}

TEST(Game, SinglePlayerConvergesInOneCycle) {
  GameConfig config;
  Game game(make_players({10.0}), make_cost(), 3, olev::util::kw(50.0), config);
  const GameResult result = game.run();
  EXPECT_TRUE(result.converged);
  // One update sets the best response; the next confirms no change.
  EXPECT_LE(result.updates, 3u);
}

TEST(Game, ConvergesForManyPlayers) {
  Game game(make_players({10.0, 20.0, 15.0, 8.0, 12.0}), make_cost(), 4, olev::util::kw(50.0));
  const GameResult result = game.run();
  EXPECT_TRUE(result.converged);
  EXPECT_GT(result.welfare, 0.0);
}

TEST(Game, FixedPointIsMutualBestResponse) {
  Game game(make_players({10.0, 20.0, 15.0}), make_cost(), 3, olev::util::kw(50.0));
  const GameResult result = game.run();
  ASSERT_TRUE(result.converged);
  const SectionCost z = make_cost();
  for (std::size_t n = 0; n < 3; ++n) {
    const auto others = result.schedule.column_totals_excluding(n);
    LogSatisfaction u(n == 0 ? 10.0 : (n == 1 ? 20.0 : 15.0));
    const BestResponse response = best_response(u, z, others, olev::util::kw(200.0));
    EXPECT_NEAR(response.p_star, result.requests[n], 1e-5) << "player " << n;
  }
}

TEST(Game, EquilibriumMatchesCentralOptimum) {
  // Theorem IV.1: the asynchronous fixed point attains the social optimum.
  const std::vector<double> weights{10.0, 25.0, 18.0};
  const double p_max = 60.0;
  Game game(make_players(weights, p_max), make_cost(), 3, olev::util::kw(50.0));
  const GameResult game_result = game.run();
  ASSERT_TRUE(game_result.converged);

  std::vector<std::unique_ptr<Satisfaction>> players;
  for (double w : weights) players.push_back(std::make_unique<LogSatisfaction>(w));
  const std::vector<double> caps(weights.size(), p_max);
  const CentralResult central = maximize_welfare(players, caps, make_cost(), 3);
  ASSERT_TRUE(central.converged);

  EXPECT_NEAR(game_result.welfare, central.welfare, 1e-4);
  for (std::size_t n = 0; n < weights.size(); ++n) {
    EXPECT_NEAR(game_result.requests[n], central.schedule.row_total(n), 1e-2)
        << "player " << n;
  }
}

TEST(Game, RandomOrderReachesSameEquilibrium) {
  GameConfig round_robin;
  round_robin.order = UpdateOrder::kRoundRobin;
  GameConfig random;
  random.order = UpdateOrder::kUniformRandom;
  random.max_updates = 100000;

  Game a(make_players({10.0, 20.0, 15.0}), make_cost(), 3, olev::util::kw(50.0), round_robin);
  Game b(make_players({10.0, 20.0, 15.0}), make_cost(), 3, olev::util::kw(50.0), random);
  const GameResult ra = a.run();
  const GameResult rb = b.run();
  ASSERT_TRUE(ra.converged);
  ASSERT_TRUE(rb.converged);
  EXPECT_NEAR(ra.welfare, rb.welfare, 1e-5);
  for (std::size_t n = 0; n < 3; ++n) {
    EXPECT_NEAR(ra.requests[n], rb.requests[n], 1e-3);
  }
}

TEST(Game, EquilibriumBalancesLoad) {
  // Lemma IV.1 balancing: at the fixed point, symmetric sections carry
  // near-identical load (the Fig. 5(c) nonlinear curve).
  Game game(make_players({30.0, 30.0, 30.0, 30.0}), make_cost(), 5, olev::util::kw(50.0));
  const GameResult result = game.run();
  ASSERT_TRUE(result.converged);
  EXPECT_GT(result.congestion.jain_fairness, 0.9999);
}

TEST(Game, PaymentsMatchExternality) {
  Game game(make_players({12.0, 18.0}), make_cost(), 2, olev::util::kw(50.0));
  const GameResult result = game.run();
  const SectionCost z = make_cost();
  for (std::size_t n = 0; n < 2; ++n) {
    const auto others = result.schedule.column_totals_excluding(n);
    EXPECT_NEAR(result.payments[n],
                externality_payment(z, others, result.schedule.row(n)), 1e-9);
  }
}

TEST(Game, TrajectoryRecordsEveryUpdate) {
  GameConfig config;
  config.record_trajectory = true;
  Game game(make_players({10.0, 20.0}), make_cost(), 2, olev::util::kw(50.0), config);
  const GameResult result = game.run();
  ASSERT_TRUE(result.converged);
  ASSERT_EQ(result.trajectory.size(), result.updates);
  // Welfare is (weakly) increasing along asynchronous best responses after
  // the first full cycle.
  for (std::size_t i = 3; i < result.trajectory.size(); ++i) {
    EXPECT_GE(result.trajectory[i].welfare,
              result.trajectory[i - 1].welfare - 1e-6);
  }
  // Updates are numbered 1..K.
  EXPECT_EQ(result.trajectory.front().update, 1u);
  EXPECT_EQ(result.trajectory.back().update, result.updates);
}

TEST(Game, MaxUpdatesBoundsRun) {
  GameConfig config;
  config.max_updates = 5;
  config.epsilon = 0.0;  // never converge
  Game game(make_players({10.0, 20.0}), make_cost(), 2, olev::util::kw(50.0), config);
  const GameResult result = game.run();
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.updates, 5u);
}

TEST(Game, WarmStartKeepsSchedule) {
  Game game(make_players({10.0, 20.0}), make_cost(), 2, olev::util::kw(50.0));
  const GameResult first = game.run();
  ASSERT_TRUE(first.converged);
  // Warm restart from the fixed point: converges immediately (one cycle).
  const GameResult second = game.run(/*warm_start=*/true);
  EXPECT_TRUE(second.converged);
  EXPECT_LE(second.updates, 2u);
  EXPECT_NEAR(second.welfare, first.welfare, 1e-9);
}

TEST(Game, UpdatePlayerOutOfRangeThrows) {
  Game game(make_players({10.0}), make_cost(), 2, olev::util::kw(50.0));
  EXPECT_THROW(game.update_player(5), std::out_of_range);
}

TEST(Game, GreedySchedulerUnbalancesLoad) {
  // The linear-pricing baseline: greedy fill leaves sections unequal
  // (Fig. 5(c) "linear pricing" curve).
  SectionCost linear(std::make_unique<LinearPricing>(0.02), OverloadCost{0.0},
                     olev::util::kw(30.0));
  GameConfig config;
  config.scheduler = SchedulerKind::kGreedy;
  Game game(make_players({60.0, 60.0}, 50.0), linear, 4, olev::util::kw(50.0), config);
  const GameResult result = game.run();
  ASSERT_TRUE(result.converged);
  EXPECT_LT(result.congestion.jain_fairness, 0.9);
  // First sections saturated at the cap, later sections idle.
  EXPECT_GT(result.schedule.column_total(0), result.schedule.column_total(3));
}

TEST(Game, GreedyScalarRequestSolvesLinearFoc) {
  // Under V = beta x the baseline best response solves U'(p) = beta.
  SectionCost linear(std::make_unique<LinearPricing>(0.5), OverloadCost{0.0},
                     olev::util::kw(1000.0));
  GameConfig config;
  config.scheduler = SchedulerKind::kGreedy;
  Game game(make_players({10.0}, 500.0), linear, 3, olev::util::kw(50.0), config);
  const GameResult result = game.run();
  // w/(1+p) = beta -> p = w/beta - 1 = 19.
  EXPECT_NEAR(result.requests[0], 19.0, 1e-6);
}

TEST(Game, PathMaskConfinesAllocation) {
  auto players = make_players({20.0, 20.0});
  players[0].allowed_sections = {true, true, false, false};
  players[1].allowed_sections = {false, false, true, true};
  Game game(std::move(players), make_cost(), 4, olev::util::kw(50.0));
  const GameResult result = game.run();
  ASSERT_TRUE(result.converged);
  // Each player's power stays on its own path.
  EXPECT_DOUBLE_EQ(result.schedule.at(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(result.schedule.at(0, 3), 0.0);
  EXPECT_DOUBLE_EQ(result.schedule.at(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(result.schedule.at(1, 1), 0.0);
  EXPECT_GT(result.requests[0], 0.0);
  EXPECT_GT(result.requests[1], 0.0);
  // Balance holds within each admissible pair.
  EXPECT_NEAR(result.schedule.at(0, 0), result.schedule.at(0, 1), 1e-6);
  EXPECT_NEAR(result.schedule.at(1, 2), result.schedule.at(1, 3), 1e-6);
}

TEST(Game, OverlappingMasksStillConverge) {
  auto players = make_players({15.0, 25.0, 10.0});
  players[0].allowed_sections = {true, true, false};
  players[1].allowed_sections = {false, true, true};
  // player 2: unrestricted (empty mask).
  Game game(std::move(players), make_cost(), 3, olev::util::kw(50.0));
  const GameResult result = game.run();
  EXPECT_TRUE(result.converged);
  EXPECT_DOUBLE_EQ(result.schedule.at(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(result.schedule.at(1, 0), 0.0);
}

TEST(Game, MaskValidation) {
  auto players = make_players({10.0});
  players[0].allowed_sections = {true};  // wrong length for 3 sections
  EXPECT_THROW(Game(std::move(players), make_cost(), 3, olev::util::kw(50.0)),
               std::invalid_argument);
  auto blocked = make_players({10.0});
  blocked[0].allowed_sections = {false, false, false};
  EXPECT_THROW(Game(std::move(blocked), make_cost(), 3, olev::util::kw(50.0)),
               std::invalid_argument);
}

TEST(Game, CurrentMetricsAccessors) {
  Game game(make_players({10.0, 20.0}), make_cost(), 2, olev::util::kw(50.0));
  (void)game.run();
  EXPECT_GT(game.current_welfare(), 0.0);
  EXPECT_GT(game.current_congestion().mean, 0.0);
}

TEST(CacheCounters, RatiosAreZeroWhenEmptyAndBoundedOtherwise) {
  CacheCounters counters;
  EXPECT_DOUBLE_EQ(counters.response_hit_ratio(), 0.0);
  EXPECT_DOUBLE_EQ(counters.section_reuse_ratio(), 0.0);

  counters.response_cache_hits = 3;
  counters.response_recomputes = 1;
  counters.section_cost_reuses = 1;
  counters.section_cost_refreshes = 3;
  EXPECT_DOUBLE_EQ(counters.response_hit_ratio(), 0.75);
  EXPECT_DOUBLE_EQ(counters.section_reuse_ratio(), 0.25);

  counters.reset();
  EXPECT_EQ(counters.response_cache_hits, 0u);
  EXPECT_EQ(counters.section_cost_refreshes, 0u);
  EXPECT_DOUBLE_EQ(counters.response_hit_ratio(), 0.0);
}

TEST(CacheCounters, GamePopulatesRatios) {
  Game game(make_players({10.0, 20.0, 30.0}), make_cost(), 3,
            olev::util::kw(50.0));
  // Updating the same player twice with no interleaved update leaves its b
  // vector untouched, so the second call MUST be a response-cache hit.
  (void)game.update_player(0);
  (void)game.update_player(0);
  const CacheCounters& counters = game.cache_counters();
  EXPECT_EQ(counters.response_recomputes, 1u);
  EXPECT_EQ(counters.response_cache_hits, 1u);
  EXPECT_DOUBLE_EQ(counters.response_hit_ratio(), 0.5);
  EXPECT_LE(counters.section_reuse_ratio(), 1.0);
}

}  // namespace
}  // namespace olev::core
