#include "core/hetero_game.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <vector>

namespace olev::core {
namespace {

SectionCost make_cost(double cap) {
  return SectionCost(std::make_unique<NonlinearPricing>(8.0, 0.875, cap),
                     OverloadCost{1.5}, olev::util::kw(cap));
}

std::vector<PlayerSpec> make_players(const std::vector<double>& weights,
                                     double p_max = 200.0) {
  std::vector<PlayerSpec> players;
  for (double w : weights) {
    PlayerSpec player;
    player.satisfaction = std::make_unique<LogSatisfaction>(w);
    player.p_max = olev::util::kw(p_max);
    players.push_back(std::move(player));
  }
  return players;
}

std::vector<SectionCost> uniform_costs(std::size_t count, double cap) {
  std::vector<SectionCost> costs;
  for (std::size_t c = 0; c < count; ++c) costs.push_back(make_cost(cap));
  return costs;
}

TEST(HeteroGame, Validation) {
  EXPECT_THROW(HeteroGame({}, uniform_costs(2, 40.0), {50.0, 50.0}),
               std::invalid_argument);
  EXPECT_THROW(HeteroGame(make_players({10.0}), uniform_costs(2, 40.0), {50.0}),
               std::invalid_argument);
  std::vector<SectionCost> linear;
  linear.emplace_back(std::make_unique<LinearPricing>(1.0), OverloadCost{0.0},
                      olev::util::kw(40.0));
  EXPECT_THROW(HeteroGame(make_players({10.0}), std::move(linear), {50.0}),
               std::invalid_argument);
  auto masked = make_players({10.0});
  masked[0].allowed_sections = {true, true};
  EXPECT_THROW(HeteroGame(std::move(masked), uniform_costs(2, 40.0),
                          {50.0, 50.0}),
               std::invalid_argument);
}

TEST(HeteroGame, UniformSectionsMatchGame) {
  const std::vector<double> weights{10.0, 25.0, 18.0};
  HeteroGame hetero(make_players(weights), uniform_costs(3, 40.0),
                    {50.0, 50.0, 50.0});
  const HeteroGameResult hetero_result = hetero.run();
  ASSERT_TRUE(hetero_result.converged);

  Game classic(make_players(weights), make_cost(40.0), 3, olev::util::kw(50.0));
  const GameResult classic_result = classic.run();
  ASSERT_TRUE(classic_result.converged);

  EXPECT_NEAR(hetero_result.welfare, classic_result.welfare, 1e-3);
  for (std::size_t n = 0; n < weights.size(); ++n) {
    EXPECT_NEAR(hetero_result.requests[n], classic_result.requests[n], 1e-2)
        << "player " << n;
  }
}

TEST(HeteroGame, ConvergesWithMixedCaps) {
  std::vector<SectionCost> costs;
  costs.push_back(make_cost(20.0));
  costs.push_back(make_cost(45.0));
  costs.push_back(make_cost(70.0));
  HeteroGame game(make_players({15.0, 30.0, 22.0, 12.0}), std::move(costs),
                  {25.0, 55.0, 85.0});
  const HeteroGameResult result = game.run();
  EXPECT_TRUE(result.converged);
  EXPECT_GT(result.welfare, 0.0);
}

TEST(HeteroGame, MarginalPricesEqualizeAcrossLoadedSections) {
  // The KKT signature of the generalized fill: every section carrying load
  // shows the same marginal price at the fixed point.
  std::vector<SectionCost> costs;
  costs.push_back(make_cost(20.0));
  costs.push_back(make_cost(45.0));
  costs.push_back(make_cost(70.0));
  HeteroGame game(make_players({20.0, 35.0}), std::move(costs),
                  {25.0, 55.0, 85.0});
  const HeteroGameResult result = game.run();
  ASSERT_TRUE(result.converged);
  double reference = -1.0;
  for (std::size_t c = 0; c < 3; ++c) {
    if (result.schedule.column_total(c) > 1e-6) {
      if (reference < 0.0) {
        reference = result.marginal_prices[c];
      } else {
        EXPECT_NEAR(result.marginal_prices[c], reference, 1e-3 * reference)
            << "section " << c;
      }
    }
  }
  ASSERT_GE(reference, 0.0);
}

TEST(HeteroGame, LoadsAreNotEqualizedAcrossMixedSections) {
  // Equal marginal price != equal load: the big-cap section carries more.
  std::vector<SectionCost> costs;
  costs.push_back(make_cost(15.0));
  costs.push_back(make_cost(90.0));
  HeteroGame game(make_players({25.0, 25.0}), std::move(costs), {20.0, 100.0});
  const HeteroGameResult result = game.run();
  ASSERT_TRUE(result.converged);
  EXPECT_GT(result.schedule.column_total(1),
            result.schedule.column_total(0) * 1.5);
}

TEST(HeteroGame, FeasibilityInvariants) {
  std::vector<SectionCost> costs;
  costs.push_back(make_cost(30.0));
  costs.push_back(make_cost(60.0));
  const double p_max = 35.0;
  HeteroGame game(make_players({18.0, 27.0, 9.0}, p_max), std::move(costs),
                  {35.0, 70.0});
  const HeteroGameResult result = game.run();
  ASSERT_TRUE(result.converged);
  for (std::size_t n = 0; n < 3; ++n) {
    EXPECT_LE(result.requests[n], p_max + 1e-6);
    EXPECT_GE(result.payments[n], -1e-9);
    for (double v : result.schedule.row(n)) EXPECT_GE(v, -1e-12);
  }
}

TEST(HeteroGame, RandomOrderSameEquilibrium) {
  auto build = [](UpdateOrder order) {
    std::vector<SectionCost> costs;
    costs.push_back(make_cost(25.0));
    costs.push_back(make_cost(55.0));
    GameConfig config;
    config.order = order;
    config.max_updates = 100000;
    return HeteroGame(make_players({14.0, 33.0}), std::move(costs),
                      {30.0, 60.0}, config);
  };
  HeteroGame a = build(UpdateOrder::kRoundRobin);
  HeteroGame b = build(UpdateOrder::kUniformRandom);
  const auto ra = a.run();
  const auto rb = b.run();
  ASSERT_TRUE(ra.converged);
  ASSERT_TRUE(rb.converged);
  for (std::size_t n = 0; n < 2; ++n) {
    EXPECT_NEAR(ra.requests[n], rb.requests[n], 1e-2);
  }
}

}  // namespace
}  // namespace olev::core
