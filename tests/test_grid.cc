#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "grid/ancillary.h"
#include "grid/control_period.h"
#include "grid/lbmp.h"
#include "grid/load_model.h"
#include "grid/nyiso_day.h"

namespace olev::grid {
namespace {

// ---------- control periods ----------

TEST(ControlPeriod, TraitsTableIsConsistent) {
  for (auto period : {ControlPeriod::kBaseload, ControlPeriod::kPeak,
                      ControlPeriod::kSpinningReserve,
                      ControlPeriod::kFrequencyControl}) {
    const auto& t = traits(period);
    EXPECT_EQ(t.period, period);
    EXPECT_FALSE(t.name.empty());
    EXPECT_GT(t.response_time_s, 0.0);
    EXPECT_GT(t.typical_dispatch_s, 0.0);
  }
}

TEST(ControlPeriod, AncillaryFlagMatchesPaper) {
  // "spinning reserves and frequency control are ... 'ancillary services'".
  EXPECT_TRUE(traits(ControlPeriod::kSpinningReserve).ancillary);
  EXPECT_TRUE(traits(ControlPeriod::kFrequencyControl).ancillary);
  EXPECT_FALSE(traits(ControlPeriod::kBaseload).ancillary);
  EXPECT_FALSE(traits(ControlPeriod::kPeak).ancillary);
}

TEST(ControlPeriod, ReserveResponseIsFasterThanPeak) {
  EXPECT_LT(traits(ControlPeriod::kSpinningReserve).response_time_s,
            traits(ControlPeriod::kPeak).response_time_s);
  EXPECT_LT(traits(ControlPeriod::kFrequencyControl).response_time_s,
            traits(ControlPeriod::kSpinningReserve).response_time_s);
}

TEST(ControlPeriod, ClassifyByLoadAndDeficiency) {
  EXPECT_EQ(classify(olev::util::mw(4000.0), olev::util::mw(0.0), olev::util::mw(6000.0), olev::util::mw(100.0)), ControlPeriod::kBaseload);
  EXPECT_EQ(classify(olev::util::mw(6500.0), olev::util::mw(0.0), olev::util::mw(6000.0), olev::util::mw(100.0)), ControlPeriod::kPeak);
  EXPECT_EQ(classify(olev::util::mw(5000.0), olev::util::mw(150.0), olev::util::mw(6000.0), olev::util::mw(100.0)),
            ControlPeriod::kSpinningReserve);
  EXPECT_EQ(classify(olev::util::mw(5000.0), olev::util::mw(-150.0), olev::util::mw(6000.0), olev::util::mw(100.0)),
            ControlPeriod::kSpinningReserve);
}

// ---------- load model ----------

TEST(LoadModel, ShapeIsNormalizedAndPeriodic) {
  const auto shape = weekday_load_shape();
  EXPECT_DOUBLE_EQ(shape.min_value(), 0.0);
  EXPECT_DOUBLE_EQ(shape.max_value(), 1.0);
  EXPECT_NEAR(shape(1.0), shape(25.0), 1e-12);
}

TEST(LoadModel, TroughAndPeakAtPublishedHours) {
  const auto shape = weekday_load_shape();
  EXPECT_DOUBLE_EQ(shape(4.0), 0.0);   // overnight trough
  EXPECT_DOUBLE_EQ(shape(19.0), 1.0);  // evening peak
}

TEST(LoadModel, ForecastSpansPaperRange) {
  LoadModelConfig config;
  EXPECT_NEAR(forecast_load_mw(config, olev::util::hours(4.0)), config.min_load_mw, 1e-9);
  EXPECT_NEAR(forecast_load_mw(config, olev::util::hours(19.0)), config.max_load_mw, 1e-9);
}

TEST(LoadModel, DayHasExpectedTickCount) {
  LoadModelConfig config;
  config.tick_minutes = 5.0;
  EXPECT_EQ(generate_load_day(config).size(), 288u);
  config.tick_minutes = 60.0;
  EXPECT_EQ(generate_load_day(config).size(), 24u);
}

TEST(LoadModel, DeficiencyRespectsSoftCap) {
  LoadModelConfig config;
  const auto day = generate_load_day(config);
  for (const auto& tick : day) {
    EXPECT_LE(std::abs(tick.deficiency_mw), config.deficiency_cap_mw + 1e-9);
    EXPECT_NEAR(tick.actual_mw, tick.forecast_mw + tick.deficiency_mw, 1e-9);
  }
}

TEST(LoadModel, DeterministicForFixedSeed) {
  LoadModelConfig config;
  const auto a = generate_load_day(config);
  const auto b = generate_load_day(config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].actual_mw, b[i].actual_mw);
  }
}

TEST(LoadModel, DifferentSeedsDiffer) {
  LoadModelConfig a_config;
  LoadModelConfig b_config;
  b_config.seed = a_config.seed + 1;
  const auto a = generate_load_day(a_config);
  const auto b = generate_load_day(b_config);
  double diff = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    diff += std::abs(a[i].deficiency_mw - b[i].deficiency_mw);
  }
  EXPECT_GT(diff, 1.0);
}

TEST(LoadModel, DeficiencyIsNonTrivial) {
  // The point of Fig. 2(b): deficiency exists.  The AR(1) process should
  // produce meaningful excursions over a day.
  const auto day = generate_load_day(LoadModelConfig{});
  double worst = 0.0;
  for (const auto& tick : day) worst = std::max(worst, std::abs(tick.deficiency_mw));
  EXPECT_GT(worst, 30.0);
}

// ---------- LBMP ----------

TEST(Lbmp, WithinPublishedBand) {
  LoadModelConfig load_config;
  LbmpConfig price_config;
  const auto day = generate_load_day(load_config);
  for (const auto& tick : day) {
    const double price = lbmp(price_config, load_config, tick);
    EXPECT_GE(price, price_config.min_price);
    EXPECT_LE(price, price_config.max_price);
  }
}

TEST(Lbmp, IncreasingInLoad) {
  LoadModelConfig load_config;
  LbmpConfig price_config;
  LoadTick low{4.0, 4200.0, 4200.0, 0.0};
  LoadTick high{19.0, 6500.0, 6500.0, 0.0};
  EXPECT_LT(lbmp(price_config, load_config, low),
            lbmp(price_config, load_config, high));
}

TEST(Lbmp, PositiveDeficiencyAddsScarcityPremium) {
  LoadModelConfig load_config;
  LbmpConfig price_config;
  LoadTick base{12.0, 5500.0, 5500.0, 0.0};
  LoadTick stressed = base;
  stressed.deficiency_mw = 150.0;
  stressed.actual_mw = base.actual_mw;  // isolate the deficiency term
  EXPECT_GT(lbmp(price_config, load_config, stressed),
            lbmp(price_config, load_config, base));
}

TEST(Lbmp, NegativeDeficiencyNoPremium) {
  LoadModelConfig load_config;
  LbmpConfig price_config;
  LoadTick base{12.0, 5500.0, 5500.0, 0.0};
  LoadTick surplus = base;
  surplus.deficiency_mw = -150.0;
  EXPECT_DOUBLE_EQ(lbmp(price_config, load_config, surplus),
                   lbmp(price_config, load_config, base));
}

TEST(Lbmp, DaySeriesAligned) {
  LoadModelConfig load_config;
  LbmpConfig price_config;
  const auto day = generate_load_day(load_config);
  const auto prices = lbmp_day(price_config, load_config, day);
  EXPECT_EQ(prices.size(), day.size());
}

// ---------- ancillary ----------

TEST(Ancillary, PricesArePositive) {
  LoadModelConfig load_config;
  AncillaryConfig config;
  const auto day = generate_load_day(load_config);
  for (const auto& tick : day) {
    const auto prices = ancillary_prices(config, load_config, tick);
    EXPECT_GT(prices.sync10, 0.0);
    EXPECT_GT(prices.regulation_capacity, 0.0);
    EXPECT_GT(prices.regulation_movement, 0.0);
    EXPECT_NEAR(prices.total(), prices.sync10 + prices.regulation_capacity +
                                    prices.regulation_movement,
                1e-12);
  }
}

TEST(Ancillary, PeakHoursAreMoreExpensive) {
  LoadModelConfig load_config;
  AncillaryConfig config;
  LoadTick trough{4.0, load_config.min_load_mw, load_config.min_load_mw, 0.0};
  LoadTick peak{19.0, load_config.max_load_mw, load_config.max_load_mw, 0.0};
  EXPECT_LT(ancillary_prices(config, load_config, trough).total(),
            ancillary_prices(config, load_config, peak).total());
}

TEST(Ancillary, DeficiencyRaisesPrices) {
  LoadModelConfig load_config;
  AncillaryConfig config;
  LoadTick calm{12.0, 5000.0, 5000.0, 0.0};
  LoadTick stressed{12.0, 5000.0, 5000.0, 120.0};
  EXPECT_LT(ancillary_prices(config, load_config, calm).total(),
            ancillary_prices(config, load_config, stressed).total());
}

TEST(Ancillary, DayMeanNearPaperValue) {
  // The paper reports NYISO paid $13.41 on average for ancillary services.
  const auto day = NyisoDay::generate();
  EXPECT_NEAR(day.mean_ancillary_total(), 13.41, 4.0);
}

// ---------- NyisoDay aggregate ----------

TEST(NyisoDay, GeneratesAlignedSeries) {
  const auto day = NyisoDay::generate();
  EXPECT_EQ(day.tick_count(), 288u);
  EXPECT_EQ(day.lbmp_series().size(), 288u);
  EXPECT_EQ(day.ancillary_series().size(), 288u);
}

TEST(NyisoDay, LoadStaysInPaperRange) {
  const auto day = NyisoDay::generate();
  for (const auto& tick : day.ticks()) {
    EXPECT_GT(tick.actual_mw, 3800.0);
    EXPECT_LT(tick.actual_mw, 6900.0);
  }
}

TEST(NyisoDay, HourLookupWraps) {
  const auto day = NyisoDay::generate();
  EXPECT_DOUBLE_EQ(day.tick_at(25.0).hour, day.tick_at(1.0).hour);
  EXPECT_DOUBLE_EQ(day.lbmp_at(-1.0), day.lbmp_at(23.0));
}

TEST(NyisoDay, MaxDeficiencyNearPaperMax) {
  const auto day = NyisoDay::generate();
  EXPECT_GT(day.max_abs_deficiency(), 50.0);
  EXPECT_LE(day.max_abs_deficiency(), 167.8 + 1e-9);
}

TEST(NyisoDay, PeakLbmpExceedsTroughLbmp) {
  const auto day = NyisoDay::generate();
  EXPECT_GT(day.lbmp_at(19.0), day.lbmp_at(4.0));
}

TEST(NyisoDay, ControlPeriodVariesOverDay) {
  const auto day = NyisoDay::generate();
  EXPECT_EQ(day.control_period_at(4.0), ControlPeriod::kBaseload);
  // At peak the period is either peak or reserve depending on the deficiency
  // draw -- never baseload.
  EXPECT_NE(day.control_period_at(19.0), ControlPeriod::kBaseload);
}

}  // namespace
}  // namespace olev::grid
