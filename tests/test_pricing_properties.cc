// Parameterized property sweep over the pricing calculus: for a grid of
// (beta, alpha, cap, overload-weight) configurations, verify the analytic
// identities every other module relies on -- Z's convexity, the derivative
// definitions, the envelope-theorem identity, and best-response optimality.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "core/best_response.h"
#include "core/payment.h"
#include "util/rng.h"

namespace olev::core {
namespace {

struct PricingParams {
  double beta;
  double alpha;
  double cap;
  double overload_weight;
};

std::string params_name(const ::testing::TestParamInfo<PricingParams>& info) {
  auto clean = [](double v) {
    std::string s = std::to_string(v);
    for (char& c : s) {
      if (c == '.' || c == '-') c = '_';
    }
    return s;
  };
  return "b" + clean(info.param.beta) + "_a" + clean(info.param.alpha) + "_c" +
         clean(info.param.cap) + "_w" + clean(info.param.overload_weight);
}

class PricingCalculus : public ::testing::TestWithParam<PricingParams> {
 protected:
  SectionCost cost() const {
    const auto& p = GetParam();
    return SectionCost(
        std::make_unique<NonlinearPricing>(p.beta, p.alpha, p.cap),
        OverloadCost{p.overload_weight}, olev::util::kw(p.cap));
  }

  std::vector<double> loads(std::uint64_t seed) const {
    util::Rng rng(seed);
    std::vector<double> b(static_cast<std::size_t>(rng.uniform_int(1, 8)));
    for (double& v : b) v = rng.uniform(0.0, GetParam().cap);
    return b;
  }
};

TEST_P(PricingCalculus, ZIsStrictlyConvexAndIncreasing) {
  const SectionCost z = cost();
  const double cap = GetParam().cap;
  double prev_value = z.value(0.0);
  double prev_slope = z.derivative(0.0);
  for (double x = cap / 16.0; x <= 2.0 * cap; x += cap / 16.0) {
    EXPECT_GT(z.value(x), prev_value) << "x=" << x;
    EXPECT_GT(z.derivative(x), prev_slope) << "x=" << x;
    prev_value = z.value(x);
    prev_slope = z.derivative(x);
  }
}

TEST_P(PricingCalculus, DerivativeMatchesFiniteDifference) {
  const SectionCost z = cost();
  const double cap = GetParam().cap;
  const double h = 1e-6 * cap;
  // Avoid straddling the hinge at x = cap where Z is only C^1.
  for (double x : {0.1 * cap, 0.6 * cap, 1.4 * cap}) {
    const double numeric = (z.value(x + h) - z.value(x - h)) / (2.0 * h);
    EXPECT_NEAR(z.derivative(x), numeric,
                1e-4 * std::max(1.0, std::abs(numeric)))
        << "x=" << x;
  }
}

TEST_P(PricingCalculus, DerivativeInverseIsRightInverse) {
  const SectionCost z = cost();
  const double cap = GetParam().cap;
  for (double x : {0.0, 0.3 * cap, cap, 1.7 * cap}) {
    EXPECT_NEAR(z.derivative_inverse(z.derivative(x)), x, 1e-4 * (1.0 + x))
        << "x=" << x;
  }
}

TEST_P(PricingCalculus, PaymentIsUnbiasedAndIncreasing) {
  const SectionCost z = cost();
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const auto b = loads(seed);
    EXPECT_DOUBLE_EQ(payment_of_total(z, b, olev::util::kw(0.0)), 0.0);
    double prev = 0.0;
    for (double total = 0.2 * GetParam().cap; total <= 2.0 * GetParam().cap;
         total += 0.2 * GetParam().cap) {
      const double payment = payment_of_total(z, b, olev::util::kw(total));
      EXPECT_GT(payment, prev) << "seed " << seed << " total " << total;
      prev = payment;
    }
  }
}

TEST_P(PricingCalculus, EnvelopeIdentity) {
  // Psi'(p) == Z'(lambda*(p)) for every configuration.
  const SectionCost z = cost();
  const double cap = GetParam().cap;
  for (std::uint64_t seed : {4ULL, 5ULL}) {
    const auto b = loads(seed);
    const double h = 1e-5 * cap;
    for (double total : {0.25 * cap, 0.9 * cap, 1.6 * cap}) {
      const double numeric = (payment_of_total(z, b, olev::util::kw(total + h)) -
                              payment_of_total(z, b, olev::util::kw(total - h))) /
                             (2.0 * h);
      EXPECT_NEAR(payment_derivative(z, b, olev::util::kw(total)), numeric,
                  2e-3 * std::max(1.0, numeric))
          << "seed " << seed << " total " << total;
    }
  }
}

TEST_P(PricingCalculus, BestResponseIsGloballyOptimal) {
  const SectionCost z = cost();
  const LogSatisfaction u(0.5 * GetParam().beta + 2.0);
  for (std::uint64_t seed : {6ULL, 7ULL}) {
    const auto b = loads(seed);
    const double p_max = 1.5 * GetParam().cap;
    const BestResponse response = best_response(u, z, b, olev::util::kw(p_max));
    for (int i = 0; i <= 40; ++i) {
      const double p = p_max * i / 40.0;
      const double utility = u.value(p) - payment_of_total(z, b, olev::util::kw(p));
      EXPECT_LE(utility, response.utility + 1e-6)
          << "seed " << seed << " p=" << p;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PricingCalculus,
    ::testing::Values(PricingParams{1.0, 0.875, 40.0, 1.0},
                      PricingParams{16.0, 0.875, 67.6, 0.5},
                      PricingParams{5.0, 0.0, 25.0, 2.0},
                      PricingParams{50.0, 2.0, 100.0, 0.1},
                      PricingParams{0.05, 0.5, 10.0, 5.0},
                      PricingParams{244.04, 0.875, 56.4, 1.0}),
    params_name);

}  // namespace
}  // namespace olev::core
