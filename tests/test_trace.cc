#include "core/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <thread>

#include "obs/report.h"
#include "util/sysinfo.h"

namespace olev::core {
namespace {

GameResult run_small_game(bool record_trajectory) {
  std::vector<PlayerSpec> players;
  for (double w : {10.0, 20.0}) {
    PlayerSpec player;
    player.satisfaction = std::make_unique<LogSatisfaction>(w);
    player.p_max = olev::util::kw(60.0);
    players.push_back(std::move(player));
  }
  SectionCost cost(std::make_unique<NonlinearPricing>(5.0, 0.875, 40.0),
                   OverloadCost{1.0}, olev::util::kw(40.0));
  GameConfig config;
  config.record_trajectory = record_trajectory;
  Game game(std::move(players), cost, 3, olev::util::kw(50.0), config);
  return game.run();
}

TEST(Trace, ContainsOutcomeFields) {
  const GameResult result = run_small_game(false);
  const std::string json = to_json(result);
  EXPECT_NE(json.find("\"converged\":true"), std::string::npos);
  EXPECT_NE(json.find("\"players\":2"), std::string::npos);
  EXPECT_NE(json.find("\"sections\":3"), std::string::npos);
  EXPECT_NE(json.find("\"requests\":["), std::string::npos);
  EXPECT_NE(json.find("\"jain_fairness\":"), std::string::npos);
  EXPECT_NE(json.find("\"trajectory\":[]"), std::string::npos);
}

TEST(Trace, TrajectoryEntriesSerialized) {
  const GameResult result = run_small_game(true);
  const std::string json = to_json(result);
  EXPECT_NE(json.find("\"trajectory\":[{"), std::string::npos);
  EXPECT_NE(json.find("\"update\":1"), std::string::npos);
  EXPECT_NE(json.find("\"mean_congestion\":"), std::string::npos);
}

TEST(Trace, ScheduleMatrixShape) {
  const GameResult result = run_small_game(false);
  const std::string json = to_json(result);
  // Two rows of three entries each: "schedule":[[a,b,c],[d,e,f]]
  const auto pos = json.find("\"schedule\":[[");
  ASSERT_NE(pos, std::string::npos);
}

TEST(Trace, BalancedJsonBrackets) {
  const GameResult result = run_small_game(true);
  const std::string json = to_json(result);
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

TEST(Trace, SaveJsonWritesFile) {
  const GameResult result = run_small_game(false);
  const std::string path = ::testing::TempDir() + "/olev_trace_test.json";
  save_json(result, path);
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), to_json(result) + "\n");
  std::remove(path.c_str());
  EXPECT_THROW(save_json(result, "/nonexistent_dir_xyz/trace.json"),
               std::runtime_error);
}

TEST(Trace, SaveJsonErrorNamesPathAndErrno) {
  const GameResult result = run_small_game(false);
  try {
    save_json(result, "/nonexistent_dir_xyz/trace.json");
    FAIL() << "save_json should have thrown";
  } catch (const std::runtime_error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("/nonexistent_dir_xyz/trace.json"), std::string::npos)
        << what;
    EXPECT_NE(what.find("No such file"), std::string::npos) << what;
  }
}

TEST(Trace, SweepReportSerializesEveryField) {
  SweepReport report;
  report.scenarios = 4;
  report.threads = 2;
  report.converged = 3;
  report.total_updates = 123;
  report.wall_seconds = 2.0;
  report.scenarios_per_second = 2.0;
  report.response_hit_ratio = 0.25;
  report.section_reuse_ratio = 0.75;
  report.workers.resize(2);
  report.workers[0] = {0, 3, 1.5, 0.75};
  report.workers[1] = {1, 1, 0.5, 0.25};
  const std::vector<double> updates{10.0, 20.0, 30.0, 63.0};
  report.updates_per_scenario =
      obs::bucketize("sweep.updates_per_scenario", {25.0}, updates);

  const std::string json = to_json(report);
  EXPECT_NE(json.find("\"scenarios\":4"), std::string::npos);
  EXPECT_NE(json.find("\"threads\":2"), std::string::npos);
  EXPECT_NE(json.find("\"converged\":3"), std::string::npos);
  EXPECT_NE(json.find("\"response_hit_ratio\":0.25"), std::string::npos);
  // sum(busy) / (threads * wall) = 2.0 / 4.0
  EXPECT_NE(json.find("\"worker_utilization\":0.5"), std::string::npos);
  EXPECT_NE(json.find("\"busy_seconds\":1.5"), std::string::npos);
  EXPECT_NE(json.find("\"bounds\":[25]"), std::string::npos);
  EXPECT_NE(json.find("\"counts\":[2,2]"), std::string::npos);
  EXPECT_NE(json.find("\"sum\":123"), std::string::npos);

  const std::string path = ::testing::TempDir() + "/olev_sweep_report.json";
  save_json(report, path);
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), json + "\n");
  std::remove(path.c_str());
}

TEST(Trace, SweepBenchReportSerializesEveryField) {
  // Regression for the BENCH_sweep.json "hardware_concurrency": 1 bug: the
  // report must carry the affinity-aware CPU count and the thread counts
  // actually swept, and both must survive serialization.
  SweepBenchReport report;
  report.scenarios = 64;
  report.hardware_concurrency = util::available_concurrency();
  report.thread_counts = {1, 2, 4};
  report.bit_identical_across_threads = true;
  report.sweep = {{1, 2.0, 32.0, 1.0}, {2, 1.0, 64.0, 2.0}, {4, 0.5, 128.0, 4.0}};
  report.hot_players = 50;
  report.hot_sections = 100;
  report.hot_updates = 1000;
  report.hot_seconds = 0.25;
  report.hot_updates_per_sec = 4000.0;
  report.hot_caches.response_cache_hits = 7;

  const std::string json = to_json(report);
  EXPECT_NE(json.find("\"scenarios\":64"), std::string::npos);
  EXPECT_NE(json.find("\"hardware_concurrency\":" +
                      std::to_string(report.hardware_concurrency)),
            std::string::npos);
  EXPECT_NE(json.find("\"thread_counts\":[1,2,4]"), std::string::npos);
  EXPECT_NE(json.find("\"bit_identical_across_threads\":true"),
            std::string::npos);
  EXPECT_NE(json.find("\"speedup\":4"), std::string::npos);
  EXPECT_NE(json.find("\"updates_per_sec\":4000"), std::string::npos);
  EXPECT_NE(json.find("\"response_cache_hits\":7"), std::string::npos);

  const std::string path = ::testing::TempDir() + "/olev_bench_sweep.json";
  save_json(report, path);
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), json + "\n");
  std::remove(path.c_str());
}

TEST(Trace, AvailableConcurrencyIsPositiveAndAffinityBounded) {
  const std::size_t available = util::available_concurrency();
  EXPECT_GE(available, 1u);
  // The affinity mask can only restrict, never exceed, the machine's
  // logical CPU count (when the latter is known at all).
  const unsigned hardware = std::thread::hardware_concurrency();
  if (hardware > 0) {
    EXPECT_LE(available, static_cast<std::size_t>(hardware));
  }
}

}  // namespace
}  // namespace olev::core
