// Hostile-bytes suite for the persist codec (mirrors tests/test_frame_fuzz.cc
// for the wire framing): every truncation of a snapshot blob, a seeded sweep
// of single-byte mutations, version/kind/flags skew, and journal tail damage.
// The contract under test: corruption is always detected (throw, or the
// journal's `truncated` flag for record-level damage) and never crashes --
// CI runs this under ASan/UBSan.
#include "persist/codec.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "persist/journal.h"
#include "persist/snapshot.h"
#include "util/rng.h"

namespace olev::persist {
namespace {

struct TempPath {
  explicit TempPath(const std::string& name)
      : path(::testing::TempDir() + "olev_persist_fuzz_" + name) {
    std::remove(path.c_str());
  }
  ~TempPath() { std::remove(path.c_str()); }
  std::string path;
};

ServiceSnapshot sample_snapshot() {
  ServiceSnapshot snapshot;
  snapshot.engine.mode = 0;
  snapshot.engine.players = 4;
  snapshot.engine.sections = 3;
  snapshot.engine.epsilon = 1e-7;
  snapshot.engine.caps_kw = {40.0, 40.0, 40.0, 40.0};
  snapshot.engine.schedule_kw.assign(12, 1.25);
  snapshot.engine.updates = 9;
  snapshot.engine.residual = 0.5;
  snapshot.bound_players = {0, 1, 3};
  return snapshot;
}

std::vector<std::uint8_t> sample_blob() {
  return encode_blob(BlobKind::kSnapshot, encode(sample_snapshot()));
}

void write_raw(const std::string& path, std::span<const std::uint8_t> bytes) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  ASSERT_NE(file, nullptr);
  if (!bytes.empty()) {
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), file), bytes.size());
  }
  ASSERT_EQ(std::fclose(file), 0);
}

// --- snapshot blob: truncation, mutation, skew -------------------------------

TEST(PersistFuzz, EveryTruncationOfASnapshotBlobIsRejected) {
  const std::vector<std::uint8_t> blob = sample_blob();
  // The intact blob decodes; every strict prefix must throw -- the header
  // prefixes from the header fields alone, the payload prefixes from the
  // length/CRC check.
  EXPECT_NO_THROW((void)decode_blob(BlobKind::kSnapshot, blob));
  for (std::size_t length = 0; length < blob.size(); ++length) {
    EXPECT_THROW((void)decode_blob(BlobKind::kSnapshot,
                                   std::span(blob).first(length)),
                 std::runtime_error)
        << "prefix of " << length << " bytes decoded";
  }
}

TEST(PersistFuzz, EverySingleByteMutationIsRejected) {
  const std::vector<std::uint8_t> blob = sample_blob();
  util::Rng rng(2024);
  for (std::size_t offset = 0; offset < blob.size(); ++offset) {
    std::vector<std::uint8_t> mutated = blob;
    // A random non-identity XOR: every byte of the blob participates in
    // either the magic check or the CRC, so any flip must be caught.
    const auto flip = static_cast<std::uint8_t>(
        1 + static_cast<std::uint8_t>(rng.uniform(0.0, 254.0)));
    mutated[offset] ^= flip;
    EXPECT_THROW((void)decode_blob(BlobKind::kSnapshot, mutated),
                 std::runtime_error)
        << "mutation at offset " << offset << " (xor "
        << static_cast<int>(flip) << ") decoded";
  }
}

TEST(PersistFuzz, RandomGarbageNeverDecodes) {
  util::Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    const auto size =
        static_cast<std::size_t>(rng.uniform(0.0, 512.0));
    std::vector<std::uint8_t> garbage(size);
    for (auto& byte : garbage) {
      byte = static_cast<std::uint8_t>(rng.uniform(0.0, 255.999));
    }
    EXPECT_THROW((void)decode_blob(BlobKind::kSnapshot, garbage),
                 std::runtime_error);
  }
}

TEST(PersistFuzz, VersionSkewIsRejectedBeforeThePayload) {
  std::vector<std::uint8_t> blob = sample_blob();
  // Bump the version and fix the CRC so ONLY the version check can reject:
  // a future format must not be misparsed as version 1.
  const std::uint16_t future = kCodecVersion + 1;
  std::memcpy(blob.data() + 8, &future, sizeof(future));
  const std::uint32_t crc = crc32(std::span(blob).subspan(8));
  std::memcpy(blob.data() + 4, &crc, sizeof(crc));
  EXPECT_THROW((void)decode_blob(BlobKind::kSnapshot, blob),
               std::runtime_error);
}

TEST(PersistFuzz, ReservedFlagsMustBeZero) {
  std::vector<std::uint8_t> blob = sample_blob();
  blob[11] = 0x01;
  const std::uint32_t crc = crc32(std::span(blob).subspan(8));
  std::memcpy(blob.data() + 4, &crc, sizeof(crc));
  EXPECT_THROW((void)decode_blob(BlobKind::kSnapshot, blob),
               std::runtime_error);
}

TEST(PersistFuzz, OversizedLengthClaimRejectedFromTheHeaderAlone) {
  // 20 header bytes claiming a 63 MiB payload, no payload present: the
  // decode must reject from the length/size mismatch without allocating.
  std::vector<std::uint8_t> blob = sample_blob();
  blob.resize(kBlobHeaderBytes);
  const std::uint64_t claim = 63ull << 20;
  std::memcpy(blob.data() + 12, &claim, sizeof(claim));
  const std::uint32_t crc = crc32(std::span(blob).subspan(8));
  std::memcpy(blob.data() + 4, &crc, sizeof(crc));
  EXPECT_THROW((void)decode_blob(BlobKind::kSnapshot, blob),
               std::runtime_error);
}

TEST(PersistFuzz, MutatedSnapshotFileFailsToLoad) {
  TempPath file("snapshot_mutated.bin");
  save(file.path, sample_snapshot());
  std::vector<std::uint8_t> bytes = read_file(file.path);
  util::Rng rng(99);
  for (int trial = 0; trial < 32; ++trial) {
    std::vector<std::uint8_t> mutated = bytes;
    const auto offset =
        static_cast<std::size_t>(rng.uniform(0.0, double(bytes.size()) - 0.001));
    mutated[offset] ^= 0x40;
    write_raw(file.path, mutated);
    EXPECT_THROW((void)load(file.path), std::runtime_error)
        << "mutation at offset " << offset << " loaded";
  }
}

// --- journal: header damage throws, tail damage truncates --------------------

std::vector<std::uint8_t> build_journal(const std::string& path,
                                        std::uint64_t records) {
  JournalHeader header;
  header.players = 4;
  header.sections = 3;
  header.epsilon = 1e-9;
  header.caps_kw = {40.0, 40.0, 40.0, 40.0};
  JournalWriter writer(path, header, FsyncPolicy::kNone);
  for (std::uint64_t i = 0; i < records; ++i) {
    JournalRecord record;
    record.ts_us = static_cast<std::int64_t>(i);
    record.player = static_cast<std::uint32_t>(i % 4);
    record.round = i;
    record.total_kw = static_cast<double>(i) * 1.5;
    record.trace_id = i + 1;
    writer.append(record);
  }
  writer.flush();
  return read_file(path);
}

TEST(PersistFuzz, JournalTornTailIsToleratedAtEveryTruncationPoint) {
  TempPath file("journal_torn.bin");
  const std::vector<std::uint8_t> bytes = build_journal(file.path, 10);
  const std::size_t header_bytes = bytes.size() - 10 * kJournalRecordBytes;

  for (std::size_t length = 0; length <= bytes.size(); ++length) {
    write_raw(file.path, std::span(bytes).first(length));
    if (length < header_bytes) {
      // Nothing can be replayed without the engine shape: header damage
      // is a hard error, exactly like a corrupt snapshot.
      EXPECT_THROW((void)read_journal(file.path), std::runtime_error)
          << "journal with " << length << " bytes parsed";
    } else {
      // The torn-tail case a write-ahead log exists for: every intact
      // record survives, the partial one is flagged, nothing throws.
      const JournalData data = read_journal(file.path);
      const std::size_t whole = (length - header_bytes) / kJournalRecordBytes;
      EXPECT_EQ(data.records.size(), whole) << "at length " << length;
      EXPECT_EQ(data.truncated, (length - header_bytes) % kJournalRecordBytes != 0)
          << "at length " << length;
      for (std::size_t i = 0; i < data.records.size(); ++i) {
        EXPECT_EQ(data.records[i].round, i);
      }
    }
  }
}

TEST(PersistFuzz, JournalRecordMutationTruncatesAtTheDamage) {
  TempPath file("journal_mutated.bin");
  const std::vector<std::uint8_t> bytes = build_journal(file.path, 10);
  const std::size_t header_bytes = bytes.size() - 10 * kJournalRecordBytes;

  // Flip one byte inside record 6: records 0..5 survive, the rest are cut
  // (order is the contract -- replay cannot skip a damaged record).
  std::vector<std::uint8_t> mutated = bytes;
  mutated[header_bytes + 6 * kJournalRecordBytes + 17] ^= 0x80;
  write_raw(file.path, mutated);
  const JournalData data = read_journal(file.path);
  EXPECT_TRUE(data.truncated);
  ASSERT_EQ(data.records.size(), 6u);
  for (std::size_t i = 0; i < data.records.size(); ++i) {
    EXPECT_EQ(data.records[i].round, i);
  }
}

TEST(PersistFuzz, JournalHeaderMutationIsAHardError) {
  TempPath file("journal_header_mutated.bin");
  const std::vector<std::uint8_t> bytes = build_journal(file.path, 4);
  const std::size_t header_bytes = bytes.size() - 4 * kJournalRecordBytes;
  util::Rng rng(5);
  for (int trial = 0; trial < 16; ++trial) {
    std::vector<std::uint8_t> mutated = bytes;
    const auto offset = static_cast<std::size_t>(
        rng.uniform(0.0, double(header_bytes) - 0.001));
    mutated[offset] ^= 0x20;
    write_raw(file.path, mutated);
    EXPECT_THROW((void)read_journal(file.path), std::runtime_error)
        << "header mutation at offset " << offset << " parsed";
  }
}

}  // namespace
}  // namespace olev::persist
