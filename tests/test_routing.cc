#include "traffic/routing.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

namespace olev::traffic {
namespace {

SignalProgram half_green() { return SignalProgram::fixed_cycle(30.0, 0.0001, 30.0); }

TEST(ExpectedEdgeTime, FreeFlowWithoutSignal) {
  Network net;
  net.add_edge("a", 300.0, 15.0);
  EXPECT_DOUBLE_EQ(expected_edge_time_s(net, 0), 20.0);
}

TEST(ExpectedEdgeTime, AddsExpectedSignalDelay) {
  // Arterial: interior edge ends at a signal with known red share.
  Network net = Network::arterial(2, 300.0, 15.0, half_green(), 1);
  const double without = 300.0 / 15.0;
  const double with_signal = expected_edge_time_s(net, 0);
  // red ~= 30 of 60 s cycle: E[delay] = 30^2 / (2 * 60) = 7.5 s.
  EXPECT_NEAR(with_signal - without, 7.5, 0.1);
  // Terminal edge has no signal.
  EXPECT_DOUBLE_EQ(expected_edge_time_s(net, 1), without);
}

TEST(ShortestRoute, TrivialSingleEdge) {
  Network net;
  net.add_edge("a", 300.0, 15.0);
  const RouteResult result = shortest_route(net, 0, 0);
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.route, Route{0});
  EXPECT_DOUBLE_EQ(result.travel_time_s, 20.0);
}

TEST(ShortestRoute, FollowsArterial) {
  Network net = Network::arterial(4, 250.0, 12.5, half_green(), 1);
  const RouteResult result = shortest_route(net, 0, 3);
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.route, Route({0, 1, 2, 3}));
  EXPECT_GT(result.travel_time_s, 4 * 20.0);  // includes signal delays
}

TEST(ShortestRoute, UnreachableReturnsNotFound) {
  Network net;
  net.add_edge("a", 100.0, 10.0);
  net.add_edge("b", 100.0, 10.0);  // never connected
  const RouteResult result = shortest_route(net, 0, 1);
  EXPECT_FALSE(result.found);
}

TEST(ShortestRoute, ValidatesArguments) {
  Network net;
  net.add_edge("a", 100.0, 10.0);
  EXPECT_THROW(shortest_route(net, 0, 7), std::out_of_range);
  const std::vector<double> bad_adjust{0.0, 0.0};
  EXPECT_THROW(shortest_route(net, 0, 0, bad_adjust), std::invalid_argument);
}

TEST(GridCity, Shape) {
  Network net = grid_city(3, 3, 200.0, 12.0, half_green());
  // 3x3 nodes: 2*3 horizontal pairs * 2 directions + 2*3 vertical = 24 edges.
  EXPECT_EQ(net.edge_count(), 24u);
  EXPECT_EQ(net.junction_count(), 9u);
  // Every edge ends at a signalized junction.
  for (EdgeId e = 0; e < net.edge_count(); ++e) {
    EXPECT_NE(net.signal_for_edge(e), nullptr) << "edge " << e;
  }
}

TEST(GridCity, RejectsDegenerate) {
  EXPECT_THROW(grid_city(1, 5, 100.0, 10.0, half_green()), std::invalid_argument);
}

TEST(GridCity, RoutesExistBetweenCorners) {
  Network net = grid_city(3, 3, 200.0, 12.0, half_green());
  const EdgeId start = *net.find_edge("e0_0_0_1");
  const EdgeId goal = *net.find_edge("e2_1_2_2");
  const RouteResult result = shortest_route(net, start, goal);
  ASSERT_TRUE(result.found);
  EXPECT_TRUE(net.validate_route(result.route));
  EXPECT_EQ(result.route.front(), start);
  EXPECT_EQ(result.route.back(), goal);
  // Manhattan distance (0,0)->(2,2) needs exactly 4 blocks.
  EXPECT_EQ(result.route.size(), 4u);
}

TEST(GridCity, NoUTurnConnections) {
  Network net = grid_city(2, 2, 200.0, 12.0, half_green());
  const EdgeId forward = *net.find_edge("e0_0_0_1");
  const EdgeId reverse = *net.find_edge("e0_1_0_0");
  for (EdgeId succ : net.successors(forward)) {
    EXPECT_NE(succ, reverse);
  }
}

TEST(ShortestRoute, BonusDivertsRoute) {
  // In a 3x3 grid with symmetric costs there are multiple shortest paths;
  // a charging bonus on one street must pull the route onto it.
  Network net = grid_city(3, 3, 200.0, 12.0, half_green());
  const EdgeId start = *net.find_edge("e0_0_0_1");
  const EdgeId goal = *net.find_edge("e1_2_2_2");
  const EdgeId sweetened = *net.find_edge("e0_1_0_2");

  const RouteResult plain = shortest_route(net, start, goal);
  std::vector<double> adjust(net.edge_count(), 0.0);
  adjust[sweetened] = -15.0;  // 15 s equivalent charging benefit
  const RouteResult lured = shortest_route(net, start, goal, adjust);
  ASSERT_TRUE(plain.found);
  ASSERT_TRUE(lured.found);
  EXPECT_NE(std::find(lured.route.begin(), lured.route.end(), sweetened),
            lured.route.end());
  // The lured route trades clock time for charging: never faster.
  EXPECT_GE(lured.travel_time_s, plain.travel_time_s - 1e-9);
  EXPECT_LE(lured.cost, plain.cost + 1e-9);
}

TEST(ShortestRoute, HugeBonusStillTerminates) {
  // Cost floor keeps Dijkstra sound even when bonuses exceed edge times.
  Network net = grid_city(3, 3, 200.0, 12.0, half_green());
  std::vector<double> adjust(net.edge_count(), -1e9);
  const EdgeId start = *net.find_edge("e0_0_0_1");
  const EdgeId goal = *net.find_edge("e2_1_2_2");
  const RouteResult result = shortest_route(net, start, goal, adjust);
  EXPECT_TRUE(result.found);
  EXPECT_TRUE(net.validate_route(result.route));
}

TEST(GridCity, TwoByTwoSplitsIntoOneWayRings) {
  // Documented property: with U-turns forbidden, a 2x2 grid decomposes into
  // two disjoint one-way rings, so cross-ring routes do not exist.
  Network net = grid_city(2, 2, 200.0, 12.0, half_green());
  const EdgeId ring_a = *net.find_edge("e0_0_0_1");
  const EdgeId ring_b = *net.find_edge("e1_0_1_1");
  EXPECT_FALSE(shortest_route(net, ring_a, ring_b).found);
  // Within a ring every edge reaches every other.
  const EdgeId same_ring = *net.find_edge("e1_1_1_0");
  EXPECT_TRUE(shortest_route(net, ring_a, same_ring).found);
}

TEST(RouteExpectedTime, SumsEdges) {
  Network net = Network::arterial(3, 300.0, 15.0, half_green(), 1);
  const double total = route_expected_time_s(net, {0, 1, 2});
  EXPECT_NEAR(total,
              expected_edge_time_s(net, 0) + expected_edge_time_s(net, 1) +
                  expected_edge_time_s(net, 2),
              1e-12);
}

}  // namespace
}  // namespace olev::traffic
