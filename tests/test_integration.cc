// End-to-end integration: the full Section III pipeline (traffic simulation
// + charging lane + TraCI + grid model) and the Section IV/V pipeline
// (scenario -> game -> schedule) wired together.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/scenario.h"
#include "grid/nyiso_day.h"
#include "traci/traci.h"
#include "traffic/simulation.h"
#include "util/units.h"
#include "wpt/charging_lane.h"

namespace olev {
namespace {

// Flatlands-Avenue-style corridor: 3 segments, signals, NYC demand.
traffic::Simulation make_corridor_sim(std::uint64_t seed = 1) {
  const auto program = traffic::SignalProgram::fixed_cycle(35.0, 4.0, 31.0);
  traffic::Network net =
      traffic::Network::arterial(3, 300.0, util::to_mps(util::mph(30.0)).value(), program, 2);
  traffic::SimulationConfig config;
  config.seed = seed;
  traffic::Simulation sim(std::move(net), config);
  traffic::DemandConfig demand;
  demand.counts = traffic::scale_to_daily_total(
      traffic::nyc_arterial_hourly_counts(), 8000.0);
  sim.add_source(traffic::FlowSource({0, 1, 2}, demand,
                                     traffic::VehicleType::olev()));
  return sim;
}

TEST(Integration, CorridorHourOfTrafficDeliversEnergy) {
  traffic::Simulation sim = make_corridor_sim();
  // 200 m of charging sections just before the first traffic light.
  wpt::ChargingSectionSpec spec;
  spec.length_m = 20.0;
  wpt::ChargingLaneConfig lane_config;
  wpt::ChargingLane lane(
      wpt::ChargingLane::evenly_spaced(0, olev::util::meters(100.0), olev::util::meters(300.0), 10, spec), lane_config);
  sim.add_observer(&lane);

  // Run 07:00-08:00 (traffic ramp); start mid-morning for nonzero demand.
  sim.run_until(3600.0);
  EXPECT_GT(sim.stats().departed, 50u);
  EXPECT_GT(lane.ledger().total_kwh(), 0.1);
  EXPECT_GT(lane.tracked_vehicles(), 10u);
}

TEST(Integration, TrafficLightPlacementBeatsMidRoad) {
  // The paper's Fig. 3(b) claim: sections immediately before a traffic
  // light accumulate more intersection time than mid-road sections, because
  // vehicles queue on top of them.
  traffic::Simulation sim = make_corridor_sim(7);
  traffic::SegmentDetector at_light(0, 240.0, 300.0);  // last 60 m of edge 0
  traffic::SegmentDetector mid_road(0, 120.0, 180.0);  // middle 60 m
  sim.add_observer(&at_light);
  sim.add_observer(&mid_road);
  // Two busy hours, 08:00-10:00.
  sim.run_until(8.0 * 3600.0);
  at_light.reset();
  mid_road.reset();
  sim.run_until(10.0 * 3600.0);
  EXPECT_GT(at_light.total_occupancy_s(), mid_road.total_occupancy_s());
}

TEST(Integration, TraciDrivesCorridorAndSeesOlevs) {
  traffic::Simulation sim = make_corridor_sim(3);
  traci::TraciClient client(sim);
  client.subscribe(traci::Domain::kEdge, "seg0",
                   {traci::Var::kLastStepVehicleNumber});
  // Step through the 08:00 peak.
  client.simulationStepUntil(7.5 * 3600.0);
  std::size_t olevs = 0;
  for (const auto id : client.vehicle_getIDList()) {
    if (client.vehicle_isOLEV(id)) ++olevs;
  }
  EXPECT_GT(client.getDepartedNumber(), 100u);
  EXPECT_GT(olevs, 0u);
  const auto& sub = client.getSubscriptionResults(traci::Domain::kEdge, "seg0");
  ASSERT_TRUE(sub.contains(traci::Var::kLastStepVehicleNumber));
}

TEST(Integration, GridBetaFeedsScenarioGame) {
  // LBMP from the grid model parameterizes the game; peak-hour beta yields
  // costlier power than the overnight trough, so requests shrink.
  core::ScenarioConfig config;
  config.num_olevs = 8;
  config.num_sections = 6;
  config.beta_lbmp = olev::util::Price::per_mwh(0.0);  // sample the NYISO model
  config.seed = 5;
  // Calibrate demand against a fixed reference so the two runs share
  // identical satisfaction weights and caps.
  config.target_degree = 0.5;

  config.hour_of_day = olev::util::hours(4.0);
  core::Scenario trough = core::Scenario::build(config);
  config.hour_of_day = olev::util::hours(19.0);
  core::Scenario peak = core::Scenario::build(config);
  ASSERT_GT(peak.beta_lbmp(), trough.beta_lbmp());

  // Use the *trough-calibrated* players against both prices.
  core::Game cheap = trough.make_game();
  const auto cheap_result = cheap.run();

  std::vector<core::PlayerSpec> players;
  for (std::size_t n = 0; n < trough.p_max().size(); ++n) {
    core::PlayerSpec player;
    player.satisfaction =
        std::make_unique<core::LogSatisfaction>(trough.weights()[n]);
    player.p_max = olev::util::kw(trough.p_max()[n]);
    players.push_back(std::move(player));
  }
  core::Game expensive(std::move(players), peak.cost(), config.num_sections,
                       olev::util::kw(peak.p_line_kw()));
  const auto dear_result = expensive.run();

  ASSERT_TRUE(cheap_result.converged);
  ASSERT_TRUE(dear_result.converged);
  double cheap_total = 0.0;
  double dear_total = 0.0;
  for (double r : cheap_result.requests) cheap_total += r;
  for (double r : dear_result.requests) dear_total += r;
  EXPECT_GT(cheap_total, dear_total);
}

TEST(Integration, DayLongLedgerHourlyShapeFollowsDemand) {
  traffic::Simulation sim = make_corridor_sim(11);
  wpt::ChargingSectionSpec spec;
  wpt::ChargingLane lane(
      wpt::ChargingLane::evenly_spaced(0, olev::util::meters(100.0), olev::util::meters(300.0), 10, spec),
      wpt::ChargingLaneConfig{});
  sim.add_observer(&lane);
  // Simulate 03:00-09:00: the ramp from trough into the AM peak.
  sim.run_until(9.0 * 3600.0);
  const auto hourly = lane.ledger().hourly_totals_kwh();
  // Energy at the 08:00 peak must dominate the 03:00-04:00 trough.
  EXPECT_GT(hourly[8], 4.0 * std::max(hourly[3], 1e-6));
}

TEST(Integration, VelocityReducesHarvestedPower) {
  // Fig. 5 vs Fig. 6 mechanism at the physics level: the same corridor with
  // a higher speed limit harvests less energy per vehicle.
  auto harvest = [](double limit_mph) {
    const auto program = traffic::SignalProgram({{traffic::LightState::kGreen, 1000.0}});
    traffic::Network net = traffic::Network::arterial(
        1, 500.0, util::to_mps(util::mph(limit_mph)).value(), program, 1);
    traffic::SimulationConfig config;
    config.deterministic = true;
    traffic::Simulation sim(std::move(net), config);
    wpt::ChargingSectionSpec spec;
    wpt::ChargingLane lane(
        wpt::ChargingLane::evenly_spaced(0, olev::util::meters(100.0), olev::util::meters(400.0), 5, spec),
        wpt::ChargingLaneConfig{});
    sim.add_observer(&lane);
    traffic::Vehicle vehicle;
    vehicle.type = traffic::VehicleType::olev();
    vehicle.type.max_speed_mps = 100.0;
    vehicle.route = {0};
    vehicle.is_olev = true;
    EXPECT_TRUE(sim.try_insert(vehicle));
    sim.run_until(120.0);
    const double per_vehicle = lane.ledger().total_kwh();
    EXPECT_GT(per_vehicle, 0.0);
    return per_vehicle;
  };
  EXPECT_GT(harvest(60.0), harvest(80.0));
}

}  // namespace
}  // namespace olev
