#include "util/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace olev::util {
namespace {

TEST(JsonEscape, PassThroughAndSpecials) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(json_escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonEscape, NonAsciiAndMalformedBytesStayParseable) {
  // util::json_escape delegates to obs::json_escape: UTF-8 becomes \uXXXX
  // escapes and malformed bytes become U+FFFD, so scenario labels with
  // accents or stray bytes can never corrupt an exported trace.
  EXPECT_EQ(json_escape("caf\xc3\xa9"), "caf\\u00e9");
  EXPECT_EQ(json_escape(std::string(1, '\x7f')), "\\u007f");
  EXPECT_EQ(json_escape(std::string(1, '\x80')), "\\ufffd");
}

TEST(JsonWriter, EmptyContainers) {
  {
    JsonWriter json;
    json.begin_object().end_object();
    EXPECT_EQ(json.str(), "{}");
  }
  {
    JsonWriter json;
    json.begin_array().end_array();
    EXPECT_EQ(json.str(), "[]");
  }
}

TEST(JsonWriter, FlatObject) {
  JsonWriter json;
  json.begin_object();
  json.key("a").value(std::int64_t{1});
  json.key("b").value(2.5);
  json.key("c").value(true);
  json.key("d").value("text");
  json.key("e").null();
  json.end_object();
  EXPECT_EQ(json.str(), R"({"a":1,"b":2.5,"c":true,"d":"text","e":null})");
}

TEST(JsonWriter, ArraysAndNesting) {
  JsonWriter json;
  json.begin_object();
  json.key("xs").value(std::vector<double>{1.0, 2.0, 3.0});
  json.key("nested").begin_object();
  json.key("inner").begin_array();
  json.value(std::int64_t{1});
  json.begin_object().key("k").value("v").end_object();
  json.end_array();
  json.end_object();
  json.end_object();
  EXPECT_EQ(json.str(),
            R"({"xs":[1,2,3],"nested":{"inner":[1,{"k":"v"}]}})");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  JsonWriter json;
  json.begin_array();
  json.value(std::numeric_limits<double>::quiet_NaN());
  json.value(std::numeric_limits<double>::infinity());
  json.value(1.5);
  json.end_array();
  EXPECT_EQ(json.str(), "[null,null,1.5]");
}

TEST(JsonWriter, StringEscapingInValuesAndKeys) {
  JsonWriter json;
  json.begin_object();
  json.key("quo\"te").value("va\\lue");
  json.end_object();
  EXPECT_EQ(json.str(), R"({"quo\"te":"va\\lue"})");
}

TEST(JsonWriter, TopLevelArrayOfObjects) {
  JsonWriter json;
  json.begin_array();
  for (int i = 0; i < 2; ++i) {
    json.begin_object().key("i").value(static_cast<std::int64_t>(i)).end_object();
  }
  json.end_array();
  EXPECT_EQ(json.str(), R"([{"i":0},{"i":1}])");
}

}  // namespace
}  // namespace olev::util
