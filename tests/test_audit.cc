// The runtime invariant auditor (src/util/audit.h) in both build flavors.
//
// Degenerate solver inputs are the cases most likely to make a *correct*
// auditor fire spuriously -- zero total requests, all-masked sections,
// duplicate-minimum loads sitting exactly on the water level -- so each one
// runs here with the auditor armed (in -DOLEV_AUDIT=ON builds) and must
// complete with zero firings.  The plumbing tests (fail/handler/counter)
// compile in every flavor because the audit support code is always built;
// only the check sites vanish in non-audit builds.

#include "util/audit.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "util/sync.h"

#include "core/cost.h"
#include "core/game.h"
#include "core/satisfaction.h"
#include "core/water_filling.h"

namespace olev {
namespace {

namespace audit = util::audit;
using core::GameConfig;
using core::PlayerSpec;
using core::SortedLoads;
using core::WaterFillResult;

core::SectionCost make_cost(double cap_kw = 100.0) {
  return core::SectionCost(
      std::make_unique<core::NonlinearPricing>(16.0, 0.875, 100.0),
      core::OverloadCost{1.0}, olev::util::kw(cap_kw));
}

// --- auditor plumbing (both flavors) ---------------------------------------

TEST(Audit, FailThrowsAuditFailureWithContext) {
  audit::reset_firings();
  try {
    audit::fail("sum == total", "water_filling.cc", 42, "sum=1 total=2");
    FAIL() << "audit::fail returned";
  } catch (const audit::AuditFailure& failure) {
    const std::string message = failure.what();
    EXPECT_NE(message.find("sum == total"), std::string::npos);
    EXPECT_NE(message.find("water_filling.cc:42"), std::string::npos);
    EXPECT_NE(message.find("sum=1 total=2"), std::string::npos);
  }
  EXPECT_EQ(audit::firings(), 1u);
  audit::reset_firings();
}

TEST(Audit, HandlerObservesFailureButCannotResume) {
  static std::string seen;
  seen.clear();
  audit::reset_firings();
  const audit::Handler previous =
      audit::set_handler(+[](const std::string& message) { seen = message; });
  // Even a handler that returns must not resume the violated code path.
  EXPECT_THROW(audit::fail("x >= 0", "game.cc", 7, "x=-1"), audit::AuditFailure);
  EXPECT_NE(seen.find("x >= 0"), std::string::npos);
  EXPECT_EQ(audit::firings(), 1u);
  audit::set_handler(previous);
  audit::reset_firings();
}

TEST(Audit, CloseUsesAbsolutePlusRelativeBand) {
  EXPECT_TRUE(audit::close(1.0, 1.0 + 1e-10, 1e-9));
  EXPECT_FALSE(audit::close(1.0, 1.0 + 1e-6, 1e-9));
  // Relative scaling: 1e5 apart at 1e12 magnitude is well inside 1e-6.
  EXPECT_TRUE(audit::close(1e12, 1e12 + 1e5, 1e-6));
  EXPECT_TRUE(audit::close(0.0, 0.0, 0.0));
}

TEST(Audit, IsFiniteRejectsNanAndInf) {
  EXPECT_TRUE(audit::is_finite(0.0));
  EXPECT_TRUE(audit::is_finite(-1e300));
  EXPECT_FALSE(audit::is_finite(std::nan("")));
  EXPECT_FALSE(audit::is_finite(std::numeric_limits<double>::infinity()));
}

// --- degenerate solver inputs: the auditor must pass, not fire -------------

class AuditFiringGuard {
 public:
  AuditFiringGuard() { audit::reset_firings(); }
  ~AuditFiringGuard() { EXPECT_EQ(audit::firings(), 0u) << "auditor fired"; }
};

TEST(AuditDegenerate, ZeroTotalRequestAllSolvers) {
  AuditFiringGuard guard;
  const std::vector<double> b{3.0, 1.0, 2.0};
  const WaterFillResult exact = core::water_fill(b, olev::util::kw(0.0));
  EXPECT_EQ(exact.row, std::vector<double>({0.0, 0.0, 0.0}));
  EXPECT_EQ(exact.level, 1.0);  // min load; nothing allocated

  const WaterFillResult bisect = core::water_fill_bisect(b, olev::util::kw(0.0));
  EXPECT_EQ(bisect.row, std::vector<double>({0.0, 0.0, 0.0}));

  const SortedLoads sorted(b);
  EXPECT_EQ(sorted.fill(olev::util::kw(0.0)).row, std::vector<double>({0.0, 0.0, 0.0}));

  const core::SectionCost cost = make_cost();
  const core::SectionCost* costs[] = {&cost, &cost, &cost};
  const auto generalized = core::generalized_fill(costs, b, olev::util::kw(0.0));
  EXPECT_EQ(generalized.row, std::vector<double>({0.0, 0.0, 0.0}));
}

TEST(AuditDegenerate, AllMaskedSectionsZeroTotal) {
  AuditFiringGuard guard;
  const std::vector<double> b{5.0, 6.0};
  const std::vector<bool> none{false, false};
  const WaterFillResult result = core::water_fill_masked(b, olev::util::kw(0.0), none);
  EXPECT_EQ(result.row, std::vector<double>({0.0, 0.0}));
  // Positive total with an empty mask is a *caller* error, not an invariant
  // violation: invalid_argument, no auditor firing.
  EXPECT_THROW((void)core::water_fill_masked(b, olev::util::kw(1.0), none), std::invalid_argument);
}

TEST(AuditDegenerate, SingleAdmissibleSectionTakesEverything) {
  AuditFiringGuard guard;
  const std::vector<double> b{9.0, 1.0, 7.0};
  const std::vector<bool> only_middle{false, true, false};
  const WaterFillResult result = core::water_fill_masked(b, olev::util::kw(4.0), only_middle);
  EXPECT_DOUBLE_EQ(result.row[1], 4.0);
  EXPECT_EQ(result.row[0], 0.0);
  EXPECT_EQ(result.row[2], 0.0);
}

TEST(AuditDegenerate, DuplicateMinimumLoads) {
  AuditFiringGuard guard;
  // Several sections tie at the minimum: the water level rises from a
  // plateau, the exact/incremental/bisection solvers must all agree and no
  // complementarity check may trip on the equal-load boundary.
  const std::vector<double> b{2.0, 2.0, 2.0, 5.0, 2.0};
  for (double total : {0.0, 1e-12, 0.5, 9.0, 12.0, 1000.0}) {
    const WaterFillResult exact = core::water_fill(b, olev::util::kw(total));
    double sum = 0.0;
    for (double v : exact.row) sum += v;
    EXPECT_NEAR(sum, total, 1e-9 * std::max(1.0, total));

    const SortedLoads sorted(b);
    const WaterFillResult incremental = sorted.fill(olev::util::kw(total));
    EXPECT_EQ(exact.row, incremental.row);
    EXPECT_EQ(exact.level, incremental.level);

    const WaterFillResult bisect = core::water_fill_bisect(b, olev::util::kw(total));
    EXPECT_NEAR(bisect.level, exact.level, 1e-8 * std::max(1.0, exact.level));
  }
}

TEST(AuditDegenerate, AllLoadsIdentical) {
  AuditFiringGuard guard;
  const std::vector<double> b(8, 4.0);
  const WaterFillResult result = core::water_fill(b, olev::util::kw(16.0));
  for (double v : result.row) EXPECT_DOUBLE_EQ(v, 2.0);
  EXPECT_EQ(result.active_sections, 8);
}

TEST(AuditDegenerate, SortedLoadsUpdateOneThroughDuplicates) {
  AuditFiringGuard guard;
  SortedLoads sorted(std::vector<double>{3.0, 3.0, 3.0, 1.0});
  sorted.update_one(1, 0.5);  // moves one duplicate below the old minimum
  sorted.update_one(3, 3.0);  // re-creates the duplicate plateau
  const WaterFillResult incremental = sorted.fill(olev::util::kw(5.0));
  const WaterFillResult fresh = core::water_fill(sorted.values(), olev::util::kw(5.0));
  EXPECT_EQ(incremental.row, fresh.row);
  EXPECT_EQ(incremental.level, fresh.level);
}

TEST(AuditDegenerate, GameWithZeroCapacityAndMaskedPlayers) {
  AuditFiringGuard guard;
  // Degenerate fleet: one player that cannot draw at all, one restricted to
  // a single section, one unrestricted.  The game must converge with the
  // auditor silent (zero rows, masked-out columns, tied loads throughout).
  std::vector<PlayerSpec> players(3);
  players[0].satisfaction = std::make_unique<core::LogSatisfaction>(40.0);
  players[0].p_max = olev::util::kw(0.0);
  players[1].satisfaction = std::make_unique<core::LogSatisfaction>(55.0);
  players[1].p_max = olev::util::kw(30.0);
  players[1].allowed_sections = {false, true, false, false};
  players[2].satisfaction = std::make_unique<core::LogSatisfaction>(70.0);
  players[2].p_max = olev::util::kw(50.0);

  GameConfig config;
  config.epsilon = 1e-6;
  core::Game game(std::move(players), make_cost(60.0), 4, olev::util::kw(120.0), config);
  const core::GameResult result = game.run();
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.requests[0], 0.0);
  for (std::size_t c = 0; c < 4; ++c) {
    if (c != 1) {
      EXPECT_EQ(result.schedule.at(1, c), 0.0) << "section " << c;
    }
  }
  for (double payment : result.payments) EXPECT_GE(payment, 0.0);
}

// --- the annotated sync wrappers (util/sync.h), both flavors ---------------

TEST(SyncWrappers, MutexLockAndCondVarHandshake) {
  // Plain std::mutex semantics through the wrappers: a producer/consumer
  // handshake must round-trip in every build flavor.
  olev::Mutex mu("sync.test.handshake");
  olev::CondVar cv;
  int stage = 0;  // guarded by mu
  std::thread consumer([&] {
    olev::MutexLock lock(mu);
    cv.wait(mu, [&] {
      mu.AssertHeld();
      return stage == 1;
    });
    stage = 2;
    cv.notify_all();
  });
  {
    olev::MutexLock lock(mu);
    stage = 1;
  }
  cv.notify_all();
  {
    olev::MutexLock lock(mu);
    cv.wait(mu, [&] {
      mu.AssertHeld();
      return stage == 2;
    });
  }
  consumer.join();
  EXPECT_EQ(stage, 2);
}

TEST(SyncWrappers, TryLockReportsContention) {
  olev::Mutex mu("sync.test.trylock");
  ASSERT_TRUE(mu.try_lock());
  std::atomic<bool> contended{false};
  std::thread prober([&] { contended.store(!mu.try_lock()); });
  prober.join();
  EXPECT_TRUE(contended.load());
  mu.unlock();
}

// --- armed-build behavior: violations actually fire ------------------------

#if OLEV_AUDIT_ENABLED

TEST(AuditArmed, CheckMacroFiresOnViolation) {
  audit::reset_firings();
  EXPECT_THROW(OLEV_AUDIT_CHECK(1 + 1 == 3, std::string("arithmetic")),
               audit::AuditFailure);
  EXPECT_EQ(audit::firings(), 1u);
  audit::reset_firings();
  OLEV_AUDIT_CHECK(1 + 1 == 2, std::string("fine"));  // silent
  EXPECT_EQ(audit::firings(), 0u);
}

TEST(AuditArmed, NanRequestTripsTheEntryGuard) {
  audit::reset_firings();
  const std::vector<double> b{1.0, 2.0};
  EXPECT_THROW((void)core::water_fill(b, olev::util::kw(std::nan(""))), audit::AuditFailure);
  EXPECT_GE(audit::firings(), 1u);
  audit::reset_firings();
}

TEST(AuditArmed, NanLoadTripsTheEntryGuard) {
  audit::reset_firings();
  const std::vector<double> b{1.0, std::nan("")};
  EXPECT_THROW((void)core::water_fill(b, olev::util::kw(3.0)), audit::AuditFailure);
  audit::reset_firings();
}

// --- lock-order auditor: inverted acquisition orders are latent deadlocks --

TEST(LockOrderAudit, InvertedAcquisitionOrderFiresExactlyOnce) {
  audit::reset_firings();
  static std::string seen;
  seen.clear();
  const audit::Handler previous =
      audit::set_handler(+[](const std::string& message) { seen = message; });

  olev::Mutex a("lockorder.test.inverted.A");
  olev::Mutex b("lockorder.test.inverted.B");

  // Thread 1 establishes the order A -> B and exits cleanly.
  std::thread t1([&] {
    olev::MutexLock la(a);
    olev::MutexLock lb(b);
  });
  t1.join();

  // Thread 2 inverts it.  Nothing ever blocks -- t1 is long gone -- but the
  // ORDER B -> A closes a cycle in the acquisition graph, which is exactly
  // the interleaving-independent deadlock signal lockdep exists for.
  std::atomic<bool> fired{false};
  std::thread t2([&] {
    try {
      olev::MutexLock lb(b);
      olev::MutexLock la(a);  // cycle detected here, before acquiring
    } catch (const audit::AuditFailure&) {
      fired.store(true);
    }
  });
  t2.join();
  EXPECT_TRUE(fired.load());
  EXPECT_EQ(audit::firings(), 1u);
  // Both offending chains, by lock name, land in the report.
  EXPECT_NE(seen.find("lockorder.test.inverted.A"), std::string::npos) << seen;
  EXPECT_NE(seen.find("lockorder.test.inverted.B"), std::string::npos) << seen;
  EXPECT_NE(seen.find("lock-order inversion"), std::string::npos) << seen;

  // The same inverted pair again: reported at most once per process, and
  // the (non-deadlocking) acquisition itself now proceeds normally.
  std::thread t3([&] {
    olev::MutexLock lb(b);
    olev::MutexLock la(a);
  });
  t3.join();
  EXPECT_EQ(audit::firings(), 1u);

  audit::set_handler(previous);
  audit::reset_firings();
}

TEST(LockOrderAudit, ConsistentOrderStaysSilent) {
  audit::reset_firings();
  olev::Mutex outer("lockorder.test.clean.outer");
  olev::Mutex inner("lockorder.test.clean.inner");
  // Many threads, always outer -> inner: an acyclic order never fires.
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&] {
      for (int j = 0; j < 100; ++j) {
        olev::MutexLock lo(outer);
        olev::MutexLock li(inner);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(audit::firings(), 0u);
}

TEST(LockOrderAudit, TransitiveCycleIsDetected) {
  audit::reset_firings();
  static std::string seen;
  seen.clear();
  const audit::Handler previous =
      audit::set_handler(+[](const std::string& message) { seen = message; });

  olev::Mutex a("lockorder.test.chain.A");
  olev::Mutex b("lockorder.test.chain.B");
  olev::Mutex c("lockorder.test.chain.C");
  std::thread t1([&] {
    olev::MutexLock la(a);
    olev::MutexLock lb(b);  // A -> B
  });
  t1.join();
  std::thread t2([&] {
    olev::MutexLock lb(b);
    olev::MutexLock lc(c);  // B -> C
  });
  t2.join();
  std::atomic<bool> fired{false};
  std::thread t3([&] {
    try {
      olev::MutexLock lc(c);
      olev::MutexLock la(a);  // C -> A closes A -> B -> C -> A
    } catch (const audit::AuditFailure&) {
      fired.store(true);
    }
  });
  t3.join();
  EXPECT_TRUE(fired.load());
  EXPECT_EQ(audit::firings(), 1u);
  audit::set_handler(previous);
  audit::reset_firings();
}

TEST(LockOrderAudit, AssertHeldFiresWhenUnheld) {
  audit::reset_firings();
  olev::Mutex mu("lockorder.test.assert");
  EXPECT_THROW(mu.AssertHeld(), audit::AuditFailure);
  EXPECT_EQ(audit::firings(), 1u);
  {
    olev::MutexLock lock(mu);
    mu.AssertHeld();  // silent while held
  }
  EXPECT_EQ(audit::firings(), 1u);
  audit::reset_firings();
}

#else

TEST(AuditDisarmed, CheckSitesCompileToNothing) {
  audit::reset_firings();
  OLEV_AUDIT_CHECK(false, "never evaluated");
  OLEV_AUDIT_FINITE(std::nan(""), "never evaluated");
  EXPECT_EQ(audit::firings(), 0u);
}

TEST(AuditDisarmed, LockOrderTrackingCompilesToNothing) {
  audit::reset_firings();
  olev::Mutex a("lockorder.disarmed.A");
  olev::Mutex b("lockorder.disarmed.B");
  // Opposite orders on two (sequential, never-deadlocking) threads: without
  // OLEV_AUDIT the order graph does not exist and nothing fires.
  std::thread t1([&] {
    olev::MutexLock la(a);
    olev::MutexLock lb(b);
  });
  t1.join();
  std::thread t2([&] {
    olev::MutexLock lb(b);
    olev::MutexLock la(a);
  });
  t2.join();
  a.AssertHeld();  // dynamic assert is compiled out too
  EXPECT_EQ(audit::firings(), 0u);
}

#endif

}  // namespace
}  // namespace olev
