// ThreadPool: futures, parallel_for coverage, and exception propagation.

#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

namespace olev::util {
namespace {

TEST(ThreadPool, SubmitReturnsFutureValues) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPool, ZeroThreadsMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, ParallelForVisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> visits(kN);
  pool.parallel_for(kN, [&](std::size_t i) { ++visits[i]; });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForRethrowsFirstException) {
  ThreadPool pool(2);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.parallel_for(50,
                        [&](std::size_t i) {
                          if (i == 17) throw std::runtime_error("boom");
                          ++completed;
                        }),
      std::runtime_error);
  // All non-throwing bodies still ran: the pool drains before rethrowing.
  EXPECT_EQ(completed.load(), 49);
}

TEST(ThreadPool, SubmitPropagatesExceptionThroughFuture) {
  ThreadPool pool(1);
  auto future = pool.submit([]() -> int { throw std::logic_error("bad"); });
  EXPECT_THROW(future.get(), std::logic_error);
}

TEST(ThreadPool, ResolveThreads) {
  EXPECT_EQ(resolve_threads(3), 3u);
  EXPECT_GE(resolve_threads(0), 1u);
}

}  // namespace
}  // namespace olev::util
