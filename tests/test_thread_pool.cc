// ThreadPool: futures, parallel_for coverage, and exception propagation.

#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

namespace olev::util {
namespace {

TEST(ThreadPool, SubmitReturnsFutureValues) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPool, ZeroThreadsMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, ParallelForVisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> visits(kN);
  pool.parallel_for(kN, [&](std::size_t i) { ++visits[i]; });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForRethrowsFirstException) {
  ThreadPool pool(2);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.parallel_for(50,
                        [&](std::size_t i) {
                          if (i == 17) throw std::runtime_error("boom");
                          ++completed;
                        }),
      std::runtime_error);
  // All non-throwing bodies still ran: the pool drains before rethrowing.
  EXPECT_EQ(completed.load(), 49);
}

TEST(ThreadPool, SubmitPropagatesExceptionThroughFuture) {
  ThreadPool pool(1);
  auto future = pool.submit([]() -> int { throw std::logic_error("bad"); });
  EXPECT_THROW(future.get(), std::logic_error);
}

// Shutdown-hardening regressions: a body that throws while many tasks are
// still queued must neither deadlock parallel_for's completion wait nor the
// destructor's join, and the pool must stay usable afterwards.

TEST(ThreadPool, ParallelForWithDeepQueueOfThrowingTasksJoinsCleanly) {
  std::atomic<int> completed{0};
  {
    ThreadPool pool(2);
    // 500 tasks on 2 workers: the queue is deep when the first throw lands.
    EXPECT_THROW(pool.parallel_for(500,
                                   [&](std::size_t i) {
                                     if (i % 2 == 0) {
                                       throw std::runtime_error("even");
                                     }
                                     ++completed;
                                   }),
                 std::runtime_error);
    // Every non-throwing body still ran before the rethrow.
    EXPECT_EQ(completed.load(), 250);
    // The pool survives: later work is unaffected by the earlier storm.
    EXPECT_EQ(pool.submit([] { return 41 + 1; }).get(), 42);
    std::atomic<int> after{0};
    pool.parallel_for(100, [&](std::size_t) { ++after; });
    EXPECT_EQ(after.load(), 100);
  }  // ~ThreadPool joins here; a deadlock shows up as a test timeout
}

TEST(ThreadPool, ParallelForRethrowsLowestIndexException) {
  ThreadPool pool(4);
  // Several bodies throw concurrently; serial order must win regardless of
  // which worker reports first.
  try {
    pool.parallel_for(200, [](std::size_t i) {
      if (i == 13 || i == 14 || i == 150) {
        throw std::runtime_error(std::to_string(i));
      }
    });
    FAIL() << "parallel_for did not rethrow";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "13");
  }
}

TEST(ThreadPool, ParallelForExceptionsDoNotCorruptLaterRuns) {
  ThreadPool pool(3);
  for (int round = 0; round < 10; ++round) {
    std::atomic<int> ran{0};
    EXPECT_THROW(pool.parallel_for(60,
                                   [&](std::size_t i) {
                                     if (i == 0) throw std::logic_error("x");
                                     ++ran;
                                   }),
                 std::logic_error);
    EXPECT_EQ(ran.load(), 59) << "round " << round;
  }
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&ran] { ++ran; });
    }
    // Destruction races the queue on purpose: stop_ is set while tasks are
    // still pending, and the worker must drain them all before joining.
  }
  EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPool, ResolveThreads) {
  EXPECT_EQ(resolve_threads(3), 3u);
  EXPECT_GE(resolve_threads(0), 1u);
}

}  // namespace
}  // namespace olev::util
