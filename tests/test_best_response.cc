#include "core/best_response.h"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "core/payment.h"
#include "util/rng.h"

namespace olev::core {
namespace {

SectionCost make_cost(double beta = 8.0, double cap = 50.0) {
  return SectionCost(std::make_unique<NonlinearPricing>(beta, 0.875, cap),
                     OverloadCost{1.5}, olev::util::kw(cap));
}

TEST(BestResponse, RequiresStrictConvexity) {
  SectionCost linear(std::make_unique<LinearPricing>(1.0), OverloadCost{0.0},
                     olev::util::kw(50.0));
  LogSatisfaction u;
  const std::vector<double> b{0.0};
  EXPECT_THROW((void)best_response(u, linear, b, olev::util::kw(10.0)), std::logic_error);
}

TEST(BestResponse, RejectsNegativeCap) {
  LogSatisfaction u;
  const SectionCost z = make_cost();
  const std::vector<double> b{0.0};
  EXPECT_THROW((void)best_response(u, z, b, olev::util::kw(-1.0)), std::invalid_argument);
}

TEST(BestResponse, CornerAtZeroWhenPriceTooHigh) {
  // Marginal price at zero above U'(0) = 1: request nothing (Eq. 22 case 1).
  const SectionCost z = make_cost(/*beta=*/500.0, /*cap=*/10.0);
  LogSatisfaction u;
  const std::vector<double> b{20.0, 20.0};
  const BestResponse r = best_response(u, z, b, olev::util::kw(30.0));
  EXPECT_EQ(r.kind, BestResponse::Case::kCornerZero);
  EXPECT_DOUBLE_EQ(r.p_star, 0.0);
  EXPECT_DOUBLE_EQ(r.payment, 0.0);
  EXPECT_DOUBLE_EQ(r.utility, 0.0);
}

TEST(BestResponse, CornerAtCapWhenDemandHuge) {
  // Very strong satisfaction: the physical cap P_OLEV binds (Eq. 22 case 2).
  const SectionCost z = make_cost(/*beta=*/0.001, /*cap=*/100.0);
  LogSatisfaction u(1000.0);
  const std::vector<double> b{0.0, 0.0};
  const BestResponse r = best_response(u, z, b, olev::util::kw(5.0));
  EXPECT_EQ(r.kind, BestResponse::Case::kCornerCap);
  EXPECT_DOUBLE_EQ(r.p_star, 5.0);
}

TEST(BestResponse, InteriorSatisfiesFirstOrderCondition) {
  const SectionCost z = make_cost();
  LogSatisfaction u(30.0);
  const std::vector<double> b{2.0, 6.0, 4.0};
  const BestResponse r = best_response(u, z, b, olev::util::kw(200.0));
  ASSERT_EQ(r.kind, BestResponse::Case::kInterior);
  // U'(p*) == Psi'(p*) == Z'(lambda*).
  EXPECT_NEAR(u.derivative(r.p_star),
              payment_derivative(z, b, olev::util::kw(r.p_star)), 1e-6);
}

TEST(BestResponse, InteriorBeatsNeighbors) {
  const SectionCost z = make_cost();
  LogSatisfaction u(30.0);
  const std::vector<double> b{2.0, 6.0, 4.0};
  const BestResponse r = best_response(u, z, b, olev::util::kw(200.0));
  auto f = [&](double p) { return u.value(p) - payment_of_total(z, b, olev::util::kw(p)); };
  EXPECT_NEAR(r.utility, f(r.p_star), 1e-9);
  for (double delta : {-5.0, -1.0, -0.1, 0.1, 1.0, 5.0}) {
    const double p = r.p_star + delta;
    if (p < 0.0 || p > 200.0) continue;
    EXPECT_LE(f(p), r.utility + 1e-9) << "delta=" << delta;
  }
}

TEST(BestResponse, GlobalMaximumAgainstGridScan) {
  const SectionCost z = make_cost();
  LogSatisfaction u(15.0);
  const std::vector<double> b{1.0, 3.0};
  const double p_max = 60.0;
  const BestResponse r = best_response(u, z, b, olev::util::kw(p_max));
  auto f = [&](double p) { return u.value(p) - payment_of_total(z, b, olev::util::kw(p)); };
  for (int i = 0; i <= 600; ++i) {
    const double p = p_max * i / 600.0;
    EXPECT_LE(f(p), r.utility + 1e-7) << "p=" << p;
  }
}

TEST(BestResponse, AllocationIsWaterFilled) {
  const SectionCost z = make_cost();
  LogSatisfaction u(30.0);
  const std::vector<double> b{2.0, 6.0, 4.0};
  const BestResponse r = best_response(u, z, b, olev::util::kw(200.0));
  const auto expected = water_fill(b, olev::util::kw(r.p_star));
  for (std::size_t c = 0; c < b.size(); ++c) {
    EXPECT_NEAR(r.allocation.row[c], expected.row[c], 1e-9);
  }
}

TEST(BestResponse, ZeroCapIsCornerZero) {
  const SectionCost z = make_cost();
  LogSatisfaction u(30.0);
  const std::vector<double> b{1.0};
  const BestResponse r = best_response(u, z, b, olev::util::kw(0.0));
  EXPECT_DOUBLE_EQ(r.p_star, 0.0);
}

TEST(BestResponse, ShrinksWhenOthersLoadGrows) {
  // The disincentive property the pricing policy is built for: more
  // congestion -> smaller optimal request.
  const SectionCost z = make_cost();
  LogSatisfaction u(30.0);
  const std::vector<double> light{1.0, 1.0};
  const std::vector<double> heavy{25.0, 25.0};
  const double p_light = best_response(u, z, light, olev::util::kw(500.0)).p_star;
  const double p_heavy = best_response(u, z, heavy, olev::util::kw(500.0)).p_star;
  EXPECT_GT(p_light, p_heavy);
}

TEST(BestResponse, MonotoneInSatisfactionWeight) {
  const SectionCost z = make_cost();
  const std::vector<double> b{3.0, 3.0};
  double prev = 0.0;
  for (double w : {1.0, 5.0, 20.0, 80.0}) {
    LogSatisfaction u(w);
    const double p = best_response(u, z, b, olev::util::kw(1000.0)).p_star;
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(BestResponse, RandomizedOptimality) {
  util::Rng rng(2024);
  for (int trial = 0; trial < 100; ++trial) {
    const auto sections = static_cast<std::size_t>(rng.uniform_int(1, 12));
    std::vector<double> b(sections);
    for (double& v : b) v = rng.uniform(0.0, 30.0);
    const double cap = rng.uniform(10.0, 80.0);
    const SectionCost z = make_cost(rng.uniform(1.0, 20.0), cap);
    LogSatisfaction u(rng.uniform(1.0, 50.0));
    const double p_max = rng.uniform(1.0, 150.0);
    const BestResponse r = best_response(u, z, b, olev::util::kw(p_max));
    ASSERT_GE(r.p_star, 0.0);
    ASSERT_LE(r.p_star, p_max + 1e-9);
    auto f = [&](double p) { return u.value(p) - payment_of_total(z, b, olev::util::kw(p)); };
    for (int i = 0; i <= 50; ++i) {
      const double p = p_max * i / 50.0;
      EXPECT_LE(f(p), r.utility + 1e-6)
          << "trial " << trial << " alternative p=" << p;
    }
  }
}

TEST(UtilityDerivative, MatchesComponents) {
  const SectionCost z = make_cost();
  LogSatisfaction u(10.0);
  const std::vector<double> b{2.0, 4.0};
  for (double p : {0.0, 1.0, 10.0}) {
    EXPECT_NEAR(utility_derivative(u, z, b, olev::util::kw(p)),
                u.derivative(p) - payment_derivative(z, b, olev::util::kw(p)), 1e-12);
  }
}

}  // namespace
}  // namespace olev::core
