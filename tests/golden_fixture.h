// Shared definition of the golden equilibrium fixtures: the exact scenarios
// and the CSV schema used by both generate_golden.cc (writer) and
// test_golden_equilibrium.cc (checker).  Keeping both sides on one header
// means a fixture can only go stale by intent, not by drift.
//
// Schema (one file per pricing policy):
//   quantity,i,j,value
// where quantity is one of
//   schedule  -- p_{n,c}: i = player, j = section
//   request   -- p_n:     i = player, j = 0
//   payment   -- Psi_n:   i = player, j = 0
//   utility   -- F_n:     i = player, j = 0
//   welfare   -- scalar:  i = j = 0
// and value is printed with 17 significant digits (round-trip exact).
#pragma once

#include <string>
#include <vector>

#include "core/scenario.h"

namespace olev::testing {

inline core::ScenarioConfig golden_config(core::PricingKind pricing) {
  core::ScenarioConfig config;
  config.num_olevs = 10;
  config.num_sections = 10;
  config.pricing = pricing;
  config.beta_lbmp = olev::util::Price::per_mwh(16.0);  // the paper's reference LBMP, $/MWh
  config.target_degree = 0.9;
  config.seed = 0x601d;
  config.game.seed = 0x601d2;
  config.game.max_updates = 100000;
  return config;
}

inline std::string golden_file(core::PricingKind pricing) {
  return pricing == core::PricingKind::kNonlinear ? "equilibrium_nonlinear.csv"
                                                  : "equilibrium_linear.csv";
}

/// The three pinned mean-field fixtures (solver = kMeanField; CSV schema
/// gains `field` rows -- i = section -- plus the total_load / water_level /
/// marginal_price scalars).  The mean-field solver is deterministic and
/// RNG-free past Scenario::build, so the committed doubles are reproduced
/// exactly on re-run; the checker compares at 1e-9 relative (ulp-scale
/// slack for libm variation across toolchains).
struct MeanFieldGoldenCase {
  std::string label;
  std::string file;
  core::ScenarioConfig config;
};

inline std::vector<MeanFieldGoldenCase> golden_mean_field_cases() {
  std::vector<MeanFieldGoldenCase> cases;
  {
    // The exact-game fixture's twin: same N=10, C=10 universe.
    MeanFieldGoldenCase small;
    small.label = "small";
    small.file = "meanfield_small.csv";
    small.config = golden_config(core::PricingKind::kNonlinear);
    small.config.solver = core::SolverKind::kMeanField;
    cases.push_back(std::move(small));
  }
  {
    // Slow corridor, moderate demand, wider heterogeneity.
    MeanFieldGoldenCase slow;
    slow.label = "slow-corridor";
    slow.file = "meanfield_slow_corridor.csv";
    slow.config = golden_config(core::PricingKind::kNonlinear);
    slow.config.solver = core::SolverKind::kMeanField;
    slow.config.num_olevs = 25;
    slow.config.num_sections = 15;
    slow.config.velocity = olev::util::mph(40.0);
    slow.config.target_degree = 0.7;
    slow.config.demand_diversity = 0.4;
    slow.config.seed = 0x601d3;
    cases.push_back(std::move(slow));
  }
  {
    // Over-subscribed rush hour: demand past the line's comfort point.
    MeanFieldGoldenCase rush;
    rush.label = "rush-hour";
    rush.file = "meanfield_rush_hour.csv";
    rush.config = golden_config(core::PricingKind::kNonlinear);
    rush.config.solver = core::SolverKind::kMeanField;
    rush.config.num_olevs = 40;
    rush.config.num_sections = 20;
    rush.config.velocity = olev::util::mph(80.0);
    rush.config.target_degree = 1.1;
    rush.config.seed = 0x601d4;
    cases.push_back(std::move(rush));
  }
  return cases;
}

}  // namespace olev::testing
