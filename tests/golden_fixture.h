// Shared definition of the golden equilibrium fixtures: the exact scenarios
// and the CSV schema used by both generate_golden.cc (writer) and
// test_golden_equilibrium.cc (checker).  Keeping both sides on one header
// means a fixture can only go stale by intent, not by drift.
//
// Schema (one file per pricing policy):
//   quantity,i,j,value
// where quantity is one of
//   schedule  -- p_{n,c}: i = player, j = section
//   request   -- p_n:     i = player, j = 0
//   payment   -- Psi_n:   i = player, j = 0
//   utility   -- F_n:     i = player, j = 0
//   welfare   -- scalar:  i = j = 0
// and value is printed with 17 significant digits (round-trip exact).
#pragma once

#include <string>

#include "core/scenario.h"

namespace olev::testing {

inline core::ScenarioConfig golden_config(core::PricingKind pricing) {
  core::ScenarioConfig config;
  config.num_olevs = 10;
  config.num_sections = 10;
  config.pricing = pricing;
  config.beta_lbmp = olev::util::Price::per_mwh(16.0);  // the paper's reference LBMP, $/MWh
  config.target_degree = 0.9;
  config.seed = 0x601d;
  config.game.seed = 0x601d2;
  config.game.max_updates = 100000;
  return config;
}

inline std::string golden_file(core::PricingKind pricing) {
  return pricing == core::PricingKind::kNonlinear ? "equilibrium_nonlinear.csv"
                                                  : "equilibrium_linear.csv";
}

}  // namespace olev::testing
