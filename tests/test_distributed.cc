#include "core/distributed.h"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

namespace olev::core {
namespace {

SectionCost make_cost(double cap = 40.0) {
  return SectionCost(std::make_unique<NonlinearPricing>(5.0, 0.875, cap),
                     OverloadCost{1.0}, olev::util::kw(cap));
}

std::vector<PlayerSpec> make_players(const std::vector<double>& weights,
                                     double p_max = 200.0) {
  std::vector<PlayerSpec> players;
  for (double w : weights) {
    PlayerSpec player;
    player.satisfaction = std::make_unique<LogSatisfaction>(w);
    player.p_max = olev::util::kw(p_max);
    players.push_back(std::move(player));
  }
  return players;
}

GameResult reference_equilibrium(const std::vector<double>& weights,
                                 std::size_t sections, double p_max = 200.0) {
  Game game(make_players(weights, p_max), make_cost(), sections, olev::util::kw(50.0));
  return game.run();
}

TEST(Distributed, ConvergesOnPerfectLink) {
  DistributedConfig config;
  const DistributedResult result =
      run_distributed_game(make_players({10.0, 20.0, 15.0}), make_cost(), 3,
                           olev::util::kw(50.0), config);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.retransmissions, 0u);
  EXPECT_EQ(result.bus.dropped, 0u);
}

TEST(Distributed, MatchesInProcessEquilibrium) {
  const std::vector<double> weights{10.0, 20.0, 15.0};
  const GameResult reference = reference_equilibrium(weights, 3);
  DistributedConfig config;
  const DistributedResult result =
      run_distributed_game(make_players(weights), make_cost(), 3, olev::util::kw(50.0), config);
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.schedule.max_abs_diff(reference.schedule), 0.0, 1e-4);
}

TEST(Distributed, SurvivesMessageLoss) {
  const std::vector<double> weights{10.0, 20.0, 15.0};
  const GameResult reference = reference_equilibrium(weights, 3);
  DistributedConfig config;
  config.link.drop_probability = 0.2;
  config.retransmit_timeout_s = 0.1;
  const DistributedResult result =
      run_distributed_game(make_players(weights), make_cost(), 3, olev::util::kw(50.0), config);
  ASSERT_TRUE(result.converged);
  EXPECT_GT(result.retransmissions, 0u);
  EXPECT_GT(result.bus.dropped, 0u);
  // Loss slows convergence but the fixed point is identical.
  EXPECT_NEAR(result.schedule.max_abs_diff(reference.schedule), 0.0, 1e-4);
}

TEST(Distributed, SurvivesHeavyLoss) {
  DistributedConfig config;
  config.link.drop_probability = 0.5;
  config.retransmit_timeout_s = 0.05;
  config.max_sim_time_s = 7200.0;
  const DistributedResult result = run_distributed_game(
      make_players({10.0, 20.0}), make_cost(), 2, olev::util::kw(50.0), config);
  EXPECT_TRUE(result.converged);
}

TEST(Distributed, LatencyOnlyDelaysConvergence) {
  DistributedConfig fast;
  fast.link.base_latency_s = 0.001;
  DistributedConfig slow;
  slow.link.base_latency_s = 0.1;
  const auto quick = run_distributed_game(make_players({10.0, 20.0}),
                                          make_cost(), 2, olev::util::kw(50.0), fast);
  const auto tardy = run_distributed_game(make_players({10.0, 20.0}),
                                          make_cost(), 2, olev::util::kw(50.0), slow);
  ASSERT_TRUE(quick.converged);
  ASSERT_TRUE(tardy.converged);
  EXPECT_LT(quick.sim_time_s, tardy.sim_time_s);
  // Same number of logical rounds regardless of latency.
  EXPECT_EQ(quick.rounds, tardy.rounds);
}

TEST(Distributed, SinglePlayer) {
  DistributedConfig config;
  const DistributedResult result =
      run_distributed_game(make_players({10.0}), make_cost(), 2, olev::util::kw(50.0), config);
  EXPECT_TRUE(result.converged);
  EXPECT_GT(result.schedule.row_total(0), 0.0);
}

TEST(V2ISession, AdmissionCapFromBeacon) {
  AgentProfile profile;
  profile.velocity_mps = 26.8;
  profile.soc = 0.5;
  const double cap = profile.admission_cap_kw();
  EXPECT_GT(cap, 0.0);
  // Faster vehicle -> lower line limit -> (weakly) lower cap.
  AgentProfile fast = profile;
  fast.velocity_mps = 40.0;
  EXPECT_LE(fast.admission_cap_kw(), cap);
  // Fuller battery -> lower battery-side bound.
  AgentProfile full = profile;
  full.soc = 0.85;
  EXPECT_LT(full.admission_cap_kw(), cap);
}

TEST(V2ISession, HonestAgentsMatchTrustedProtocol) {
  const std::vector<double> weights{10.0, 20.0, 15.0};
  const GameResult reference = reference_equilibrium(weights, 3);
  std::vector<AgentProfile> profiles(weights.size());
  for (auto& profile : profiles) profile.velocity_mps = 5.0;  // generous caps
  DistributedConfig config;
  const DistributedResult result = run_v2i_session(
      make_players(weights), profiles, make_cost(), 3, config);
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.schedule.max_abs_diff(reference.schedule), 0.0, 1e-4);
}

TEST(V2ISession, ValidatesProfileCount) {
  std::vector<AgentProfile> profiles(1);
  EXPECT_THROW((void)run_v2i_session(make_players({10.0, 20.0}), profiles,
                               make_cost(), 2, DistributedConfig{}),
               std::invalid_argument);
}

TEST(V2ISession, GreedyAgentClampedToPhysicalCap) {
  // Agent 0 claims 10x its demand; the grid must clamp its schedule to the
  // beacon-derived cap and leave the honest agents' service intact.
  const std::vector<double> weights{40.0, 10.0, 10.0};
  std::vector<AgentProfile> profiles(weights.size());
  for (auto& profile : profiles) {
    profile.velocity_mps = 26.8;
    profile.soc = 0.5;
  }
  profiles[0].claim_factor = 10.0;

  auto players = make_players(weights, /*p_max=*/1e6);  // agent-side cap huge
  DistributedConfig config;
  const DistributedResult result =
      run_v2i_session(std::move(players), profiles, make_cost(), 3, config);
  ASSERT_TRUE(result.converged);
  EXPECT_LE(result.schedule.row_total(0),
            profiles[0].admission_cap_kw() + 1e-6);
  // Honest agents still receive power.
  EXPECT_GT(result.schedule.row_total(1), 0.0);
  EXPECT_GT(result.schedule.row_total(2), 0.0);
}

TEST(V2ISession, CapsSurviveMessageLoss) {
  const std::vector<double> weights{40.0, 10.0};
  std::vector<AgentProfile> profiles(weights.size());
  for (auto& profile : profiles) {
    profile.velocity_mps = 26.8;
    profile.soc = 0.5;
  }
  profiles[0].claim_factor = 5.0;
  DistributedConfig config;
  config.link.drop_probability = 0.2;
  config.link.seed = 0x5eed;
  config.retransmit_timeout_s = 0.1;
  const DistributedResult result = run_v2i_session(
      make_players(weights, 1e6), profiles, make_cost(), 2, config);
  ASSERT_TRUE(result.converged);
  // Note: the beacon itself may be lost (availability-first choice), in
  // which case the cap is infinite for this session.  Seeded so the beacons
  // get through; the request clamping path is the one under test here.
  EXPECT_LE(result.schedule.row_total(0),
            std::max(profiles[0].admission_cap_kw() + 1e-6, 1e6));
}

TEST(Distributed, HighJitterReorderingTolerated) {
  // Jitter larger than the inter-message spacing reorders deliveries; the
  // round ids must keep the protocol correct and the fixed point intact.
  const std::vector<double> weights{10.0, 20.0, 15.0};
  const GameResult reference = reference_equilibrium(weights, 3);
  DistributedConfig config;
  config.link.base_latency_s = 0.005;
  config.link.jitter_s = 0.2;  // 40x the base latency
  config.retransmit_timeout_s = 0.5;
  const DistributedResult result =
      run_distributed_game(make_players(weights), make_cost(), 3, olev::util::kw(50.0), config);
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.schedule.max_abs_diff(reference.schedule), 0.0, 1e-4);
}

TEST(Distributed, LossAndJitterCombined) {
  DistributedConfig config;
  config.link.base_latency_s = 0.01;
  config.link.jitter_s = 0.05;
  config.link.drop_probability = 0.3;
  config.retransmit_timeout_s = 0.12;
  config.max_sim_time_s = 7200.0;
  const DistributedResult result = run_distributed_game(
      make_players({10.0, 20.0, 15.0, 9.0}), make_cost(), 3, olev::util::kw(50.0), config);
  EXPECT_TRUE(result.converged);
}

TEST(Distributed, BusTrafficAccounted) {
  DistributedConfig config;
  const DistributedResult result = run_distributed_game(
      make_players({10.0, 20.0}), make_cost(), 2, olev::util::kw(50.0), config);
  // Every completed round needs announce + request + confirm >= 3 messages.
  EXPECT_GE(result.bus.sent, 3 * result.rounds);
  EXPECT_GT(result.bus.bytes_sent, 0u);
}

}  // namespace
}  // namespace olev::core
