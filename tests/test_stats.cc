#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace olev::util {
namespace {

TEST(Accumulator, EmptyIsZero) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.variance(), 0.0);
}

TEST(Accumulator, SingleSample) {
  Accumulator acc;
  acc.add(5.0);
  EXPECT_EQ(acc.count(), 1u);
  EXPECT_EQ(acc.mean(), 5.0);
  EXPECT_EQ(acc.variance(), 0.0);
  EXPECT_EQ(acc.min(), 5.0);
  EXPECT_EQ(acc.max(), 5.0);
}

TEST(Accumulator, KnownMeanVariance) {
  Accumulator acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  // Sample variance with n-1 = 7: sum of squared deviations is 32.
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(acc.min(), 2.0);
  EXPECT_EQ(acc.max(), 9.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
}

TEST(Accumulator, MergeMatchesSequential) {
  Accumulator all;
  Accumulator left;
  Accumulator right;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10.0 + i * 0.1;
    all.add(x);
    (i < 40 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-10);
  EXPECT_EQ(left.min(), all.min());
  EXPECT_EQ(left.max(), all.max());
}

TEST(Accumulator, MergeWithEmpty) {
  Accumulator acc;
  acc.add(1.0);
  acc.add(3.0);
  Accumulator empty;
  acc.merge(empty);
  EXPECT_EQ(acc.count(), 2u);
  EXPECT_DOUBLE_EQ(acc.mean(), 2.0);
  empty.merge(acc);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(Percentile, MedianOfOddCount) {
  const std::vector<double> xs{3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 2.0);
}

TEST(Percentile, InterpolatesBetweenRanks) {
  const std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 2.5);
}

TEST(Percentile, ClampsQuantile) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(xs, -5.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 150.0), 3.0);
}

TEST(Summarize, EmptyInput) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Summarize, BasicFields) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.p50, 3.0);
}

TEST(MeanOf, HandlesEmptyAndValues) {
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
  const std::vector<double> xs{2.0, 4.0};
  EXPECT_DOUBLE_EQ(mean_of(xs), 3.0);
}

TEST(MaxAbsDiff, PairwiseWorstCase) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{1.5, 2.0, 0.0};
  EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 3.0);
}

TEST(JainFairness, PerfectBalance) {
  const std::vector<double> xs{4.0, 4.0, 4.0, 4.0};
  EXPECT_DOUBLE_EQ(jain_fairness(xs), 1.0);
}

TEST(JainFairness, AllMassOnOne) {
  const std::vector<double> xs{10.0, 0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(jain_fairness(xs), 0.25);  // 1/n
}

TEST(JainFairness, EmptyAndZeroAreVacuouslyFair) {
  EXPECT_DOUBLE_EQ(jain_fairness({}), 1.0);
  const std::vector<double> zeros{0.0, 0.0};
  EXPECT_DOUBLE_EQ(jain_fairness(zeros), 1.0);
}

TEST(CoefficientOfVariation, UniformIsZero) {
  const std::vector<double> xs{5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(coefficient_of_variation(xs), 0.0);
}

TEST(CoefficientOfVariation, KnownValue) {
  const std::vector<double> xs{2.0, 4.0};  // mean 3, pop stddev 1
  EXPECT_NEAR(coefficient_of_variation(xs), 1.0 / 3.0, 1e-12);
}

TEST(Histogram, CountsFallIntoBins) {
  const std::vector<double> xs{0.1, 0.2, 0.55, 0.9, 0.95};
  const auto bins = histogram(xs, 0.0, 1.0, 2);
  ASSERT_EQ(bins.size(), 2u);
  EXPECT_EQ(bins[0], 2u);
  EXPECT_EQ(bins[1], 3u);
}

TEST(Histogram, ClampsOutOfRange) {
  const std::vector<double> xs{-5.0, 5.0};
  const auto bins = histogram(xs, 0.0, 1.0, 4);
  EXPECT_EQ(bins.front(), 1u);
  EXPECT_EQ(bins.back(), 1u);
}

TEST(Histogram, DegenerateArguments) {
  const std::vector<double> xs{1.0};
  EXPECT_TRUE(histogram(xs, 0.0, 1.0, 0).empty());
  const auto bins = histogram(xs, 1.0, 1.0, 3);
  EXPECT_EQ(bins, std::vector<std::size_t>(3, 0));
}

}  // namespace
}  // namespace olev::util
