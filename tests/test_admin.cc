// The telemetry plane: latency bucket layout, the wire-level phase
// decomposition, and the read-only admin endpoint (src/svc/admin.h) --
// snapshots must answer live while the service is under load.
//
// Registration-order note: obs::Registry's first registration fixes a
// histogram's bounds process-wide, so the custom-bucket test below runs
// FIRST in this binary (gtest executes in declaration order) and every
// later service in this file inherits those bounds.
#include "svc/admin.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/message.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "svc/client.h"
#include "svc/loadgen.h"
#include "svc/service.h"

namespace olev::svc {
namespace {

core::SectionCost make_cost(double cap = 40.0) {
  return core::SectionCost(
      std::make_unique<core::NonlinearPricing>(5.0, 0.875, cap),
      core::OverloadCost{1.0}, util::kw(cap));
}

ServiceConfig admin_config(std::size_t players = 4, std::size_t sections = 2) {
  ServiceConfig config;
  config.players = players;
  config.sections = sections;
  config.batch_window_s = 0.001;
  config.admin_enabled = true;
  return config;
}

struct ServiceRunner {
  explicit ServiceRunner(ServiceConfig config)
      : service(make_cost(), config),
        thread([this] { service.run(); }) {}

  ~ServiceRunner() { stop(); }

  void stop() {
    service.request_stop();
    if (thread.joinable()) thread.join();
  }

  ServiceClient connect() {
    return ServiceClient::connect("127.0.0.1", service.port());
  }

  AdminClient connect_admin() {
    return AdminClient::connect("127.0.0.1", service.admin_port());
  }

  PricingService service;
  std::thread thread;
};

// --- bucket layout (must run first; see the registration-order note) -------

TEST(LatencyBuckets, ConfiguredEdgesWinTheFirstRegistration) {
  ServiceConfig config = admin_config();
  config.admin_enabled = false;
  config.latency_bucket_edges_us = {1, 2, 4, 8};
  PricingService service(make_cost(), config);
  const obs::MetricsSnapshot snap = obs::Registry::instance().snapshot();
  bool found = false;
  for (const obs::HistogramSnapshot& h : snap.histograms) {
    if (h.name == "svc.request.latency_us") {
      found = true;
      EXPECT_EQ(h.bounds, (std::vector<double>{1, 2, 4, 8}));
    }
  }
  EXPECT_TRUE(found);
  // The phase histograms share the configured layout.
  for (const char* name :
       {"svc.phase.admit_us", "svc.phase.queue_us", "svc.phase.batch_us",
        "svc.phase.solve_us", "svc.phase.write_us"}) {
    bool phase_found = false;
    for (const obs::HistogramSnapshot& h : snap.histograms) {
      if (h.name == name) {
        phase_found = true;
        EXPECT_EQ(h.bounds, (std::vector<double>{1, 2, 4, 8})) << name;
      }
    }
    EXPECT_TRUE(phase_found) << name;
  }
}

TEST(LatencyBuckets, DefaultEdgesResolveTheSub100usRegime) {
  // Pinned layout: changing it silently re-buckets every dashboard that
  // reads svc.request.latency_us / svc.phase.*_us.
  EXPECT_EQ(default_latency_bucket_edges_us(),
            (std::vector<double>{0, 10, 25, 50, 100, 250, 500, 1000, 2500,
                                 5000, 10000, 25000, 50000, 100000, 500000}));
}

// --- admin protocol ---------------------------------------------------------

TEST(Admin, DisabledByDefault) {
  ServiceConfig config = admin_config();
  config.admin_enabled = false;
  PricingService service(make_cost(), config);
  EXPECT_EQ(service.admin_port(), 0);
}

TEST(Admin, HealthEngineAndSnapshotAnswer) {
  ServiceRunner runner(admin_config());
  ASSERT_NE(runner.service.admin_port(), 0);
  AdminClient admin = runner.connect_admin();

  const std::string health = admin.request("health");
  EXPECT_NE(health.find("\"status\":\"serving\""), std::string::npos) << health;
  EXPECT_NE(health.find("\"queue_depth\":0"), std::string::npos) << health;

  const std::string engine = admin.request("engine");
  EXPECT_NE(engine.find("\"mode\":\"exact\""), std::string::npos) << engine;
  EXPECT_NE(engine.find("\"players\":4"), std::string::npos) << engine;
  EXPECT_NE(engine.find("\"converged\":false"), std::string::npos) << engine;
  EXPECT_NE(engine.find("\"residual\":"), std::string::npos) << engine;

  const std::string metrics = admin.request("metrics");
  EXPECT_NE(metrics.find("\"histograms\""), std::string::npos) << metrics;

  // One connection serves repeated polls; snapshot embeds all three planes.
  const std::string snapshot = admin.request("snapshot");
  EXPECT_NE(snapshot.find("\"health\":{"), std::string::npos);
  EXPECT_NE(snapshot.find("\"engine\":{"), std::string::npos);
  EXPECT_NE(snapshot.find("\"metrics\":{"), std::string::npos);

  const std::string error = admin.request("launch-the-missiles");
  EXPECT_NE(error.find("\"error\""), std::string::npos) << error;
}

TEST(Admin, FlightDumpReflectsServedRequests) {
  obs::flight::reset();
  ServiceRunner runner(admin_config());
  ServiceClient client = runner.connect();
  net::BeaconMsg beacon;
  beacon.player = 1;
  client.send(beacon);
  net::PowerRequestMsg request;
  request.player = 1;
  request.round = 7;
  request.total_kw = 10.0;
  client.send(request);
  const auto reply = client.recv();
  ASSERT_TRUE(reply.has_value());

  AdminClient admin = runner.connect_admin();
  const std::string flight = admin.request("flight");
  EXPECT_NE(flight.find("\"event\":\"admit\""), std::string::npos) << flight;
  EXPECT_NE(flight.find("\"event\":\"batch_fire\""), std::string::npos)
      << flight;
}

// --- wire-level phase decomposition -----------------------------------------

TEST(Phases, EchoedOnScheduleAndSumWithinEndToEnd) {
  ServiceRunner runner(admin_config());
  ServiceClient client = runner.connect();
  net::BeaconMsg beacon;
  beacon.player = 2;
  client.send(beacon);

  net::PowerRequestMsg request;
  request.player = 2;
  request.round = 3;
  request.total_kw = 12.0;
  request.trace.trace_id = 0xabcdef01;
  request.trace.client_send_us = 1234567;
  const std::int64_t sent_us = obs::now_micros();
  client.send(request);
  const auto reply = client.recv();
  const std::int64_t rtt_us = obs::now_micros() - sent_us;
  ASSERT_TRUE(reply.has_value());
  const auto* schedule = std::get_if<net::ScheduleMsg>(&*reply);
  ASSERT_NE(schedule, nullptr);

  // The trace id round-trips so clients can correlate replies.
  EXPECT_EQ(schedule->trace_id, 0xabcdef01u);
  // The batch window (1ms) dominates: the queue phase must show the wait,
  // and the whole server-side decomposition must fit inside the measured
  // round trip (it is a strict sub-interval of it).
  const std::uint64_t phase_sum_us =
      static_cast<std::uint64_t>(schedule->phases.admit_us) +
      schedule->phases.queue_us + schedule->phases.batch_us +
      schedule->phases.solve_us;
  EXPECT_GT(phase_sum_us, 0u);
  EXPECT_LE(phase_sum_us, static_cast<std::uint64_t>(rtt_us));
  EXPECT_GE(schedule->phases.queue_us, 500u);  // ~batch_window_s of waiting
}

TEST(Phases, LoadgenAggregatesServerPhases) {
  ServiceRunner runner(admin_config(/*players=*/8));
  LoadgenConfig load;
  load.port = runner.service.port();
  load.connections = 8;
  load.requests_per_connection = 16;
  load.players = 8;
  const LoadgenReport report = run_loadgen(load);
  EXPECT_TRUE(report.clean()) << report.to_json();
  EXPECT_EQ(report.ok, 8u * 16u);
  // The 1ms batch window shows up as server-side queue wait.
  EXPECT_GT(report.server_queue_p50_us, 0.0);
  // Schema pin: downstream tooling greps these keys out of --json output.
  const std::string json = report.to_json();
  for (const char* key :
       {"\"server_admit_p50_us\"", "\"server_admit_p95_us\"",
        "\"server_queue_p50_us\"", "\"server_queue_p95_us\"",
        "\"server_batch_p50_us\"", "\"server_batch_p95_us\"",
        "\"server_solve_p50_us\"", "\"server_solve_p95_us\"",
        "\"latency_p50_us\"", "\"latency_p95_us\"", "\"latency_p99_us\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " missing\n"
                                                 << json;
  }
  // Integers-safe formatting: no std::ostream 6-digit scientific collapse.
  EXPECT_EQ(json.find("e+0"), std::string::npos) << json;
}

// --- liveness under load -----------------------------------------------------

TEST(Admin, SnapshotsAnswerDuringConcurrentLoad) {
  ServiceRunner runner(admin_config(/*players=*/16));
  LoadgenConfig load;
  load.port = runner.service.port();
  load.connections = 16;
  load.requests_per_connection = 64;
  load.players = 16;

  std::thread loader([&] {
    const LoadgenReport report = run_loadgen(load);
    EXPECT_TRUE(report.clean()) << report.to_json();
  });
  AdminClient admin = runner.connect_admin();
  std::size_t answered = 0;
  for (int i = 0; i < 50; ++i) {
    const std::string snapshot = admin.request("snapshot");
    EXPECT_NE(snapshot.find("\"health\":{"), std::string::npos);
    ++answered;
  }
  loader.join();
  EXPECT_EQ(answered, 50u);
  // After the run, the phase histograms must actually be populated.
  const std::string metrics = admin.request("metrics");
  EXPECT_NE(metrics.find("svc.phase.queue_us"), std::string::npos);
  EXPECT_NE(metrics.find("svc.phase.solve_us"), std::string::npos);
}

// --- the durable state plane surfaces through the telemetry plane -----------

TEST(Admin, PersistMetricsAndFlightEventsSurfaceAcrossAResume) {
  const std::string snap_path =
      ::testing::TempDir() + "olev_admin_persist_snap.bin";
  const std::string journal_path =
      ::testing::TempDir() + "olev_admin_persist_journal.bin";
  std::remove(snap_path.c_str());
  std::remove(journal_path.c_str());

  obs::flight::reset();
  ServiceConfig config = admin_config();
  config.snapshot_path = snap_path;
  config.journal_path = journal_path;
  {
    ServiceRunner runner(config);
    ServiceClient client = runner.connect();
    net::BeaconMsg beacon;
    beacon.player = 0;
    client.send(beacon);
    net::PowerRequestMsg request;
    request.player = 0;
    request.round = 1;
    request.total_kw = 25.0;
    request.trace.trace_id = 11;
    client.send(request);
    ASSERT_TRUE(client.recv().has_value());
    runner.stop();  // drain -> journal flush + snapshot save
    EXPECT_EQ(runner.service.stats().snapshots_saved, 1u);
    EXPECT_EQ(runner.service.stats().journal_records, 1u);
  }

  // Resume: the admin plane must expose the load/save metrics, the flight
  // ring must show the persistence events, and the engine JSON must carry
  // the resume fields the CI persist job asserts on.
  ServiceConfig resumed_config = config;
  resumed_config.resume = true;
  resumed_config.journal_path.clear();  // second boot: snapshot plane only
  ServiceRunner resumed(resumed_config);
  ServiceClient reattach = resumed.connect();
  net::BeaconMsg beacon;
  beacon.player = 0;  // bound in the snapshot -> session_resume event
  reattach.send(beacon);
  const auto notice = reattach.recv();
  ASSERT_TRUE(notice.has_value());

  AdminClient admin = resumed.connect_admin();
  const std::string metrics = admin.request("metrics");
  for (const char* name :
       {"persist.snapshot.bytes", "persist.snapshot.save_us",
        "persist.snapshot.load_us", "persist.journal.records"}) {
    EXPECT_NE(metrics.find(name), std::string::npos) << name << "\n" << metrics;
  }

  const std::string flight = admin.request("flight");
  for (const char* event :
       {"\"event\":\"snapshot_save\"", "\"event\":\"snapshot_load\"",
        "\"event\":\"session_resume\""}) {
    EXPECT_NE(flight.find(event), std::string::npos) << event << "\n" << flight;
  }

  const std::string engine = admin.request("engine");
  EXPECT_NE(engine.find("\"resumed\":true"), std::string::npos) << engine;
  EXPECT_NE(engine.find("\"sessions_resumed\":1"), std::string::npos) << engine;
  EXPECT_NE(engine.find("\"updates\":1"), std::string::npos) << engine;

  resumed.stop();
  std::remove(snap_path.c_str());
  std::remove(journal_path.c_str());
}

}  // namespace
}  // namespace olev::svc
