// The serving layer: framing, protocol robustness (oversized / truncated
// frames, deadlines, backpressure, idle reaping, drain), concurrent load,
// and the bit-identity contract with the in-process distributed driver.
#include "svc/service.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "core/best_response.h"
#include "core/distributed.h"
#include "core/satisfaction.h"
#include "net/message.h"
#include "svc/client.h"
#include "svc/frame.h"
#include "svc/loadgen.h"

namespace olev::svc {
namespace {

core::SectionCost make_cost(double cap = 40.0) {
  return core::SectionCost(
      std::make_unique<core::NonlinearPricing>(5.0, 0.875, cap),
      core::OverloadCost{1.0}, util::kw(cap));
}

/// Service on an ephemeral port driven by a background thread; stops and
/// joins on destruction so every test ends with a drained daemon.
struct ServiceRunner {
  explicit ServiceRunner(ServiceConfig config)
      : service(make_cost(), config),
        thread([this] { service.run(); }) {}

  ~ServiceRunner() { stop(); }

  void stop() {
    service.request_stop();
    if (thread.joinable()) thread.join();
  }

  ServiceClient connect() {
    return ServiceClient::connect("127.0.0.1", service.port());
  }

  PricingService service;
  std::thread thread;
};

ServiceConfig base_config(std::size_t players = 4, std::size_t sections = 2) {
  ServiceConfig config;
  config.players = players;
  config.sections = sections;
  config.batch_window_s = 0.001;
  return config;
}

net::PowerRequestMsg request_msg(std::uint32_t player, std::uint64_t round,
                                 double total_kw) {
  net::PowerRequestMsg request;
  request.player = player;
  request.round = round;
  request.total_kw = total_kw;
  return request;
}

// --- framing ---------------------------------------------------------------

TEST(Frame, RoundTripsAcrossArbitrarySplits) {
  const net::Message message = request_msg(3, 17, 42.5);
  const std::vector<std::uint8_t> frame = encode_frame(message);
  // Three frames back to back, fed one byte at a time.
  std::vector<std::uint8_t> stream;
  for (int i = 0; i < 3; ++i) {
    stream.insert(stream.end(), frame.begin(), frame.end());
  }
  FrameDecoder decoder(kDefaultMaxFrameBytes);
  std::size_t frames = 0;
  for (const std::uint8_t byte : stream) {
    ASSERT_TRUE(decoder.feed({&byte, 1}));
    while (const auto payload = decoder.next()) {
      const net::Message decoded = net::deserialize(*payload);
      EXPECT_EQ(std::get<net::PowerRequestMsg>(decoded),
                std::get<net::PowerRequestMsg>(message));
      ++frames;
    }
  }
  EXPECT_EQ(frames, 3u);
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(Frame, OversizedHeaderPoisonsTheDecoder) {
  FrameDecoder decoder(64);
  const std::uint8_t header[kFrameHeaderBytes] = {0xff, 0xff, 0xff, 0x7f};
  EXPECT_FALSE(decoder.feed(header));
  EXPECT_TRUE(decoder.oversized());
  // Once poisoned, everything is rejected and nothing is buffered.
  const std::uint8_t more[] = {1, 2, 3};
  EXPECT_FALSE(decoder.feed(more));
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
  EXPECT_FALSE(decoder.next().has_value());
}

// --- malformed input at the server -----------------------------------------

TEST(Service, OversizedFrameAnsweredAndConnectionClosed) {
  ServiceConfig config = base_config();
  config.max_frame_bytes = 256;
  ServiceRunner runner(config);
  ServiceClient client = runner.connect();

  // Header alone condemns the stream: claims 1 KiB against a 256 B cap.
  const std::uint8_t header[kFrameHeaderBytes] = {0x00, 0x04, 0x00, 0x00};
  client.send_raw(header);

  const auto reply = client.recv(5.0);
  ASSERT_TRUE(reply.has_value());
  const auto& control = std::get<net::ControlMsg>(*reply);
  EXPECT_EQ(control.code, net::ControlCode::kMalformed);
  EXPECT_FALSE(client.recv(5.0).has_value());
  EXPECT_TRUE(client.peer_closed());

  runner.stop();
  EXPECT_EQ(runner.service.stats().malformed_frames, 1u);
}

TEST(Service, TruncatedPayloadAnsweredAndConnectionClosed) {
  ServiceRunner runner(base_config());
  ServiceClient client = runner.connect();

  // A real message with its tail chopped off: the length prefix is
  // consistent, but the codec runs out of bytes mid-field.
  std::vector<std::uint8_t> frame = encode_frame(request_msg(1, 2, 3.0));
  frame.resize(frame.size() - 5);
  const std::uint32_t truncated_len =
      static_cast<std::uint32_t>(frame.size() - kFrameHeaderBytes);
  std::memcpy(frame.data(), &truncated_len, sizeof(truncated_len));
  client.send_raw(frame);

  const auto reply = client.recv(5.0);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(std::get<net::ControlMsg>(*reply).code,
            net::ControlCode::kMalformed);
  EXPECT_FALSE(client.recv(5.0).has_value());
  EXPECT_TRUE(client.peer_closed());

  runner.stop();
  EXPECT_EQ(runner.service.stats().malformed_frames, 1u);
}

TEST(Service, BadPlayerAndNonFiniteRequestsRejectedWithoutDisconnect) {
  ServiceRunner runner(base_config(/*players=*/4));
  ServiceClient client = runner.connect();

  client.send(request_msg(99, 7, 10.0));
  auto reply = client.recv(5.0);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(std::get<net::ControlMsg>(*reply).code,
            net::ControlCode::kBadRequest);
  EXPECT_EQ(std::get<net::ControlMsg>(*reply).round, 7u);

  client.send(request_msg(0, 8, std::nan("")));
  reply = client.recv(5.0);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(std::get<net::ControlMsg>(*reply).code,
            net::ControlCode::kBadRequest);

  // The session survives garbage *requests* (unlike garbage frames): a
  // well-formed one still gets scheduled.
  client.send(request_msg(0, 9, 25.0));
  reply = client.recv(5.0);
  ASSERT_TRUE(reply.has_value());
  const auto& schedule = std::get<net::ScheduleMsg>(*reply);
  EXPECT_EQ(schedule.player, 0u);
  EXPECT_EQ(schedule.round, 9u);
  EXPECT_EQ(schedule.row_kw.size(), 2u);
}

// --- deadlines, backpressure, drain ----------------------------------------

TEST(Service, DeadlineExpiryAnsweredExplicitly) {
  ServiceConfig config = base_config();
  config.batch_window_s = 5.0;  // never fires within the test
  config.request_deadline_s = 0.05;
  ServiceRunner runner(config);
  ServiceClient client = runner.connect();

  client.send(request_msg(1, 11, 20.0));
  const auto reply = client.recv(5.0);
  ASSERT_TRUE(reply.has_value());
  const auto& control = std::get<net::ControlMsg>(*reply);
  EXPECT_EQ(control.code, net::ControlCode::kDeadlineExpired);
  EXPECT_EQ(control.player, 1u);
  EXPECT_EQ(control.round, 11u);

  runner.stop();
  EXPECT_EQ(runner.service.stats().deadline_expired, 1u);
  EXPECT_EQ(runner.service.stats().requests_served, 0u);
}

TEST(Service, QueueFullAnswersRetryLaterAndDrainServesTheAdmitted) {
  ServiceConfig config = base_config();
  config.batch_window_s = 30.0;  // hold everything for the drain
  config.request_deadline_s = 30.0;
  config.max_queue = 2;
  ServiceRunner runner(config);
  ServiceClient client = runner.connect();

  client.send(request_msg(0, 1, 10.0));
  client.send(request_msg(0, 2, 10.0));
  client.send(request_msg(0, 3, 10.0));  // bounces off the full queue

  auto reply = client.recv(5.0);
  ASSERT_TRUE(reply.has_value());
  const auto& retry = std::get<net::ControlMsg>(*reply);
  EXPECT_EQ(retry.code, net::ControlCode::kRetryLater);
  EXPECT_EQ(retry.round, 3u);

  // Drain answers what was admitted, then says goodbye.
  runner.service.request_stop();
  for (std::uint64_t round = 1; round <= 2; ++round) {
    reply = client.recv(5.0);
    ASSERT_TRUE(reply.has_value());
    const auto& schedule = std::get<net::ScheduleMsg>(*reply);
    EXPECT_EQ(schedule.round, round);
  }
  reply = client.recv(5.0);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(std::get<net::ControlMsg>(*reply).code,
            net::ControlCode::kDraining);
  EXPECT_FALSE(client.recv(5.0).has_value());
  EXPECT_TRUE(client.peer_closed());

  runner.stop();
  EXPECT_EQ(runner.service.stats().retry_later, 1u);
  EXPECT_EQ(runner.service.stats().requests_served, 2u);
}

TEST(Service, DrainNotifiesIdleConnections) {
  ServiceRunner runner(base_config());
  ServiceClient client = runner.connect();
  // One served request first: proves the session is established (a stop
  // racing the TCP accept would otherwise close the listener before the
  // server ever saw us).
  client.send(request_msg(0, 1, 5.0));
  ASSERT_TRUE(client.recv(5.0).has_value());
  runner.service.request_stop();

  const auto reply = client.recv(5.0);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(std::get<net::ControlMsg>(*reply).code,
            net::ControlCode::kDraining);
  EXPECT_FALSE(client.recv(5.0).has_value());
  EXPECT_TRUE(client.peer_closed());
  runner.stop();
}

TEST(Service, IdleConnectionsAreReaped) {
  ServiceConfig config = base_config();
  config.idle_timeout_s = 0.05;
  ServiceRunner runner(config);
  ServiceClient client = runner.connect();

  // Say nothing; the server should hang up on us.
  EXPECT_FALSE(client.recv(2.0).has_value());
  EXPECT_TRUE(client.peer_closed());

  runner.stop();
  EXPECT_GE(runner.service.stats().connections_reaped, 1u);
}

// --- concurrency ------------------------------------------------------------

TEST(Service, SixtyFourConcurrentConnectionsRunClean) {
  ServiceConfig config = base_config(/*players=*/64, /*sections=*/8);
  ServiceRunner runner(config);

  LoadgenConfig load;
  load.port = runner.service.port();
  load.connections = 64;
  load.requests_per_connection = 10;
  load.players = 64;
  const LoadgenReport report = run_loadgen(load);

  EXPECT_TRUE(report.clean()) << report.to_json();
  EXPECT_EQ(report.ok, 640u);
  EXPECT_EQ(report.garbled, 0u);
  EXPECT_EQ(report.errors, 0u);

  runner.stop();
  EXPECT_EQ(runner.service.stats().requests_served, 640u);
  EXPECT_EQ(runner.service.stats().connections_accepted, 64u);
}

// --- mean-field engine mode (olevd --engine=meanfield) ----------------------

TEST(Service, MeanFieldSessionServesFlatRowsAndClosedFormPayments) {
  ServiceConfig config = base_config(/*players=*/3, /*sections=*/4);
  config.engine_mode = EngineMode::kMeanField;
  ServiceRunner runner(config);
  ServiceClient client = runner.connect();

  // Mean-field rows are the flat T-share spread p / C, and the payment is
  // the flat-field closed form C * [Z(T/C) - Z((T - p)/C)] (engine.h).
  client.send(request_msg(0, 1, 20.0));
  auto reply = client.recv(5.0);
  ASSERT_TRUE(reply.has_value());
  const auto& first = std::get<net::ScheduleMsg>(*reply);
  ASSERT_EQ(first.row_kw.size(), 4u);
  for (const double cell : first.row_kw) EXPECT_DOUBLE_EQ(cell, 20.0 / 4.0);
  const core::SectionCost cost = make_cost();
  const double expected_first = 4.0 * (cost.value(5.0) - cost.value(0.0));
  EXPECT_NEAR(first.payment, expected_first, 1e-9 * expected_first);

  // The second player prices against the field already carrying the first.
  client.send(request_msg(1, 2, 12.0));
  reply = client.recv(5.0);
  ASSERT_TRUE(reply.has_value());
  const auto& second = std::get<net::ScheduleMsg>(*reply);
  const double expected_second = 4.0 * (cost.value(8.0) - cost.value(5.0));
  EXPECT_NEAR(second.payment, expected_second, 1e-9 * expected_second);

  runner.stop();
  EXPECT_EQ(runner.service.stats().requests_served, 2u);
}

TEST(Service, MeanFieldSixtyFourConcurrentConnectionsRunClean) {
  ServiceConfig config = base_config(/*players=*/64, /*sections=*/8);
  config.engine_mode = EngineMode::kMeanField;
  ServiceRunner runner(config);

  LoadgenConfig load;
  load.port = runner.service.port();
  load.connections = 64;
  load.requests_per_connection = 10;
  load.players = 64;
  const LoadgenReport report = run_loadgen(load);

  EXPECT_TRUE(report.clean()) << report.to_json();
  EXPECT_EQ(report.ok, 640u);
  EXPECT_EQ(report.garbled, 0u);
  EXPECT_EQ(report.errors, 0u);

  runner.stop();
  EXPECT_EQ(runner.service.stats().requests_served, 640u);
}

// --- bit-identity with the in-process distributed driver --------------------

/// A lockstep best-response player: answers each announcement exactly like
/// core's OlevAgent, records its final schedule row and payment, exits on
/// the CONVERGED broadcast.
struct LockstepClient {
  std::vector<double> final_row;
  double final_payment = 0.0;
  bool saw_converged = false;

  void run(std::uint16_t port, std::uint32_t player, double weight,
           const core::SectionCost& cost) {
    const core::LogSatisfaction satisfaction(weight);
    ServiceClient client = ServiceClient::connect("127.0.0.1", port);
    net::BeaconMsg beacon;
    beacon.player = player;
    client.send(beacon);
    for (;;) {
      const auto message = client.recv(10.0);
      if (!message) return;
      if (const auto* announcement =
              std::get_if<net::PaymentFunctionMsg>(&*message)) {
        const core::BestResponse response =
            core::best_response(satisfaction, cost,
                                announcement->others_load_kw, util::kw(200.0));
        client.send(
            request_msg(player, announcement->round, response.p_star));
      } else if (const auto* schedule =
                     std::get_if<net::ScheduleMsg>(&*message)) {
        final_row = schedule->row_kw;
        final_payment = schedule->payment;
      } else if (const auto* control =
                     std::get_if<net::ControlMsg>(&*message)) {
        if (control->code == net::ControlCode::kConverged) {
          saw_converged = true;
          return;
        }
      }
    }
  }
};

TEST(Service, GridPacedSessionMatchesDistributedDriverBitExactly) {
  const std::vector<double> weights{10.0, 20.0, 15.0};

  // Reference: the in-process bus-driven session on a perfect link.
  std::vector<core::PlayerSpec> players;
  for (const double w : weights) {
    core::PlayerSpec player;
    player.satisfaction = std::make_unique<core::LogSatisfaction>(w);
    player.p_max = util::kw(200.0);
    players.push_back(std::move(player));
  }
  const core::DistributedResult reference = core::run_distributed_game(
      std::move(players), make_cost(), 3, util::kw(50.0));
  ASSERT_TRUE(reference.converged);

  // Served: same game, grid-paced announcements over real sockets.
  ServiceConfig config;
  config.players = weights.size();
  config.sections = 3;
  config.announce = true;
  config.batch_window_s = 0.0005;
  ServiceRunner runner(config);

  const core::SectionCost cost = make_cost();
  std::vector<LockstepClient> clients(weights.size());
  std::vector<std::thread> threads;
  for (std::size_t n = 0; n < weights.size(); ++n) {
    threads.emplace_back([&, n] {
      clients[n].run(runner.service.port(), static_cast<std::uint32_t>(n),
                     weights[n], cost);
    });
  }
  for (std::thread& thread : threads) thread.join();
  runner.stop();

  ASSERT_TRUE(runner.service.game_converged());
  EXPECT_EQ(runner.service.game_updates(), reference.rounds);
  // Bit-exact: same update sequence, same arithmetic, zero tolerance.
  EXPECT_EQ(runner.service.schedule().max_abs_diff(reference.schedule), 0.0);
  ASSERT_EQ(reference.payments.size(), weights.size());
  for (std::size_t n = 0; n < weights.size(); ++n) {
    EXPECT_TRUE(clients[n].saw_converged) << "player " << n;
    EXPECT_EQ(clients[n].final_payment, reference.payments[n])
        << "player " << n;
    ASSERT_EQ(clients[n].final_row.size(), 3u);
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_EQ(clients[n].final_row[c], reference.schedule.row(n)[c])
          << "player " << n << " section " << c;
    }
  }
}

}  // namespace
}  // namespace olev::svc
