#include "util/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace olev::util {
namespace {

TEST(Fmt, FixedPrecision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(1.0, 0), "1");
  EXPECT_EQ(fmt(-0.5, 3), "-0.500");
}

TEST(CsvEscape, PlainPassThrough) {
  EXPECT_EQ(csv_escape("hello"), "hello");
  EXPECT_EQ(csv_escape(""), "");
}

TEST(CsvEscape, QuotesCommaFields) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
}

TEST(CsvEscape, DoublesEmbeddedQuotes) {
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvEscape, QuotesNewlines) {
  EXPECT_EQ(csv_escape("a\nb"), "\"a\nb\"");
}

TEST(Table, CsvRoundTrip) {
  Table table({"x", "y"});
  table.add_row({"1", "2"});
  table.add_row({"3", "4"});
  std::ostringstream os;
  table.write_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n3,4\n");
}

TEST(Table, ShortRowsArePadded) {
  Table table({"a", "b", "c"});
  table.add_row({"1"});
  std::ostringstream os;
  table.write_csv(os);
  EXPECT_EQ(os.str(), "a,b,c\n1,,\n");
}

TEST(Table, NumericRowFormatting) {
  Table table({"v"});
  table.add_row_numeric({2.5}, 1);
  std::ostringstream os;
  table.write_csv(os);
  EXPECT_EQ(os.str(), "v\n2.5\n");
}

TEST(Table, PrettyAlignsColumns) {
  Table table({"name", "v"});
  table.add_row({"x", "10"});
  table.add_row({"longer", "7"});
  std::ostringstream os;
  table.write_pretty(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name   | v  |"), std::string::npos);
  EXPECT_NE(out.find("| longer | 7  |"), std::string::npos);
}

TEST(Table, SaveCsvWritesFile) {
  Table table({"h"});
  table.add_row({"1"});
  const std::string path = ::testing::TempDir() + "/olev_table_test.csv";
  table.save_csv(path);
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), "h\n1\n");
  std::remove(path.c_str());
}

TEST(Table, SaveCsvThrowsOnBadPath) {
  Table table({"h"});
  EXPECT_THROW(table.save_csv("/nonexistent_dir_xyz/file.csv"), std::runtime_error);
}

TEST(Table, RowCount) {
  Table table({"h"});
  EXPECT_EQ(table.rows(), 0u);
  table.add_row({"1"}).add_row({"2"});
  EXPECT_EQ(table.rows(), 2u);
}

}  // namespace
}  // namespace olev::util
