// Adversarial segmentation fuzz for svc::FrameDecoder.
//
// The decoder's contract (svc/frame.h): any segmentation of a valid frame
// stream decodes to exactly the original messages; a frame header exceeding
// the bound poisons the decoder permanently with the buffer released; and no
// input -- however mangled -- can crash it or grow its buffer past one
// maximal frame plus the bytes of the last feed().  This suite drives all
// three properties with a seeded generator so failures replay exactly:
//
//   * every-byte-boundary splits of a multi-message stream (all five
//     net::Message variants), fed as two spans,
//   * random chunkings of the same stream (1..17-byte spans),
//   * random single-byte mutations, where the decoder must either still
//     produce well-formed frames, poison itself, or starve -- and
//     net::deserialize() on whatever it emits may throw but not crash,
//   * trickled maximal frames, asserting the buffered-bytes bound.
//
// The ASan/UBSan CI leg runs this file too (it is tier-1), which is the
// actual teeth behind "no crashes": any out-of-bounds read in the decoder or
// the deserializer fails that leg.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <random>
#include <span>
#include <stdexcept>
#include <vector>

#include "net/message.h"
#include "svc/frame.h"

namespace olev::svc {
namespace {

std::vector<net::Message> sample_messages() {
  net::BeaconMsg beacon;
  beacon.player = 7;
  beacon.position_m = 1234.5;
  beacon.velocity_mps = 26.8;
  beacon.soc = 0.42;

  net::PaymentFunctionMsg payment;
  payment.player = 3;
  payment.round = 11;
  payment.others_load_kw = {12.0, 0.0, 7.5, 3.25};

  net::PowerRequestMsg request;
  request.player = 3;
  request.round = 11;
  request.total_kw = 55.75;

  net::ScheduleMsg schedule;
  schedule.player = 3;
  schedule.round = 12;
  schedule.row_kw = {20.0, 15.75, 12.0, 8.0};
  schedule.payment = 101.5;

  net::ControlMsg control;
  control.code = net::ControlCode::kRetryLater;
  control.player = 9;
  control.round = 13;

  return {beacon, payment, request, schedule, control};
}

/// The concatenated wire bytes of `messages`.
std::vector<std::uint8_t> build_stream(
    const std::vector<net::Message>& messages) {
  std::vector<std::uint8_t> stream;
  for (const net::Message& message : messages) {
    const std::vector<std::uint8_t> frame = encode_frame(message);
    stream.insert(stream.end(), frame.begin(), frame.end());
  }
  return stream;
}

/// Feeds `stream` in the given segmentation and returns every decoded
/// payload.  EXPECTs that feeding valid data never reports oversized.
std::vector<std::vector<std::uint8_t>> decode_segmented(
    std::span<const std::uint8_t> stream, std::span<const std::size_t> cuts) {
  FrameDecoder decoder;
  std::vector<std::vector<std::uint8_t>> payloads;
  std::size_t offset = 0;
  auto feed_chunk = [&](std::size_t end) {
    EXPECT_TRUE(decoder.feed(stream.subspan(offset, end - offset)));
    offset = end;
    while (auto payload = decoder.next()) {
      payloads.push_back(std::move(*payload));
    }
  };
  for (const std::size_t cut : cuts) feed_chunk(cut);
  feed_chunk(stream.size());
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
  EXPECT_FALSE(decoder.oversized());
  return payloads;
}

void expect_round_trip(
    const std::vector<net::Message>& messages,
    const std::vector<std::vector<std::uint8_t>>& payloads) {
  ASSERT_EQ(payloads.size(), messages.size());
  for (std::size_t i = 0; i < messages.size(); ++i) {
    EXPECT_EQ(net::deserialize(payloads[i]), messages[i]) << "frame " << i;
  }
}

TEST(FrameFuzz, EveryByteBoundarySplitRoundTrips) {
  const std::vector<net::Message> messages = sample_messages();
  const std::vector<std::uint8_t> stream = build_stream(messages);
  for (std::size_t cut = 0; cut <= stream.size(); ++cut) {
    const std::size_t cuts[] = {cut};
    expect_round_trip(messages, decode_segmented(stream, cuts));
  }
}

TEST(FrameFuzz, RandomChunkingsRoundTrip) {
  const std::vector<net::Message> messages = sample_messages();
  const std::vector<std::uint8_t> stream = build_stream(messages);
  std::mt19937 rng(0xf5a3e001);  // seeded: failures replay exactly
  std::uniform_int_distribution<std::size_t> chunk(1, 17);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::size_t> cuts;
    for (std::size_t at = chunk(rng); at < stream.size(); at += chunk(rng)) {
      cuts.push_back(at);
    }
    expect_round_trip(messages, decode_segmented(stream, cuts));
  }
}

// A mutated stream must never crash the decoder or the deserializer and must
// never breach the memory bound.  Every other outcome -- fewer frames, a
// deserialize throw, a poisoned decoder -- is a legal response to garbage.
TEST(FrameFuzz, SingleByteMutationsNeverCrashAndStayBounded) {
  const std::vector<net::Message> messages = sample_messages();
  const std::vector<std::uint8_t> pristine = build_stream(messages);
  constexpr std::size_t kMaxFrame = 4096;
  std::mt19937 rng(0xf5a3e002);
  std::uniform_int_distribution<std::size_t> position(0, pristine.size() - 1);
  std::uniform_int_distribution<int> value(0, 255);
  std::uniform_int_distribution<std::size_t> chunk(1, 13);

  for (int trial = 0; trial < 500; ++trial) {
    std::vector<std::uint8_t> stream = pristine;
    stream[position(rng)] = static_cast<std::uint8_t>(value(rng));

    FrameDecoder decoder(kMaxFrame);
    std::size_t offset = 0;
    std::size_t fed_ok = 0;
    while (offset < stream.size()) {
      const std::size_t take = std::min(chunk(rng), stream.size() - offset);
      const std::span<const std::uint8_t> bytes(stream.data() + offset, take);
      if (decoder.feed(bytes)) {
        fed_ok += take;
      } else {
        EXPECT_TRUE(decoder.oversized());
      }
      offset += take;
      while (auto payload = decoder.next()) {
        EXPECT_LE(payload->size(), kMaxFrame);
        try {
          (void)net::deserialize(*payload);
        } catch (const std::runtime_error&) {
          // Mutated payloads may be unparseable; they must throw, not crash.
        }
      }
      // The documented bound: one maximal frame plus the last feed().
      EXPECT_LE(decoder.buffered_bytes(),
                kFrameHeaderBytes + kMaxFrame + take);
    }
    if (decoder.oversized()) {
      // Poisoning is terminal: the buffer is released and further input is
      // rejected without being stored.
      EXPECT_EQ(decoder.buffered_bytes(), 0u);
      const std::uint8_t more[] = {0xaa, 0xbb};
      EXPECT_FALSE(decoder.feed(more));
      EXPECT_EQ(decoder.buffered_bytes(), 0u);
      EXPECT_FALSE(decoder.next().has_value());
    } else {
      EXPECT_EQ(fed_ok, stream.size());
      // A shrunk length prefix can carve one pristine frame into several
      // smaller ones, so the only true bound is the bytes themselves: each
      // decoded frame costs at least its header.
      EXPECT_LE(decoder.frames_decoded(), pristine.size() / kFrameHeaderBytes);
    }
  }
}

// A peer trickling a maximal-size frame one byte at a time costs exactly one
// frame of memory, and an over-bound header is convicted from the header
// alone -- no body bytes are ever buffered for it.
TEST(FrameFuzz, TrickledMaximalFrameRespectsTheMemoryBound) {
  constexpr std::size_t kMaxFrame = 512;
  FrameDecoder decoder(kMaxFrame);

  std::vector<std::uint8_t> frame;
  for (int i = 0; i < 4; ++i) {
    frame.push_back(static_cast<std::uint8_t>(kMaxFrame >> (8 * i)));
  }
  frame.resize(kFrameHeaderBytes + kMaxFrame, 0x5c);
  for (const std::uint8_t byte : frame) {
    ASSERT_TRUE(decoder.feed({&byte, 1}));
    ASSERT_LE(decoder.buffered_bytes(), kFrameHeaderBytes + kMaxFrame);
  }
  const auto payload = decoder.next();
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(payload->size(), kMaxFrame);
  EXPECT_EQ(decoder.buffered_bytes(), 0u);

  // One byte over the bound: poisoned at the fourth header byte, before any
  // body arrives.
  FrameDecoder strict(kMaxFrame);
  const std::size_t over = kMaxFrame + 1;
  std::vector<std::uint8_t> header;
  for (int i = 0; i < 4; ++i) {
    header.push_back(static_cast<std::uint8_t>(over >> (8 * i)));
  }
  ASSERT_TRUE(strict.feed({header.data(), 3}));
  EXPECT_FALSE(strict.feed({header.data() + 3, 1}));
  EXPECT_TRUE(strict.oversized());
  EXPECT_EQ(strict.buffered_bytes(), 0u);
}

}  // namespace
}  // namespace olev::svc
