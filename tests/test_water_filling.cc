#include "core/water_filling.h"

#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/rng.h"

namespace olev::core {
namespace {

double sum_of(const std::vector<double>& xs) {
  return std::accumulate(xs.begin(), xs.end(), 0.0);
}

TEST(WaterFillVolume, MatchesDefinition) {
  const std::vector<double> b{1.0, 3.0, 5.0};
  EXPECT_DOUBLE_EQ(water_fill_volume(b, olev::util::kw(0.0)), 0.0);
  EXPECT_DOUBLE_EQ(water_fill_volume(b, olev::util::kw(2.0)), 1.0);        // [1]+0+0
  EXPECT_DOUBLE_EQ(water_fill_volume(b, olev::util::kw(4.0)), 3.0 + 1.0);  // 3+1
  EXPECT_DOUBLE_EQ(water_fill_volume(b, olev::util::kw(6.0)), 5.0 + 3.0 + 1.0);
}

TEST(WaterFill, ValidatesInput) {
  EXPECT_THROW((void)water_fill({}, olev::util::kw(1.0)), std::invalid_argument);
  const std::vector<double> b{1.0};
  EXPECT_THROW((void)water_fill(b, olev::util::kw(-1.0)), std::invalid_argument);
}

TEST(WaterFill, ZeroTotalGivesZeroRow) {
  const std::vector<double> b{2.0, 1.0, 3.0};
  const auto result = water_fill(b, olev::util::kw(0.0));
  EXPECT_DOUBLE_EQ(sum_of(result.row), 0.0);
  EXPECT_DOUBLE_EQ(result.level, 1.0);  // min load
  EXPECT_EQ(result.active_sections, 0);
}

TEST(WaterFill, UniformLoadsSplitEvenly) {
  const std::vector<double> b{5.0, 5.0, 5.0, 5.0};
  const auto result = water_fill(b, olev::util::kw(8.0));
  for (double v : result.row) EXPECT_NEAR(v, 2.0, 1e-12);
  EXPECT_NEAR(result.level, 7.0, 1e-12);
  EXPECT_EQ(result.active_sections, 4);
}

TEST(WaterFill, FillsLowestSectionsFirst) {
  const std::vector<double> b{0.0, 10.0};
  const auto result = water_fill(b, olev::util::kw(5.0));
  EXPECT_NEAR(result.row[0], 5.0, 1e-12);
  EXPECT_NEAR(result.row[1], 0.0, 1e-12);
  EXPECT_EQ(result.active_sections, 1);
}

TEST(WaterFill, SpillsOverWhenBudgetLarge) {
  const std::vector<double> b{0.0, 10.0};
  const auto result = water_fill(b, olev::util::kw(30.0));
  // Level: (30 + 10) / 2 = 20.
  EXPECT_NEAR(result.level, 20.0, 1e-12);
  EXPECT_NEAR(result.row[0], 20.0, 1e-12);
  EXPECT_NEAR(result.row[1], 10.0, 1e-12);
}

TEST(WaterFill, KnownThreeSectionCase) {
  const std::vector<double> b{1.0, 2.0, 6.0};
  const auto result = water_fill(b, olev::util::kw(3.0));
  // Level (3 + 1 + 2)/2 = 3 <= 6: sections 0 and 1 active.
  EXPECT_NEAR(result.level, 3.0, 1e-12);
  EXPECT_NEAR(result.row[0], 2.0, 1e-12);
  EXPECT_NEAR(result.row[1], 1.0, 1e-12);
  EXPECT_NEAR(result.row[2], 0.0, 1e-12);
}

TEST(WaterFill, Lemma41Form) {
  // p_{n,c} = [lambda* - b_c]^+ for every section.
  const std::vector<double> b{4.0, 0.5, 7.0, 2.0};
  const auto result = water_fill(b, olev::util::kw(6.5));
  for (std::size_t c = 0; c < b.size(); ++c) {
    EXPECT_NEAR(result.row[c], std::max(0.0, result.level - b[c]), 1e-12);
  }
  EXPECT_NEAR(sum_of(result.row), 6.5, 1e-12);
}

TEST(WaterFill, PostAllocationLoadsEqualizeOnActiveSections) {
  const std::vector<double> b{3.0, 1.0, 8.0, 2.0};
  const auto result = water_fill(b, olev::util::kw(9.0));
  for (std::size_t c = 0; c < b.size(); ++c) {
    if (result.row[c] > 0.0) {
      EXPECT_NEAR(b[c] + result.row[c], result.level, 1e-12);
    } else {
      EXPECT_GE(b[c], result.level - 1e-12);
    }
  }
}

TEST(WaterFillBisect, AgreesWithExactSolver) {
  util::Rng rng(31337);
  for (int trial = 0; trial < 200; ++trial) {
    const auto sections = static_cast<std::size_t>(rng.uniform_int(1, 40));
    std::vector<double> b(sections);
    for (double& v : b) v = rng.uniform(0.0, 50.0);
    const double total = rng.uniform(0.0, 200.0);
    const auto exact = water_fill(b, olev::util::kw(total));
    const auto approx = water_fill_bisect(b, olev::util::kw(total));
    EXPECT_NEAR(exact.level, approx.level, 1e-6) << "trial " << trial;
    for (std::size_t c = 0; c < sections; ++c) {
      EXPECT_NEAR(exact.row[c], approx.row[c], 1e-6)
          << "trial " << trial << " section " << c;
    }
  }
}

TEST(WaterFillBisect, RowSumsExactlyToTotal) {
  const std::vector<double> b{2.0, 9.0, 4.0};
  const auto result = water_fill_bisect(b, olev::util::kw(7.5));
  EXPECT_NEAR(sum_of(result.row), 7.5, 1e-12);
}

TEST(WaterFillBisect, ValidatesInput) {
  EXPECT_THROW((void)water_fill_bisect({}, olev::util::kw(1.0)), std::invalid_argument);
  const std::vector<double> b{1.0};
  EXPECT_THROW((void)water_fill_bisect(b, olev::util::kw(-0.5)), std::invalid_argument);
}

TEST(WaterFill, SingleSectionTakesEverything) {
  const std::vector<double> b{42.0};
  const auto result = water_fill(b, olev::util::kw(13.0));
  EXPECT_NEAR(result.row[0], 13.0, 1e-12);
  EXPECT_NEAR(result.level, 55.0, 1e-12);
}

TEST(WaterFill, PropertyRandomizedInvariants) {
  util::Rng rng(777);
  for (int trial = 0; trial < 500; ++trial) {
    const auto sections = static_cast<std::size_t>(rng.uniform_int(1, 64));
    std::vector<double> b(sections);
    for (double& v : b) v = rng.uniform(0.0, 100.0);
    const double total = rng.uniform(0.0, 500.0);
    const auto result = water_fill(b, olev::util::kw(total));
    // (1) budget conservation
    EXPECT_NEAR(sum_of(result.row), total, 1e-8);
    // (2) nonnegativity
    for (double v : result.row) EXPECT_GE(v, 0.0);
    // (3) Lemma IV.1 form
    for (std::size_t c = 0; c < sections; ++c) {
      EXPECT_NEAR(result.row[c], std::max(0.0, result.level - b[c]), 1e-8);
    }
    // (4) Y(level) recovers the total
    EXPECT_NEAR(water_fill_volume(b, olev::util::kw(result.level)), total, 1e-8);
  }
}

TEST(WaterFillMasked, ZeroOutsideMask) {
  const std::vector<double> b{1.0, 2.0, 3.0, 4.0};
  const std::vector<bool> mask{true, false, true, false};
  const auto result = water_fill_masked(b, olev::util::kw(5.0), mask);
  EXPECT_DOUBLE_EQ(result.row[1], 0.0);
  EXPECT_DOUBLE_EQ(result.row[3], 0.0);
  EXPECT_NEAR(result.row[0] + result.row[2], 5.0, 1e-12);
}

TEST(WaterFillMasked, MatchesUnmaskedSolveOnSubset) {
  const std::vector<double> b{1.0, 2.0, 3.0, 4.0};
  const std::vector<bool> mask{true, false, true, false};
  const auto masked = water_fill_masked(b, olev::util::kw(5.0), mask);
  const std::vector<double> subset{1.0, 3.0};
  const auto direct = water_fill(subset, olev::util::kw(5.0));
  EXPECT_NEAR(masked.level, direct.level, 1e-12);
  EXPECT_NEAR(masked.row[0], direct.row[0], 1e-12);
  EXPECT_NEAR(masked.row[2], direct.row[1], 1e-12);
}

TEST(WaterFillMasked, FullMaskEqualsUnmasked) {
  const std::vector<double> b{3.0, 1.0, 2.0};
  const std::vector<bool> mask(3, true);
  const auto masked = water_fill_masked(b, olev::util::kw(4.0), mask);
  const auto plain = water_fill(b, olev::util::kw(4.0));
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_NEAR(masked.row[c], plain.row[c], 1e-12);
  }
}

TEST(WaterFillMasked, Validation) {
  const std::vector<double> b{1.0, 2.0};
  const std::vector<bool> short_mask{true};
  EXPECT_THROW((void)water_fill_masked(b, olev::util::kw(1.0), short_mask),
               std::invalid_argument);
  const std::vector<bool> empty_mask{false, false};
  EXPECT_THROW((void)water_fill_masked(b, olev::util::kw(1.0), empty_mask),
               std::invalid_argument);
  // Zero total with an empty mask is fine (nothing to place).
  const auto result =
      water_fill_masked(b, olev::util::kw(0.0), empty_mask);
  EXPECT_DOUBLE_EQ(result.row[0], 0.0);
  EXPECT_DOUBLE_EQ(result.row[1], 0.0);
}

TEST(WaterFill, MinimizesConvexCostAmongAlternatives) {
  // Water-filling minimizes sum Z(b_c + p_c) for strictly convex Z among all
  // feasible splits (Eq. 11).  Compare against random alternative splits.
  auto z = [](double x) { return (0.875 + x / 10.0) * (0.875 + x / 10.0); };
  const std::vector<double> b{1.0, 4.0, 2.5};
  const double total = 5.0;
  const auto optimal = water_fill(b, olev::util::kw(total));
  double optimal_cost = 0.0;
  for (std::size_t c = 0; c < b.size(); ++c) optimal_cost += z(b[c] + optimal.row[c]);

  util::Rng rng(5);
  for (int trial = 0; trial < 300; ++trial) {
    // Random split of `total` over three sections.
    double u1 = rng.uniform(0.0, total);
    double u2 = rng.uniform(0.0, total);
    if (u1 > u2) std::swap(u1, u2);
    const std::vector<double> alt{u1, u2 - u1, total - u2};
    double alt_cost = 0.0;
    for (std::size_t c = 0; c < b.size(); ++c) alt_cost += z(b[c] + alt[c]);
    EXPECT_GE(alt_cost, optimal_cost - 1e-9) << "trial " << trial;
  }
}

// ---- Edge cases pinned down while building the property suite ----

TEST(WaterFill, DuplicateMinimaShareTheBudget) {
  // Two tied minima: both become active and split evenly.
  const std::vector<double> b{2.0, 2.0, 9.0};
  const auto result = water_fill(b, olev::util::kw(4.0));
  EXPECT_DOUBLE_EQ(result.row[0], 2.0);
  EXPECT_DOUBLE_EQ(result.row[1], 2.0);
  EXPECT_DOUBLE_EQ(result.row[2], 0.0);
  EXPECT_DOUBLE_EQ(result.level, 4.0);
  EXPECT_EQ(result.active_sections, 2);
}

TEST(WaterFill, TinyTotalStaysOnMinSection) {
  // A total far below the gap to the second-lowest load must land entirely
  // on the argmin section, never spill via rounding.
  const std::vector<double> b{1.0, 1.0 + 1e-3};
  const auto result = water_fill(b, olev::util::kw(1e-10));
  // p_0 = (total + b_0) - b_0 cancels at machine epsilon of b_0, so the
  // argmin share is exact only to ~eps * b_0, not to eps * total.
  EXPECT_NEAR(result.row[0], 1e-10, 1e-15);
  EXPECT_DOUBLE_EQ(result.row[1], 0.0);
  EXPECT_EQ(result.active_sections, 1);
}

TEST(WaterFill, LevelExactlyAtNextLoadBoundary) {
  // total chosen so lambda* lands exactly on b[1]: the boundary section
  // contributes zero but either active count is consistent with the row.
  const std::vector<double> b{1.0, 3.0};
  const auto result = water_fill(b, olev::util::kw(2.0));
  EXPECT_DOUBLE_EQ(result.level, 3.0);
  EXPECT_DOUBLE_EQ(result.row[0], 2.0);
  EXPECT_DOUBLE_EQ(result.row[1], 0.0);
}

TEST(WaterFillMasked, SingleMaskedSection) {
  const std::vector<double> b{4.0, 100.0, 6.0};
  const std::vector<bool> mask{false, true, false};
  const auto result = water_fill_masked(b, olev::util::kw(2.5), mask);
  EXPECT_DOUBLE_EQ(result.row[0], 0.0);
  EXPECT_DOUBLE_EQ(result.row[1], 2.5);  // even though it's the priciest
  EXPECT_DOUBLE_EQ(result.row[2], 0.0);
  EXPECT_DOUBLE_EQ(result.level, 102.5);
}

TEST(SortedLoads, HandlesSingleSectionAndRepeatedUpdates) {
  SortedLoads sorted(std::vector<double>{5.0});
  EXPECT_DOUBLE_EQ(sorted.level_for(olev::util::kw(2.0)), 7.0);
  sorted.update_one(0, 1.0);
  EXPECT_DOUBLE_EQ(sorted.level_for(olev::util::kw(2.0)), 3.0);
  sorted.update_one(0, 1.0);  // no-op value change
  EXPECT_DOUBLE_EQ(sorted.level_for(olev::util::kw(0.0)), 1.0);
}

TEST(SortedLoads, UpdateOneMovesEntryAcrossTies) {
  std::vector<double> b{3.0, 3.0, 3.0, 0.5};
  SortedLoads sorted(b);
  sorted.update_one(1, 10.0);
  b[1] = 10.0;
  const SortedLoads fresh(b);
  for (double total : {0.0, 1.0, 5.0, 50.0}) {
    EXPECT_EQ(fresh.level_for(olev::util::kw(total)), sorted.level_for(olev::util::kw(total))) << total;
  }
}

}  // namespace
}  // namespace olev::core
