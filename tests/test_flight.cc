// Flight-recorder contract tests (src/obs/flight.h): the seqlock ring must
// never return torn records, must survive wraparound, and must stay
// ThreadSanitizer-clean under concurrent writers -- this file is part of the
// tsan CI leg for exactly that reason.
#include "obs/flight.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace olev::obs::flight {
namespace {

class FlightTest : public ::testing::Test {
 protected:
  void SetUp() override { reset(); }
  void TearDown() override { reset(); }
};

TEST_F(FlightTest, RecordsComeBackInOrderWithPayloads) {
  record(Event::kAdmit, 7, 3);
  record(Event::kBatchFire, 4, 0);
  record(Event::kDrain, 1, 2);
  const std::vector<Record> records = snapshot();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(total_recorded(), 3u);
  // All three came from this thread, so one lane, ticket order == call order.
  EXPECT_EQ(records[0].event, Event::kAdmit);
  EXPECT_EQ(records[0].a, 7u);
  EXPECT_EQ(records[0].b, 3u);
  EXPECT_EQ(records[1].event, Event::kBatchFire);
  EXPECT_EQ(records[2].event, Event::kDrain);
  EXPECT_LE(records[0].ts_us, records[1].ts_us);
  EXPECT_LE(records[1].ts_us, records[2].ts_us);
}

TEST_F(FlightTest, EmptyRecorderSnapshotsEmpty) {
  EXPECT_TRUE(snapshot().empty());
  EXPECT_EQ(total_recorded(), 0u);
}

TEST_F(FlightTest, WraparoundKeepsTheNewestSlots) {
  // One thread = one lane; overfill it 3x.  The ring must retain exactly the
  // last kSlotsPerLane events, and they must be the newest ones.
  const std::uint64_t total = 3 * kSlotsPerLane;
  for (std::uint64_t i = 0; i < total; ++i) {
    record(Event::kAdmit, i, i ^ 0x5aa5u);
  }
  EXPECT_EQ(total_recorded(), total);
  const std::vector<Record> records = snapshot();
  ASSERT_EQ(records.size(), kSlotsPerLane);
  std::vector<std::uint64_t> seen;
  seen.reserve(records.size());
  for (const Record& r : records) {
    EXPECT_EQ(r.b, r.a ^ 0x5aa5u);
    seen.push_back(r.a);
  }
  std::sort(seen.begin(), seen.end());
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], total - kSlotsPerLane + i);
  }
}

TEST_F(FlightTest, EventNamesAreStable) {
  EXPECT_STREQ(event_name(Event::kAdmit), "admit");
  EXPECT_STREQ(event_name(Event::kBatchFire), "batch_fire");
  EXPECT_STREQ(event_name(Event::kRoundConverge), "round_converge");
  EXPECT_STREQ(event_name(Event::kBackpressure), "backpressure");
  EXPECT_STREQ(event_name(Event::kExpire), "expire");
  EXPECT_STREQ(event_name(Event::kDrain), "drain");
}

TEST_F(FlightTest, JsonDumpHasTheDocumentedShape) {
  record(Event::kBackpressure, 5, 9);
  const std::string json = to_json(snapshot());
  EXPECT_NE(json.find("\"recorded\":"), std::string::npos);
  EXPECT_NE(json.find("\"returned\":1"), std::string::npos);
  EXPECT_NE(json.find("\"event\":\"backpressure\""), std::string::npos);
  EXPECT_NE(json.find("\"a\":5"), std::string::npos);
  EXPECT_NE(json.find("\"b\":9"), std::string::npos);
}

TEST_F(FlightTest, ThreadsLandOnDistinctLanes) {
  // kLanes writer threads, one record each: round-robin lane assignment must
  // spread them across kLanes distinct lanes.
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < kLanes; ++i) {
    threads.emplace_back([i] {
      record(Event::kAdmit, static_cast<std::uint64_t>(i), 0);
    });
  }
  for (std::thread& t : threads) t.join();
  const std::vector<Record> records = snapshot();
  ASSERT_EQ(records.size(), kLanes);
  std::set<std::uint32_t> lanes;
  for (const Record& r : records) lanes.insert(r.lane);
  EXPECT_EQ(lanes.size(), kLanes);
}

// The headline concurrency property: writers hammering wraparound while a
// reader snapshots continuously.  Every record that comes back must be
// internally consistent (b == a ^ kTag, event matches the writer), proving
// the seqlock filter drops torn slots instead of mixing old and new payload
// words.  Run under TSan this also proves the data-race-freedom claim.
TEST_F(FlightTest, ConcurrentWritersAndReaderNeverSeeTornRecords) {
  constexpr std::uint64_t kTag = 0xf00dbeefcafe1234ull;
  constexpr std::size_t kWriters = 4;
  constexpr std::uint64_t kPerWriter = 8 * kSlotsPerLane;  // deep wraparound

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn{0};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (const Record& r : snapshot()) {
        if (r.b != (r.a ^ kTag) || r.event != Event::kAdmit) {
          torn.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  });

  std::vector<std::thread> writers;
  for (std::size_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([w] {
      for (std::uint64_t i = 0; i < kPerWriter; ++i) {
        const std::uint64_t a = (static_cast<std::uint64_t>(w) << 32) | i;
        record(Event::kAdmit, a, a ^ kTag);
      }
    });
  }
  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(torn.load(), 0u);
  EXPECT_EQ(total_recorded(), kWriters * kPerWriter);
  // Quiesced now: a final snapshot still only returns consistent records.
  for (const Record& r : snapshot()) {
    EXPECT_EQ(r.b, r.a ^ kTag);
  }
}

}  // namespace
}  // namespace olev::obs::flight
