// Property-based cross-check of the three water-filling solvers.
//
// For ~1000 random (b, total, mask) instances:
//   * water_fill, water_fill_bisect and generalized_fill (with identical
//     per-section costs) must agree on the allocation;
//   * the budget is conserved: sum(row) == total;
//   * every entry is non-negative;
//   * no *inactive* section sits below the water level (a section left
//     empty must already be loaded to at least lambda*);
//   * the masked solver leaves unmasked sections at exactly zero and solves
//     Lemma IV.1 verbatim on the subset;
//   * SortedLoads reproduces water_fill bit-for-bit, both freshly assigned
//     and after single-entry update_one repositioning.

#include "core/water_filling.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <numeric>
#include <vector>

#include "core/cost.h"
#include "util/rng.h"

namespace olev::core {
namespace {

constexpr int kTrials = 1000;

double sum_of(const std::vector<double>& xs) {
  return std::accumulate(xs.begin(), xs.end(), 0.0);
}

struct Instance {
  std::vector<double> b;
  double total = 0.0;
  std::vector<bool> mask;  ///< at least one true
};

Instance random_instance(util::Rng& rng, int trial) {
  Instance instance;
  const auto sections = static_cast<std::size_t>(rng.uniform_int(1, 80));
  instance.b.resize(sections);
  for (double& v : instance.b) v = rng.uniform(0.0, 60.0);
  // Exercise the edge lattice: zero totals, all-equal loads, duplicated
  // minima, tiny totals -- not just generic interiors.
  switch (trial % 7) {
    case 0:
      instance.total = 0.0;
      break;
    case 1:
      std::fill(instance.b.begin(), instance.b.end(), rng.uniform(0.0, 30.0));
      instance.total = rng.uniform(0.0, 100.0);
      break;
    case 2: {
      const double low = rng.uniform(0.0, 5.0);
      for (std::size_t c = 0; c + 1 < instance.b.size(); c += 2) {
        instance.b[c] = low;
      }
      instance.total = rng.uniform(0.0, 100.0);
      break;
    }
    case 3:
      instance.total = rng.uniform(0.0, 1e-7);
      break;
    default:
      instance.total = rng.uniform(0.0, 300.0);
      break;
  }
  instance.mask.assign(sections, false);
  std::size_t masked = 0;
  for (std::size_t c = 0; c < sections; ++c) {
    if (rng.bernoulli(0.6)) {
      instance.mask[c] = true;
      ++masked;
    }
  }
  if (masked == 0) {
    instance.mask[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(sections) - 1))] = true;
  }
  return instance;
}

// Scale-aware tolerance: 1e-9 absolute for unit-scale instances, relative
// for large totals.
double tol(double total) { return 1e-9 * std::max(1.0, total); }

TEST(WaterFillProperty, SolversAgreeAndInvariantsHold) {
  util::Rng rng(0xf177);
  const SectionCost shared_cost(
      std::make_unique<NonlinearPricing>(5.0, 0.875, 40.0), OverloadCost{1.0},
      olev::util::kw(40.0));

  for (int trial = 0; trial < kTrials; ++trial) {
    const Instance instance = random_instance(rng, trial);
    const auto& b = instance.b;
    const double total = instance.total;

    const WaterFillResult exact = water_fill(b, olev::util::kw(total));
    const WaterFillResult bisect = water_fill_bisect(b, olev::util::kw(total), 1e-13);
    std::vector<const SectionCost*> costs(b.size(), &shared_cost);
    const GeneralizedFillResult general =
        generalized_fill(costs, b, olev::util::kw(total), 1e-13);

    // Conservation and non-negativity for every solver.
    EXPECT_NEAR(sum_of(exact.row), total, tol(total)) << "trial " << trial;
    EXPECT_NEAR(sum_of(bisect.row), total, tol(total)) << "trial " << trial;
    EXPECT_NEAR(sum_of(general.row), total, tol(total)) << "trial " << trial;
    for (std::size_t c = 0; c < b.size(); ++c) {
      EXPECT_GE(exact.row[c], 0.0) << "trial " << trial;
      EXPECT_GE(bisect.row[c], 0.0) << "trial " << trial;
      EXPECT_GE(general.row[c], 0.0) << "trial " << trial;
    }

    // The three solvers agree entry-wise.
    for (std::size_t c = 0; c < b.size(); ++c) {
      EXPECT_NEAR(exact.row[c], bisect.row[c], tol(total))
          << "trial " << trial << " section " << c;
      EXPECT_NEAR(exact.row[c], general.row[c], tol(total))
          << "trial " << trial << " section " << c;
    }

    // No inactive section below the water level: if p_c == 0 then
    // b_c >= lambda* (else water-filling would have used it).
    if (total > 0.0) {
      for (std::size_t c = 0; c < b.size(); ++c) {
        if (exact.row[c] == 0.0) {
          EXPECT_GE(b[c], exact.level - tol(total))
              << "trial " << trial << " section " << c;
        }
      }
    }

    // Masked solver: zero off-mask, Lemma IV.1 verbatim on the subset.
    const WaterFillResult masked = water_fill_masked(b, olev::util::kw(total), instance.mask);
    EXPECT_NEAR(sum_of(masked.row), total, tol(total)) << "trial " << trial;
    std::vector<double> subset;
    for (std::size_t c = 0; c < b.size(); ++c) {
      if (!instance.mask[c]) {
        EXPECT_EQ(masked.row[c], 0.0) << "trial " << trial << " section " << c;
      } else {
        subset.push_back(b[c]);
      }
    }
    const WaterFillResult on_subset = water_fill(subset, olev::util::kw(total));
    std::size_t i = 0;
    for (std::size_t c = 0; c < b.size(); ++c) {
      if (instance.mask[c]) {
        EXPECT_EQ(masked.row[c], on_subset.row[i++])
            << "trial " << trial << " section " << c;
      }
    }
  }
}

TEST(WaterFillProperty, SortedLoadsIsBitIdenticalToWaterFill) {
  util::Rng rng(0x50f7);
  for (int trial = 0; trial < kTrials; ++trial) {
    const Instance instance = random_instance(rng, trial);
    const auto& b = instance.b;

    const WaterFillResult reference = water_fill(b, olev::util::kw(instance.total));
    const SortedLoads sorted(b);
    const WaterFillResult cached = sorted.fill(olev::util::kw(instance.total));
    EXPECT_EQ(reference.level, cached.level) << "trial " << trial;
    EXPECT_EQ(reference.active_sections, cached.active_sections)
        << "trial " << trial;
    for (std::size_t c = 0; c < b.size(); ++c) {
      EXPECT_EQ(reference.row[c], cached.row[c])
          << "trial " << trial << " section " << c;
    }
  }
}

TEST(WaterFillProperty, UpdateOneMatchesFreshSort) {
  util::Rng rng(0x1e37);
  for (int trial = 0; trial < 300; ++trial) {
    const auto sections = static_cast<std::size_t>(rng.uniform_int(1, 40));
    std::vector<double> b(sections);
    for (double& v : b) v = rng.uniform(0.0, 60.0);

    SortedLoads incremental(b);
    for (int move = 0; move < 10; ++move) {
      const auto index = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(sections) - 1));
      const double value = rng.uniform(0.0, 60.0);
      b[index] = value;
      incremental.update_one(index, value);

      const double total = rng.uniform(0.0, 200.0);
      const SortedLoads fresh(b);
      EXPECT_EQ(fresh.level_for(olev::util::kw(total)), incremental.level_for(olev::util::kw(total)))
          << "trial " << trial << " move " << move;
      const auto expect = fresh.fill(olev::util::kw(total));
      const auto got = incremental.fill(olev::util::kw(total));
      for (std::size_t c = 0; c < sections; ++c) {
        EXPECT_EQ(expect.row[c], got.row[c])
            << "trial " << trial << " move " << move << " section " << c;
      }
    }
  }
}

}  // namespace
}  // namespace olev::core
