#include "traci/protocol.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "util/rng.h"

namespace olev::traci {
namespace {

using traffic::Network;
using traffic::Simulation;
using traffic::SimulationConfig;
using traffic::Vehicle;
using traffic::VehicleType;

Simulation make_sim() {
  Network net;
  net.add_edge("main", 1000.0, 13.89, 2);
  SimulationConfig config;
  config.deterministic = true;
  return Simulation(net, config);
}

// ---------- framing ----------

TEST(Framing, EmptyMessage) {
  const auto bytes = frame_message({});
  EXPECT_EQ(bytes.size(), 4u);
  EXPECT_TRUE(parse_message(bytes).empty());
}

TEST(Framing, RoundTripSmallCommand) {
  RawCommand command{0x42, {1, 2, 3}};
  const auto bytes = frame_message(std::span<const RawCommand>(&command, 1));
  const auto parsed = parse_message(bytes);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0], command);
}

TEST(Framing, RoundTripMultipleCommands) {
  std::vector<RawCommand> commands{{0x01, {}}, {0x02, {9}}, {0x03, {1, 2}}};
  const auto parsed = parse_message(frame_message(commands));
  EXPECT_EQ(parsed, commands);
}

TEST(Framing, ExtendedLengthForLargePayload) {
  RawCommand command{0x55, std::vector<std::uint8_t>(1000, 0xAB)};
  const auto bytes = frame_message(std::span<const RawCommand>(&command, 1));
  const auto parsed = parse_message(bytes);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0], command);
}

TEST(Framing, LengthMismatchThrows) {
  RawCommand command{0x42, {1}};
  auto bytes = frame_message(std::span<const RawCommand>(&command, 1));
  bytes.push_back(0);  // trailing garbage
  EXPECT_THROW(parse_message(bytes), std::runtime_error);
}

TEST(Framing, TruncationThrows) {
  RawCommand command{0x42, {1, 2, 3, 4}};
  const auto bytes = frame_message(std::span<const RawCommand>(&command, 1));
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const std::span<const std::uint8_t> prefix(bytes.data(), cut);
    EXPECT_THROW((void)parse_message(prefix), std::runtime_error) << cut;
  }
}

TEST(Framing, FuzzNeverCrashes) {
  util::Rng rng(0xace);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::uint8_t> bytes(
        static_cast<std::size_t>(rng.uniform_int(0, 64)));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    try {
      (void)parse_message(bytes);
    } catch (const std::runtime_error&) {
    }
  }
  SUCCEED();
}

// ---------- payload encoding ----------

TEST(Payload, ScalarRoundTrips) {
  PayloadWriter writer;
  writer.u8(7);
  writer.i32(-12345);
  writer.f64(3.25);
  writer.string("hello");
  const auto bytes = writer.take();
  PayloadReader reader(bytes);
  EXPECT_EQ(reader.u8(), 7);
  EXPECT_EQ(reader.i32(), -12345);
  EXPECT_DOUBLE_EQ(reader.f64(), 3.25);
  EXPECT_EQ(reader.string(), "hello");
  EXPECT_TRUE(reader.exhausted());
}

TEST(Payload, BigEndianLayout) {
  PayloadWriter writer;
  writer.i32(1);
  const auto bytes = writer.take();
  ASSERT_EQ(bytes.size(), 4u);
  EXPECT_EQ(bytes[0], 0);
  EXPECT_EQ(bytes[3], 1);
}

TEST(Payload, TruncatedReadThrows) {
  PayloadWriter writer;
  writer.u8(1);
  const auto bytes = writer.take();
  PayloadReader reader(bytes);
  (void)reader.u8();
  EXPECT_THROW(reader.i32(), std::runtime_error);
}

TEST(Status, EncodeDecode) {
  const Status status{0xa4, kStatusErr, "unknown vehicle"};
  const Status back = decode_status(encode_status(status));
  EXPECT_EQ(back.command, status.command);
  EXPECT_EQ(back.result, status.result);
  EXPECT_EQ(back.description, status.description);
}

// ---------- server/connection ----------

TEST(Server, SimStepAdvancesSimulation) {
  Simulation sim = make_sim();
  TraciClient client(sim);
  TraciServer server(client);
  TraciConnection connection(server);
  connection.simulationStep();
  connection.simulationStep();
  EXPECT_DOUBLE_EQ(sim.time_s(), 2.0);
  EXPECT_GT(connection.bytes_sent(), 0u);
  EXPECT_GT(connection.bytes_received(), 0u);
}

TEST(Server, GetDoubleOverTheWire) {
  Simulation sim = make_sim();
  TraciClient client(sim);
  TraciServer server(client);
  TraciConnection connection(server);
  const double time = connection.get_double(Domain::kSimulation, Var::kTime, "");
  EXPECT_DOUBLE_EQ(time, 0.0);
  EXPECT_DOUBLE_EQ(
      connection.get_double(Domain::kEdge, Var::kLastStepMeanSpeed, "main"),
      13.89);
}

TEST(Server, VehicleValuesOverTheWire) {
  Simulation sim = make_sim();
  TraciClient client(sim);
  Vehicle vehicle;
  vehicle.type = VehicleType::passenger();
  vehicle.route = {0};
  ASSERT_TRUE(sim.try_insert(vehicle));
  const auto id = std::to_string(sim.vehicles()[0].id);

  TraciServer server(client);
  TraciConnection connection(server);
  connection.simulationStep();
  EXPECT_GT(connection.get_double(Domain::kVehicle, Var::kSpeed, id), 0.0);
  EXPECT_GT(connection.get_double(Domain::kVehicle, Var::kLanePosition, id), 0.0);
}

TEST(Server, ErrorsBecomeErrorStatus) {
  Simulation sim = make_sim();
  TraciClient client(sim);
  TraciServer server(client);
  TraciConnection connection(server);
  EXPECT_THROW(connection.get_double(Domain::kEdge, Var::kLastStepMeanSpeed,
                                     "no_such_edge"),
               std::runtime_error);
  // The connection stays usable after an error.
  connection.simulationStep();
  EXPECT_DOUBLE_EQ(sim.time_s(), 1.0);
}

TEST(Server, CloseMarksServer) {
  Simulation sim = make_sim();
  TraciClient client(sim);
  TraciServer server(client);
  TraciConnection connection(server);
  EXPECT_FALSE(server.closed());
  connection.close();
  EXPECT_TRUE(server.closed());
}

TEST(Server, BatchedCommandsInOneMessage) {
  Simulation sim = make_sim();
  TraciClient client(sim);
  TraciServer server(client);
  // Hand-build a message with two simulation steps.
  std::vector<RawCommand> commands{{kCmdSimStep, {}}, {kCmdSimStep, {}}};
  const auto response = server.handle_message(frame_message(commands));
  const auto parsed = parse_message(response);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(decode_status(parsed[0]).result, kStatusOk);
  EXPECT_EQ(decode_status(parsed[1]).result, kStatusOk);
  EXPECT_DOUBLE_EQ(sim.time_s(), 2.0);
}

}  // namespace
}  // namespace olev::traci
