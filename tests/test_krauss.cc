#include "traffic/krauss.h"

#include <gtest/gtest.h>

#include <cmath>

namespace olev::traffic {
namespace {

const KraussParams kDefault{};

TEST(SafeSpeed, ZeroGapStandingLeaderIsZero) {
  EXPECT_DOUBLE_EQ(safe_speed(0.0, 0.0, kDefault), 0.0);
}

TEST(SafeSpeed, NegativeGapTreatedAsZero) {
  EXPECT_DOUBLE_EQ(safe_speed(0.0, -5.0, kDefault), 0.0);
}

TEST(SafeSpeed, GrowsWithGap) {
  double prev = 0.0;
  for (double gap : {1.0, 5.0, 20.0, 100.0}) {
    const double v = safe_speed(0.0, gap, kDefault);
    EXPECT_GT(v, prev);
    prev = v;
  }
}

TEST(SafeSpeed, GrowsWithLeaderSpeed) {
  EXPECT_LT(safe_speed(0.0, 10.0, kDefault), safe_speed(10.0, 10.0, kDefault));
}

TEST(SafeSpeed, StoppingDistanceInvariant) {
  // Braking from v_safe at rate b after reaction time tau must not cover
  // more distance than gap + leader's own stopping distance.
  const KraussParams params{2.6, 4.5, 0.0, 1.0};
  for (double leader_v : {0.0, 5.0, 15.0}) {
    for (double gap : {2.0, 10.0, 50.0}) {
      const double v = safe_speed(leader_v, gap, params);
      const double follower_stop = v * params.tau_s + v * v / (2.0 * params.decel_mps2);
      const double leader_stop = leader_v * leader_v / (2.0 * params.decel_mps2);
      EXPECT_LE(follower_stop, gap + leader_stop + 1e-6)
          << "leader_v=" << leader_v << " gap=" << gap;
    }
  }
}

TEST(KraussStep, DeterministicWithoutRng) {
  const double v = krauss_step(10.0, 20.0, 100.0, 15.0, 1.0, kDefault, nullptr);
  // Free enough: accelerate by a*dt up to the limit.
  EXPECT_DOUBLE_EQ(v, 12.6);
}

TEST(KraussStep, RespectsSpeedLimit) {
  const double v = krauss_step(14.5, 30.0, 500.0, 15.0, 1.0, kDefault, nullptr);
  EXPECT_DOUBLE_EQ(v, 15.0);
}

TEST(KraussStep, BrakesForStandingObstacle) {
  // Approaching a red light 5 m ahead at 10 m/s: must slow down hard.
  const double v = krauss_step(10.0, 0.0, 5.0, 15.0, 1.0, kDefault, nullptr);
  EXPECT_LT(v, 10.0);
}

TEST(KraussStep, NeverNegative) {
  const double v = krauss_step(0.5, 0.0, 0.0, 15.0, 1.0, kDefault, nullptr);
  EXPECT_GE(v, 0.0);
}

TEST(KraussStep, DawdlingOnlySlowsDown) {
  util::Rng rng(99);
  KraussParams noisy = kDefault;
  noisy.sigma = 0.5;
  for (int i = 0; i < 200; ++i) {
    const double deterministic =
        krauss_step(8.0, 20.0, 200.0, 15.0, 1.0, kDefault, nullptr);
    const double noisy_v = krauss_step(8.0, 20.0, 200.0, 15.0, 1.0, noisy, &rng);
    EXPECT_LE(noisy_v, deterministic + 1e-12);
    EXPECT_GE(noisy_v, deterministic - noisy.sigma * noisy.accel_mps2 - 1e-12);
  }
}

TEST(KraussFreeStep, AcceleratesTowardLimit) {
  double v = 0.0;
  for (int i = 0; i < 20; ++i) {
    v = krauss_free_step(v, 13.89, 1.0, kDefault, nullptr);
  }
  EXPECT_DOUBLE_EQ(v, 13.89);
}

TEST(KraussFreeStep, HoldsAtLimit) {
  const double v = krauss_free_step(13.89, 13.89, 1.0, kDefault, nullptr);
  EXPECT_DOUBLE_EQ(v, 13.89);
}

TEST(KraussChain, PlatoonNeverCollides) {
  // 5 vehicles behind a leader that brakes to a stop; simulate 60 steps and
  // check ordering is preserved with positive gaps.
  const KraussParams params{2.6, 4.5, 0.0, 1.0};
  constexpr int kCars = 6;
  double pos[kCars];
  double vel[kCars];
  for (int i = 0; i < kCars; ++i) {
    pos[i] = (kCars - 1 - i) * 15.0;  // car 0 at front
    vel[i] = 12.0;
  }
  const double length = 5.0;
  const double min_gap = 2.5;
  for (int t = 0; t < 60; ++t) {
    double next_vel[kCars];
    next_vel[0] = std::max(0.0, vel[0] - 4.5);  // leader brakes hard
    for (int i = 1; i < kCars; ++i) {
      const double gap = pos[i - 1] - length - pos[i] - min_gap;
      next_vel[i] = krauss_step(vel[i], vel[i - 1], gap, 15.0, 1.0, params, nullptr);
    }
    for (int i = 0; i < kCars; ++i) {
      vel[i] = next_vel[i];
      pos[i] += vel[i];
    }
    for (int i = 1; i < kCars; ++i) {
      EXPECT_GT(pos[i - 1] - pos[i], length - 1e-9)
          << "collision at t=" << t << " car " << i;
    }
  }
  // Everyone eventually stops.
  for (int i = 0; i < kCars; ++i) EXPECT_NEAR(vel[i], 0.0, 1e-6);
}

}  // namespace
}  // namespace olev::traffic
