#include "core/schedule.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace olev::core {
namespace {

TEST(PowerSchedule, StartsZeroed) {
  PowerSchedule schedule(3, 4);
  EXPECT_EQ(schedule.players(), 3u);
  EXPECT_EQ(schedule.sections(), 4u);
  EXPECT_DOUBLE_EQ(schedule.total(), 0.0);
  for (std::size_t n = 0; n < 3; ++n) {
    for (std::size_t c = 0; c < 4; ++c) EXPECT_DOUBLE_EQ(schedule.at(n, c), 0.0);
  }
}

TEST(PowerSchedule, SetAndGet) {
  PowerSchedule schedule(2, 2);
  schedule.set(0, 1, 5.0);
  schedule.set(1, 0, 3.0);
  EXPECT_DOUBLE_EQ(schedule.at(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(schedule.at(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(schedule.total(), 8.0);
}

TEST(PowerSchedule, RowViewAndSetRow) {
  PowerSchedule schedule(2, 3);
  const std::vector<double> row{1.0, 2.0, 3.0};
  schedule.set_row(0, row);
  const auto view = schedule.row(0);
  ASSERT_EQ(view.size(), 3u);
  EXPECT_DOUBLE_EQ(view[1], 2.0);
  EXPECT_DOUBLE_EQ(schedule.row_total(0), 6.0);
  EXPECT_DOUBLE_EQ(schedule.row_total(1), 0.0);
}

TEST(PowerSchedule, SetRowValidatesShape) {
  PowerSchedule schedule(2, 3);
  const std::vector<double> bad{1.0};
  EXPECT_THROW(schedule.set_row(0, bad), std::invalid_argument);
  const std::vector<double> row{1.0, 2.0, 3.0};
  EXPECT_THROW(schedule.set_row(5, row), std::out_of_range);
  EXPECT_THROW(schedule.row(5), std::out_of_range);
}

TEST(PowerSchedule, ZeroRow) {
  PowerSchedule schedule(1, 2);
  const std::vector<double> row{4.0, 5.0};
  schedule.set_row(0, row);
  schedule.zero_row(0);
  EXPECT_DOUBLE_EQ(schedule.row_total(0), 0.0);
}

TEST(PowerSchedule, ColumnTotals) {
  PowerSchedule schedule(2, 2);
  schedule.set(0, 0, 1.0);
  schedule.set(0, 1, 2.0);
  schedule.set(1, 0, 3.0);
  schedule.set(1, 1, 4.0);
  EXPECT_DOUBLE_EQ(schedule.column_total(0), 4.0);
  EXPECT_DOUBLE_EQ(schedule.column_total(1), 6.0);
  const auto totals = schedule.column_totals();
  EXPECT_DOUBLE_EQ(totals[0], 4.0);
  EXPECT_DOUBLE_EQ(totals[1], 6.0);
  EXPECT_THROW(schedule.column_total(9), std::out_of_range);
}

TEST(PowerSchedule, ColumnTotalsExcluding) {
  PowerSchedule schedule(3, 2);
  schedule.set(0, 0, 1.0);
  schedule.set(1, 0, 2.0);
  schedule.set(2, 0, 4.0);
  const auto excluding_1 = schedule.column_totals_excluding(1);
  EXPECT_DOUBLE_EQ(excluding_1[0], 5.0);
  EXPECT_DOUBLE_EQ(excluding_1[1], 0.0);
}

TEST(PowerSchedule, ColumnTotalsExcludingNeverNegative) {
  PowerSchedule schedule(1, 1);
  schedule.set(0, 0, 1.0);
  // Excluding the only contributor: exact zero, not -epsilon dust.
  EXPECT_DOUBLE_EQ(schedule.column_totals_excluding(0)[0], 0.0);
}

TEST(PowerSchedule, MaxAbsDiff) {
  PowerSchedule a(1, 2);
  PowerSchedule b(1, 2);
  a.set(0, 0, 1.0);
  b.set(0, 1, 3.0);
  EXPECT_DOUBLE_EQ(a.max_abs_diff(b), 3.0);
  PowerSchedule wrong_shape(2, 2);
  EXPECT_THROW(a.max_abs_diff(wrong_shape), std::invalid_argument);
}

TEST(PowerSchedule, FlatSpansAllEntries) {
  PowerSchedule schedule(2, 2);
  schedule.set(1, 1, 7.0);
  const auto flat = schedule.flat();
  EXPECT_EQ(flat.size(), 4u);
  EXPECT_DOUBLE_EQ(flat[3], 7.0);
}

}  // namespace
}  // namespace olev::core
