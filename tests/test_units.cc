#include "util/units.h"

#include <gtest/gtest.h>

namespace olev::util {
namespace {

TEST(Units, MphRoundTrip) {
  EXPECT_NEAR(mph_to_mps(60.0), 26.8224, 1e-4);
  EXPECT_NEAR(mps_to_mph(mph_to_mps(80.0)), 80.0, 1e-12);
}

TEST(Units, KmhRoundTrip) {
  EXPECT_DOUBLE_EQ(kmh_to_mps(36.0), 10.0);
  EXPECT_DOUBLE_EQ(mps_to_kmh(10.0), 36.0);
}

TEST(Units, PowerConversions) {
  EXPECT_DOUBLE_EQ(kw_to_w(2.0), 2000.0);
  EXPECT_DOUBLE_EQ(w_to_kw(500.0), 0.5);
  EXPECT_DOUBLE_EQ(mw_to_kw(1.5), 1500.0);
  EXPECT_DOUBLE_EQ(kw_to_mw(2500.0), 2.5);
}

TEST(Units, EnergyConversions) {
  EXPECT_DOUBLE_EQ(kwh_to_joule(1.0), 3.6e6);
  EXPECT_DOUBLE_EQ(joule_to_kwh(3.6e6), 1.0);
}

TEST(Units, EnergyFromPowerAndTime) {
  // 100 kW for 36 seconds = 1 kWh.
  EXPECT_DOUBLE_EQ(kwh_from_kw(100.0, 36.0), 1.0);
  EXPECT_DOUBLE_EQ(kwh_from_kw(50.0, 3600.0), 50.0);
}

TEST(Units, TimeConversions) {
  EXPECT_DOUBLE_EQ(hours_to_seconds(2.0), 7200.0);
  EXPECT_DOUBLE_EQ(seconds_to_hours(1800.0), 0.5);
  EXPECT_DOUBLE_EQ(minutes_to_seconds(2.0), 120.0);
  EXPECT_DOUBLE_EQ(seconds_to_minutes(90.0), 1.5);
}

TEST(Units, BatteryPackEnergy) {
  // The paper's Chevy Spark battery: 46.2 Ah at 399 V ~ 18.43 kWh.
  EXPECT_NEAR(ah_volts_to_kwh(46.2, 399.0), 18.4338, 1e-4);
}

TEST(Units, ConstexprUsable) {
  static_assert(mph_to_mps(0.0) == 0.0);
  static_assert(kw_to_w(1.0) == 1000.0);
  SUCCEED();
}

}  // namespace
}  // namespace olev::util
