#include "util/units.h"

#include "util/quantity.h"

#include <gtest/gtest.h>

namespace olev::util {
namespace {

TEST(Units, MphRoundTrip) {
  EXPECT_NEAR(mph_to_mps(60.0), 26.8224, 1e-4);
  EXPECT_NEAR(mps_to_mph(mph_to_mps(80.0)), 80.0, 1e-12);
}

TEST(Units, KmhRoundTrip) {
  EXPECT_DOUBLE_EQ(kmh_to_mps(36.0), 10.0);
  EXPECT_DOUBLE_EQ(mps_to_kmh(10.0), 36.0);
}

TEST(Units, PowerConversions) {
  EXPECT_DOUBLE_EQ(kw_to_w(2.0), 2000.0);
  EXPECT_DOUBLE_EQ(w_to_kw(500.0), 0.5);
  EXPECT_DOUBLE_EQ(mw_to_kw(1.5), 1500.0);
  EXPECT_DOUBLE_EQ(kw_to_mw(2500.0), 2.5);
}

TEST(Units, EnergyConversions) {
  EXPECT_DOUBLE_EQ(kwh_to_joule(1.0), 3.6e6);
  EXPECT_DOUBLE_EQ(joule_to_kwh(3.6e6), 1.0);
}

TEST(Units, EnergyFromPowerAndTime) {
  // 100 kW for 36 seconds = 1 kWh.
  EXPECT_DOUBLE_EQ(kwh_from_kw(100.0, 36.0), 1.0);
  EXPECT_DOUBLE_EQ(kwh_from_kw(50.0, 3600.0), 50.0);
}

TEST(Units, TimeConversions) {
  EXPECT_DOUBLE_EQ(hours_to_seconds(2.0), 7200.0);
  EXPECT_DOUBLE_EQ(seconds_to_hours(1800.0), 0.5);
  EXPECT_DOUBLE_EQ(minutes_to_seconds(2.0), 120.0);
  EXPECT_DOUBLE_EQ(seconds_to_minutes(90.0), 1.5);
}

TEST(Units, BatteryPackEnergy) {
  // The paper's Chevy Spark battery: 46.2 Ah at 399 V ~ 18.43 kWh.
  EXPECT_NEAR(ah_volts_to_kwh(46.2, 399.0), 18.4338, 1e-4);
}

TEST(Units, ConstexprUsable) {
  static_assert(mph_to_mps(0.0) == 0.0);
  static_assert(kw_to_w(1.0) == 1000.0);
  SUCCEED();
}

// ---- quantity.h: the compile-time dimensional-analysis layer ----
//
// Everything below is constexpr: a failure is a compile failure, so merely
// building this test binary proves the identities.  The runtime EXPECTs
// exist only so the suite reports them.

TEST(Quantity, VelocityConversionsMatchUnitsH) {
  // to_mps/to_mph wrap the exact units.h formulas -- bit-identical.
  static_assert(to_mps(mph(60.0)).value() == mph_to_mps(60.0));
  static_assert(to_mph(mps(26.8224)).value() == mps_to_mph(26.8224));
  static_assert(to_mps(kmh(36.0)).value() == 10.0);
  static_assert(to_kmh(mps(10.0)).value() == 36.0);
  // Round trip at the paper's 60 mph operating point.
  static_assert(to_mph(to_mps(80.0_mph)).value() == mps_to_mph(mph_to_mps(80.0)));
  EXPECT_NEAR(to_mph(to_mps(80.0_mph)).value(), 80.0, 1e-12);
}

TEST(Quantity, EnergyConversionsMatchUnitsH) {
  static_assert(to_joules(1.0_kWh).value() == 3.6e6);
  static_assert(to_kwh(Joules{3.6e6}).value() == 1.0);
  static_assert(to_kwh(to_joules(2.5_kWh)).value() == 2.5);
  static_assert(to_kwh(1.5_MWh).value() == 1500.0);
  EXPECT_DOUBLE_EQ(to_joules(1.0_kWh).value(), kwh_to_joule(1.0));
}

TEST(Quantity, PowerConversionsMatchUnitsH) {
  static_assert(to_kw(1.5_MW).value() == 1500.0);
  static_assert(to_mw(kw(2500.0)).value() == 2.5);
  static_assert(to_kw(Watts{500.0}).value() == 0.5);
  static_assert(to_kw(to_mw(kw(750.0))).value() == 750.0);
  EXPECT_DOUBLE_EQ(to_kw(1.5_MW).value(), mw_to_kw(1.5));
}

TEST(Quantity, TimeConversionsMatchUnitsH) {
  static_assert(to_seconds(2.0_h).value() == 7200.0);
  static_assert(to_hours(1800.0_s).value() == 0.5);
  static_assert(to_seconds(minutes(2.0)).value() == 120.0);
  static_assert(to_minutes(90.0_s).value() == 1.5);
  static_assert(to_hours(to_seconds(3.0_h)).value() == 3.0);
  EXPECT_DOUBLE_EQ(to_seconds(2.0_h).value(), hours_to_seconds(2.0));
}

TEST(Quantity, LengthAndPriceConversions) {
  static_assert(to_meters(2.0_km).value() == 2000.0);
  static_assert(to_kilometers(500.0_m).value() == 0.5);
  // The LBMP quote path: $/MWh -> $/kWh is a divide-by-1000 (Eq. 10's
  // beta / 1000 factor), and round-trips exactly.
  static_assert(to_per_kwh(Price::per_mwh(16.0)).value() == 0.016);
  static_assert(to_per_mwh(to_per_kwh(Price::per_mwh(244.04))).value() == 244.04);
  EXPECT_DOUBLE_EQ(to_per_kwh(Price::per_mwh(16.0)).value(), 16.0 / 1000.0);
}

TEST(Quantity, DimensionAlgebraProducesDerivedUnits) {
  // kW x h -> kWh at scale 1: a raw multiply, no conversion factor.
  constexpr auto e = kw(3.0) * hours(2.0);
  static_assert(std::same_as<decltype(e), const KilowattHours>);
  static_assert(e.value() == 6.0);
  // kWh / h -> kW and kWh / kW -> h close the triangle.
  static_assert(std::same_as<decltype(6.0_kWh / 2.0_h), Kilowatts>);
  static_assert((6.0_kWh / 2.0_h).value() == 3.0);
  static_assert(std::same_as<decltype(6.0_kWh / kw(3.0)), Hours>);
  // $ / kWh -> price; price * energy -> money.
  static_assert(std::same_as<decltype(4.0_usd / 2.0_kWh), DollarsPerKwh>);
  static_assert((Price::per_kwh(0.25) * 8.0_kWh) == 2.0_usd);
  // m/s * s -> m at scale 1 (3600 * 1/3600).
  static_assert(std::same_as<decltype(mps(5.0) * 10.0_s), Meters>);
  static_assert((mps(5.0) * 10.0_s).value() == 50.0);
  // Same-dimension ratio at equal scale collapses to the raw Rep.
  static_assert(std::same_as<decltype(6.0_kWh / 3.0_kWh), double>);
  static_assert(6.0_kWh / 3.0_kWh == 2.0);
  SUCCEED();
}

TEST(Quantity, EnergyFromPowerAndTimeMatchesUnitsH) {
  // energy_from() wraps kwh_from_kw exactly (the Eq. 1 bookkeeping path).
  static_assert(energy_from(kw(100.0), 36.0_s).value() == kwh_from_kw(100.0, 36.0));
  static_assert(energy_from(kw(100.0), 36.0_s) == 1.0_kWh);
  static_assert(energy_from(kw(50.0), seconds(3600.0)).value() == 50.0);
  SUCCEED();
}

TEST(Quantity, ChevySparkPackIdentity) {
  // Ah * V -> kWh with the Section V battery: 46.2 Ah at 399 V.
  static_assert(pack_energy(46.2, 399.0).value() == ah_volts_to_kwh(46.2, 399.0));
  EXPECT_NEAR(pack_energy(46.2, 399.0).value(), 18.4338, 1e-4);
  // The same identity through the dimension algebra: pack power (kW) times
  // a one-hour dispatch is the pack energy in kWh.
  constexpr Kilowatts pack_kw{46.2 * 399.0 / 1000.0};
  static_assert(pack_kw * hours(1.0) == pack_energy(46.2, 399.0));
}

TEST(Quantity, QuantityCastAgreesWithNamedConverters) {
  static_assert(quantity_cast<Kilowatts>(1.5_MW).value() == 1500.0);
  static_assert(quantity_cast<Seconds>(2.0_h).value() == 7200.0);
  static_assert(quantity_cast<Meters>(2.0_km).value() == 2000.0);
  static_assert(quantity_cast<DollarsPerKwh>(Price::per_mwh(16.0)).value() ==
                0.016);
  SUCCEED();
}

TEST(Quantity, LiteralsAndFactoriesAgree) {
  static_assert(1.5_kWh == kwh(1.5));
  static_assert(100_kW == kw(100.0));
  static_assert(1.5_MW == megawatts(1.5));
  static_assert(60.0_mph == mph(60.0));
  static_assert(300.0_s == seconds(300.0));
  static_assert(17_h == hours(17.0));
  static_assert(20.0_m == meters(20.0));
  static_assert(10.0_km == kilometers(10.0));
  static_assert(2.5_usd == dollars(2.5));
  SUCCEED();
}

TEST(Quantity, ScalarArithmeticIsRawArithmetic) {
  static_assert((kw(3.0) * 2.0).value() == 6.0);
  static_assert((2.0 * kw(3.0)).value() == 6.0);
  static_assert((kw(6.0) / 2.0).value() == 3.0);
  static_assert((kw(3.0) + kw(4.0)).value() == 7.0);
  static_assert((kw(3.0) - kw(4.0)).value() == -1.0);
  static_assert(-kw(3.0) == kw(-3.0));
  static_assert(kw(3.0) < kw(4.0));
  constexpr auto accumulate = [] {
    Kilowatts p{1.0};
    p += kw(2.0);
    p -= kw(0.5);
    p *= 4.0;
    p /= 2.0;
    return p;
  }();
  static_assert(accumulate.value() == 5.0);
  SUCCEED();
}

}  // namespace
}  // namespace olev::util
