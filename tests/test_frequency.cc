#include "grid/frequency.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace olev::grid {
namespace {

TEST(FrequencySimulator, ValidatesConfig) {
  FrequencyModelConfig bad;
  bad.system_mva = 0.0;
  EXPECT_THROW(FrequencySimulator{bad}, std::invalid_argument);
  bad = FrequencyModelConfig{};
  bad.droop = -0.01;
  EXPECT_THROW(FrequencySimulator{bad}, std::invalid_argument);
}

TEST(FrequencySimulator, NoDisturbanceHoldsNominal) {
  FrequencySimulator sim;
  for (int i = 0; i < 100; ++i) sim.step(olev::util::mw(0.0));
  EXPECT_NEAR(sim.frequency_hz(), 60.0, 1e-9);
}

TEST(FrequencySimulator, ShortageDepressesFrequency) {
  FrequencySimulator sim;
  sim.step(olev::util::mw(200.0));  // 200 MW shortage
  EXPECT_LT(sim.frequency_hz(), 60.0);
}

TEST(FrequencySimulator, SurplusRaisesFrequency) {
  FrequencySimulator sim;
  sim.step(olev::util::mw(-200.0));
  EXPECT_GT(sim.frequency_hz(), 60.0);
}

TEST(FrequencySimulator, DroopArrestsTheFall) {
  // Sustained shortage: frequency falls but droop response arrests it at a
  // quasi-steady offset rather than collapsing.
  FrequencyModelConfig config;
  config.agc_gain = 0.0;  // primary response only
  FrequencySimulator sim(config);
  std::vector<double> disturbance(3000, 100.0);  // 300 s of 100 MW shortage
  const auto trace = sim.run(disturbance);
  const double settled = trace.back().frequency_hz;
  EXPECT_LT(settled, 60.0);
  EXPECT_GT(settled, 59.5);  // arrested, not collapsing
  // Quasi-steady: droop output balances the shortage.
  EXPECT_NEAR(trace.back().droop_mw, 100.0, 1.0);
}

TEST(FrequencySimulator, AgcRestoresNominal) {
  // With regulation, a step disturbance is fully corrected back to 60 Hz.
  FrequencySimulator sim;
  std::vector<double> disturbance(6000, 100.0);  // 600 s
  const auto trace = sim.run(disturbance);
  EXPECT_NEAR(trace.back().frequency_hz, 60.0, 0.01);
  EXPECT_NEAR(trace.back().agc_mw, 100.0, 2.0);  // AGC carries the shortage
}

TEST(FrequencySimulator, ReserveSaturationLimitsRecovery) {
  // A disturbance exceeding the regulation reserve leaves a standing error
  // (served by droop, i.e. off-nominal frequency).
  FrequencyModelConfig config;
  config.regulation_reserve_mw = 50.0;
  FrequencySimulator sim(config);
  std::vector<double> disturbance(6000, 200.0);
  const auto trace = sim.run(disturbance);
  EXPECT_NEAR(trace.back().agc_mw, 50.0, 1e-6);  // pinned at the reserve
  EXPECT_LT(trace.back().frequency_hz, 59.995);  // standing deviation
}

TEST(FrequencySimulator, LargerReserveSmallerStandingDeviation) {
  // The nadir is set by inertia + droop in the first seconds; what the
  // regulation reserve buys is the *standing* deviation after AGC settles.
  auto standing_deviation = [](double reserve) {
    FrequencyModelConfig config;
    config.regulation_reserve_mw = reserve;
    FrequencySimulator sim(config);
    std::vector<double> disturbance(6000, 150.0);
    const auto trace = sim.run(disturbance);
    return std::abs(trace.back().frequency_hz - 60.0);
  };
  EXPECT_GT(standing_deviation(10.0), standing_deviation(300.0));
  EXPECT_LT(standing_deviation(300.0), 0.01);
}

TEST(FrequencySimulator, ResetRestoresState) {
  FrequencySimulator sim;
  sim.step(olev::util::mw(500.0));
  sim.reset();
  EXPECT_DOUBLE_EQ(sim.frequency_hz(), 60.0);
  EXPECT_DOUBLE_EQ(sim.time_s(), 0.0);
}

TEST(SummarizeTrace, EmptyTrace) {
  const FrequencyExcursion summary = summarize_trace({}, 60.0);
  EXPECT_DOUBLE_EQ(summary.nadir_hz, 60.0);
  EXPECT_DOUBLE_EQ(summary.max_abs_dev_hz, 0.0);
}

TEST(SummarizeTrace, CapturesNadirAndSettling) {
  std::vector<FrequencyTick> trace;
  for (int i = 0; i < 10; ++i) {
    FrequencyTick tick;
    tick.time_s = i * 1.0;
    tick.frequency_hz = (i < 5) ? 59.9 : 60.0;
    trace.push_back(tick);
  }
  const FrequencyExcursion summary = summarize_trace(trace, 60.0, 0.02);
  EXPECT_DOUBLE_EQ(summary.nadir_hz, 59.9);
  EXPECT_NEAR(summary.max_abs_dev_hz, 0.1, 1e-12);
  EXPECT_DOUBLE_EQ(summary.settling_time_s, 4.0);
}

TEST(FrequencySimulator, OlevFleetAsDisturbanceAndResource) {
  // The paper's tension end to end: an OLEV fleet switching on is an
  // unanticipated load (bad for frequency); the same fleet enrolled as
  // regulation (V2G) shrinks the excursion.
  const double fleet_mw = 120.0;
  std::vector<double> fleet_on(6000, fleet_mw);

  FrequencyModelConfig without_v2g;
  without_v2g.regulation_reserve_mw = 20.0;  // thin conventional reserve
  FrequencySimulator bare(without_v2g);
  const double bare_standing =
      std::abs(bare.run(fleet_on).back().frequency_hz - 60.0);

  FrequencyModelConfig with_v2g = without_v2g;
  with_v2g.regulation_reserve_mw = 20.0 + fleet_mw;  // fleet enrolls
  FrequencySimulator assisted(with_v2g);
  const double assisted_standing =
      std::abs(assisted.run(fleet_on).back().frequency_hz - 60.0);

  EXPECT_LT(assisted_standing, bare_standing);
  EXPECT_LT(assisted_standing, 0.01);  // fully restored with V2G
}

}  // namespace
}  // namespace olev::grid
