#include "core/welfare.h"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

namespace olev::core {
namespace {

SectionCost make_cost(double cap = 50.0) {
  return SectionCost(std::make_unique<NonlinearPricing>(8.0, 0.875, cap),
                     OverloadCost{1.5}, olev::util::kw(cap));
}

std::vector<std::unique_ptr<Satisfaction>> two_players() {
  std::vector<std::unique_ptr<Satisfaction>> players;
  players.push_back(std::make_unique<LogSatisfaction>(10.0));
  players.push_back(std::make_unique<LogSatisfaction>(5.0));
  return players;
}

TEST(SocialWelfare, EmptyScheduleIsZero) {
  // W(0) = sum U(0) - sum (Z(0) - Z(0)) = 0: idle capacity carries no cost.
  const SectionCost z = make_cost();
  const auto players = two_players();
  PowerSchedule schedule(2, 3);
  EXPECT_NEAR(social_welfare(players, z, schedule), 0.0, 1e-12);
}

TEST(SocialWelfare, MatchesManualComputation) {
  const SectionCost z = make_cost();
  const auto players = two_players();
  PowerSchedule schedule(2, 2);
  schedule.set(0, 0, 3.0);
  schedule.set(0, 1, 1.0);
  schedule.set(1, 1, 2.0);
  const double expected = players[0]->value(4.0) + players[1]->value(2.0) -
                          (z.value(3.0) - z.value(0.0)) -
                          (z.value(3.0) - z.value(0.0));
  EXPECT_NEAR(social_welfare(players, z, schedule), expected, 1e-12);
}

TEST(SocialWelfare, InvariantToIdleSections) {
  // Adding empty sections must not change welfare (the Fig. 5(b) sweep
  // varies C; welfare must be comparable across C).
  const SectionCost z = make_cost();
  const auto players = two_players();
  PowerSchedule narrow(2, 1);
  narrow.set(0, 0, 2.0);
  PowerSchedule wide(2, 5);
  wide.set(0, 0, 2.0);
  EXPECT_NEAR(social_welfare(players, z, narrow),
              social_welfare(players, z, wide), 1e-12);
}

TEST(SocialWelfare, PlayerCountMismatchThrows) {
  const SectionCost z = make_cost();
  const auto players = two_players();
  PowerSchedule schedule(3, 2);
  EXPECT_THROW(social_welfare(players, z, schedule), std::invalid_argument);
}

TEST(TotalPayments, ZeroScheduleZeroPayments) {
  const SectionCost z = make_cost();
  PowerSchedule schedule(2, 2);
  EXPECT_DOUBLE_EQ(total_payments(z, schedule), 0.0);
}

TEST(TotalPayments, SinglePlayerEqualsExternality) {
  const SectionCost z = make_cost();
  PowerSchedule schedule(1, 2);
  schedule.set(0, 0, 5.0);
  const double expected = z.value(5.0) - z.value(0.0);
  EXPECT_NEAR(total_payments(z, schedule), expected, 1e-12);
}

TEST(TotalPayments, ExceedsTotalCostIncreaseWithManyPlayers) {
  // Each player pays its externality against the *other* players' load, so
  // total payments over-recover the cost increase (standard VCG property
  // under convex costs).
  const SectionCost z = make_cost();
  PowerSchedule schedule(2, 1);
  schedule.set(0, 0, 10.0);
  schedule.set(1, 0, 10.0);
  const double cost_increase = z.value(20.0) - z.value(0.0);
  EXPECT_GE(total_payments(z, schedule), cost_increase - 1e-9);
}

TEST(CongestionReport, PerSectionDegrees) {
  PowerSchedule schedule(2, 2);
  schedule.set(0, 0, 30.0);
  schedule.set(1, 0, 15.0);
  schedule.set(0, 1, 60.0);
  const CongestionReport report = congestion_report(schedule, olev::util::kw(100.0));
  ASSERT_EQ(report.per_section.size(), 2u);
  EXPECT_NEAR(report.per_section[0], 0.45, 1e-12);
  EXPECT_NEAR(report.per_section[1], 0.60, 1e-12);
  EXPECT_NEAR(report.mean, 0.525, 1e-12);
  EXPECT_NEAR(report.max, 0.60, 1e-12);
}

TEST(CongestionReport, FairnessDetectsImbalance) {
  PowerSchedule balanced(1, 2);
  balanced.set(0, 0, 10.0);
  balanced.set(0, 1, 10.0);
  PowerSchedule skewed(1, 2);
  skewed.set(0, 0, 20.0);
  const auto fair = congestion_report(balanced, olev::util::kw(100.0));
  const auto unfair = congestion_report(skewed, olev::util::kw(100.0));
  EXPECT_NEAR(fair.jain_fairness, 1.0, 1e-12);
  EXPECT_LT(unfair.jain_fairness, 0.6);
}

TEST(CongestionReport, RejectsBadPLine) {
  PowerSchedule schedule(1, 1);
  EXPECT_THROW((void)congestion_report(schedule, olev::util::kw(0.0)), std::invalid_argument);
  EXPECT_THROW((void)congestion_report(schedule, olev::util::kw(-5.0)), std::invalid_argument);
}

}  // namespace
}  // namespace olev::core
