// Regenerates the golden equilibrium fixtures under tests/golden/.
//
//   $ ./generate_golden <output-dir>
//
// Run this ONLY when an intentional algorithm change moves the equilibrium;
// commit the new CSVs together with the change that caused them.

#include <fstream>
#include <iomanip>
#include <iostream>

#include "core/scenario.h"
#include "golden_fixture.h"

namespace {

using namespace olev;

void write_fixture(const std::string& dir, core::PricingKind pricing) {
  const core::ScenarioConfig config = testing::golden_config(pricing);
  const core::Scenario scenario = core::Scenario::build(config);
  core::Game game = scenario.make_game();
  const core::GameResult result = game.run();
  if (!result.converged) {
    throw std::runtime_error("golden scenario failed to converge");
  }

  const std::string path = dir + "/" + testing::golden_file(pricing);
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open " + path);
  os << std::setprecision(17);
  os << "quantity,i,j,value\n";
  for (std::size_t n = 0; n < result.schedule.players(); ++n) {
    for (std::size_t c = 0; c < result.schedule.sections(); ++c) {
      os << "schedule," << n << "," << c << "," << result.schedule.at(n, c)
         << "\n";
    }
  }
  for (std::size_t n = 0; n < result.requests.size(); ++n) {
    os << "request," << n << ",0," << result.requests[n] << "\n";
  }
  for (std::size_t n = 0; n < result.payments.size(); ++n) {
    os << "payment," << n << ",0," << result.payments[n] << "\n";
  }
  for (std::size_t n = 0; n < result.utilities.size(); ++n) {
    os << "utility," << n << ",0," << result.utilities[n] << "\n";
  }
  os << "welfare,0,0," << result.welfare << "\n";
  std::cout << "wrote " << path << " (" << result.updates << " updates)\n";
}

void write_mean_field_fixture(const std::string& dir,
                              const testing::MeanFieldGoldenCase& golden) {
  const core::Scenario scenario = core::Scenario::build(golden.config);
  core::MeanFieldGame game = scenario.make_mean_field();
  const core::MeanFieldResult result = game.run();
  if (!result.converged) {
    throw std::runtime_error("mean-field golden scenario '" + golden.label +
                             "' failed to converge");
  }

  const std::string path = dir + "/" + golden.file;
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open " + path);
  os << std::setprecision(17);
  os << "quantity,i,j,value\n";
  for (std::size_t c = 0; c < result.field.size(); ++c) {
    os << "field," << c << ",0," << result.field[c] << "\n";
  }
  for (std::size_t n = 0; n < result.requests.size(); ++n) {
    os << "request," << n << ",0," << result.requests[n] << "\n";
  }
  for (std::size_t n = 0; n < result.payments.size(); ++n) {
    os << "payment," << n << ",0," << result.payments[n] << "\n";
  }
  for (std::size_t n = 0; n < result.utilities.size(); ++n) {
    os << "utility," << n << ",0," << result.utilities[n] << "\n";
  }
  os << "welfare,0,0," << result.welfare << "\n";
  os << "total_load,0,0," << result.total_load_kw << "\n";
  os << "water_level,0,0," << result.water_level_kw << "\n";
  os << "marginal_price,0,0," << result.marginal_price << "\n";
  std::cout << "wrote " << path << " (" << result.iterations
            << " field iterations)\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: generate_golden <output-dir>\n";
    return 1;
  }
  try {
    write_fixture(argv[1], core::PricingKind::kNonlinear);
    write_fixture(argv[1], core::PricingKind::kLinear);
    for (const auto& golden : testing::golden_mean_field_cases()) {
      write_mean_field_fixture(argv[1], golden);
    }
  } catch (const std::exception& e) {
    std::cerr << "generate_golden: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
